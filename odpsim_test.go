package odpsim

import (
	"testing"
)

// TestPublicAPIReadWorkflow drives the whole stack through the façade the
// way the quickstart example does.
func TestPublicAPIReadWorkflow(t *testing.T) {
	cl := KNL().Build(1, 2)
	client, server := OpenDevice(cl.Nodes[0]), OpenDevice(cl.Nodes[1])
	cap := AttachCapture(cl.Fab)

	pdC, pdS := client.AllocPD(), server.AllocPD()
	cqC, cqS := client.CreateCQ(), server.CreateCQ()
	qpC, qpS := pdC.CreateQP(cqC, cqC), pdS.CreateQP(cqS, cqS)

	attr := QPAttr{Timeout: 1, RetryCnt: 7, MinRNRTimer: FromMillis(1.28)}
	ca, sa := attr, attr
	ca.DestLID, ca.DestQPNum = server.LID(), qpS.Num()
	sa.DestLID, sa.DestQPNum = client.LID(), qpC.Num()
	if err := qpC.Connect(ca); err != nil {
		t.Fatal(err)
	}
	if err := qpS.Connect(sa); err != nil {
		t.Fatal(err)
	}

	lbuf := cl.Nodes[0].AS.Alloc(PageSize)
	rbuf := cl.Nodes[1].AS.Alloc(PageSize)
	if _, err := pdC.RegisterMR(lbuf, PageSize, AccessLocalWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := pdS.RegisterMR(rbuf, PageSize, AccessRemoteRead|AccessOnDemand); err != nil {
		t.Fatal(err)
	}

	if err := qpC.PostRead(1, lbuf, rbuf, 100); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()

	cqes := cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if cap.Total() < 3 {
		t.Errorf("capture has %d packets, want the RNR NAK workflow", cap.Total())
	}
}

func TestPublicMicrobenchAndDetection(t *testing.T) {
	cfg := DefaultBench()
	cfg.Interval = Millisecond
	cfg.WithCapture = true
	r := RunMicrobench(cfg)
	if !r.TimedOut() {
		t.Fatal("expected packet damming")
	}
	if inc := DetectDamming(r.Cap, 100*Millisecond); len(inc) != 1 {
		t.Errorf("damming incidents = %v", inc)
	}
}

func TestPublicTimeoutProbe(t *testing.T) {
	to := MeasureTimeout(AzureHC(), 1, 3)
	if to < FromMillis(20) || to > FromMillis(45) {
		t.Errorf("ConnectX-5 T_o = %v, want ≈30 ms", to)
	}
}

func TestPublicUCX(t *testing.T) {
	cl := ReedbushH().Build(9, 2)
	cfg := DefaultUCXConfig()
	cfg.EnableODP = true
	wA := NewUCXContext(cl.Nodes[0], cfg).NewWorker()
	wB := NewUCXContext(cl.Nodes[1], cfg).NewWorker()
	epA, _ := UCXConnect(wA, wB)
	lbuf := cl.Nodes[0].AS.Alloc(PageSize)
	rbuf := cl.Nodes[1].AS.Alloc(PageSize)
	wA.RegisterBuffer(lbuf, PageSize)
	wB.RegisterBuffer(rbuf, PageSize)
	var err error
	cl.Eng.Go("app", func(p *Proc) {
		err = epA.Get(p, lbuf, rbuf, 64)
	})
	cl.Eng.MustRun()
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllSystemsExposed(t *testing.T) {
	if len(AllSystems()) != 8 {
		t.Error("Table I has 8 systems")
	}
	if _, err := SystemByName("ABCI"); err != nil {
		t.Error(err)
	}
}
