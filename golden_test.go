package odpsim

import (
	"testing"

	"odpsim/internal/core"
	"odpsim/internal/sim"
)

// TestGoldenNumbers pins headline results to exact values. The simulator
// is deterministic (single-threaded event loop, seeded math/rand), so any
// change here is a real behavioral change of the model — recalibrate
// EXPERIMENTS.md if you touch one intentionally.
func TestGoldenNumbers(t *testing.T) {
	t.Run("damming exec time", func(t *testing.T) {
		cfg := core.DefaultBench()
		cfg.Interval = sim.Millisecond
		r := core.RunMicrobench(cfg)
		if got, want := r.ExecTime, sim.Time(488179437); got != want {
			t.Errorf("exec = %d (%v), want %d", int64(got), got, int64(want))
		}
		if r.Timeouts != 1 || r.DammedDrops != 3 {
			t.Errorf("timeouts=%d dammed=%d", r.Timeouts, r.DammedDrops)
		}
	})
	t.Run("ConnectX-4 timeout floor", func(t *testing.T) {
		if got, want := core.MeasureTimeout(KNL(), 1, 1), sim.Time(499100821); got != want {
			t.Errorf("T_o = %d (%v), want %d", int64(got), got, int64(want))
		}
	})
	t.Run("flood last completion", func(t *testing.T) {
		cfg := core.DefaultBench()
		cfg.Mode = core.ClientODP
		cfg.Size = 32
		cfg.NumQPs = 128
		cfg.NumOps = 128
		cfg.CACK = 18
		r := core.RunMicrobench(cfg)
		var last sim.Time
		for _, ct := range r.CompletionTime {
			if ct > last {
				last = ct
			}
		}
		if got, want := last, sim.Time(5980769); got != want {
			t.Errorf("last completion = %d (%v), want %d", int64(got), got, int64(want))
		}
	})
}
