// Contract tests for the bounded-lag shard layer (internal/shard,
// DESIGN.md §12): sharded execution is a pure throughput knob. The same
// scenario must produce byte-identical output at every `-shards` value —
// including against the committed goldens, which were recorded through
// the ordinary sequential path — and the cross-shard handoff must stay
// on the warm zero-allocation contract the rest of the datapath obeys.
package odpsim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"odpsim/internal/congestion"
	"odpsim/internal/fabric"
	"odpsim/internal/packet"
	"odpsim/internal/scenario"
	_ "odpsim/internal/scenario/paper"
	"odpsim/internal/shard"
	"odpsim/internal/sim"
)

// TestShardedByteIdentical runs the sharded scenarios at shards 1, 2 and
// 4 and requires each run to match the committed golden byte for byte.
// The collective patterns are fully coupled (one causal domain), so the
// lanes are pure overhead there; kv-serve actually fans its 16 pods
// across the lanes — either way the bytes must not move.
func TestShardedByteIdentical(t *testing.T) {
	for _, name := range []string{"incast-clos", "shuffle-clos", "kv-serve"} {
		golden, err := os.ReadFile(filepath.Join("results", name+".txt"))
		if err != nil {
			t.Fatalf("missing golden: %v", err)
		}
		for _, shards := range []int{1, 2, 4} {
			sc, err := scenario.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			sc.Shards = shards
			var buf bytes.Buffer
			if err := scenario.Run(sc, &buf, scenario.Options{}); err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Errorf("%s at shards=%d differs from results/%s.txt — sharding changed the simulation",
					name, shards, name)
			}
		}
	}
}

// shardedFabric is the fixture BenchmarkShardedIncast and
// TestAllocBudgetShardedSend share: P pod cells (a radix-4 PodTopology
// with 8 hosts each) on per-pod engines, joined through a shard.Group by
// digest links converging on pod 0 — the fabric-level skeleton of the
// kv-serve scenario, without the RNIC stack on top.
type shardedFabric struct {
	g       *shard.Group
	engs    []*sim.Engine
	links   []*shard.Link // digest link into pod 0 (nil at index 0)
	ccfg    congestion.Config
	digests int
}

func newShardedFabric(pods, lanes int) *shardedFabric {
	sf := &shardedFabric{g: shard.NewGroup(lanes)}
	sf.ccfg = congestion.DefaultConfig()
	sf.ccfg.Topology = congestion.PodTopology(4, 4)
	sf.ccfg.PFC = true
	sf.ccfg.XOffBytes = 1 << 10
	sf.ccfg.XOnBytes = 512
	ds := make([]*shard.Domain, pods)
	for p := 0; p < pods; p++ {
		eng := sim.New(int64(p + 1))
		sf.engs = append(sf.engs, eng)
		ds[p] = sf.g.AddDomain(eng)
	}
	sf.links = make([]*shard.Link, pods)
	for p := 1; p < pods; p++ {
		sf.links[p] = sf.g.Connect(ds[p], ds[0], 25, 2*sim.Microsecond)
	}
	ds[0].OnFlight(func(shard.Flight) { sf.digests++ })
	return sf
}

// trial rebuilds every pod's fabric on its Reset engine (the arenas
// recycle across the generation bump), fires a 4096-packet cross-edge
// burst inside each pod with a digest flight to pod 0 every 256
// deliveries, and runs the group to completion.
func (sf *shardedFabric) trial(seed int64) {
	sf.digests = 0
	sf.g.Rewind()
	for p, eng := range sf.engs {
		eng.Reset(seed + int64(p))
		f := fabric.New(eng, fabric.DefaultConfig())
		link := sf.links[p]
		delivered := 0
		ports := make([]*fabric.Port, 8)
		for lid := uint16(1); lid <= 8; lid++ {
			ports[lid-1] = f.AttachPort(lid, "host", func(*packet.Packet) {
				delivered++
				if link != nil && delivered%256 == 0 {
					link.Send(shard.Flight{Len: 64, Arg: uint64(delivered)})
				}
			})
		}
		f.EnableCongestion(sf.ccfg)
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			pkt := pool.Get()
			pkt.Opcode = packet.OpReadRequest
			pkt.DLID = uint16(5 + (j+1)%4)
			pkt.PSN = uint32(j)
			ports[j%4].Send(pkt)
		}
	}
	sf.g.Run()
}

// shardedAllocCeiling bounds the warm per-trial allocation count for a
// two-pod sharded trial: twice the single-fabric congested ceiling, plus
// the per-pod rebuild closures. The cross-shard handoff itself (rings,
// inbox, merge scratch) must contribute zero — that is the part this
// guard watches.
const shardedAllocCeiling = 2*congestedAllocCeiling + 8

func TestAllocBudgetShardedSend(t *testing.T) {
	sf := newShardedFabric(2, 1)
	seed := int64(0)
	trial := func() {
		seed += 16
		sf.trial(seed)
	}
	trial() // warm the arenas and the handoff rings
	wantDigests := sf.digests
	if wantDigests == 0 {
		t.Fatal("no digest flights crossed the shard boundary — the trial is not exercising the handoff")
	}

	avg := testing.AllocsPerRun(10, trial)
	t.Logf("sharded two-pod trial allocates %.0f/op (ceiling %d), %d digests crossed", avg, shardedAllocCeiling, sf.digests)
	if avg > shardedAllocCeiling {
		t.Errorf("sharded trial allocates %.0f/op, ceiling %d — the cross-shard handoff path regressed off the warm-allocation contract",
			avg, shardedAllocCeiling)
	}
	if sf.digests != wantDigests {
		t.Errorf("digest count drifted across warm trials: %d vs %d", sf.digests, wantDigests)
	}
}
