// Package odpsim is a deterministic, packet-level simulator of InfiniBand
// Reliable Connection transport with On-Demand Paging (ODP), built to
// reproduce "Pitfalls of InfiniBand with On-Demand Paging" (Fukuoka,
// Sato, Taura — ISPASS 2021).
//
// The library models RNIC device generations (ConnectX-3…6), the RC
// requester/responder state machines with real timeout/retry/RNR-NAK
// semantics, the ODP fault pipeline with per-QP page-status updates, an
// ibdump-style capture layer, and the two performance pitfalls the paper
// reveals:
//
//   - packet damming — a request posted during a pending window is lost
//     on replay and recovers only through a several-hundred-millisecond
//     Local-ACK timeout (§V);
//   - packet flood — simultaneous client-side page faults across many QPs
//     starve the per-QP page-status updates, provoking seconds of massive
//     retransmission (§VI).
//
// This package is a façade: it re-exports the stable public surface of
// the internal packages so downstream users and the bundled examples need
// a single import.
package odpsim

import (
	"io"

	"odpsim/internal/apps/kvstore"
	"odpsim/internal/capture"
	"odpsim/internal/cluster"
	"odpsim/internal/core"
	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/mpi"
	"odpsim/internal/odp"
	"odpsim/internal/perftest"
	"odpsim/internal/regcache"
	"odpsim/internal/rnic"
	"odpsim/internal/scenario"
	"odpsim/internal/sim"
	"odpsim/internal/softrel"
	"odpsim/internal/stats"
	"odpsim/internal/telemetry"
	"odpsim/internal/ucx"
	"odpsim/internal/verbs"
)

// --- Simulation kernel ---

// Engine is the deterministic discrete-event simulation engine.
type Engine = sim.Engine

// Proc is a simulated process (blocking-style code on the engine).
type Proc = sim.Proc

// Cond is a broadcast condition for processes.
type Cond = sim.Cond

// Time is virtual time in nanoseconds.
type Time = sim.Time

// Virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine creates a simulation engine with the given random seed; the
// same seed always reproduces the same run.
func NewEngine(seed int64) *Engine { return sim.New(seed) }

// FromMillis converts milliseconds to Time.
func FromMillis(ms float64) Time { return sim.FromMillis(ms) }

// FromMicros converts microseconds to Time.
func FromMicros(us float64) Time { return sim.FromMicros(us) }

// FromSeconds converts seconds to Time.
func FromSeconds(s float64) Time { return sim.FromSeconds(s) }

// --- Memory ---

// Addr is a virtual address in a node's address space.
type Addr = hostmem.Addr

// AddressSpace is one node's virtual memory.
type AddressSpace = hostmem.AddressSpace

// PageSize is the host page size (4096).
const PageSize = hostmem.PageSize

// --- Fabric and devices ---

// Fabric is the simulated InfiniBand fabric.
type Fabric = fabric.Fabric

// DeviceProfile describes one RNIC model's timing and quirks.
type DeviceProfile = rnic.Profile

// RNIC is one simulated adapter.
type RNIC = rnic.RNIC

// Device profiles for the generations of Table I.
var (
	ConnectX3 = rnic.ConnectX3
	ConnectX4 = rnic.ConnectX4
	ConnectX5 = rnic.ConnectX5
	ConnectX6 = rnic.ConnectX6
)

// ODPConfig tunes the ODP engine model.
type ODPConfig = odp.Config

// --- Systems (Tables I & II) ---

// System is one of the paper's measured systems.
type System = cluster.System

// Cluster is a built simulation (engine + fabric + nodes).
type Cluster = cluster.Cluster

// The systems of Table I.
var (
	PrivateA  = cluster.PrivateA
	KNL       = cluster.KNL
	ReedbushH = cluster.ReedbushH
	ReedbushL = cluster.ReedbushL
	ABCI      = cluster.ABCI
	ITO       = cluster.ITO
	AzureHC   = cluster.AzureHC
	AzureHBv2 = cluster.AzureHBv2
)

// AllSystems returns every system of Table I.
func AllSystems() []System { return cluster.All() }

// SystemByName looks a system up by name.
func SystemByName(name string) (System, error) { return cluster.ByName(name) }

// --- Verbs ---

// Context is an opened device (the verbs entry point).
type Context = verbs.Context

// PD is a protection domain.
type PD = verbs.PD

// MR is a registered memory region.
type MR = verbs.MR

// CQ is a completion queue.
type CQ = verbs.CQ

// QP is a queue pair.
type QP = verbs.QP

// QPAttr carries modify-QP attributes (timeout, retry_cnt, min RNR).
type QPAttr = verbs.QPAttr

// AccessFlags are MR registration flags.
type AccessFlags = verbs.AccessFlags

// Registration flags; AccessOnDemand selects an ODP registration.
const (
	AccessLocalWrite  = verbs.AccessLocalWrite
	AccessRemoteRead  = verbs.AccessRemoteRead
	AccessRemoteWrite = verbs.AccessRemoteWrite
	AccessOnDemand    = verbs.AccessOnDemand
)

// CQE is a work completion.
type CQE = rnic.CQE

// WCStatus is a work completion status.
type WCStatus = rnic.WCStatus

// Completion statuses.
const (
	WCSuccess        = rnic.WCSuccess
	WCRetryExcErr    = rnic.WCRetryExcErr
	WCRNRRetryExcErr = rnic.WCRNRRetryExcErr
	WCFlushErr       = rnic.WCFlushErr
)

// OpenDevice wraps an RNIC into a verbs context.
func OpenDevice(nic *RNIC) *Context { return verbs.Open(nic) }

// --- Capture (ibdump) ---

// Capture records packets crossing the fabric.
type Capture = capture.Capture

// AttachCapture taps a fabric like ibdump.
func AttachCapture(f *Fabric) *Capture { return capture.Attach(f) }

// CaptureRecord is one captured packet.
type CaptureRecord = capture.Record

// ReadTrace parses a binary capture written with Capture.WriteTrace.
func ReadTrace(r io.Reader) ([]CaptureRecord, error) { return capture.ReadTrace(r) }

// CaptureFromRecords rebuilds a capture from reloaded records so the
// detectors can analyze saved traces offline.
func CaptureFromRecords(rs []CaptureRecord) *Capture { return capture.FromRecords(rs) }

// --- MPI (the middle layer the paper's applications run on) ---

// MPIComm is a communicator over a cluster.
type MPIComm = mpi.Comm

// MPIRank is one process of a communicator.
type MPIRank = mpi.Rank

// MPIWin is a one-sided RMA window.
type MPIWin = mpi.Win

// NewMPIComm builds a fully connected communicator over the cluster's
// nodes (one rank per node), on the given UCX configuration.
func NewMPIComm(p *Proc, cl *Cluster, ucfg UCXConfig) *MPIComm { return mpi.NewComm(p, cl, ucfg) }

// --- UCX-like layer ---

// UCXConfig mirrors the UCX environment settings the paper toggles.
type UCXConfig = ucx.Config

// UCXContext binds a UCX configuration to a node.
type UCXContext = ucx.Context

// UCXWorker is a UCX progress context.
type UCXWorker = ucx.Worker

// UCXEndpoint is a UCX connection.
type UCXEndpoint = ucx.Endpoint

// Request is an in-flight asynchronous UCX operation.
type Request = ucx.Request

// DefaultUCXConfig returns the paper's UCX defaults (min RNR 0.96 ms,
// C_ACK 18, C_retry 7, ODP off).
func DefaultUCXConfig() UCXConfig { return ucx.DefaultConfig() }

// NewUCXContext creates a UCX context on a node.
func NewUCXContext(nic *RNIC, cfg UCXConfig) *UCXContext { return ucx.NewContext(nic, cfg) }

// UCXConnect wires two workers together.
func UCXConnect(a, b *UCXWorker) (*UCXEndpoint, *UCXEndpoint) { return ucx.Connect(a, b) }

// --- Pitfalls toolkit (the paper's contribution) ---

// ODPMode selects which sides register buffers with ODP.
type ODPMode = core.ODPMode

// ODP modes.
const (
	NoODP     = core.NoODP
	ServerODP = core.ServerODP
	ClientODP = core.ClientODP
	BothODP   = core.BothODP
)

// BenchConfig parameterizes the Figure-3 micro-benchmark.
type BenchConfig = core.BenchConfig

// BenchResult is one micro-benchmark run's measurements.
type BenchResult = core.BenchResult

// DefaultBench returns the paper's §V configuration.
func DefaultBench() BenchConfig { return core.DefaultBench() }

// RunMicrobench executes the micro-benchmark once.
func RunMicrobench(cfg BenchConfig) *BenchResult { return core.RunMicrobench(cfg) }

// MeasureTimeout runs the Figure-2 wrong-LID probe: T_o for one C_ACK.
func MeasureTimeout(sys System, cack int, seed int64) Time {
	return core.MeasureTimeout(sys, cack, seed)
}

// DammingIncident is a detected packet-damming occurrence.
type DammingIncident = core.DammingIncident

// FloodIncident is a detected packet-flood burst.
type FloodIncident = core.FloodIncident

// DetectDamming scans a capture for timeout-scale request stalls.
func DetectDamming(c *Capture, minStall Time) []DammingIncident {
	return core.DetectDamming(c, minStall)
}

// DetectFlood scans a capture for retransmission bursts.
func DetectFlood(c *Capture, window Time, threshold int) []FloodIncident {
	return core.DetectFlood(c, window, threshold)
}

// DummyPinger is the §IX-A dummy-communication damming workaround.
type DummyPinger = core.DummyPinger

// --- Telemetry (vendor-counter observability) ---

// TelemetryRegistry holds one component's counters and gauges under
// mlx5-style names (local_ack_timeout_err, num_page_faults, …).
type TelemetryRegistry = telemetry.Registry

// TelemetryHub aggregates the registries of a whole simulation; get a
// cluster's with Cluster.Telemetry().
type TelemetryHub = telemetry.Hub

// TelemetryLabels attach dimensions to a metric.
type TelemetryLabels = telemetry.Labels

// TelemetrySnapshot is a consistent counter reading at one instant; it
// exports Prometheus text and CSV.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetrySample is one metric's value inside a snapshot.
type TelemetrySample = telemetry.Sample

// TelemetryTimeSeries is a sequence of snapshots sampled on the sim
// clock (BenchResult.Telemetry when BenchConfig.SampleEvery is set).
type TelemetryTimeSeries = telemetry.TimeSeries

// TelemetrySampler periodically scrapes a hub on the sim clock.
type TelemetrySampler = telemetry.Sampler

// NewTelemetrySampler creates a sampler; the workload driver Starts it
// when the run begins and Stops it when the run ends.
func NewTelemetrySampler(eng *Engine, hub *TelemetryHub, interval Time) *TelemetrySampler {
	return telemetry.NewSampler(eng, hub, interval)
}

// TelemetryDelta subtracts counter snapshots (counters diff, gauges keep
// their current value).
func TelemetryDelta(prev, cur TelemetrySnapshot) TelemetrySnapshot {
	return telemetry.Delta(prev, cur)
}

// CounterDammingIncident is damming diagnosed from counters alone.
type CounterDammingIncident = core.CounterDammingIncident

// CounterFloodIncident is flood diagnosed from counters alone.
type CounterFloodIncident = core.CounterFloodIncident

// CounterDiagnosis bundles both counter-only diagnoses.
type CounterDiagnosis = core.CounterDiagnosis

// DiagnoseDammingCounters finds damming in a sampled counter series
// without a capture (minStall <= 0 selects 100 ms).
func DiagnoseDammingCounters(ts *TelemetryTimeSeries, minStall Time) []CounterDammingIncident {
	return core.DiagnoseDammingCounters(ts, minStall)
}

// DiagnoseFloodCounters finds flood in a sampled counter series without
// a capture (ratePerSec <= 0 selects 100/s).
func DiagnoseFloodCounters(ts *TelemetryTimeSeries, ratePerSec float64) []CounterFloodIncident {
	return core.DiagnoseFloodCounters(ts, ratePerSec)
}

// DiagnoseCounters runs both counter-only diagnosers with defaults.
func DiagnoseCounters(ts *TelemetryTimeSeries) CounterDiagnosis { return core.DiagnoseCounters(ts) }

// SmallestRNRDelay is the smallest InfiniBand RNR timer encoding, the
// paper's first workaround.
const SmallestRNRDelay = core.SmallestRNRDelay

// --- Unreliable Datagram + software reliability (§VIII-C) ---

// UDQP is an Unreliable Datagram queue pair.
type UDQP = rnic.UDQP

// UDSendWR is a datagram send work request.
type UDSendWR = rnic.UDSendWR

// RPCConfig tunes the software-reliability RPC layer.
type RPCConfig = softrel.Config

// RPCClient issues RPCs over UD with software timeouts and retries.
type RPCClient = softrel.Client

// RPCServer answers RPCs over UD.
type RPCServer = softrel.Server

// ErrRPCTimeout is returned when an RPC exhausts its retry budget.
var ErrRPCTimeout = softrel.ErrTimeout

// DefaultRPCConfig returns a 1 ms software timeout with 5 retries.
func DefaultRPCConfig() RPCConfig { return softrel.DefaultConfig() }

// NewRPCServer starts an RPC echo server on a node.
func NewRPCServer(nic *RNIC, cfg RPCConfig) *RPCServer { return softrel.NewServer(nic, cfg) }

// NewRPCClient creates an RPC client on a node.
func NewRPCClient(nic *RNIC, cfg RPCConfig) *RPCClient { return softrel.NewClient(nic, cfg) }

// --- Registration strategies (§VIII-A baselines) ---

// RegStrategy manages memory registrations for communication buffers.
type RegStrategy = regcache.Strategy

// RegCosts models (de)registration and bounce-copy costs.
type RegCosts = regcache.Costs

// RegWorkloadResult compares one strategy on a trace.
type RegWorkloadResult = regcache.WorkloadResult

// Registration strategy constructors.
var (
	NewDirectPin    = regcache.NewDirectPin
	NewPinDownCache = regcache.NewPinDownCache
	NewBatchedDereg = regcache.NewBatchedDereg
	NewCopyPath     = regcache.NewCopyPath
	NewODPOnce      = regcache.NewODPOnce
)

// DefaultRegCosts calibrates the Frey & Alonso crossover near 256 KiB.
func DefaultRegCosts() RegCosts { return regcache.DefaultCosts() }

// TraceOp is one buffer use in a registration workload.
type TraceOp = regcache.TraceOp

// RunRegWorkload replays a buffer-access trace against a strategy.
func RunRegWorkload(eng *Engine, s RegStrategy, trace []TraceOp) RegWorkloadResult {
	return regcache.RunWorkload(eng, s, trace)
}

// SyntheticTrace builds a hot/cold buffer-reuse trace for registration
// workload comparisons.
func SyntheticTrace(eng *Engine, nic *RNIC, nBuffers, size, n int, hotFraction float64) []TraceOp {
	return regcache.SyntheticTrace(eng, nic, nBuffers, size, n, hotFraction)
}

// --- perftest (ib_read_lat / ib_read_bw with ODP options) ---

// PerfConfig parameterizes a latency/bandwidth measurement.
type PerfConfig = perftest.Config

// LatencyResult is a perftest-style latency row.
type LatencyResult = perftest.LatencyResult

// BandwidthResult is a perftest-style bandwidth row.
type BandwidthResult = perftest.BandwidthResult

// DefaultPerfConfig returns an ib_read_lat-like setup.
func DefaultPerfConfig() PerfConfig { return perftest.DefaultConfig() }

// ReadLat measures RDMA READ latency (ib_read_lat).
func ReadLat(cfg PerfConfig) LatencyResult { return perftest.ReadLat(cfg) }

// ReadBW measures pipelined RDMA READ bandwidth (ib_read_bw).
func ReadBW(cfg PerfConfig) BandwidthResult { return perftest.ReadBW(cfg) }

// CompareRegistrationModes renders the Li et al. style latency table
// across every ODP mode, with and without prefetch.
func CompareRegistrationModes(base PerfConfig) string { return perftest.CompareModes(base) }

// --- Key-value store over UD (§VIII-C's HERD pattern) ---

// KVServer is a HERD-style key-value server over UD.
type KVServer = kvstore.Server

// KVClient issues KV operations with software reliability.
type KVClient = kvstore.Client

// NewKVServer starts a KV server on a node.
func NewKVServer(nic *RNIC, cfg RPCConfig, handleCost Time) *KVServer {
	return kvstore.NewServer(nic, cfg, handleCost)
}

// NewKVClient creates a client bound to the server.
func NewKVClient(nic *RNIC, cfg RPCConfig, srv *KVServer) *KVClient {
	return kvstore.NewClient(nic, cfg, srv)
}

// --- Scenario layer (one registry behind every figure and table) ---

// Scenario is a declarative experiment: workload, system, ODP mode,
// fault knobs, sweep grid and trials. Every paper artifact is one.
type Scenario = scenario.Scenario

// ScenarioOptions carries side outputs (counter CSV, capture files) and
// the quick-fidelity switch for RunScenario.
type ScenarioOptions = scenario.Options

// ScenarioWorkload is the interface experiment families implement and
// register (internal/core, the apps, perftest all do).
type ScenarioWorkload = scenario.Workload

// RunScenario validates and executes a scenario, rendering to w.
func RunScenario(sc Scenario, w io.Writer, opts ScenarioOptions) error {
	return scenario.Run(sc, w, opts)
}

// ScenarioNames lists the registered paper scenarios in paper order.
func ScenarioNames() []string { return scenario.Names() }

// LookupScenario returns a copy of a registered scenario by name.
func LookupScenario(name string) (Scenario, error) { return scenario.Lookup(name) }

// LoadScenarioSpec parses a JSON scenario spec (unknown fields rejected).
func LoadScenarioSpec(data []byte) (Scenario, error) { return scenario.LoadSpec(data) }

// SaveScenarioSpec renders a scenario as a JSON spec.
func SaveScenarioSpec(sc Scenario) ([]byte, error) { return scenario.SaveSpec(sc) }

// --- Statistics ---

// Series is a labelled (x, y) sequence.
type Series = stats.Series

// Summary describes a sample (mean, std, percentiles).
type Summary = stats.Summary

// Histogram is a fixed-width-bin histogram.
type Histogram = stats.Histogram

// Summarize computes a Summary.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// NewHistogram creates a histogram.
func NewHistogram(lo, hi float64, bins int) *Histogram { return stats.NewHistogram(lo, hi, bins) }
