// Command odpapps runs the paper's application experiments:
//
//	odpapps -app argodsm   # Figure 12: ArgoDSM init+finalize distribution
//	odpapps -app sparkucx  # Table 13: SparkUCX examples, ODP on/off
package main

import (
	"flag"
	"fmt"
	"log"

	"odpsim/internal/apps/argodsm"
	"odpsim/internal/apps/sparkucx"
	"odpsim/internal/cluster"
	"odpsim/internal/parallel"
	"odpsim/internal/stats"
)

func main() {
	app := flag.String("app", "argodsm", "application: argodsm, sparkucx")
	trials := flag.Int("trials", 0, "trials (default: 100 for argodsm, 10 for sparkucx)")
	seed := flag.Int64("seed", 1, "base seed")
	waves := flag.Int("waves", 2, "sampled shuffle waves per sparkucx run")
	jobs := flag.Int("j", 0, "parallel trial workers (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()
	parallel.SetJobs(*jobs)

	switch *app {
	case "argodsm":
		n := *trials
		if n == 0 {
			n = 100
		}
		runArgo(n, *seed)
	case "sparkucx":
		n := *trials
		if n == 0 {
			n = 10
		}
		runSpark(n, *seed, *waves)
	default:
		log.Fatalf("unknown app %q", *app)
	}
}

func runArgo(trials int, seed int64) {
	fmt.Printf("Figure 12: ArgoDSM init+finalize, 10 MB, %d trials\n", trials)
	for _, sys := range []cluster.System{cluster.KNL(), cluster.ReedbushH()} {
		fmt.Printf("\n=== %s ===\n", sys.Name)
		for _, odp := range []bool{false, true} {
			cfg := argodsm.DefaultConfig()
			cfg.System = sys
			cfg.ODP = odp
			cfg.Seed = seed
			hi := 6.0
			if sys.Name == cluster.ReedbushH().Name {
				hi = 4.0
			}
			times, h := argodsm.Distribution(cfg, trials, hi)
			s := stats.Summarize(times)
			label := "w/o ODP"
			if odp {
				label = "w ODP"
			}
			fmt.Printf("\n%s (avg: %.2f s):\n%s", label, s.Mean, h.Bars("s"))
		}
	}
}

func runSpark(trials int, seed int64, waves int) {
	fmt.Printf("Table 13: SparkUCX examples, %d trials, ODP enabled vs disabled\n", trials)
	for _, ex := range []sparkucx.Example{sparkucx.SparkTC, sparkucx.RecommendationExample, sparkucx.RankingMetricsExample} {
		fmt.Printf("\n=== %v ===\n", ex)
		fmt.Printf("%-16s %6s %16s %16s %8s %8s\n", "", "QPs", "Disable [s]", "Enable [s]", "ratio", "omitted")
		for _, sc := range sparkucx.Table13Configs() {
			row := sparkucx.MeasureRow(ex, sc, trials, seed, waves)
			fmt.Printf("%-16s %6d %9.1f ±%4.1f %9.1f ±%4.1f %8.2f %8d\n",
				row.Label, row.QPs,
				row.Disable.Mean, row.Disable.Std,
				row.Enable.Mean, row.Enable.Std,
				row.Ratio, row.Omitted)
		}
	}
}
