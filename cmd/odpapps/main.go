// Command odpapps runs the paper's application experiments — a thin
// wrapper over the fig12 and tab13 scenarios of the registry:
//
//	odpapps -app argodsm   # Figure 12: ArgoDSM init+finalize distribution
//	odpapps -app sparkucx  # Table 13: SparkUCX examples, ODP on/off
package main

import (
	"flag"
	"log"
	"os"

	"odpsim/internal/parallel"
	"odpsim/internal/scenario"
	_ "odpsim/internal/scenario/paper"
)

func main() {
	app := flag.String("app", "argodsm", "application: argodsm, sparkucx")
	trials := flag.Int("trials", 0, "trials (default: 100 for argodsm, 10 for sparkucx)")
	seed := flag.Int64("seed", 1, "base seed")
	waves := flag.Int("waves", 2, "sampled shuffle waves per sparkucx run")
	jobs := flag.Int("j", 0, "parallel trial workers (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()
	parallel.SetJobs(*jobs)

	var name string
	switch *app {
	case "argodsm":
		name = "fig12"
	case "sparkucx":
		name = "tab13"
	default:
		log.Fatalf("unknown app %q", *app)
	}
	sc, err := scenario.Lookup(name)
	if err != nil {
		log.Fatal(err)
	}
	if *trials > 0 {
		sc.Trials = *trials
	}
	sc.Seed = *seed
	sc.Waves = *waves
	if err := scenario.Run(sc, os.Stdout, scenario.Options{}); err != nil {
		log.Fatal(err)
	}
}
