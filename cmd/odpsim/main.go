// Command odpsim is the single entry point to the declarative scenario
// layer: every figure and table of the evaluation is a registered
// scenario, and user-defined experiments run from JSON specs without
// writing Go.
//
//	odpsim list                    # registered scenarios (the source of truth)
//	odpsim run fig4                # regenerate Figure 4 to stdout
//	odpsim run fig4 fig7 -o results/   # write results/fig4.txt, results/fig7.txt
//	odpsim run --all -o results/   # regenerate everything (-short skips slow ones)
//	odpsim run sweep.json          # run a user spec end to end
//	odpsim show fig4 > my.json     # export a registry entry as an editable spec
//
// Run flags: -j N parallel workers (output is identical for any value),
// -quick reduced-fidelity profiles, -seed, -trials, -waves and -memory
// overrides,
// plus the side outputs -counters (progress scenarios), -analyze, -csv
// and -trace (trace scenarios).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"odpsim/internal/parallel"
	"odpsim/internal/scenario"
	_ "odpsim/internal/scenario/paper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("odpsim: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		run(os.Args[2:])
	case "show":
		show(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Printf("unknown command %q", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  odpsim list                           registered scenarios
  odpsim run <name|spec.json>... [flags]  run scenarios or JSON specs
  odpsim run --all [flags]              run every registered scenario
  odpsim show <name>                    print a scenario as a JSON spec

run flags:
  -o DIR      write each result to DIR/<name>.txt instead of stdout
  -j N        parallel workers (0 = GOMAXPROCS); output identical for any N
  -quick      reduced-fidelity profiles (smaller grids, fewer trials)
  -short      with --all: skip scenarios marked slow
  -seed N     override the base seed
  -trials N   override the trial count
  -waves N    override the sampled shuffle waves (sparkucx)
  -memory M   override the memory mode: pin, odp or npr
  -transport T  override the transport mode: rc or irn
  -shards N   worker lanes for sharded workloads (0 auto-tunes from
              GOMAXPROCS; output identical for any N)
  -counters F write sampled device counters as CSV (progress scenarios)
  -analyze    append per-operation analysis (trace scenarios)
  -csv F      write the packet capture as CSV (trace scenarios)
  -trace F    write the packet capture as binary trace (trace scenarios)
  -cpuprofile F  write a pprof CPU profile of the run to FILE
  -memprofile F  write a pprof heap profile at exit to FILE
`)
}

func list() {
	fmt.Printf("%-14s %-20s %-12s %-9s %-6s %s\n", "NAME", "WORKLOAD", "TOPOLOGY", "TRANSPORT", "SHARDS", "TITLE")
	for _, name := range scenario.Names() {
		sc, err := scenario.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		slow := ""
		if sc.Slow {
			slow = "  [slow]"
		}
		topo := "-"
		if sc.Congestion != nil && sc.Congestion.Topology != nil {
			topo = sc.Congestion.Topology.Label()
		}
		// The shards column reports the scenario's default lane count; any
		// value reproduces the same bytes, so this is a throughput hint,
		// not part of the result's identity.
		shards := "-"
		if sc.Shards > 0 {
			shards = fmt.Sprintf("%d", sc.Shards)
		}
		// The transport column shows a declared override; "-" means the
		// default go-back-N RC machine (or, for comparison workloads, a
		// sweep over both transports).
		transport := "-"
		if sc.Transport != nil && sc.Transport.Mode != "" {
			transport = sc.Transport.Mode
		}
		fmt.Printf("%-14s %-20s %-12s %-9s %-6s %s%s\n", sc.Name, sc.Workload, topo, transport, shards, sc.ExpandedTitle(), slow)
	}
	fmt.Printf("\nworkload kinds for JSON specs: %v\n", scenario.Workloads())
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	all := fs.Bool("all", false, "run every registered scenario in paper order")
	outDir := fs.String("o", "", "write each result to DIR/<name>.txt instead of stdout")
	jobs := fs.Int("j", 0, "parallel workers (0 = GOMAXPROCS); output is identical for any value")
	quick := fs.Bool("quick", false, "apply the reduced-fidelity quick profiles")
	short := fs.Bool("short", false, "with --all: skip scenarios marked slow")
	seed := fs.Int64("seed", 0, "override the base seed (0 keeps the scenario's)")
	trials := fs.Int("trials", 0, "override the trial count (0 keeps the scenario's)")
	waves := fs.Int("waves", 0, "override the sampled shuffle waves (0 keeps the scenario's)")
	memory := fs.String("memory", "", "override the memory mode: pin, odp or npr (empty keeps the scenario's)")
	transport := fs.String("transport", "", "override the transport mode: rc or irn (empty keeps the scenario's)")
	shards := fs.Int("shards", 0, "worker lanes for sharded workloads (0 keeps the scenario's, which auto-tunes from GOMAXPROCS; output is identical for any value)")
	counters := fs.String("counters", "", "write sampled device counters as CSV to FILE (progress scenarios)")
	analyze := fs.Bool("analyze", false, "append per-operation analysis (trace scenarios)")
	csvOut := fs.String("csv", "", "write the packet capture as CSV to FILE (trace scenarios)")
	traceOut := fs.String("trace", "", "write the packet capture as binary trace to FILE (trace scenarios)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to FILE")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at exit to FILE")
	if err := fs.Parse(reorder(fs, args)); err != nil {
		os.Exit(2)
	}
	parallel.SetJobs(*jobs)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	switch *memory {
	case "", "pin", "odp", "npr":
	default:
		log.Fatalf("-memory must be pin, odp or npr, not %q", *memory)
	}
	switch *transport {
	case "", "rc", "irn":
	default:
		log.Fatalf("-transport must be rc or irn, not %q", *transport)
	}

	var scs []scenario.Scenario
	switch {
	case *all:
		if fs.NArg() > 0 {
			log.Fatal("--all takes no scenario arguments")
		}
		for _, name := range scenario.Names() {
			sc, err := scenario.Lookup(name)
			if err != nil {
				log.Fatal(err)
			}
			if *short && sc.Slow {
				continue
			}
			scs = append(scs, sc)
		}
	case fs.NArg() == 0:
		log.Fatal("run needs scenario names or spec files (see `odpsim list`)")
	default:
		for _, arg := range fs.Args() {
			sc, err := load(arg)
			if err != nil {
				log.Fatal(err)
			}
			scs = append(scs, sc)
		}
	}

	opts := scenario.Options{
		Quick:        *quick,
		CounterCSV:   *counters,
		CaptureCSV:   *csvOut,
		CaptureTrace: *traceOut,
		Analyze:      *analyze,
	}
	for i, sc := range scs {
		if *seed != 0 {
			sc.Seed = *seed
		}
		if *trials > 0 {
			sc.Trials = *trials
		}
		if *waves > 0 {
			sc.Waves = *waves
		}
		if *shards > 0 {
			sc.Shards = *shards
		}
		if *memory != "" {
			mem := scenario.MemorySpec{Mode: *memory}
			if sc.Memory != nil {
				mem = *sc.Memory
				mem.Mode = *memory
			}
			if mem.Mode != "npr" {
				mem.PoolKB = 0 // pool sizing is an npr-only knob
			}
			sc.Memory = &mem
		}
		if *transport != "" {
			sc.Transport = &scenario.TransportSpec{Mode: *transport}
		}
		if err := execute(sc, *outDir, len(scs) > 1 && i > 0, opts); err != nil {
			log.Fatal(err)
		}
	}
}

// reorder moves flags in front of positional arguments so
// `odpsim run fig4 -o results/` works — the standard flag package stops
// parsing at the first non-flag argument otherwise.
func reorder(fs *flag.FlagSet, args []string) []string {
	var flags, pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) < 2 || a[0] != '-' {
			pos = append(pos, a)
			continue
		}
		flags = append(flags, a)
		name := strings.TrimLeft(a, "-")
		if strings.Contains(name, "=") {
			continue
		}
		f := fs.Lookup(name)
		if f == nil {
			continue
		}
		// Non-boolean flags consume the next argument as their value.
		if bv, ok := f.Value.(interface{ IsBoolFlag() bool }); (!ok || !bv.IsBoolFlag()) && i+1 < len(args) {
			i++
			flags = append(flags, args[i])
		}
	}
	return append(flags, pos...)
}

// load resolves a run argument: a registry name, or a JSON spec path.
func load(arg string) (scenario.Scenario, error) {
	if scenario.IsSpecPath(arg) {
		return scenario.LoadSpecFile(arg)
	}
	return scenario.Lookup(arg)
}

func execute(sc scenario.Scenario, outDir string, separator bool, opts scenario.Options) error {
	var w io.Writer = os.Stdout
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outDir, sc.Name+".txt")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
		fmt.Fprintf(os.Stderr, "running %s -> %s\n", sc.Name, path)
	} else if separator {
		fmt.Println()
	}
	return scenario.Run(sc, w, opts)
}

func show(args []string) {
	if len(args) != 1 {
		log.Fatal("show needs exactly one scenario name")
	}
	sc, err := scenario.Lookup(args[0])
	if err != nil {
		log.Fatal(err)
	}
	data, err := scenario.SaveSpec(sc)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	// Summaries go to stderr so stdout stays a valid, round-trippable
	// JSON spec (`odpsim show fig4 > my.json`).
	effective := "rc (go-back-N)"
	if sc.Transport != nil && sc.Transport.Mode == "irn" {
		effective = "irn (selective repeat)"
	} else if sc.Workload == "irn-compare" {
		effective = "rc|irn sweep"
	}
	fmt.Fprintf(os.Stderr, "\ntransport %s\n", effective)
	if topo, ok := sc.BuiltTopology(); ok {
		fmt.Fprintf(os.Stderr, "\ntopology  %s\n", topo.Summary())
		fmt.Fprintf(os.Stderr, "          tiers:")
		for i, name := range topo.TierNames {
			count := 0
			for _, t := range topo.TierOf {
				if t == i {
					count++
				}
			}
			fmt.Fprintf(os.Stderr, " %s=%d", name, count)
		}
		fmt.Fprintln(os.Stderr)
	}
}
