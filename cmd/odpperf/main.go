// Command odpperf is the simulator's perftest: ib_read_lat / ib_read_bw
// equivalents with the ODP options the real suite lacks.
//
//	odpperf -test lat -size 8                     # pinned READ latency
//	odpperf -test lat -mode server                # ODP first-access penalty
//	odpperf -test lat -mode server -prefetch      # …removed by prefetch
//	odpperf -test bw -size 4096 -window 16        # pipelined bandwidth
//	odpperf -test compare                         # all modes side by side
package main

import (
	"flag"
	"fmt"
	"log"

	"odpsim/internal/cluster"
	"odpsim/internal/core"
	"odpsim/internal/perftest"
)

func main() {
	test := flag.String("test", "lat", "lat, bw, or compare")
	size := flag.Int("size", 8, "message size in bytes")
	iters := flag.Int("iters", 1000, "iterations")
	mode := flag.String("mode", "none", "ODP mode: none, server, client, both")
	implicit := flag.Bool("implicit", false, "use Implicit ODP")
	prefetch := flag.Bool("prefetch", false, "prefetch ODP pages (ibv_advise_mr)")
	window := flag.Int("window", 16, "outstanding operations (bw)")
	pages := flag.Int("pages", 0, "rotate over this many pages (0 = one slot)")
	system := flag.String("system", "KNL (Private servers B)", "system profile")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	sys, err := cluster.ByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	cfg := perftest.Config{
		System: sys, Seed: *seed, Size: *size, Iters: *iters,
		Implicit: *implicit, Prefetch: *prefetch, Window: *window, TouchPages: *pages,
	}
	switch *mode {
	case "none":
		cfg.Mode = core.NoODP
	case "server":
		cfg.Mode = core.ServerODP
	case "client":
		cfg.Mode = core.ClientODP
	case "both":
		cfg.Mode = core.BothODP
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	switch *test {
	case "lat":
		fmt.Printf("RDMA READ latency, %s, %s\n\n", sys.Name, cfg.Mode)
		fmt.Println(perftest.LatencyHeader)
		fmt.Println(perftest.ReadLat(cfg))
	case "bw":
		fmt.Printf("RDMA READ bandwidth, %s, %s, window %d\n\n", sys.Name, cfg.Mode, cfg.Window)
		fmt.Println(perftest.BandwidthHeader)
		fmt.Println(perftest.ReadBW(cfg))
	case "compare":
		fmt.Printf("RDMA READ latency by registration mode, %s\n\n", sys.Name)
		fmt.Print(perftest.CompareModes(cfg))
	default:
		log.Fatalf("unknown test %q", *test)
	}
}
