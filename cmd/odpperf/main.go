// Command odpperf is the simulator's perftest: ib_read_lat / ib_read_bw
// equivalents with the ODP options the real suite lacks.
//
//	odpperf -test lat -size 8                     # pinned READ latency
//	odpperf -test lat -mode server                # ODP first-access penalty
//	odpperf -test lat -mode server -prefetch      # …removed by prefetch
//	odpperf -test bw -size 4096 -window 16        # pipelined bandwidth
//	odpperf -test compare                         # all modes side by side
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"odpsim/internal/congestion"
	"odpsim/internal/core"
	"odpsim/internal/fabric"
	"odpsim/internal/packet"
	"odpsim/internal/parallel"
	"odpsim/internal/scenario"
	_ "odpsim/internal/scenario/paper"
	"odpsim/internal/sim"
)

func main() {
	test := flag.String("test", "lat", "lat, bw, or compare")
	writeBench := flag.String("write-bench", "", "write a perf snapshot (sequential-vs-parallel sweep wall clock, engine event-loop ns/op and allocs/op) as JSON to FILE, e.g. BENCH_baseline.json, and exit")
	checkBench := flag.String("check-bench", "", "measure a fresh snapshot, compare it against the baseline JSON in FILE, and exit non-zero on a regression beyond the noise band")
	size := flag.Int("size", 8, "message size in bytes")
	iters := flag.Int("iters", 1000, "iterations")
	mode := flag.String("mode", "none", "ODP mode: none, server, client, both")
	implicit := flag.Bool("implicit", false, "use Implicit ODP")
	prefetch := flag.Bool("prefetch", false, "prefetch ODP pages (ibv_advise_mr)")
	window := flag.Int("window", 16, "outstanding operations (bw)")
	pages := flag.Int("pages", 0, "rotate over this many pages (0 = one slot)")
	system := flag.String("system", "KNL (Private servers B)", "system profile")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	if *writeBench != "" {
		if err := writeBenchFile(*writeBench); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *checkBench != "" {
		if err := checkBenchFile(*checkBench); err != nil {
			log.Fatal(err)
		}
		return
	}

	// The measurement paths are a thin wrapper over the scenario layer's
	// "perftest" workload (renderer = -test); the same run is declarable
	// as a JSON spec for `odpsim run`.
	m := *mode
	if m == "none" {
		m = "" // the workload's default
	}
	sc := scenario.Scenario{
		Name:     "perf",
		Workload: "perftest",
		Renderer: *test,
		System:   *system,
		Seed:     *seed,
		Size:     *size,
		Ops:      *iters,
		Mode:     m,
		Implicit: *implicit,
		Prefetch: *prefetch,
		Window:   *window,
		Pages:    *pages,
	}
	if err := scenario.Run(sc, os.Stdout, scenario.Options{}); err != nil {
		log.Fatal(err)
	}
}

// benchReport is the BENCH_sweeps.json schema: one snapshot of the sweep
// runner's wall-clock behaviour and the engine hot path's per-event cost,
// tracked across PRs.
type benchReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Jobs       int `json:"jobs"`
	Sweep      struct {
		Name         string  `json:"name"`
		Points       int     `json:"points"`
		Trials       int     `json:"trials"`
		SequentialNs int64   `json:"sequential_ns"`
		ParallelNs   int64   `json:"parallel_ns"`
		Speedup      float64 `json:"speedup"`
		Identical    bool    `json:"identical"`
	} `json:"sweep"`
	Engine struct {
		Name          string  `json:"name"`
		NsPerEvent    float64 `json:"ns_per_event"`
		AllocsPerLoop int64   `json:"allocs_per_loop"`
	} `json:"engine"`
	Microbench struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
		Allocs  int64  `json:"allocs_per_op"`
	} `json:"microbench"`
	Datapath struct {
		Name          string  `json:"name"`
		NsPerSend     float64 `json:"ns_per_send"`
		AllocsPerLoop int64   `json:"allocs_per_loop"`
	} `json:"datapath"`
	Congested struct {
		Name          string  `json:"name"`
		NsPerSend     float64 `json:"ns_per_send"`
		AllocsPerLoop int64   `json:"allocs_per_loop"`
	} `json:"congested"`
}

// measureBench runs every tracked benchmark — the multi-trial Figure-4
// sweep sequentially and with the full worker pool, plus the engine,
// microbench and datapath loops — and returns one snapshot. Both
// -write-bench (record) and -check-bench (compare) consume it.
func measureBench() benchReport {
	var rep benchReport
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Jobs = parallel.Jobs()

	base := core.DefaultBench()
	grid := core.IntervalRange(0, 6, 0.5)
	const trials = 6
	sweep := func(jobs int) (time.Duration, []float64) {
		parallel.SetJobs(jobs)
		defer parallel.SetJobs(0)
		start := time.Now()
		s := core.SweepExecTime(base, grid, trials)
		return time.Since(start), s.Y
	}
	seqD, seqY := sweep(1)
	parD, parY := sweep(0)
	rep.Sweep.Name = "SweepExecTime fig4 0..6ms step 0.5ms"
	rep.Sweep.Points = len(grid)
	rep.Sweep.Trials = trials
	rep.Sweep.SequentialNs = seqD.Nanoseconds()
	rep.Sweep.ParallelNs = parD.Nanoseconds()
	if parD > 0 {
		rep.Sweep.Speedup = float64(seqD) / float64(parD)
	}
	rep.Sweep.Identical = equalSlices(seqY, parY)

	// Engine hot path: the RC requester's schedule-ACK-cancel pattern —
	// each posted retransmit timer is cancelled before it fires — on one
	// Reset-reused engine. The free list and eager cancel keep this
	// allocation-flat per loop.
	const eventsPerLoop = 4096
	engRes := testing.Benchmark(func(b *testing.B) {
		eng := sim.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Reset(int64(i))
			var pending sim.Timer
			for j := 0; j < eventsPerLoop; j++ {
				pending.Cancel() // no-op on the zero Timer
				pending = eng.After(sim.Time(j+1)*sim.Microsecond, func() {})
				eng.After(sim.Time(j)*sim.Microsecond, func() {})
			}
			eng.Run()
		}
	})
	rep.Engine.Name = "engine schedule+cancel loop, 4096 events, Reset-reused"
	rep.Engine.NsPerEvent = float64(engRes.NsPerOp()) / eventsPerLoop
	rep.Engine.AllocsPerLoop = engRes.AllocsPerOp()

	mbRes := testing.Benchmark(func(b *testing.B) {
		eng := sim.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultBench()
			cfg.Eng = eng
			cfg.Seed = int64(i + 1)
			core.RunMicrobench(cfg)
		}
	})
	rep.Microbench.Name = "RunMicrobench default config, Reset-reused engine"
	rep.Microbench.NsPerOp = mbRes.NsPerOp()
	rep.Microbench.Allocs = mbRes.AllocsPerOp()

	// Pooled packet datapath: per-trial fabric rebuild plus a pooled
	// send→deliver stream, all drawn from the engine-generation arenas.
	// Warm, the whole loop stays within a couple of allocations
	// (TestAllocBudgetSendDeliver pins the budget; DESIGN.md §8).
	const sendsPerLoop = 4096
	dpRes := testing.Benchmark(func(b *testing.B) {
		eng := sim.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Reset(int64(i))
			f := fabric.New(eng, fabric.DefaultConfig())
			src := f.AttachPort(1, "src", func(*packet.Packet) {})
			f.AttachPort(2, "dst", func(*packet.Packet) {})
			pool := f.Pool()
			for j := 0; j < sendsPerLoop; j++ {
				p := pool.Get()
				p.Opcode = packet.OpReadRequest
				p.DLID = 2
				p.PSN = uint32(j)
				src.Send(p)
			}
			eng.Run()
		}
	})
	rep.Datapath.Name = "pooled Port.Send→deliver loop, 4096 packets, rebuilt fabric, Reset-reused engine"
	rep.Datapath.NsPerSend = float64(dpRes.NsPerOp()) / sendsPerLoop
	rep.Datapath.AllocsPerLoop = dpRes.AllocsPerOp()

	// The same stream through the switched lossless-fabric stage: two
	// hosts on opposite edge switches, PFC on, every packet crossing the
	// oversubscribed core. The delta against the datapath row is the
	// per-packet cost of the congestion model.
	cgRes := testing.Benchmark(func(b *testing.B) {
		eng := sim.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Reset(int64(i))
			f := fabric.New(eng, fabric.DefaultConfig())
			src := f.AttachPort(1, "src", func(*packet.Packet) {})
			f.AttachPort(2, "dst", func(*packet.Packet) {})
			ccfg := congestion.DefaultConfig()
			ccfg.PFC = true
			f.EnableCongestion(ccfg)
			pool := f.Pool()
			for j := 0; j < sendsPerLoop; j++ {
				p := pool.Get()
				p.Opcode = packet.OpReadRequest
				p.DLID = 2
				p.PSN = uint32(j)
				src.Send(p)
			}
			eng.Run()
		}
	})
	rep.Congested.Name = "switched-fabric Port.Send→deliver loop, 4096 packets, 2 switches, PFC, Reset-reused engine"
	rep.Congested.NsPerSend = float64(cgRes.NsPerOp()) / sendsPerLoop
	rep.Congested.AllocsPerLoop = cgRes.AllocsPerOp()

	return rep
}

// writeBenchFile measures a snapshot and records it as JSON — the file
// committed as BENCH_baseline.json is what -check-bench compares against.
func writeBenchFile(path string) error {
	rep := measureBench()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: sweep %.2fx speedup (%d workers), engine %.0f ns/event, %d allocs/loop, datapath %.0f ns/send, %d allocs/loop, congested %.0f ns/send, %d allocs/loop\n",
		path, rep.Sweep.Speedup, rep.Jobs, rep.Engine.NsPerEvent, rep.Engine.AllocsPerLoop,
		rep.Datapath.NsPerSend, rep.Datapath.AllocsPerLoop, rep.Congested.NsPerSend, rep.Congested.AllocsPerLoop)
	return nil
}

// benchNoiseBand is the allowed growth over the committed baseline before
// -check-bench fails: wall-clock rows jitter with machine load, and alloc
// counts only move when code changes, so one generous band covers both.
const benchNoiseBand = 1.25

// checkBenchFile measures a fresh snapshot and fails if any tracked
// metric regressed beyond the noise band relative to the baseline file.
// Improvements never fail (refresh the baseline with -write-bench to
// lock them in); determinism (identical sequential/parallel sweep
// output) must hold outright.
func checkBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %v", path, err)
	}
	cur := measureBench()

	var failures []string
	check := func(name string, baseline, current float64) {
		status := "ok"
		if baseline > 0 && current > baseline*benchNoiseBand {
			status = "REGRESSION"
			failures = append(failures, name)
		}
		fmt.Printf("%-28s baseline %12.1f  current %12.1f  %s\n", name, baseline, current, status)
	}
	check("sweep sequential_ns", float64(base.Sweep.SequentialNs), float64(cur.Sweep.SequentialNs))
	check("sweep parallel_ns", float64(base.Sweep.ParallelNs), float64(cur.Sweep.ParallelNs))
	check("engine ns_per_event", base.Engine.NsPerEvent, cur.Engine.NsPerEvent)
	check("engine allocs_per_loop", float64(base.Engine.AllocsPerLoop), float64(cur.Engine.AllocsPerLoop))
	check("microbench ns_per_op", float64(base.Microbench.NsPerOp), float64(cur.Microbench.NsPerOp))
	check("microbench allocs_per_op", float64(base.Microbench.Allocs), float64(cur.Microbench.Allocs))
	check("datapath ns_per_send", base.Datapath.NsPerSend, cur.Datapath.NsPerSend)
	check("datapath allocs_per_loop", float64(base.Datapath.AllocsPerLoop), float64(cur.Datapath.AllocsPerLoop))
	check("congested ns_per_send", base.Congested.NsPerSend, cur.Congested.NsPerSend)
	check("congested allocs_per_loop", float64(base.Congested.AllocsPerLoop), float64(cur.Congested.AllocsPerLoop))
	if !cur.Sweep.Identical {
		failures = append(failures, "sweep determinism (sequential vs parallel output differs)")
	}

	if len(failures) > 0 {
		return fmt.Errorf("bench check failed vs %s (band %.0f%%): %v", path, (benchNoiseBand-1)*100, failures)
	}
	fmt.Printf("bench check passed vs %s (band %.0f%%)\n", path, (benchNoiseBand-1)*100)
	return nil
}

func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
