// Command odpperf is the simulator's perftest: ib_read_lat / ib_read_bw
// equivalents with the ODP options the real suite lacks.
//
//	odpperf -test lat -size 8                     # pinned READ latency
//	odpperf -test lat -mode server                # ODP first-access penalty
//	odpperf -test lat -mode server -prefetch      # …removed by prefetch
//	odpperf -test bw -size 4096 -window 16        # pipelined bandwidth
//	odpperf -test compare                         # all modes side by side
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"odpsim/internal/cluster"
	"odpsim/internal/congestion"
	"odpsim/internal/core"
	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/packet"
	"odpsim/internal/parallel"
	"odpsim/internal/rnic"
	"odpsim/internal/scenario"
	_ "odpsim/internal/scenario/paper"
	"odpsim/internal/shard"
	"odpsim/internal/sim"
)

func main() {
	test := flag.String("test", "lat", "lat, bw, or compare")
	writeBench := flag.String("write-bench", "", "write a perf snapshot (sequential-vs-parallel sweep wall clock, engine event-loop ns/op and allocs/op) as JSON to FILE, e.g. BENCH_baseline.json, and exit")
	checkBench := flag.String("check-bench", "", "measure a fresh snapshot, compare it against the baseline JSON in FILE, and exit non-zero on a regression beyond the noise band")
	size := flag.Int("size", 8, "message size in bytes")
	iters := flag.Int("iters", 1000, "iterations")
	mode := flag.String("mode", "none", "ODP mode: none, server, client, both")
	implicit := flag.Bool("implicit", false, "use Implicit ODP")
	prefetch := flag.Bool("prefetch", false, "prefetch ODP pages (ibv_advise_mr)")
	window := flag.Int("window", 16, "outstanding operations (bw)")
	pages := flag.Int("pages", 0, "rotate over this many pages (0 = one slot)")
	system := flag.String("system", "KNL (Private servers B)", "system profile")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	if *writeBench != "" {
		if err := writeBenchFile(*writeBench); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *checkBench != "" {
		if err := checkBenchFile(*checkBench); err != nil {
			log.Fatal(err)
		}
		return
	}

	// The measurement paths are a thin wrapper over the scenario layer's
	// "perftest" workload (renderer = -test); the same run is declarable
	// as a JSON spec for `odpsim run`.
	m := *mode
	if m == "none" {
		m = "" // the workload's default
	}
	sc := scenario.Scenario{
		Name:     "perf",
		Workload: "perftest",
		Renderer: *test,
		System:   *system,
		Seed:     *seed,
		Size:     *size,
		Ops:      *iters,
		Mode:     m,
		Implicit: *implicit,
		Prefetch: *prefetch,
		Window:   *window,
		Pages:    *pages,
	}
	if err := scenario.Run(sc, os.Stdout, scenario.Options{}); err != nil {
		log.Fatal(err)
	}
}

// benchReport is the BENCH_sweeps.json schema: one snapshot of the sweep
// runner's wall-clock behaviour and the engine hot path's per-event cost,
// tracked across PRs.
type benchReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Jobs       int `json:"jobs"`
	Sweep      struct {
		Name         string  `json:"name"`
		Points       int     `json:"points"`
		Trials       int     `json:"trials"`
		SequentialNs int64   `json:"sequential_ns"`
		ParallelNs   int64   `json:"parallel_ns"`
		Speedup      float64 `json:"speedup"`
		Identical    bool    `json:"identical"`
	} `json:"sweep"`
	Engine struct {
		Name          string  `json:"name"`
		NsPerEvent    float64 `json:"ns_per_event"`
		AllocsPerLoop int64   `json:"allocs_per_loop"`
	} `json:"engine"`
	Microbench struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
		Allocs  int64  `json:"allocs_per_op"`
	} `json:"microbench"`
	Datapath struct {
		Name          string  `json:"name"`
		NsPerSend     float64 `json:"ns_per_send"`
		AllocsPerLoop int64   `json:"allocs_per_loop"`
	} `json:"datapath"`
	Congested struct {
		Name          string  `json:"name"`
		NsPerSend     float64 `json:"ns_per_send"`
		AllocsPerLoop int64   `json:"allocs_per_loop"`
	} `json:"congested"`
	Sharded struct {
		Name          string  `json:"name"`
		Pods          int     `json:"pods"`
		Shards1Ns     int64   `json:"shards1_ns"`
		Shards8Ns     int64   `json:"shards8_ns"`
		Speedup       float64 `json:"speedup"`
		Identical     bool    `json:"identical"`
		AllocsPerLoop int64   `json:"allocs_per_loop"`
	} `json:"sharded"`
	IRN struct {
		Name          string `json:"name"`
		NsPerOp       int64  `json:"ns_per_op"`
		AllocsPerLoop int64  `json:"allocs_per_loop"`
	} `json:"irn"`
}

// shardedHarness is the odpperf copy of the BenchmarkShardedIncast
// fixture: eight radix-4 pod cells on per-pod engines, joined through a
// shard.Group by digest links into pod 0. One trial rebuilds the fabrics
// on Reset engines, fires a 4096-packet burst per pod and runs the
// group; the shards=8/shards=1 wall-clock ratio is the scale-out row.
type shardedHarness struct {
	g       *shard.Group
	engs    []*sim.Engine
	links   []*shard.Link
	ccfg    congestion.Config
	digests int
}

func newShardedHarness(pods, lanes int) *shardedHarness {
	h := &shardedHarness{g: shard.NewGroup(lanes)}
	h.ccfg = congestion.DefaultConfig()
	h.ccfg.Topology = congestion.PodTopology(4, 4)
	h.ccfg.PFC = true
	h.ccfg.XOffBytes = 1 << 10
	h.ccfg.XOnBytes = 512
	ds := make([]*shard.Domain, pods)
	for p := 0; p < pods; p++ {
		eng := sim.New(int64(p + 1))
		h.engs = append(h.engs, eng)
		ds[p] = h.g.AddDomain(eng)
	}
	h.links = make([]*shard.Link, pods)
	for p := 1; p < pods; p++ {
		h.links[p] = h.g.Connect(ds[p], ds[0], 25, 2*sim.Microsecond)
	}
	ds[0].OnFlight(func(shard.Flight) { h.digests++ })
	return h
}

func (h *shardedHarness) trial(seed int64) {
	h.digests = 0
	h.g.Rewind()
	for p, eng := range h.engs {
		eng.Reset(seed + int64(p))
		f := fabric.New(eng, fabric.DefaultConfig())
		link := h.links[p]
		delivered := 0
		ports := make([]*fabric.Port, 8)
		for lid := uint16(1); lid <= 8; lid++ {
			ports[lid-1] = f.AttachPort(lid, "host", func(*packet.Packet) {
				delivered++
				if link != nil && delivered%256 == 0 {
					link.Send(shard.Flight{Len: 64, Arg: uint64(delivered)})
				}
			})
		}
		f.EnableCongestion(h.ccfg)
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			pkt := pool.Get()
			pkt.Opcode = packet.OpReadRequest
			pkt.DLID = uint16(5 + (j+1)%4)
			pkt.PSN = uint32(j)
			ports[j%4].Send(pkt)
		}
	}
	h.g.Run()
}

// fingerprint is the trial's deterministic observable: the digest count
// and every pod engine's final clock. Identical fingerprints at both
// lane counts is the byte-identity contract at this layer.
func (h *shardedHarness) fingerprint() []int64 {
	fp := []int64{int64(h.digests)}
	for _, eng := range h.engs {
		fp = append(fp, int64(eng.Now()))
	}
	return fp
}

// measureBench runs every tracked benchmark — the multi-trial Figure-4
// sweep sequentially and with the full worker pool, plus the engine,
// microbench and datapath loops — and returns one snapshot. Both
// -write-bench (record) and -check-bench (compare) consume it.
func measureBench() benchReport {
	var rep benchReport
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Jobs = parallel.Jobs()

	base := core.DefaultBench()
	grid := core.IntervalRange(0, 6, 0.5)
	const trials = 6
	sweep := func(jobs int) (time.Duration, []float64) {
		parallel.SetJobs(jobs)
		defer parallel.SetJobs(0)
		start := time.Now()
		s := core.SweepExecTime(base, grid, trials)
		return time.Since(start), s.Y
	}
	seqD, seqY := sweep(1)
	parD, parY := sweep(0)
	rep.Sweep.Name = "SweepExecTime fig4 0..6ms step 0.5ms"
	rep.Sweep.Points = len(grid)
	rep.Sweep.Trials = trials
	rep.Sweep.SequentialNs = seqD.Nanoseconds()
	rep.Sweep.ParallelNs = parD.Nanoseconds()
	if parD > 0 {
		rep.Sweep.Speedup = float64(seqD) / float64(parD)
	}
	rep.Sweep.Identical = equalSlices(seqY, parY)

	// Engine hot path: the RC requester's schedule-ACK-cancel pattern —
	// each posted retransmit timer is cancelled before it fires — on one
	// Reset-reused engine. The free list and eager cancel keep this
	// allocation-flat per loop.
	const eventsPerLoop = 4096
	engRes := testing.Benchmark(func(b *testing.B) {
		eng := sim.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Reset(int64(i))
			var pending sim.Timer
			for j := 0; j < eventsPerLoop; j++ {
				pending.Cancel() // no-op on the zero Timer
				pending = eng.After(sim.Time(j+1)*sim.Microsecond, func() {})
				eng.After(sim.Time(j)*sim.Microsecond, func() {})
			}
			eng.Run()
		}
	})
	rep.Engine.Name = "engine schedule+cancel loop, 4096 events, Reset-reused"
	rep.Engine.NsPerEvent = float64(engRes.NsPerOp()) / eventsPerLoop
	rep.Engine.AllocsPerLoop = engRes.AllocsPerOp()

	mbRes := testing.Benchmark(func(b *testing.B) {
		eng := sim.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultBench()
			cfg.Eng = eng
			cfg.Seed = int64(i + 1)
			core.RunMicrobench(cfg)
		}
	})
	rep.Microbench.Name = "RunMicrobench default config, Reset-reused engine"
	rep.Microbench.NsPerOp = mbRes.NsPerOp()
	rep.Microbench.Allocs = mbRes.AllocsPerOp()

	// Pooled packet datapath: per-trial fabric rebuild plus a pooled
	// send→deliver stream, all drawn from the engine-generation arenas.
	// Warm, the whole loop stays within a couple of allocations
	// (TestAllocBudgetSendDeliver pins the budget; DESIGN.md §8).
	const sendsPerLoop = 4096
	dpRes := testing.Benchmark(func(b *testing.B) {
		eng := sim.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Reset(int64(i))
			f := fabric.New(eng, fabric.DefaultConfig())
			src := f.AttachPort(1, "src", func(*packet.Packet) {})
			f.AttachPort(2, "dst", func(*packet.Packet) {})
			pool := f.Pool()
			for j := 0; j < sendsPerLoop; j++ {
				p := pool.Get()
				p.Opcode = packet.OpReadRequest
				p.DLID = 2
				p.PSN = uint32(j)
				src.Send(p)
			}
			eng.Run()
		}
	})
	rep.Datapath.Name = "pooled Port.Send→deliver loop, 4096 packets, rebuilt fabric, Reset-reused engine"
	rep.Datapath.NsPerSend = float64(dpRes.NsPerOp()) / sendsPerLoop
	rep.Datapath.AllocsPerLoop = dpRes.AllocsPerOp()

	// The same stream through the switched lossless-fabric stage: two
	// hosts on opposite edge switches, PFC on, every packet crossing the
	// oversubscribed core. The delta against the datapath row is the
	// per-packet cost of the congestion model.
	cgRes := testing.Benchmark(func(b *testing.B) {
		eng := sim.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Reset(int64(i))
			f := fabric.New(eng, fabric.DefaultConfig())
			src := f.AttachPort(1, "src", func(*packet.Packet) {})
			f.AttachPort(2, "dst", func(*packet.Packet) {})
			ccfg := congestion.DefaultConfig()
			ccfg.PFC = true
			f.EnableCongestion(ccfg)
			pool := f.Pool()
			for j := 0; j < sendsPerLoop; j++ {
				p := pool.Get()
				p.Opcode = packet.OpReadRequest
				p.DLID = 2
				p.PSN = uint32(j)
				src.Send(p)
			}
			eng.Run()
		}
	})
	rep.Congested.Name = "switched-fabric Port.Send→deliver loop, 4096 packets, 2 switches, PFC, Reset-reused engine"
	rep.Congested.NsPerSend = float64(cgRes.NsPerOp()) / sendsPerLoop
	rep.Congested.AllocsPerLoop = cgRes.AllocsPerOp()

	// Scale-out row: the bounded-lag shard layer on a 64-host fat-tree
	// (8 radix-4 pod cells, per-pod engines, digest links into pod 0),
	// at 1 and 8 worker lanes. The speedup tracks available cores —
	// ≈1x on a single-core host — and the two runs must agree on the
	// deterministic fingerprint regardless.
	const shardedPods = 8
	shardedRun := func(lanes int) (*shardedHarness, testing.BenchmarkResult) {
		h := newShardedHarness(shardedPods, lanes)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.trial(int64(i * 16))
			}
		})
		return h, res
	}
	h1, res1 := shardedRun(1)
	h8, res8 := shardedRun(8)
	// The benchmark loops stop at machine-dependent iteration counts, so
	// re-run one fixed-seed trial on each harness before fingerprinting.
	h1.trial(7)
	h8.trial(7)
	rep.Sharded.Name = "shard.Group 8 pod cells x 4096 packets, digest links into pod 0, shards 1 vs 8"
	rep.Sharded.Pods = shardedPods
	rep.Sharded.Shards1Ns = res1.NsPerOp()
	rep.Sharded.Shards8Ns = res8.NsPerOp()
	if res8.NsPerOp() > 0 {
		rep.Sharded.Speedup = float64(res1.NsPerOp()) / float64(res8.NsPerOp())
	}
	rep.Sharded.Identical = equalInts(h1.fingerprint(), h8.fingerprint())
	rep.Sharded.AllocsPerLoop = res1.AllocsPerOp()

	// The IRN selective-repeat datapath: a two-node cluster rebuilt per
	// trial on a Reset-reused engine, flooding pinned WRITEs over a
	// 10%-lossy fabric so SACKs, reorder-buffer stashes and single-PSN
	// retransmits are all on the measured path (the odpperf copy of
	// BenchmarkIRNSend; TestAllocBudgetIRNSend pins the alloc budget).
	irnSys := cluster.KNL()
	irnSys.LossRate = 0.1
	irnSys.Transport = "irn"
	irnRes := testing.Benchmark(func(b *testing.B) {
		eng := sim.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl := irnSys.BuildOn(eng, int64(i+1), 2)
			client, server := cl.Nodes[0], cl.Nodes[1]
			const n, size = 256, 512
			lbuf := client.AS.Alloc(n * size)
			rbuf := server.AS.Alloc(n * size)
			client.AS.Touch(lbuf, n*size)
			server.AS.Touch(rbuf, n*size)
			client.RegisterMR(lbuf, n*size)
			server.RegisterMR(rbuf, n*size)
			cq := rnic.NewCQ(cl.Eng)
			scq := rnic.NewCQ(cl.Eng)
			params := rnic.ConnParams{CACK: 8, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
			qc := client.CreateQP(cq, cq)
			qs := server.CreateQP(scq, scq)
			rnic.ConnectPair(qc, qs, params, params)
			for j := 0; j < n; j++ {
				off := hostmem.Addr(j * size)
				qc.PostSend(rnic.SendWR{ID: uint64(j), Op: rnic.OpWrite,
					LocalAddr: lbuf + off, RemoteAddr: rbuf + off, Len: size})
			}
			cl.Eng.Run()
		}
	})
	rep.IRN.Name = "irn transport 256 WRITEs, 10% loss, rebuilt cluster, Reset-reused engine"
	rep.IRN.NsPerOp = irnRes.NsPerOp()
	rep.IRN.AllocsPerLoop = irnRes.AllocsPerOp()

	return rep
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeBenchFile measures a snapshot and records it as JSON — the file
// committed as BENCH_baseline.json is what -check-bench compares against.
func writeBenchFile(path string) error {
	rep := measureBench()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: sweep %.2fx speedup (%d workers), engine %.0f ns/event, %d allocs/loop, datapath %.0f ns/send, %d allocs/loop, congested %.0f ns/send, %d allocs/loop, sharded %.2fx speedup @8 lanes\n",
		path, rep.Sweep.Speedup, rep.Jobs, rep.Engine.NsPerEvent, rep.Engine.AllocsPerLoop,
		rep.Datapath.NsPerSend, rep.Datapath.AllocsPerLoop, rep.Congested.NsPerSend, rep.Congested.AllocsPerLoop,
		rep.Sharded.Speedup)
	return nil
}

// benchNoiseBand is the allowed growth over the committed baseline before
// -check-bench fails: wall-clock rows jitter with machine load, and alloc
// counts only move when code changes, so one generous band covers both.
const benchNoiseBand = 1.25

// checkBenchFile measures a fresh snapshot and fails if any tracked
// metric regressed beyond the noise band relative to the baseline file.
// Improvements never fail (refresh the baseline with -write-bench to
// lock them in); determinism (identical sequential/parallel sweep
// output) must hold outright.
func checkBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %v", path, err)
	}
	cur := measureBench()

	var failures []string
	check := func(name string, baseline, current float64) {
		status := "ok"
		if baseline > 0 && current > baseline*benchNoiseBand {
			status = "REGRESSION"
			failures = append(failures, name)
		}
		fmt.Printf("%-28s baseline %12.1f  current %12.1f  %s\n", name, baseline, current, status)
	}
	check("sweep sequential_ns", float64(base.Sweep.SequentialNs), float64(cur.Sweep.SequentialNs))
	check("sweep parallel_ns", float64(base.Sweep.ParallelNs), float64(cur.Sweep.ParallelNs))
	check("engine ns_per_event", base.Engine.NsPerEvent, cur.Engine.NsPerEvent)
	check("engine allocs_per_loop", float64(base.Engine.AllocsPerLoop), float64(cur.Engine.AllocsPerLoop))
	check("microbench ns_per_op", float64(base.Microbench.NsPerOp), float64(cur.Microbench.NsPerOp))
	check("microbench allocs_per_op", float64(base.Microbench.Allocs), float64(cur.Microbench.Allocs))
	check("datapath ns_per_send", base.Datapath.NsPerSend, cur.Datapath.NsPerSend)
	check("datapath allocs_per_loop", float64(base.Datapath.AllocsPerLoop), float64(cur.Datapath.AllocsPerLoop))
	check("congested ns_per_send", base.Congested.NsPerSend, cur.Congested.NsPerSend)
	check("congested allocs_per_loop", float64(base.Congested.AllocsPerLoop), float64(cur.Congested.AllocsPerLoop))
	check("sharded shards1_ns", float64(base.Sharded.Shards1Ns), float64(cur.Sharded.Shards1Ns))
	check("sharded shards8_ns", float64(base.Sharded.Shards8Ns), float64(cur.Sharded.Shards8Ns))
	check("sharded allocs_per_loop", float64(base.Sharded.AllocsPerLoop), float64(cur.Sharded.AllocsPerLoop))
	check("irn ns_per_op", float64(base.IRN.NsPerOp), float64(cur.IRN.NsPerOp))
	check("irn allocs_per_loop", float64(base.IRN.AllocsPerLoop), float64(cur.IRN.AllocsPerLoop))
	if !cur.Sweep.Identical {
		failures = append(failures, "sweep determinism (sequential vs parallel output differs)")
	}
	if !cur.Sharded.Identical {
		failures = append(failures, "shard determinism (shards=1 vs shards=8 fingerprint differs)")
	}

	if len(failures) > 0 {
		return fmt.Errorf("bench check failed vs %s (band %.0f%%): %v", path, (benchNoiseBand-1)*100, failures)
	}
	fmt.Printf("bench check passed vs %s (band %.0f%%)\n", path, (benchNoiseBand-1)*100)
	return nil
}

func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
