// Command odpbench is the paper's Figure-3 micro-benchmark as a CLI: it
// issues num-ops READ operations of a given size over num-qps queue
// pairs with a configurable interval, in one of the four ODP modes, and
// reports execution time and pitfall indicators over the requested trials.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"odpsim/internal/cluster"
	"odpsim/internal/core"
	"odpsim/internal/parallel"
	"odpsim/internal/sim"
	"odpsim/internal/stats"
)

func main() {
	size := flag.Int("size", 100, "message size per operation (bytes)")
	numOps := flag.Int("ops", 2, "number of READ operations")
	numQPs := flag.Int("qps", 1, "number of queue pairs (round-robin)")
	interval := flag.Duration("interval", 0, "sleep between posts")
	mode := flag.String("mode", "both", "ODP mode: none, server, client, both")
	cack := flag.Int("cack", 1, "Local ACK Timeout exponent C_ACK (0 disables)")
	retry := flag.Int("retry", 7, "Retry Count C_retry")
	rnr := flag.Duration("rnr", 1280*time.Microsecond, "minimal RNR NAK delay")
	system := flag.String("system", "KNL (Private servers B)", "system profile (see Table I)")
	trials := flag.Int("trials", 10, "number of trials")
	seed := flag.Int64("seed", 1, "base simulation seed")
	ping := flag.Bool("dummy-ping", false, "enable the dummy-communication workaround")
	jobs := flag.Int("j", 0, "parallel trial workers (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()
	parallel.SetJobs(*jobs)

	sys, err := cluster.ByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.BenchConfig{
		System:      sys,
		Size:        *size,
		NumOps:      *numOps,
		NumQPs:      *numQPs,
		Interval:    sim.Time(interval.Nanoseconds()),
		CACK:        *cack,
		RetryCount:  *retry,
		MinRNRDelay: sim.Time(rnr.Nanoseconds()),
		DummyPing:   *ping,
	}
	switch *mode {
	case "none":
		cfg.Mode = core.NoODP
	case "server":
		cfg.Mode = core.ServerODP
	case "client":
		cfg.Mode = core.ClientODP
	case "both":
		cfg.Mode = core.BothODP
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	fmt.Printf("%s: %d ops × %d B over %d QP(s), interval %v, %s, C_ACK=%d\n\n",
		sys.Name, *numOps, *size, *numQPs, *interval, cfg.Mode, *cack)

	// Trials fan across the worker pool (each derives its seed from its
	// index); the per-trial lines print in index order afterwards.
	engs := core.NewEngines()
	results := make([]*core.BenchResult, *trials)
	parallel.Run(*trials, func(w, i int) {
		c := cfg
		c.Eng = engs.Get(w)
		c.Seed = *seed + int64(i)*7919
		results[i] = core.RunMicrobench(c)
	})
	var times []float64
	timeouts := 0
	for i, r := range results {
		status := ""
		if r.TimedOut() {
			timeouts++
			status = "  [timeout]"
		}
		if r.Failed {
			status += "  [IBV_WC_RETRY_EXC_ERR]"
		}
		fmt.Printf("trial %2d: exec=%-12v packets=%-8d retransmissions=%-7d%s\n",
			i+1, r.ExecTime, r.PacketsOnWire, r.Retransmits, status)
		times = append(times, r.ExecTime.Seconds())
	}
	s := stats.Summarize(times)
	fmt.Printf("\nexec time [s]: %s\n", s)
	fmt.Printf("P(timeout) = %d/%d = %.0f%%\n", timeouts, *trials, 100*float64(timeouts)/float64(*trials))
}
