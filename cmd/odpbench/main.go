// Command odpbench is the paper's Figure-3 micro-benchmark as a CLI: it
// issues num-ops READ operations of a given size over num-qps queue
// pairs with a configurable interval, in one of the four ODP modes, and
// reports execution time and pitfall indicators over the requested
// trials. It is a thin wrapper over the scenario layer's "bench"
// workload; the same run is declarable as a JSON spec for `odpsim run`.
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"odpsim/internal/parallel"
	"odpsim/internal/scenario"
	_ "odpsim/internal/scenario/paper"
)

func main() {
	size := flag.Int("size", 100, "message size per operation (bytes)")
	numOps := flag.Int("ops", 2, "number of READ operations")
	numQPs := flag.Int("qps", 1, "number of queue pairs (round-robin)")
	interval := flag.Duration("interval", 0, "sleep between posts")
	mode := flag.String("mode", "both", "ODP mode: none, server, client, both")
	cack := flag.Int("cack", 1, "Local ACK Timeout exponent C_ACK (0 keeps the default, 1)")
	retry := flag.Int("retry", 7, "Retry Count C_retry")
	rnr := flag.Duration("rnr", 1280*time.Microsecond, "minimal RNR NAK delay")
	system := flag.String("system", "KNL (Private servers B)", "system profile (see Table I)")
	trials := flag.Int("trials", 10, "number of trials")
	seed := flag.Int64("seed", 1, "base simulation seed")
	ping := flag.Bool("dummy-ping", false, "enable the dummy-communication workaround")
	jobs := flag.Int("j", 0, "parallel trial workers (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()
	parallel.SetJobs(*jobs)

	sc := scenario.Scenario{
		Name:       "bench",
		Workload:   "bench",
		System:     *system,
		Seed:       *seed,
		Trials:     *trials,
		Mode:       *mode,
		Ops:        *numOps,
		QPs:        *numQPs,
		Size:       *size,
		CACK:       *cack,
		Retry:      *retry,
		RNRDelayMs: float64(*rnr) / float64(time.Millisecond),
		IntervalMs: float64(*interval) / float64(time.Millisecond),
		DummyPing:  *ping,
	}
	if err := scenario.Run(sc, os.Stdout, scenario.Options{}); err != nil {
		log.Fatal(err)
	}
}
