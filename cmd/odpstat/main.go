// Command odpstat demonstrates counter-only observability: it runs a
// pitfall scenario with no packet capture attached, prints the final
// device counters the way `rdma statistic` would, and diagnoses packet
// damming and packet flood from the sampled counters alone.
//
//	odpstat                      # all three scenarios
//	odpstat -scenario damming    # the Figure-5 two-READ dam
//	odpstat -scenario flood      # the Figure-8 multi-QP flood
//	odpstat -scenario baseline   # healthy pinned-memory run
//	odpstat -prom out.prom -csv out.csv   # export final snapshot / series
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"odpsim/internal/core"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

func main() {
	scenario := flag.String("scenario", "all", "damming, flood, baseline or all")
	interval := flag.Float64("interval", 10, "counter sampling interval [ms]")
	seed := flag.Int64("seed", 1, "simulation seed")
	promFile := flag.String("prom", "", "write the final snapshot in Prometheus text format to FILE")
	csvFile := flag.String("csv", "", "write the sampled counter series as CSV to FILE")
	flag.Parse()

	var names []string
	switch *scenario {
	case "all":
		names = []string{"baseline", "damming", "flood"}
	case "damming", "flood", "baseline":
		names = []string{*scenario}
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}

	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		run(name, *seed, sim.FromMillis(*interval), exportPath(*promFile, name, len(names) > 1),
			exportPath(*csvFile, name, len(names) > 1))
	}
}

// exportPath derives a per-scenario file name when several scenarios
// share one -prom/-csv flag: out.csv becomes out-flood.csv.
func exportPath(base, scenario string, many bool) string {
	if base == "" || !many {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + scenario + ext
}

// scenarioConfig builds the benchmark configuration for one scenario.
// None of them attach a capture: everything odpstat reports afterwards
// comes from counters.
func scenarioConfig(name string, seed int64, sampleEvery sim.Time) core.BenchConfig {
	cfg := core.DefaultBench()
	cfg.Seed = seed
	cfg.SampleEvery = sampleEvery
	switch name {
	case "damming":
		// Two READs, 1 ms apart, both-side ODP: the Figure-5 dam.
		cfg.Interval = sim.Millisecond
	case "flood":
		// Many QPs hammering client-side ODP pages: the Figure-8 flood.
		cfg.Mode = core.ClientODP
		cfg.Size = 32
		cfg.NumQPs = 64
		cfg.NumOps = 256
		cfg.CACK = 18
	case "baseline":
		// Pinned memory, a few READs: nothing to diagnose.
		cfg.Mode = core.NoODP
		cfg.NumOps = 8
	}
	return cfg
}

func run(name string, seed int64, sampleEvery sim.Time, promFile, csvFile string) {
	cfg := scenarioConfig(name, seed, sampleEvery)
	fmt.Printf("=== scenario %s (%s, %d ops, %d QPs, seed %d) ===\n",
		name, cfg.Mode, cfg.NumOps, cfg.NumQPs, seed)
	r := core.RunMicrobench(cfg)
	fmt.Printf("execution time %v\n\n", r.ExecTime)

	printCounters(r.Final)

	d := core.DiagnoseCounters(r.Telemetry)
	fmt.Println("\ncounter-only diagnosis:")
	if d.Healthy() {
		fmt.Println("  healthy: no damming, no flood")
	}
	for _, inc := range d.Damming {
		fmt.Printf("  DAMMING  %s\n", inc)
	}
	for _, inc := range d.Flood {
		fmt.Printf("  FLOOD    %s\n", inc)
	}

	if promFile != "" {
		writeExport(promFile, func(f *os.File) error { return r.Final.WritePrometheus(f) })
	}
	if csvFile != "" {
		writeExport(csvFile, func(f *os.File) error { return r.Telemetry.WriteCSV(f) })
	}
}

// statGroups arranges the printed counters the way `rdma statistic` and
// the sysfs tree group them.
var statGroups = []struct {
	title string
	names []string
}{
	{"hw_counters", []string{
		telemetry.LocalAckTimeoutErr, telemetry.RNRNakRetryErr, telemetry.PacketSeqErr,
		telemetry.OutOfSequence, telemetry.DuplicateRequest, telemetry.OutOfBuffer,
		telemetry.RxReadRequests, telemetry.RxWriteRequests, telemetry.RxAtomicRequests,
	}},
	{"port counters", []string{
		telemetry.PortXmitPackets, telemetry.PortRcvPackets,
		telemetry.PortXmitData, telemetry.PortRcvData, telemetry.PortXmitDiscards,
	}},
	{"odp", []string{
		telemetry.OdpPageFaults, telemetry.OdpPairFaults, telemetry.OdpStatusUpdates,
		telemetry.OdpSpuriousAccesses, telemetry.OdpInvalidations, telemetry.OdpPrefetches,
	}},
	{"simulator ground truth (not visible on real hardware)", []string{
		telemetry.SimDammedDrops, telemetry.SimRNRNakSent, telemetry.SimRetransmits,
		telemetry.SimReqPosted, telemetry.SimReqCompleted, telemetry.SimResponsesDiscarded,
	}},
}

func printCounters(s telemetry.Snapshot) {
	fmt.Println("cluster-wide counters at end of run:")
	for _, g := range statGroups {
		fmt.Printf("  [%s]\n", g.title)
		for _, n := range g.names {
			fmt.Printf("    %-26s %d\n", n, uint64(s.Total(n)))
		}
	}
}

func writeExport(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
