// Command odpexperiments regenerates every table and figure of the
// paper's evaluation in one run — the data recorded in EXPERIMENTS.md.
// With -quick it uses smaller grids and trial counts (minutes instead of
// tens of minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"
)

// experiments lists the regeneration commands in paper order.
func experiments(quick bool) [][]string {
	q := func(args ...string) []string {
		if quick {
			args = append(args, "-quick")
		}
		return args
	}
	trials := "10"
	argoTrials := "100"
	if quick {
		trials = "5"
		argoTrials = "40"
	}
	return [][]string{
		{"run", "./cmd/odptrace", "-ops", "1", "-mode", "server"},
		{"run", "./cmd/odptrace", "-ops", "1", "-mode", "client"},
		{"run", "./cmd/odpsweep", "-fig", "2"},
		q("run", "./cmd/odpsweep", "-fig", "4", "-trials", trials),
		{"run", "./cmd/odptrace", "-ops", "2", "-interval", "1ms", "-mode", "server"},
		q("run", "./cmd/odpsweep", "-fig", "6a", "-trials", trials),
		q("run", "./cmd/odpsweep", "-fig", "6b", "-trials", trials),
		q("run", "./cmd/odpsweep", "-fig", "7", "-trials", trials),
		{"run", "./cmd/odptrace", "-ops", "3", "-interval", "2.5ms", "-mode", "server"},
		q("run", "./cmd/odpsweep", "-fig", "9"),
		{"run", "./cmd/odpsweep", "-fig", "11"},
		{"run", "./cmd/odpapps", "-app", "argodsm", "-trials", argoTrials},
		{"run", "./cmd/odpapps", "-app", "sparkucx", "-trials", trials},
	}
}

func main() {
	quick := flag.Bool("quick", false, "smaller grids and trial counts")
	flag.Parse()

	start := time.Now()
	for i, args := range experiments(*quick) {
		fmt.Printf("\n================ experiment %d: go %v ================\n\n", i+1, args)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment failed: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\nall experiments completed in %v\n", time.Since(start).Round(time.Second))
}
