// Command odpexperiments regenerates every table and figure of the
// paper's evaluation in one run — the data recorded in EXPERIMENTS.md.
// It iterates the scenario registry in paper order (the same list
// `odpsim run --all` uses). With -quick it applies each scenario's
// reduced-fidelity profile (minutes instead of tens of minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"odpsim/internal/parallel"
	"odpsim/internal/scenario"
	_ "odpsim/internal/scenario/paper"
)

func main() {
	quick := flag.Bool("quick", false, "smaller grids and trial counts")
	jobs := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()
	parallel.SetJobs(*jobs)

	start := time.Now()
	for i, name := range scenario.Names() {
		fmt.Printf("\n================ experiment %d: odpsim run %s ================\n\n", i+1, name)
		if err := scenario.RunNamed(name, os.Stdout, scenario.Options{Quick: *quick}); err != nil {
			fmt.Fprintf(os.Stderr, "experiment failed: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\nall experiments completed in %v\n", time.Since(start).Round(time.Second))
}
