// Command odpsweep regenerates the paper's sweep figures as text tables.
// It is a thin wrapper over the scenario registry (`odpsim list` is the
// source of truth); each -fig value maps to a registered scenario:
//
//	odpsweep -fig 2    # fig2:  T_o vs C_ACK per system (Figure 2)
//	odpsweep -fig 4    # fig4:  exec time vs interval, 2 READs both-side (Figure 4)
//	odpsweep -fig 6a   # fig6a: P(timeout) vs interval, server ODP, 3 RNR delays (Figure 6a)
//	odpsweep -fig 6b   # fig6b: P(timeout) vs interval, client ODP (Figure 6b)
//	odpsweep -fig 7    # fig7:  P(timeout) vs interval for 2/3/4 ops (Figure 7)
//	odpsweep -fig 9    # fig9:  exec time & packets vs #QPs, 4 modes (Figures 9a/9b)
//	odpsweep -fig 11   # fig11: completions per page over time (Figures 11a/11b)
package main

import (
	"flag"
	"log"
	"os"

	"odpsim/internal/parallel"
	"odpsim/internal/scenario"
	_ "odpsim/internal/scenario/paper"
)

// figures maps the historical -fig values onto registry names.
var figures = map[string]string{
	"2":  "fig2",
	"4":  "fig4",
	"6a": "fig6a",
	"6b": "fig6b",
	"7":  "fig7",
	"9":  "fig9",
	"11": "fig11",
}

func main() {
	fig := flag.String("fig", "4", "figure to regenerate: 2, 4, 6a, 6b, 7, 9, 11")
	trials := flag.Int("trials", 10, "trials per point (probability/average figures)")
	quick := flag.Bool("quick", false, "smaller grids for a fast run")
	seed := flag.Int64("seed", 1, "base seed")
	counters := flag.String("counters", "", "with -fig 11: also write each run's sampled device counters as CSV to FILE (suffixed per run)")
	jobs := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()
	parallel.SetJobs(*jobs)

	name, ok := figures[*fig]
	if !ok {
		log.Fatalf("unknown figure %q (want 2, 4, 6a, 6b, 7, 9 or 11; see `odpsim list`)", *fig)
	}
	sc, err := scenario.Lookup(name)
	if err != nil {
		log.Fatal(err)
	}
	if *quick {
		// The historical -quick shrank grids and operation counts but left
		// the trial count to the -trials flag, restored below.
		sc = sc.ApplyQuick()
	}
	sc.Trials = *trials
	sc.Seed = *seed
	if err := scenario.Run(sc, os.Stdout, scenario.Options{CounterCSV: *counters}); err != nil {
		log.Fatal(err)
	}
}
