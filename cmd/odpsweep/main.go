// Command odpsweep regenerates the paper's evaluation figures as text
// tables:
//
//	odpsweep -fig 2    # T_o vs C_ACK per system (Figure 2)
//	odpsweep -fig 4    # exec time vs interval, 2 READs both-side (Figure 4)
//	odpsweep -fig 6a   # P(timeout) vs interval, server ODP, 3 RNR delays (Figure 6a)
//	odpsweep -fig 6b   # P(timeout) vs interval, client ODP (Figure 6b)
//	odpsweep -fig 7    # P(timeout) vs interval for 2/3/4 ops (Figure 7)
//	odpsweep -fig 9    # exec time & packets vs #QPs, 4 modes (Figures 9a/9b)
//	odpsweep -fig 11   # completions per page over time (Figures 11a/11b)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"odpsim/internal/cluster"
	"odpsim/internal/core"
	"odpsim/internal/parallel"
	"odpsim/internal/sim"
	"odpsim/internal/stats"
)

func main() {
	fig := flag.String("fig", "4", "figure to regenerate: 2, 4, 6a, 6b, 7, 9, 11")
	trials := flag.Int("trials", 10, "trials per point (probability/average figures)")
	quick := flag.Bool("quick", false, "smaller grids for a fast run")
	seed := flag.Int64("seed", 1, "base seed")
	counters := flag.String("counters", "", "with -fig 11: also write each run's sampled device counters as CSV to FILE (suffixed per run)")
	jobs := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()
	parallel.SetJobs(*jobs)

	switch *fig {
	case "2":
		fig2(*seed)
	case "4":
		fig4(*trials, *quick, *seed)
	case "6a":
		fig6a(*trials, *quick, *seed)
	case "6b":
		fig6b(*trials, *quick, *seed)
	case "7":
		fig7(*trials, *quick, *seed)
	case "9":
		fig9(*quick, *seed)
	case "11":
		fig11(*seed, *counters)
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
}

func intervals(quick bool) []sim.Time {
	if quick {
		return core.IntervalRange(0, 6, 1.0)
	}
	return core.IntervalRange(0, 6, 0.25)
}

func fig2(seed int64) {
	fmt.Println("Figure 2: measured timeout T_o [s] by C_ACK (wrong-LID probe, C_retry=7)")
	cacks := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}
	series := core.SweepTimeouts(cluster.All(), cacks, seed)
	theory := &stats.Series{Label: "T_tr (theory)"}
	theory4 := &stats.Series{Label: "4·T_tr (theory)"}
	for _, c := range cacks {
		theory.Add(float64(c), core.TheoreticalTTr(c).Seconds())
		theory4.Add(float64(c), core.TheoreticalTo(c).Seconds())
	}
	all := append([]*stats.Series{theory, theory4}, series...)
	fmt.Print(stats.Table("C_ACK", all...))
}

func fig4(trials int, quick bool, seed int64) {
	fmt.Printf("Figure 4: mean exec time [s] of 2 READs vs interval (both-side ODP, %d trials)\n", trials)
	base := core.DefaultBench()
	base.Seed = seed
	s := core.SweepExecTime(base, intervals(quick), trials)
	fmt.Print(stats.Table("interval[ms]", s))
}

func fig6a(trials int, quick bool, seed int64) {
	fmt.Printf("Figure 6a: P(timeout) [%%] vs interval, server-side ODP (%d trials)\n", trials)
	base := core.DefaultBench()
	base.Mode = core.ServerODP
	base.Seed = seed
	var series []*stats.Series
	for _, d := range []float64{0.01, 1.28, 10.24} {
		b := base
		b.MinRNRDelay = sim.FromMillis(d)
		iv := intervals(quick)
		if d == 10.24 {
			if quick {
				iv = core.IntervalRange(0, 40, 8)
			} else {
				iv = core.IntervalRange(0, 40, 2)
			}
		}
		series = append(series, core.SweepTimeoutProbability(b, iv, trials, fmt.Sprintf("%.2f ms", d)))
	}
	for _, s := range series {
		fmt.Print(stats.Table("interval[ms]", s))
		fmt.Println()
	}
}

func fig6b(trials int, quick bool, seed int64) {
	fmt.Printf("Figure 6b: P(timeout) [%%] vs interval, client-side ODP (%d trials)\n", trials)
	base := core.DefaultBench()
	base.Mode = core.ClientODP
	base.Seed = seed
	iv := core.IntervalRange(0, 6, 0.1)
	if quick {
		iv = core.IntervalRange(0, 6, 0.5)
	}
	s := core.SweepTimeoutProbability(base, iv, trials, "1.28 ms")
	fmt.Print(stats.Table("interval[ms]", s))
}

func fig7(trials int, quick bool, seed int64) {
	fmt.Printf("Figure 7: P(timeout) [%%] vs interval for 2/3/4 READs (both-side ODP, %d trials)\n", trials)
	base := core.DefaultBench()
	base.Seed = seed
	var series []*stats.Series
	for _, n := range []int{2, 3, 4} {
		b := base
		b.NumOps = n
		series = append(series, core.SweepTimeoutProbability(b, intervals(quick), trials,
			fmt.Sprintf("%d operations", n)))
	}
	fmt.Print(stats.Table("interval[ms]", series...))
}

func fig9(quick bool, seed int64) {
	numOps := 8192
	qps := []int{1, 2, 5, 10, 25, 50, 100, 150, 200}
	if quick {
		numOps = 2048
		qps = []int{1, 10, 50, 200}
	}
	fmt.Printf("Figure 9: %d READs × 100 B (200 pages), C_ACK=18, vs #QPs\n", numOps)
	base := core.DefaultBench()
	base.NumOps = numOps
	base.CACK = 18
	base.Seed = seed
	res := core.SweepQPs(base, qps, []core.ODPMode{core.NoODP, core.ServerODP, core.ClientODP, core.BothODP})
	fmt.Println("\n(9a) execution time [s]:")
	fmt.Print(stats.Table("#QPs", res.Time[core.NoODP], res.Time[core.ServerODP], res.Time[core.ClientODP], res.Time[core.BothODP]))
	fmt.Println("\n(9b) packets on the wire [thousands]:")
	fmt.Print(stats.Table("#QPs", res.Packets[core.NoODP], res.Packets[core.ServerODP], res.Packets[core.ClientODP], res.Packets[core.BothODP]))
}

func fig11(seed int64, counters string) {
	for _, ops := range []int{128, 512} {
		fmt.Printf("Figure 11 (%d operations): cumulative completions per page [ms grid]\n", ops)
		cfg := core.DefaultBench()
		cfg.Mode = core.ClientODP
		cfg.Size = 32
		cfg.NumQPs = 128
		cfg.NumOps = ops
		cfg.CACK = 18
		cfg.Seed = seed
		if counters != "" {
			cfg.SampleEvery = 10 * sim.Millisecond
		}
		r := core.RunMicrobench(cfg)
		if counters != "" {
			writeCounterCSV(counters, ops, r)
		}
		step := sim.Millisecond
		if ops > 128 {
			step = 100 * sim.Millisecond
		}
		series := core.ProgressByPage(r, cfg.Size, step)
		fmt.Print(stats.Table("t[ms]", series...))
		fmt.Println()
	}
}

// writeCounterCSV writes one fig-11 run's sampled counter series to
// base-<ops>.ext (the two runs of the figure would otherwise clobber one
// file).
func writeCounterCSV(base string, ops int, r *core.BenchResult) {
	ext := filepath.Ext(base)
	path := strings.TrimSuffix(base, ext) + "-" + strconv.Itoa(ops) + ext
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Telemetry.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(wrote counters to %s)\n", path)
}
