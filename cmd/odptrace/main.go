// Command odptrace regenerates the paper's packet-workflow figures by
// capturing the micro-benchmark's traffic ibdump-style and rendering it.
// It is a thin wrapper over the scenario layer's "trace" workload; the
// named variants are registered as fig1-server, fig1-client, fig5 and
// fig8 (see `odpsim list`):
//
//	odptrace -ops 1 -mode server   # Figure 1 (left): single READ, server-side ODP
//	odptrace -ops 1 -mode client   # Figure 1 (right): single READ, client-side ODP
//	odptrace -ops 2 -interval 1ms  # Figure 5: packet damming and the timeout
//	odptrace -ops 3 -interval 2.5ms # Figure 8: the PSN-sequence-error rescue
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"odpsim/internal/scenario"
	_ "odpsim/internal/scenario/paper"
)

func main() {
	ops := flag.Int("ops", 2, "number of READ operations")
	mode := flag.String("mode", "both", "ODP mode: none, server, client, both")
	interval := flag.Duration("interval", time.Millisecond, "interval between posts")
	rnr := flag.Duration("rnr", 1280*time.Microsecond, "minimal RNR NAK delay")
	size := flag.Int("size", 100, "message size in bytes")
	seed := flag.Int64("seed", 1, "simulation seed")
	analyze := flag.Bool("analyze", false, "print per-operation latencies and per-QP flow statistics")
	csvOut := flag.String("csv", "", "also write the capture as CSV to this file")
	traceOut := flag.String("trace", "", "also write the capture in the binary trace format to this file")
	flag.Parse()

	sc := scenario.Scenario{
		Name:       "trace",
		Workload:   "trace",
		Seed:       *seed,
		Mode:       *mode,
		Ops:        *ops,
		Size:       *size,
		RNRDelayMs: float64(*rnr) / float64(time.Millisecond),
		IntervalMs: float64(*interval) / float64(time.Millisecond),
	}
	opts := scenario.Options{
		Analyze:      *analyze,
		CaptureCSV:   *csvOut,
		CaptureTrace: *traceOut,
	}
	if err := scenario.Run(sc, os.Stdout, opts); err != nil {
		log.Fatal(err)
	}
}
