// Command odptrace regenerates the paper's packet-workflow figures by
// capturing the micro-benchmark's traffic ibdump-style and rendering it:
//
//	odptrace -ops 1 -mode server   # Figure 1 (left): single READ, server-side ODP
//	odptrace -ops 1 -mode client   # Figure 1 (right): single READ, client-side ODP
//	odptrace -ops 2 -interval 1ms  # Figure 5: packet damming and the timeout
//	odptrace -ops 3 -interval 2.5ms # Figure 8: the PSN-sequence-error rescue
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"odpsim/internal/core"
	"odpsim/internal/sim"
)

func main() {
	ops := flag.Int("ops", 2, "number of READ operations")
	mode := flag.String("mode", "both", "ODP mode: none, server, client, both")
	interval := flag.Duration("interval", time.Millisecond, "interval between posts")
	rnr := flag.Duration("rnr", 1280*time.Microsecond, "minimal RNR NAK delay")
	size := flag.Int("size", 100, "message size in bytes")
	seed := flag.Int64("seed", 1, "simulation seed")
	analyze := flag.Bool("analyze", false, "print per-operation latencies and per-QP flow statistics")
	csvOut := flag.String("csv", "", "also write the capture as CSV to this file")
	traceOut := flag.String("trace", "", "also write the capture in the binary trace format to this file")
	flag.Parse()

	cfg := core.DefaultBench()
	cfg.NumOps = *ops
	cfg.Size = *size
	cfg.Seed = *seed
	cfg.Interval = sim.Time(interval.Nanoseconds())
	cfg.MinRNRDelay = sim.Time(rnr.Nanoseconds())
	cfg.WithCapture = true
	switch *mode {
	case "none":
		cfg.Mode = core.NoODP
	case "server":
		cfg.Mode = core.ServerODP
	case "client":
		cfg.Mode = core.ClientODP
	case "both":
		cfg.Mode = core.BothODP
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	r := core.RunMicrobench(cfg)
	fmt.Printf("%d READ(s), %s, interval %v, min RNR NAK delay %v on %s\n\n",
		*ops, cfg.Mode, *interval, *rnr, cfg.System.Name)
	r.Cap.RenderFlow(os.Stdout, "node0")
	fmt.Println()
	fmt.Print(r.Cap.Summary())
	fmt.Printf("\nexecution time %v, timeouts %d, RNR NAKs %d, PSN-sequence NAKs %d\n",
		r.ExecTime, r.Timeouts, r.RNRNaksSent, r.NakSeqSent)
	if incs := core.DetectDamming(r.Cap, 100*sim.Millisecond); len(incs) > 0 {
		fmt.Println("\npacket damming detected:")
		for _, inc := range incs {
			fmt.Printf("  %s\n", inc)
		}
	}
	if *analyze {
		fmt.Println()
		fmt.Print(r.Cap.AnalysisReport())
	}
	if *csvOut != "" {
		writeFile(*csvOut, r.Cap.WriteCSV)
	}
	if *traceOut != "" {
		writeFile(*traceOut, r.Cap.WriteTrace)
	}
}

func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
