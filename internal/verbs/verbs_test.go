package verbs

import (
	"errors"
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

type env struct {
	cl         *cluster.Cluster
	ctxC, ctxS *Context
	pdC, pdS   *PD
	cqC, cqS   *CQ
	qpC, qpS   *QP
	lbuf, rbuf hostmem.Addr
}

func newEnv(t *testing.T, seed int64, odpFlags AccessFlags) *env {
	t.Helper()
	cl := cluster.KNL().Build(seed, 2)
	e := &env{cl: cl, ctxC: Open(cl.Nodes[0]), ctxS: Open(cl.Nodes[1])}
	e.pdC, e.pdS = e.ctxC.AllocPD(), e.ctxS.AllocPD()
	e.cqC, e.cqS = e.ctxC.CreateCQ(), e.ctxS.CreateCQ()
	e.qpC = e.pdC.CreateQP(e.cqC, e.cqC)
	e.qpS = e.pdS.CreateQP(e.cqS, e.cqS)
	attr := QPAttr{Timeout: 1, RetryCnt: 7, MinRNRTimer: sim.FromMillis(1.28)}
	ca, sa := attr, attr
	ca.DestLID, ca.DestQPNum = e.ctxS.LID(), e.qpS.Num()
	sa.DestLID, sa.DestQPNum = e.ctxC.LID(), e.qpC.Num()
	if err := e.qpC.Connect(ca); err != nil {
		t.Fatal(err)
	}
	if err := e.qpS.Connect(sa); err != nil {
		t.Fatal(err)
	}
	e.lbuf = cl.Nodes[0].AS.Alloc(8 * hostmem.PageSize)
	e.rbuf = cl.Nodes[1].AS.Alloc(8 * hostmem.PageSize)
	if _, err := e.pdC.RegisterMR(e.lbuf, 8*hostmem.PageSize, AccessLocalWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := e.pdS.RegisterMR(e.rbuf, 8*hostmem.PageSize, AccessRemoteRead|odpFlags); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestReadThroughVerbs(t *testing.T) {
	e := newEnv(t, 1, 0)
	if err := e.qpC.PostRead(1, e.lbuf, e.rbuf, 100); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	cqes := e.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != rnic.WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
}

func TestODPReadThroughVerbs(t *testing.T) {
	e := newEnv(t, 2, AccessOnDemand)
	if err := e.qpC.PostRead(1, e.lbuf, e.rbuf, 100); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	cqes := e.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != rnic.WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if e.ctxS.NIC().RNRNakSent == 0 {
		t.Error("ODP MR should have faulted server-side")
	}
}

func TestModifyOrderEnforced(t *testing.T) {
	e := newEnv(t, 3, 0)
	qp := e.pdC.CreateQP(e.cqC, e.cqC)
	if err := qp.ToRTR(QPAttr{}); !errors.Is(err, ErrNotInOrder) {
		t.Errorf("ToRTR from RESET = %v", err)
	}
	if err := qp.ToRTS(QPAttr{}); !errors.Is(err, ErrNotInOrder) {
		t.Errorf("ToRTS from RESET = %v", err)
	}
	if err := qp.ToInit(); err != nil {
		t.Fatal(err)
	}
	if err := qp.ToInit(); !errors.Is(err, ErrNotInOrder) {
		t.Error("double ToInit should fail")
	}
}

func TestBadAttrRejected(t *testing.T) {
	e := newEnv(t, 4, 0)
	qp := e.pdC.CreateQP(e.cqC, e.cqC)
	if err := qp.ToInit(); err != nil {
		t.Fatal(err)
	}
	if err := qp.ToRTR(QPAttr{DestLID: 2, DestQPNum: 1}); err != nil {
		t.Fatal(err)
	}
	if err := qp.ToRTS(QPAttr{Timeout: 99}); !errors.Is(err, ErrBadAttr) {
		t.Errorf("bad timeout = %v", err)
	}
	if err := qp.ToRTS(QPAttr{RetryCnt: 9}); !errors.Is(err, ErrBadAttr) {
		t.Errorf("bad retry = %v", err)
	}
}

func TestPostBeforeRTSFails(t *testing.T) {
	e := newEnv(t, 5, 0)
	qp := e.pdC.CreateQP(e.cqC, e.cqC)
	if err := qp.PostRead(1, e.lbuf, e.rbuf, 100); !errors.Is(err, ErrBadState) {
		t.Errorf("post on RESET QP = %v", err)
	}
	if err := qp.PostRecv(1, e.lbuf, 100); !errors.Is(err, ErrBadState) {
		t.Errorf("recv on RESET QP = %v", err)
	}
}

func TestRegisterMRValidation(t *testing.T) {
	e := newEnv(t, 6, 0)
	if _, err := e.pdC.RegisterMR(e.lbuf, 0, 0); err == nil {
		t.Error("zero-length MR should fail")
	}
}

func TestPinnedMRHasPinTime(t *testing.T) {
	e := newEnv(t, 7, 0)
	buf := e.cl.Nodes[0].AS.Alloc(4 * hostmem.PageSize)
	mr, err := e.pdC.RegisterMR(buf, 4*hostmem.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mr.PinTime == 0 {
		t.Error("pinned MR should report a pin cost")
	}
	if mr.IsODP() {
		t.Error("flagless MR should not be ODP")
	}
	odpMR, err := e.pdC.RegisterMR(buf, 4*hostmem.PageSize, AccessOnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if odpMR.PinTime != 0 || !odpMR.IsODP() {
		t.Error("ODP MR should be unpinned")
	}
	mr.Deregister()
}

func TestSendRecvThroughVerbs(t *testing.T) {
	e := newEnv(t, 8, 0)
	if err := e.qpS.PostRecv(7, e.rbuf, 4096); err != nil {
		t.Fatal(err)
	}
	if err := e.qpC.PostSendMsg(1, e.lbuf, 64); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	if got := e.cqS.Poll(0); len(got) != 1 || !got[0].Recv {
		t.Fatalf("recv cqes = %+v", got)
	}
}

func TestStateReflectsError(t *testing.T) {
	e := newEnv(t, 9, 0)
	// Reconnect to a bogus LID and drive it to retry exhaustion.
	qp := e.pdC.CreateQP(e.cqC, e.cqC)
	if err := qp.Connect(QPAttr{DestLID: 99, DestQPNum: 1, Timeout: 1, RetryCnt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := qp.PostRead(1, e.lbuf, e.rbuf, 100); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	if qp.State() != StateError {
		t.Errorf("state = %v, want StateError", qp.State())
	}
}

func TestWriteThroughVerbs(t *testing.T) {
	e := newEnv(t, 10, 0)
	// The remote MR in this env only has remote-read intent, but the
	// simulator models protection at region granularity; a write into
	// the registered region succeeds.
	if err := e.qpC.PostWrite(1, e.lbuf, e.rbuf, 256); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	cqes := e.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != rnic.WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
}
