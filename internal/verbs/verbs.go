// Package verbs is the user-facing InfiniBand verbs API of the simulator,
// shaped after libibverbs: contexts, protection domains, memory
// registration with ODP access flags, queue-pair creation and the
// INIT→RTR→RTS modify sequence with the attributes the paper varies
// (timeout, retry_cnt, min_rnr_timer), posting work requests and polling
// completions. It is a thin, validating layer over internal/rnic.
package verbs

import (
	"errors"
	"fmt"

	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// Access flags for RegisterMR, mirroring IBV_ACCESS_*.
type AccessFlags uint32

// Access flag values.
const (
	AccessLocalWrite AccessFlags = 1 << iota
	AccessRemoteRead
	AccessRemoteWrite
	// AccessOnDemand requests an ODP registration (IBV_ACCESS_ON_DEMAND).
	AccessOnDemand
)

// Errors returned by the verbs layer.
var (
	ErrBadState   = errors.New("verbs: queue pair is not in the required state")
	ErrBadAttr    = errors.New("verbs: invalid attribute")
	ErrNotInOrder = errors.New("verbs: modify sequence must be RESET→INIT→RTR→RTS")
)

// Context is an opened device.
type Context struct {
	nic *rnic.RNIC
}

// Open wraps an RNIC into a verbs context.
func Open(nic *rnic.RNIC) *Context { return &Context{nic: nic} }

// NIC exposes the underlying device (for counters and capture use).
func (c *Context) NIC() *rnic.RNIC { return c.nic }

// Telemetry returns the device's counter registry, the moral
// equivalent of reading its /sys/class/infiniband counters.
func (c *Context) Telemetry() *telemetry.Registry { return c.nic.Telemetry() }

// LID returns the port LID.
func (c *Context) LID() uint16 { return c.nic.LID() }

// AllocPD allocates a protection domain.
func (c *Context) AllocPD() *PD { return &PD{ctx: c} }

// CreateCQ creates a completion queue.
func (c *Context) CreateCQ() *CQ {
	return &CQ{inner: rnic.NewCQ(c.nic.Engine())}
}

// EnableImplicitODP turns on Implicit ODP for the whole address space:
// no explicit registration is needed and every access may fault
// (ibv_reg_mr with IBV_ACCESS_ON_DEMAND over the full range).
func (c *Context) EnableImplicitODP() { c.nic.EnableImplicitODP() }

// PD is a protection domain: MRs and QPs hang off it.
type PD struct {
	ctx *Context
	mrs []*MR
}

// MR is a registered memory region.
type MR struct {
	pd    *PD
	inner *rnic.MR
	// PinTime is the virtual time the registration spent pinning pages
	// (zero for ODP registrations) — callers running inside a process
	// should Sleep it to model the registration cost.
	PinTime sim.Time
}

// Addr returns the region's base address.
func (m *MR) Addr() hostmem.Addr { return m.inner.Addr }

// Len returns the region's length.
func (m *MR) Len() int { return m.inner.Len }

// IsODP reports whether the registration uses on-demand paging.
func (m *MR) IsODP() bool { return m.inner.ODP }

// Kind returns the registration's translation kind (pin, odp or npr).
func (m *MR) Kind() rnic.MemKind { return m.inner.Kind() }

// RegisterMR registers [addr, addr+len). With AccessOnDemand it creates
// a managed (non-pinned) region following the device's memory mode —
// Explicit ODP normally, an NP-RDMA shadow-table region under
// EnableNPR, or a pinned region under ForcePinned; otherwise it pins
// the pages.
func (p *PD) RegisterMR(addr hostmem.Addr, length int, flags AccessFlags) (*MR, error) {
	if length <= 0 {
		return nil, fmt.Errorf("%w: non-positive MR length %d", ErrBadAttr, length)
	}
	mr := &MR{pd: p}
	if flags&AccessOnDemand != 0 {
		inner, cost := p.ctx.nic.RegisterManagedMR(addr, length)
		mr.inner = inner
		mr.PinTime = cost
	} else {
		inner, cost := p.ctx.nic.RegisterMR(addr, length)
		mr.inner = inner
		mr.PinTime = cost
	}
	p.mrs = append(p.mrs, mr)
	return mr, nil
}

// Deregister removes the region.
func (m *MR) Deregister() { m.pd.ctx.nic.DeregisterMR(m.inner) }

// Advise prefetches the region's pages into qp's ODP context
// (ibv_advise_mr with IBV_ADVISE_MR_ADVICE_PREFETCH). A no-op for pinned
// regions.
func (m *MR) Advise(qp *QP) {
	if m.inner.ODP {
		m.pd.ctx.nic.AdviseMR(qp.inner.Num, m.inner.Addr, m.inner.Len)
	}
}

// CQ is a completion queue.
type CQ struct {
	inner *rnic.CQ
}

// Poll returns up to max completions (all if max <= 0).
func (q *CQ) Poll(max int) []rnic.CQE { return q.inner.Poll(max) }

// WaitN blocks the simulated process until n completions arrive.
func (q *CQ) WaitN(p *sim.Proc, n int) []rnic.CQE { return q.inner.WaitN(p, n) }

// Inner exposes the underlying CQ for integration with internal packages.
func (q *CQ) Inner() *rnic.CQ { return q.inner }

// QPState mirrors ibv_qp_state for the states the simulator models.
type QPState int

// QP states.
const (
	StateReset QPState = iota
	StateInit
	StateRTR
	StateRTS
	StateError
)

// QPAttr carries the modify-QP attributes used on the RTR/RTS transitions.
type QPAttr struct {
	// DestLID and DestQPNum identify the remote endpoint (RTR).
	DestLID   uint16
	DestQPNum uint32
	// MinRNRTimer is the minimal RNR NAK delay this QP advertises as a
	// responder (RTR).
	MinRNRTimer sim.Time
	// Timeout is the Local ACK Timeout exponent C_ACK (RTS); 0 disables.
	Timeout int
	// RetryCnt is C_retry (RTS).
	RetryCnt int
	// MaxRdAtomic caps outstanding READs (0 = device default).
	MaxRdAtomic int
}

// QP is a queue pair.
type QP struct {
	pd    *PD
	inner *rnic.QP
	state QPState
	attr  QPAttr
}

// CreateQP creates a queue pair in the RESET state.
func (p *PD) CreateQP(sendCQ, recvCQ *CQ) *QP {
	return &QP{pd: p, inner: p.ctx.nic.CreateQP(sendCQ.inner, recvCQ.inner)}
}

// Num returns the queue pair number.
func (q *QP) Num() uint32 { return q.inner.Num }

// State returns the verbs-level state.
func (q *QP) State() QPState {
	if q.inner.State() == rnic.QPError {
		return StateError
	}
	return q.state
}

// Stats exposes requester counters.
func (q *QP) Stats() rnic.QPStats { return q.inner.Stats }

// Inner exposes the underlying QP for integration with internal packages.
func (q *QP) Inner() *rnic.QP { return q.inner }

// ToReset returns the QP to RESET from any state, clearing its transport
// state; reconnect with Connect or the modify sequence afterwards.
func (q *QP) ToReset() {
	q.inner.Reset()
	q.state = StateReset
	q.attr = QPAttr{}
}

// ToInit performs RESET→INIT.
func (q *QP) ToInit() error {
	if q.state != StateReset {
		return ErrNotInOrder
	}
	q.state = StateInit
	return nil
}

// ToRTR performs INIT→RTR, binding the remote endpoint.
func (q *QP) ToRTR(attr QPAttr) error {
	if q.state != StateInit {
		return ErrNotInOrder
	}
	q.attr.DestLID = attr.DestLID
	q.attr.DestQPNum = attr.DestQPNum
	q.attr.MinRNRTimer = attr.MinRNRTimer
	q.state = StateRTR
	return nil
}

// ToRTS performs RTR→RTS, setting the requester timeout attributes and
// activating the connection.
func (q *QP) ToRTS(attr QPAttr) error {
	if q.state != StateRTR {
		return ErrNotInOrder
	}
	if attr.Timeout < 0 || attr.Timeout > 31 {
		return fmt.Errorf("%w: timeout exponent %d", ErrBadAttr, attr.Timeout)
	}
	if attr.RetryCnt < 0 || attr.RetryCnt > 7 {
		return fmt.Errorf("%w: retry_cnt %d", ErrBadAttr, attr.RetryCnt)
	}
	q.attr.Timeout = attr.Timeout
	q.attr.RetryCnt = attr.RetryCnt
	q.attr.MaxRdAtomic = attr.MaxRdAtomic
	q.inner.Connect(q.attr.DestLID, q.attr.DestQPNum, rnic.ConnParams{
		CACK:        q.attr.Timeout,
		RetryCount:  q.attr.RetryCnt,
		MinRNRDelay: q.attr.MinRNRTimer,
		MaxRdAtomic: q.attr.MaxRdAtomic,
	})
	q.state = StateRTS
	return nil
}

// Connect runs the full RESET→INIT→RTR→RTS sequence in one call.
func (q *QP) Connect(attr QPAttr) error {
	if err := q.ToInit(); err != nil {
		return err
	}
	if err := q.ToRTR(attr); err != nil {
		return err
	}
	return q.ToRTS(attr)
}

// PostRead posts an RDMA READ work request.
func (q *QP) PostRead(id uint64, local, remote hostmem.Addr, length int) error {
	return q.post(rnic.SendWR{ID: id, Op: rnic.OpRead, LocalAddr: local, RemoteAddr: remote, Len: length})
}

// PostWrite posts an RDMA WRITE work request.
func (q *QP) PostWrite(id uint64, local, remote hostmem.Addr, length int) error {
	return q.post(rnic.SendWR{ID: id, Op: rnic.OpWrite, LocalAddr: local, RemoteAddr: remote, Len: length})
}

// PostFetchAdd posts an 8-byte fetch-and-add; the original value arrives
// in the completion's AtomicOrig.
func (q *QP) PostFetchAdd(id uint64, local, remote hostmem.Addr, add uint64) error {
	return q.post(rnic.SendWR{ID: id, Op: rnic.OpAtomicFA, LocalAddr: local, RemoteAddr: remote, Len: 8, CompareAdd: add})
}

// PostCmpSwap posts an 8-byte compare-and-swap.
func (q *QP) PostCmpSwap(id uint64, local, remote hostmem.Addr, compare, swap uint64) error {
	return q.post(rnic.SendWR{ID: id, Op: rnic.OpAtomicCS, LocalAddr: local, RemoteAddr: remote, Len: 8, CompareAdd: compare, Swap: swap})
}

// PostSendMsg posts a two-sided SEND.
func (q *QP) PostSendMsg(id uint64, local hostmem.Addr, length int) error {
	return q.post(rnic.SendWR{ID: id, Op: rnic.OpSend, LocalAddr: local, Len: length})
}

// PostRecv posts a receive buffer.
func (q *QP) PostRecv(id uint64, addr hostmem.Addr, length int) error {
	if q.state == StateReset {
		return ErrBadState
	}
	q.inner.PostRecv(rnic.RecvWR{ID: id, Addr: addr, Len: length})
	return nil
}

func (q *QP) post(wr rnic.SendWR) error {
	if q.state != StateRTS {
		return ErrBadState
	}
	q.inner.PostSend(wr)
	return nil
}

// UDQP is a verbs-level Unreliable Datagram queue pair. UD QPs need no
// connection: the destination address travels with each work request.
type UDQP struct {
	pd    *PD
	inner *rnic.UDQP
}

// CreateUDQP creates a datagram QP bound to the completion queues.
func (p *PD) CreateUDQP(sendCQ, recvCQ *CQ) *UDQP {
	return &UDQP{pd: p, inner: p.ctx.nic.CreateUDQP(sendCQ.inner, recvCQ.inner)}
}

// Num returns the queue pair number.
func (q *UDQP) Num() uint32 { return q.inner.Num }

// Inner exposes the underlying UD QP.
func (q *UDQP) Inner() *rnic.UDQP { return q.inner }

// PostSend transmits one datagram to (destLID, destQPN).
func (q *UDQP) PostSend(id uint64, destLID uint16, destQPN uint32, local hostmem.Addr, length int) {
	q.inner.PostSend(rnic.UDSendWR{ID: id, DestLID: destLID, DestQPN: destQPN, Local: local, Len: length})
}

// PostRecv posts a receive buffer.
func (q *UDQP) PostRecv(id uint64, addr hostmem.Addr, length int) {
	q.inner.PostRecv(rnic.RecvWR{ID: id, Addr: addr, Len: length})
}
