package verbs

import (
	"testing"

	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

func TestVerbsAtomics(t *testing.T) {
	e := newEnv(t, 20, 0)
	e.cl.Nodes[1].AS.WriteWord(e.rbuf, 10)
	if err := e.qpC.PostFetchAdd(1, e.lbuf, e.rbuf, 7); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	cqes := e.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].AtomicOrig != 10 {
		t.Fatalf("cqes = %+v", cqes)
	}
	if got := e.cl.Nodes[1].AS.ReadWord(e.rbuf); got != 17 {
		t.Errorf("word = %d", got)
	}
	if err := e.qpC.PostCmpSwap(2, e.lbuf, e.rbuf, 17, 100); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	if got := e.cl.Nodes[1].AS.ReadWord(e.rbuf); got != 100 {
		t.Errorf("CAS word = %d", got)
	}
}

func TestVerbsImplicitODP(t *testing.T) {
	e := newEnv(t, 21, 0)
	e.ctxS.EnableImplicitODP()
	unregistered := e.cl.Nodes[1].AS.Alloc(hostmem.PageSize)
	if err := e.qpC.PostRead(1, e.lbuf, unregistered, 64); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	cqes := e.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != rnic.WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if e.ctxS.NIC().RNRNakSent == 0 {
		t.Error("implicit ODP access should fault")
	}
}

func TestVerbsAdvisePrefetch(t *testing.T) {
	e := newEnv(t, 22, AccessOnDemand)
	// Re-register remote as ODP and prefetch into the server QP.
	mr, err := e.pdS.RegisterMR(e.rbuf, hostmem.PageSize, AccessOnDemand)
	if err != nil {
		t.Fatal(err)
	}
	mr.Advise(e.qpS)
	e.cl.Eng.Run() // drain the prefetch pipeline
	start := e.cl.Eng.Now()
	if err := e.qpC.PostRead(1, e.lbuf, e.rbuf, 64); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	if d := e.cl.Eng.Now() - start; d > 20*sim.Microsecond {
		t.Errorf("prefetched READ took %v", d)
	}
	if e.ctxS.NIC().RNRNakSent != 0 {
		t.Error("prefetched page must not fault")
	}
}

func TestVerbsUDQP(t *testing.T) {
	e := newEnv(t, 23, 0)
	cqA, cqB := e.ctxC.CreateCQ(), e.ctxS.CreateCQ()
	qa := e.pdC.CreateUDQP(cqA, cqA)
	qb := e.pdS.CreateUDQP(cqB, cqB)
	qb.PostRecv(9, e.rbuf, hostmem.PageSize)
	qa.PostSend(1, e.ctxS.LID(), qb.Num(), e.lbuf, 64)
	e.cl.Eng.Run()
	send := cqA.Poll(0)
	if len(send) != 1 || send[0].Status != rnic.WCSuccess {
		t.Fatalf("send cqes = %+v", send)
	}
	recv := cqB.Poll(0)
	if len(recv) != 1 || !recv[0].Recv || recv[0].ByteLen != 64 {
		t.Fatalf("recv cqes = %+v", recv)
	}
	if recv[0].SrcQPN != qa.Num() || recv[0].SrcLID != e.ctxC.LID() {
		t.Errorf("source identity missing: %+v", recv[0])
	}
}

func TestVerbsUDNoConnectionNeeded(t *testing.T) {
	// A UD QP can address multiple peers without any modify sequence.
	e := newEnv(t, 24, 0)
	cqA := e.ctxC.CreateCQ()
	qa := e.pdC.CreateUDQP(cqA, cqA)
	// Datagram into the void (unknown LID): silently gone, send still
	// completes.
	qa.PostSend(1, 99, 1, e.lbuf, 8)
	e.cl.Eng.Run()
	if got := cqA.Poll(0); len(got) != 1 || got[0].Status != rnic.WCSuccess {
		t.Fatalf("UD send must complete locally: %+v", got)
	}
}

func TestQPResetRecovery(t *testing.T) {
	// The standard recovery path: retry exhaustion → RESET → reconnect.
	e := newEnv(t, 25, 0)
	qp := e.pdC.CreateQP(e.cqC, e.cqC)
	if err := qp.Connect(QPAttr{DestLID: 99, DestQPNum: 1, Timeout: 1, RetryCnt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := qp.PostRead(1, e.lbuf, e.rbuf, 64); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	e.cqC.Poll(0)
	if qp.State() != StateError {
		t.Fatal("expected error state")
	}

	// Recover: reset, reconnect to the real peer QP, retry.
	qp.ToReset()
	if qp.State() != StateReset {
		t.Fatal("reset failed")
	}
	peer := e.pdS.CreateQP(e.cqS, e.cqS)
	if err := peer.Connect(QPAttr{DestLID: e.ctxC.LID(), DestQPNum: qp.Num(), Timeout: 1, RetryCnt: 7}); err != nil {
		t.Fatal(err)
	}
	if err := qp.Connect(QPAttr{DestLID: e.ctxS.LID(), DestQPNum: peer.Num(), Timeout: 1, RetryCnt: 7}); err != nil {
		t.Fatal(err)
	}
	if err := qp.PostRead(2, e.lbuf, e.rbuf, 64); err != nil {
		t.Fatal(err)
	}
	e.cl.Eng.Run()
	cqes := e.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != rnic.WCSuccess {
		t.Fatalf("post-recovery READ: %+v", cqes)
	}
}
