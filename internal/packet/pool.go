package packet

// Pool recycles Packet storage through the datapath, the way a DPDK-style
// mempool recycles mbufs: senders Get a cleared packet, the fabric Puts it
// back after final delivery or drop, and steady-state traffic allocates
// nothing. Like the sim engine's event free list, recycled packets are
// generation-counted: every Put bumps the packet's generation, so tests
// can assert that storage really was recycled, and a double Put (which
// would hand the same storage to two owners) panics immediately.
//
// A Pool belongs to one simulation engine and, like the engine's event
// storage, is meant to outlive individual runs: fabrics built on a
// Reset-reused engine share one pool, so repeated trials stop allocating
// packets once the first trial has warmed the free list. See DESIGN.md §8
// for the ownership contract.
type Pool struct {
	free []*Packet

	// Counters. Gets/Puts are the pool's conservation ledger: after a
	// drained simulation every in-flight packet has been returned, so
	// Gets - Puts counts foreign packets (constructed outside the pool)
	// that were Put minus pooled packets leaked — zero when both-side
	// discipline holds. Allocs counts Gets that found the free list
	// empty and allocated fresh storage.
	Gets   uint64
	Puts   uint64
	Allocs uint64
}

// NewPool creates an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, recycling free storage when available. The
// caller owns the packet until it hands it to the fabric.
func (pl *Pool) Get() *Packet {
	pl.Gets++
	n := len(pl.free)
	if n == 0 {
		pl.Allocs++
		return &Packet{}
	}
	p := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	gen := p.gen
	*p = Packet{}
	p.gen = gen
	return p
}

// Put returns a packet to the free list. Putting a packet that is already
// free panics: a double Put would hand the same storage to two owners and
// silently corrupt later traffic. Packets constructed outside the pool may
// be Put (they simply join the free list), which lets the fabric reclaim
// every packet it delivers without caring where it came from.
func (pl *Pool) Put(p *Packet) {
	if p.pooled {
		panic("packet: double Put — packet is already in the free list")
	}
	p.pooled = true
	p.gen++
	pl.Puts++
	pl.free = append(pl.free, p)
}

// FreeLen returns the number of packets currently in the free list.
func (pl *Pool) FreeLen() int { return len(pl.free) }

// Balance returns Puts - Gets. For a drained simulation whose senders all
// draw from the pool it is the number of foreign packets absorbed (zero
// when every sender used Get); a negative balance means pooled packets
// leaked without being returned.
func (pl *Pool) Balance() int64 { return int64(pl.Puts) - int64(pl.Gets) }

// Generation returns how many times the packet's storage has been
// recycled through a pool. Tests use it to assert recycling happened.
func (p *Packet) Generation() uint64 { return p.gen }
