package packet

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeClasses(t *testing.T) {
	reqs := []Opcode{OpSendOnly, OpWriteOnly, OpReadRequest}
	for _, o := range reqs {
		if !o.IsRequest() {
			t.Errorf("%v should be a request", o)
		}
		if o.IsReadResponse() {
			t.Errorf("%v should not be a read response", o)
		}
	}
	resps := []Opcode{OpReadRespFirst, OpReadRespMiddle, OpReadRespLast, OpReadRespOnly}
	for _, o := range resps {
		if o.IsRequest() {
			t.Errorf("%v should not be a request", o)
		}
		if !o.IsReadResponse() {
			t.Errorf("%v should be a read response", o)
		}
	}
	if OpAcknowledge.IsRequest() || OpAcknowledge.IsReadResponse() {
		t.Error("Acknowledge misclassified")
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpReadRequest.String() != "RDMA READ Request" {
		t.Errorf("got %q", OpReadRequest.String())
	}
	if !strings.Contains(Opcode(99).String(), "99") {
		t.Error("unknown opcode should render its number")
	}
}

func TestSyndromeStrings(t *testing.T) {
	if SynRNRNAK.String() != "RNR NAK" {
		t.Errorf("got %q", SynRNRNAK.String())
	}
	if SynNAKSeqErr.String() != "NAK (PSN Sequence Error)" {
		t.Errorf("got %q", SynNAKSeqErr.String())
	}
	if !strings.Contains(Syndrome(99).String(), "99") {
		t.Error("unknown syndrome should render its number")
	}
}

func TestWireSize(t *testing.T) {
	read := &Packet{Opcode: OpReadRequest}
	// LRH+BTH+RETH+ICRC+VCRC = 8+12+16+4+2 = 42
	if read.WireSize() != 42 {
		t.Errorf("READ request wire size = %d, want 42", read.WireSize())
	}
	resp := &Packet{Opcode: OpReadRespOnly, PayloadLen: 100}
	// 8+12+4+4+2+100 = 130
	if resp.WireSize() != 130 {
		t.Errorf("READ response wire size = %d, want 130", resp.WireSize())
	}
	ack := &Packet{Opcode: OpAcknowledge}
	if ack.WireSize() != 30 {
		t.Errorf("ACK wire size = %d, want 30", ack.WireSize())
	}
	mid := &Packet{Opcode: OpReadRespMiddle, PayloadLen: 4096}
	if mid.WireSize() != 8+12+4+2+4096 {
		t.Errorf("middle response wire size = %d", mid.WireSize())
	}
}

func TestHasAETH(t *testing.T) {
	with := []Opcode{OpAcknowledge, OpReadRespFirst, OpReadRespLast, OpReadRespOnly}
	for _, o := range with {
		if !(&Packet{Opcode: o}).HasAETH() {
			t.Errorf("%v should carry AETH", o)
		}
	}
	without := []Opcode{OpSendOnly, OpWriteOnly, OpReadRequest, OpReadRespMiddle}
	for _, o := range without {
		if (&Packet{Opcode: o}).HasAETH() {
			t.Errorf("%v should not carry AETH", o)
		}
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Opcode: OpReadRequest, PSN: 5, DestQP: 12, RemoteAddr: 0x1000, DMALen: 100}
	s := p.String()
	for _, want := range []string{"RDMA READ Request", "PSN=5", "QP=12", "va=0x1000", "len=100"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	nak := &Packet{Opcode: OpAcknowledge, Syndrome: SynRNRNAK, AckPSN: 3, DestQP: 7}
	if !strings.Contains(nak.String(), "RNR NAK") {
		t.Errorf("NAK String() = %q", nak.String())
	}
}

func TestClone(t *testing.T) {
	p := &Packet{Opcode: OpReadRequest, PSN: 9, DMALen: 64}
	q := p.Clone()
	q.PSN = 10
	if p.PSN != 9 {
		t.Error("Clone should not alias")
	}
	if q.DMALen != 64 {
		t.Error("Clone should copy fields")
	}
}

func TestPSNAddWraps(t *testing.T) {
	if PSNAdd(0xFFFFFF, 1) != 0 {
		t.Errorf("PSNAdd wrap = %d", PSNAdd(0xFFFFFF, 1))
	}
	if PSNAdd(0, 5) != 5 {
		t.Error("PSNAdd basic")
	}
	if PSNAdd(10, -3) != 7 {
		t.Errorf("PSNAdd negative = %d", PSNAdd(10, -3))
	}
	if PSNAdd(2, -5) != 0xFFFFFD {
		t.Errorf("PSNAdd negative wrap = %d", PSNAdd(2, -5))
	}
}

func TestPSNDiff(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int
	}{
		{5, 3, 2},
		{3, 5, -2},
		{0, 0xFFFFFF, 1},  // wrapped ahead
		{0xFFFFFF, 0, -1}, // wrapped behind
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := PSNDiff(c.a, c.b); got != c.want {
			t.Errorf("PSNDiff(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: PSNDiff(PSNAdd(p,n), p) == n for |n| < 2^23.
func TestPSNRoundTripProperty(t *testing.T) {
	f := func(p uint32, n int32) bool {
		p &= 1<<24 - 1
		nn := int(n % (1 << 22))
		return PSNDiff(PSNAdd(p, nn), p) == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// Property: PSNLess is a strict order on nearby PSNs.
func TestPSNLessProperty(t *testing.T) {
	f := func(p uint32, n uint16) bool {
		p &= 1<<24 - 1
		if n == 0 {
			return !PSNLess(p, p)
		}
		q := PSNAdd(p, int(n))
		return PSNLess(p, q) && !PSNLess(q, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}
