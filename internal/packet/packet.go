// Package packet models InfiniBand packets at the level ibdump shows them:
// the Base Transport Header fields that matter to Reliable Connection
// (opcode, 24-bit PSN, destination QP), the RDMA Extended Transport Header
// for READ/WRITE, and the ACK Extended Transport Header carrying ACKs and
// NAKs (including RNR NAK and the PSN sequence error NAK central to the
// paper's analysis).
package packet

import "fmt"

// Opcode is the BTH opcode. Only the RC opcodes the reproduction needs are
// modelled; multi-packet READ responses use First/Middle/Last as on the
// wire.
type Opcode int

// RC opcodes.
const (
	OpSendOnly Opcode = iota
	OpWriteOnly
	OpReadRequest
	OpReadRespFirst
	OpReadRespMiddle
	OpReadRespLast
	OpReadRespOnly
	OpAcknowledge
	// OpUDSend is an Unreliable Datagram send (its BTH differs on the
	// wire; the simulator only needs the distinct opcode).
	OpUDSend
	// OpFetchAdd and OpCmpSwap are the RC atomic requests; OpAtomicResp
	// carries the original value back.
	OpFetchAdd
	OpCmpSwap
	OpAtomicResp
	// OpCNP is the RoCEv2-style Congestion Notification Packet a DCQCN
	// notification point sends back to the traffic source when it
	// receives ECN-marked packets (one per QP per notification window).
	OpCNP
	// OpPFCPause is an IEEE 802.1Qbb priority-flow-control pause/resume
	// frame. It is link-local (switch to upstream neighbour), never
	// routed, and surfaces in captures only through fabric taps.
	OpPFCPause
	// OpSACK is the IRN selective acknowledgement: a cumulative ACK
	// (AckPSN, everything below it received) plus a bitmap of
	// out-of-order PSNs received above it (SackBase + SackBitmap). Only
	// the irn transport emits it; the go-back-N machine never sees one.
	OpSACK
)

// String implements fmt.Stringer using ibdump-like names.
func (o Opcode) String() string {
	switch o {
	case OpSendOnly:
		return "SEND Only"
	case OpWriteOnly:
		return "RDMA WRITE Only"
	case OpReadRequest:
		return "RDMA READ Request"
	case OpReadRespFirst:
		return "RDMA READ Response First"
	case OpReadRespMiddle:
		return "RDMA READ Response Middle"
	case OpReadRespLast:
		return "RDMA READ Response Last"
	case OpReadRespOnly:
		return "RDMA READ Response Only"
	case OpAcknowledge:
		return "Acknowledge"
	case OpUDSend:
		return "UD SEND Only"
	case OpFetchAdd:
		return "ATOMIC FetchAdd"
	case OpCmpSwap:
		return "ATOMIC CmpSwap"
	case OpAtomicResp:
		return "ATOMIC Acknowledge"
	case OpCNP:
		return "CNP"
	case OpPFCPause:
		return "PFC Pause"
	case OpSACK:
		return "SACK"
	default:
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
}

// IsRequest reports whether the opcode is requester-to-responder.
func (o Opcode) IsRequest() bool {
	switch o {
	case OpSendOnly, OpWriteOnly, OpReadRequest, OpFetchAdd, OpCmpSwap:
		return true
	}
	return false
}

// IsReadResponse reports whether the opcode carries READ response data.
func (o Opcode) IsReadResponse() bool {
	switch o {
	case OpReadRespFirst, OpReadRespMiddle, OpReadRespLast, OpReadRespOnly:
		return true
	}
	return false
}

// Syndrome is the AETH syndrome class of an Acknowledge packet.
type Syndrome int

// Acknowledge syndromes.
const (
	SynACK Syndrome = iota
	// SynRNRNAK: Receiver Not Ready — retry after the advertised timer.
	// ODP responders use it to suspend senders during page faults.
	SynRNRNAK
	// SynNAKSeqErr: PSN Sequence Error — the responder saw a PSN beyond
	// the one it expected; retransmit from the expected PSN.
	SynNAKSeqErr
	// SynNAKRemoteAccessErr: protection/rkey violation; fatal for the QP.
	SynNAKRemoteAccessErr
)

// String implements fmt.Stringer.
func (s Syndrome) String() string {
	switch s {
	case SynACK:
		return "ACK"
	case SynRNRNAK:
		return "RNR NAK"
	case SynNAKSeqErr:
		return "NAK (PSN Sequence Error)"
	case SynNAKRemoteAccessErr:
		return "NAK (Remote Access Error)"
	default:
		return fmt.Sprintf("Syndrome(%d)", int(s))
	}
}

// Packet is one InfiniBand packet in flight. Fields are grouped by the
// wire header they correspond to.
type Packet struct {
	// Routing (LRH).
	SLID, DLID uint16

	// BTH.
	Opcode Opcode
	PSN    uint32 // 24-bit packet sequence number
	DestQP uint32 // destination QP number
	AckReq bool   // AckReq bit (requester asks for an acknowledge)

	// SrcQP is not on the RC wire (the responder knows it from the QP
	// context); the simulator carries it for addressing and capture.
	SrcQP uint32

	// RETH (READ requests and WRITEs).
	RemoteAddr uint64
	DMALen     uint32

	// AETH (Acknowledge and READ Response First/Last/Only).
	Syndrome Syndrome
	// RNRTimerNs is the receiver-advertised minimum retry delay in
	// nanoseconds (meaningful for SynRNRNAK).
	RNRTimerNs int64
	// AckPSN is the PSN being acknowledged / NAKed (equals PSN for
	// coalesced ACKs; kept explicit for readability of traces).
	AckPSN uint32

	// SACK extension (OpSACK only). AckPSN is the cumulative ACK (the
	// highest PSN received in order; everything at or below it has been
	// received). SackBase is the first missing PSN — the responder's
	// ePSN, AckPSN+1 — and bit i of SackBitmap means PSN SackBase+i
	// arrived out of order (bit 0 is always clear: that PSN is the
	// hole). A SACK is therefore also the IRN per-packet NAK for
	// SackBase.
	SackBase   uint32
	SackBitmap uint64

	// Payload.
	PayloadLen int

	// AppSeq models an application-level header in the payload (used by
	// software-reliability RPC matching over UD).
	AppSeq uint64
	// AppWords carries a small application payload inline (the simulator
	// does not move bulk data, but RPC-style protocols need their
	// headers and small values to flow).
	AppWords []uint64

	// AtomicETH fields (FetchAdd: Swap = addend; CmpSwap: Compare/Swap).
	AtomicSwap    uint64
	AtomicCompare uint64
	// AtomicOrig is the original value carried by OpAtomicResp.
	AtomicOrig uint64

	// DammingDoomed is a simulator-model flag for the ConnectX-4 packet
	// damming quirk: the packet appears on the wire (ibdump shows the
	// retransmitted request) but the receiving RNIC discards it without
	// processing or NAKing it. Set once per work request by the
	// requester model; see internal/rnic.
	DammingDoomed bool

	// ECN is the congestion-experienced mark a switch sets when the
	// packet passed an egress queue above the ECN threshold (the CE
	// codepoint of the IP ECN field in RoCEv2; InfiniBand proper carries
	// the equivalent FECN bit). The receiving RNIC answers marked
	// packets with CNPs when DCQCN is on.
	ECN bool

	// PFC pause-frame fields (OpPFCPause only). XOff true pauses the
	// receiving port's class, false resumes it; VL is the paused virtual
	// lane / priority.
	XOff bool
	VL   uint8

	// Pool bookkeeping (not wire state): gen counts recycles through a
	// Pool, pooled marks packets currently sitting in a free list so a
	// double Put panics instead of corrupting later traffic.
	gen    uint64
	pooled bool
}

// Header sizes in bytes, per the InfiniBand architecture specification.
const (
	lrhBytes          = 8
	bthBytes          = 12
	rethBytes         = 16
	aethBytes         = 4
	dethBytes         = 8
	atomicEthBytes    = 28
	atomicAckEthBytes = 8
	icrcBytes         = 4
	vcrcBytes         = 2
	// cnpPadBytes is the 16-byte reserved payload a RoCEv2 CNP carries
	// after the BTH; pfcFrameBytes is the fixed size of an 802.1Qbb
	// pause frame (a minimum-size control frame).
	cnpPadBytes   = 16
	pfcFrameBytes = 64
	// sackEthBytes is the IRN SACK extension after the AETH: a 3-byte
	// base PSN (padded to 4) plus the 8-byte reception bitmap.
	sackEthBytes = 12
)

// WireSize returns the packet's size on the wire in bytes, used for
// serialization-delay modelling and byte counters.
func (p *Packet) WireSize() int {
	if p.Opcode == OpPFCPause {
		return pfcFrameBytes
	}
	n := lrhBytes + bthBytes + icrcBytes + vcrcBytes + p.PayloadLen
	switch p.Opcode {
	case OpReadRequest, OpWriteOnly:
		n += rethBytes
	case OpAcknowledge, OpReadRespFirst, OpReadRespLast, OpReadRespOnly:
		n += aethBytes
	case OpUDSend:
		n += dethBytes
	case OpFetchAdd, OpCmpSwap:
		n += atomicEthBytes
	case OpAtomicResp:
		n += aethBytes + atomicAckEthBytes
	case OpCNP:
		n += cnpPadBytes
	case OpSACK:
		n += aethBytes + sackEthBytes
	}
	return n
}

// HasAETH reports whether the packet carries an AETH.
func (p *Packet) HasAETH() bool {
	switch p.Opcode {
	case OpAcknowledge, OpReadRespFirst, OpReadRespLast, OpReadRespOnly, OpSACK:
		return true
	}
	return false
}

// String renders the packet the way the paper's workflow figures label
// them.
func (p *Packet) String() string {
	s := fmt.Sprintf("%s PSN=%d QP=%d", p.Opcode, p.PSN, p.DestQP)
	switch p.Opcode {
	case OpReadRequest, OpWriteOnly:
		s += fmt.Sprintf(" va=0x%x len=%d", p.RemoteAddr, p.DMALen)
	case OpAcknowledge:
		s = fmt.Sprintf("%s PSN=%d QP=%d", p.Syndrome, p.AckPSN, p.DestQP)
	case OpCNP:
		s = fmt.Sprintf("CNP QP=%d", p.DestQP)
	case OpSACK:
		s = fmt.Sprintf("SACK cum=%d base=%d bitmap=0x%x QP=%d", p.AckPSN, p.SackBase, p.SackBitmap, p.DestQP)
	case OpPFCPause:
		if p.XOff {
			s = fmt.Sprintf("PFC Pause VL=%d (XOFF)", p.VL)
		} else {
			s = fmt.Sprintf("PFC Resume VL=%d (XON)", p.VL)
		}
	}
	if p.PayloadLen > 0 && p.Opcode != OpReadRequest {
		s += fmt.Sprintf(" payload=%dB", p.PayloadLen)
	}
	if p.ECN {
		s += " [ECN]"
	}
	return s
}

// Clone returns a copy of the packet (retransmissions are distinct wire
// packets). The copy is fresh storage, so pool bookkeeping does not carry
// over.
func (p *Packet) Clone() *Packet {
	q := *p
	q.gen = 0
	q.pooled = false
	return &q
}

const psnMask = 1<<24 - 1

// PSNAdd returns the PSN n steps after psn, modulo 2^24.
func PSNAdd(psn uint32, n int) uint32 {
	return uint32(int64(psn)+int64(n)) & psnMask
}

// PSNDiff returns the signed distance a−b in 24-bit serial arithmetic:
// positive if a is ahead of b, negative if behind.
func PSNDiff(a, b uint32) int {
	d := int32((a - b) & psnMask)
	if d >= 1<<23 {
		d -= 1 << 24
	}
	return int(d)
}

// PSNLess reports whether a precedes b in serial order.
func PSNLess(a, b uint32) bool { return PSNDiff(a, b) < 0 }
