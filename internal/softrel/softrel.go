// Package softrel implements software reliability over the Unreliable
// Datagram transport: request/response RPCs with application-level
// sequence numbers, coarse-grained software timeouts and bounded retries
// — the approach of Koop et al. and Kalia et al. that §VIII-C contrasts
// with hardware Reliable Connection.
//
// Its relevance to the paper's lessons: the RC hardware timeout is at
// best ≈500 ms on most devices (Figure 2), so a single lost packet under
// packet damming stalls for that long. A software timer can be set to a
// few RTTs, detecting loss 2–3 orders of magnitude faster — at the cost
// of application-level retries.
package softrel

import (
	"errors"
	"fmt"

	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

// ErrTimeout is returned when an RPC exhausts its retries.
var ErrTimeout = errors.New("softrel: rpc retries exhausted")

// Config tunes the software-reliability client.
type Config struct {
	// Timeout is the per-attempt software timeout. Kalia et al. size it
	// coarsely (several RTTs) because loss is rare on lossless fabrics.
	Timeout sim.Time
	// Retries is the number of retransmissions before giving up.
	Retries int
	// RecvDepth is how many receive buffers each endpoint keeps posted.
	RecvDepth int
}

// DefaultConfig uses a 1 ms timeout and 5 retries.
func DefaultConfig() Config {
	return Config{Timeout: sim.Millisecond, Retries: 5, RecvDepth: 64}
}

// Handler processes one RPC request payload and returns the response
// payload. A nil Handler echoes.
type Handler func(req []uint64) []uint64

// Server answers RPCs on a UD QP: every request datagram is answered with
// a response datagram carrying the same sequence number and the handler's
// response payload.
type Server struct {
	nic     *rnic.RNIC
	qp      *rnic.UDQP
	cq      *rnic.CQ
	buf     hostmem.Addr
	cfg     Config
	handler Handler
	// HandleCost is charged per request (server CPU); zero by default.
	HandleCost sim.Time

	// Handled counts served requests.
	Handled uint64
}

// NewServer creates and starts an RPC echo server.
func NewServer(nic *rnic.RNIC, cfg Config) *Server {
	return NewServerWithHandler(nic, cfg, nil)
}

// NewServerWithHandler creates and starts an RPC server with an
// application handler.
func NewServerWithHandler(nic *rnic.RNIC, cfg Config, h Handler) *Server {
	cq := rnic.NewCQ(nic.Engine())
	s := &Server{nic: nic, cq: cq, cfg: cfg, handler: h}
	s.qp = nic.CreateUDQP(cq, cq)
	s.buf = nic.AS.Alloc(cfg.RecvDepth * hostmem.PageSize)
	nic.AS.Touch(s.buf, cfg.RecvDepth*hostmem.PageSize)
	nic.RegisterMR(s.buf, cfg.RecvDepth*hostmem.PageSize)
	s.repost()
	nic.Engine().Go("softrel-server", s.loop)
	return s
}

// QPN returns the server's QP number (the RPC address).
func (s *Server) QPN() uint32 { return s.qp.Num }

// LID returns the server's port LID.
func (s *Server) LID() uint16 { return s.nic.LID() }

func (s *Server) repost() {
	for s.qp.RecvDepth() < s.cfg.RecvDepth {
		off := hostmem.Addr(s.qp.RecvDepth()%s.cfg.RecvDepth) * hostmem.PageSize
		s.qp.PostRecv(rnic.RecvWR{Addr: s.buf + off, Len: hostmem.PageSize})
	}
}

func (s *Server) loop(p *sim.Proc) {
	for {
		e := s.cq.WaitN(p, 1)[0]
		if !e.Recv {
			continue
		}
		s.Handled++
		s.repost()
		if s.HandleCost > 0 {
			p.Sleep(s.HandleCost)
		}
		resp := e.AppWords
		if s.handler != nil {
			resp = s.handler(e.AppWords)
		}
		// Answer to the sender (LID and QPN come with the datagram);
		// the response reuses the request's sequence number.
		s.qp.PostSend(rnic.UDSendWR{
			DestLID: e.SrcLID, DestQPN: e.SrcQPN,
			Local: s.buf, Len: e.ByteLen, AppSeq: e.AppSeq, AppWords: resp,
		})
	}
}

// Client issues RPCs with software reliability.
type Client struct {
	nic *rnic.RNIC
	qp  *rnic.UDQP
	cq  *rnic.CQ
	buf hostmem.Addr
	cfg Config

	nextSeq uint64
	// responses holds response payloads by sequence number.
	responses map[uint64][]uint64
	seen      map[uint64]bool

	// Stats.
	Calls       uint64
	Retransmits uint64
	Failures    uint64
}

// NewClient creates an RPC client on a node.
func NewClient(nic *rnic.RNIC, cfg Config) *Client {
	cq := rnic.NewCQ(nic.Engine())
	c := &Client{nic: nic, cq: cq, cfg: cfg, responses: make(map[uint64][]uint64), seen: make(map[uint64]bool)}
	c.qp = nic.CreateUDQP(cq, cq)
	c.buf = nic.AS.Alloc(cfg.RecvDepth * hostmem.PageSize)
	nic.AS.Touch(c.buf, cfg.RecvDepth*hostmem.PageSize)
	nic.RegisterMR(c.buf, cfg.RecvDepth*hostmem.PageSize)
	for i := 0; i < cfg.RecvDepth; i++ {
		c.qp.PostRecv(rnic.RecvWR{Addr: c.buf + hostmem.Addr(i)*hostmem.PageSize, Len: hostmem.PageSize})
	}
	return c
}

// drain collects arrived responses.
func (c *Client) drain() {
	for _, e := range c.cq.Poll(0) {
		if e.Recv {
			c.responses[e.AppSeq] = e.AppWords
			c.seen[e.AppSeq] = true
			c.qp.PostRecv(rnic.RecvWR{Addr: c.buf, Len: hostmem.PageSize})
		}
	}
}

// Call performs one RPC of size bytes to the server at (lid, qpn): send,
// wait for the matching response with the software timeout, retransmit on
// expiry, fail after the retry budget.
func (c *Client) Call(p *sim.Proc, lid uint16, qpn uint32, size int) error {
	_, err := c.CallPayload(p, lid, qpn, size, nil)
	return err
}

// CallPayload performs one RPC carrying a small inline payload and
// returns the server's response payload.
func (c *Client) CallPayload(p *sim.Proc, lid uint16, qpn uint32, size int, req []uint64) ([]uint64, error) {
	c.Calls++
	seq := c.nextSeq
	c.nextSeq++
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.Retransmits++
		}
		c.qp.PostSend(rnic.UDSendWR{
			DestLID: lid, DestQPN: qpn,
			Local: c.buf, Len: size, AppSeq: seq, AppWords: req,
		})
		ok := p.WaitTimeout(c.cq.Cond(), c.cfg.Timeout, func() bool {
			c.drain()
			return c.seen[seq]
		})
		if ok {
			resp := c.responses[seq]
			delete(c.responses, seq)
			delete(c.seen, seq)
			return resp, nil
		}
	}
	c.Failures++
	return nil, fmt.Errorf("%w (seq %d after %d attempts)", ErrTimeout, seq, c.cfg.Retries+1)
}
