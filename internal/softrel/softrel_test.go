package softrel

import (
	"errors"
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/packet"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

// Note: simulations containing a Server use eng.Run(), not MustRun: the
// server process intentionally parks forever.

func setup(t *testing.T, seed int64, cfg Config) (*cluster.Cluster, *Client, *Server) {
	t.Helper()
	cl := cluster.ReedbushH().Build(seed, 2)
	srv := NewServer(cl.Nodes[1], cfg)
	cli := NewClient(cl.Nodes[0], cfg)
	return cl, cli, srv
}

func TestBasicRPC(t *testing.T) {
	cl, cli, srv := setup(t, 1, DefaultConfig())
	var err error
	var at sim.Time
	cl.Eng.Go("caller", func(p *sim.Proc) {
		err = cli.Call(p, srv.LID(), srv.QPN(), 64)
		at = p.Now()
	})
	cl.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if at > 20*sim.Microsecond {
		t.Errorf("RPC took %v, want ≈1 RTT", at)
	}
	if srv.Handled != 1 {
		t.Errorf("Handled = %d", srv.Handled)
	}
	if cli.Retransmits != 0 {
		t.Error("no retransmissions expected")
	}
}

func TestManyRPCs(t *testing.T) {
	cl, cli, srv := setup(t, 2, DefaultConfig())
	errs := 0
	cl.Eng.Go("caller", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if err := cli.Call(p, srv.LID(), srv.QPN(), 32); err != nil {
				errs++
			}
		}
	})
	cl.Eng.Run()
	if errs != 0 {
		t.Errorf("%d RPCs failed", errs)
	}
	if srv.Handled != 200 {
		t.Errorf("Handled = %d", srv.Handled)
	}
}

func TestLossRecoveredBySoftwareTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cl, cli, srv := setup(t, 3, cfg)
	// Drop exactly the first request datagram.
	dropped := false
	cl.Fab.SetDropFilter(func(pkt *packet.Packet) bool {
		if !dropped && pkt.Opcode == packet.OpUDSend && pkt.DestQP == srv.QPN() {
			dropped = true
			return true
		}
		return false
	})
	var err error
	var at sim.Time
	cl.Eng.Go("caller", func(p *sim.Proc) {
		err = cli.Call(p, srv.LID(), srv.QPN(), 64)
		at = p.Now()
	})
	cl.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cli.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want 1", cli.Retransmits)
	}
	// Recovery after one software timeout (1 ms), not a hardware T_o.
	if at < cfg.Timeout || at > cfg.Timeout+100*sim.Microsecond {
		t.Errorf("recovered at %v, want ≈%v", at, cfg.Timeout)
	}
}

func TestBlackholeFailsFast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retries = 3
	cl, cli, _ := setup(t, 4, cfg)
	var err error
	var at sim.Time
	cl.Eng.Go("caller", func(p *sim.Proc) {
		err = cli.Call(p, 99 /* no such LID */, 1, 64)
		at = p.Now()
	})
	cl.Eng.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// 4 attempts × 1 ms ≈ 4 ms — versus ≈4 s for RC with C_retry=7 and
	// the 500 ms hardware floor.
	if at > 10*sim.Millisecond {
		t.Errorf("failure detected at %v, want milliseconds", at)
	}
	if cli.Failures != 1 {
		t.Errorf("Failures = %d", cli.Failures)
	}
}

func TestSoftwareVsHardwareDetection(t *testing.T) {
	// The §VIII-C comparison: time to *detect* an unreachable peer.
	cfg := DefaultConfig()
	cfg.Retries = 3
	cl, cli, _ := setup(t, 5, cfg)
	var softDetect sim.Time
	cl.Eng.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		_ = cli.Call(p, 99, 1, 64)
		softDetect = p.Now() - start
	})
	cl.Eng.Run()

	// Hardware RC on the same system: wrong LID with C_retry=3.
	cl2 := cluster.ReedbushH().Build(6, 2)
	cq := rnic.NewCQ(cl2.Eng)
	qp := cl2.Nodes[0].CreateQP(cq, cq)
	qp.Connect(99, 1, rnic.ConnParams{CACK: 1, RetryCount: 3})
	lbuf := cl2.Nodes[0].AS.Alloc(4096)
	cl2.Nodes[0].RegisterMR(lbuf, 4096)
	var hardDetect sim.Time
	cl2.Eng.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		qp.PostSend(rnic.SendWR{ID: 1, Op: rnic.OpRead, LocalAddr: lbuf, RemoteAddr: 0x1000, Len: 64})
		cq.WaitN(p, 1)
		hardDetect = p.Now() - start
	})
	cl2.Eng.MustRun()

	if hardDetect < 100*softDetect {
		t.Errorf("software detection (%v) should beat hardware (%v) by ≥2 orders of magnitude",
			softDetect, hardDetect)
	}
}

func TestUDDropsWithoutRecvBuffer(t *testing.T) {
	cl := cluster.ReedbushH().Build(7, 2)
	cqA, cqB := rnic.NewCQ(cl.Eng), rnic.NewCQ(cl.Eng)
	qpA := cl.Nodes[0].CreateUDQP(cqA, cqA)
	qpB := cl.Nodes[1].CreateUDQP(cqB, cqB) // no recvs posted
	buf := cl.Nodes[0].AS.Alloc(4096)
	cl.Nodes[0].AS.Touch(buf, 4096)
	cl.Nodes[0].RegisterMR(buf, 4096)
	qpA.PostSend(rnic.UDSendWR{ID: 1, DestLID: cl.Nodes[1].LID(), DestQPN: qpB.Num, Local: buf, Len: 64})
	cl.Eng.Run()
	if qpB.DroppedNoRecv != 1 {
		t.Errorf("DroppedNoRecv = %d (UD must drop silently)", qpB.DroppedNoRecv)
	}
	if qpB.Delivered != 0 {
		t.Error("nothing should be delivered")
	}
	// The send still completed locally — UD has no acknowledgement.
	if got := cqA.Poll(0); len(got) != 1 || got[0].Status != rnic.WCSuccess {
		t.Errorf("send completion = %+v", got)
	}
}

func TestUDODPFaultDropsDatagram(t *testing.T) {
	cl := cluster.ReedbushH().Build(8, 2)
	cqA, cqB := rnic.NewCQ(cl.Eng), rnic.NewCQ(cl.Eng)
	qpA := cl.Nodes[0].CreateUDQP(cqA, cqA)
	qpB := cl.Nodes[1].CreateUDQP(cqB, cqB)
	src := cl.Nodes[0].AS.Alloc(4096)
	cl.Nodes[0].AS.Touch(src, 4096)
	cl.Nodes[0].RegisterMR(src, 4096)
	dst := cl.Nodes[1].AS.Alloc(4096)
	cl.Nodes[1].RegisterODPMR(dst, 4096) // unmapped ODP receive buffer
	qpB.PostRecv(rnic.RecvWR{ID: 1, Addr: dst, Len: 4096})

	send := func() {
		qpA.PostSend(rnic.UDSendWR{ID: 1, DestLID: cl.Nodes[1].LID(), DestQPN: qpB.Num, Local: src, Len: 64})
	}
	send()
	cl.Eng.Run()
	if qpB.DroppedFault != 1 || qpB.Delivered != 0 {
		t.Fatalf("first datagram should fault-drop: %+v", qpB)
	}
	// After the fault resolves, a second datagram lands.
	send()
	cl.Eng.Run()
	if qpB.Delivered != 1 {
		t.Errorf("Delivered = %d after fault resolution", qpB.Delivered)
	}
}
