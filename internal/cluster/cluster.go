// Package cluster encodes the systems of the paper's Tables I and II —
// RNIC model, link speed, firmware-era quirks and host speed — and builds
// ready-to-use simulated clusters out of them.
package cluster

import (
	"fmt"
	"strings"

	"odpsim/internal/congestion"
	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/irn"
	"odpsim/internal/npr"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// System is one row of Table I, joined with its Table II host data.
type System struct {
	// Name is the system name, e.g. "KNL (Private servers B)".
	Name string
	// PSID is the board identifier from Table I.
	PSID string
	// Device is the RNIC profile.
	Device rnic.Profile
	// CPUFactor scales host-side latencies (page-fault resolution,
	// software overheads): 1.0 for a ~2.4 GHz Xeon, larger for slower
	// hosts (the KNL's Xeon Phi cores are markedly slower).
	CPUFactor float64
	// HasIbdump reports whether packet capture is possible there (the
	// paper could only run ibdump on KNL, where it had sudo).
	HasIbdump bool
	// ModelCongestion enables the fabric's egress-queuing model (off by
	// default; see fabric.Config.ModelCongestion).
	ModelCongestion bool
	// LossRate, when positive, makes the fabric drop each packet
	// independently with this probability — the scenario layer's loss
	// fault knob. Zero (the Table-I systems' default) means a lossless
	// fabric.
	LossRate float64
	// FaultScale multiplies the kernel's page-fault resolution latency
	// (hostmem.Config.FaultResolveMin/Max); zero means 1.0. The scenario
	// layer uses it to model slower or faster fault paths than the
	// calibrated ConnectX-4 numbers.
	FaultScale float64
	// Congestion, when non-nil, replaces the fabric's analytic latency
	// model with the switched lossless-fabric model (switch buffers,
	// PFC, ECN) and — when its DCQCN block is enabled — turns on the
	// DCQCN loop on every node.
	Congestion *congestion.Config
	// MemMode selects how managed registrations translate on every node:
	// "odp" (or "", the default — the paper's configuration), "pin"
	// (up-front pinning) or "npr" (the NP-RDMA no-pinning mitigation:
	// driver-level translation through a bounded DMA-able pool).
	MemMode string
	// NPRPoolBytes overrides the per-node NP-RDMA pool bound when
	// MemMode is "npr"; zero keeps npr.DefaultConfig's 2 MiB.
	NPRPoolBytes int
	// Transport selects the RC transport on every node: "rc" (or "",
	// the default — the hardware go-back-N machine) or "irn" (the
	// selective-repeat transport of internal/irn: SACKs, per-packet
	// loss recovery, BDP-bounded injection).
	Transport string
}

// Memory returns the host memory configuration. Network page fault
// resolution is dominated by driver/RNIC interaction rather than CPU
// speed (Figure 1 measures ≈0.5 ms even on the slow KNL host), so only
// the CPU-bound pinning cost scales with CPUFactor.
func (s System) Memory() hostmem.Config {
	cfg := hostmem.DefaultConfig()
	cfg.PinPerPage = sim.Time(float64(cfg.PinPerPage) * s.CPUFactor)
	if s.FaultScale > 0 {
		cfg.FaultResolveMin = sim.Time(float64(cfg.FaultResolveMin) * s.FaultScale)
		cfg.FaultResolveMax = sim.Time(float64(cfg.FaultResolveMax) * s.FaultScale)
	}
	return cfg
}

// FabricConfig returns the link model for the system.
func (s System) FabricConfig() fabric.Config {
	cfg := fabric.DefaultConfig()
	cfg.BandwidthGbps = s.Device.LinkGbps
	cfg.ModelCongestion = s.ModelCongestion
	return cfg
}

// PrivateA is "Private servers A": ConnectX-3 56 Gb/s FDR.
func PrivateA() System {
	return System{Name: "Private servers A", PSID: "MT_1100120019", Device: rnic.ConnectX3(), CPUFactor: 1.0, HasIbdump: true}
}

// KNL is "Private servers B": ConnectX-4 FDR on Xeon Phi 7250 hosts — the
// system all packet-level analysis ran on.
func KNL() System {
	return System{Name: "KNL (Private servers B)", PSID: "MT_2170111021", Device: rnic.ConnectX4(), CPUFactor: 4.5, HasIbdump: true}
}

// ReedbushH is the Reedbush-H cluster: ConnectX-4 FDR, Xeon E5-2695v4.
func ReedbushH() System {
	return System{Name: "Reedbush-H", PSID: "MT_2160110021", Device: rnic.ConnectX4(), CPUFactor: 1.0}
}

// ReedbushL is the Reedbush-L cluster: ConnectX-4 100 Gb/s EDR.
func ReedbushL() System {
	s := System{Name: "Reedbush-L", PSID: "MT_2180110032", Device: rnic.ConnectX4(), CPUFactor: 1.0}
	s.Device.LinkGbps = 100
	return s
}

// ABCI is the ABCI cluster: ConnectX-4 EDR, Xeon Gold 6148.
func ABCI() System {
	s := System{Name: "ABCI", PSID: "MT_0000000095", Device: rnic.ConnectX4(), CPUFactor: 0.9}
	s.Device.LinkGbps = 100
	return s
}

// ITO is the ITO cluster: ConnectX-4 EDR.
func ITO() System {
	s := System{Name: "ITO", PSID: "FJT2180110032", Device: rnic.ConnectX4(), CPUFactor: 1.0}
	s.Device.LinkGbps = 100
	return s
}

// AzureHC is the Azure VM HC series: ConnectX-5 EDR, the one device with
// the ≈30 ms timeout floor.
func AzureHC() System {
	return System{Name: "Azure VM HC Series", PSID: "MT_0000000010", Device: rnic.ConnectX5(), CPUFactor: 1.0}
}

// AzureHBv2 is the Azure VM HBv2 series: ConnectX-6 HDR.
func AzureHBv2() System {
	return System{Name: "Azure VM HBv2 Series", PSID: "MT_0000000223", Device: rnic.ConnectX6(), CPUFactor: 1.0}
}

// All returns every system of Table I in row order.
func All() []System {
	return []System{
		PrivateA(), KNL(), ReedbushH(), ReedbushL(), ABCI(), ITO(), AzureHC(), AzureHBv2(),
	}
}

// ByName looks a system up by (case-sensitive) name prefix. An exact
// match always wins; otherwise the prefix must select exactly one system
// ("Reed" is ambiguous between Reedbush-H and Reedbush-L, "Reedbush-H"
// and "KNL" are not).
func ByName(name string) (System, error) {
	var matches []System
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
		if name != "" && strings.HasPrefix(s.Name, name) {
			matches = append(matches, s)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return System{}, fmt.Errorf("cluster: unknown system %q", name)
	default:
		names := make([]string, len(matches))
		for i, s := range matches {
			names[i] = s.Name
		}
		return System{}, fmt.Errorf("cluster: ambiguous system name %q (matches %s)",
			name, strings.Join(names, ", "))
	}
}

// Cluster is a built simulation: an engine, a fabric and n nodes.
type Cluster struct {
	Eng   *sim.Engine
	Fab   *fabric.Fabric
	Nodes []*rnic.RNIC
	Sys   System

	tel *telemetry.Hub
}

// Telemetry returns a hub over every registry in the cluster — the
// fabric's plus each device's — the way a monitoring agent sees a host's
// whole /sys/class/infiniband tree in one scrape.
func (c *Cluster) Telemetry() *telemetry.Hub {
	if c.tel == nil {
		c.tel = telemetry.NewHubOn(c.Eng)
		c.tel.Add(c.Fab.Telemetry())
		if net := c.Fab.Network(); net != nil {
			c.tel.Add(net.Telemetry())
		}
		for _, n := range c.Nodes {
			c.tel.Add(n.Telemetry())
		}
	}
	return c.tel
}

// Build creates a cluster of nodes node RNICs (LIDs 1..nodes) on a fresh
// engine seeded with seed.
func (s System) Build(seed int64, nodes int) *Cluster {
	return s.BuildOn(nil, seed, nodes)
}

// BuildOn is Build, but reuses eng — Reset with seed — instead of
// allocating a fresh engine, so tight trial loops recycle the engine's
// event storage. A nil eng falls back to Build's fresh engine. The
// resulting simulation is byte-identical either way.
func (s System) BuildOn(eng *sim.Engine, seed int64, nodes int) *Cluster {
	if eng == nil {
		eng = sim.New(seed)
	} else {
		eng.Reset(seed)
	}
	fab := fabric.New(eng, s.FabricConfig())
	if s.LossRate > 0 {
		fab.SetLossRate(s.LossRate)
	}
	if s.Congestion != nil {
		fab.EnableCongestion(*s.Congestion)
	}
	c := &Cluster{Eng: eng, Fab: fab, Sys: s}
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("node%d", i)
		n := rnic.New(fab, uint16(i+1), name, s.Device, s.Memory())
		if s.Congestion != nil && s.Congestion.DCQCN.Enabled {
			// Before any QPs exist, so every QP gets a rate limiter.
			n.EnableDCQCN(s.Congestion.DCQCN, s.Device.LinkGbps)
		}
		switch s.Transport {
		case "", "rc":
			// The default: the hardware go-back-N machine.
		case "irn":
			// Before any QPs exist, so every QP gets IRN state.
			n.EnableIRN(irn.Config{LineGbps: s.Device.LinkGbps})
		default:
			panic(fmt.Sprintf("cluster: unknown transport %q", s.Transport))
		}
		switch s.MemMode {
		case "", "odp":
			// The default: managed registrations use Explicit ODP.
		case "pin":
			n.ForcePinned()
		case "npr":
			cfg := npr.DefaultConfig()
			if s.NPRPoolBytes > 0 {
				cfg.PoolBytes = s.NPRPoolBytes
			}
			n.EnableNPR(cfg)
		default:
			panic(fmt.Sprintf("cluster: unknown memory mode %q", s.MemMode))
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c
}
