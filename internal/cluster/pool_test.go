package cluster

import (
	"testing"

	"odpsim/internal/congestion"
	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/packet"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

// TestPoolConservationUnderLossAndRetransmit drives RC READ traffic over
// a lossy fabric — losses, timeouts and go-back-N retransmissions — and
// checks the packet pool's ledger: every packet the RNICs drew (requests,
// responses, ACKs, retransmitted copies) was returned to the pool exactly
// once by the time the simulation drained (DESIGN.md §8).
func TestPoolConservationUnderLossAndRetransmit(t *testing.T) {
	sys := KNL()
	sys.LossRate = 0.2
	cl := sys.Build(7, 2)
	client, server := cl.Nodes[0], cl.Nodes[1]

	const n, size = 64, 64
	lbuf := client.AS.Alloc(n * size)
	rbuf := server.AS.Alloc(n * size)
	client.AS.Touch(lbuf, n*size)
	server.AS.Touch(rbuf, n*size)
	client.RegisterMR(lbuf, n*size)
	server.RegisterMR(rbuf, n*size)

	cq := rnic.NewCQ(cl.Eng)
	scq := rnic.NewCQ(cl.Eng)
	params := rnic.ConnParams{CACK: 18, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
	qc := client.CreateQP(cq, cq)
	qs := server.CreateQP(scq, scq)
	rnic.ConnectPair(qc, qs, params, params)

	for i := 0; i < n; i++ {
		off := hostmem.Addr(i * size)
		qc.PostSend(rnic.SendWR{ID: uint64(i), Op: rnic.OpRead,
			LocalAddr: lbuf + off, RemoteAddr: rbuf + off, Len: size})
	}
	cl.Eng.Run()

	if got := len(cq.Poll(0)); got != n {
		t.Fatalf("completed %d/%d READs despite retries", got, n)
	}
	if cl.Fab.Dropped == 0 {
		t.Fatal("no packets dropped at 20% loss: test exercises nothing")
	}
	if qc.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions: test exercises nothing")
	}

	pool := cl.Fab.Pool()
	if pool.Gets == 0 {
		t.Fatal("RNIC datapath did not draw from the pool")
	}
	if pool.Balance() != 0 {
		t.Errorf("pool Balance = %d after drain, want 0 (Gets=%d Puts=%d)",
			pool.Balance(), pool.Gets, pool.Puts)
	}
	if pool.FreeLen() != int(pool.Allocs) {
		t.Errorf("FreeLen = %d, Allocs = %d: packets leaked in flight",
			pool.FreeLen(), pool.Allocs)
	}
}

// TestPoolConservationCongested runs the same ledger check on the
// switched lossless-fabric path: a WRITE burst over a lossy congested
// 2-switch fabric with PFC and DCQCN on, so the pool additionally cycles
// CNP frames, the synthetic PFC pause frames taps borrow, switch
// tail-drop reclamation and packets shed by the DCQCN rate limiter's
// finite TX backlog. Every frame class must return to the pool exactly
// once by drain time.
func TestPoolConservationCongested(t *testing.T) {
	sys := KNL()
	sys.LossRate = 0.2
	sys.Congestion = &congestion.Config{
		BufferBytes: 2 << 10,
		XOffBytes:   1536,
		XOnBytes:    512,
		PFC:         true,
		DCQCN:       congestion.DCQCNConfig{Enabled: true},
	}
	cl := sys.Build(7, 2)
	client, server := cl.Nodes[0], cl.Nodes[1]

	// Count the control frames as a capture would see them, to prove the
	// PFC and CNP pool paths actually ran.
	var pauseFrames, cnpFrames int
	cl.Fab.AddTap(func(ev fabric.TapEvent) {
		switch ev.Pkt.Opcode {
		case packet.OpPFCPause:
			pauseFrames++
		case packet.OpCNP:
			cnpFrames++
		}
	})

	const nqp, n, size = 8, 32, 512
	buflen := nqp * n * size
	lbuf := client.AS.Alloc(buflen)
	rbuf := server.AS.Alloc(buflen)
	client.AS.Touch(lbuf, buflen)
	server.AS.Touch(rbuf, buflen)
	client.RegisterMR(lbuf, buflen)
	server.RegisterMR(rbuf, buflen)

	cq := rnic.NewCQ(cl.Eng)
	scq := rnic.NewCQ(cl.Eng)
	params := rnic.ConnParams{CACK: 8, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
	qps := make([]*rnic.QP, nqp)
	for i := range qps {
		qc := client.CreateQP(cq, cq)
		qs := server.CreateQP(scq, scq)
		rnic.ConnectPair(qc, qs, params, params)
		qps[i] = qc
	}

	for i := 0; i < nqp*n; i++ {
		off := hostmem.Addr(i * size)
		qps[i%nqp].PostSend(rnic.SendWR{ID: uint64(i), Op: rnic.OpWrite,
			LocalAddr: lbuf + off, RemoteAddr: rbuf + off, Len: size})
	}
	cl.Eng.Run()

	if got := len(cq.Poll(0)); got != nqp*n {
		t.Fatalf("completed %d/%d WRITEs despite retries", got, nqp*n)
	}
	if cl.Fab.Dropped == 0 {
		t.Fatal("no packets dropped: test exercises nothing")
	}
	if pauseFrames == 0 {
		t.Error("no PFC pause frames tapped: the pause pool path did not run")
	}
	if cnpFrames == 0 {
		t.Error("no CNP frames tapped: the DCQCN pool path did not run")
	}

	pool := cl.Fab.Pool()
	if pool.Gets == 0 {
		t.Fatal("RNIC datapath did not draw from the pool")
	}
	if pool.Balance() != 0 {
		t.Errorf("pool Balance = %d after drain, want 0 (Gets=%d Puts=%d)",
			pool.Balance(), pool.Gets, pool.Puts)
	}
	if pool.FreeLen() != int(pool.Allocs) {
		t.Errorf("FreeLen = %d, Allocs = %d: packets leaked in flight",
			pool.FreeLen(), pool.Allocs)
	}
}

// TestPoolConservationCongestedChurn cycles the congested scenario
// across engine Reset generations on one engine: every generation
// rebuilds the cluster from the engine-attached arenas (entries, VL
// rings, ports, switches, DCQCN rate states, delivery lines) and drives
// enough traffic through a tight PFC window to force XOFF/XON pause
// churn and DCQCN rate cuts. The shared packet pool's ledger must
// balance after every generation — a recycled struct that double-Puts or
// strands a packet shows up here (and the pool panics on double-Put
// outright) — and once warm, a generation must not allocate new packet
// storage at all.
func TestPoolConservationCongestedChurn(t *testing.T) {
	sys := KNL()
	sys.Congestion = &congestion.Config{
		BufferBytes: 2 << 10,
		XOffBytes:   1536,
		XOnBytes:    512,
		PFC:         true,
		DCQCN:       congestion.DCQCNConfig{Enabled: true},
	}

	var eng *sim.Engine
	var warmAllocs uint64
	for gen := 0; gen < 4; gen++ {
		var xoff, xon, cnps int
		var cl *Cluster
		if eng == nil {
			cl = sys.Build(int64(gen+1), 2)
			eng = cl.Eng
		} else {
			cl = sys.BuildOn(eng, int64(gen+1), 2)
		}
		cl.Fab.AddTap(func(ev fabric.TapEvent) {
			switch ev.Pkt.Opcode {
			case packet.OpPFCPause:
				if ev.Pkt.XOff {
					xoff++
				} else {
					xon++
				}
			case packet.OpCNP:
				cnps++
			}
		})
		client, server := cl.Nodes[0], cl.Nodes[1]

		const n, size = 96, 512
		lbuf := client.AS.Alloc(n * size)
		rbuf := server.AS.Alloc(n * size)
		client.AS.Touch(lbuf, n*size)
		server.AS.Touch(rbuf, n*size)
		client.RegisterMR(lbuf, n*size)
		server.RegisterMR(rbuf, n*size)

		cq := rnic.NewCQ(cl.Eng)
		scq := rnic.NewCQ(cl.Eng)
		params := rnic.ConnParams{CACK: 8, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
		qc := client.CreateQP(cq, cq)
		qs := server.CreateQP(scq, scq)
		rnic.ConnectPair(qc, qs, params, params)

		for i := 0; i < n; i++ {
			off := hostmem.Addr(i * size)
			qc.PostSend(rnic.SendWR{ID: uint64(i), Op: rnic.OpWrite,
				LocalAddr: lbuf + off, RemoteAddr: rbuf + off, Len: size})
		}
		cl.Eng.Run()

		if got := len(cq.Poll(0)); got != n {
			t.Fatalf("gen %d: completed %d/%d WRITEs", gen, got, n)
		}
		if xoff == 0 || xon == 0 {
			t.Errorf("gen %d: pause churn missing (xoff=%d xon=%d): the PFC window did not cycle", gen, xoff, xon)
		}
		if cnps == 0 {
			t.Errorf("gen %d: no CNP frames: DCQCN rate cuts did not run", gen)
		}

		pool := cl.Fab.Pool()
		if pool.Balance() != 0 {
			t.Errorf("gen %d: pool Balance = %d after drain, want 0 (Gets=%d Puts=%d)",
				gen, pool.Balance(), pool.Gets, pool.Puts)
		}
		if pool.FreeLen() != int(pool.Allocs) {
			t.Errorf("gen %d: FreeLen = %d, Allocs = %d: packets leaked in flight",
				gen, pool.FreeLen(), pool.Allocs)
		}
		if gen == 1 {
			warmAllocs = pool.Allocs
		}
		if gen > 1 && pool.Allocs != warmAllocs {
			t.Errorf("gen %d: pool grew to %d allocs (warm figure %d): recycled storage is not being reused",
				gen, pool.Allocs, warmAllocs)
		}
	}
}

// TestPoolConservationIRNLossChurn is the IRN transport's ledger check:
// WRITE bursts over a 20%-lossy fabric under selective repeat, cycled
// across engine Reset generations like TestPoolConservationCongestedChurn.
// Losses make later PSNs land out of order, so the run cycles the frame
// classes go-back-N never mints — SACK frames, reorder-buffer stash
// copies and single-PSN retransmissions — and the shared pool's ledger
// must still balance after every generation, with no new packet storage
// once warm.
func TestPoolConservationIRNLossChurn(t *testing.T) {
	sys := KNL()
	sys.LossRate = 0.2
	sys.Transport = "irn"

	var eng *sim.Engine
	var warmAllocs uint64
	// The same seed every generation: the loss pattern (and so the pool's
	// peak demand) repeats exactly, which is what makes the no-growth
	// assertion below meaningful under random loss.
	for gen := 0; gen < 4; gen++ {
		var sacks int
		var cl *Cluster
		if eng == nil {
			cl = sys.Build(7, 2)
			eng = cl.Eng
		} else {
			cl = sys.BuildOn(eng, 7, 2)
		}
		cl.Fab.AddTap(func(ev fabric.TapEvent) {
			if ev.Pkt.Opcode == packet.OpSACK {
				sacks++
			}
		})
		client, server := cl.Nodes[0], cl.Nodes[1]

		const n, size = 96, 512
		lbuf := client.AS.Alloc(n * size)
		rbuf := server.AS.Alloc(n * size)
		client.AS.Touch(lbuf, n*size)
		server.AS.Touch(rbuf, n*size)
		client.RegisterMR(lbuf, n*size)
		server.RegisterMR(rbuf, n*size)

		cq := rnic.NewCQ(cl.Eng)
		scq := rnic.NewCQ(cl.Eng)
		params := rnic.ConnParams{CACK: 8, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
		qc := client.CreateQP(cq, cq)
		qs := server.CreateQP(scq, scq)
		rnic.ConnectPair(qc, qs, params, params)

		for i := 0; i < n; i++ {
			off := hostmem.Addr(i * size)
			qc.PostSend(rnic.SendWR{ID: uint64(i), Op: rnic.OpWrite,
				LocalAddr: lbuf + off, RemoteAddr: rbuf + off, Len: size})
		}
		cl.Eng.Run()

		if got := len(cq.Poll(0)); got != n {
			t.Fatalf("gen %d: completed %d/%d WRITEs despite retries", gen, got, n)
		}
		if cl.Fab.Dropped == 0 {
			t.Fatalf("gen %d: no packets dropped at 20%% loss: test exercises nothing", gen)
		}
		if qc.Stats.Retransmits == 0 {
			t.Fatalf("gen %d: no retransmissions: test exercises nothing", gen)
		}
		if sacks == 0 {
			t.Errorf("gen %d: no SACK frames tapped: the selective-ack pool path did not run", gen)
		}
		if server.OooLanded == 0 {
			t.Errorf("gen %d: no out-of-order landings: the reorder buffer did not cycle", gen)
		}

		pool := cl.Fab.Pool()
		if pool.Gets == 0 {
			t.Fatal("RNIC datapath did not draw from the pool")
		}
		if pool.Balance() != 0 {
			t.Errorf("gen %d: pool Balance = %d after drain, want 0 (Gets=%d Puts=%d)",
				gen, pool.Balance(), pool.Gets, pool.Puts)
		}
		if pool.FreeLen() != int(pool.Allocs) {
			t.Errorf("gen %d: FreeLen = %d, Allocs = %d: packets leaked in flight",
				gen, pool.FreeLen(), pool.Allocs)
		}
		if gen == 1 {
			warmAllocs = pool.Allocs
		}
		if gen > 1 && pool.Allocs != warmAllocs {
			t.Errorf("gen %d: pool grew to %d allocs (warm figure %d): recycled storage is not being reused",
				gen, pool.Allocs, warmAllocs)
		}
	}
}
