package cluster

import (
	"testing"

	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

// TestPoolConservationUnderLossAndRetransmit drives RC READ traffic over
// a lossy fabric — losses, timeouts and go-back-N retransmissions — and
// checks the packet pool's ledger: every packet the RNICs drew (requests,
// responses, ACKs, retransmitted copies) was returned to the pool exactly
// once by the time the simulation drained (DESIGN.md §8).
func TestPoolConservationUnderLossAndRetransmit(t *testing.T) {
	sys := KNL()
	sys.LossRate = 0.2
	cl := sys.Build(7, 2)
	client, server := cl.Nodes[0], cl.Nodes[1]

	const n, size = 64, 64
	lbuf := client.AS.Alloc(n * size)
	rbuf := server.AS.Alloc(n * size)
	client.AS.Touch(lbuf, n*size)
	server.AS.Touch(rbuf, n*size)
	client.RegisterMR(lbuf, n*size)
	server.RegisterMR(rbuf, n*size)

	cq := rnic.NewCQ(cl.Eng)
	scq := rnic.NewCQ(cl.Eng)
	params := rnic.ConnParams{CACK: 18, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
	qc := client.CreateQP(cq, cq)
	qs := server.CreateQP(scq, scq)
	rnic.ConnectPair(qc, qs, params, params)

	for i := 0; i < n; i++ {
		off := hostmem.Addr(i * size)
		qc.PostSend(rnic.SendWR{ID: uint64(i), Op: rnic.OpRead,
			LocalAddr: lbuf + off, RemoteAddr: rbuf + off, Len: size})
	}
	cl.Eng.Run()

	if got := len(cq.Poll(0)); got != n {
		t.Fatalf("completed %d/%d READs despite retries", got, n)
	}
	if cl.Fab.Dropped == 0 {
		t.Fatal("no packets dropped at 20% loss: test exercises nothing")
	}
	if qc.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions: test exercises nothing")
	}

	pool := cl.Fab.Pool()
	if pool.Gets == 0 {
		t.Fatal("RNIC datapath did not draw from the pool")
	}
	if pool.Balance() != 0 {
		t.Errorf("pool Balance = %d after drain, want 0 (Gets=%d Puts=%d)",
			pool.Balance(), pool.Gets, pool.Puts)
	}
	if pool.FreeLen() != int(pool.Allocs) {
		t.Errorf("FreeLen = %d, Allocs = %d: packets leaked in flight",
			pool.FreeLen(), pool.Allocs)
	}
}
