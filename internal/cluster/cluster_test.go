package cluster

import (
	"testing"

	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

func TestAllSystemsWellFormed(t *testing.T) {
	systems := All()
	if len(systems) != 8 {
		t.Fatalf("Table I has 8 systems, got %d", len(systems))
	}
	names := map[string]bool{}
	for _, s := range systems {
		if s.Name == "" || s.PSID == "" {
			t.Errorf("system missing identity: %+v", s)
		}
		if names[s.Name] {
			t.Errorf("duplicate system name %q", s.Name)
		}
		names[s.Name] = true
		if s.CPUFactor <= 0 {
			t.Errorf("%s: CPUFactor = %v", s.Name, s.CPUFactor)
		}
		if s.Device.LinkGbps <= 0 {
			t.Errorf("%s: no link speed", s.Name)
		}
	}
}

func TestQuirkAssignments(t *testing.T) {
	if !KNL().Device.DammingQuirk {
		t.Error("KNL (ConnectX-4) must carry the damming quirk")
	}
	if !ReedbushH().Device.DammingQuirk || !ABCI().Device.DammingQuirk || !ITO().Device.DammingQuirk {
		t.Error("all ConnectX-4 clusters must carry the damming quirk (§V-C)")
	}
	if AzureHBv2().Device.DammingQuirk {
		t.Error("ConnectX-6 must not carry the damming quirk (§IX-B)")
	}
	if AzureHC().Device.MinCACK != 12 {
		t.Error("ConnectX-5 should have the ≈30 ms timeout floor (MinCACK 12)")
	}
	for _, s := range []System{PrivateA(), KNL(), ReedbushH(), AzureHBv2()} {
		if s.Device.MinCACK != 16 && s.Name != AzureHC().Name {
			if s.Device.Name != "ConnectX-5" && s.Device.MinCACK != 16 {
				t.Errorf("%s: MinCACK = %d, want 16", s.Name, s.Device.MinCACK)
			}
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("ABCI")
	if err != nil || s.Name != "ABCI" {
		t.Errorf("ByName(ABCI) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown system should error")
	}
}

func TestByNamePrefix(t *testing.T) {
	for name, want := range map[string]string{
		"KNL":         "KNL (Private servers B)",
		"Reedbush-H":  "Reedbush-H",
		"Reedbush-L":  "Reedbush-L",
		"Azure VM HC": "Azure VM HC Series",
		"Private":     "Private servers A",
		"IT":          "ITO",
	} {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s.Name != want {
			t.Errorf("ByName(%q) = %q, want %q", name, s.Name, want)
		}
	}
}

func TestByNameAmbiguous(t *testing.T) {
	for _, name := range []string{"Reed", "Azure", "A", "Reedbush-"} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) should report ambiguity", name)
		}
	}
	// The empty prefix matches everything and must not resolve.
	if _, err := ByName(""); err == nil {
		t.Error("ByName(\"\") should error")
	}
}

func TestFaultKnobs(t *testing.T) {
	s := ReedbushH()
	base := s.Memory()
	s.FaultScale = 2.0
	scaled := s.Memory()
	if scaled.FaultResolveMin != 2*base.FaultResolveMin || scaled.FaultResolveMax != 2*base.FaultResolveMax {
		t.Errorf("FaultScale not applied: %v/%v vs %v/%v",
			scaled.FaultResolveMin, scaled.FaultResolveMax, base.FaultResolveMin, base.FaultResolveMax)
	}
	if scaled.PinPerPage != base.PinPerPage {
		t.Error("FaultScale must not touch pinning cost")
	}

	// LossRate routes into the built fabric: with 100% loss nothing is
	// ever delivered.
	s = ReedbushH()
	s.LossRate = 1.0
	cl := s.Build(7, 2)
	cqA, cqB := rnic.NewCQ(cl.Eng), rnic.NewCQ(cl.Eng)
	qa := cl.Nodes[0].CreateQP(cqA, cqA)
	qb := cl.Nodes[1].CreateQP(cqB, cqB)
	p := rnic.ConnParams{CACK: 14, RetryCount: 1, MinRNRDelay: sim.FromMillis(0.96)}
	rnic.ConnectPair(qa, qb, p, p)
	lb := cl.Nodes[0].AS.Alloc(hostmem.PageSize)
	rb2 := cl.Nodes[1].AS.Alloc(hostmem.PageSize)
	cl.Nodes[0].RegisterMR(lb, hostmem.PageSize)
	cl.Nodes[1].RegisterMR(rb2, hostmem.PageSize)
	qa.PostSend(rnic.SendWR{ID: 1, Op: rnic.OpRead, LocalAddr: lb, RemoteAddr: rb2, Len: 64})
	cl.Eng.Run()
	got := cqA.Poll(0)
	if len(got) != 1 || got[0].Status == rnic.WCSuccess {
		t.Fatalf("READ over a 100%%-loss fabric should abort: %+v", got)
	}
	if cl.Fab.Dropped == 0 {
		t.Error("fabric should have counted drops")
	}
}

func TestMemoryScaling(t *testing.T) {
	knl, rb := KNL(), ReedbushH()
	if knl.Memory().PinPerPage <= rb.Memory().PinPerPage {
		t.Error("KNL's slow host should have slower pinning")
	}
	if knl.Memory().FaultResolveMax != rb.Memory().FaultResolveMax {
		t.Error("fault resolution is driver/RNIC bound, not CPU bound")
	}
}

func TestBuildCluster(t *testing.T) {
	cl := KNL().Build(42, 3)
	if len(cl.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(cl.Nodes))
	}
	for i, n := range cl.Nodes {
		if n.LID() != uint16(i+1) {
			t.Errorf("node %d LID = %d", i, n.LID())
		}
	}
	// Smoke: wire a READ between nodes 0 and 2.
	cqA, cqB := rnic.NewCQ(cl.Eng), rnic.NewCQ(cl.Eng)
	qa := cl.Nodes[0].CreateQP(cqA, cqA)
	qb := cl.Nodes[2].CreateQP(cqB, cqB)
	p := rnic.ConnParams{CACK: 14, RetryCount: 7, MinRNRDelay: sim.FromMillis(0.96)}
	rnic.ConnectPair(qa, qb, p, p)
	lb := cl.Nodes[0].AS.Alloc(hostmem.PageSize)
	rb2 := cl.Nodes[2].AS.Alloc(hostmem.PageSize)
	cl.Nodes[0].RegisterMR(lb, hostmem.PageSize)
	cl.Nodes[2].RegisterMR(rb2, hostmem.PageSize)
	qa.PostSend(rnic.SendWR{ID: 1, Op: rnic.OpRead, LocalAddr: lb, RemoteAddr: rb2, Len: 64})
	cl.Eng.Run()
	if got := cqA.Poll(0); len(got) != 1 || got[0].Status != rnic.WCSuccess {
		t.Fatalf("cross-node READ failed: %+v", got)
	}
}
