package capture

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// Binary trace format: a fixed magic/version header followed by one
// fixed-layout record per packet. It plays the role ibdump's pcap output
// plays for the paper: captures can be saved and re-analyzed offline (by
// the detectors in internal/core, or external tooling).
const (
	traceMagic   = 0x0DB5_0D12
	traceVersion = 1
)

var (
	// ErrBadMagic reports a file that is not an odpsim trace.
	ErrBadMagic = errors.New("capture: bad trace magic")
	// ErrBadVersion reports an unsupported trace version.
	ErrBadVersion = errors.New("capture: unsupported trace version")
)

// record flags.
const (
	flagDropped = 1 << iota
	flagDoomed
	flagAckReq
)

// WriteTrace serializes all records to w in the binary trace format.
func (c *Capture) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(c.records)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 64)
	for _, r := range c.records {
		p := r.Pkt
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.At))
		binary.LittleEndian.PutUint16(buf[8:], p.SLID)
		binary.LittleEndian.PutUint16(buf[10:], p.DLID)
		binary.LittleEndian.PutUint32(buf[12:], uint32(p.Opcode))
		binary.LittleEndian.PutUint32(buf[16:], p.PSN)
		binary.LittleEndian.PutUint32(buf[20:], p.DestQP)
		binary.LittleEndian.PutUint32(buf[24:], p.SrcQP)
		binary.LittleEndian.PutUint64(buf[28:], p.RemoteAddr)
		binary.LittleEndian.PutUint32(buf[36:], p.DMALen)
		binary.LittleEndian.PutUint32(buf[40:], uint32(p.Syndrome))
		binary.LittleEndian.PutUint64(buf[44:], uint64(p.RNRTimerNs))
		binary.LittleEndian.PutUint32(buf[52:], p.AckPSN)
		binary.LittleEndian.PutUint32(buf[56:], uint32(p.PayloadLen))
		var flags uint32
		if r.Dropped {
			flags |= flagDropped
		}
		if p.DammingDoomed {
			flags |= flagDoomed
		}
		if p.AckReq {
			flags |= flagAckReq
		}
		binary.LittleEndian.PutUint32(buf[60:], flags)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a binary trace written by WriteTrace. Endpoint names
// and drop reasons are not stored in the binary format and come back
// empty.
func ReadTrace(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("capture: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	out := make([]Record, 0, n)
	buf := make([]byte, 64)
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("capture: record %d: %w", i, err)
		}
		p := packet.Packet{
			SLID:       binary.LittleEndian.Uint16(buf[8:]),
			DLID:       binary.LittleEndian.Uint16(buf[10:]),
			Opcode:     packet.Opcode(binary.LittleEndian.Uint32(buf[12:])),
			PSN:        binary.LittleEndian.Uint32(buf[16:]),
			DestQP:     binary.LittleEndian.Uint32(buf[20:]),
			SrcQP:      binary.LittleEndian.Uint32(buf[24:]),
			RemoteAddr: binary.LittleEndian.Uint64(buf[28:]),
			DMALen:     binary.LittleEndian.Uint32(buf[36:]),
			Syndrome:   packet.Syndrome(binary.LittleEndian.Uint32(buf[40:])),
			RNRTimerNs: int64(binary.LittleEndian.Uint64(buf[44:])),
			AckPSN:     binary.LittleEndian.Uint32(buf[52:]),
			PayloadLen: int(binary.LittleEndian.Uint32(buf[56:])),
		}
		flags := binary.LittleEndian.Uint32(buf[60:])
		p.DammingDoomed = flags&flagDoomed != 0
		p.AckReq = flags&flagAckReq != 0
		out = append(out, Record{
			At:      sim.Time(binary.LittleEndian.Uint64(buf[0:])),
			Pkt:     p,
			Dropped: flags&flagDropped != 0,
		})
	}
	return out, nil
}

// WriteCSV exports the capture as CSV with a header row, for spreadsheet
// or pandas analysis of sweeps.
func (c *Capture) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"time_ns", "src", "dst", "opcode", "syndrome", "psn", "ack_psn",
		"dest_qp", "src_qp", "payload_len", "dropped", "doomed",
	}); err != nil {
		return err
	}
	for _, r := range c.records {
		p := r.Pkt
		syn := ""
		if p.Opcode == packet.OpAcknowledge {
			syn = p.Syndrome.String()
		}
		err := cw.Write([]string{
			strconv.FormatInt(int64(r.At), 10),
			r.Src, r.Dst,
			p.Opcode.String(), syn,
			strconv.FormatUint(uint64(p.PSN), 10),
			strconv.FormatUint(uint64(p.AckPSN), 10),
			strconv.FormatUint(uint64(p.DestQP), 10),
			strconv.FormatUint(uint64(p.SrcQP), 10),
			strconv.Itoa(p.PayloadLen),
			strconv.FormatBool(r.Dropped),
			strconv.FormatBool(p.DammingDoomed),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
