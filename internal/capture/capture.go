// Package capture is the simulator's ibdump: it records every packet that
// crosses the fabric with timestamps, renders workflow diagrams like the
// paper's Figures 1, 5 and 8, and provides the packet counters behind
// Figure 9b. The paper's methodology rests on this kind of raw-packet
// visibility ("detecting the pitfalls becomes extremely hard without
// observing the raw packets", §IX-A).
package capture

import (
	"fmt"
	"io"
	"strings"

	"odpsim/internal/fabric"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// Record is one captured packet. Pkt is stored by value: the fabric only
// lends the live packet to taps for the duration of the tap call
// (DESIGN.md §8), so the capture keeps its own copy, the way ibdump
// copies frames out of the mirrored stream.
type Record struct {
	At      sim.Time
	Pkt     packet.Packet
	Src     string
	Dst     string
	Dropped bool
	Reason  string
}

// Capture accumulates records from a fabric tap.
type Capture struct {
	records []Record
	enabled bool
	limit   int // 0 = unlimited
}

// Attach creates a capture and taps the fabric. Capturing starts enabled.
func Attach(f *fabric.Fabric) *Capture {
	c := &Capture{enabled: true}
	f.AddTap(func(ev fabric.TapEvent) {
		if !c.enabled {
			return
		}
		if c.limit > 0 && len(c.records) >= c.limit {
			return
		}
		c.records = append(c.records, Record{
			At: ev.At, Pkt: *ev.Pkt, Src: ev.SrcName, Dst: ev.DstName,
			Dropped: ev.Dropped, Reason: ev.Reason,
		})
	})
	return c
}

// FromRecords builds a capture holding the given records — e.g. reloaded
// from a trace file with ReadTrace — so the analysis helpers and
// detectors can run offline.
func FromRecords(rs []Record) *Capture {
	return &Capture{records: rs}
}

// SetLimit caps the number of stored records (0 = unlimited); counting
// via Total/CountOpcode still reflects only stored records, so set the
// limit before long runs only when you need bounded memory.
func (c *Capture) SetLimit(n int) { c.limit = n }

// Start resumes capturing.
func (c *Capture) Start() { c.enabled = true }

// Stop pauses capturing.
func (c *Capture) Stop() { c.enabled = false }

// Reset discards all records.
func (c *Capture) Reset() { c.records = nil }

// Records returns all captured records.
func (c *Capture) Records() []Record { return c.records }

// Total returns the number of captured packets.
func (c *Capture) Total() int { return len(c.records) }

// CountOpcode returns how many captured packets carry the opcode.
func (c *Capture) CountOpcode(op packet.Opcode) int {
	n := 0
	for _, r := range c.records {
		if r.Pkt.Opcode == op {
			n++
		}
	}
	return n
}

// CountSyndrome returns how many Acknowledge packets carry the syndrome.
func (c *Capture) CountSyndrome(s packet.Syndrome) int {
	n := 0
	for _, r := range c.records {
		if r.Pkt.Opcode == packet.OpAcknowledge && r.Pkt.Syndrome == s {
			n++
		}
	}
	return n
}

// FilterQP returns the records whose destination or source QP number
// matches qpn.
func (c *Capture) FilterQP(qpn uint32) []Record {
	var out []Record
	for _, r := range c.records {
		if r.Pkt.DestQP == qpn || r.Pkt.SrcQP == qpn {
			out = append(out, r)
		}
	}
	return out
}

// Filter returns the records matching pred.
func (c *Capture) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range c.records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Retransmissions counts request packets whose (QP, PSN, opcode) was seen
// before — the metric behind the packet-flood analysis.
func (c *Capture) Retransmissions() int {
	type key struct {
		qp  uint32
		psn uint32
		op  packet.Opcode
	}
	seen := make(map[key]bool)
	n := 0
	for _, r := range c.records {
		if !r.Pkt.Opcode.IsRequest() {
			continue
		}
		k := key{r.Pkt.DestQP, r.Pkt.PSN, r.Pkt.Opcode}
		if seen[k] {
			n++
		}
		seen[k] = true
	}
	return n
}

// RenderFlow writes a two-column workflow diagram in the style of the
// paper's Figures 1, 5 and 8: client on the left, server on the right,
// one captured packet per line. left names the client-side endpoint.
func (c *Capture) RenderFlow(w io.Writer, left string) {
	const width = 46
	fmt.Fprintf(w, "%12s  %-*s\n", "time", width+len("client  server"), "client"+strings.Repeat(" ", width-4)+"server")
	for _, r := range c.records {
		label := r.Pkt.String()
		if r.Dropped {
			label += " ✗ " + r.Reason
		} else if r.Pkt.DammingDoomed {
			label += " ✗ discarded by RNIC (damming quirk)"
		}
		toRight := r.Src == left
		var line string
		if toRight {
			line = "──" + label + "──▶"
		} else {
			line = "◀──" + label + "──"
		}
		fmt.Fprintf(w, "%12s  %s\n", r.At, line)
	}
}

// Summary renders one line per opcode/syndrome with counts.
func (c *Capture) Summary() string {
	var b strings.Builder
	counts := map[string]int{}
	var order []string
	for _, r := range c.records {
		name := r.Pkt.Opcode.String()
		if r.Pkt.Opcode == packet.OpAcknowledge {
			name = r.Pkt.Syndrome.String()
		}
		if _, ok := counts[name]; !ok {
			order = append(order, name)
		}
		counts[name]++
	}
	fmt.Fprintf(&b, "%d packets captured\n", len(c.records))
	for _, name := range order {
		fmt.Fprintf(&b, "  %-34s %6d\n", name, counts[name])
	}
	return b.String()
}
