package capture

import (
	"strings"
	"testing"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// mkCapture builds a capture from (time, packet) pairs directly.
func mkCapture(recs ...Record) *Capture { return FromRecords(recs) }

func req(at sim.Time, qp, psn uint32) Record {
	return Record{At: at, Pkt: packet.Packet{Opcode: packet.OpReadRequest, SrcQP: qp, DestQP: qp, PSN: psn}}
}

func resp(at sim.Time, qp, psn uint32) Record {
	return Record{At: at, Pkt: packet.Packet{Opcode: packet.OpReadRespOnly, DestQP: qp, PSN: psn, Syndrome: packet.SynACK}}
}

func ack(at sim.Time, qp, psn uint32) Record {
	return Record{At: at, Pkt: packet.Packet{Opcode: packet.OpAcknowledge, DestQP: qp, PSN: psn, AckPSN: psn, Syndrome: packet.SynACK}}
}

func TestOpLatenciesBasic(t *testing.T) {
	c := mkCapture(
		req(0, 1, 0),
		resp(10, 1, 0),
		req(20, 1, 1),
		resp(35, 1, 1),
	)
	ops := c.OpLatencies()
	if len(ops) != 2 {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Latency() != 10 || ops[1].Latency() != 15 {
		t.Errorf("latencies = %v, %v", ops[0].Latency(), ops[1].Latency())
	}
	if ops[0].Attempts != 1 {
		t.Errorf("attempts = %d", ops[0].Attempts)
	}
}

func TestOpLatenciesRetransmissionsCounted(t *testing.T) {
	c := mkCapture(
		req(0, 1, 0),
		req(500, 1, 0), // retransmit
		req(1000, 1, 0),
		resp(1010, 1, 0),
	)
	ops := c.OpLatencies()
	if len(ops) != 1 {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3", ops[0].Attempts)
	}
	if ops[0].Latency() != 1010 {
		t.Errorf("latency measured from FIRST transmission: %v", ops[0].Latency())
	}
}

func TestOpLatenciesCoalescedAck(t *testing.T) {
	// Two WRITEs acked by one coalesced ACK.
	c := mkCapture(
		Record{At: 0, Pkt: packet.Packet{Opcode: packet.OpWriteOnly, SrcQP: 2, DestQP: 2, PSN: 5}},
		Record{At: 3, Pkt: packet.Packet{Opcode: packet.OpWriteOnly, SrcQP: 2, DestQP: 2, PSN: 6}},
		ack(9, 2, 6),
	)
	ops := c.OpLatencies()
	if len(ops) != 2 {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Done != 9 || ops[1].Done != 9 {
		t.Errorf("coalesced ACK should complete both: %+v", ops)
	}
}

func TestOpLatenciesIncompleteOmitted(t *testing.T) {
	c := mkCapture(req(0, 1, 0), req(0, 1, 1), resp(5, 1, 0))
	ops := c.OpLatencies()
	if len(ops) != 1 || ops[0].PSN != 0 {
		t.Fatalf("ops = %+v, want only PSN 0", ops)
	}
}

func TestOpLatenciesOnRealDammingRun(t *testing.T) {
	// Reconstructed latency of the dammed op must be the timeout scale;
	// the first op must be the RNR scale (the Figure-5 shape).
	c := mkCapture(
		req(0, 1, 0),
		Record{At: 2000, Pkt: packet.Packet{Opcode: packet.OpAcknowledge, DestQP: 1, PSN: 0, AckPSN: 0, Syndrome: packet.SynRNRNAK}},
		req(4_480_000, 1, 0),
		req(4_480_100, 1, 1),
		resp(4_490_000, 1, 0),
		req(500_000_000, 1, 1),
		resp(500_010_000, 1, 1),
	)
	ops := c.OpLatencies()
	if len(ops) != 2 {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Latency() > 5*sim.Millisecond {
		t.Errorf("first op latency %v", ops[0].Latency())
	}
	if ops[1].Latency() < 400*sim.Millisecond {
		t.Errorf("dammed op latency %v, want the timeout scale", ops[1].Latency())
	}
	if ops[1].Attempts != 2 {
		t.Errorf("dammed op attempts = %d", ops[1].Attempts)
	}
}

func TestPerQPStats(t *testing.T) {
	c := mkCapture(
		req(0, 1, 0),
		req(10, 2, 0),
		req(500, 1, 0), // retransmit on QP 1
		resp(520, 1, 0),
		Record{At: 530, Pkt: packet.Packet{Opcode: packet.OpAcknowledge, DestQP: 2, AckPSN: 0, Syndrome: packet.SynRNRNAK}},
	)
	flows := c.PerQPStats()
	if len(flows) != 2 {
		t.Fatalf("flows = %+v", flows)
	}
	if flows[0].QPN != 1 || flows[1].QPN != 2 {
		t.Error("flows must be sorted by QPN")
	}
	if flows[0].Requests != 2 || flows[0].Retransmits != 1 || flows[0].Responses != 1 {
		t.Errorf("QP1 stats = %+v", flows[0])
	}
	if flows[1].RNRNaks != 1 {
		t.Errorf("QP2 stats = %+v", flows[1])
	}
	if flows[0].LastAt-flows[0].FirstAt != 520 {
		t.Errorf("QP1 span = %v", flows[0].LastAt-flows[0].FirstAt)
	}
}

func TestAnalysisReportRenders(t *testing.T) {
	c := mkCapture(req(0, 1, 0), resp(10, 1, 0))
	out := c.AnalysisReport()
	for _, want := range []string{"1 completed operations", "QPN", "attempts", "requests", "rnr-nak"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
