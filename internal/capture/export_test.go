package capture

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

func randomCapture(rng *rand.Rand, n int) *Capture {
	c := &Capture{enabled: true}
	for i := 0; i < n; i++ {
		p := packet.Packet{
			SLID:          uint16(rng.Intn(16)),
			DLID:          uint16(rng.Intn(16)),
			Opcode:        packet.Opcode(rng.Intn(9)),
			PSN:           rng.Uint32() & 0xFFFFFF,
			AckPSN:        rng.Uint32() & 0xFFFFFF,
			DestQP:        rng.Uint32() % 1024,
			SrcQP:         rng.Uint32() % 1024,
			RemoteAddr:    rng.Uint64(),
			DMALen:        rng.Uint32() % 8192,
			Syndrome:      packet.Syndrome(rng.Intn(4)),
			RNRTimerNs:    int64(rng.Intn(10_000_000)),
			PayloadLen:    rng.Intn(4096),
			AckReq:        rng.Intn(2) == 0,
			DammingDoomed: rng.Intn(4) == 0,
		}
		c.records = append(c.records, Record{
			At:      sim.Time(rng.Int63n(1_000_000_000)),
			Pkt:     p,
			Dropped: rng.Intn(5) == 0,
		})
	}
	return c
}

// Property: WriteTrace → ReadTrace is lossless for every stored field.
func TestTraceRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(nRaw uint8) bool {
		n := int(nRaw % 64)
		c := randomCapture(rng, n)
		var buf bytes.Buffer
		if err := c.WriteTrace(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, r := range got {
			want := c.records[i]
			if r.At != want.At || r.Dropped != want.Dropped {
				return false
			}
			if !packetsEqual(r.Pkt, withoutUnstored(want.Pkt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// withoutUnstored zeroes the fields the binary format does not persist.
func withoutUnstored(p packet.Packet) packet.Packet {
	p.AppSeq = 0
	p.AppWords = nil
	p.AtomicSwap = 0
	p.AtomicCompare = 0
	p.AtomicOrig = 0
	return p
}

// packetsEqual compares packets field-wise (the struct holds a slice and
// cannot be compared with ==).
func packetsEqual(a, b packet.Packet) bool {
	if len(a.AppWords) != len(b.AppWords) {
		return false
	}
	for i := range a.AppWords {
		if a.AppWords[i] != b.AppWords[i] {
			return false
		}
	}
	return a.SLID == b.SLID && a.DLID == b.DLID && a.Opcode == b.Opcode &&
		a.PSN == b.PSN && a.DestQP == b.DestQP && a.AckReq == b.AckReq &&
		a.SrcQP == b.SrcQP && a.RemoteAddr == b.RemoteAddr && a.DMALen == b.DMALen &&
		a.Syndrome == b.Syndrome && a.RNRTimerNs == b.RNRTimerNs && a.AckPSN == b.AckPSN &&
		a.PayloadLen == b.PayloadLen && a.AppSeq == b.AppSeq &&
		a.AtomicSwap == b.AtomicSwap && a.AtomicCompare == b.AtomicCompare &&
		a.AtomicOrig == b.AtomicOrig && a.DammingDoomed == b.DammingDoomed
}

func TestTraceEmpty(t *testing.T) {
	c := &Capture{}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records", len(got))
	}
}

func TestTraceBadMagic(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(make([]byte, 12))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v", err)
	}
}

func TestTraceTruncated(t *testing.T) {
	c := randomCapture(rand.New(rand.NewSource(1)), 3)
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace should error")
	}
}

func TestTraceBadVersion(t *testing.T) {
	c := randomCapture(rand.New(rand.NewSource(2)), 1)
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99
	if _, err := ReadTrace(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v", err)
	}
}

func TestWriteCSV(t *testing.T) {
	eng, _, cap_, a := setup(t)
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: 7, DestQP: 3})
	a.Send(&packet.Packet{Opcode: packet.OpAcknowledge, Syndrome: packet.SynRNRNAK, DLID: 2})
	eng.Run()
	var buf bytes.Buffer
	if err := cap_.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "time_ns,src,dst,opcode") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "RDMA READ Request") || !strings.Contains(lines[1], ",7,") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "RNR NAK") {
		t.Errorf("row = %q", lines[2])
	}
}
