package capture

import (
	"fmt"
	"sort"
	"strings"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// This file holds the offline analysis helpers one would run over an
// ibdump trace: per-operation service times (request → completing
// response), per-QP flow statistics, and retransmission timelines — the
// measurements behind the paper's reverse engineering.

// OpLatency is one request's wire-level service record.
type OpLatency struct {
	QPN      uint32
	PSN      uint32
	Opcode   packet.Opcode
	FirstTx  sim.Time
	Done     sim.Time // completing response/ack arrival (on-wire time)
	Attempts int      // times the request appeared on the wire
}

// Latency returns the first-transmission-to-completion time.
func (o OpLatency) Latency() sim.Time { return o.Done - o.FirstTx }

// OpLatencies reconstructs per-operation service times from the capture:
// a request is completed by the first later packet that acknowledges its
// PSN (a READ response with the same PSN, or an ACK covering it).
// Operations with no visible completion are omitted.
func (c *Capture) OpLatencies() []OpLatency {
	type key struct {
		qp  uint32
		psn uint32
	}
	open := map[key]*OpLatency{}
	var order []key
	for _, r := range c.records {
		p := r.Pkt
		if p.Opcode.IsRequest() {
			k := key{p.SrcQP, p.PSN}
			if o, ok := open[k]; ok {
				o.Attempts++
				continue
			}
			open[k] = &OpLatency{QPN: p.SrcQP, PSN: p.PSN, Opcode: p.Opcode, FirstTx: r.At, Attempts: 1}
			order = append(order, k)
			continue
		}
		if r.Dropped {
			continue
		}
		switch {
		case p.Opcode.IsReadResponse() || p.Opcode == packet.OpAtomicResp:
			k := key{p.DestQP, p.PSN}
			if o, ok := open[k]; ok && o.Done == 0 {
				o.Done = r.At
			}
		case p.Opcode == packet.OpAcknowledge && p.Syndrome == packet.SynACK:
			// A coalesced ACK completes every open op at or before its
			// PSN on that QP.
			for _, o := range open {
				if o.QPN == p.DestQP && o.Done == 0 && packet.PSNDiff(o.PSN, p.AckPSN) <= 0 {
					o.Done = r.At
				}
			}
		}
	}
	out := make([]OpLatency, 0, len(order))
	for _, k := range order {
		if o := open[k]; o.Done > 0 {
			out = append(out, *o)
		}
	}
	return out
}

// FlowStats summarizes one QP's traffic.
type FlowStats struct {
	QPN         uint32
	Requests    int
	Responses   int
	Acks        int
	RNRNaks     int
	SeqNaks     int
	Retransmits int
	FirstAt     sim.Time
	LastAt      sim.Time
}

// PerQPStats aggregates flow statistics per destination QP, sorted by QPN.
func (c *Capture) PerQPStats() []FlowStats {
	type reqKey struct {
		qp  uint32
		psn uint32
	}
	seen := map[reqKey]bool{}
	flows := map[uint32]*FlowStats{}
	get := func(qpn uint32, at sim.Time) *FlowStats {
		f, ok := flows[qpn]
		if !ok {
			f = &FlowStats{QPN: qpn, FirstAt: at}
			flows[qpn] = f
		}
		f.LastAt = at
		return f
	}
	for _, r := range c.records {
		p := r.Pkt
		switch {
		case p.Opcode.IsRequest():
			f := get(p.SrcQP, r.At)
			f.Requests++
			k := reqKey{p.SrcQP, p.PSN}
			if seen[k] {
				f.Retransmits++
			}
			seen[k] = true
		case p.Opcode.IsReadResponse() || p.Opcode == packet.OpAtomicResp:
			get(p.DestQP, r.At).Responses++
		case p.Opcode == packet.OpAcknowledge:
			f := get(p.DestQP, r.At)
			switch p.Syndrome {
			case packet.SynACK:
				f.Acks++
			case packet.SynRNRNAK:
				f.RNRNaks++
			case packet.SynNAKSeqErr:
				f.SeqNaks++
			}
		}
	}
	out := make([]FlowStats, 0, len(flows))
	for _, f := range flows {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QPN < out[j].QPN })
	return out
}

// AnalysisReport renders the op latencies and per-QP flows as text — the
// quick look the authors describe taking at every suspicious trace.
func (c *Capture) AnalysisReport() string {
	var b strings.Builder
	ops := c.OpLatencies()
	fmt.Fprintf(&b, "%d completed operations\n", len(ops))
	fmt.Fprintf(&b, "%6s %8s %-22s %12s %9s\n", "QPN", "PSN", "opcode", "latency", "attempts")
	for _, o := range ops {
		fmt.Fprintf(&b, "%6d %8d %-22s %12s %9d\n", o.QPN, o.PSN, o.Opcode, o.Latency(), o.Attempts)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%6s %9s %10s %6s %8s %8s %12s\n",
		"QPN", "requests", "retransmit", "acks", "rnr-nak", "seq-nak", "active-span")
	for _, f := range c.PerQPStats() {
		fmt.Fprintf(&b, "%6d %9d %10d %6d %8d %8d %12s\n",
			f.QPN, f.Requests, f.Retransmits, f.Acks, f.RNRNaks, f.SeqNaks, f.LastAt-f.FirstAt)
	}
	return b.String()
}
