package capture

import (
	"strings"
	"testing"

	"odpsim/internal/fabric"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *fabric.Fabric, *Capture, *fabric.Port) {
	t.Helper()
	eng := sim.New(1)
	fab := fabric.New(eng, fabric.DefaultConfig())
	cap := Attach(fab)
	a := fab.AttachPort(1, "client", func(*packet.Packet) {})
	fab.AttachPort(2, "server", func(*packet.Packet) {})
	return eng, fab, cap, a
}

func TestCaptureRecords(t *testing.T) {
	eng, _, cap, a := setup(t)
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: 1, DestQP: 7})
	a.Send(&packet.Packet{Opcode: packet.OpAcknowledge, Syndrome: packet.SynRNRNAK, DLID: 2})
	eng.Run()
	if cap.Total() != 2 {
		t.Fatalf("Total = %d", cap.Total())
	}
	if cap.CountOpcode(packet.OpReadRequest) != 1 {
		t.Error("read request not counted")
	}
	if cap.CountSyndrome(packet.SynRNRNAK) != 1 {
		t.Error("RNR NAK not counted")
	}
	if got := cap.FilterQP(7); len(got) != 1 {
		t.Errorf("FilterQP = %d records", len(got))
	}
}

func TestStartStopReset(t *testing.T) {
	eng, _, cap, a := setup(t)
	cap.Stop()
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2})
	eng.Run()
	if cap.Total() != 0 {
		t.Error("stopped capture recorded a packet")
	}
	cap.Start()
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2})
	eng.Run()
	if cap.Total() != 1 {
		t.Error("restarted capture missed a packet")
	}
	cap.Reset()
	if cap.Total() != 0 {
		t.Error("reset did not clear")
	}
}

func TestLimit(t *testing.T) {
	eng, _, cap, a := setup(t)
	cap.SetLimit(3)
	for i := 0; i < 10; i++ {
		a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: uint32(i)})
	}
	eng.Run()
	if cap.Total() != 3 {
		t.Errorf("Total = %d, want capped at 3", cap.Total())
	}
}

func TestRetransmissions(t *testing.T) {
	eng, _, cap, a := setup(t)
	for _, psn := range []uint32{0, 1, 1, 1, 2} {
		a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: psn, DestQP: 5})
	}
	// Responses never count as retransmissions.
	a.Send(&packet.Packet{Opcode: packet.OpReadRespOnly, DLID: 2, PSN: 1})
	a.Send(&packet.Packet{Opcode: packet.OpReadRespOnly, DLID: 2, PSN: 1})
	eng.Run()
	if got := cap.Retransmissions(); got != 2 {
		t.Errorf("Retransmissions = %d, want 2", got)
	}
}

func TestRenderFlow(t *testing.T) {
	eng, _, cap, a := setup(t)
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: 0})
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 99, PSN: 1}) // dropped
	doomed := &packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: 2, DammingDoomed: true}
	a.Send(doomed)
	eng.Run()
	var b strings.Builder
	cap.RenderFlow(&b, "client")
	out := b.String()
	if !strings.Contains(out, "──▶") {
		t.Errorf("missing direction arrow:\n%s", out)
	}
	if !strings.Contains(out, "unknown DLID") {
		t.Errorf("missing drop annotation:\n%s", out)
	}
	if !strings.Contains(out, "damming quirk") {
		t.Errorf("missing doomed annotation:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	eng, _, cap, a := setup(t)
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2})
	a.Send(&packet.Packet{Opcode: packet.OpAcknowledge, Syndrome: packet.SynNAKSeqErr, DLID: 2})
	eng.Run()
	s := cap.Summary()
	if !strings.Contains(s, "2 packets captured") {
		t.Errorf("summary:\n%s", s)
	}
	if !strings.Contains(s, "NAK (PSN Sequence Error)") {
		t.Errorf("summary missing syndrome:\n%s", s)
	}
}

func TestFilterPredicate(t *testing.T) {
	eng, _, cap, a := setup(t)
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2})
	a.Send(&packet.Packet{Opcode: packet.OpSendOnly, DLID: 2})
	eng.Run()
	got := cap.Filter(func(r Record) bool { return r.Pkt.Opcode == packet.OpSendOnly })
	if len(got) != 1 {
		t.Errorf("Filter = %d records", len(got))
	}
}
