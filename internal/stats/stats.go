// Package stats provides the small statistical toolkit the experiment
// harness needs: summaries (mean, standard deviation, percentiles),
// fixed-width histograms for the Figure-12 style execution-time
// distributions, and labelled series for sweep outputs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0..1) of an already sorted sample
// using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.3g min=%.4g p50=%.4g p90=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.Max)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); values outside
// the range land in the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Bars renders the histogram as text, one bin per line.
func (h *Histogram) Bars(unit string) string {
	var b strings.Builder
	maxc := 1
	for _, c := range h.Counts {
		if c > maxc {
			maxc = c
		}
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("█", c*50/maxc)
		fmt.Fprintf(&b, "%8.3g %-3s |%-50s %d\n", h.BinCenter(i), unit, bar, c)
	}
	return b.String()
}

// Modes returns the indices of local maxima with counts >= minCount —
// used to verify the bimodal shape of the Figure-12 distributions.
func (h *Histogram) Modes(minCount int) []int {
	var modes []int
	for i, c := range h.Counts {
		if c < minCount {
			continue
		}
		leftOK := i == 0 || h.Counts[i-1] < c
		rightOK := i == len(h.Counts)-1 || h.Counts[i+1] <= c
		// Skip plateaus already counted.
		if i > 0 && h.Counts[i-1] == c {
			leftOK = false
		}
		if leftOK && rightOK {
			modes = append(modes, i)
		}
	}
	return modes
}

// Series is a labelled sequence of (x, y) points, the unit of exchange
// between sweep drivers and renderers.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders aligned columns for one or more series sharing the same X
// values (taken from the first series).
func Table(xName string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", xName)
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-12.6g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %16.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
