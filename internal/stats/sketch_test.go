package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sketchRelErr is the worst-case relative error one bucket introduces at
// 64 buckets per decade: g - 1 = 10^(1/64) - 1 ≈ 3.66%. Tests allow a
// hair more for the edge-vs-interpolation difference against Percentile.
const sketchRelErr = 0.05

// TestSketchAgainstExactPercentiles streams a few deterministic
// distributions through the sketch and compares every tracked quantile
// against the exact sorted-sample answer.
func TestSketchAgainstExactPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() float64{
		"uniform":   func() float64 { return 1 + 999*rng.Float64() },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64()*1.5 + 3) },
		"bimodal-tail": func() float64 {
			if rng.Float64() < 0.95 {
				return 10 + rng.Float64()
			}
			return 5000 + 1000*rng.Float64()
		},
	}
	for name, draw := range dists {
		q := NewQuantileSketch(0.1, 1e6, 64)
		xs := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			x := draw()
			xs = append(xs, x)
			q.Add(x)
		}
		sort.Float64s(xs)
		for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
			exact := Percentile(xs, p)
			got := q.Quantile(p)
			if rel := math.Abs(got-exact) / exact; rel > sketchRelErr {
				t.Errorf("%s p%g: sketch %.4g vs exact %.4g (rel err %.3f > %.2f)",
					name, p*100, got, exact, rel, sketchRelErr)
			}
		}
		if q.N() != 20000 {
			t.Errorf("%s: N = %d, want 20000", name, q.N())
		}
		if q.Min() != xs[0] || q.Max() != xs[len(xs)-1] {
			t.Errorf("%s: min/max %.4g/%.4g, want exact %.4g/%.4g",
				name, q.Min(), q.Max(), xs[0], xs[len(xs)-1])
		}
	}
}

// TestSketchMergeOrderInvariant splits one stream across four sketches
// and checks every merge order reproduces the single-sketch answer bit
// for bit — the property that makes per-shard sketches safe to merge in
// shard order regardless of which worker lane filled them.
func TestSketchMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole := NewQuantileSketch(1, 1e5, 64)
	parts := make([]*QuantileSketch, 4)
	for i := range parts {
		parts[i] = NewQuantileSketch(1, 1e5, 64)
	}
	for i := 0; i < 8000; i++ {
		x := math.Exp(rng.NormFloat64() + 5)
		whole.Add(x)
		parts[i%4].Add(x)
	}
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}, {2, 3, 1, 0}} {
		m := NewQuantileSketch(1, 1e5, 64)
		for _, i := range order {
			m.Merge(parts[i])
		}
		for _, p := range []float64{0.5, 0.99, 0.999} {
			if m.Quantile(p) != whole.Quantile(p) {
				t.Errorf("merge order %v: p%g = %v, single-sketch %v",
					order, p*100, m.Quantile(p), whole.Quantile(p))
			}
		}
		if m.N() != whole.N() || m.Min() != whole.Min() || m.Max() != whole.Max() {
			t.Errorf("merge order %v: n/min/max differ from single sketch", order)
		}
	}
}

// TestSketchClamping pins the edge behaviour: values outside [lo, hi)
// land in the edge buckets but min/max stay exact, and the quantile
// estimate never leaves the observed range.
func TestSketchClamping(t *testing.T) {
	q := NewQuantileSketch(1, 100, 8)
	for _, x := range []float64{0.001, 0.5, 1e9} {
		q.Add(x)
	}
	if q.Min() != 0.001 || q.Max() != 1e9 {
		t.Errorf("min/max = %g/%g, want exact 0.001/1e9", q.Min(), q.Max())
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		got := q.Quantile(p)
		if got < 0.001 || got > 1e9 {
			t.Errorf("p%g = %g outside the observed range", p*100, got)
		}
	}
	if got := q.Quantile(1); got != 1e9 {
		t.Errorf("p100 = %g, want the exact max 1e9", got)
	}
}

// TestSketchTopBucketNotOverflow is the regression test for the
// dedicated overflow bucket: in-range samples in the topmost grid
// bucket must report that bucket's edge, not the global max — the
// exact-max rule is reserved for true beyond-grid overflow samples.
func TestSketchTopBucketNotOverflow(t *testing.T) {
	// One bucket per decade over [1, 100): grid buckets [1,10) and
	// [10,100), plus the overflow bucket.
	q := NewQuantileSketch(1, 100, 1)
	for i := 0; i < 100; i++ {
		q.Add(50) // mid-distribution mass in the top in-range bucket
	}
	q.Add(1e6) // one genuine overflow outlier
	if p50 := q.Quantile(0.5); p50 > 100 {
		t.Errorf("p50 = %g leaked the overflow max; want the top grid bucket edge (100)", p50)
	}
	if p999 := q.Quantile(0.999); p999 != 1e6 {
		t.Errorf("p99.9 = %g, want the exact max 1e6 from the overflow bucket", p999)
	}
}

// TestSketchEmptyAndShapePanics covers the zero cases: an empty sketch
// reports zeros, and mismatched shapes refuse to merge.
func TestSketchEmptyAndShapePanics(t *testing.T) {
	q := NewQuantileSketch(1, 1000, 16)
	if q.N() != 0 || q.Quantile(0.5) != 0 || q.Min() != 0 || q.Max() != 0 {
		t.Error("empty sketch should report zeros")
	}
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched shapes did not panic")
		}
	}()
	q.Merge(NewQuantileSketch(1, 1000, 32))
}
