package stats

import "math"

// QuantileSketch is a streaming quantile estimator over a fixed
// logarithmic bucket grid: bucket i covers [lo·g^i, lo·g^(i+1)) with a
// constant growth factor g, so Add is O(1) (one log2 and an increment)
// and memory is fixed no matter how many samples stream through. It
// exists for the fabric-scale latency scenarios (kv-serve's open-loop
// GETs), where Summarize's copy-and-sort of every sample would dominate
// the run; the price is a bounded relative error of at most g-1 per
// quantile (buckets per decade = 64 puts that at about 3.7%).
//
// The sketch is deterministic and its Merge is order-invariant (bucket
// counts add), so per-shard sketches merged in shard order render the
// same percentiles for any worker-lane count — the same contract the
// sweep runner's index-ordered commit provides.
type QuantileSketch struct {
	lo     float64 // lower edge of bucket 0
	invLgG float64 // 1 / log2(g), to map a value to its bucket
	g      float64 // per-bucket growth factor
	counts []uint64
	n      uint64
	min    float64 // exact extremes: the tails people actually read
	max    float64
}

// NewQuantileSketch creates a sketch spanning [lo, hi) with
// perDecade buckets per factor of 10. Values below lo clamp into the
// first bucket; values beyond the grid land in a dedicated overflow
// bucket past the last in-range bucket, so out-of-range outliers never
// share a bucket with legitimate top-of-range samples. The exact
// min/max are tracked separately so clamping never hides an outlier.
func NewQuantileSketch(lo, hi float64, perDecade int) *QuantileSketch {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("stats: invalid quantile sketch shape")
	}
	g := math.Pow(10, 1/float64(perDecade))
	buckets := int(math.Ceil(math.Log10(hi/lo) * float64(perDecade)))
	if buckets < 1 {
		buckets = 1
	}
	return &QuantileSketch{
		lo:     lo,
		g:      g,
		invLgG: 1 / math.Log2(g),
		counts: make([]uint64, buckets+1), // +1: overflow bucket beyond the grid
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Add records one observation.
func (q *QuantileSketch) Add(x float64) {
	i := 0
	if x > q.lo {
		i = int(math.Log2(x/q.lo) * q.invLgG)
	}
	if i >= len(q.counts) {
		i = len(q.counts) - 1
	}
	q.counts[i]++
	q.n++
	if x < q.min {
		q.min = x
	}
	if x > q.max {
		q.max = x
	}
}

// N returns the number of observations recorded.
func (q *QuantileSketch) N() uint64 { return q.n }

// Min and Max return the exact extremes (0 on an empty sketch).
func (q *QuantileSketch) Min() float64 {
	if q.n == 0 {
		return 0
	}
	return q.min
}

func (q *QuantileSketch) Max() float64 {
	if q.n == 0 {
		return 0
	}
	return q.max
}

// Quantile returns the p-quantile (0..1) estimate: the upper edge of the
// bucket holding the nearest-rank sample, clamped to the exact min/max so
// the reported tail never exceeds an observed value. An empty sketch
// returns 0.
func (q *QuantileSketch) Quantile(p float64) float64 {
	if q.n == 0 {
		return 0
	}
	if p <= 0 {
		return q.min
	}
	rank := uint64(math.Ceil(p * float64(q.n)))
	if rank > q.n {
		rank = q.n
	}
	var cum uint64
	for i, c := range q.counts {
		cum += c
		if cum >= rank {
			if i == len(q.counts)-1 {
				// The dedicated overflow bucket holds only beyond-grid
				// samples, so its only honest edge is the exact max;
				// in-range buckets (including the top one) never trigger
				// this rule.
				return q.max
			}
			edge := q.lo * math.Pow(q.g, float64(i+1))
			if edge > q.max {
				edge = q.max
			}
			if edge < q.min {
				edge = q.min
			}
			return edge
		}
	}
	return q.max
}

// Merge folds another sketch's observations into q. Both sketches must
// share the same shape (the constructor arguments); merging is
// commutative and associative, so any merge order yields identical
// percentiles.
func (q *QuantileSketch) Merge(o *QuantileSketch) {
	if len(q.counts) != len(o.counts) || q.lo != o.lo || q.g != o.g {
		panic("stats: merging quantile sketches of different shapes")
	}
	for i, c := range o.counts {
		q.counts[i] += c
	}
	q.n += o.n
	if o.n > 0 {
		if o.min < q.min {
			q.min = o.min
		}
		if o.max > q.max {
			q.max = o.max
		}
	}
}
