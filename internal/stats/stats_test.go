package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.P99 != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(xs, 0) != 10 || Percentile(xs, 1) != 40 {
		t.Error("extremes wrong")
	}
	if got := Percentile(xs, 0.5); got != 25 {
		t.Errorf("P50 = %v, want 25 (interpolated)", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

// Property: Min <= P50 <= Max and Mean within [Min, Max].
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 3, 9, -2, 15} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	// -2 clamps to bin 0, 15 clamps to bin 4.
	if h.Counts[0] != 3 { // 0.5, 1, -2
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 { // 3, 3
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 2 { // 9, 15
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.BinCenter(0) != 1 {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramModes(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	// Two clusters: around 2 and around 7.
	for i := 0; i < 30; i++ {
		h.Add(2.1)
	}
	for i := 0; i < 20; i++ {
		h.Add(7.3)
	}
	modes := h.Modes(5)
	if len(modes) != 2 {
		t.Fatalf("modes = %v, want 2", modes)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSeriesTable(t *testing.T) {
	a := &Series{Label: "a"}
	b := &Series{Label: "b"}
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 100)
	out := Table("x", a, b)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.Contains(lines[2], "-") {
		t.Errorf("short series should render '-':\n%s", out)
	}
}

func TestHistogramBars(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	out := h.Bars("s")
	if !strings.Contains(out, "█") {
		t.Errorf("bars missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("want 2 lines:\n%s", out)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2})
	if !strings.Contains(s.String(), "n=2") {
		t.Errorf("String = %q", s.String())
	}
}
