package congestion

import (
	"fmt"
	"testing"

	"odpsim/internal/sim"
)

func TestChainTopologyShape(t *testing.T) {
	topo := ChainTopology(3, 4)
	if topo.SwitchCount() != 3 || topo.LinkCount() != 4 {
		t.Fatalf("chain(3): %d switches, %d links, want 3, 4", topo.SwitchCount(), topo.LinkCount())
	}
	if len(topo.Leaves) != 3 {
		t.Fatalf("chain leaves = %v, want every switch", topo.Leaves)
	}
	// Adjacency order is left-then-right: the port creation order the
	// old chain builder used, load-bearing for golden compatibility.
	if got := topo.Adj[1]; got[0].To != 0 || got[1].To != 2 {
		t.Fatalf("middle switch adjacency = %+v, want [left right]", got)
	}
	if topo.Adj[0][0].SpeedDiv != 4 {
		t.Fatalf("core SpeedDiv = %v, want the uplink factor", topo.Adj[0][0].SpeedDiv)
	}
	if topo.TierName(0) != "core" {
		t.Fatalf("chain tier = %q, want core", topo.TierName(0))
	}
}

func TestClosTopologyShape(t *testing.T) {
	ls := ClosTopology(2, 4, 4)
	if ls.SwitchCount() != 6 || ls.LinkCount() != 16 || len(ls.Leaves) != 4 {
		t.Fatalf("leaf-spine(r4): %d switches, %d links, %d leaves, want 6, 16, 4",
			ls.SwitchCount(), ls.LinkCount(), len(ls.Leaves))
	}
	if ls.TierName(0) != "leaf" || ls.TierName(4) != "spine" {
		t.Fatalf("tiers = %q, %q, want leaf, spine", ls.TierName(0), ls.TierName(4))
	}

	ft := ClosTopology(3, 4, 1)
	// k=4 fat-tree: 4 pods x (2 edge + 2 agg) + 4 cores = 20 switches;
	// 16 edge-agg + 16 agg-core undirected links = 64 directed.
	if ft.SwitchCount() != 20 || ft.LinkCount() != 64 || len(ft.Leaves) != 8 {
		t.Fatalf("fat-tree(k4): %d switches, %d links, %d leaves, want 20, 64, 8",
			ft.SwitchCount(), ft.LinkCount(), len(ft.Leaves))
	}
	if ft.TierName(0) != "edge" || ft.TierName(8) != "agg" || ft.TierName(16) != "core" {
		t.Fatalf("fat-tree tiers = %q, %q, %q", ft.TierName(0), ft.TierName(8), ft.TierName(16))
	}
}

func closConfig() Config {
	cfg := DefaultConfig()
	cfg.Topology = ClosTopology(2, 4, 4)
	return cfg
}

func TestClosDeliveryAllPairs(t *testing.T) {
	h := newHarness(t, closConfig())
	sent := 0
	for src := uint16(1); src <= 8; src++ {
		for dst := uint16(1); dst <= 8; dst++ {
			if src != dst {
				h.send(src, dst, 64)
				sent++
			}
		}
	}
	h.eng.MustRun()
	if len(h.delivered) != sent {
		t.Fatalf("delivered %d of %d packets", len(h.delivered), sent)
	}
	if len(h.drops) != 0 {
		t.Fatalf("unexpected drops: %v", h.drops)
	}
	if h.net.QueuedBytes() != 0 {
		t.Fatalf("buffer not drained: %d bytes", h.net.QueuedBytes())
	}
}

func TestFatTreeDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = ClosTopology(3, 4, 1)
	h := newHarness(t, cfg)
	// LIDs 1 and 6 land on edge switches in different pods (8 leaves,
	// round-robin), so the packet climbs edge → agg → core and back down.
	h.send(1, 6, 64)
	h.eng.MustRun()
	if len(h.delivered) != 1 || h.delivered[0] != 6 {
		t.Fatalf("delivered = %v, want [6]", h.delivered)
	}
}

// pathPicks records the uplink each cross-leaf flow takes at its source
// leaf switch.
func pathPicks(n *Network) map[[2]uint16]string {
	picks := make(map[[2]uint16]string)
	for src := uint16(1); src <= 8; src++ {
		for dst := uint16(1); dst <= 8; dst++ {
			if src == dst || n.switchOf(src) == n.switchOf(dst) {
				continue
			}
			sw := n.switches[n.switchOf(src)]
			picks[[2]uint16{src, dst}] = sw.route(src, dst).name
		}
	}
	return picks
}

// TestECMPDeterministicAcrossRebuilds pins the seeded-hash contract:
// rebuilding the network on a Reset engine with the same seed reproduces
// the exact path assignment, and a different seed reshuffles it.
func TestECMPDeterministicAcrossRebuilds(t *testing.T) {
	eng := sim.New(1)
	first := pathPicks(NewNetwork(eng, closConfig(), 56, 2*sim.Microsecond, Hooks{}))

	eng.Reset(1)
	same := pathPicks(NewNetwork(eng, closConfig(), 56, 2*sim.Microsecond, Hooks{}))
	for pair, want := range first {
		if same[pair] != want {
			t.Fatalf("pair %v rerouted across identical-seed rebuild: %q -> %q", pair, want, same[pair])
		}
	}

	eng.Reset(2)
	other := pathPicks(NewNetwork(eng, closConfig(), 56, 2*sim.Microsecond, Hooks{}))
	differs := false
	for pair, want := range first {
		if other[pair] != want {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("seed 2 produced the identical path assignment as seed 1 (48 pairs, 2 spines)")
	}
}

// TestECMPSpreadsAcrossSpines asserts ECMP actually uses the path
// diversity: the 48 cross-leaf flows must not all hash onto one spine.
func TestECMPSpreadsAcrossSpines(t *testing.T) {
	eng := sim.New(1)
	picks := pathPicks(NewNetwork(eng, closConfig(), 56, 2*sim.Microsecond, Hooks{}))
	used := make(map[string]bool)
	for _, port := range picks {
		used[port] = true
	}
	if len(used) < 3 {
		t.Fatalf("flows used only %d distinct uplinks: %v", len(used), used)
	}
}

func TestTierStatsAndLabels(t *testing.T) {
	cfg := closConfig()
	cfg.PFC = true
	cfg.XOffBytes = 1 << 10
	cfg.XOnBytes = 512
	h := newHarness(t, cfg)
	// Incast: every other host floods LID 1, converging on its leaf.
	for i := 0; i < 16; i++ {
		for src := uint16(2); src <= 8; src++ {
			h.send(src, 1, 512)
		}
	}
	h.eng.MustRun()

	stats := h.net.TierStats()
	if len(stats) != 2 || stats[0].Tier != "leaf" || stats[1].Tier != "spine" {
		t.Fatalf("tier stats = %+v, want leaf and spine rows", stats)
	}
	if stats[0].Switches != 4 || stats[1].Switches != 2 {
		t.Fatalf("tier switch counts = %d, %d, want 4, 2", stats[0].Switches, stats[1].Switches)
	}
	if stats[1].PauseFrames == 0 || stats[1].PeakBytes == 0 {
		t.Fatalf("incast left the spine tier idle: %+v", stats[1])
	}
	var drops, pauses uint64
	for _, sw := range h.net.switches {
		drops += sw.Drops
		pauses += sw.PauseFrames
	}
	if got := stats[0].Drops + stats[1].Drops; got != drops {
		t.Fatalf("tier drops sum %d, switches say %d", got, drops)
	}
	if got := stats[0].PauseFrames + stats[1].PauseFrames; got != pauses {
		t.Fatalf("tier pause sum %d, switches say %d", got, pauses)
	}

	if got := h.net.switches[0].labels["tier"]; got != "leaf" {
		t.Fatalf(`leaf label = %q, want "leaf"`, got)
	}
	if got := h.net.switches[4].labels["tier"]; got != "spine" {
		t.Fatalf(`spine label = %q, want "spine"`, got)
	}
}

// TestTierLabelFollowsRecycledSwitch pins the arena subtlety: a switch
// struct recycled from a chain trial into a Clos trial must swap its
// "tier" label even though its position (and name) did not change.
func TestTierLabelFollowsRecycledSwitch(t *testing.T) {
	eng := sim.New(1)
	n := NewNetwork(eng, DefaultConfig(), 56, 2*sim.Microsecond, Hooks{})
	if got := n.switches[0].labels["tier"]; got != "core" {
		t.Fatalf(`chain tier label = %q, want "core"`, got)
	}
	sw0 := n.switches[0]
	eng.Reset(1)
	n = NewNetwork(eng, closConfig(), 56, 2*sim.Microsecond, Hooks{})
	if n.switches[0] != sw0 {
		t.Fatal("switch arena did not recycle position 0")
	}
	if got := sw0.labels["tier"]; got != "leaf" {
		t.Fatalf(`recycled tier label = %q, want "leaf"`, got)
	}
}

// TestPreallocScalesWithLinks sanity-checks the satellite fix: event
// prealloc derives from the graph's link count, so a high-radix tree
// reserves more than a two-switch chain.
func TestPreallocScalesWithLinks(t *testing.T) {
	for _, tc := range []struct {
		topo  Topology
		floor int
	}{
		{ChainTopology(2, 4), 8 * (2 + 2*2)},
		{ClosTopology(3, 4, 1), 8 * (64 + 2*8)},
	} {
		eng := sim.New(1)
		cfg := DefaultConfig()
		cfg.Topology = tc.topo
		NewNetwork(eng, cfg, 56, 2*sim.Microsecond, Hooks{})
		if got := eng.EventCapacity(); got < tc.floor {
			t.Errorf("%s: event capacity %d, want >= %d", tc.topo.Kind, got, tc.floor)
		}
	}
}

// Route tables must route every pair on every builder output.
func TestRoutingCompleteOnAllBuilders(t *testing.T) {
	for _, topo := range []Topology{
		ChainTopology(1, 1), ChainTopology(5, 2),
		ClosTopology(2, 2, 1), ClosTopology(2, 8, 4), ClosTopology(3, 4, 2),
	} {
		topo := topo
		t.Run(fmt.Sprintf("%s-%dt-%dsw", topo.Kind, topo.Tiers, topo.SwitchCount()), func(t *testing.T) {
			eng := sim.New(1)
			cfg := DefaultConfig()
			cfg.Topology = topo
			n := NewNetwork(eng, cfg, 56, 2*sim.Microsecond, Hooks{})
			for si, sw := range n.switches {
				for ti := range n.switches {
					if ti == si {
						continue
					}
					hops := sw.hopPorts[sw.hopOff[ti]:sw.hopOff[ti+1]]
					if len(hops) == 0 {
						t.Fatalf("switch %d has no hops toward %d", si, ti)
					}
				}
			}
		})
	}
}

// TestPodTopologyShape checks the per-shard fat-tree cell: k/2 edges
// fully meshed to k/2 aggs, hosts on the edges, clamping like the other
// builders.
func TestPodTopologyShape(t *testing.T) {
	pod := PodTopology(8, 2)
	// 4 edges + 4 aggs, full bipartite mesh = 16 undirected = 32 directed.
	if pod.SwitchCount() != 8 || pod.LinkCount() != 32 || len(pod.Leaves) != 4 {
		t.Fatalf("pod(r8): %d switches, %d links, %d leaves, want 8, 32, 4",
			pod.SwitchCount(), pod.LinkCount(), len(pod.Leaves))
	}
	if pod.TierName(0) != "edge" || pod.TierName(4) != "agg" {
		t.Fatalf("pod tiers = %q, %q, want edge, agg", pod.TierName(0), pod.TierName(4))
	}
	if pod.Kind != "pod" || pod.Tiers != 2 || pod.Oversub != 2 {
		t.Fatalf("pod metadata = %q/%d/%g", pod.Kind, pod.Tiers, pod.Oversub)
	}
	// Clamps mirror ClosTopology: odd radix rounds up, oversub floors at 1.
	clamped := PodTopology(3, 0.5)
	if clamped.Radix != 4 || clamped.Oversub != 1 {
		t.Fatalf("clamped pod = radix %d oversub %g, want 4, 1", clamped.Radix, clamped.Oversub)
	}
}

// TestPodDeliveryAllPairs runs the all-pairs exchange on a pod cell:
// every cross-edge flow must climb to an agg and come back down.
func TestPodDeliveryAllPairs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = PodTopology(8, 2)
	h := newHarness(t, cfg)
	sent := 0
	for src := uint16(1); src <= 8; src++ {
		for dst := uint16(1); dst <= 8; dst++ {
			if src != dst {
				h.send(src, dst, 64)
				sent++
			}
		}
	}
	h.eng.MustRun()
	if len(h.delivered) != sent {
		t.Fatalf("delivered %d of %d packets", len(h.delivered), sent)
	}
	if h.net.QueuedBytes() != 0 {
		t.Fatalf("buffer not drained: %d bytes", h.net.QueuedBytes())
	}
}
