package congestion

import (
	"testing"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// testHarness wires a Network to recording hooks.
type testHarness struct {
	eng   *sim.Engine
	net   *Network
	delay map[*packet.Packet]sim.Time

	delivered []uint16 // dst of each delivery, in order
	pkts      []*packet.Packet
	drops     []string // reason of each drop
	pauses    []bool   // xoff flag of each pause frame
}

func newHarness(t *testing.T, cfg Config) *testHarness {
	t.Helper()
	h := &testHarness{eng: sim.New(1), delay: make(map[*packet.Packet]sim.Time)}
	h.net = NewNetwork(h.eng, cfg, 56, 2*sim.Microsecond, Hooks{
		Deliver: func(dst uint16, pkt *packet.Packet, ws int) {
			h.delivered = append(h.delivered, dst)
			h.pkts = append(h.pkts, pkt)
			h.delay[pkt] = h.eng.Now()
		},
		Drop: func(src uint16, pkt *packet.Packet, reason string) {
			h.drops = append(h.drops, reason)
		},
		Pause: func(from, to string, xoff bool) {
			h.pauses = append(h.pauses, xoff)
		},
	})
	return h
}

func (h *testHarness) send(src, dst uint16, payload int) *packet.Packet {
	pkt := &packet.Packet{SLID: src, DLID: dst, Opcode: packet.OpWriteOnly, PayloadLen: payload}
	h.net.Send(src, dst, pkt, pkt.WireSize())
	return pkt
}

func TestDeliveryAcrossSwitchChain(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	// LIDs 1 and 2 sit on different switches (round-robin attach), so the
	// packet crosses the oversubscribed inter-switch link.
	h.send(1, 2, 64)
	h.eng.MustRun()
	if len(h.delivered) != 1 || h.delivered[0] != 2 {
		t.Fatalf("delivered = %v, want [2]", h.delivered)
	}
	if len(h.drops) != 0 {
		t.Fatalf("unexpected drops: %v", h.drops)
	}
	// Three serializations + two propagation hops is a hard lower bound.
	if got := h.delay[h.pkts[0]]; got <= 4*sim.Microsecond {
		t.Fatalf("delivery at %v, want > 2 propagation hops", got)
	}
	if h.net.QueuedBytes() != 0 {
		t.Fatalf("buffer not drained: %d bytes", h.net.QueuedBytes())
	}
}

func TestSameSwitchDelivery(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	// LIDs 1 and 3 both attach to sw0; nothing crosses the core.
	h.send(1, 3, 64)
	h.eng.MustRun()
	if len(h.delivered) != 1 || h.delivered[0] != 3 {
		t.Fatalf("delivered = %v, want [3]", h.delivered)
	}
}

func TestFIFOWithinFlow(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	first := h.send(1, 2, 256)
	second := h.send(1, 2, 0)
	h.eng.MustRun()
	if len(h.pkts) != 2 || h.pkts[0] != first || h.pkts[1] != second {
		t.Fatalf("delivery order broken: %v", h.delivered)
	}
}

func TestBufferOverflowTailDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferBytes = 512
	cfg.ECN = false
	h := newHarness(t, cfg)
	// A burst far larger than the shared buffer, funneled onto the slow
	// inter-switch link, must overflow sw0.
	for i := 0; i < 64; i++ {
		h.send(1, 2, 128)
	}
	h.eng.MustRun()
	if len(h.drops) == 0 {
		t.Fatal("expected tail drops on buffer overflow")
	}
	for _, r := range h.drops {
		if r != "switch buffer overflow" {
			t.Fatalf("drop reason = %q", r)
		}
	}
	if got := int(h.net.switches[0].Drops); got != len(h.drops) {
		t.Fatalf("switch drop counter = %d, hook saw %d", got, len(h.drops))
	}
	if len(h.delivered)+len(h.drops) != 64 {
		t.Fatalf("conservation: %d delivered + %d dropped != 64", len(h.delivered), len(h.drops))
	}
}

func TestPFCMakesFabricLossless(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferBytes = 2048
	cfg.PFC = true
	cfg.XOffBytes = 1024
	cfg.XOnBytes = 256
	cfg.ECN = false
	h := newHarness(t, cfg)
	for i := 0; i < 64; i++ {
		h.send(1, 2, 128)
	}
	h.eng.MustRun()
	if len(h.drops) != 0 {
		t.Fatalf("PFC fabric dropped %d packets: %v", len(h.drops), h.drops[0])
	}
	if len(h.delivered) != 64 {
		t.Fatalf("delivered %d of 64", len(h.delivered))
	}
	var xoff, xon int
	for _, x := range h.pauses {
		if x {
			xoff++
		} else {
			xon++
		}
	}
	if xoff == 0 || xoff != xon {
		t.Fatalf("pause frames xoff=%d xon=%d, want matched non-zero pairs", xoff, xon)
	}
	if h.net.PauseDurationMicros() <= 0 {
		t.Fatal("no pause duration accumulated")
	}
	var frames uint64
	for _, sw := range h.net.switches {
		frames += sw.PauseFrames
	}
	if int(frames) != xoff+xon {
		t.Fatalf("switch pause-frame counters = %d, hook saw %d", frames, xoff+xon)
	}
}

func TestECNMarksAboveThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ECN = true
	cfg.ECNThresholdBytes = 256
	h := newHarness(t, cfg)
	for i := 0; i < 32; i++ {
		h.send(1, 2, 128)
	}
	h.eng.MustRun()
	marked := 0
	for _, p := range h.pkts {
		if p.ECN {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no packets ECN-marked under backlog")
	}
	if marked == len(h.pkts) {
		t.Fatal("every packet marked — threshold not applied to the early ones")
	}
	if got := int(h.net.switches[0].EcnMarked + h.net.switches[1].EcnMarked); got != marked {
		t.Fatalf("switch ECN counters = %d, delivered marks = %d", got, marked)
	}
}

func TestCNPOvertakesPausedData(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFC = true
	cfg.BufferBytes = 2048
	cfg.XOffBytes = 1024
	cfg.XOnBytes = 256
	h := newHarness(t, cfg)
	for i := 0; i < 32; i++ {
		h.send(1, 2, 256)
	}
	cnp := &packet.Packet{SLID: 1, DLID: 2, Opcode: packet.OpCNP}
	h.net.Send(1, 2, cnp, cnp.WireSize())
	h.eng.MustRun()
	pos := -1
	for i, p := range h.pkts {
		if p == cnp {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("CNP not delivered")
	}
	// The CNP entered last but rides the never-paused priority VL, so it
	// must overtake most of the queued data.
	if pos > 4 {
		t.Fatalf("CNP delivered at position %d of %d — control lane not prioritized", pos, len(h.pkts))
	}
}

func TestSwitchQueueGauges(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	for i := 0; i < 16; i++ {
		h.send(1, 2, 256)
	}
	h.eng.MustRun()
	snap := h.net.Telemetry().Snapshot(h.eng.Now())
	if v := snap.Total("sim_switch_queue_peak_bytes"); v <= 0 {
		t.Fatalf("queue peak gauge = %v, want > 0", v)
	}
	if v := snap.Total("sim_switch_queue_bytes"); v != 0 {
		t.Fatalf("drained fabric still gauges %v queued bytes", v)
	}
}

func TestDCQCNCutAndRecovery(t *testing.T) {
	eng := sim.New(1)
	rs := NewRateState(eng, DCQCNConfig{Enabled: true}, 56)
	if rs.Limited() {
		t.Fatal("fresh rate state must start at line rate")
	}
	rs.HandleCNP()
	cut := rs.CurrentGbps()
	if cut >= 56 {
		t.Fatalf("CNP did not cut the rate: %v", cut)
	}
	// alpha starts at g=1/16, so the first cut is rc*(1-1/32).
	want := 56 * (1 - 1.0/32)
	if diff := cut - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("first cut = %v, want %v", cut, want)
	}
	rs.HandleCNP()
	if rs.CurrentGbps() >= cut {
		t.Fatal("second CNP did not cut further")
	}
	// With no further CNPs the timers must recover the rate to line and
	// then disarm, so the engine drains on its own.
	eng.MustRun()
	if rs.Limited() {
		t.Fatalf("rate never recovered: %v Gb/s", rs.CurrentGbps())
	}
	if rs.Cuts != 2 {
		t.Fatalf("Cuts = %d, want 2", rs.Cuts)
	}
}

func TestDCQCNReservePacing(t *testing.T) {
	eng := sim.New(1)
	rs := NewRateState(eng, DCQCNConfig{Enabled: true}, 56)

	// At line rate Reserve is the identity: the wire is the only limit.
	if got, ok := rs.Reserve(100, 1024); !ok || got != 100 {
		t.Fatalf("line-rate Reserve = %v/%v, want 100", got, ok)
	}

	rs.HandleCNP()
	rate := rs.CurrentGbps()
	first, ok1 := rs.Reserve(100, 1024)
	second, ok2 := rs.Reserve(100, 1024)
	if !ok1 || !ok2 {
		t.Fatal("limited Reserve refused inside the backlog bound")
	}
	if first != 100 {
		t.Fatalf("first limited Reserve = %v, want immediate start", first)
	}
	gap := second - first
	want := sim.Time(float64(1024*8) / rate)
	if gap != want {
		t.Fatalf("pacing gap = %v, want %v at %v Gb/s", gap, want, rate)
	}
	eng.MustRun()
}

func TestDCQCNBacklogSheds(t *testing.T) {
	eng := sim.New(1)
	rs := NewRateState(eng, DCQCNConfig{Enabled: true}, 56)
	for i := 0; i < 60; i++ {
		rs.HandleCNP() // drive the rate toward the floor
	}
	granted := 0
	for i := 0; i < 10000; i++ {
		if _, ok := rs.Reserve(0, 1024); ok {
			granted++
		}
	}
	if rs.Shed == 0 {
		t.Fatal("burst far beyond the backlog bound never shed")
	}
	if granted == 0 {
		t.Fatal("everything shed — backlog bound too tight")
	}
	if uint64(10000-granted) != rs.Shed {
		t.Fatalf("granted %d + shed %d != 10000", granted, rs.Shed)
	}
	eng.MustRun()
}

func TestDCQCNMinRateFloor(t *testing.T) {
	eng := sim.New(1)
	rs := NewRateState(eng, DCQCNConfig{Enabled: true}, 56)
	for i := 0; i < 200; i++ {
		rs.HandleCNP()
	}
	if rs.CurrentGbps() < 0.1 {
		t.Fatalf("rate fell through the floor: %v", rs.CurrentGbps())
	}
	eng.MustRun()
}

func TestXOffBelowXOnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for XOff <= XOn")
		}
	}()
	cfg := DefaultConfig()
	cfg.PFC = true
	cfg.XOffBytes = 256
	cfg.XOnBytes = 1024
	NewNetwork(sim.New(1), cfg, 56, sim.Microsecond, Hooks{})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, uint64, uint64) {
		cfg := DefaultConfig()
		cfg.PFC = true
		cfg.ECN = true
		h := newHarness(t, cfg)
		for i := 0; i < 48; i++ {
			h.send(1, 2, 128)
			h.send(2, 1, 96)
		}
		h.eng.MustRun()
		return len(h.delivered), h.net.switches[0].EcnMarked, h.net.switches[0].PauseFrames
	}
	d1, e1, p1 := run()
	d2, e2, p2 := run()
	if d1 != d2 || e1 != e2 || p1 != p2 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", d1, e1, p1, d2, e2, p2)
	}
}
