package congestion

import (
	"fmt"
	"strconv"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// Hooks is how the network talks back to the fabric that owns it. The
// congestion package deliberately does not import internal/fabric: the
// fabric plugs itself in through these callbacks, keeping the dependency
// arrow pointing one way (fabric → congestion).
type Hooks struct {
	// Deliver is called at the instant the packet finishes clocking out
	// of the last switch toward the destination host. The fabric adds
	// its jittered propagation delay, enforces per-pair FIFO and
	// schedules the final handler call (which also returns the packet
	// to the pool).
	Deliver func(dst uint16, pkt *packet.Packet, ws int)
	// Drop is called when a switch tail-drops the packet on buffer
	// overflow. The fabric counts it, emits the drop tap and reclaims
	// the packet.
	Drop func(src uint16, pkt *packet.Packet, reason string)
	// Pause is called for every PFC pause/resume frame so the fabric
	// can surface it to taps (captures show pause frames the way a port
	// mirror would).
	Pause func(from, to string, xoff bool)
}

// entry is one packet queued or in flight inside the switched network.
// Entries are recycled through the network's free list.
type entry struct {
	pkt *packet.Packet
	ws  int
	src uint16
	dst uint16
	vl  int
	// via is the egress port the entry last left (set while the entry
	// is on a wire); buf/acct locate the entry's switch-buffer and
	// PFC ingress accounting while it is buffered in a switch.
	via  *port
	buf  *swtch
	acct *port
	// arriveFn caches the arrive method value so per-hop scheduling
	// does not allocate a closure.
	arriveFn func()
}

func (e *entry) arrive() { e.via.arrived(e) }

// port is one egress queue clocking packets onto one link: a host's
// uplink into its edge switch, a switch-to-switch link, or a switch's
// downlink to a host. VL1 (CNPs) is strictly prioritized over VL0 and
// is never paused.
type port struct {
	n    *Network
	name string
	gbps float64
	prop sim.Time

	q      [numVLs][]*entry
	qbytes [numVLs]int

	// pausedData suspends VL0 service (set by the downstream switch's
	// PFC state machine). pauseStart times the current pause for the
	// tx_pause_duration accounting. acctBytes is the downstream switch's
	// per-ingress-neighbour byte count for this link — the quantity the
	// XOFF/XON thresholds compare against.
	pausedData bool
	pauseStart sim.Time
	acctBytes  int

	busy   bool
	cur    *entry
	doneFn func()

	// dstSwitch is the far end for switch-bound links; nil means the
	// far end is a host and the entry leaves the network on arrival.
	dstSwitch *swtch
}

// enqueue appends an entry and starts the transmitter if idle. ECN
// marking happens at switch-buffer admission (see swtch.admit); the
// queue itself is policy-free.
func (p *port) enqueue(e *entry) {
	p.q[e.vl] = append(p.q[e.vl], e)
	p.qbytes[e.vl] += e.ws
	p.pump()
}

// pop takes the next serviceable entry: control VL first, data VL only
// when not paused.
func (p *port) pop() *entry {
	for vl := numVLs - 1; vl >= 0; vl-- {
		if vl == VLData && p.pausedData {
			continue
		}
		if len(p.q[vl]) == 0 {
			continue
		}
		e := p.q[vl][0]
		p.q[vl][0] = nil
		p.q[vl] = p.q[vl][1:]
		p.qbytes[vl] -= e.ws
		return e
	}
	return nil
}

// pump starts serializing the next queued entry if the wire is free.
func (p *port) pump() {
	if p.busy {
		return
	}
	e := p.pop()
	if e == nil {
		return
	}
	p.busy = true
	p.cur = e
	p.n.eng.After(serTime(e.ws, p.gbps), p.doneFn)
}

// txDone fires when the current entry has fully clocked onto the link:
// the entry leaves the switch buffer it was draining (store-and-forward)
// and is admitted to the next switch's buffer before it flies — the
// commitment point is the packet boundary, which is what lets PFC keep
// the fabric lossless: once XOFF lands, nothing further is charged, so
// an admitted packet always fits. The wire then frees up for the next
// entry and the packet arrives after the link's propagation delay.
func (p *port) txDone() {
	e := p.cur
	p.cur = nil
	p.busy = false
	if e.buf != nil {
		e.buf.release(e)
	}
	if p.dstSwitch != nil && e.vl == VLData && !p.dstSwitch.admit(e, p) {
		p.pump()
		return
	}
	e.via = p
	if p.prop > 0 {
		p.n.eng.After(p.prop, e.arriveFn)
	} else {
		e.arrive()
	}
	p.pump()
}

// arrived lands the entry at this port's far end.
func (p *port) arrived(e *entry) {
	if p.dstSwitch != nil {
		p.dstSwitch.forward(e)
		return
	}
	// Final hop: hand the packet back to the fabric for delivery.
	n := p.n
	n.hooks.Deliver(e.dst, e.pkt, e.ws)
	n.putEntry(e)
}

// swtch is one switch: a shared packet buffer, per-egress VL queues and
// the PFC pause state machine for each of its ingress links.
type swtch struct {
	n    *Network
	idx  int
	name string

	bytes uint64 // shared-buffer occupancy (data VL)
	peak  uint64

	toHost map[uint16]*port
	left   *port // toward switch idx-1
	right  *port // toward switch idx+1

	Drops       uint64
	EcnMarked   uint64
	PauseFrames uint64
}

// admit reserves shared-buffer space for a data entry that just left
// the upstream port toward this switch (tail drop on overflow) and runs
// the PFC XOFF check against the upstream link's accounted bytes.
// Control frames never pass through here — they ride reserved headroom
// and are never dropped or paused.
func (sw *swtch) admit(e *entry, from *port) bool {
	n := sw.n
	if int(sw.bytes)+e.ws > n.cfg.BufferBytes {
		sw.Drops++
		n.hooks.Drop(e.src, e.pkt, "switch buffer overflow")
		n.putEntry(e)
		return false
	}
	sw.bytes += uint64(e.ws)
	if sw.bytes > sw.peak {
		sw.peak = sw.bytes
	}
	// ECN marks against the shared-buffer occupancy at admission, not
	// the egress queue: admission is where congestion is first visible,
	// and a threshold below XOFF must fire before PFC throttles the
	// flow (an egress-queue check would lag one propagation flight and
	// lose that race).
	if n.cfg.ECN && !e.pkt.ECN && int(sw.bytes) >= n.cfg.ECNThresholdBytes {
		e.pkt.ECN = true
		sw.EcnMarked++
	}
	e.buf = sw
	e.acct = from
	from.acctBytes += e.ws
	if n.cfg.PFC && !from.pausedData && from.acctBytes >= n.cfg.XOffBytes {
		sw.setPause(from, true)
	}
	return true
}

// forward queues the entry on the egress toward its destination. ECN
// marking happened at admission (see admit).
func (sw *swtch) forward(e *entry) {
	sw.route(e.dst).enqueue(e)
}

// release returns the entry's bytes to the shared buffer and the PFC
// ingress accounting, resuming the upstream link once its backlog has
// drained below XON.
func (sw *swtch) release(e *entry) {
	sw.bytes -= uint64(e.ws)
	up := e.acct
	e.buf, e.acct = nil, nil
	up.acctBytes -= e.ws
	if sw.n.cfg.PFC && up.pausedData && up.acctBytes <= sw.n.cfg.XOnBytes {
		sw.setPause(up, false)
	}
}

// setPause sends a PFC pause (xoff) or resume frame to the upstream
// link's transmitter and applies it. Pause frames are link-local and
// effectively instantaneous at simulation scale.
func (sw *swtch) setPause(up *port, xoff bool) {
	n := sw.n
	sw.PauseFrames++
	if xoff {
		up.pausedData = true
		up.pauseStart = n.eng.Now()
	} else {
		up.pausedData = false
		n.pausedNs += uint64(n.eng.Now() - up.pauseStart)
	}
	if n.hooks.Pause != nil {
		n.hooks.Pause(sw.name, up.name, xoff)
	}
	if !xoff {
		up.pump()
	}
}

// route picks the egress port toward the destination host.
func (sw *swtch) route(dst uint16) *port {
	t := sw.n.switchOf(dst)
	if t == sw.idx {
		return sw.hostPort(dst)
	}
	if t < sw.idx {
		return sw.left
	}
	return sw.right
}

// hostPort lazily creates the downlink to an attached host.
func (sw *swtch) hostPort(dst uint16) *port {
	p := sw.toHost[dst]
	if p == nil {
		p = sw.n.newPort(fmt.Sprintf("%s-host%d", sw.name, dst), sw.n.edgeGbps, 0, nil)
		sw.toHost[dst] = p
	}
	return p
}

// Network is the switched fabric core: the linear switch chain plus one
// uplink queue per attached host (the host-side port PFC pauses).
type Network struct {
	eng   *sim.Engine
	cfg   Config
	hooks Hooks

	edgeGbps float64  // host links
	coreGbps float64  // inter-switch links
	prop     sim.Time // per-hop propagation

	switches []*swtch
	uplinks  []*port // indexed by LID

	free []*entry

	tel *telemetry.Registry
	// pausedNs accumulates completed pause intervals across every link
	// (exported as tx_pause_duration, in µs, mlx5-style).
	pausedNs uint64
}

// serTime is the serialization delay of wireBytes at gbps.
func serTime(wireBytes int, gbps float64) sim.Time {
	return sim.Time(float64(wireBytes*8) / gbps)
}

// NewNetwork builds the switch topology on eng. linkGbps and propDelay
// mirror the owning fabric's link model; hooks connect delivery, drops
// and pause-frame visibility back to it.
func NewNetwork(eng *sim.Engine, cfg Config, linkGbps float64, propDelay sim.Time, hooks Hooks) *Network {
	cfg = cfg.withDefaults()
	if cfg.PFC && cfg.XOffBytes <= cfg.XOnBytes {
		panic("congestion: XOffBytes must be greater than XOnBytes")
	}
	n := &Network{
		eng:      eng,
		cfg:      cfg,
		hooks:    hooks,
		edgeGbps: linkGbps,
		coreGbps: linkGbps / cfg.UplinkFactor,
		prop:     propDelay,
		tel:      telemetry.NewRegistryOn(eng, "congestion", telemetry.Labels{"device": "congestion"}),
	}
	n.switches = make([]*swtch, cfg.Switches)
	for i := range n.switches {
		sw := &swtch{n: n, idx: i, name: "sw" + strconv.Itoa(i), toHost: make(map[uint16]*port)}
		n.switches[i] = sw
	}
	for i, sw := range n.switches {
		if i > 0 {
			sw.left = n.newPort(fmt.Sprintf("%s-sw%d", sw.name, i-1), n.coreGbps, n.prop, n.switches[i-1])
		}
		if i < len(n.switches)-1 {
			sw.right = n.newPort(fmt.Sprintf("%s-sw%d", sw.name, i+1), n.coreGbps, n.prop, n.switches[i+1])
		}
	}
	n.registerMetrics()
	return n
}

// Config returns the resolved configuration (defaults filled in).
func (n *Network) Config() Config { return n.cfg }

// Telemetry returns the network's counter registry.
func (n *Network) Telemetry() *telemetry.Registry { return n.tel }

// PauseDurationMicros returns the accumulated pause time across every
// link, in microseconds (completed pauses only; a drained simulation has
// none outstanding).
func (n *Network) PauseDurationMicros() float64 { return float64(n.pausedNs) / 1e3 }

func (n *Network) registerMetrics() {
	n.tel.Gauge(telemetry.TxPauseDuration, "accumulated PFC pause time across all links [µs]", nil,
		n.PauseDurationMicros)
	for _, sw := range n.switches {
		sw := sw
		l := telemetry.Labels{"switch": sw.name}
		n.tel.Counter(telemetry.SimSwitchDrops, "packets tail-dropped on shared-buffer overflow", l, &sw.Drops)
		n.tel.Counter(telemetry.SimSwitchEcnMarked, "packets ECN-marked at egress", l, &sw.EcnMarked)
		n.tel.Counter(telemetry.SimSwitchPauseFrames, "PFC pause/resume frames sent", l, &sw.PauseFrames)
		n.tel.Gauge(telemetry.SimSwitchQueueBytes, "shared-buffer occupancy [bytes]", l,
			func() float64 { return float64(sw.bytes) })
		n.tel.Gauge(telemetry.SimSwitchQueuePeak, "shared-buffer high-water mark [bytes]", l,
			func() float64 { return float64(sw.peak) })
	}
}

// switchOf maps a host LID onto its edge switch (round-robin).
func (n *Network) switchOf(lid uint16) int {
	if lid == 0 {
		return 0
	}
	return int(lid-1) % len(n.switches)
}

func (n *Network) newPort(name string, gbps float64, prop sim.Time, dst *swtch) *port {
	p := &port{n: n, name: name, gbps: gbps, prop: prop, dstSwitch: dst}
	p.doneFn = p.txDone
	return p
}

// uplink lazily creates the host's egress queue into its edge switch.
func (n *Network) uplink(src uint16) *port {
	for int(src) >= len(n.uplinks) {
		n.uplinks = append(n.uplinks, nil)
	}
	p := n.uplinks[src]
	if p == nil {
		sw := n.switches[n.switchOf(src)]
		p = n.newPort(fmt.Sprintf("host%d-%s", src, sw.name), n.edgeGbps, n.prop, sw)
		n.uplinks[src] = p
	}
	return p
}

// Send injects a packet the fabric accepted for transmission. Ownership
// of pkt stays with the fabric's pool contract: the network hands it
// back through Hooks.Deliver or Hooks.Drop, never keeps it.
func (n *Network) Send(src, dst uint16, pkt *packet.Packet, ws int) {
	e := n.getEntry()
	e.pkt, e.ws, e.src, e.dst = pkt, ws, src, dst
	e.vl = VLData
	if pkt.Opcode == packet.OpCNP {
		e.vl = VLControl
	}
	n.uplink(src).enqueue(e)
}

// QueuedBytes reports the data-VL backlog buffered across the switch
// chain (diagnostics and tests).
func (n *Network) QueuedBytes() int {
	total := 0
	for _, sw := range n.switches {
		total += int(sw.bytes)
	}
	return total
}

func (n *Network) getEntry() *entry {
	if k := len(n.free); k > 0 {
		e := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return e
	}
	e := &entry{}
	e.arriveFn = e.arrive
	return e
}

func (n *Network) putEntry(e *entry) {
	e.pkt, e.via, e.buf, e.acct = nil, nil, nil, nil
	n.free = append(n.free, e)
}
