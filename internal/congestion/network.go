package congestion

import (
	"strconv"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// Hooks is how the network talks back to the fabric that owns it. The
// congestion package deliberately does not import internal/fabric: the
// fabric plugs itself in through these callbacks, keeping the dependency
// arrow pointing one way (fabric → congestion).
type Hooks struct {
	// Deliver is called at the instant the packet finishes clocking out
	// of the last switch toward the destination host. The fabric adds
	// its jittered propagation delay, enforces per-pair FIFO and
	// schedules the final handler call (which also returns the packet
	// to the pool).
	Deliver func(dst uint16, pkt *packet.Packet, ws int)
	// Drop is called when a switch tail-drops the packet on buffer
	// overflow. The fabric counts it, emits the drop tap and reclaims
	// the packet.
	Drop func(src uint16, pkt *packet.Packet, reason string)
	// Pause is called for every PFC pause/resume frame so the fabric
	// can surface it to taps (captures show pause frames the way a port
	// mirror would).
	Pause func(from, to string, xoff bool)
}

// entry is one packet queued or in flight inside the switched network.
// Entries are recycled through the engine-attached scratch free list
// (shared by every network built on a Reset-reused engine), so steady
// traffic and repeated trials allocate none once the list is warm.
type entry struct {
	pkt *packet.Packet
	ws  int
	src uint16
	dst uint16
	vl  int
	// buf/acct locate the entry's switch-buffer and PFC ingress
	// accounting while it is buffered in a switch.
	buf  *swtch
	acct *port
	// landAt and seq are the entry's arrival deadline and its reserved
	// engine tie-break while it rides a port's propagation delay line
	// (see port.wire). seq is claimed when the flight starts so same-
	// instant ties resolve exactly as if every flight were in the heap.
	landAt sim.Time
	seq    uint64
}

// entryRing is a reusable FIFO of queued entries: a power-of-two ring
// buffer that keeps its backing array across drain/refill cycles and
// across trials (the port that owns it is arena-recycled). It replaces
// the old append/reslice queue, which leaked the consumed front of the
// backing array and re-allocated it on every burst.
type entryRing struct {
	buf  []*entry
	head int
	n    int
}

// push appends e at the tail, growing the ring only when full.
func (r *entryRing) push(e *entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = e
	r.n++
}

// pop removes and returns the head entry, nil-ing its slot so consumed
// entries are unreachable immediately (not when the array is next
// overwritten). The ring must be non-empty.
func (r *entryRing) pop() *entry {
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return e
}

// grow doubles the backing array (power of two, so index math stays a
// mask) and compacts the live entries to the front.
func (r *entryRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]*entry, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// peek returns the head entry without removing it. The ring must be
// non-empty.
func (r *entryRing) peek() *entry { return r.buf[r.head] }

// reset empties the ring, clearing any entries an abandoned run left
// behind, but keeps the backing array for the next trial.
func (r *entryRing) reset() {
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = nil
	}
	r.head, r.n = 0, 0
}

// Port roles, the key under which an arena-recycled port keeps its
// precomputed name: a port re-grabbed for the same link in the next
// trial reuses last trial's string instead of rebuilding it.
const (
	roleUplink   = iota // host a → switch b
	roleCore            // switch a → switch b
	roleDownlink        // switch a → host b
)

// portRole identifies which link of the topology a port serves.
type portRole struct {
	kind int
	a, b int
}

// name renders the role in the fixed "host3-sw0" / "sw0-sw1" /
// "sw1-host2" vocabulary (the same strings the old fmt.Sprintf calls
// produced, without fmt's boxing).
func (r portRole) name() string {
	switch r.kind {
	case roleUplink:
		return "host" + strconv.Itoa(r.a) + "-sw" + strconv.Itoa(r.b)
	case roleCore:
		return "sw" + strconv.Itoa(r.a) + "-sw" + strconv.Itoa(r.b)
	default:
		return "sw" + strconv.Itoa(r.a) + "-host" + strconv.Itoa(r.b)
	}
}

// port is one egress queue clocking packets onto one link: a host's
// uplink into its edge switch, a switch-to-switch link, or a switch's
// downlink to a host. VL1 (CNPs) is strictly prioritized over VL0 and
// is never paused.
type port struct {
	n    *Network
	name string
	role portRole
	gbps float64
	prop sim.Time

	q      [numVLs]entryRing
	qbytes [numVLs]int

	// pausedData suspends VL0 service (set by the downstream switch's
	// PFC state machine). pauseStart times the current pause for the
	// tx_pause_duration accounting. acctBytes is the downstream switch's
	// per-ingress-neighbour byte count for this link — the quantity the
	// XOFF/XON thresholds compare against.
	pausedData bool
	pauseStart sim.Time
	acctBytes  int

	busy   bool
	cur    *entry
	doneFn func()

	// wire is the link's propagation delay line: entries that finished
	// clocking out and are in flight toward the far end. prop is constant
	// per link, so flights land strictly FIFO — only the head flight
	// holds a scheduled engine callback (landFn re-arms the next head
	// when it fires), which keeps the event heap shallow no matter how
	// many packets a 2 µs wire holds at once.
	wire   entryRing
	landFn func()

	// dstSwitch is the far end for switch-bound links; nil means the
	// far end is a host and the entry leaves the network on arrival.
	dstSwitch *swtch
}

// enqueue appends an entry and starts the transmitter if idle. ECN
// marking happens at switch-buffer admission (see swtch.admit); the
// queue itself is policy-free.
func (p *port) enqueue(e *entry) {
	p.q[e.vl].push(e)
	p.qbytes[e.vl] += e.ws
	p.pump()
}

// pop takes the next serviceable entry: control VL first, data VL only
// when not paused.
func (p *port) pop() *entry {
	for vl := numVLs - 1; vl >= 0; vl-- {
		if vl == VLData && p.pausedData {
			continue
		}
		if p.q[vl].n == 0 {
			continue
		}
		e := p.q[vl].pop()
		p.qbytes[vl] -= e.ws
		return e
	}
	return nil
}

// pump starts serializing the next queued entry if the wire is free.
func (p *port) pump() {
	if p.busy {
		return
	}
	e := p.pop()
	if e == nil {
		return
	}
	p.busy = true
	p.cur = e
	p.n.eng.ScheduleAfter(serTime(e.ws, p.gbps), p.doneFn)
}

// txDone fires when the current entry has fully clocked onto the link:
// the entry leaves the switch buffer it was draining (store-and-forward)
// and is admitted to the next switch's buffer before it flies — the
// commitment point is the packet boundary, which is what lets PFC keep
// the fabric lossless: once XOFF lands, nothing further is charged, so
// an admitted packet always fits. The wire then frees up for the next
// entry and the packet arrives after the link's propagation delay.
func (p *port) txDone() {
	e := p.cur
	p.cur = nil
	p.busy = false
	if e.buf != nil {
		e.buf.release(e)
	}
	if p.dstSwitch != nil && e.vl == VLData && !p.dstSwitch.admit(e, p) {
		p.pump()
		return
	}
	if p.prop > 0 {
		e.landAt = p.n.eng.Now() + p.prop
		e.seq = p.n.eng.ReserveSeq()
		if p.wire.n == 0 {
			p.n.eng.ScheduleSeq(e.landAt, e.seq, p.landFn)
		}
		p.wire.push(e)
	} else {
		p.arrived(e)
	}
	p.pump()
}

// land fires when the head flight on this port's wire reaches the far
// end. The next flight (if any) is re-armed before the arrival runs, so
// its callback takes the earliest sequence number available at this
// instant — arrivals keep their tie-break priority over work the landing
// itself schedules.
func (p *port) land() {
	e := p.wire.pop()
	if p.wire.n > 0 {
		next := p.wire.peek()
		p.n.eng.ScheduleSeq(next.landAt, next.seq, p.landFn)
	}
	p.arrived(e)
}

// arrived lands the entry at this port's far end.
func (p *port) arrived(e *entry) {
	if p.dstSwitch != nil {
		p.dstSwitch.forward(e)
		return
	}
	// Final hop: hand the packet back to the fabric for delivery.
	n := p.n
	n.hooks.Deliver(e.dst, e.pkt, e.ws)
	n.putEntry(e)
}

// swtch is one switch: a shared packet buffer, per-egress VL queues and
// the PFC pause state machine for each of its ingress links.
type swtch struct {
	n    *Network
	idx  int
	name string

	bytes uint64 // shared-buffer occupancy (data VL)
	peak  uint64

	// toHost is the dense LID-indexed downlink table (was a map; LIDs
	// are small consecutive integers, so indexing replaces hashing on
	// the last hop of every delivery).
	toHost []*port
	// egress holds the switch-to-switch ports, parallel to the
	// topology's adjacency list for this switch.
	egress []*port
	// hopOff/hopPorts are the destination-switch routing table in CSR
	// form: the equal-cost next hops toward destination switch t are
	// hopPorts[hopOff[t]:hopOff[t+1]]. Built by Network.buildRoutes on
	// the recycled backing arrays, so warm rebuilds allocate nothing.
	hopOff   []int32
	hopPorts []*port

	Drops       uint64
	EcnMarked   uint64
	PauseFrames uint64

	// labels and the gauge closures are created once per struct
	// lifetime and reused every trial the switch is re-grabbed for, so
	// re-registering the telemetry metrics stays off the allocator.
	labels     telemetry.Labels
	bytesGauge func() float64
	peakGauge  func() float64
}

// admit reserves shared-buffer space for a data entry that just left
// the upstream port toward this switch (tail drop on overflow) and runs
// the PFC XOFF check against the upstream link's accounted bytes.
// Control frames never pass through here — they ride reserved headroom
// and are never dropped or paused.
func (sw *swtch) admit(e *entry, from *port) bool {
	n := sw.n
	if int(sw.bytes)+e.ws > n.cfg.BufferBytes {
		sw.Drops++
		n.hooks.Drop(e.src, e.pkt, "switch buffer overflow")
		n.putEntry(e)
		return false
	}
	sw.bytes += uint64(e.ws)
	if sw.bytes > sw.peak {
		sw.peak = sw.bytes
	}
	// ECN marks against the shared-buffer occupancy at admission, not
	// the egress queue: admission is where congestion is first visible,
	// and a threshold below XOFF must fire before PFC throttles the
	// flow (an egress-queue check would lag one propagation flight and
	// lose that race).
	if n.cfg.ECN && !e.pkt.ECN && int(sw.bytes) >= n.cfg.ECNThresholdBytes {
		e.pkt.ECN = true
		sw.EcnMarked++
	}
	e.buf = sw
	e.acct = from
	from.acctBytes += e.ws
	if n.cfg.PFC && !from.pausedData && from.acctBytes >= n.cfg.XOffBytes {
		sw.setPause(from, true)
	}
	return true
}

// forward queues the entry on the egress toward its destination. ECN
// marking happened at admission (see admit).
func (sw *swtch) forward(e *entry) {
	sw.route(e.src, e.dst).enqueue(e)
}

// release returns the entry's bytes to the shared buffer and the PFC
// ingress accounting, resuming the upstream link once its backlog has
// drained below XON.
func (sw *swtch) release(e *entry) {
	sw.bytes -= uint64(e.ws)
	up := e.acct
	e.buf, e.acct = nil, nil
	up.acctBytes -= e.ws
	if sw.n.cfg.PFC && up.pausedData && up.acctBytes <= sw.n.cfg.XOnBytes {
		sw.setPause(up, false)
	}
}

// setPause sends a PFC pause (xoff) or resume frame to the upstream
// link's transmitter and applies it. Pause frames are link-local and
// effectively instantaneous at simulation scale.
func (sw *swtch) setPause(up *port, xoff bool) {
	n := sw.n
	sw.PauseFrames++
	if xoff {
		up.pausedData = true
		up.pauseStart = n.eng.Now()
	} else {
		up.pausedData = false
		n.pausedNs += uint64(n.eng.Now() - up.pauseStart)
	}
	if n.hooks.Pause != nil {
		n.hooks.Pause(sw.name, up.name, xoff)
	}
	if !xoff {
		up.pump()
	}
}

// route picks the egress port toward the destination host: the downlink
// when the destination attaches here, the single next hop when the
// routing table has one, and otherwise a seeded-hash ECMP pick across the
// equal-cost set. Hashing on the (src, dst) flow pair — never the random
// stream — keeps the pick consistent for a flow's lifetime (RC delivery
// stays FIFO per pair) and reproducible for a given engine seed.
func (sw *swtch) route(src, dst uint16) *port {
	t := sw.n.switchOf(dst)
	if t == sw.idx {
		return sw.hostPort(dst)
	}
	hops := sw.hopPorts[sw.hopOff[t]:sw.hopOff[t+1]]
	if len(hops) == 1 {
		return hops[0]
	}
	return hops[sw.n.ecmpIndex(src, dst, len(hops))]
}

// hostPort lazily creates the downlink to an attached host, indexed
// densely by LID.
func (sw *swtch) hostPort(dst uint16) *port {
	for int(dst) >= len(sw.toHost) {
		sw.toHost = append(sw.toHost, nil)
	}
	p := sw.toHost[dst]
	if p == nil {
		p = sw.n.newPort(portRole{roleDownlink, sw.idx, int(dst)}, sw.n.edgeGbps, 0, nil)
		sw.toHost[dst] = p
	}
	return p
}

// Network is the switched fabric core: the topology's switch graph plus
// one uplink queue per attached host (the host-side port PFC pauses).
type Network struct {
	eng   *sim.Engine
	cfg   Config
	hooks Hooks

	edgeGbps float64  // host links
	prop     sim.Time // per-hop propagation

	topo     Topology
	switches []*swtch
	uplinks  []*port // indexed by LID

	// ecmpSeed folds the engine seed into every ECMP hash so path
	// assignment is deterministic per seed without touching the engine's
	// random stream (which would perturb unrelated draws and goldens).
	ecmpSeed uint64
	// dist and bfsQ are buildRoutes scratch (a dense [dst][switch]
	// distance matrix and the BFS work queue), reused across trials.
	dist []int32
	bfsQ []int32

	scratch *scratch

	tel *telemetry.Registry
	// pausedNs accumulates completed pause intervals across every link
	// (exported as tx_pause_duration, in µs, mlx5-style).
	pausedNs   uint64
	pauseGauge func() float64
}

// scratchKey is the engine Aux key the congestion layer's recycled
// storage lives under — the same discipline as fabric.scratch: trial
// loops that rebuild the network per run on a Reset-reused engine keep
// one warm set of entries, ports, switches and rate states.
const scratchKey = "congestion.scratch"

// scratch is the per-engine storage the congestion layer draws from.
// The entry free list is shared unconditionally (entries are
// self-contained, like packets and deliveries). The network, port,
// switch and rate-state arenas are generation-claimed: a Reset
// wholesale-frees last trial's grabs, while within one generation every
// constructor call gets a distinct instance, so side-by-side networks
// on one engine stay correct.
type scratch struct {
	free []*entry

	gen      uint64
	netAll   []*Network
	netNext  int
	portAll  []*port
	portNext int
	swAll    []*swtch
	swNext   int
	rateAll  []*RateState
	rateNext int

	// chainTopo memoizes the implicit chain topology that configs without
	// an explicit Topology resolve to, keyed by its parameters, so warm
	// trial loops do not rebuild the adjacency slices every run.
	chainTopo Topology
	chainSw   int
	chainUF   float64
}

// chain returns the memoized degenerate chain topology for the given
// parameters, rebuilding it only when they change.
func (s *scratch) chain(switches int, uplinkFactor float64) Topology {
	if s.chainTopo.Kind == "" || s.chainSw != switches || s.chainUF != uplinkFactor {
		s.chainTopo = ChainTopology(switches, uplinkFactor)
		s.chainSw, s.chainUF = switches, uplinkFactor
	}
	return s.chainTopo
}

// scratchFor fetches or creates the engine's congestion scratch,
// rolling the arenas over to the current generation.
func scratchFor(eng *sim.Engine) *scratch {
	s, _ := eng.Aux(scratchKey).(*scratch)
	if s == nil {
		s = &scratch{}
		eng.SetAux(scratchKey, s)
	}
	if gen := eng.Generation() + 1; s.gen != gen {
		s.gen = gen
		s.netNext, s.portNext, s.swNext, s.rateNext = 0, 0, 0, 0
	}
	return s
}

// serTime is the serialization delay of wireBytes at gbps.
func serTime(wireBytes int, gbps float64) sim.Time {
	return sim.Time(float64(wireBytes*8) / gbps)
}

// NewNetwork builds the configured switch topology on eng. linkGbps and
// propDelay mirror the owning fabric's link model; hooks connect
// delivery, drops and pause-frame visibility back to it. Networks, their
// switches and ports are recycled across Engine.Reset generations, so
// sweeps that rebuild the fabric per trial reuse one warm topology.
func NewNetwork(eng *sim.Engine, cfg Config, linkGbps float64, propDelay sim.Time, hooks Hooks) *Network {
	cfg = cfg.withDefaults()
	if cfg.PFC && cfg.XOffBytes <= cfg.XOnBytes {
		panic("congestion: XOffBytes must be greater than XOnBytes")
	}
	s := scratchFor(eng)
	topo := cfg.Topology
	if topo.Kind == "" {
		topo = s.chain(cfg.Switches, cfg.UplinkFactor)
	}
	n := s.getNetwork()
	n.eng = eng
	n.cfg = cfg
	n.hooks = hooks
	n.edgeGbps = linkGbps
	n.prop = propDelay
	n.topo = topo
	n.ecmpSeed = uint64(eng.Seed()) * 0x9e3779b97f4a7c15
	n.scratch = s
	n.tel = telemetry.NewRegistryOn(eng, "congestion", telemetry.Labels{"device": "congestion"})
	for i := 0; i < topo.SwitchCount(); i++ {
		n.switches = append(n.switches, n.getSwitch(i))
	}
	// Create the switch-to-switch ports in adjacency order — for a chain
	// this is left-then-right per switch, the exact creation order (and
	// therefore port-arena assignment) of the pre-topology builder.
	for i, sw := range n.switches {
		sw.egress = sw.egress[:0]
		for _, l := range topo.Adj[i] {
			prop := n.prop
			if l.PropFactor != 1 {
				prop = sim.Time(float64(prop) * l.PropFactor)
			}
			sw.egress = append(sw.egress,
				n.newPort(portRole{roleCore, i, l.To}, linkGbps/l.SpeedDiv, prop, n.switches[l.To]))
		}
	}
	n.buildRoutes()
	// Pre-size the engine's event storage from the link count: every link
	// can hold a tx-done event plus propagation flights at once, and each
	// leaf adds host up/downlinks. Warm engines already have the capacity,
	// so this is a cold-start courtesy, not a per-trial cost.
	eng.PreallocEvents(8 * (topo.LinkCount() + 2*len(topo.Leaves)))
	n.registerMetrics()
	return n
}

// buildRoutes computes the destination-switch routing tables: a BFS from
// every destination over the (symmetric) adjacency yields hop distances,
// and each switch's equal-cost next hops toward t are exactly its links
// that step one closer. Tables land in each switch's recycled CSR arrays,
// so rebuilding the same topology allocates nothing once warm. Adjacency
// order fixes the hop order, which makes ECMP picks a pure function of
// (topology, seed, src, dst).
func (n *Network) buildRoutes() {
	S := len(n.switches)
	if cap(n.dist) < S*S {
		n.dist = make([]int32, S*S)
	}
	n.dist = n.dist[:S*S]
	if cap(n.bfsQ) < S {
		n.bfsQ = make([]int32, 0, S)
	}
	for t := 0; t < S; t++ {
		dist := n.dist[t*S : t*S+S]
		for i := range dist {
			dist[i] = -1
		}
		dist[t] = 0
		q := append(n.bfsQ[:0], int32(t))
		for head := 0; head < len(q); head++ {
			v := int(q[head])
			for _, l := range n.topo.Adj[v] {
				if dist[l.To] == -1 {
					dist[l.To] = dist[v] + 1
					q = append(q, int32(l.To))
				}
			}
		}
		n.bfsQ = q[:0]
	}
	for si, sw := range n.switches {
		sw.hopOff = append(sw.hopOff[:0], 0)
		sw.hopPorts = sw.hopPorts[:0]
		for t := 0; t < S; t++ {
			if t != si {
				dist := n.dist[t*S : t*S+S]
				if dist[si] < 0 {
					panic("congestion: switch " + sw.name + " has no route to " + n.switches[t].name)
				}
				for ai, l := range n.topo.Adj[si] {
					if dist[l.To] == dist[si]-1 {
						sw.hopPorts = append(sw.hopPorts, sw.egress[ai])
					}
				}
			}
			sw.hopOff = append(sw.hopOff, int32(len(sw.hopPorts)))
		}
	}
}

// ecmpIndex hashes the flow pair with the seed-derived key into one of k
// equal-cost hops (a splitmix-style finalizer: cheap, stateless and
// well-mixed for adjacent LIDs).
func (n *Network) ecmpIndex(src, dst uint16, k int) int {
	h := n.ecmpSeed ^ uint64(src)<<16 ^ uint64(dst)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(k))
}

// getNetwork grabs a recycled Network (or allocates the arena's next
// one) and resets its per-trial state.
func (s *scratch) getNetwork() *Network {
	var n *Network
	if s.netNext < len(s.netAll) {
		n = s.netAll[s.netNext]
		s.netNext++
		n.switches = n.switches[:0]
		for i := range n.uplinks {
			n.uplinks[i] = nil
		}
		n.uplinks = n.uplinks[:0]
		n.pausedNs = 0
	} else {
		n = &Network{}
		s.netAll = append(s.netAll, n)
		s.netNext = len(s.netAll)
	}
	if n.pauseGauge == nil {
		n.pauseGauge = n.PauseDurationMicros
	}
	return n
}

// getSwitch grabs a recycled switch for graph position idx, resetting
// its counters, buffer accounting and downlink table. The name (and the
// telemetry label map that carries it) is rebuilt only when the struct
// serves a different position than last trial.
func (n *Network) getSwitch(idx int) *swtch {
	s := n.scratch
	var sw *swtch
	if s.swNext < len(s.swAll) {
		sw = s.swAll[s.swNext]
		s.swNext++
		sw.bytes, sw.peak = 0, 0
		sw.Drops, sw.EcnMarked, sw.PauseFrames = 0, 0, 0
		sw.egress = sw.egress[:0]
		for i := range sw.toHost {
			sw.toHost[i] = nil
		}
	} else {
		sw = &swtch{}
		s.swAll = append(s.swAll, sw)
		s.swNext = len(s.swAll)
	}
	sw.n = n
	if sw.name == "" || sw.idx != idx {
		sw.idx = idx
		sw.name = "sw" + strconv.Itoa(idx)
		if sw.labels == nil {
			sw.labels = telemetry.Labels{}
		}
		sw.labels["switch"] = sw.name
	}
	// The tier can change even when the position does not (a recycled
	// struct may serve a chain one trial and a Clos the next), so it is
	// refreshed unconditionally. TierNames strings are shared with the
	// topology, so this is a map assign, not an allocation, when warm.
	if tier := n.topo.TierName(idx); sw.labels["tier"] != tier {
		sw.labels["tier"] = tier
	}
	if sw.bytesGauge == nil {
		sw.bytesGauge = func() float64 { return float64(sw.bytes) }
		sw.peakGauge = func() float64 { return float64(sw.peak) }
	}
	return sw
}

// Config returns the resolved configuration (defaults filled in).
func (n *Network) Config() Config { return n.cfg }

// Topology returns the switch graph the network was built from (the
// resolved chain when the config declared none).
func (n *Network) Topology() Topology { return n.topo }

// TierStat aggregates one tier's switch counters, for per-tier reporting
// in workloads (the telemetry registry carries the same data under the
// "tier" label on the sim_switch_* series).
type TierStat struct {
	Tier        string
	Switches    int
	Drops       uint64
	EcnMarked   uint64
	PauseFrames uint64
	// PeakBytes is the highest shared-buffer high-water mark across the
	// tier's switches.
	PeakBytes uint64
}

// TierStats returns per-tier aggregates in tier order (leaf → spine).
func (n *Network) TierStats() []TierStat {
	stats := make([]TierStat, len(n.topo.TierNames))
	for i, name := range n.topo.TierNames {
		stats[i].Tier = name
	}
	for i, sw := range n.switches {
		st := &stats[n.topo.TierOf[i]]
		st.Switches++
		st.Drops += sw.Drops
		st.EcnMarked += sw.EcnMarked
		st.PauseFrames += sw.PauseFrames
		if sw.peak > st.PeakBytes {
			st.PeakBytes = sw.peak
		}
	}
	return stats
}

// Telemetry returns the network's counter registry.
func (n *Network) Telemetry() *telemetry.Registry { return n.tel }

// PauseDurationMicros returns the accumulated pause time across every
// link, in microseconds (completed pauses only; a drained simulation has
// none outstanding).
func (n *Network) PauseDurationMicros() float64 { return float64(n.pausedNs) / 1e3 }

func (n *Network) registerMetrics() {
	n.tel.Gauge(telemetry.TxPauseDuration, "accumulated PFC pause time across all links [µs]", nil,
		n.pauseGauge)
	for _, sw := range n.switches {
		n.tel.Counter(telemetry.SimSwitchDrops, "packets tail-dropped on shared-buffer overflow", sw.labels, &sw.Drops)
		n.tel.Counter(telemetry.SimSwitchEcnMarked, "packets ECN-marked at egress", sw.labels, &sw.EcnMarked)
		n.tel.Counter(telemetry.SimSwitchPauseFrames, "PFC pause/resume frames sent", sw.labels, &sw.PauseFrames)
		n.tel.Gauge(telemetry.SimSwitchQueueBytes, "shared-buffer occupancy [bytes]", sw.labels, sw.bytesGauge)
		n.tel.Gauge(telemetry.SimSwitchQueuePeak, "shared-buffer high-water mark [bytes]", sw.labels, sw.peakGauge)
	}
}

// switchOf maps a host LID onto its attachment switch (round-robin over
// the topology's leaves; for a chain every switch is a leaf, reproducing
// the old placement exactly).
func (n *Network) switchOf(lid uint16) int {
	leaves := n.topo.Leaves
	if lid == 0 {
		return leaves[0]
	}
	return leaves[int(lid-1)%len(leaves)]
}

// newPort grabs a recycled port for the given link role, resetting its
// queues, PFC state and wire state. The precomputed name is kept when
// the struct serves the same link as last trial (the common case in
// sweep loops), so warm rebuilds allocate no strings.
func (n *Network) newPort(role portRole, gbps float64, prop sim.Time, dst *swtch) *port {
	s := n.scratch
	var p *port
	if s.portNext < len(s.portAll) {
		p = s.portAll[s.portNext]
		s.portNext++
		for vl := range p.q {
			p.q[vl].reset()
			p.qbytes[vl] = 0
		}
		p.wire.reset()
		p.pausedData, p.pauseStart, p.acctBytes = false, 0, 0
		p.busy, p.cur = false, nil
	} else {
		p = &port{}
		s.portAll = append(s.portAll, p)
		s.portNext = len(s.portAll)
	}
	p.n = n
	if p.doneFn == nil {
		p.doneFn = p.txDone
		p.landFn = p.land
	}
	if p.name == "" || p.role != role {
		p.role = role
		p.name = role.name()
	}
	p.gbps = gbps
	p.prop = prop
	p.dstSwitch = dst
	return p
}

// uplink lazily creates the host's egress queue into its edge switch.
func (n *Network) uplink(src uint16) *port {
	for int(src) >= len(n.uplinks) {
		n.uplinks = append(n.uplinks, nil)
	}
	p := n.uplinks[src]
	if p == nil {
		sw := n.switches[n.switchOf(src)]
		p = n.newPort(portRole{roleUplink, int(src), sw.idx}, n.edgeGbps, n.prop, sw)
		n.uplinks[src] = p
	}
	return p
}

// Send injects a packet the fabric accepted for transmission. Ownership
// of pkt stays with the fabric's pool contract: the network hands it
// back through Hooks.Deliver or Hooks.Drop, never keeps it.
func (n *Network) Send(src, dst uint16, pkt *packet.Packet, ws int) {
	e := n.getEntry()
	e.pkt, e.ws, e.src, e.dst = pkt, ws, src, dst
	e.vl = VLData
	if pkt.Opcode == packet.OpCNP {
		e.vl = VLControl
	}
	n.uplink(src).enqueue(e)
}

// QueuedBytes reports the data-VL backlog buffered across the switch
// chain (diagnostics and tests).
func (n *Network) QueuedBytes() int {
	total := 0
	for _, sw := range n.switches {
		total += int(sw.bytes)
	}
	return total
}

func (n *Network) getEntry() *entry {
	s := n.scratch
	if k := len(s.free); k > 0 {
		e := s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
		return e
	}
	return &entry{}
}

func (n *Network) putEntry(e *entry) {
	e.pkt, e.buf, e.acct = nil, nil, nil
	s := n.scratch
	s.free = append(s.free, e)
}
