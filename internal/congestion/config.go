// Package congestion models the lossless-fabric layer the paper's
// testbeds take for granted and related work studies explicitly: switches
// with finite shared buffers and per-port virtual-lane queues, IEEE
// 802.1Qbb priority flow control (PFC) pause/resume with configurable
// XOFF/XON thresholds, ECN marking above a queue-depth threshold, and a
// DCQCN-style rate limiter (Zhu et al., SIGCOMM 2015) on each RNIC
// requester. It is the first subsystem that makes fabric state feed back
// into RNIC pacing: every earlier layer was feed-forward.
//
// The model follows the PFC/RCM RoCEv2 simulations of Liu et al. and the
// lossless-vs-lossy framing of IRN (Mittal et al.): under a lossy fabric
// the ODP retransmission storms contend with finite buffers and lose
// packets (go-back-N amplification); under PFC the fabric is lossless but
// pause propagates; DCQCN paces the senders so the storm stops
// overrunning the bottleneck in the first place. See DESIGN.md §9 for the
// substitutions and calibration.
package congestion

import "odpsim/internal/sim"

// Virtual lanes. Data rides VL0; CNPs ride VL1, which is strictly
// prioritized and never paused — the standard DCQCN deployment puts
// congestion notifications on their own traffic class precisely so they
// outrun the congestion they report.
const (
	VLData    = 0
	VLControl = 1
	numVLs    = 2
)

// Config describes the switched fabric. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Topology is the switch graph to build. The zero value (Kind "")
	// selects the historical linear chain derived from Switches and
	// UplinkFactor; use ChainTopology or ClosTopology to make it
	// explicit.
	Topology Topology
	// Switches is the number of switches in the implicit linear chain
	// (hosts attach round-robin by LID; with 2 switches and 2 hosts
	// every flow crosses the inter-switch link). Ignored when Topology
	// is set.
	Switches int
	// UplinkFactor oversubscribes the inter-switch links of the implicit
	// chain: their bandwidth is the edge link rate divided by this
	// factor (spine oversubscription is what makes a 2-host topology
	// contend at all). Values below 1 are treated as 1 (no
	// oversubscription). Ignored when Topology is set — Clos builders
	// take their own oversubscription argument.
	UplinkFactor float64
	// BufferBytes is each switch's shared packet buffer. Arrivals that
	// would overflow it are tail-dropped (unless PFC paused the source
	// first).
	BufferBytes int

	// PFC enables pause/resume frames: when the bytes buffered from one
	// ingress neighbour exceed XOffBytes the switch pauses that
	// neighbour's data VL, resuming below XOnBytes. XOffBytes must be
	// greater than XOnBytes.
	PFC       bool
	XOffBytes int
	XOnBytes  int

	// ECN enables congestion-experienced marking: packets admitted to a
	// switch whose shared-buffer occupancy is at or above
	// ECNThresholdBytes are marked (the RED-like min=max threshold
	// DCQCN's K_min=K_max degenerate configuration uses). Keep the
	// threshold below XOffBytes so marking engages before PFC throttles
	// the flow.
	ECN               bool
	ECNThresholdBytes int

	// DCQCN configures the end-to-end rate control loop; DCQCN implies
	// ECN (the marks are its only input).
	DCQCN DCQCNConfig
}

// DCQCNConfig holds the rate-control parameters of the DCQCN reaction
// point and notification point. Zero fields select the defaults noted.
type DCQCNConfig struct {
	// Enabled turns the whole loop on: CNP generation at receivers and
	// per-QP rate limiting at senders.
	Enabled bool
	// MinCNPInterval is the notification point's per-QP CNP pacing
	// window (default 50 µs, the N_CNP timer).
	MinCNPInterval sim.Time
	// G is the alpha EWMA gain (default 1/16).
	G float64
	// AlphaTimer is the alpha-decay update period (default 55 µs).
	AlphaTimer sim.Time
	// RateTimer is the rate-increase period (default 300 µs; the DCQCN
	// paper uses 1.5 ms with a byte counter — the simulator is
	// timer-only, so it recovers faster to keep short floods
	// interesting).
	RateTimer sim.Time
	// FastRecoverySteps is F: rate-timer expirations spent in fast
	// recovery (rc averaged toward rt) before additive increase starts
	// (default 5).
	FastRecoverySteps int
	// AIRateGbps is the additive-increase step R_AI (default 5 Gb/s).
	AIRateGbps float64
	// MinRateGbps floors the current rate (default 0.1 Gb/s).
	MinRateGbps float64
	// MaxBacklog bounds how far ahead of the clock the rate limiter may
	// book transmissions (default 1 ms). It models the finite TX queue
	// of a real port: go-back-N retransmission bursts that exceed it are
	// shed rather than queued, exactly as a NIC cannot hold an unbounded
	// retransmit backlog — the timeout/NAK machinery regenerates them.
	// Without the bound a retransmission storm against a cut rate books
	// events unboundedly into the future.
	MaxBacklog sim.Time
}

// DefaultConfig returns a 2-switch fabric with a 4× oversubscribed
// inter-switch link and thresholds sized to the paper's flood bursts
// (128 QPs × ~80-byte requests ≈ 10 KB per blind-retransmission round):
// an 8 KB shared buffer overflows under a round, XOFF at 6 KB keeps PFC
// ahead of the drop point, and ECN at 1.5 KB marks early enough for
// DCQCN to cut rates within a few rounds.
func DefaultConfig() Config {
	return Config{
		Switches:          2,
		UplinkFactor:      4,
		BufferBytes:       8 << 10,
		XOffBytes:         6 << 10,
		XOnBytes:          2 << 10,
		ECNThresholdBytes: 1536,
		DCQCN:             DCQCNConfig{},
	}
}

// withDefaults fills unset tuning fields.
func (c Config) withDefaults() Config {
	if c.Switches <= 0 {
		c.Switches = 2
	}
	if c.UplinkFactor < 1 {
		c.UplinkFactor = 1
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 8 << 10
	}
	if c.XOffBytes <= 0 {
		c.XOffBytes = 6 << 10
	}
	if c.XOnBytes <= 0 {
		c.XOnBytes = 2 << 10
	}
	if c.ECNThresholdBytes <= 0 {
		c.ECNThresholdBytes = 1536
	}
	if c.DCQCN.Enabled {
		c.ECN = true
	}
	c.DCQCN = c.DCQCN.WithDefaults()
	return c
}

// WithDefaults fills unset tuning fields with the package defaults.
func (d DCQCNConfig) WithDefaults() DCQCNConfig {
	if d.MinCNPInterval <= 0 {
		d.MinCNPInterval = 50 * sim.Microsecond
	}
	if d.G <= 0 {
		d.G = 1.0 / 16
	}
	if d.AlphaTimer <= 0 {
		d.AlphaTimer = 55 * sim.Microsecond
	}
	if d.RateTimer <= 0 {
		d.RateTimer = 300 * sim.Microsecond
	}
	if d.FastRecoverySteps <= 0 {
		d.FastRecoverySteps = 5
	}
	if d.AIRateGbps <= 0 {
		d.AIRateGbps = 5
	}
	if d.MinRateGbps <= 0 {
		d.MinRateGbps = 0.1
	}
	if d.MaxBacklog <= 0 {
		d.MaxBacklog = sim.Millisecond
	}
	return d
}
