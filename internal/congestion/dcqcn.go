package congestion

import "odpsim/internal/sim"

// RateState is the DCQCN reaction point for one QP: the rate-decrease /
// fast-recovery / additive-increase state machine of Zhu et al. (SIGCOMM
// 2015), driven by CNP arrivals and two timers. The simulator is
// timer-only (no byte counter) — a documented simplification that keeps
// the recovery dynamics without per-packet bookkeeping.
//
// A RateState at line rate is completely passive: Reserve returns the
// caller's own clock and no timer is armed, so enabling DCQCN costs
// nothing until the first CNP arrives, and a drained simulation stays
// drained (the timers cancel themselves once the rate has recovered).
type RateState struct {
	eng  *sim.Engine
	cfg  DCQCNConfig
	line float64 // link rate, Gb/s

	rc    float64 // current rate
	rt    float64 // target rate
	alpha float64 // congestion estimate
	stage int     // rate-timer expirations since the last cut

	// nextFree is the pacing credit: the earliest time the next packet
	// may start clocking out. Only meaningful while rc < line.
	nextFree sim.Time

	alphaTimer sim.Timer
	rateTimer  sim.Timer
	alphaFn    func()
	rateFn     func()

	// Cuts counts rate decreases (one per handled CNP); Shed counts
	// packets refused by Reserve because the TX backlog was full.
	Cuts uint64
	Shed uint64
}

// NewRateState creates a reaction point at line rate.
func NewRateState(eng *sim.Engine, cfg DCQCNConfig, lineGbps float64) *RateState {
	rs := &RateState{}
	rs.alphaFn = rs.alphaTick
	rs.rateFn = rs.rateTick
	rs.reset(eng, cfg, lineGbps)
	return rs
}

// NewRateStateOn is NewRateState with engine-generation recycling:
// rate states handed out in earlier generations are free again after an
// Engine.Reset, so trial loops that re-arm DCQCN on every rebuilt QP
// reuse the same structs — and their cached timer closures — instead of
// allocating a fresh state machine per QP per trial.
func NewRateStateOn(eng *sim.Engine, cfg DCQCNConfig, lineGbps float64) *RateState {
	s := scratchFor(eng)
	if s.rateNext < len(s.rateAll) {
		rs := s.rateAll[s.rateNext]
		s.rateNext++
		rs.reset(eng, cfg, lineGbps)
		return rs
	}
	rs := NewRateState(eng, cfg, lineGbps)
	s.rateAll = append(s.rateAll, rs)
	s.rateNext = len(s.rateAll)
	return rs
}

// reset returns the state machine to its just-constructed line-rate
// state. The engine's Reset already made any outstanding timer handles
// inert (event generations advanced), so zeroing the handles here only
// keeps Pending() honest before the first CNP of the new trial.
func (rs *RateState) reset(eng *sim.Engine, cfg DCQCNConfig, lineGbps float64) {
	rs.eng = eng
	rs.cfg = cfg.WithDefaults()
	rs.line, rs.rc, rs.rt = lineGbps, lineGbps, lineGbps
	rs.alpha, rs.stage = 0, 0
	rs.nextFree = 0
	rs.alphaTimer, rs.rateTimer = sim.Timer{}, sim.Timer{}
	rs.Cuts, rs.Shed = 0, 0
}

// CurrentGbps returns the current sending rate.
func (rs *RateState) CurrentGbps() float64 { return rs.rc }

// Limited reports whether the QP is currently below line rate.
func (rs *RateState) Limited() bool { return rs.rc < rs.line }

// Reserve returns the earliest time a packet of wireBytes may start
// transmitting, and books that transmission against the rate credit.
// At line rate it returns (now, true) untouched — the wire's own
// serialization is the only limit. When the booked backlog already
// reaches MaxBacklog ahead of the clock, Reserve refuses (false): the
// TX queue is full and the caller must shed the packet instead of
// booking it (Shed counts those refusals).
func (rs *RateState) Reserve(now sim.Time, wireBytes int) (sim.Time, bool) {
	if rs.rc >= rs.line {
		rs.nextFree = now
		return now, true
	}
	start := rs.nextFree
	if start < now {
		start = now
	}
	if start-now > rs.cfg.MaxBacklog {
		rs.Shed++
		return 0, false
	}
	// bits / (Gb/s) = ns, same arithmetic as the fabric's serialization.
	rs.nextFree = start + sim.Time(float64(wireBytes*8)/rs.rc)
	return start, true
}

// HandleCNP applies one congestion notification: raise alpha, cut the
// current rate by alpha/2 toward zero, remember the pre-cut rate as the
// recovery target, and (re)arm the update timers.
func (rs *RateState) HandleCNP() {
	g := rs.cfg.G
	rs.alpha = (1-g)*rs.alpha + g
	rs.rt = rs.rc
	rs.rc = rs.rc * (1 - rs.alpha/2)
	if rs.rc < rs.cfg.MinRateGbps {
		rs.rc = rs.cfg.MinRateGbps
	}
	rs.stage = 0
	rs.Cuts++
	if !rs.alphaTimer.Pending() {
		rs.alphaTimer = rs.eng.After(rs.cfg.AlphaTimer, rs.alphaFn)
	}
	if !rs.rateTimer.Pending() {
		rs.rateTimer = rs.eng.After(rs.cfg.RateTimer, rs.rateFn)
	}
}

// alphaTick decays the congestion estimate; it keeps itself armed only
// while there is something left to decay or recover.
func (rs *RateState) alphaTick() {
	rs.alpha *= 1 - rs.cfg.G
	if rs.alpha > 1e-3 || rs.rc < rs.line {
		rs.alphaTimer = rs.eng.After(rs.cfg.AlphaTimer, rs.alphaFn)
	}
}

// rateTick runs fast recovery (rc averaged toward the pre-cut target)
// for FastRecoverySteps periods, then additive increase (the target
// itself climbs by R_AI). The timer disarms once rc is back at line
// rate, so an idle simulation drains.
func (rs *RateState) rateTick() {
	rs.stage++
	if rs.stage > rs.cfg.FastRecoverySteps {
		rs.rt += rs.cfg.AIRateGbps
	}
	if rs.rt > rs.line {
		rs.rt = rs.line
	}
	rs.rc = (rs.rt + rs.rc) / 2
	if rs.rc >= rs.line*0.999 {
		rs.rc, rs.rt = rs.line, rs.line
		return
	}
	rs.rateTimer = rs.eng.After(rs.cfg.RateTimer, rs.rateFn)
}
