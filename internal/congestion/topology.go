package congestion

import "strconv"

// Topology describes the switch graph as data: switches grouped into
// tiers, directed links with per-link speed and latency factors, and the
// host attachment points. The network core builds whatever graph it is
// handed — the historical linear chain is just the one-tier instance
// ChainTopology produces, which is what keeps pre-topology goldens
// byte-identical.
//
// Topologies are plain values: builders allocate the slices once and the
// result is shared read-only by every network built from it (sweep trials
// rebuild networks, not topologies).
type Topology struct {
	// Kind names the builder that produced the graph: "chain" or "clos".
	Kind string
	// Tiers is the number of switch tiers (1 for a chain, 2 for
	// leaf-spine, 3 for a fat-tree).
	Tiers int
	// Radix is the Clos switch port count (0 for chains).
	Radix int
	// Oversub records the uplink oversubscription factor the builder
	// applied (switch-to-switch links run at edge rate / Oversub).
	Oversub float64

	// TierNames maps a tier index to its label ("core"; "leaf","spine";
	// "edge","agg","core"). These become the "tier" telemetry label.
	TierNames []string
	// TierOf maps a switch index to its tier index.
	TierOf []int
	// Adj is each switch's ordered egress links. Order matters: it fixes
	// port-arena creation order (and therefore event tie-breaks), and BFS
	// visits neighbours in this order, so equal-cost hop sets are stable.
	Adj [][]Link
	// Leaves are the switches hosts attach to, in round-robin LID order:
	// LID l lands on Leaves[(l-1) % len(Leaves)]. For a chain every
	// switch is a leaf, reproducing the old modulo placement exactly.
	Leaves []int
}

// Link is one directed switch-to-switch link.
type Link struct {
	// To is the far-end switch index.
	To int
	// SpeedDiv divides the edge link rate for this link. Chains put the
	// configured UplinkFactor here; 1 means full edge rate. Stored as a
	// divisor (not a multiplier) so the chain's rate works out to the
	// exact float the old linkGbps/UplinkFactor division produced.
	SpeedDiv float64
	// PropFactor scales the per-hop propagation delay (1 = one fabric
	// hop, the only value the builders currently emit).
	PropFactor float64
}

// ChainTopology is the degenerate one-tier graph the pre-topology code
// hard-wired: switches in a line, every switch a leaf, inter-switch links
// oversubscribed by uplinkFactor. Arguments are clamped exactly like
// Config.withDefaults clamps Switches and UplinkFactor, so the two paths
// can never disagree.
func ChainTopology(switches int, uplinkFactor float64) Topology {
	if switches <= 0 {
		switches = 2
	}
	if uplinkFactor < 1 {
		uplinkFactor = 1
	}
	t := Topology{
		Kind:      "chain",
		Tiers:     1,
		Oversub:   uplinkFactor,
		TierNames: []string{"core"},
		TierOf:    make([]int, switches),
		Adj:       make([][]Link, switches),
		Leaves:    make([]int, switches),
	}
	for i := 0; i < switches; i++ {
		t.Leaves[i] = i
		// Left neighbour before right: the order the old builder created
		// the left/right ports in, preserved for byte-identical goldens.
		if i > 0 {
			t.Adj[i] = append(t.Adj[i], Link{To: i - 1, SpeedDiv: uplinkFactor, PropFactor: 1})
		}
		if i < switches-1 {
			t.Adj[i] = append(t.Adj[i], Link{To: i + 1, SpeedDiv: uplinkFactor, PropFactor: 1})
		}
	}
	return t
}

// ClosTopology builds a folded-Clos fabric. tiers=2 is a leaf-spine:
// radix leaves each connected to radix/2 spines. tiers=3 is a k-ary
// fat-tree with k=radix: k pods of k/2 edge and k/2 aggregation switches
// plus (k/2)² cores. All switch-to-switch links run at edge rate /
// oversub (oversub 1 = rearrangeably non-blocking). Hosts attach
// round-robin across the bottom tier. Invalid arguments are clamped:
// radix to the next even value ≥ 2, tiers to 2 unless 3, oversub to ≥ 1.
func ClosTopology(tiers, radix int, oversub float64) Topology {
	if radix < 2 {
		radix = 4
	}
	if radix%2 != 0 {
		radix++
	}
	if oversub < 1 {
		oversub = 1
	}
	if tiers != 3 {
		tiers = 2
	}
	link := func(to int) Link { return Link{To: to, SpeedDiv: oversub, PropFactor: 1} }
	if tiers == 2 {
		leaves, spines := radix, radix/2
		t := Topology{
			Kind:      "clos",
			Tiers:     2,
			Radix:     radix,
			Oversub:   oversub,
			TierNames: []string{"leaf", "spine"},
			TierOf:    make([]int, leaves+spines),
			Adj:       make([][]Link, leaves+spines),
			Leaves:    make([]int, leaves),
		}
		for l := 0; l < leaves; l++ {
			t.Leaves[l] = l
			for s := 0; s < spines; s++ {
				t.Adj[l] = append(t.Adj[l], link(leaves+s))
			}
		}
		for s := 0; s < spines; s++ {
			t.TierOf[leaves+s] = 1
			for l := 0; l < leaves; l++ {
				t.Adj[leaves+s] = append(t.Adj[leaves+s], link(l))
			}
		}
		return t
	}
	// Three tiers: k-ary fat-tree. Edge switches are indexed pod-major
	// first, then aggregation switches pod-major, then the core groups
	// (core group a serves every pod's a-th aggregation switch).
	k := radix
	half := k / 2
	edges, aggs, cores := k*half, k*half, half*half
	t := Topology{
		Kind:      "clos",
		Tiers:     3,
		Radix:     radix,
		Oversub:   oversub,
		TierNames: []string{"edge", "agg", "core"},
		TierOf:    make([]int, edges+aggs+cores),
		Adj:       make([][]Link, edges+aggs+cores),
		Leaves:    make([]int, edges),
	}
	aggIdx := func(pod, a int) int { return edges + pod*half + a }
	coreIdx := func(group, c int) int { return edges + aggs + group*half + c }
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			idx := pod*half + e
			t.Leaves[idx] = idx
			for a := 0; a < half; a++ {
				t.Adj[idx] = append(t.Adj[idx], link(aggIdx(pod, a)))
			}
		}
		for a := 0; a < half; a++ {
			idx := aggIdx(pod, a)
			t.TierOf[idx] = 1
			for e := 0; e < half; e++ {
				t.Adj[idx] = append(t.Adj[idx], link(pod*half+e))
			}
			for c := 0; c < half; c++ {
				t.Adj[idx] = append(t.Adj[idx], link(coreIdx(a, c)))
			}
		}
	}
	for g := 0; g < half; g++ {
		for c := 0; c < half; c++ {
			idx := coreIdx(g, c)
			t.TierOf[idx] = 2
			for pod := 0; pod < k; pod++ {
				t.Adj[idx] = append(t.Adj[idx], link(aggIdx(pod, g)))
			}
		}
	}
	return t
}

// PodTopology builds one pod of a k-ary fat-tree as a standalone cell:
// k/2 edge switches fully meshed to k/2 aggregation switches, hosts
// attached round-robin across the edges. It is the per-shard slice of
// ClosTopology(3, k, oversub) used by the sharded fabric-scale
// scenarios: each causal domain simulates its own pod cell in full
// switch-level detail, and the core tier the pods would share is
// abstracted into the shard layer's boundary links (internal/shard) —
// the core carries only the declared cross-pod traffic, so modeling it
// per packet inside a single engine would recouple every pod for
// nothing. Switch indices are edges first, then aggs, matching the
// fat-tree builder's pod-major layout.
func PodTopology(radix int, oversub float64) Topology {
	if radix < 2 {
		radix = 4
	}
	if radix%2 != 0 {
		radix++
	}
	if oversub < 1 {
		oversub = 1
	}
	half := radix / 2
	t := Topology{
		Kind:      "pod",
		Tiers:     2,
		Radix:     radix,
		Oversub:   oversub,
		TierNames: []string{"edge", "agg"},
		TierOf:    make([]int, 2*half),
		Adj:       make([][]Link, 2*half),
		Leaves:    make([]int, half),
	}
	link := func(to int) Link { return Link{To: to, SpeedDiv: oversub, PropFactor: 1} }
	for e := 0; e < half; e++ {
		t.Leaves[e] = e
		for a := 0; a < half; a++ {
			t.Adj[e] = append(t.Adj[e], link(half+a))
		}
	}
	for a := 0; a < half; a++ {
		t.TierOf[half+a] = 1
		for e := 0; e < half; e++ {
			t.Adj[half+a] = append(t.Adj[half+a], link(e))
		}
	}
	return t
}

// SwitchCount returns the number of switches in the graph.
func (t Topology) SwitchCount() int { return len(t.Adj) }

// LinkCount returns the number of directed switch-to-switch links.
func (t Topology) LinkCount() int {
	n := 0
	for _, adj := range t.Adj {
		n += len(adj)
	}
	return n
}

// TierName returns the tier label of switch sw.
func (t Topology) TierName(sw int) string { return t.TierNames[t.TierOf[sw]] }

// Summary renders a one-line human description, used by `odpsim show`.
func (t Topology) Summary() string {
	s := t.Kind + ": " + strconv.Itoa(t.Tiers) + " tier(s)"
	if t.Radix > 0 {
		s += ", radix " + strconv.Itoa(t.Radix)
	}
	s += ", " + strconv.Itoa(t.SwitchCount()) + " switches, " +
		strconv.Itoa(t.LinkCount()) + " links, " +
		strconv.Itoa(len(t.Leaves)) + " host attach points"
	if t.Oversub > 1 {
		s += ", oversubscription " + strconv.FormatFloat(t.Oversub, 'g', -1, 64) + "x"
	}
	return s
}
