package congestion

import (
	"testing"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// TestVLQueueCapacityStopsGrowing pins the fix for the front-slicing
// leak: the old `p.q[vl] = p.q[vl][1:]` queue walked its backing array
// forward on every pop, so append re-allocated it on every burst and the
// consumed front stayed reachable. The ring buffer must reach a
// steady-state capacity on the first burst and never grow again for
// same-sized bursts.
func TestVLQueueCapacityStopsGrowing(t *testing.T) {
	h := newHarness(t, Config{Switches: 2, PFC: true})

	const burst = 200
	run := func() int {
		for i := 0; i < burst; i++ {
			h.send(1, 2, 1024)
		}
		h.eng.Run()
		return cap(h.net.uplink(1).q[VLData].buf)
	}

	warm := run()
	if warm == 0 {
		t.Fatal("uplink VL ring never grew: burst did not queue")
	}
	for round := 0; round < 5; round++ {
		if got := run(); got != warm {
			t.Fatalf("round %d: VL ring capacity %d, want steady-state %d — the queue re-allocates per burst",
				round, got, warm)
		}
	}
	if len(h.delivered) != 6*burst {
		t.Fatalf("delivered %d, want %d", len(h.delivered), 6*burst)
	}
}

// TestWireDelayLineKeepsHeapShallow pins the propagation delay-line
// property: no matter how many packets a 2 µs wire holds at once, each
// port contributes at most one scheduled callback (the head flight), so
// the engine's event heap stays shallow — the property that keeps the
// congested path's per-event cost flat at storm scale.
func TestWireDelayLineKeepsHeapShallow(t *testing.T) {
	h := newHarness(t, Config{Switches: 2, PFC: true})

	const burst = 512
	for i := 0; i < burst; i++ {
		h.send(1, 2, 64) // small frames: hundreds fit in one 2 µs flight
	}
	maxHeap := 0
	for h.eng.Step() {
		if q := h.eng.QueueLen(); q > maxHeap {
			maxHeap = q
		}
	}
	if len(h.delivered) != burst {
		t.Fatalf("delivered %d, want %d", len(h.delivered), burst)
	}
	// 2 switches: a handful of tx-done events plus one head flight per
	// port. Anything near the burst size means flights went back to
	// one-event-per-packet.
	if maxHeap > 16 {
		t.Errorf("event heap reached %d entries for a %d-packet burst, want ≤16 (one callback per wire)",
			maxHeap, burst)
	}
}

// TestScratchArenasRecycleAcrossGenerations checks the engine-generation
// arena contract: after an Engine.Reset, a rebuilt network reuses last
// generation's network, switch, port and entry storage instead of
// allocating fresh structs — while two networks built side by side in
// one generation stay distinct.
func TestScratchArenasRecycleAcrossGenerations(t *testing.T) {
	eng := sim.New(1)
	build := func() *Network {
		return NewNetwork(eng, Config{Switches: 2}, 56, 2*sim.Microsecond, Hooks{
			Deliver: func(dst uint16, pkt *packet.Packet, ws int) {},
			Drop:    func(src uint16, pkt *packet.Packet, reason string) {},
		})
	}

	n1 := build()
	pkt := &packet.Packet{SLID: 1, DLID: 2, Opcode: packet.OpWriteOnly, PayloadLen: 1024}
	n1.Send(1, 2, pkt, pkt.WireSize())
	eng.Run()
	sw1 := n1.switches[0]
	up1 := n1.uplink(1)

	if n2 := build(); n2 == n1 {
		t.Fatal("two networks in one generation share a struct")
	}

	eng.Reset(2)
	n3 := build()
	if n3 != n1 {
		t.Error("network struct not recycled across Reset")
	}
	if n3.switches[0] != sw1 {
		t.Error("switch struct not recycled across Reset")
	}
	n3.Send(1, 2, pkt, pkt.WireSize())
	eng.Run()
	if got := n3.uplink(1); got != up1 {
		t.Error("port struct not recycled across Reset")
	}
	if got := len(n3.switches); got != 2 {
		t.Fatalf("recycled network has %d switches, want 2", got)
	}
}
