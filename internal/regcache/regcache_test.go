package regcache

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

func newNIC(t *testing.T, seed int64) (*sim.Engine, *rnic.RNIC) {
	t.Helper()
	cl := cluster.ReedbushH().Build(seed, 1)
	return cl.Eng, cl.Nodes[0]
}

func buffers(nic *rnic.RNIC, n, size int) []hostmem.Addr {
	out := make([]hostmem.Addr, n)
	for i := range out {
		out[i] = nic.AS.Alloc(size)
		nic.AS.Touch(out[i], size)
	}
	return out
}

func TestDirectPinRegistersEveryTime(t *testing.T) {
	eng, nic := newNIC(t, 1)
	bufs := buffers(nic, 1, 4096)
	s := NewDirectPin(nic, DefaultCosts())
	trace := []TraceOp{{bufs[0], 4096}, {bufs[0], 4096}, {bufs[0], 4096}}
	res := RunWorkload(eng, s, trace)
	if res.Stats.Registrations != 3 || res.Stats.Deregistrations != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if s.PinnedBytes() != 0 {
		t.Error("everything should be unpinned at the end")
	}
	// 3 × (reg fixed + dereg fixed + 1 page pin) ≈ 3 × 132 µs.
	if res.Time < 300*sim.Microsecond || res.Time > 600*sim.Microsecond {
		t.Errorf("time = %v", res.Time)
	}
}

func TestPinDownCacheHits(t *testing.T) {
	eng, nic := newNIC(t, 2)
	bufs := buffers(nic, 1, 4096)
	s := NewPinDownCache(nic, DefaultCosts(), 1<<20)
	trace := []TraceOp{{bufs[0], 4096}, {bufs[0], 4096}, {bufs[0], 4096}}
	res := RunWorkload(eng, s, trace)
	if res.Stats.Registrations != 1 {
		t.Errorf("registrations = %d, want 1 (cached)", res.Stats.Registrations)
	}
	if res.Stats.Hits != 2 {
		t.Errorf("hits = %d", res.Stats.Hits)
	}
	if s.PinnedBytes() != 4096 {
		t.Errorf("pinned = %d (cache keeps the registration)", s.PinnedBytes())
	}
}

func TestPinDownCacheLRUEviction(t *testing.T) {
	eng, nic := newNIC(t, 3)
	bufs := buffers(nic, 3, 4096)
	s := NewPinDownCache(nic, DefaultCosts(), 2*4096) // room for 2
	trace := []TraceOp{
		{bufs[0], 4096}, {bufs[1], 4096},
		{bufs[0], 4096}, // refresh 0: 1 becomes LRU
		{bufs[2], 4096}, // evicts 1
		{bufs[0], 4096}, // still cached
		{bufs[1], 4096}, // re-register
	}
	res := RunWorkload(eng, s, trace)
	if res.Stats.Evictions != 2 {
		t.Errorf("evictions = %d, want 2 (1 then 0-or-2)", res.Stats.Evictions)
	}
	if res.Stats.Registrations != 4 {
		t.Errorf("registrations = %d, want 4", res.Stats.Registrations)
	}
	if res.MaxPinned > 2*4096 {
		t.Errorf("maxPinned = %d exceeds budget", res.MaxPinned)
	}
}

func TestPinDownCacheInUseNotEvicted(t *testing.T) {
	eng, nic := newNIC(t, 4)
	bufs := buffers(nic, 2, 4096)
	s := NewPinDownCache(nic, DefaultCosts(), 4096) // room for 1
	eng.Go("w", func(p *sim.Proc) {
		_, rel0 := s.Acquire(p, bufs[0], 4096)
		// Acquire a second while the first is in use: budget exceeded
		// rather than evicting a live registration.
		_, rel1 := s.Acquire(p, bufs[1], 4096)
		if s.PinnedBytes() != 2*4096 {
			panic("expected both pinned")
		}
		rel0()
		rel1()
	})
	eng.MustRun()
}

func TestBatchedDeregFlushes(t *testing.T) {
	eng, nic := newNIC(t, 5)
	bufs := buffers(nic, 6, 4096)
	s := NewBatchedDereg(nic, DefaultCosts(), 2*4096, 3)
	var trace []TraceOp
	for _, a := range bufs {
		trace = append(trace, TraceOp{a, 4096})
	}
	res := RunWorkload(eng, s, trace)
	if res.Stats.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// Deferred entries are eventually deregistered in batches.
	if res.Stats.Deregistrations == 0 || res.Stats.Deregistrations%3 != 0 {
		t.Errorf("deregistrations = %d, want a multiple of the batch", res.Stats.Deregistrations)
	}
}

func TestBatchedDeregCheaperThanEager(t *testing.T) {
	run := func(batched bool) sim.Time {
		eng, nic := newNIC(t, 6)
		bufs := buffers(nic, 32, 4096)
		var s Strategy
		if batched {
			s = NewBatchedDereg(nic, DefaultCosts(), 4*4096, 8)
		} else {
			s = NewPinDownCache(nic, DefaultCosts(), 4*4096)
		}
		var trace []TraceOp
		for round := 0; round < 4; round++ {
			for _, a := range bufs {
				trace = append(trace, TraceOp{a, 4096})
			}
		}
		return RunWorkload(eng, s, trace).Time
	}
	eager, batched := run(false), run(true)
	if batched >= eager {
		t.Errorf("batched dereg (%v) should beat eager (%v) on a thrashing trace", batched, eager)
	}
}

func TestCopyPathCrossover(t *testing.T) {
	// Frey & Alonso: below the threshold copying wins; above it pinning
	// wins. Compare per-operation time around 256 KiB.
	perOp := func(s Strategy, eng *sim.Engine, addr hostmem.Addr, size int) sim.Time {
		res := RunWorkload(eng, s, []TraceOp{{addr, size}})
		return res.Time
	}
	small := 16 << 10
	large := 1 << 20

	engA, nicA := newNIC(t, 7)
	bufA := buffers(nicA, 1, large)
	copySmall := perOp(NewCopyPath(nicA, DefaultCosts(), 256<<10, 1<<20), engA, bufA[0], small)

	engB, nicB := newNIC(t, 8)
	bufB := buffers(nicB, 1, large)
	pinSmall := perOp(NewDirectPin(nicB, DefaultCosts()), engB, bufB[0], small)

	if copySmall >= pinSmall {
		t.Errorf("16 KiB: copy (%v) should beat pin (%v)", copySmall, pinSmall)
	}

	engC, nicC := newNIC(t, 9)
	bufC := buffers(nicC, 1, large)
	cpLarge := NewCopyPath(nicC, DefaultCosts(), 256<<10, 1<<20)
	copyLargeRes := RunWorkload(engC, cpLarge, []TraceOp{{bufC[0], large}})
	// At 1 MiB the copy path itself pins directly (above threshold).
	if cpLarge.Stats().BytesCopied != 0 {
		t.Error("1 MiB transfer must bypass the bounce buffer")
	}
	if copyLargeRes.Stats.Registrations != 1 {
		t.Errorf("large transfer should direct-pin: %+v", copyLargeRes.Stats)
	}

	// And copying 1 MiB explicitly would be slower than that pin.
	engD, nicD := newNIC(t, 10)
	bufD := buffers(nicD, 1, large)
	cpForced := NewCopyPath(nicD, DefaultCosts(), 2<<20, 2<<20) // threshold above 1 MiB
	copyLarge := RunWorkload(engD, cpForced, []TraceOp{{bufD[0], large}}).Time
	if copyLarge <= copyLargeRes.Time {
		t.Errorf("1 MiB: pin (%v) should beat copy (%v)", copyLargeRes.Time, copyLarge)
	}
}

func TestODPOnceNoPinning(t *testing.T) {
	eng, nic := newNIC(t, 11)
	bufs := buffers(nic, 4, 4096)
	s := NewODPOnce(nic)
	var trace []TraceOp
	for round := 0; round < 3; round++ {
		for _, a := range bufs {
			trace = append(trace, TraceOp{a, 4096})
		}
	}
	res := RunWorkload(eng, s, trace)
	if res.MaxPinned != 0 {
		t.Error("ODP must pin nothing")
	}
	if res.Stats.Registrations != 4 {
		t.Errorf("registrations = %d, want one per buffer", res.Stats.Registrations)
	}
	if res.Time > 10*sim.Microsecond {
		t.Errorf("ODP registration should be nearly free, took %v", res.Time)
	}
}

func TestSyntheticTraceShape(t *testing.T) {
	eng, nic := newNIC(t, 12)
	trace := SyntheticTrace(eng, nic, 16, 4096, 1000, 0.25)
	if len(trace) != 1000 {
		t.Fatalf("trace length %d", len(trace))
	}
	counts := map[hostmem.Addr]int{}
	for _, op := range trace {
		counts[op.Addr]++
		if op.Len != 4096 {
			t.Fatal("wrong op size")
		}
	}
	if len(counts) < 5 {
		t.Error("trace should touch several buffers")
	}
	// The hot set (first 4 buffers) should absorb most accesses.
	hot := 0
	for addr, n := range counts {
		if addr < trace[0].Addr+hostmem.Addr(4*4096) {
			hot += n
		}
	}
	if hot < 600 {
		t.Errorf("hot set absorbed only %d/1000 accesses", hot)
	}
}

func TestStrategyComparisonOnReuseTrace(t *testing.T) {
	// The §VIII-A story: with reuse, the pin-down cache beats direct
	// pinning by a wide margin, and ODP matches it without pinning.
	results := map[string]WorkloadResult{}
	for _, mk := range []func(*sim.Engine, *rnic.RNIC) Strategy{
		func(_ *sim.Engine, n *rnic.RNIC) Strategy { return NewDirectPin(n, DefaultCosts()) },
		func(_ *sim.Engine, n *rnic.RNIC) Strategy { return NewPinDownCache(n, DefaultCosts(), 64<<12) },
		func(_ *sim.Engine, n *rnic.RNIC) Strategy { return NewODPOnce(n) },
	} {
		eng, nic := newNIC(t, 13)
		s := mk(eng, nic)
		trace := SyntheticTrace(eng, nic, 16, 4096, 500, 0.25)
		results[s.Name()] = RunWorkload(eng, s, trace)
	}
	if results["pin-down-cache"].Time >= results["direct-pin"].Time/5 {
		t.Errorf("cache (%v) should be ≫5× faster than direct (%v)",
			results["pin-down-cache"].Time, results["direct-pin"].Time)
	}
	if results["odp"].MaxPinned != 0 {
		t.Error("ODP footprint must be zero")
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	_, nic := newNIC(t, 14)
	for name, fn := range map[string]func(){
		"zero capacity": func() { NewPinDownCache(nic, DefaultCosts(), 0) },
		"zero batch":    func() { NewBatchedDereg(nic, DefaultCosts(), 4096, 0) },
		"tiny bounce":   func() { NewCopyPath(nic, DefaultCosts(), 1<<20, 1<<10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}
