// Package regcache implements the memory-registration management
// strategies the paper positions On-Demand Paging against (§I, §VIII-A):
//
//   - DirectPin — register and deregister around every communication
//     (the naive baseline whose runtime cost motivates everything else);
//   - PinDownCache — Tezuka et al.'s LRU cache of pinned registrations
//     bounded by a pinned-memory budget;
//   - BatchedDereg — Zhou et al.'s deferred deregistration, flushing
//     evictions in batches to amortize the per-deregistration cost;
//   - CopyPath — Frey & Alonso's bounce-buffer scheme: small messages are
//     copied through a preregistered region, large ones pinned directly
//     (they report the crossover around 256 KiB);
//   - ODPOnce — register the whole region once with ODP and never pin
//     (the productivity option whose pitfalls the paper studies).
//
// Each strategy exposes the same Acquire/Release interface so workloads
// and benchmarks can compare runtime cost and pinned-memory footprint.
package regcache

import (
	"fmt"

	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

// Costs models the fixed driver-side overheads of (de)registration and
// the copy bandwidth of the bounce path. Mietke et al. analyzed the
// Mellanox stack's registration path; the numbers here reproduce the
// relative magnitudes (registration dominated by pinning for large
// regions, fixed syscall/driver cost for small ones).
type Costs struct {
	RegFixed   sim.Time // ibv_reg_mr fixed cost
	DeregFixed sim.Time // ibv_dereg_mr fixed cost
	CopyGBps   float64  // memcpy bandwidth for the bounce path
}

// DefaultCosts calibrates the Frey & Alonso crossover near 256 KiB.
func DefaultCosts() Costs {
	return Costs{
		RegFixed:   90 * sim.Microsecond,
		DeregFixed: 40 * sim.Microsecond,
		CopyGBps:   2.0,
	}
}

// CopyTime returns the bounce-copy cost for n bytes.
func (c Costs) CopyTime(n int) sim.Time {
	return sim.Time(float64(n) / c.CopyGBps) // GB/s == bytes/ns
}

// Stats counts strategy activity.
type Stats struct {
	Registrations   uint64
	Deregistrations uint64
	Hits            uint64
	Misses          uint64
	Evictions       uint64
	BytesCopied     uint64
}

// Strategy manages registrations for communication buffers. Acquire
// returns the memory region to use for a transfer of [addr, addr+len) and
// a release callback; both may charge virtual time to the calling
// process.
type Strategy interface {
	Name() string
	Acquire(p *sim.Proc, addr hostmem.Addr, length int) (*rnic.MR, func())
	// PinnedBytes reports the strategy's current pinned footprint.
	PinnedBytes() int
	Stats() Stats
}

// --- DirectPin ---

type directPin struct {
	nic    *rnic.RNIC
	costs  Costs
	stats  Stats
	pinned int
}

// NewDirectPin registers around every communication.
func NewDirectPin(nic *rnic.RNIC, costs Costs) Strategy {
	return &directPin{nic: nic, costs: costs}
}

func (d *directPin) Name() string { return "direct-pin" }

func (d *directPin) Acquire(p *sim.Proc, addr hostmem.Addr, length int) (*rnic.MR, func()) {
	mr, pinCost := d.nic.RegisterMR(addr, length)
	d.stats.Registrations++
	d.pinned += length
	p.Sleep(d.costs.RegFixed + pinCost)
	return mr, func() {
		d.stats.Deregistrations++
		d.pinned -= length
		d.nic.DeregisterMR(mr)
		p.Sleep(d.costs.DeregFixed)
	}
}

func (d *directPin) PinnedBytes() int { return d.pinned }
func (d *directPin) Stats() Stats     { return d.stats }

// --- PinDownCache ---

type cacheEntry struct {
	mr     *rnic.MR
	addr   hostmem.Addr
	length int
	inUse  int
	// LRU links.
	prev, next *cacheEntry
}

type pinDownCache struct {
	nic      *rnic.RNIC
	costs    Costs
	capacity int // pinned-byte budget
	stats    Stats
	pinned   int
	entries  map[hostmem.Addr]*cacheEntry
	// head = most recently used; tail = least recently used.
	head, tail *cacheEntry

	// batch, when > 0, defers deregistrations and flushes them batch at
	// a time (Zhou et al.); deferred entries remain pinned until flush.
	batch    int
	deferred []*cacheEntry
}

// NewPinDownCache creates Tezuka et al.'s LRU pin-down cache with a
// pinned-byte budget.
func NewPinDownCache(nic *rnic.RNIC, costs Costs, capacityBytes int) Strategy {
	if capacityBytes <= 0 {
		panic("regcache: non-positive capacity")
	}
	return &pinDownCache{
		nic: nic, costs: costs, capacity: capacityBytes,
		entries: make(map[hostmem.Addr]*cacheEntry),
	}
}

// NewBatchedDereg creates the pin-down cache with batched deregistration:
// evicted entries are deregistered batch at a time.
func NewBatchedDereg(nic *rnic.RNIC, costs Costs, capacityBytes, batch int) Strategy {
	c := NewPinDownCache(nic, costs, capacityBytes).(*pinDownCache)
	if batch <= 0 {
		panic("regcache: non-positive batch")
	}
	c.batch = batch
	return c
}

func (c *pinDownCache) Name() string {
	if c.batch > 0 {
		return "batched-dereg"
	}
	return "pin-down-cache"
}

func (c *pinDownCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *pinDownCache) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// evictOne removes the least recently used idle entry; it reports whether
// one was found.
func (c *pinDownCache) evictOne(p *sim.Proc) bool {
	for e := c.tail; e != nil; e = e.prev {
		if e.inUse > 0 {
			continue
		}
		c.unlink(e)
		delete(c.entries, e.addr)
		c.stats.Evictions++
		if c.batch > 0 {
			c.deferred = append(c.deferred, e)
			if len(c.deferred) >= c.batch {
				c.flush(p)
			}
		} else {
			c.dereg(p, e)
		}
		return true
	}
	return false
}

func (c *pinDownCache) dereg(p *sim.Proc, e *cacheEntry) {
	c.nic.DeregisterMR(e.mr)
	c.pinned -= e.length
	c.stats.Deregistrations++
	p.Sleep(c.costs.DeregFixed)
}

// flush deregisters all deferred entries, amortizing the fixed cost: the
// batch pays one fixed cost plus a small per-entry cost.
func (c *pinDownCache) flush(p *sim.Proc) {
	if len(c.deferred) == 0 {
		return
	}
	for _, e := range c.deferred {
		c.nic.DeregisterMR(e.mr)
		c.pinned -= e.length
		c.stats.Deregistrations++
	}
	p.Sleep(c.costs.DeregFixed + sim.Time(len(c.deferred))*2*sim.Microsecond)
	c.deferred = c.deferred[:0]
}

func (c *pinDownCache) Acquire(p *sim.Proc, addr hostmem.Addr, length int) (*rnic.MR, func()) {
	if e, ok := c.entries[addr]; ok && e.length >= length {
		c.stats.Hits++
		c.unlink(e)
		c.pushFront(e)
		e.inUse++
		return e.mr, func() { e.inUse-- }
	}
	c.stats.Misses++
	// Make room (deferred entries still count as pinned).
	for c.pinned+c.deferredBytes()+length > c.capacity {
		if !c.evictOne(p) {
			break // everything is in use; exceed the budget rather than fail
		}
	}
	mr, pinCost := c.nic.RegisterMR(addr, length)
	c.pinned += length
	c.stats.Registrations++
	p.Sleep(c.costs.RegFixed + pinCost)
	e := &cacheEntry{mr: mr, addr: addr, length: length, inUse: 1}
	c.entries[addr] = e
	c.pushFront(e)
	return mr, func() { e.inUse-- }
}

func (c *pinDownCache) deferredBytes() int {
	n := 0
	for _, e := range c.deferred {
		n += e.length
	}
	return n
}

func (c *pinDownCache) PinnedBytes() int { return c.pinned + c.deferredBytes() }
func (c *pinDownCache) Stats() Stats     { return c.stats }

// --- CopyPath ---

type copyPath struct {
	nic       *rnic.RNIC
	costs     Costs
	threshold int
	bounce    *rnic.MR
	bounceSz  int
	direct    Strategy
	stats     Stats
}

// NewCopyPath copies messages below threshold bytes through a
// preregistered bounce buffer and pins larger ones directly (Frey &
// Alonso report ≈256 KiB as the break-even point).
func NewCopyPath(nic *rnic.RNIC, costs Costs, threshold, bounceBytes int) Strategy {
	if bounceBytes < threshold {
		panic("regcache: bounce buffer smaller than threshold")
	}
	addr := nic.AS.Alloc(bounceBytes)
	mr, _ := nic.RegisterMR(addr, bounceBytes)
	return &copyPath{
		nic: nic, costs: costs, threshold: threshold,
		bounce: mr, bounceSz: bounceBytes,
		direct: NewDirectPin(nic, costs),
	}
}

func (cp *copyPath) Name() string { return "copy-path" }

func (cp *copyPath) Acquire(p *sim.Proc, addr hostmem.Addr, length int) (*rnic.MR, func()) {
	if length < cp.threshold {
		cp.stats.Hits++
		cp.stats.BytesCopied += uint64(length)
		p.Sleep(cp.costs.CopyTime(length)) // copy in
		return cp.bounce, func() {
			cp.stats.BytesCopied += uint64(length)
			p.Sleep(cp.costs.CopyTime(length)) // copy out
		}
	}
	cp.stats.Misses++
	return cp.direct.Acquire(p, addr, length)
}

func (cp *copyPath) PinnedBytes() int { return cp.bounceSz + cp.direct.PinnedBytes() }

func (cp *copyPath) Stats() Stats {
	s := cp.stats
	d := cp.direct.Stats()
	s.Registrations += d.Registrations
	s.Deregistrations += d.Deregistrations
	return s
}

// --- ODPOnce ---

type odpOnce struct {
	nic   *rnic.RNIC
	mrs   map[hostmem.Addr]*rnic.MR
	stats Stats
}

// NewODPOnce registers each buffer once with ODP — no pinning, no
// footprint, but every first access costs a network page fault (and the
// pitfalls of the paper apply).
func NewODPOnce(nic *rnic.RNIC) Strategy {
	return &odpOnce{nic: nic, mrs: make(map[hostmem.Addr]*rnic.MR)}
}

func (o *odpOnce) Name() string { return "odp" }

func (o *odpOnce) Acquire(p *sim.Proc, addr hostmem.Addr, length int) (*rnic.MR, func()) {
	if mr, ok := o.mrs[addr]; ok && mr.Len >= length {
		o.stats.Hits++
		return mr, func() {}
	}
	o.stats.Misses++
	o.stats.Registrations++
	mr := o.nic.RegisterODPMR(addr, length)
	o.mrs[addr] = mr
	return mr, func() {}
}

func (o *odpOnce) PinnedBytes() int { return 0 }
func (o *odpOnce) Stats() Stats     { return o.stats }

// --- NPROnce ---

type nprOnce struct {
	nic   *rnic.RNIC
	mrs   map[hostmem.Addr]*rnic.MR
	stats Stats
}

// NewNPROnce registers each buffer once through the NP-RDMA shadow
// table: registration is as cheap as ODP, but the translation cost is a
// bounded synchronous driver migration (charged here at acquire time,
// the moment the driver would migrate for a host-initiated transfer)
// instead of a network page fault. The device must have EnableNPR on.
func NewNPROnce(nic *rnic.RNIC) Strategy {
	if nic.NPR() == nil {
		panic("regcache: NewNPROnce needs EnableNPR on the device")
	}
	return &nprOnce{nic: nic, mrs: make(map[hostmem.Addr]*rnic.MR)}
}

func (o *nprOnce) Name() string { return "npr" }

func (o *nprOnce) Acquire(p *sim.Proc, addr hostmem.Addr, length int) (*rnic.MR, func()) {
	mr, ok := o.mrs[addr]
	if ok && mr.Len >= length {
		o.stats.Hits++
	} else {
		o.stats.Misses++
		o.stats.Registrations++
		mr = o.nic.RegisterNPRMR(addr, length)
		o.mrs[addr] = mr
	}
	pool := o.nic.NPR()
	p.Sleep(pool.Acquire(addr, length))
	return mr, func() { pool.Release(addr, length) }
}

// PinnedBytes reports the pool's resident bytes: unlike ODP the NP-RDMA
// footprint is not zero, but it is bounded by the pool no matter how
// much is registered.
func (o *nprOnce) PinnedBytes() int { return o.nic.NPR().ResidentBytes() }
func (o *nprOnce) Stats() Stats     { return o.stats }

// --- Workload comparison ---

// WorkloadResult compares one strategy on a registration workload.
type WorkloadResult struct {
	Strategy  string
	Time      sim.Time
	MaxPinned int
	Stats     Stats
}

// String renders one comparison row.
func (w WorkloadResult) String() string {
	return fmt.Sprintf("%-15s time=%-12v maxPinned=%-10d regs=%-6d hits=%-6d evictions=%d",
		w.Strategy, w.Time, w.MaxPinned, w.Stats.Registrations, w.Stats.Hits, w.Stats.Evictions)
}

// RunWorkload replays a buffer-access trace (addresses must be
// pre-allocated in the RNIC's address space) against the strategy and
// measures total virtual time and peak pinned footprint. Each access
// models register→use→release without actual communication, isolating
// the registration cost the way §VIII-A's studies do.
func RunWorkload(eng *sim.Engine, s Strategy, trace []TraceOp) WorkloadResult {
	res := WorkloadResult{Strategy: s.Name()}
	eng.Go("workload", func(p *sim.Proc) {
		start := p.Now()
		for _, op := range trace {
			_, release := s.Acquire(p, op.Addr, op.Len)
			if pinned := s.PinnedBytes(); pinned > res.MaxPinned {
				res.MaxPinned = pinned
			}
			release()
		}
		res.Time = p.Now() - start
	})
	eng.MustRun()
	res.Stats = s.Stats()
	return res
}

// TraceOp is one buffer use in a registration workload.
type TraceOp struct {
	Addr hostmem.Addr
	Len  int
}

// SyntheticTrace builds a hot/cold buffer reuse trace: nBuffers buffers
// of size bytes each, accessed n times with the given hot-set fraction
// absorbing most accesses (the reuse pattern pin-down caches exploit).
func SyntheticTrace(eng *sim.Engine, nic *rnic.RNIC, nBuffers, size, n int, hotFraction float64) []TraceOp {
	addrs := make([]hostmem.Addr, nBuffers)
	for i := range addrs {
		addrs[i] = nic.AS.Alloc(size)
		nic.AS.Touch(addrs[i], size)
	}
	hot := int(float64(nBuffers) * hotFraction)
	if hot < 1 {
		hot = 1
	}
	trace := make([]TraceOp, n)
	for i := range trace {
		var idx int
		if eng.Bernoulli(0.9) {
			idx = eng.Rand().Intn(hot)
		} else {
			idx = eng.Rand().Intn(nBuffers)
		}
		trace[i] = TraceOp{Addr: addrs[idx], Len: size}
	}
	return trace
}
