package regcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
)

// TestPinDownCacheBudgetProperty: for any random access trace, the
// pin-down cache never exceeds its pinned-byte budget while no
// registration is in use, and cached hits never re-register.
func TestPinDownCacheBudgetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64, accessesRaw []uint8) bool {
		if len(accessesRaw) == 0 {
			return true
		}
		cl := cluster.ReedbushH().Build(seed, 1)
		nic := cl.Nodes[0]
		const nBufs, size = 12, hostmem.PageSize
		bufs := make([]hostmem.Addr, nBufs)
		for i := range bufs {
			bufs[i] = nic.AS.Alloc(size)
			nic.AS.Touch(bufs[i], size)
		}
		budget := 4 * size
		s := NewPinDownCache(nic, DefaultCosts(), budget).(*pinDownCache)

		ok := true
		cl.Eng.Go("w", func(p *sim.Proc) {
			for _, a := range accessesRaw {
				_, release := s.Acquire(p, bufs[int(a)%nBufs], size)
				release()
				// With everything released, the budget must hold.
				if s.PinnedBytes() > budget {
					ok = false
					return
				}
			}
		})
		cl.Eng.MustRun()
		if !ok {
			return false
		}
		st := s.Stats()
		// Conservation: every miss registered exactly once; evictions
		// cannot exceed registrations.
		if st.Misses != st.Registrations {
			return false
		}
		if st.Evictions > st.Registrations {
			return false
		}
		return st.Hits+st.Misses == uint64(len(accessesRaw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestNPROnceBoundProperty: for any random access trace against an
// NPR-enabled device, the pool never exceeds its byte bound, a
// translation is never served for an unmigrated page, and hit/miss
// accounting is conserved.
func TestNPROnceBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64, accessesRaw []uint8) bool {
		sys := cluster.ReedbushH()
		sys.MemMode = "npr"
		sys.NPRPoolBytes = 4 * hostmem.PageSize
		cl := sys.Build(seed, 1)
		nic := cl.Nodes[0]
		const nBufs, size = 12, hostmem.PageSize
		bufs := make([]hostmem.Addr, nBufs)
		for i := range bufs {
			bufs[i] = nic.AS.Alloc(size)
		}
		s := NewNPROnce(nic).(*nprOnce)
		pool := nic.NPR()

		ok := true
		cl.Eng.Go("w", func(p *sim.Proc) {
			for _, a := range accessesRaw {
				addr := bufs[int(a)%nBufs]
				mr, release := s.Acquire(p, addr, size)
				// The invariant the NIC relies on: whatever Acquire
				// handed out is translated right now, and the bound
				// held getting there.
				if !pool.Translated(addr, size) || mr == nil {
					ok = false
					return
				}
				if s.PinnedBytes() > sys.NPRPoolBytes {
					ok = false
					return
				}
				release()
			}
		})
		cl.Eng.MustRun()
		if !ok {
			return false
		}
		// A buffer never accessed must not be translated: the shadow
		// table serves migrated pages only.
		spare := nic.AS.Alloc(size)
		if pool.Translated(spare, size) {
			return false
		}
		st := s.Stats()
		if st.Hits+st.Misses != uint64(len(accessesRaw)) {
			return false
		}
		return st.Misses == st.Registrations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestCopyPathRoutingProperty: every access below the threshold copies,
// every access at/above it pins — no third path.
func TestCopyPathRoutingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, sizesRaw []uint16) bool {
		cl := cluster.ReedbushH().Build(seed, 1)
		nic := cl.Nodes[0]
		const threshold = 8 << 10
		cp := NewCopyPath(nic, DefaultCosts(), threshold, 64<<10).(*copyPath)
		buf := nic.AS.Alloc(64 << 10)
		nic.AS.Touch(buf, 64<<10)
		small, large := 0, 0
		cl.Eng.Go("w", func(p *sim.Proc) {
			for _, raw := range sizesRaw {
				size := 1 + int(raw)%(32<<10)
				_, release := cp.Acquire(p, buf, size)
				release()
				if size < threshold {
					small++
				} else {
					large++
				}
			}
		})
		cl.Eng.MustRun()
		st := cp.Stats()
		return int(st.Hits) == small && int(st.Registrations) == large
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}
