package telemetry

// The metric vocabulary, modeled on the counters a real mlx5 deployment
// exposes. Three families:
//
//   - `rdma statistic` / hw_counters names (local_ack_timeout_err, …):
//     kept verbatim so dashboards written against real devices read the
//     simulator unchanged;
//   - ODP counters (num_page_faults, …) as the mlx5 driver reports them
//     per device;
//   - sim_* names for quantities the simulator can observe but real
//     hardware does not export (ground truth like dammed drops — the very
//     invisibility the paper complains about — and software-visible
//     requester statistics).
//
// The counter-only diagnosers in internal/core consume only names an
// operator would realistically have: the hw_counter family plus the
// completion counters.

// Per-QP / per-device transport counters (`rdma statistic qp show`,
// /sys/class/infiniband/<dev>/ports/<n>/hw_counters).
const (
	// LocalAckTimeoutErr counts Local ACK Timeout expirations on the
	// requester — the counter that grows when packet damming rides out
	// the several-hundred-millisecond timeout.
	LocalAckTimeoutErr = "local_ack_timeout_err"
	// RNRNakRetryErr counts RNR NAKs received by the requester.
	RNRNakRetryErr = "rnr_nak_retry_err"
	// PacketSeqErr counts PSN sequence error NAKs received by the
	// requester.
	PacketSeqErr = "packet_seq_err"
	// OutOfSequence counts out-of-order request arrivals observed by the
	// responder (each answered with a sequence error NAK).
	OutOfSequence = "out_of_sequence"
	// DuplicateRequest counts requests the responder had already
	// executed (PSN below the expected one).
	DuplicateRequest = "duplicate_request"
	// OutOfBuffer counts responder RNR NAKs caused by an empty receive
	// queue (as opposed to an ODP translation miss).
	OutOfBuffer = "out_of_buffer"
	// RxReadRequests counts RDMA READ requests executed by the responder.
	RxReadRequests = "rx_read_requests"
	// RxWriteRequests counts RDMA WRITE requests executed by the responder.
	RxWriteRequests = "rx_write_requests"
	// RxAtomicRequests counts atomic requests executed by the responder.
	RxAtomicRequests = "rx_atomic_requests"
)

// Port counters (/sys/class/infiniband/<dev>/ports/<n>/counters). Data
// counters are in bytes (real port_xmit_data is in 32-bit lane words;
// the simulator does not model lanes).
const (
	PortXmitPackets  = "port_xmit_packets"
	PortRcvPackets   = "port_rcv_packets"
	PortXmitData     = "port_xmit_data"
	PortRcvData      = "port_rcv_data"
	PortXmitDiscards = "port_xmit_discards"
)

// ODP counters, per device, following the mlx5 driver's vocabulary.
const (
	// OdpPageFaults counts page-level network page faults entering host
	// resolution (num_page_faults).
	OdpPageFaults = "num_page_faults"
	// OdpInvalidations counts (QP, page) translations flushed by MMU
	// notifier invalidations.
	OdpInvalidations = "num_invalidations"
	// OdpPrefetches counts (QP, page) pairs prefetched via
	// ibv_advise_mr (num_prefetch).
	OdpPrefetches = "num_prefetch"
	// OdpPairFaults counts (QP, page) pair faults registered with the
	// pipeline — the unit Figure 11a's update batches are made of.
	OdpPairFaults = "num_pair_faults"
	// OdpStatusUpdates counts per-QP page-status updates completed —
	// the step whose starvation the paper names "update failure of page
	// statuses" (§VI-B).
	OdpStatusUpdates = "num_status_updates"
	// OdpSpuriousAccesses counts discarded retransmitted accesses on
	// still-stale pairs — the packet-flood feedback load.
	OdpSpuriousAccesses = "num_spurious_accesses"
	// OdpStalePairs gauges (QP, page) pairs faulted but not yet visible
	// ("update failures" currently outstanding).
	OdpStalePairs = "stale_pairs"
	// OdpPipelineDepth gauges queued items in the serial ODP pipeline.
	OdpPipelineDepth = "pipeline_depth"
)

// NP-RDMA counters, per device, for the no-pinning mitigation of
// internal/npr: driver-level translation through a bounded DMA-able pool
// instead of NIC page faults. Named in the mlx5 style the odp_* family
// uses, so a dashboard reads pin/odp/npr deployments uniformly.
const (
	// NprPoolBytes gauges the bytes currently resident in the DMA-able
	// migration pool.
	NprPoolBytes = "npr_pool_bytes"
	// NprMigrations counts cold pages migrated into the pool on demand.
	NprMigrations = "npr_migrations"
	// NprEvictions counts pool pages written back and evicted under
	// pressure.
	NprEvictions = "npr_evictions"
	// NprTranslationStalls counts accesses the driver stalled while it
	// migrated pages and updated the shadow translation table.
	NprTranslationStalls = "npr_translation_stalls"
)

// Completion counters: completions by work-completion status, labelled
// status="IBV_WC_…". Software sees these through the CQ, so the
// counter-only diagnosers may use them.
const (
	Completions = "completions"
)

// Simulator-side counters real hardware does not export. sim_dammed_drops
// is ground truth for the damming quirk — kept out of the diagnosers on
// purpose, since no real counter reveals it (§IX-A: the pitfalls are
// invisible without raw packets; the diagnosers show how close counters
// alone can get).
const (
	SimDammedDrops        = "sim_dammed_drops"
	SimRNRNakSent         = "sim_rnr_nak_sent"
	SimReqPosted          = "sim_req_posted"
	SimReqCompleted       = "sim_req_completed"
	SimRetransmits        = "sim_retransmits"
	SimResponsesDiscarded = "sim_responses_discarded"
	SimClientFaultRounds  = "sim_client_fault_rounds"
)

// Unreliable Datagram counters (per UD QP).
const (
	SimUDSent          = "sim_ud_sent"
	SimUDDelivered     = "sim_ud_delivered"
	SimUDDroppedNoRecv = "sim_ud_dropped_no_recv"
	SimUDDroppedFault  = "sim_ud_dropped_fault"
)

// Fabric-wide counters. SimFabricPacketsDropped carries a reason label
// (loss, unroutable, filter, congestion) so loss-injector drops and
// unknown-DLID drops are distinguishable; Snapshot.Total sums them.
const (
	SimFabricPacketsSent      = "sim_fabric_packets_sent"
	SimFabricPacketsDelivered = "sim_fabric_packets_delivered"
	SimFabricPacketsDropped   = "sim_fabric_packets_dropped"
	SimFabricBytesSent        = "sim_fabric_bytes_sent"
)

// Congestion-control counters, following the mlx5 ethtool/hw_counter
// vocabulary where one exists. The np_*/rp_* names are per-RNIC
// (notification point = the receiver that answers ECN marks with CNPs,
// reaction point = the sender whose rate the CNPs cut); the sim_switch_*
// names are per-switch ground truth labelled switch="swN".
const (
	// NpEcnMarked counts ECN-marked (congestion experienced) packets
	// received by the notification point.
	NpEcnMarked = "np_ecn_marked_roce_packets"
	// NpCnpSent counts CNPs the notification point sent back.
	NpCnpSent = "np_cnp_sent"
	// RpCnpHandled counts CNPs the reaction point received and applied a
	// rate cut for.
	RpCnpHandled = "rp_cnp_handled"
	// TxPauseDuration accumulates, in microseconds, how long this
	// device's uplink was paused by PFC frames from its switch (the
	// mlx5 pause-duration counters are in µs as well).
	TxPauseDuration = "tx_pause_duration"
	// TxPauseFrames counts PFC pause (XOFF) frames the switch fleet
	// sent; labelled per switch.
	SimSwitchPauseFrames = "sim_switch_pause_frames"
	// SimSwitchEcnMarked counts packets a switch marked CE at egress.
	SimSwitchEcnMarked = "sim_switch_ecn_marked"
	// SimSwitchDrops counts packets tail-dropped on switch buffer
	// overflow.
	SimSwitchDrops = "sim_switch_drops"
	// SimSwitchQueueBytes gauges a switch's shared-buffer occupancy.
	SimSwitchQueueBytes = "sim_switch_queue_bytes"
	// SimSwitchQueuePeak gauges the high-water mark of the shared
	// buffer across the run.
	SimSwitchQueuePeak = "sim_switch_queue_peak_bytes"
)

// IRN transport counters (the selective-repeat RC machine in
// internal/irn + internal/rnic). Registered only on devices with the irn
// transport enabled, so go-back-N runs keep their exact metric set.
const (
	// IrnSackSent counts SACK packets the responder sent for
	// out-of-order arrivals (cumulative ACK + reception bitmap).
	IrnSackSent = "irn_sack_sent"
	// IrnOooLanded counts request packets the responder accepted out of
	// order into the reorder buffer instead of NAKing the window.
	IrnOooLanded = "irn_ooo_landed"
	// IrnBdpStalls counts times the requester's pump stopped because
	// the outstanding bytes hit the BDP cap.
	IrnBdpStalls = "irn_bdp_stalls"
	// IrnRetransmitted counts selective (single-PSN) retransmissions —
	// the IRN analogue of the go-back-N Retransmits tail replay.
	IrnRetransmitted = "irn_retransmitted"
)
