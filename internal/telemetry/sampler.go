package telemetry

import "odpsim/internal/sim"

// TimeSeries is a sequence of snapshots taken on the sim clock — the raw
// material of the counter-only pitfall diagnosers.
type TimeSeries struct {
	Snaps []Snapshot
}

// Len returns the number of snapshots.
func (ts *TimeSeries) Len() int { return len(ts.Snaps) }

// Times returns the sampling instants.
func (ts *TimeSeries) Times() []sim.Time {
	out := make([]sim.Time, len(ts.Snaps))
	for i, s := range ts.Snaps {
		out[i] = s.At
	}
	return out
}

// Sum returns, per snapshot, the sum of every sample with the given name
// (across devices, ports and QPs) — the cluster-wide view of one counter
// over time.
func (ts *TimeSeries) Sum(name string) []float64 {
	out := make([]float64, len(ts.Snaps))
	for i, s := range ts.Snaps {
		out[i] = s.Total(name)
	}
	return out
}

// Sampler periodically scrapes a Hub on the simulation clock, like a
// monitoring agent polling `rdma statistic` at a fixed period. It follows
// the DummyPinger pattern: the scenario driver Starts it when the
// workload begins and Stops it when the workload ends, so the recurring
// timer never keeps the event loop alive on its own.
type Sampler struct {
	eng      *sim.Engine
	hub      *Hub
	interval sim.Time
	series   TimeSeries
	timer    sim.Timer
	running  bool
}

// NewSampler creates a sampler scraping hub every interval; intervals
// below 1 µs are clamped to 1 µs to keep runaway schedules impossible.
func NewSampler(eng *sim.Engine, hub *Hub, interval sim.Time) *Sampler {
	if interval < sim.Microsecond {
		interval = sim.Microsecond
	}
	return &Sampler{eng: eng, hub: hub, interval: interval}
}

// Start takes an immediate sample and then one every interval until Stop.
func (s *Sampler) Start() {
	if s.running {
		return
	}
	s.running = true
	s.sample()
	s.arm()
}

func (s *Sampler) arm() {
	s.timer = s.eng.After(s.interval, func() {
		if !s.running {
			return
		}
		s.sample()
		s.arm()
	})
}

func (s *Sampler) sample() {
	s.series.Snaps = append(s.series.Snaps, s.hub.Snapshot(s.eng.Now()))
}

// Stop cancels the schedule and takes one final sample (unless one was
// already taken at the current instant), so the series always records the
// workload's end state.
func (s *Sampler) Stop() {
	if !s.running {
		return
	}
	s.running = false
	s.timer.Cancel()
	if n := len(s.series.Snaps); n == 0 || s.series.Snaps[n-1].At != s.eng.Now() {
		s.sample()
	}
}

// Series returns the snapshots collected so far.
func (s *Sampler) Series() *TimeSeries { return &s.series }
