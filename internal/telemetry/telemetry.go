// Package telemetry is the simulator's vendor-counter observability
// layer: the equivalent of the mlx5 hardware counters an operator reads
// with `rdma statistic` or from sysfs when packet capture is unavailable.
// The paper diagnosed its pitfalls from ibdump traces, but notes that in
// production that visibility rarely exists — counters are the practical
// interface to RDMA pathologies, which is why internal/core grows
// counter-only diagnosers on top of this package.
//
// The design is read-side: components keep counting into plain uint64
// fields exactly as before (a single increment on the hot path, no
// indirection), and the registry holds *pointers* to those fields plus
// callback-backed gauges. A Snapshot reads every registered metric at one
// virtual instant; snapshots subtract to deltas; a Sampler scrapes a Hub
// of registries periodically on the sim clock into a TimeSeries; export
// helpers render Prometheus text exposition and CSV. Because the struct
// field *is* the counter's storage, the pre-existing exported fields
// (rnic.RNIC.DammedDrops, odp.Engine.Faults, …) remain valid read-through
// accessors of the registry values.
//
// Everything is deterministic: snapshots are sorted by (name, labels),
// values are read in registration order, and the only clock is sim.Time —
// two runs of the same seeded scenario produce byte-identical exports.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"odpsim/internal/sim"
)

// Kind distinguishes monotonically increasing counters from
// instantaneous gauges.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
)

// String implements fmt.Stringer with the Prometheus type names.
func (k Kind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// Labels attach dimensions to a metric, e.g. {"device": "node0",
// "qpn": "3"}. They render sorted by key, so map order never leaks into
// output.
type Labels map[string]string

// renderLabels merges common and specific labels (specific wins) into the
// canonical `{k="v",…}` form, or "" when there are none.
func renderLabels(common, specific Labels) string {
	merged := make(map[string]string, len(common)+len(specific))
	for k, v := range common {
		merged[k] = v
	}
	for k, v := range specific {
		merged[k] = v
	}
	if len(merged) == 0 {
		return ""
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, merged[k])
	}
	b.WriteByte('}')
	return b.String()
}

// metric is one registered counter or gauge.
type metric struct {
	name    string
	help    string
	kind    Kind
	labels  string // canonical rendered form
	counter *uint64
	gauge   func() float64
}

// Registry holds the metrics of one component (a device, the fabric).
// Registration happens at construction time; reads happen at snapshot
// time. The zero value is not usable; create with NewRegistry.
type Registry struct {
	common  Labels
	metrics []*metric
	seen    map[string]bool // name+labels, to reject duplicates
}

// NewRegistry creates a registry whose metrics all carry the common
// labels (typically {"device": name}).
func NewRegistry(common Labels) *Registry {
	return &Registry{common: common, seen: make(map[string]bool)}
}

func (r *Registry) add(m *metric, specific Labels) {
	m.labels = renderLabels(r.common, specific)
	key := m.name + m.labels
	if r.seen[key] {
		panic(fmt.Sprintf("telemetry: duplicate metric %s%s", m.name, m.labels))
	}
	r.seen[key] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers a pointer-backed counter: v is the live storage, so
// the owning component keeps incrementing its field directly and the
// registry observes it for free.
func (r *Registry) Counter(name, help string, labels Labels, v *uint64) {
	if v == nil {
		panic("telemetry: Counter requires non-nil storage")
	}
	r.add(&metric{name: name, help: help, kind: KindCounter, counter: v}, labels)
}

// Gauge registers a callback-backed gauge, read at snapshot time. read
// must only touch simulation state (it runs on the event loop).
func (r *Registry) Gauge(name, help string, labels Labels, read func() float64) {
	if read == nil {
		panic("telemetry: Gauge requires a read callback")
	}
	r.add(&metric{name: name, help: help, kind: KindGauge, gauge: read}, labels)
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Sample is one metric's value at one instant.
type Sample struct {
	Name   string
	Labels string // canonical `{k="v",…}` form, "" when unlabelled
	Help   string
	Kind   Kind
	Value  float64
}

// Snapshot is a consistent reading of every metric at one virtual
// instant, sorted by (Name, Labels).
type Snapshot struct {
	At      sim.Time
	Samples []Sample
}

// snapshotInto appends this registry's current values.
func (r *Registry) snapshotInto(out []Sample) []Sample {
	for _, m := range r.metrics {
		s := Sample{Name: m.name, Labels: m.labels, Help: m.help, Kind: m.kind}
		if m.kind == KindCounter {
			s.Value = float64(*m.counter)
		} else {
			s.Value = m.gauge()
		}
		out = append(out, s)
	}
	return out
}

// Snapshot reads the registry at virtual time at.
func (r *Registry) Snapshot(at sim.Time) Snapshot {
	return finishSnapshot(at, r.snapshotInto(nil))
}

func finishSnapshot(at sim.Time, samples []Sample) Snapshot {
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return samples[i].Labels < samples[j].Labels
	})
	return Snapshot{At: at, Samples: samples}
}

// Get returns the value of the sample with the given name and rendered
// labels, and whether it exists.
func (s Snapshot) Get(name, labels string) (float64, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool {
		if s.Samples[i].Name != name {
			return s.Samples[i].Name > name
		}
		return s.Samples[i].Labels >= labels
	})
	if i < len(s.Samples) && s.Samples[i].Name == name && s.Samples[i].Labels == labels {
		return s.Samples[i].Value, true
	}
	return 0, false
}

// Total sums every sample with the given name across all label sets —
// e.g. per-QP local_ack_timeout_err over the whole cluster.
func (s Snapshot) Total(name string) float64 {
	var sum float64
	for _, smp := range s.Samples {
		if smp.Name == name {
			sum += smp.Value
		}
	}
	return sum
}

// Delta returns cur - prev per metric: counters become differences,
// gauges keep their current value. Metrics absent from prev (e.g. QPs
// created mid-run) count from zero.
func Delta(prev, cur Snapshot) Snapshot {
	type key struct{ name, labels string }
	old := make(map[key]float64, len(prev.Samples))
	for _, s := range prev.Samples {
		old[key{s.Name, s.Labels}] = s.Value
	}
	out := Snapshot{At: cur.At, Samples: make([]Sample, len(cur.Samples))}
	copy(out.Samples, cur.Samples)
	for i := range out.Samples {
		if out.Samples[i].Kind == KindCounter {
			out.Samples[i].Value -= old[key{out.Samples[i].Name, out.Samples[i].Labels}]
		}
	}
	return out
}

// Hub aggregates the registries of a whole simulation (fabric + every
// device) so one scrape sees the cluster the way a monitoring agent sees
// a host's /sys/class/infiniband tree.
type Hub struct {
	regs []*Registry
}

// NewHub creates a hub over the given registries.
func NewHub(regs ...*Registry) *Hub { return &Hub{regs: regs} }

// Add attaches another registry.
func (h *Hub) Add(r *Registry) { h.regs = append(h.regs, r) }

// Snapshot reads every registry at virtual time at.
func (h *Hub) Snapshot(at sim.Time) Snapshot {
	var samples []Sample
	for _, r := range h.regs {
		samples = r.snapshotInto(samples)
	}
	return finishSnapshot(at, samples)
}
