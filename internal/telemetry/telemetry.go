// Package telemetry is the simulator's vendor-counter observability
// layer: the equivalent of the mlx5 hardware counters an operator reads
// with `rdma statistic` or from sysfs when packet capture is unavailable.
// The paper diagnosed its pitfalls from ibdump traces, but notes that in
// production that visibility rarely exists — counters are the practical
// interface to RDMA pathologies, which is why internal/core grows
// counter-only diagnosers on top of this package.
//
// The design is read-side: components keep counting into plain uint64
// fields exactly as before (a single increment on the hot path, no
// indirection), and the registry holds *pointers* to those fields plus
// callback-backed gauges. A Snapshot reads every registered metric at one
// virtual instant; snapshots subtract to deltas; a Sampler scrapes a Hub
// of registries periodically on the sim clock into a TimeSeries; export
// helpers render Prometheus text exposition and CSV. Because the struct
// field *is* the counter's storage, the pre-existing exported fields
// (rnic.RNIC.DammedDrops, odp.Engine.Faults, …) remain valid read-through
// accessors of the registry values.
//
// Everything is deterministic: snapshots are sorted by (name, labels),
// values are read in registration order, and the only clock is sim.Time —
// two runs of the same seeded scenario produce byte-identical exports.
package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"odpsim/internal/sim"
)

// Kind distinguishes monotonically increasing counters from
// instantaneous gauges.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
)

// String implements fmt.Stringer with the Prometheus type names.
func (k Kind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// Labels attach dimensions to a metric, e.g. {"device": "node0",
// "qpn": "3"}. They render sorted by key, so map order never leaks into
// output. The registry renders labels at registration time, so callers
// may reuse (and mutate) one Labels map across registrations — rnic's
// per-status counters register through a single map this way.
type Labels map[string]string

// labelPair is one rendered label dimension.
type labelPair struct{ k, v string }

// sortPairs orders pairs by key with an insertion sort: label sets are a
// handful of entries, and unlike sort.Slice this allocates nothing.
func sortPairs(pairs []labelPair) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].k < pairs[j-1].k; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

// internLabels is a process-wide table of rendered label strings. Sweeps
// rebuild every registry per trial with the same device names, so after
// the first trial every render is a cache hit and allocates nothing. The
// mutex (not sync.Map) keeps lookups allocation-free; parallel sweep
// workers contend only for the duration of one map access.
var (
	internMu     sync.Mutex
	internLabels = make(map[string]string)
)

// intern returns the canonical string for rendered, allocating only the
// first time a label set is seen process-wide. The map lookup keyed by
// string(rendered) does not allocate (compiler optimization).
func intern(rendered []byte) string {
	internMu.Lock()
	s, ok := internLabels[string(rendered)]
	if !ok {
		s = string(rendered)
		internLabels[s] = s
	}
	internMu.Unlock()
	return s
}

// metric is one registered counter or gauge.
type metric struct {
	name    string
	help    string
	kind    Kind
	labels  string // canonical rendered form
	counter *uint64
	gauge   func() float64
}

// Registry holds the metrics of one component (a device, the fabric).
// Registration happens at construction time; reads happen at snapshot
// time. The zero value is not usable; create with NewRegistry.
//
// Registration runs per simulated device per trial, so it is built to
// stay off the allocator: metrics are stored by value, label rendering
// reuses scratch buffers and caches the last rendered label set
// (registrations arrive in runs sharing one Labels map), and duplicate
// detection scans the metric table instead of keeping a side map.
type Registry struct {
	common    []labelPair // sorted by key
	commonStr string      // rendered form of common alone
	metrics   []metric

	// Render cache and scratch. lastSpecific/lastRendered memoize the
	// most recent non-empty specific label set; pairScratch and
	// bufScratch are reused across renders.
	lastSpecific []labelPair
	lastRendered string
	haveLast     bool
	pairScratch  []labelPair
	bufScratch   []byte
}

// NewRegistry creates a registry whose metrics all carry the common
// labels (typically {"device": name}).
func NewRegistry(common Labels) *Registry {
	r := &Registry{metrics: make([]metric, 0, 32)}
	if len(common) > 0 {
		r.common = make([]labelPair, 0, len(common))
		for k, v := range common {
			r.common = append(r.common, labelPair{k, v})
		}
		sortPairs(r.common)
		r.commonStr = intern(r.renderPairs(r.common))
	}
	return r
}

// regPoolKey is the engine Aux key registry storage lives under.
const regPoolKey = "telemetry.registries"

// regPool recycles registries (and hubs) across engine generations:
// sweeps rebuild every device per trial under the same names, so each
// trial's NewRegistryOn calls get back last trial's registry with its
// metric table, label scratch and render cache intact. Same-name
// registries within one generation get distinct instances, handed out in
// construction order (which is deterministic).
type regPool struct {
	gen    uint64
	byName map[string]*regList
	hubs   []*Hub
	hubUse int
}

type regList struct {
	all  []*Registry
	next int
}

func poolFor(eng *sim.Engine) *regPool {
	p, _ := eng.Aux(regPoolKey).(*regPool)
	if p == nil {
		p = &regPool{byName: make(map[string]*regList)}
		eng.SetAux(regPoolKey, p)
	}
	if gen := eng.Generation() + 1; p.gen != gen {
		p.gen = gen
		for _, l := range p.byName {
			l.next = 0
		}
		p.hubUse = 0
	}
	return p
}

// NewRegistryOn is NewRegistry with engine-generation recycling: name
// must identify the component uniquely enough that its common labels are
// the same every trial (the device name serves). After an engine Reset,
// the registry registered under name last run is returned emptied of
// metrics but keeping its storage.
func NewRegistryOn(eng *sim.Engine, name string, common Labels) *Registry {
	p := poolFor(eng)
	l := p.byName[name]
	if l == nil {
		l = &regList{}
		p.byName[name] = l
	}
	if l.next < len(l.all) {
		r := l.all[l.next]
		l.next++
		r.metrics = r.metrics[:0]
		return r
	}
	r := NewRegistry(common)
	l.all = append(l.all, r)
	l.next = len(l.all)
	return r
}

// renderPairs renders sorted pairs into the reusable byte scratch in the
// canonical `{k="v",…}` form; the result is valid until the next render.
func (r *Registry) renderPairs(pairs []labelPair) []byte {
	if len(pairs) == 0 {
		return nil
	}
	if r.bufScratch == nil {
		r.bufScratch = make([]byte, 0, 96)
	}
	buf := append(r.bufScratch[:0], '{')
	for i, p := range pairs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, p.k...)
		buf = append(buf, '=')
		buf = strconv.AppendQuote(buf, p.v)
	}
	buf = append(buf, '}')
	r.bufScratch = buf
	return buf
}

// render merges the common labels with specific (specific wins) into the
// canonical sorted `{k="v",…}` form, or "" when there are none.
func (r *Registry) render(specific Labels) string {
	if len(specific) == 0 {
		return r.commonStr
	}
	if r.haveLast && len(specific) == len(r.lastSpecific) {
		same := true
		for _, p := range r.lastSpecific {
			if specific[p.k] != p.v {
				same = false
				break
			}
		}
		if same {
			return r.lastRendered
		}
	}
	if r.pairScratch == nil {
		r.pairScratch = make([]labelPair, 0, 8)
		r.lastSpecific = make([]labelPair, 0, 8)
	}
	pairs := r.pairScratch[:0]
	for _, p := range r.common {
		if _, overridden := specific[p.k]; !overridden {
			pairs = append(pairs, p)
		}
	}
	for k, v := range specific {
		pairs = append(pairs, labelPair{k, v})
	}
	sortPairs(pairs)
	r.pairScratch = pairs
	rendered := intern(r.renderPairs(pairs))
	r.lastSpecific = r.lastSpecific[:0]
	for k, v := range specific {
		r.lastSpecific = append(r.lastSpecific, labelPair{k, v})
	}
	r.lastRendered = rendered
	r.haveLast = true
	return rendered
}

func (r *Registry) add(m metric, specific Labels) {
	m.labels = r.render(specific)
	for i := range r.metrics {
		if r.metrics[i].name == m.name && r.metrics[i].labels == m.labels {
			panic(fmt.Sprintf("telemetry: duplicate metric %s%s", m.name, m.labels))
		}
	}
	r.metrics = append(r.metrics, m)
}

// Counter registers a pointer-backed counter: v is the live storage, so
// the owning component keeps incrementing its field directly and the
// registry observes it for free.
func (r *Registry) Counter(name, help string, labels Labels, v *uint64) {
	if v == nil {
		panic("telemetry: Counter requires non-nil storage")
	}
	r.add(metric{name: name, help: help, kind: KindCounter, counter: v}, labels)
}

// Gauge registers a callback-backed gauge, read at snapshot time. read
// must only touch simulation state (it runs on the event loop).
func (r *Registry) Gauge(name, help string, labels Labels, read func() float64) {
	if read == nil {
		panic("telemetry: Gauge requires a read callback")
	}
	r.add(metric{name: name, help: help, kind: KindGauge, gauge: read}, labels)
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Sample is one metric's value at one instant.
type Sample struct {
	Name   string
	Labels string // canonical `{k="v",…}` form, "" when unlabelled
	Help   string
	Kind   Kind
	Value  float64
}

// Snapshot is a consistent reading of every metric at one virtual
// instant, sorted by (Name, Labels).
type Snapshot struct {
	At      sim.Time
	Samples []Sample
}

// snapshotInto appends this registry's current values.
func (r *Registry) snapshotInto(out []Sample) []Sample {
	for i := range r.metrics {
		m := &r.metrics[i]
		s := Sample{Name: m.name, Labels: m.labels, Help: m.help, Kind: m.kind}
		if m.kind == KindCounter {
			s.Value = float64(*m.counter)
		} else {
			s.Value = m.gauge()
		}
		out = append(out, s)
	}
	return out
}

// Snapshot reads the registry at virtual time at.
func (r *Registry) Snapshot(at sim.Time) Snapshot {
	return finishSnapshot(at, r.snapshotInto(make([]Sample, 0, len(r.metrics))))
}

// sampleLess orders samples by (Name, Labels).
func sampleLess(a, b *Sample) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Labels < b.Labels
}

func finishSnapshot(at sim.Time, samples []Sample) Snapshot {
	// Insertion sort: stable, allocation-free (sort.Stable boxes the
	// slice into an interface), and cheap here because registries emit
	// samples in near-sorted runs.
	for i := 1; i < len(samples); i++ {
		if !sampleLess(&samples[i], &samples[i-1]) {
			continue
		}
		s := samples[i]
		j := i - 1
		for j >= 0 && sampleLess(&s, &samples[j]) {
			samples[j+1] = samples[j]
			j--
		}
		samples[j+1] = s
	}
	return Snapshot{At: at, Samples: samples}
}

// Get returns the value of the sample with the given name and rendered
// labels, and whether it exists.
func (s Snapshot) Get(name, labels string) (float64, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool {
		if s.Samples[i].Name != name {
			return s.Samples[i].Name > name
		}
		return s.Samples[i].Labels >= labels
	})
	if i < len(s.Samples) && s.Samples[i].Name == name && s.Samples[i].Labels == labels {
		return s.Samples[i].Value, true
	}
	return 0, false
}

// Total sums every sample with the given name across all label sets —
// e.g. per-QP local_ack_timeout_err over the whole cluster.
func (s Snapshot) Total(name string) float64 {
	var sum float64
	for _, smp := range s.Samples {
		if smp.Name == name {
			sum += smp.Value
		}
	}
	return sum
}

// Delta returns cur - prev per metric: counters become differences,
// gauges keep their current value. Metrics absent from prev (e.g. QPs
// created mid-run) count from zero.
func Delta(prev, cur Snapshot) Snapshot {
	type key struct{ name, labels string }
	old := make(map[key]float64, len(prev.Samples))
	for _, s := range prev.Samples {
		old[key{s.Name, s.Labels}] = s.Value
	}
	out := Snapshot{At: cur.At, Samples: make([]Sample, len(cur.Samples))}
	copy(out.Samples, cur.Samples)
	for i := range out.Samples {
		if out.Samples[i].Kind == KindCounter {
			out.Samples[i].Value -= old[key{out.Samples[i].Name, out.Samples[i].Labels}]
		}
	}
	return out
}

// Hub aggregates the registries of a whole simulation (fabric + every
// device) so one scrape sees the cluster the way a monitoring agent sees
// a host's /sys/class/infiniband tree.
type Hub struct {
	regs []*Registry
}

// NewHub creates a hub over the given registries.
func NewHub(regs ...*Registry) *Hub { return &Hub{regs: regs} }

// NewHubOn creates an empty hub recycled through the engine's registry
// pool, keeping its registry list's backing array across trials.
func NewHubOn(eng *sim.Engine) *Hub {
	p := poolFor(eng)
	if p.hubUse < len(p.hubs) {
		h := p.hubs[p.hubUse]
		p.hubUse++
		h.regs = h.regs[:0]
		return h
	}
	h := &Hub{}
	p.hubs = append(p.hubs, h)
	p.hubUse = len(p.hubs)
	return h
}

// Add attaches another registry.
func (h *Hub) Add(r *Registry) { h.regs = append(h.regs, r) }

// Snapshot reads every registry at virtual time at.
func (h *Hub) Snapshot(at sim.Time) Snapshot {
	n := 0
	for _, r := range h.regs {
		n += r.Len()
	}
	samples := make([]Sample, 0, n)
	for _, r := range h.regs {
		samples = r.snapshotInto(samples)
	}
	return finishSnapshot(at, samples)
}
