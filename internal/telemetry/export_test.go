package telemetry

import (
	"strings"
	"testing"
)

// buildGoldenRegistry assembles a small fixed registry whose exports the
// golden tests pin byte for byte.
func buildGoldenRegistry() (*Registry, *uint64) {
	r := NewRegistry(Labels{"device": "node0"})
	var timeouts, faults uint64 = 3, 12
	r.Counter(LocalAckTimeoutErr, "Local ACK Timeout expirations", Labels{"qpn": "1"}, &timeouts)
	r.Counter(OdpPageFaults, "ODP page faults", nil, &faults)
	depth := 2.5
	r.Gauge(OdpPipelineDepth, "pending ODP work items", nil, func() float64 { return depth })
	return r, &timeouts
}

func TestGoldenPrometheus(t *testing.T) {
	r, _ := buildGoldenRegistry()
	var b strings.Builder
	if err := r.Snapshot(1500).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP local_ack_timeout_err Local ACK Timeout expirations
# TYPE local_ack_timeout_err counter
local_ack_timeout_err{device="node0",qpn="1"} 3
# HELP num_page_faults ODP page faults
# TYPE num_page_faults counter
num_page_faults{device="node0"} 12
# HELP pipeline_depth pending ODP work items
# TYPE pipeline_depth gauge
pipeline_depth{device="node0"} 2.5
`
	if got := b.String(); got != want {
		t.Errorf("Prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestGoldenSnapshotCSV(t *testing.T) {
	r, _ := buildGoldenRegistry()
	var b strings.Builder
	if err := r.Snapshot(1500).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := `time_ns,name,labels,value
1500,local_ack_timeout_err,"{device=\"node0\",qpn=\"1\"}",3
1500,num_page_faults,"{device=\"node0\"}",12
1500,pipeline_depth,"{device=\"node0\"}",2.5
`
	if got := b.String(); got != want {
		t.Errorf("CSV output:\n%s\nwant:\n%s", got, want)
	}
}

func TestGoldenTimeSeriesCSV(t *testing.T) {
	r, timeouts := buildGoldenRegistry()
	var ts TimeSeries
	ts.Snaps = append(ts.Snaps, r.Snapshot(0))
	*timeouts = 5
	ts.Snaps = append(ts.Snaps, r.Snapshot(1000))

	var b strings.Builder
	if err := ts.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if strings.Count(got, "time_ns,name,labels,value") != 1 {
		t.Error("header must appear exactly once")
	}
	if !strings.Contains(got, `0,local_ack_timeout_err,"{device=\"node0\",qpn=\"1\"}",3`) ||
		!strings.Contains(got, `1000,local_ack_timeout_err,"{device=\"node0\",qpn=\"1\"}",5`) {
		t.Errorf("missing rows:\n%s", got)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		-7:      "-7",
		2.5:     "2.5",
		1e15:    "1e+15", // beyond exact-int range: float form
		0.03125: "0.03125",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
