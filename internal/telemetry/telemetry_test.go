package telemetry

import (
	"testing"

	"odpsim/internal/sim"
)

func TestLabelsRenderSortedAndMerged(t *testing.T) {
	r := NewRegistry(Labels{"device": "node0", "zone": "a"})
	var v uint64
	r.Counter("x", "h", Labels{"qpn": "3", "zone": "b"}, &v)
	s := r.Snapshot(0)
	want := `{device="node0",qpn="3",zone="b"}`
	if got := s.Samples[0].Labels; got != want {
		t.Errorf("labels = %s, want %s (sorted keys, specific wins)", got, want)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry(nil)
	var v uint64
	r.Counter("dup", "h", nil, &v)
	mustPanic("duplicate", func() { r.Counter("dup", "h", nil, &v) })
	mustPanic("nil counter", func() { r.Counter("niladic", "h", nil, nil) })
	mustPanic("nil gauge", func() { r.Gauge("g", "h", nil, nil) })
	// Same name under different labels is fine.
	r.Counter("dup", "h", Labels{"qpn": "1"}, &v)
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestSnapshotReadsLiveStorage(t *testing.T) {
	r := NewRegistry(Labels{"device": "d"})
	var hits uint64
	depth := 7.0
	r.Counter("hits", "h", nil, &hits)
	r.Gauge("depth", "h", nil, func() float64 { return depth })

	s0 := r.Snapshot(0)
	hits = 41
	depth = 3
	s1 := r.Snapshot(10)

	if v, _ := s0.Get("hits", `{device="d"}`); v != 0 {
		t.Errorf("s0 hits = %v", v)
	}
	if v, ok := s1.Get("hits", `{device="d"}`); !ok || v != 41 {
		t.Errorf("s1 hits = %v %v", v, ok)
	}
	if v, _ := s1.Get("depth", `{device="d"}`); v != 3 {
		t.Errorf("s1 depth = %v", v)
	}
	if _, ok := s1.Get("absent", ""); ok {
		t.Error("Get(absent) = ok")
	}
	// s0 must be unaffected by later increments (values copied out).
	if v, _ := s0.Get("hits", `{device="d"}`); v != 0 {
		t.Error("snapshot aliased live storage")
	}
}

func TestSnapshotSortedAndTotal(t *testing.T) {
	ra := NewRegistry(Labels{"device": "b"})
	rb := NewRegistry(Labels{"device": "a"})
	var x, y, z uint64 = 1, 2, 4
	ra.Counter("m", "h", nil, &x)
	rb.Counter("m", "h", nil, &y)
	rb.Counter("aaa", "h", nil, &z)
	s := NewHub(ra, rb).Snapshot(5)
	if s.At != 5 {
		t.Errorf("At = %v", s.At)
	}
	for i := 1; i < len(s.Samples); i++ {
		a, b := s.Samples[i-1], s.Samples[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Labels > b.Labels) {
			t.Fatalf("unsorted: %v before %v", a, b)
		}
	}
	if got := s.Total("m"); got != 3 {
		t.Errorf("Total(m) = %v, want 3", got)
	}
	if got := s.Total("absent"); got != 0 {
		t.Errorf("Total(absent) = %v", got)
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry(nil)
	var c uint64 = 10
	g := 100.0
	r.Counter("c", "h", nil, &c)
	r.Gauge("g", "h", nil, func() float64 { return g })
	prev := r.Snapshot(0)
	c, g = 25, 60
	// A metric born after prev: counts from zero.
	var born uint64 = 5
	r.Counter("born", "h", nil, &born)
	cur := r.Snapshot(9)

	d := Delta(prev, cur)
	if d.At != 9 {
		t.Errorf("At = %v", d.At)
	}
	if v, _ := d.Get("c", ""); v != 15 {
		t.Errorf("counter delta = %v, want 15", v)
	}
	if v, _ := d.Get("g", ""); v != 60 {
		t.Errorf("gauge in delta = %v, want current 60", v)
	}
	if v, _ := d.Get("born", ""); v != 5 {
		t.Errorf("new counter delta = %v, want 5", v)
	}
}

func TestKindString(t *testing.T) {
	if KindCounter.String() != "counter" || KindGauge.String() != "gauge" {
		t.Error("Kind.String mismatch")
	}
}

func TestSamplerOnSimClock(t *testing.T) {
	eng := sim.New(1)
	r := NewRegistry(nil)
	var ops uint64
	r.Counter("ops", "h", nil, &ops)
	sampler := NewSampler(eng, NewHub(r), 10*sim.Millisecond)
	eng.Go("driver", func(p *sim.Proc) {
		sampler.Start()
		for i := 0; i < 5; i++ {
			ops++
			p.Sleep(10 * sim.Millisecond)
		}
		p.Sleep(5 * sim.Millisecond) // stop off the sampling grid
		sampler.Stop()
	})
	eng.MustRun()

	ts := sampler.Series()
	// t=0 (immediate), 10,20,30,40,50ms (recurring), 55ms (final).
	if ts.Len() != 7 {
		t.Fatalf("Len = %d, want 7 (times %v)", ts.Len(), ts.Times())
	}
	times := ts.Times()
	if times[0] != 0 || times[6] != 55*sim.Millisecond {
		t.Errorf("times = %v", times)
	}
	sums := ts.Sum("ops")
	// The timer armed at each grid instant precedes the driver's wake
	// there, so the t=10k ms sample sees exactly k increments.
	want := []float64{0, 1, 2, 3, 4, 5, 5}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("Sum(ops) = %v, want %v", sums, want)
		}
	}
	// Stop is idempotent and must not add samples.
	sampler.Stop()
	if ts.Len() != 7 {
		t.Error("Stop after Stop added a sample")
	}
}

func TestSamplerStopOnGridTakesNoDuplicate(t *testing.T) {
	eng := sim.New(1)
	r := NewRegistry(nil)
	var v uint64
	r.Counter("v", "h", nil, &v)
	sampler := NewSampler(eng, NewHub(r), 10*sim.Millisecond)
	eng.Go("driver", func(p *sim.Proc) {
		sampler.Start()
		p.Sleep(20 * sim.Millisecond)
		sampler.Stop() // exactly on a sampling instant
	})
	eng.MustRun()
	times := sampler.Series().Times()
	for i := 1; i < len(times); i++ {
		if times[i] == times[i-1] {
			t.Errorf("duplicate sample instant: %v", times)
		}
	}
}

func TestSamplerClampsInterval(t *testing.T) {
	eng := sim.New(1)
	s := NewSampler(eng, NewHub(), 1) // 1 ns would run wild
	if s.interval != sim.Microsecond {
		t.Errorf("interval = %v, want clamped to 1µs", s.interval)
	}
}
