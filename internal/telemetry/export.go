package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// formatValue renders a metric value: integers without a decimal point
// (the common case for counters), everything else in shortest-round-trip
// form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, with one HELP/TYPE header per metric name. The output is
// byte-deterministic for a given snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, smp := range s.Samples {
		if smp.Name != lastName {
			if smp.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", smp.Name, smp.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", smp.Name, smp.Kind); err != nil {
				return err
			}
			lastName = smp.Name
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", smp.Name, smp.Labels, formatValue(smp.Value)); err != nil {
			return err
		}
	}
	return nil
}

// csvHeader is the long-format header shared by snapshot and time-series
// exports: one row per (time, metric, labels).
const csvHeader = "time_ns,name,labels,value\n"

func writeCSVRows(w io.Writer, s Snapshot) error {
	for _, smp := range s.Samples {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s\n",
			int64(s.At), smp.Name, strconv.Quote(smp.Labels), formatValue(smp.Value)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the snapshot as long-format CSV (header + one row per
// sample). Labels are quoted since the canonical form contains commas.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return err
	}
	return writeCSVRows(w, s)
}

// WriteCSV renders the whole sampled series as long-format CSV: the
// header once, then every snapshot's rows in time order.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return err
	}
	for _, s := range ts.Snaps {
		if err := writeCSVRows(w, s); err != nil {
			return err
		}
	}
	return nil
}
