package perftest

import (
	"fmt"

	"odpsim/internal/core"
	"odpsim/internal/scenario"
)

// The perftest suite as a scenario workload: ib_read_lat / ib_read_bw /
// the registration-mode comparison, selected by the scenario's renderer,
// printed exactly as the historical odpperf driver did.

func init() { scenario.RegisterWorkload(workload{}) }

type workload struct{}

func (workload) Kind() string { return "perftest" }

func (workload) Validate(sc *scenario.Scenario) error {
	switch sc.Renderer {
	case "", "lat", "bw", "compare":
		return nil
	}
	return fmt.Errorf("scenario %q: unknown perftest renderer %q (want lat, bw or compare)", sc.Name, sc.Renderer)
}

func (workload) Run(sc *scenario.Scenario, out *scenario.Output) error {
	sys, err := sc.ResolvedSystem()
	if err != nil {
		return err
	}
	cfg := DefaultConfig()
	cfg.System = sys
	cfg.Seed = sc.SeedOrDefault()
	if sc.Size > 0 {
		cfg.Size = sc.Size
	}
	if sc.Ops > 0 {
		cfg.Iters = sc.Ops
	}
	if sc.Window > 0 {
		cfg.Window = sc.Window
	}
	cfg.TouchPages = sc.Pages
	cfg.Implicit = sc.Implicit
	cfg.Prefetch = sc.Prefetch
	switch sc.Mode {
	case "server":
		cfg.Mode = core.ServerODP
	case "client":
		cfg.Mode = core.ClientODP
	case "both":
		cfg.Mode = core.BothODP
	default:
		cfg.Mode = core.NoODP
	}

	switch sc.Renderer {
	case "bw":
		fmt.Fprintf(out.W, "RDMA READ bandwidth, %s, %s, window %d\n\n", sys.Name, cfg.Mode, cfg.Window)
		fmt.Fprintln(out.W, BandwidthHeader)
		fmt.Fprintln(out.W, ReadBW(cfg))
	case "compare":
		fmt.Fprintf(out.W, "RDMA READ latency by registration mode, %s\n\n", sys.Name)
		fmt.Fprint(out.W, CompareModes(cfg))
	default:
		fmt.Fprintf(out.W, "RDMA READ latency, %s, %s\n\n", sys.Name, cfg.Mode)
		fmt.Fprintln(out.W, LatencyHeader)
		fmt.Fprintln(out.W, ReadLat(cfg))
	}
	return nil
}
