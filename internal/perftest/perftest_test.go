package perftest

import (
	"strings"
	"testing"

	"odpsim/internal/core"
	"odpsim/internal/sim"
)

func TestReadLatPinned(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iters = 200
	r := ReadLat(cfg)
	// Steady state ≈ one round trip (≈4.2 µs at 2 µs one-way).
	if r.Typical < 3 || r.Typical > 8 {
		t.Errorf("typical latency = %.2f µs, want ≈4-5", r.Typical)
	}
	if r.First > 3*sim.Microsecond*10 {
		t.Errorf("pinned first iteration = %v, want ≈RTT", r.First)
	}
	if r.Min > r.Typical || r.Typical > r.Max {
		t.Error("latency ordering violated")
	}
}

func TestReadLatODPFirstAccessPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iters = 200
	cfg.Mode = core.ServerODP
	r := ReadLat(cfg)
	// First access carries the RNR wait (≈4.5 ms); steady state is RTT.
	if r.First < sim.FromMillis(3.5) || r.First > sim.FromMillis(5.5) {
		t.Errorf("first = %v, want ≈4.5 ms (the fault)", r.First)
	}
	if r.Typical > 8 {
		t.Errorf("steady-state = %.2f µs, ODP should match pinned after the fault", r.Typical)
	}
}

func TestReadLatPrefetchRemovesPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iters = 100
	cfg.Mode = core.ServerODP
	cfg.Prefetch = true
	r := ReadLat(cfg)
	if r.First > 20*sim.Microsecond {
		t.Errorf("prefetched first iteration = %v, want ≈RTT", r.First)
	}
}

func TestReadLatImplicitODP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iters = 100
	cfg.Mode = core.BothODP
	cfg.Implicit = true
	r := ReadLat(cfg)
	if r.First < sim.FromMillis(3.5) {
		t.Errorf("implicit-ODP first access should fault, got %v", r.First)
	}
	if r.Typical > 8 {
		t.Errorf("steady-state = %.2f µs", r.Typical)
	}
}

func TestReadLatPerPageFaults(t *testing.T) {
	// Rotating over fresh pages makes every iteration fault (server
	// side) — the worst case Li et al. quantify.
	cfg := DefaultConfig()
	cfg.Iters = 8
	cfg.Mode = core.ServerODP
	cfg.TouchPages = 8
	r := ReadLat(cfg)
	// All iterations ≈ 4.5 ms.
	if r.Typical < 3500 {
		t.Errorf("per-page-fault typical = %.2f µs, want ≈4500", r.Typical)
	}
}

func TestReadBWPinned(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 4096
	cfg.Iters = 2000
	r := ReadBW(cfg)
	if r.MBps < 1000 {
		t.Errorf("pipelined 4 KiB READ BW = %.1f MB/s, want ≥ 1 GB/s", r.MBps)
	}
	if r.MsgRate <= 0 {
		t.Error("message rate missing")
	}
	// Pipelining must beat serialized latency: 2000 iters × RTT would be
	// ≈8.4 ms; windowed should be much faster.
	if r.Elapsed > sim.FromMillis(5) {
		t.Errorf("windowed run took %v", r.Elapsed)
	}
}

func TestReadBWWindowScaling(t *testing.T) {
	run := func(window int) sim.Time {
		cfg := DefaultConfig()
		cfg.Size = 1024
		cfg.Iters = 1000
		cfg.Window = window
		return ReadBW(cfg).Elapsed
	}
	w1, w16 := run(1), run(16)
	if w16 >= w1 {
		t.Errorf("window 16 (%v) should beat window 1 (%v)", w16, w1)
	}
}

func TestCompareModesRenders(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iters = 50
	out := CompareModes(cfg)
	for _, want := range []string{"No ODP", "Server-side ODP", "Client-side ODP", "Both-side ODP", "+prefetch", "t_first"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 8 {
		t.Errorf("want header + 7 rows:\n%s", out)
	}
}

func TestResultStrings(t *testing.T) {
	lr := LatencyResult{Size: 8, Iters: 10, Min: 1, Typical: 2, Avg: 2, Max: 3, P99: 3}
	if !strings.Contains(lr.String(), "8") {
		t.Error("latency row")
	}
	br := BandwidthResult{Size: 8, Iters: 10, MBps: 100, MsgRate: 1}
	if !strings.Contains(br.String(), "100") {
		t.Error("bandwidth row")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero iters should panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Iters = 0
	ReadLat(cfg)
}
