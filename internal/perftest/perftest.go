// Package perftest reimplements the standard InfiniBand micro-benchmarks
// (perftest's ib_read_lat / ib_read_bw) over the simulator's verbs layer,
// extended with the ODP options the real suite lacks — per-side ODP,
// implicit ODP and prefetching — so the registration-mode comparisons of
// Li et al. (the paper's refs [19], [20]) can be reproduced: ODP's
// first-access penalty, its steady-state parity with pinned memory, and
// the effect of prefetch.
package perftest

import (
	"fmt"
	"sort"
	"strings"

	"odpsim/internal/cluster"
	"odpsim/internal/core"
	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
	"odpsim/internal/stats"
)

// Config parameterizes a latency or bandwidth measurement.
type Config struct {
	System cluster.System
	Seed   int64
	// Size is the message size in bytes.
	Size int
	// Iters is the number of measured iterations.
	Iters int
	// Mode selects the ODP sides (core.NoODP … core.BothODP).
	Mode core.ODPMode
	// Implicit enables Implicit ODP on the ODP sides (whole address
	// space, no explicit registration) instead of Explicit ODP.
	Implicit bool
	// Prefetch advises the ODP pages into the QP context before the
	// measurement (ibv_advise_mr).
	Prefetch bool
	// Window is the number of outstanding operations for bandwidth runs
	// (ib_read_bw's --tx-depth; bounded by the device's MaxRdAtomic).
	Window int
	// TouchPages rotates the target across this many pages so each
	// iteration can fault (0 = single buffer slot, perftest's default).
	TouchPages int
}

// DefaultConfig returns an ib_read_lat-like setup: 8-byte READs on KNL.
func DefaultConfig() Config {
	return Config{System: cluster.KNL(), Seed: 1, Size: 8, Iters: 1000, Window: 16}
}

// LatencyResult summarizes a latency run the way perftest prints it.
type LatencyResult struct {
	Size  int
	Iters int
	// First is the first iteration (carries the ODP fault, if any).
	First sim.Time
	// Summary of the remaining (steady-state) iterations, in µs.
	Min, Typical, Avg, Max, P99 float64
}

// String renders a perftest-style row.
func (r LatencyResult) String() string {
	return fmt.Sprintf("%8d %10d %11.2f %12.2f %11.2f %11.2f %11.2f %14.2f",
		r.Size, r.Iters, r.Min, r.Typical, r.Avg, r.Max, r.P99, r.First.Micros())
}

// LatencyHeader is the column header matching LatencyResult.String.
const LatencyHeader = "  #bytes  #iters   t_min[µs] t_typical[µs]   t_avg[µs]   t_max[µs]   t_p99[µs]  t_first[µs]"

// env builds the two-node measurement environment.
type env struct {
	cl         *cluster.Cluster
	qp         *rnic.QP
	cq         *rnic.CQ
	lbuf, rbuf hostmem.Addr
	buflen     int
}

func newEnv(cfg Config) *env {
	if cfg.Size <= 0 || cfg.Iters <= 0 {
		panic("perftest: Size and Iters must be positive")
	}
	cl := cfg.System.Build(cfg.Seed, 2)
	client, server := cl.Nodes[0], cl.Nodes[1]
	pages := cfg.TouchPages
	if pages < 1 {
		pages = 1
	}
	buflen := pages * hostmem.PageSize
	e := &env{cl: cl, buflen: buflen}
	e.lbuf = client.AS.Alloc(buflen)
	e.rbuf = server.AS.Alloc(buflen)

	reg := func(nic *rnic.RNIC, addr hostmem.Addr, odp bool) {
		if !odp {
			nic.RegisterMR(addr, buflen)
			return
		}
		if cfg.Implicit {
			nic.EnableImplicitODP()
		} else {
			// Managed: Explicit ODP normally, rerouted through the NPR
			// shadow table (or pinning) when the node's mode says so.
			nic.RegisterManagedMR(addr, buflen)
		}
	}
	reg(client, e.lbuf, cfg.Mode == core.ClientODP || cfg.Mode == core.BothODP)
	reg(server, e.rbuf, cfg.Mode == core.ServerODP || cfg.Mode == core.BothODP)

	e.cq = rnic.NewCQ(cl.Eng)
	scq := rnic.NewCQ(cl.Eng)
	e.qp = client.CreateQP(e.cq, e.cq)
	qs := server.CreateQP(scq, scq)
	params := rnic.ConnParams{CACK: 14, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
	rnic.ConnectPair(e.qp, qs, params, params)

	if cfg.Prefetch {
		if cfg.Mode == core.ClientODP || cfg.Mode == core.BothODP {
			client.AdviseMR(e.qp.Num, e.lbuf, buflen)
		}
		if cfg.Mode == core.ServerODP || cfg.Mode == core.BothODP {
			server.AdviseMR(qs.Num, e.rbuf, buflen)
		}
		cl.Eng.Run() // drain the prefetch before measuring
	}
	return e
}

// ReadLat measures RDMA READ latency, one operation at a time (the
// ib_read_lat methodology), reporting the first iteration separately so
// the ODP fault cost is visible.
func ReadLat(cfg Config) LatencyResult {
	e := newEnv(cfg)
	pages := cfg.TouchPages
	if pages < 1 {
		pages = 1
	}
	samples := make([]float64, 0, cfg.Iters)
	var first sim.Time
	e.cl.Eng.Go("lat", func(p *sim.Proc) {
		for i := 0; i < cfg.Iters; i++ {
			off := hostmem.Addr((i % pages) * hostmem.PageSize)
			start := p.Now()
			e.qp.PostSend(rnic.SendWR{ID: uint64(i), Op: rnic.OpRead,
				LocalAddr: e.lbuf + off, RemoteAddr: e.rbuf + off, Len: cfg.Size})
			e.cq.WaitN(p, 1)
			d := p.Now() - start
			if i == 0 {
				first = d
			} else {
				samples = append(samples, d.Micros())
			}
		}
	})
	e.cl.Eng.MustRun()

	sort.Float64s(samples)
	s := stats.Summarize(samples)
	return LatencyResult{
		Size: cfg.Size, Iters: cfg.Iters, First: first,
		Min: s.Min, Typical: s.P50, Avg: s.Mean, Max: s.Max, P99: s.P99,
	}
}

// BandwidthResult summarizes a bandwidth run.
type BandwidthResult struct {
	Size    int
	Iters   int
	Elapsed sim.Time
	// MBps is the achieved goodput in MB/s (10^6 bytes).
	MBps float64
	// MsgRate is in million messages per second.
	MsgRate float64
}

// String renders a perftest-style row.
func (r BandwidthResult) String() string {
	return fmt.Sprintf("%8d %10d %12.2f %14.3f", r.Size, r.Iters, r.MBps, r.MsgRate)
}

// BandwidthHeader is the column header matching BandwidthResult.String.
const BandwidthHeader = "  #bytes  #iters      BW[MB/s]   MsgRate[Mpps]"

// ReadBW measures RDMA READ goodput with Window outstanding operations
// (the ib_read_bw methodology).
func ReadBW(cfg Config) BandwidthResult {
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	e := newEnv(cfg)
	pages := cfg.TouchPages
	if pages < 1 {
		pages = 1
	}
	var elapsed sim.Time
	e.cl.Eng.Go("bw", func(p *sim.Proc) {
		start := p.Now()
		posted, completed := 0, 0
		for posted < cfg.Window && posted < cfg.Iters {
			off := hostmem.Addr((posted % pages) * hostmem.PageSize)
			e.qp.PostSend(rnic.SendWR{ID: uint64(posted), Op: rnic.OpRead,
				LocalAddr: e.lbuf + off, RemoteAddr: e.rbuf + off, Len: cfg.Size})
			posted++
		}
		for completed < cfg.Iters {
			n := len(e.cq.WaitN(p, 1))
			completed += n
			for i := 0; i < n && posted < cfg.Iters; i++ {
				off := hostmem.Addr((posted % pages) * hostmem.PageSize)
				e.qp.PostSend(rnic.SendWR{ID: uint64(posted), Op: rnic.OpRead,
					LocalAddr: e.lbuf + off, RemoteAddr: e.rbuf + off, Len: cfg.Size})
				posted++
			}
		}
		elapsed = p.Now() - start
	})
	e.cl.Eng.MustRun()

	bytes := float64(cfg.Size) * float64(cfg.Iters)
	secs := elapsed.Seconds()
	return BandwidthResult{
		Size: cfg.Size, Iters: cfg.Iters, Elapsed: elapsed,
		MBps:    bytes / secs / 1e6,
		MsgRate: float64(cfg.Iters) / secs / 1e6,
	}
}

// CompareModes runs ReadLat across all four ODP modes (plus prefetch on
// the ODP sides) and renders a comparison table — the Li et al. style
// registration-mode study.
func CompareModes(base Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %s\n", "mode", LatencyHeader)
	for _, m := range []core.ODPMode{core.NoODP, core.ServerODP, core.ClientODP, core.BothODP} {
		cfg := base
		cfg.Mode = m
		r := ReadLat(cfg)
		fmt.Fprintf(&b, "%-28s %s\n", m.String(), r)
		if m != core.NoODP {
			cfg.Prefetch = true
			r = ReadLat(cfg)
			fmt.Fprintf(&b, "%-28s %s\n", m.String()+" +prefetch", r)
		}
	}
	return b.String()
}
