package npr

import (
	"testing"

	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

func setup(t *testing.T, cfg Config) (*sim.Engine, *hostmem.AddressSpace, *Pool) {
	t.Helper()
	eng := sim.New(1)
	as := hostmem.NewAddressSpace(eng, hostmem.DefaultConfig())
	return eng, as, New(as, cfg)
}

func TestMigrationAndStall(t *testing.T) {
	_, as, pl := setup(t, DefaultConfig())
	a := as.Alloc(4 * hostmem.PageSize)
	if pl.Translated(a, 4*hostmem.PageSize) {
		t.Fatal("cold range should not be translated")
	}
	stall := pl.EnsureRange(a, 4*hostmem.PageSize)
	if want := 4 * pl.Config().MigratePerPage; stall != want {
		t.Errorf("cold stall = %v, want %v", stall, want)
	}
	if !pl.Translated(a, 4*hostmem.PageSize) {
		t.Error("range should be translated after migration")
	}
	if pl.Migrations != 4 || pl.TranslationStalls != 1 {
		t.Errorf("migrations=%d stalls=%d", pl.Migrations, pl.TranslationStalls)
	}
	// Warm accesses are free: no stall, no counter movement.
	if got := pl.EnsureRange(a, 4*hostmem.PageSize); got != 0 {
		t.Errorf("warm stall = %v, want 0", got)
	}
	if pl.Migrations != 4 || pl.TranslationStalls != 1 {
		t.Errorf("warm access moved counters: migrations=%d stalls=%d", pl.Migrations, pl.TranslationStalls)
	}
}

// TestPoolBound is the subsystem's core invariant: residency never
// exceeds the configured bound, no matter the working set.
func TestPoolBound(t *testing.T) {
	cfg := Config{PoolBytes: 4 * hostmem.PageSize}
	_, as, pl := setup(t, cfg)
	a := as.Alloc(32 * hostmem.PageSize)
	for i := 0; i < 32; i++ {
		pl.EnsureRange(a+hostmem.Addr(i*hostmem.PageSize), hostmem.PageSize)
		if pl.ResidentBytes() > cfg.PoolBytes {
			t.Fatalf("resident %d exceeds bound %d after page %d", pl.ResidentBytes(), cfg.PoolBytes, i)
		}
	}
	if pl.ResidentBytes() != cfg.PoolBytes {
		t.Errorf("resident = %d, want full pool %d", pl.ResidentBytes(), cfg.PoolBytes)
	}
	if pl.Evictions != 28 {
		t.Errorf("evictions = %d, want 28", pl.Evictions)
	}
}

func TestLRUEviction(t *testing.T) {
	_, as, pl := setup(t, Config{PoolBytes: 2 * hostmem.PageSize})
	a := as.Alloc(3 * hostmem.PageSize)
	p0, p1, p2 := a, a+hostmem.PageSize, a+2*hostmem.PageSize
	pl.EnsureRange(p0, hostmem.PageSize)
	pl.EnsureRange(p1, hostmem.PageSize)
	pl.EnsureRange(p0, hostmem.PageSize) // refresh p0: p1 is now LRU
	stall := pl.EnsureRange(p2, hostmem.PageSize)
	if want := pl.Config().EvictPerPage + pl.Config().MigratePerPage; stall != want {
		t.Errorf("pressured stall = %v, want %v", stall, want)
	}
	if !pl.Translated(p0, hostmem.PageSize) || pl.Translated(p1, hostmem.PageSize) {
		t.Errorf("LRU order wrong: p0 resident=%v p1 resident=%v",
			pl.Translated(p0, hostmem.PageSize), pl.Translated(p1, hostmem.PageSize))
	}
}

// TestAcquirePinsFrames: referenced frames never evict — the property
// that keeps in-flight requests' translations valid so READ responses
// are never discarded.
func TestAcquirePinsFrames(t *testing.T) {
	_, as, pl := setup(t, Config{PoolBytes: 2 * hostmem.PageSize})
	a := as.Alloc(4 * hostmem.PageSize)
	pl.Acquire(a, 2*hostmem.PageSize) // both frames referenced
	mig := pl.Migrations
	// Pool is full of referenced frames: overflow pages stream through
	// without residency and without evicting the held frames.
	pl.EnsureRange(a+2*hostmem.PageSize, 2*hostmem.PageSize)
	if pl.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 while frames are referenced", pl.Evictions)
	}
	if pl.Migrations != mig+2 {
		t.Errorf("migrations = %d, want %d (streamed pages still pay migration)", pl.Migrations, mig+2)
	}
	if !pl.Translated(a, 2*hostmem.PageSize) {
		t.Error("acquired range must stay translated")
	}
	if pl.Translated(a+2*hostmem.PageSize, hostmem.PageSize) {
		t.Error("streamed page must not become resident")
	}
	if pl.ResidentBytes() > 2*hostmem.PageSize {
		t.Errorf("resident %d exceeds bound", pl.ResidentBytes())
	}
	// After Release the held frames become evictable again.
	pl.Release(a, 2*hostmem.PageSize)
	pl.EnsureRange(a+2*hostmem.PageSize, hostmem.PageSize)
	if pl.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 after release", pl.Evictions)
	}
}

func TestMetricsRegistered(t *testing.T) {
	_, as, pl := setup(t, DefaultConfig())
	reg := telemetry.NewRegistry(nil)
	pl.RegisterMetrics(reg)
	a := as.Alloc(hostmem.PageSize)
	pl.EnsureRange(a, hostmem.PageSize)
	snap := reg.Snapshot(0)
	want := map[string]float64{
		telemetry.NprMigrations:        1,
		telemetry.NprEvictions:         0,
		telemetry.NprTranslationStalls: 1,
		telemetry.NprPoolBytes:         hostmem.PageSize,
	}
	got := map[string]float64{}
	for _, s := range snap.Samples {
		got[s.Name] = s.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}

// TestGenerationRecycling: a Reset engine hands back the same pool
// objects with clean state, like every other per-node structure.
func TestGenerationRecycling(t *testing.T) {
	eng := sim.New(1)
	as := hostmem.NewAddressSpace(eng, hostmem.DefaultConfig())
	p1 := New(as, DefaultConfig())
	a := as.Alloc(hostmem.PageSize)
	p1.EnsureRange(a, hostmem.PageSize)

	eng.Reset(2)
	as2 := hostmem.NewAddressSpace(eng, hostmem.DefaultConfig())
	p2 := New(as2, DefaultConfig())
	if p2 != p1 {
		t.Fatal("pool not recycled across engine generations")
	}
	if p2.ResidentBytes() != 0 || p2.Migrations != 0 {
		t.Errorf("recycled pool not reset: resident=%d migrations=%d", p2.ResidentBytes(), p2.Migrations)
	}
	a2 := as2.Alloc(hostmem.PageSize)
	if p2.Translated(a2, hostmem.PageSize) {
		t.Error("recycled pool should start with an empty shadow table")
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{PoolBytes: 8 * hostmem.PageSize}.WithDefaults()
	d := DefaultConfig()
	if c.PoolBytes != 8*hostmem.PageSize || c.MigratePerPage != d.MigratePerPage || c.EvictPerPage != d.EvictPerPage {
		t.Errorf("WithDefaults = %+v", c)
	}
}
