// Package npr implements the NP-RDMA no-pinning mitigation (Shen et
// al., see PAPERS.md): instead of letting the RNIC take network page
// faults — the mechanism behind both of the paper's pitfalls — the
// driver fronts the address space with a bounded DMA-able memory pool
// and a shadow translation table it updates *synchronously*. An RDMA
// access whose pages are not yet in the pool stalls for the driver-side
// migration time (a 4 KiB copy plus an IOMMU map and a table write,
// microseconds), never for a network page fault (hundreds of
// microseconds through the serial ODP pipeline), and the NIC never
// sees a miss:
//
//   - no RNR NAK on the responder, so no pending windows and no packet
//     damming (§V);
//   - no client-side response discard, so no blind retransmission and
//     no packet flood (§VI);
//   - no per-(QP, page) status updates — the shadow table is per page,
//     so the "update failure of page statuses" starvation cannot occur.
//
// The price is bounded pool memory (cold pages evict under pressure,
// LRU) and a small translation stall on first touch. The counters
// mirror what an NP-RDMA driver would export: npr_pool_bytes,
// npr_migrations, npr_evictions, npr_translation_stalls.
package npr

import (
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// Config tunes the NP-RDMA driver model.
type Config struct {
	// PoolBytes bounds the DMA-able pool (default 2 MiB = 512 frames).
	// The shadow table never maps more than PoolBytes of host memory.
	PoolBytes int
	// MigratePerPage is the driver-side cost of pulling one cold page
	// into the pool: a 4 KiB copy, the IOMMU map and the synchronous
	// shadow-table update (default 3 µs).
	MigratePerPage sim.Time
	// EvictPerPage is the write-back cost of evicting one pool page
	// under pressure (default 2 µs).
	EvictPerPage sim.Time
}

// DefaultConfig returns the NP-RDMA calibration used throughout the
// mitigation scenarios.
func DefaultConfig() Config {
	return Config{
		PoolBytes:      2 << 20,
		MigratePerPage: 3 * sim.Microsecond,
		EvictPerPage:   2 * sim.Microsecond,
	}
}

// WithDefaults fills zero fields with the default calibration.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.PoolBytes <= 0 {
		c.PoolBytes = d.PoolBytes
	}
	if c.MigratePerPage <= 0 {
		c.MigratePerPage = d.MigratePerPage
	}
	if c.EvictPerPage <= 0 {
		c.EvictPerPage = d.EvictPerPage
	}
	return c
}

// frame is one page's shadow-table entry. Resident frames form an
// intrusive LRU list threaded through the dense table by page number
// (prev is toward the MRU head, next toward the LRU tail); the links
// are only meaningful while resident.
type frame struct {
	resident   bool
	refs       int
	prev, next int32
}

// Pool is one device's NP-RDMA driver state: the bounded DMA-able pool
// and the shadow translation table over the node's address space. All
// methods must be called from the simulation loop.
type Pool struct {
	eng *sim.Engine
	as  *hostmem.AddressSpace
	cfg Config
	// capacity in page frames; resident counts frames in use.
	capacity int
	resident int
	// table is the shadow translation table, dense by page number like
	// hostmem's page table and odp's pairTable; head/tail are the LRU
	// list ends (-1 when empty), head most recently used.
	table      []frame
	head, tail int32

	// Counters: live storage behind the telemetry registry.
	Migrations        uint64
	Evictions         uint64
	TranslationStalls uint64
	poolBytesFn       func() float64
}

// poolPoolKey is the engine Aux key recycled NPR pools live under.
const poolPoolKey = "npr.pools"

// poolPool recycles Pools across sim-engine generations, the same trick
// hostmem, odp and the fabric use: each trial's New calls get back last
// trial's pools (in construction order) with the shadow table zeroed
// but its storage intact.
type poolPool struct {
	gen  uint64
	all  []*Pool
	next int
}

// New creates an NP-RDMA driver pool over as, recycled across engine
// Resets like every other per-node structure.
func New(as *hostmem.AddressSpace, cfg Config) *Pool {
	eng := as.Engine()
	pp, _ := eng.Aux(poolPoolKey).(*poolPool)
	if pp == nil {
		pp = &poolPool{}
		eng.SetAux(poolPoolKey, pp)
	}
	if gen := eng.Generation() + 1; pp.gen != gen {
		pp.gen = gen
		pp.next = 0
	}
	if pp.next < len(pp.all) {
		pl := pp.all[pp.next]
		pp.next++
		pl.reset(as, cfg)
		return pl
	}
	pl := &Pool{eng: eng}
	pl.poolBytesFn = func() float64 { return float64(pl.resident) * hostmem.PageSize }
	pp.all = append(pp.all, pl)
	pp.next = len(pp.all)
	pl.reset(as, cfg)
	return pl
}

// reset returns a (possibly recycled) pool to its just-constructed
// state bound to as, keeping the shadow table's storage.
func (pl *Pool) reset(as *hostmem.AddressSpace, cfg Config) {
	cfg = cfg.WithDefaults()
	pl.as = as
	pl.cfg = cfg
	pl.capacity = cfg.PoolBytes / hostmem.PageSize
	if pl.capacity < 1 {
		pl.capacity = 1
	}
	pl.resident = 0
	pl.head, pl.tail = -1, -1
	for i := range pl.table {
		pl.table[i] = frame{}
	}
	pl.Migrations, pl.Evictions, pl.TranslationStalls = 0, 0, 0
}

// Config returns the effective (default-filled) configuration.
func (pl *Pool) Config() Config { return pl.cfg }

// FrameCap returns the pool bound in page frames.
func (pl *Pool) FrameCap() int { return pl.capacity }

// ResidentBytes returns the bytes currently resident in the pool —
// the device's real (and bounded) pinned-memory footprint.
func (pl *Pool) ResidentBytes() int { return pl.resident * hostmem.PageSize }

// RegisterMetrics publishes the NP-RDMA counters on reg. The owning
// device calls this once, and only when NPR is enabled, so devices
// without it keep their exact pre-existing metric set.
func (pl *Pool) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter(telemetry.NprMigrations, "cold pages migrated into the DMA-able pool on demand", nil, &pl.Migrations)
	reg.Counter(telemetry.NprEvictions, "pool pages written back and evicted under pressure", nil, &pl.Evictions)
	reg.Counter(telemetry.NprTranslationStalls, "accesses stalled on a synchronous driver migration", nil, &pl.TranslationStalls)
	reg.Gauge(telemetry.NprPoolBytes, "bytes resident in the DMA-able migration pool", nil, pl.poolBytesFn)
}

// entry grows the shadow table to cover page p and returns its frame.
func (pl *Pool) entry(p hostmem.PageNo) *frame {
	for hostmem.PageNo(len(pl.table)) <= p {
		pl.table = append(pl.table, frame{})
	}
	return &pl.table[p]
}

// Resident reports whether page p is in the pool (its shadow-table
// entry is valid).
func (pl *Pool) Resident(p hostmem.PageNo) bool {
	return p < hostmem.PageNo(len(pl.table)) && pl.table[p].resident
}

// Translated reports whether the whole byte range is currently
// translatable through the shadow table — the invariant the NIC relies
// on: a translation is served only for migrated (resident) pages.
func (pl *Pool) Translated(addr hostmem.Addr, length int) bool {
	if length <= 0 {
		return true
	}
	last := hostmem.PageOf(addr + hostmem.Addr(length) - 1)
	for p := hostmem.PageOf(addr); p <= last; p++ {
		if !pl.Resident(p) {
			return false
		}
	}
	return true
}

func (pl *Pool) unlink(p int32) {
	f := &pl.table[p]
	if f.prev >= 0 {
		pl.table[f.prev].next = f.next
	} else {
		pl.head = f.next
	}
	if f.next >= 0 {
		pl.table[f.next].prev = f.prev
	} else {
		pl.tail = f.prev
	}
	f.prev, f.next = -1, -1
}

func (pl *Pool) pushFront(p int32) {
	f := &pl.table[p]
	f.prev, f.next = -1, pl.head
	if pl.head >= 0 {
		pl.table[pl.head].prev = p
	}
	pl.head = p
	if pl.tail < 0 {
		pl.tail = p
	}
}

// evictOne writes back and evicts the least recently used idle frame,
// returning its cost, or ok=false when every resident frame is
// referenced by an in-flight request.
func (pl *Pool) evictOne() (sim.Time, bool) {
	for p := pl.tail; p >= 0; p = pl.table[p].prev {
		if pl.table[p].refs > 0 {
			continue
		}
		pl.unlink(p)
		pl.table[p].resident = false
		pl.resident--
		pl.Evictions++
		return pl.cfg.EvictPerPage, true
	}
	return 0, false
}

// EnsureRange migrates every non-resident page of [addr, addr+length)
// into the pool, evicting LRU frames under pressure, and returns the
// synchronous driver stall the access must absorb. Resident pages are
// refreshed in the LRU order and cost nothing — the steady-state
// (warm) path stays allocation- and stall-free. When every frame is
// referenced (the pool is exhausted by in-flight requests), the
// overflow pages are streamed through a reserved bounce slot instead:
// they pay the migration cost but do not become resident, so the pool
// never exceeds its bound.
func (pl *Pool) EnsureRange(addr hostmem.Addr, length int) sim.Time {
	if length <= 0 {
		return 0
	}
	var stall sim.Time
	last := hostmem.PageOf(addr + hostmem.Addr(length) - 1)
	for p := hostmem.PageOf(addr); p <= last; p++ {
		f := pl.entry(p)
		if f.resident {
			pl.unlink(int32(p))
			pl.pushFront(int32(p))
			continue
		}
		insert := true
		if pl.resident >= pl.capacity {
			cost, ok := pl.evictOne()
			stall += cost
			insert = ok
		}
		// The host page itself becomes resident in pool memory; the
		// kernel side sees a plain touched page (no fault, no pin).
		pl.as.Touch(hostmem.PageBase(p), hostmem.PageSize)
		stall += pl.cfg.MigratePerPage
		pl.Migrations++
		if insert {
			f.resident = true
			pl.resident++
			pl.pushFront(int32(p))
		}
	}
	if stall > 0 {
		pl.TranslationStalls++
	}
	return stall
}

// Acquire is EnsureRange plus a reference on every resident page of the
// range, protecting in-flight requests' frames from eviction until the
// matching Release. The driver takes these around each WR's lifetime,
// which is why NPR READ responses are never discarded — the mitigation
// for the client-side pitfall.
func (pl *Pool) Acquire(addr hostmem.Addr, length int) sim.Time {
	stall := pl.EnsureRange(addr, length)
	if length > 0 {
		last := hostmem.PageOf(addr + hostmem.Addr(length) - 1)
		for p := hostmem.PageOf(addr); p <= last; p++ {
			if f := pl.entry(p); f.resident {
				f.refs++
			}
		}
	}
	return stall
}

// Release drops Acquire's references. Pages that were streamed (never
// resident) carry no reference and are skipped.
func (pl *Pool) Release(addr hostmem.Addr, length int) {
	if length <= 0 {
		return
	}
	last := hostmem.PageOf(addr + hostmem.Addr(length) - 1)
	for p := hostmem.PageOf(addr); p <= last; p++ {
		if p < hostmem.PageNo(len(pl.table)) {
			if f := &pl.table[p]; f.refs > 0 {
				f.refs--
			}
		}
	}
}
