package shard

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"odpsim/internal/sim"
)

// pingPong builds a P-domain ring where every domain sends `ops` flights
// to its right neighbour, each landing triggering the next send, and
// returns a per-domain trace of (landing time, src, arg). Run at
// different lane counts it must produce identical traces — the group's
// core determinism contract.
func pingPong(domains, ops, lanes int) [][]string {
	g := NewGroup(lanes)
	ds := make([]*Domain, domains)
	for i := range ds {
		ds[i] = g.AddDomain(sim.New(int64(i + 1)))
	}
	links := make([]*Link, domains)
	for i := range ds {
		links[i] = g.Connect(ds[i], ds[(i+1)%domains], 100, 2*sim.Microsecond)
	}
	traces := make([][]string, domains)
	for i := range ds {
		i := i
		sent := 0
		ds[i].OnFlight(func(f Flight) {
			traces[i] = append(traces[i], fmt.Sprintf("%d:%d:%d", int64(ds[i].Eng.Now()), f.From, f.Arg))
			if sent < ops {
				sent++
				links[i].Send(Flight{Len: 256, Arg: uint64(1000*i + sent)})
			}
		})
		// Seed the ring: every domain fires one opening flight at t=0.
		links[i].Send(Flight{Len: 256, Arg: uint64(1000 * i)})
	}
	g.Run()
	return traces
}

// TestGroupDeterministicAcrossLanes is the contract test: the same
// linked group produces byte-identical traces at 1, 2, 4 and 8 lanes.
func TestGroupDeterministicAcrossLanes(t *testing.T) {
	want := pingPong(6, 50, 1)
	for _, lanes := range []int{2, 4, 8} {
		got := pingPong(6, 50, lanes)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("lanes=%d trace differs from sequential", lanes)
		}
	}
	// Sanity: traffic actually flowed.
	if len(want[0]) != 52 { // opening flight from the left neighbour + 50 replies + own seed landing chain
		t.Logf("domain 0 saw %d landings", len(want[0]))
	}
}

// TestLookaheadSafety checks the conservative guarantee directly: no
// flight ever lands before its destination's clock (which would panic in
// Schedule), even under a dense cross-traffic pattern with minimal
// propagation delay.
func TestLookaheadSafety(t *testing.T) {
	g := NewGroup(4)
	a := g.AddDomain(sim.New(1))
	b := g.AddDomain(sim.New(2))
	ab := g.Connect(a, b, 56, sim.Microsecond)
	ba := g.Connect(b, a, 56, sim.Microsecond)
	n := 0
	b.OnFlight(func(f Flight) {
		if n < 500 {
			n++
			ba.Send(Flight{Len: 64})
		}
	})
	a.OnFlight(func(f Flight) { ab.Send(Flight{Len: 64}) })
	ab.Send(Flight{Len: 64})
	g.Run() // would panic on any causality violation
	if n != 500 {
		t.Fatalf("bounce count = %d, want 500", n)
	}
}

// TestFlightMergeOrder pins the (At, From, Seq) merge: two source
// domains emit flights landing at the same instant, and the destination
// must observe the lower domain id first, then reservation order.
func TestFlightMergeOrder(t *testing.T) {
	g := NewGroup(1)
	s0 := g.AddDomain(sim.New(1))
	s1 := g.AddDomain(sim.New(2))
	dst := g.AddDomain(sim.New(3))
	l0 := g.Connect(s0, dst, 0, sim.Microsecond) // latency-only: same landing instants
	l1 := g.Connect(s1, dst, 0, sim.Microsecond)
	var got []string
	dst.OnFlight(func(f Flight) {
		got = append(got, fmt.Sprintf("%d/%d", f.From, f.Arg))
	})
	// Emitted in interleaved order; all land at t=1µs.
	l1.Send(Flight{Arg: 0})
	l0.Send(Flight{Arg: 0})
	l1.Send(Flight{Arg: 1})
	l0.Send(Flight{Arg: 1})
	g.Run()
	want := []string{"0/0", "0/1", "1/0", "1/1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order %v, want %v", got, want)
	}
}

// TestHeterogeneousPropDelivery is the regression test for the inbox
// merge: with two inbound links of very different propagation delays, a
// slow flight drained in an early epoch used to sit at the FIFO head
// while a later epoch drained a fast flight landing before it — so the
// fast flight's landing event delivered the slow flight's payload and
// timestamp. The sorted-inbox merge must deliver each flight at its own
// At with its own Arg, at every lane count.
func TestHeterogeneousPropDelivery(t *testing.T) {
	for _, lanes := range []int{1, 2, 4} {
		g := NewGroup(lanes)
		slow := g.AddDomain(sim.New(1))
		fast := g.AddDomain(sim.New(2))
		dst := g.AddDomain(sim.New(3))
		ls := g.Connect(slow, dst, 0, 100*sim.Nanosecond)
		lf := g.Connect(fast, dst, 0, sim.Nanosecond)
		var got []string
		dst.OnFlight(func(f Flight) {
			got = append(got, fmt.Sprintf("%d@%d", f.Arg, int64(dst.Eng.Now())))
			if dst.Eng.Now() != f.At {
				t.Errorf("lanes=%d: flight Arg=%d stamped At=%d delivered at %d",
					lanes, f.Arg, int64(f.At), int64(dst.Eng.Now()))
			}
		})
		// Epoch 1 (lookahead 1 ns): slow emits at t=0, landing At=100.
		// Epoch 2 drains it; fast emits at t=2, landing At=3 — drained in
		// epoch 3, behind the still-pending slow flight.
		slow.Eng.Schedule(0, func() { ls.Send(Flight{Arg: 7}) })
		fast.Eng.Schedule(2*sim.Nanosecond, func() { lf.Send(Flight{Arg: 9}) })
		g.Run()
		want := []string{"9@3", "7@100"}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("lanes=%d: deliveries %v, want %v", lanes, got, want)
		}
	}
}

// TestStopEndsGroupRun pins Stop semantics under the epoch loop: a
// domain calling Engine.Stop inside a window must end the whole group
// run at the next barrier, not just its current window.
func TestStopEndsGroupRun(t *testing.T) {
	g := NewGroup(1)
	a := g.AddDomain(sim.New(1))
	b := g.AddDomain(sim.New(2))
	ab := g.Connect(a, b, 100, sim.Microsecond)
	ba := g.Connect(b, a, 100, sim.Microsecond)
	landings := 0
	b.OnFlight(func(f Flight) {
		landings++
		if landings == 3 {
			b.Eng.Stop()
			return
		}
		ba.Send(Flight{Len: 64})
	})
	a.OnFlight(func(f Flight) { ab.Send(Flight{Len: 64}) })
	ab.Send(Flight{Len: 64})
	g.Run()
	if landings != 3 {
		t.Fatalf("group ran past Stop: %d landings, want 3", landings)
	}
}

// TestRewindClearsPanicState checks that a lane panic captured in one
// run cannot be re-raised by a rewound rerun (the sync.Once would
// otherwise stay consumed and mask the rerun's own outcome).
func TestRewindClearsPanicState(t *testing.T) {
	engA, engB := sim.New(1), sim.New(2)
	g := NewGroup(2)
	a := g.AddDomain(engA)
	b := g.AddDomain(engB)
	ab := g.Connect(a, b, 100, sim.Microsecond)
	boom := true
	b.OnFlight(func(f Flight) {
		if boom {
			panic("first-run failure")
		}
	})
	a.OnFlight(func(f Flight) {})
	ab.Send(Flight{Len: 64})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first run did not surface the lane panic")
			}
		}()
		g.Run()
	}()
	engA.Reset(3)
	engB.Reset(4)
	g.Rewind()
	boom = false
	ab.Send(Flight{Len: 64})
	g.Run() // must not re-panic with the stale first-run value
}

// TestLinkSerialization checks the egress cursor: back-to-back flights
// on one link land spaced by their serialization time, not stacked on
// the same instant.
func TestLinkSerialization(t *testing.T) {
	g := NewGroup(1)
	src := g.AddDomain(sim.New(1))
	dst := g.AddDomain(sim.New(2))
	l := g.Connect(src, dst, 8, sim.Microsecond) // 8 Gb/s = 1 ns/byte
	var at []sim.Time
	dst.OnFlight(func(f Flight) { at = append(at, dst.Eng.Now()) })
	l.Send(Flight{Len: 1000})
	l.Send(Flight{Len: 1000})
	g.Run()
	if len(at) != 2 {
		t.Fatalf("landings = %d, want 2", len(at))
	}
	if want := sim.Microsecond + 1000*sim.Nanosecond; at[0] != want {
		t.Errorf("first landing at %v, want %v", at[0], want)
	}
	if got := at[1] - at[0]; got != 1000*sim.Nanosecond {
		t.Errorf("landing spacing %v, want 1µs of serialization", got)
	}
}

// TestIndependentDomainsRunDry checks the link-free fast path: domains
// with no boundary links each run to completion, in parallel, exactly as
// their engines would alone.
func TestIndependentDomainsRunDry(t *testing.T) {
	for _, lanes := range []int{1, 4} {
		g := NewGroup(lanes)
		done := make([]sim.Time, 3)
		for i := 0; i < 3; i++ {
			i := i
			d := g.AddDomain(sim.New(int64(i)))
			end := sim.Time(i+1) * sim.Millisecond
			d.Eng.Schedule(end, func() { done[i] = d.Eng.Now() })
		}
		g.Run()
		for i, at := range done {
			if want := sim.Time(i+1) * sim.Millisecond; at != want {
				t.Errorf("lanes=%d domain %d finished at %v, want %v", lanes, i, at, want)
			}
		}
	}
}

// TestMustRunPanicsOnDeadlock mirrors sim.Engine.MustRun: a domain whose
// process parks forever must surface as a group-level panic naming the
// domain.
func TestMustRunPanicsOnDeadlock(t *testing.T) {
	g := NewGroup(1)
	d := g.AddDomain(sim.New(1))
	d.Eng.Go("stuck", func(p *sim.Proc) {
		c := sim.NewCond(d.Eng)
		p.Wait(c, func() bool { return false }) // nobody will ever signal
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustRun did not panic on a parked process")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("panic %v does not mention deadlock", r)
		}
	}()
	g.MustRun()
}

// TestConnectValidation pins the constructor panics: self-links and
// zero-lookahead links are design errors, not runtime states.
func TestConnectValidation(t *testing.T) {
	g := NewGroup(1)
	a := g.AddDomain(sim.New(1))
	b := g.AddDomain(sim.New(2))
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("self-link", func() { g.Connect(a, a, 100, sim.Microsecond) })
	mustPanic("zero-prop", func() { g.Connect(a, b, 100, 0) })
}

// TestDecompose covers the partitioner: pod-local flows split into one
// domain per pod, a coupling flow merges them, and fully coupled
// patterns collapse to one domain.
func TestDecompose(t *testing.T) {
	// 6 hosts, two pods of 3 with local flows only.
	p := Decompose(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if p.Count != 2 {
		t.Fatalf("pod decomposition found %d domains, want 2", p.Count)
	}
	if !reflect.DeepEqual(p.Domain, []int{0, 0, 0, 1, 1, 1}) {
		t.Fatalf("Domain = %v", p.Domain)
	}
	if got := p.Members(1); !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Fatalf("Members(1) = %v", got)
	}
	// One cross-pod flow couples everything.
	p = Decompose(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {2, 3}})
	if p.Count != 1 {
		t.Fatalf("coupled decomposition found %d domains, want 1", p.Count)
	}
	// Incast: everyone targets host 0.
	flows := make([][2]int, 0, 8)
	for i := 1; i < 9; i++ {
		flows = append(flows, [2]int{i, 0})
	}
	p = Decompose(9, flows)
	if p.Count != 1 {
		t.Fatalf("incast decomposed into %d domains, want 1", p.Count)
	}
	// Isolated hosts each get their own domain, numbered in vertex order.
	p = Decompose(3, nil)
	if p.Count != 3 || !reflect.DeepEqual(p.Domain, []int{0, 1, 2}) {
		t.Fatalf("no-flow decomposition = %+v", p)
	}
}

// TestGroupAllocFreeWarm pins the steady-state handoff budget at the
// package level: after a warm-up run, re-running a rebuilt two-domain
// exchange on recycled engines must not allocate per flight (rings,
// inbox, merge scratch and heap slots all recycle). The root-level
// TestAllocBudgetShardedSend covers the full cluster-on-shard path.
func TestGroupAllocFreeWarm(t *testing.T) {
	engA, engB := sim.New(1), sim.New(2)
	g := NewGroup(1)
	a, b := g.AddDomain(engA), g.AddDomain(engB)
	ab := g.Connect(a, b, 100, 2*sim.Microsecond)
	ba := g.Connect(b, a, 100, 2*sim.Microsecond)
	var n int
	b.OnFlight(func(f Flight) {
		if n < 256 {
			n++
			ba.Send(Flight{Len: 64})
		}
	})
	a.OnFlight(func(f Flight) { ab.Send(Flight{Len: 64}) })
	seed := int64(0)
	trial := func() {
		seed++
		engA.Reset(seed)
		engB.Reset(seed + 1)
		g.Rewind()
		n = 0
		ab.Send(Flight{Len: 64})
		g.Run()
	}
	trial()
	if avg := testing.AllocsPerRun(10, trial); avg > 2 {
		t.Errorf("warm group trial allocates %.0f/run, want ≤ 2 (per-flight garbage on the handoff path)", avg)
	}
}
