package shard

// Partition maps each vertex of the simulated system (hosts, in
// host-index order) to the causal domain that must own it. It is
// produced by Decompose from the traffic structure alone — the worker
// lane count never enters — so the partition is a pure function of the
// scenario, which is what keeps sharded output byte-identical at every
// `-shards` value.
type Partition struct {
	// Domain[v] is the domain index of vertex v, numbered 0..Count-1 in
	// order of each domain's first vertex.
	Domain []int
	// Count is the number of causal domains.
	Count int
}

// Members returns the vertices of domain i, in vertex order.
func (p Partition) Members(i int) []int {
	var m []int
	for v, d := range p.Domain {
		if d == i {
			m = append(m, v)
		}
	}
	return m
}

// Decompose computes the causal domains of an n-vertex system from its
// flow list: vertices joined by a flow (a QP, a directed traffic pair —
// anything that couples two engines' event streams) must share an
// engine, so domains are the connected components of the flow graph.
// Components are numbered by first-vertex order, making the result
// deterministic for any flow ordering.
//
// A fully coupled pattern (incast, all-to-all shuffle) decomposes into
// one domain — the honest answer: its golden can only be reproduced by
// a single event loop, and the group degenerates to sequential
// execution. Pod-local patterns (kv-serve's per-pod cells) decompose
// into one domain per pod, which is where the lanes buy wall-clock.
func Decompose(n int, flows [][2]int) Partition {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, f := range flows {
		a, b := find(f[0]), find(f[1])
		if a != b {
			if a > b { // union by smaller root: keeps numbering stable
				a, b = b, a
			}
			parent[b] = a
		}
	}
	p := Partition{Domain: make([]int, n)}
	index := make(map[int]int, n)
	for v := 0; v < n; v++ {
		root := find(v)
		id, ok := index[root]
		if !ok {
			id = p.Count
			index[root] = id
			p.Count++
		}
		p.Domain[v] = id
	}
	return p
}
