// Package shard is the conservative bounded-lag parallel layer: it runs
// one simulation as a Group of causal domains, each with its own
// sim.Engine, and executes the domains' event loops concurrently on a
// fixed pool of worker lanes without ever reordering an observable
// event.
//
// The unit of partitioning is the causal domain — a subgraph of the
// simulated system (hosts, RNICs, ODP/NPR state, the switches between
// them) whose packet exchanges never leave the subgraph except over
// declared boundary links. Which vertices form a domain is derived from
// the traffic structure (see Decompose), never from the worker-lane
// count, so the partition — and therefore every event trajectory — is a
// pure function of the scenario. The `shards` knob only picks how many
// OS threads execute the domains: output is byte-identical at any value,
// the same contract internal/parallel established for sweep points.
//
// Cross-domain traffic moves as Flight values over boundary Links.
// Execution proceeds in epochs: at each barrier the coordinator flips
// every link's double buffer (flights emitted during the previous window
// become visible to their destination), picks the global next event time
// T, and releases every domain to drain its inbound flights and run
// RunHorizon(T + lookahead) in parallel. Lookahead is the minimum
// boundary-link propagation delay: a flight emitted at or after T lands
// at or after T + lookahead, so no domain can be surprised inside its
// window — the classic conservative bounded-lag guarantee (Lubachevsky).
//
// Determinism across lane counts holds because the only cross-domain
// interaction is the barrier-ordered flight exchange: each domain drains
// its inbound links in declaration order, merge-sorts the landed flights
// by (At, source domain, source ReserveSeq), and schedules them in that
// total order. Nothing a worker lane does can change what any domain
// observes.
package shard

import (
	"fmt"
	"runtime"
	"sync"

	"odpsim/internal/sim"
)

// Flight is one cross-domain handoff: a fixed-size value (no pointers),
// so rings of flights recycle without per-packet garbage. The layer
// treats Src/Dst/Op/Arg as opaque application addressing; At and From
// are stamped by Link.Send.
type Flight struct {
	// At is the landing time at the destination domain, stamped by Send
	// from the link's serialization cursor plus propagation delay.
	At sim.Time
	// Seq is the source engine's ReserveSeq claim, the tie-break that
	// makes the destination's merge order identical to a single-engine
	// interleaving of the same sends.
	Seq uint64
	// From is the source domain's index, stamped by Send: the middle
	// component of the (At, From, Seq) merge key.
	From int
	// Src and Dst are application-level endpoints (LIDs, pod indices).
	Src, Dst uint16
	// Op is an application-defined discriminator.
	Op uint8
	// Len is the payload size in bytes; it drives link serialization.
	Len int
	// Arg is one application payload word (a digest count, a key).
	Arg uint64
}

// Link is a directed boundary link between two domains: a serializing
// egress (one flight on the wire at a time at the configured rate)
// followed by a fixed propagation delay. Flights are double-buffered:
// the source appends to pending during its window, the coordinator flips
// pending into ready at the epoch barrier, and the destination drains
// ready at the start of its next window — so producer and consumer never
// touch the same slice concurrently, with the pool barrier providing the
// happens-before edge. Both buffers recycle their backing arrays.
type Link struct {
	src, dst *Domain
	nsPerByte float64
	prop      sim.Time
	free      sim.Time // egress serialization cursor, in src time
	pending   []Flight // written by src during its window
	ready     []Flight // read by dst at its next drain
}

// Send stamps f's landing time and merge tie-break and queues it on the
// link. It must be called from within the source domain's window (its
// engine's event context). The landing time is
// max(now, egress free) + Len/rate + prop ≥ now + prop, which is what
// the group's lookahead guarantee rests on.
func (l *Link) Send(f Flight) {
	eng := l.src.Eng
	start := eng.Now()
	if l.free > start {
		start = l.free
	}
	l.free = start + sim.Time(float64(f.Len)*l.nsPerByte)
	f.At = l.free + l.prop
	f.Seq = eng.ReserveSeq()
	f.From = l.src.id
	l.pending = append(l.pending, f)
}

// Domain is one causal partition: an engine plus its inbound boundary
// links. The owner builds whatever system it likes on Eng (clusters,
// fabrics, processes); the domain only adds the flight drain.
type Domain struct {
	Eng *sim.Engine

	id      int
	in      []*Link // inbound links in Connect order (fixes drain order)
	handler func(Flight)
	// inbox holds drained flights whose landing events are scheduled
	// but not yet fired, kept sorted by (At, From, Seq) from inboxHead
	// on; landFn pops the head. One landing event is scheduled per
	// flight, and events fire in time order, so by the time an event at
	// time t fires every flight ordered before the head has already
	// been popped and the head's At is exactly t — even when a later
	// epoch's drain merges in flights that land before a previous
	// epoch's beyond-horizon leftovers.
	inbox     []Flight
	inboxHead int
	merge     []Flight // drain sort scratch, recycled
	landFn    func()   // cached: one closure per domain, not per flight
}

// ID returns the domain's index in its group (also the From stamp on
// flights it sends).
func (d *Domain) ID() int { return d.id }

// OnFlight installs the handler invoked at each inbound flight's landing
// time, inside the domain's event loop. A domain with inbound links must
// install a handler before the group runs.
func (d *Domain) OnFlight(h func(Flight)) { d.handler = h }

// flightAfter reports whether a orders after b in the (At, From, Seq)
// total order — the group's canonical cross-domain delivery order.
func flightAfter(a, b Flight) bool {
	if a.At != b.At {
		return a.At > b.At
	}
	if a.From != b.From {
		return a.From > b.From
	}
	return a.Seq > b.Seq
}

// land pops the inbox head — the minimal un-popped flight, which is the
// one whose landing event is firing — and hands it to the handler.
func (d *Domain) land() {
	f := d.inbox[d.inboxHead]
	d.inboxHead++
	if d.inboxHead == len(d.inbox) {
		d.inbox = d.inbox[:0]
		d.inboxHead = 0
	}
	d.handler(f)
}

// drain moves every ready inbound flight into the engine as a landing
// event. Flights are merged across links and sorted by
// (At, From, Seq) — a total order, since Seq is unique per source — with
// an insertion sort: each link's ready slice is already sorted (egress
// cursors are monotone), so the merge is nearly ordered and the sort is
// cheap and allocation-free. The sorted batch is then merged into the
// inbox's un-popped tail rather than appended: a previous epoch can
// leave flights whose At lies beyond its horizon (heterogeneous link
// props, a congested egress cursor), and a later batch may land before
// them — a plain append would let their landing events pop the wrong
// flight.
func (d *Domain) drain() {
	d.merge = d.merge[:0]
	for _, l := range d.in {
		d.merge = append(d.merge, l.ready...)
	}
	if len(d.merge) == 0 {
		return
	}
	m := d.merge
	for i := 1; i < len(m); i++ {
		f := m[i]
		j := i - 1
		for j >= 0 && flightAfter(m[j], f) {
			m[j+1] = m[j]
			j--
		}
		m[j+1] = f
	}
	// Compact the consumed prefix so an inbox that never fully empties
	// cannot grow without bound across epochs.
	if d.inboxHead > 0 {
		n := copy(d.inbox, d.inbox[d.inboxHead:])
		d.inbox = d.inbox[:n]
		d.inboxHead = 0
	}
	// Back-to-front merge of the two sorted runs (leftover tail and new
	// batch): O(n+m), allocation-free once the backing array is warm.
	// Reads of the batch come from m, so overwriting the appended copy
	// region is safe.
	old := len(d.inbox)
	d.inbox = append(d.inbox, m...)
	i, j, k := old-1, len(m)-1, len(d.inbox)-1
	for j >= 0 {
		if i >= 0 && flightAfter(d.inbox[i], m[j]) {
			d.inbox[k] = d.inbox[i]
			i--
		} else {
			d.inbox[k] = m[j]
			j--
		}
		k--
	}
	for _, f := range m {
		d.Eng.Schedule(f.At, d.landFn)
	}
}

// Group runs a set of domains to completion over a fixed number of
// worker lanes. Domains and links are added before Run; the group is
// single-use per run but domains' engines may be Reset and the group
// rebuilt, arena-style, by the caller.
type Group struct {
	lanes     int
	domains   []*Domain
	links     []*Link
	lookahead sim.Time

	jobs   chan *Domain
	wg     sync.WaitGroup
	fn     func(*Domain)
	panicV any
	once   sync.Once

	// horizon is the current epoch's window end, written in the barrier
	// section and read by epochRun on the lanes (the job channel's
	// happens-before edge covers it). Keeping it a field lets every epoch
	// share one cached epochFn instead of allocating a fresh closure.
	horizon sim.Time
	epochFn func(*Domain)
}

// NewGroup creates a group executing on lanes worker lanes. Values below
// 1 auto-tune to the process's GOMAXPROCS (startWorkers further caps at
// the domain count, so small fabrics never spawn idle lanes); the lane
// count never affects simulation output, only wall-clock.
func NewGroup(lanes int) *Group {
	if lanes < 1 {
		lanes = runtime.GOMAXPROCS(0)
	}
	return &Group{lanes: lanes}
}

// Lanes returns the worker-lane count the group executes on.
func (g *Group) Lanes() int { return g.lanes }

// AddDomain wraps eng as the group's next causal domain.
func (g *Group) AddDomain(eng *sim.Engine) *Domain {
	d := &Domain{Eng: eng, id: len(g.domains)}
	d.landFn = d.land
	g.domains = append(g.domains, d)
	return d
}

// Connect creates a directed boundary link from src to dst with the
// given serialization rate (gbps ≤ 0 means latency-only) and propagation
// delay. The propagation delay must be positive: it is what bounds the
// group's lookahead, and a zero-latency boundary would force lockstep.
func (g *Group) Connect(src, dst *Domain, gbps float64, prop sim.Time) *Link {
	if src == dst {
		panic("shard: a boundary link must cross domains")
	}
	if prop <= 0 {
		panic("shard: boundary links need a positive propagation delay (it bounds the lookahead)")
	}
	l := &Link{src: src, dst: dst, prop: prop}
	if gbps > 0 {
		l.nsPerByte = 8 / gbps
	}
	dst.in = append(dst.in, l)
	g.links = append(g.links, l)
	if g.lookahead == 0 || prop < g.lookahead {
		g.lookahead = prop
	}
	return l
}

// Run executes every domain to completion. Without boundary links the
// domains are independent and each engine simply runs dry on its lane.
// With links, execution is the bounded-lag epoch loop described in the
// package comment; Run returns when no domain has a scheduled event and
// no flight is in transit.
func (g *Group) Run() {
	stop := g.startWorkers()
	defer stop()
	if len(g.links) == 0 {
		g.runEach(runDry)
		return
	}
	if g.epochFn == nil {
		g.epochFn = g.epochRun
	}
	for _, d := range g.domains {
		if len(d.in) > 0 && d.handler == nil {
			panic(fmt.Sprintf("shard: domain %d has inbound links but no OnFlight handler", d.id))
		}
	}
	const inf = sim.Time(1<<63 - 1)
	for {
		// Barrier section: all lanes idle, so flipping the double buffers
		// and reading every engine's next event time is race-free.
		t := inf
		for _, l := range g.links {
			l.ready, l.pending = l.pending, l.ready[:0]
			for i := range l.ready {
				if l.ready[i].At < t {
					t = l.ready[i].At
				}
			}
		}
		for _, d := range g.domains {
			if nt, ok := d.Eng.NextEventTime(); ok && nt < t {
				t = nt
			}
		}
		if t == inf {
			return
		}
		g.horizon = t + g.lookahead
		g.runEach(g.epochFn)
		// RunHorizon clears the stopped flag on entry, so a Stop issued
		// inside a window only survives until the next epoch; honour it
		// here so Stop ends the group run, mirroring Engine.Run.
		for _, d := range g.domains {
			if d.Eng.Stopped() {
				return
			}
		}
	}
}

// epochRun is one domain's share of an epoch: land the flights the
// barrier made visible, then execute the window.
func (g *Group) epochRun(d *Domain) {
	d.drain()
	d.Eng.RunHorizon(g.horizon)
}

// MustRun is Run plus the engine layer's deadlock check: it panics if
// any domain ends with processes parked forever, mirroring
// sim.Engine.MustRun for the whole group.
func (g *Group) MustRun() {
	g.Run()
	for _, d := range g.domains {
		if d.Eng.Deadlocked() {
			panic(fmt.Sprintf("shard: deadlock, domain %d has process(es) parked forever at %v", d.id, d.Eng.Now()))
		}
	}
}

// Rewind returns the group to its pre-run state — link egress cursors
// and flight buffers cleared, inboxes emptied — keeping every
// allocation, so a caller that Resets its engines can rerun the same
// group arena-style without per-trial garbage. Installed handlers stay.
func (g *Group) Rewind() {
	for _, l := range g.links {
		l.free = 0
		l.pending = l.pending[:0]
		l.ready = l.ready[:0]
	}
	for _, d := range g.domains {
		d.inbox = d.inbox[:0]
		d.inboxHead = 0
		d.merge = d.merge[:0]
	}
	// Clear captured panic state: a re-raised lane panic from a prior
	// run must not mask a rerun's own failure (the Once is consumed).
	g.panicV = nil
	g.once = sync.Once{}
}

// startWorkers launches the persistent lane goroutines (none when one
// lane or one domain suffices — then runEach executes inline, which is
// also the allocation-free path the alloc budget pins). The returned
// stop function tears the pool down.
func (g *Group) startWorkers() func() {
	if g.lanes <= 1 || len(g.domains) <= 1 {
		return func() {}
	}
	n := g.lanes
	if n > len(g.domains) {
		n = len(g.domains)
	}
	jobs := make(chan *Domain)
	g.jobs = jobs
	for i := 0; i < n; i++ {
		go func() {
			for d := range jobs {
				g.runOne(d)
			}
		}()
	}
	return func() { g.jobs = nil; close(jobs) }
}

// runDry is the link-free phase function: each independent domain's
// engine simply runs to completion on its lane.
func runDry(d *Domain) { d.Eng.Run() }

// runOne executes the current phase function on one domain, capturing
// the first panic so the coordinator can re-raise it after the barrier
// (a lost panic in a lane goroutine would otherwise kill the process
// with no caller context).
func (g *Group) runOne(d *Domain) {
	defer g.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			g.once.Do(func() { g.panicV = r })
		}
	}()
	g.fn(d)
}

// runEach runs fn over every domain, on the lane pool when one exists.
func (g *Group) runEach(fn func(*Domain)) {
	if g.jobs == nil {
		for _, d := range g.domains {
			fn(d)
		}
		return
	}
	g.fn = fn
	g.wg.Add(len(g.domains))
	for _, d := range g.domains {
		g.jobs <- d
	}
	g.wg.Wait()
	if g.panicV != nil {
		panic(g.panicV)
	}
}
