// Package ucx is a minimal UCX-like communication layer over the verbs
// model: workers, endpoints, blocking and asynchronous RMA (GET/PUT) and
// tagged-ish SEND/RECV. It mirrors the configuration surface the paper
// uses to toggle ODP from the environment (§VII: UCX prioritizes ODP over
// direct registration when enabled, with a default minimal RNR NAK delay
// of 0.96 ms and C_ACK = 18).
package ucx

import (
	"fmt"

	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// Config mirrors the UCX environment variables that matter here.
type Config struct {
	// EnableODP makes every registration an ODP registration, like
	// UCX_IB_REG_METHODS=odp. The paper notes UCX even *prioritizes*
	// ODP when available — which is how the authors ran into the
	// pitfalls unknowingly.
	EnableODP bool
	// MinRNRDelay is the minimal RNR NAK delay (default 0.96 ms).
	MinRNRDelay sim.Time
	// CACK is the Local ACK Timeout exponent (default 18).
	CACK int
	// RetryCnt is C_retry (default 7).
	RetryCnt int
}

// DefaultConfig returns the UCX defaults reported in §VII.
func DefaultConfig() Config {
	return Config{
		MinRNRDelay: sim.FromMillis(0.96),
		CACK:        18,
		RetryCnt:    7,
	}
}

// Context binds a configuration to one node's RNIC.
type Context struct {
	nic *rnic.RNIC
	cfg Config
}

// NewContext creates a UCX context on a node.
func NewContext(nic *rnic.RNIC, cfg Config) *Context {
	return &Context{nic: nic, cfg: cfg}
}

// NIC exposes the underlying device.
func (c *Context) NIC() *rnic.RNIC { return c.nic }

// Telemetry returns the device's counter registry, the moral
// equivalent of reading its /sys/class/infiniband counters.
func (c *Context) Telemetry() *telemetry.Registry { return c.nic.Telemetry() }

// Config returns the context configuration.
func (c *Context) Config() Config { return c.cfg }

// Worker is a progress context: one CQ plus completion bookkeeping.
type Worker struct {
	ctx    *Context
	cq     *rnic.CQ
	nextID uint64
	done   map[uint64]rnic.CQE
	recvs  []rnic.CQE
}

// NewWorker creates a worker.
func (c *Context) NewWorker() *Worker {
	return &Worker{
		ctx:  c,
		cq:   rnic.NewCQ(c.nic.Engine()),
		done: make(map[uint64]rnic.CQE),
	}
}

// RegisterBuffer registers a buffer according to the context's ODP
// setting and returns the virtual-time registration cost the caller
// should charge (zero for ODP — that is its appeal). With EnableODP the
// registration is managed: it follows the device's memory mode, so an
// NPR- or pin-mode node reroutes the same UCX configuration through its
// own translation path (cost nonzero again under ForcePinned).
func (w *Worker) RegisterBuffer(addr hostmem.Addr, length int) sim.Time {
	if w.ctx.cfg.EnableODP {
		_, cost := w.ctx.nic.RegisterManagedMR(addr, length)
		return cost
	}
	_, cost := w.ctx.nic.RegisterMR(addr, length)
	return cost
}

// Endpoint is a connection from one worker to a peer worker.
type Endpoint struct {
	worker *Worker
	qp     *rnic.QP
}

// QP exposes the underlying queue pair (stats, state).
func (e *Endpoint) QP() *rnic.QP { return e.qp }

// Connect wires a QP pair between two workers using both contexts'
// connection attributes and returns the two endpoints.
func Connect(a, b *Worker) (*Endpoint, *Endpoint) {
	qa := a.ctx.nic.CreateQP(a.cq, a.cq)
	qb := b.ctx.nic.CreateQP(b.cq, b.cq)
	pa := rnic.ConnParams{CACK: a.ctx.cfg.CACK, RetryCount: a.ctx.cfg.RetryCnt, MinRNRDelay: a.ctx.cfg.MinRNRDelay}
	pb := rnic.ConnParams{CACK: b.ctx.cfg.CACK, RetryCount: b.ctx.cfg.RetryCnt, MinRNRDelay: b.ctx.cfg.MinRNRDelay}
	rnic.ConnectPair(qa, qb, pa, pb)
	return &Endpoint{worker: a, qp: qa}, &Endpoint{worker: b, qp: qb}
}

// Request identifies an in-flight asynchronous operation.
type Request uint64

// drain moves completions from the CQ into the worker's tables.
func (w *Worker) drain() {
	for _, e := range w.cq.Poll(0) {
		if e.Recv {
			w.recvs = append(w.recvs, e)
		} else {
			w.done[e.WRID] = e
		}
	}
}

func (w *Worker) statusErr(e rnic.CQE) error {
	if e.Status == rnic.WCSuccess {
		return nil
	}
	return fmt.Errorf("ucx: operation %d failed: %s", e.WRID, e.Status)
}

// GetAsync starts an RMA GET (RDMA READ) and returns its request handle.
func (e *Endpoint) GetAsync(local, remote hostmem.Addr, length int) Request {
	id := e.worker.nextID
	e.worker.nextID++
	e.qp.PostSend(rnic.SendWR{ID: id, Op: rnic.OpRead, LocalAddr: local, RemoteAddr: remote, Len: length})
	return Request(id)
}

// PutAsync starts an RMA PUT (RDMA WRITE).
func (e *Endpoint) PutAsync(local, remote hostmem.Addr, length int) Request {
	id := e.worker.nextID
	e.worker.nextID++
	e.qp.PostSend(rnic.SendWR{ID: id, Op: rnic.OpWrite, LocalAddr: local, RemoteAddr: remote, Len: length})
	return Request(id)
}

// FetchAddAsync starts an 8-byte remote fetch-and-add.
func (e *Endpoint) FetchAddAsync(local, remote hostmem.Addr, add uint64) Request {
	id := e.worker.nextID
	e.worker.nextID++
	e.qp.PostSend(rnic.SendWR{ID: id, Op: rnic.OpAtomicFA, LocalAddr: local, RemoteAddr: remote, Len: 8, CompareAdd: add})
	return Request(id)
}

// CASAsync starts an 8-byte remote compare-and-swap.
func (e *Endpoint) CASAsync(local, remote hostmem.Addr, compare, swap uint64) Request {
	id := e.worker.nextID
	e.worker.nextID++
	e.qp.PostSend(rnic.SendWR{ID: id, Op: rnic.OpAtomicCS, LocalAddr: local, RemoteAddr: remote, Len: 8, CompareAdd: compare, Swap: swap})
	return Request(id)
}

// WaitAtomic blocks until the atomic completes and returns the original
// remote value.
func (w *Worker) WaitAtomic(p *sim.Proc, r Request) (uint64, error) {
	var got rnic.CQE
	p.Wait(w.cq.Cond(), func() bool {
		w.drain()
		e, ok := w.done[uint64(r)]
		if ok {
			got = e
			delete(w.done, uint64(r))
		}
		return ok
	})
	return got.AtomicOrig, w.statusErr(got)
}

// SendAsync starts a two-sided send (the peer must have posted a recv).
func (e *Endpoint) SendAsync(local hostmem.Addr, length int) Request {
	id := e.worker.nextID
	e.worker.nextID++
	e.qp.PostSend(rnic.SendWR{ID: id, Op: rnic.OpSend, LocalAddr: local, Len: length})
	return Request(id)
}

// PostRecv posts a receive buffer on the endpoint.
func (e *Endpoint) PostRecv(addr hostmem.Addr, length int) {
	e.qp.PostRecv(rnic.RecvWR{ID: 0, Addr: addr, Len: length})
}

// Wait blocks the process until the request completes, returning its
// error status.
func (w *Worker) Wait(p *sim.Proc, r Request) error {
	var got rnic.CQE
	p.Wait(w.cq.Cond(), func() bool {
		w.drain()
		e, ok := w.done[uint64(r)]
		if ok {
			got = e
			delete(w.done, uint64(r))
		}
		return ok
	})
	return w.statusErr(got)
}

// WaitAll blocks until every request completes; it returns the first
// error encountered (still waiting for the rest).
func (w *Worker) WaitAll(p *sim.Proc, rs []Request) error {
	var firstErr error
	for _, r := range rs {
		if err := w.Wait(p, r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// WaitRecv blocks until a receive completes and returns it.
func (w *Worker) WaitRecv(p *sim.Proc) rnic.CQE {
	var got rnic.CQE
	p.Wait(w.cq.Cond(), func() bool {
		w.drain()
		if len(w.recvs) == 0 {
			return false
		}
		got = w.recvs[0]
		w.recvs = w.recvs[1:]
		return true
	})
	return got
}

// Get performs a blocking RMA GET.
func (e *Endpoint) Get(p *sim.Proc, local, remote hostmem.Addr, length int) error {
	return e.worker.Wait(p, e.GetAsync(local, remote, length))
}

// Put performs a blocking RMA PUT.
func (e *Endpoint) Put(p *sim.Proc, local, remote hostmem.Addr, length int) error {
	return e.worker.Wait(p, e.PutAsync(local, remote, length))
}

// Send performs a blocking two-sided send.
func (e *Endpoint) Send(p *sim.Proc, local hostmem.Addr, length int) error {
	return e.worker.Wait(p, e.SendAsync(local, length))
}
