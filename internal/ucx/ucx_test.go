package ucx

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
)

type env struct {
	cl         *cluster.Cluster
	wA, wB     *Worker
	epA, epB   *Endpoint
	lbuf, rbuf hostmem.Addr
}

func newEnv(t *testing.T, seed int64, odp bool) *env {
	t.Helper()
	cl := cluster.KNL().Build(seed, 2)
	cfg := DefaultConfig()
	cfg.EnableODP = odp
	ctxA := NewContext(cl.Nodes[0], cfg)
	ctxB := NewContext(cl.Nodes[1], cfg)
	e := &env{cl: cl, wA: ctxA.NewWorker(), wB: ctxB.NewWorker()}
	e.epA, e.epB = Connect(e.wA, e.wB)
	e.lbuf = cl.Nodes[0].AS.Alloc(8 * hostmem.PageSize)
	e.rbuf = cl.Nodes[1].AS.Alloc(8 * hostmem.PageSize)
	e.wA.RegisterBuffer(e.lbuf, 8*hostmem.PageSize)
	e.wB.RegisterBuffer(e.rbuf, 8*hostmem.PageSize)
	return e
}

func TestBlockingGet(t *testing.T) {
	e := newEnv(t, 1, false)
	var err error
	var at sim.Time
	e.cl.Eng.Go("app", func(p *sim.Proc) {
		err = e.epA.Get(p, e.lbuf, e.rbuf, 100)
		at = p.Now()
	})
	e.cl.Eng.MustRun()
	if err != nil {
		t.Fatal(err)
	}
	if at > 20*sim.Microsecond {
		t.Errorf("pinned GET took %v", at)
	}
}

func TestODPGetFaults(t *testing.T) {
	e := newEnv(t, 2, true)
	var err error
	var at sim.Time
	e.cl.Eng.Go("app", func(p *sim.Proc) {
		err = e.epA.Get(p, e.lbuf, e.rbuf, 100)
		at = p.Now()
	})
	e.cl.Eng.MustRun()
	if err != nil {
		t.Fatal(err)
	}
	// Both-side ODP single GET ≈ RNR wait of 3.5 × 0.96 ms.
	if at < sim.FromMillis(2.5) || at > sim.FromMillis(6) {
		t.Errorf("ODP GET took %v, want ≈3.4 ms", at)
	}
	if e.cl.Nodes[1].RNRNakSent == 0 {
		t.Error("expected a server-side fault")
	}
}

func TestRegistrationCost(t *testing.T) {
	e := newEnv(t, 3, false)
	buf := e.cl.Nodes[0].AS.Alloc(16 * hostmem.PageSize)
	if cost := e.wA.RegisterBuffer(buf, 16*hostmem.PageSize); cost == 0 {
		t.Error("pinned registration must cost time")
	}
	odpEnv := newEnv(t, 4, true)
	buf2 := odpEnv.cl.Nodes[0].AS.Alloc(16 * hostmem.PageSize)
	if cost := odpEnv.wA.RegisterBuffer(buf2, 16*hostmem.PageSize); cost != 0 {
		t.Error("ODP registration must be free")
	}
}

func TestAsyncGetsAndWaitAll(t *testing.T) {
	e := newEnv(t, 5, false)
	var err error
	e.cl.Eng.Go("app", func(p *sim.Proc) {
		var rs []Request
		for i := 0; i < 20; i++ {
			rs = append(rs, e.epA.GetAsync(e.lbuf+hostmem.Addr(i*64), e.rbuf+hostmem.Addr(i*64), 64))
		}
		err = e.wA.WaitAll(p, rs)
	})
	e.cl.Eng.MustRun()
	if err != nil {
		t.Fatal(err)
	}
}

func TestPut(t *testing.T) {
	e := newEnv(t, 6, false)
	var err error
	e.cl.Eng.Go("app", func(p *sim.Proc) {
		err = e.epA.Put(p, e.lbuf, e.rbuf, 256)
	})
	e.cl.Eng.MustRun()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	e := newEnv(t, 7, false)
	var sendErr error
	var recvLen int
	e.epB.PostRecv(e.rbuf, 4096)
	e.cl.Eng.Go("sender", func(p *sim.Proc) {
		sendErr = e.epA.Send(p, e.lbuf, 128)
	})
	e.cl.Eng.Go("receiver", func(p *sim.Proc) {
		recvLen = e.wB.WaitRecv(p).ByteLen
	})
	e.cl.Eng.MustRun()
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if recvLen != 128 {
		t.Errorf("recv len = %d", recvLen)
	}
}

func TestGetErrorSurfaces(t *testing.T) {
	e := newEnv(t, 8, false)
	bad := e.cl.Nodes[1].AS.Alloc(hostmem.PageSize) // unregistered remote
	var err error
	e.cl.Eng.Go("app", func(p *sim.Proc) {
		err = e.epA.Get(p, e.lbuf, bad, 64)
	})
	e.cl.Eng.MustRun()
	if err == nil {
		t.Fatal("expected a remote access error")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MinRNRDelay != sim.FromMillis(0.96) {
		t.Errorf("MinRNRDelay = %v", cfg.MinRNRDelay)
	}
	if cfg.CACK != 18 || cfg.RetryCnt != 7 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.EnableODP {
		t.Error("ODP must be off by default (as in the real systems)")
	}
}
