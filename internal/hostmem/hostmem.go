// Package hostmem models the host side of memory management that On-Demand
// Paging interacts with: a per-node virtual address space divided into
// 4 KiB pages, page states, the kernel's fault-resolution latency, page
// pinning for conventional memory registration, and MMU-notifier style
// invalidation callbacks toward the RNIC.
package hostmem

import (
	"fmt"

	"odpsim/internal/sim"
)

// PageSize is the host page size in bytes (the paper aligns its
// communication buffers to 4096-byte boundaries "considering the page
// size").
const PageSize = 4096

// Addr is a virtual address within one address space.
type Addr uint64

// PageNo identifies a page: Addr / PageSize.
type PageNo uint64

// PageOf returns the page containing a.
func PageOf(a Addr) PageNo { return PageNo(a / PageSize) }

// PageBase returns the first address of page p.
func PageBase(p PageNo) Addr { return Addr(p) * PageSize }

// PagesSpanned returns the pages covered by [addr, addr+len).
func PagesSpanned(addr Addr, length int) []PageNo {
	if length <= 0 {
		return nil
	}
	first := PageOf(addr)
	last := PageOf(addr + Addr(length) - 1)
	out := make([]PageNo, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, p)
	}
	return out
}

// PageState describes the host-side status of one page.
type PageState int

// Page states.
const (
	// Unmapped: no physical frame is assigned; first touch or an ODP
	// fault must allocate one.
	Unmapped PageState = iota
	// Resolving: the kernel is servicing a fault for this page.
	Resolving
	// Mapped: a physical frame is assigned; the kernel may still reclaim
	// it (which triggers invalidation).
	Mapped
	// Pinned: mapped and locked; the kernel will not reclaim it. This is
	// the state conventional memory registration requires.
	Pinned
)

// String implements fmt.Stringer.
func (s PageState) String() string {
	switch s {
	case Unmapped:
		return "unmapped"
	case Resolving:
		return "resolving"
	case Mapped:
		return "mapped"
	case Pinned:
		return "pinned"
	default:
		return fmt.Sprintf("PageState(%d)", int(s))
	}
}

// Config tunes the kernel model.
type Config struct {
	// FaultResolveMin/Max bound the kernel-side latency of resolving a
	// page fault (allocating or retrieving the page and updating page
	// tables). The paper reports network page faults commonly take
	// 250–1000 µs end to end; the kernel share modelled here is the bulk
	// of it.
	FaultResolveMin sim.Time
	FaultResolveMax sim.Time
	// PinPerPage is the cost of pinning one page during conventional
	// memory registration (get_user_pages + mlock work).
	PinPerPage sim.Time
}

// DefaultConfig returns the calibration used throughout the reproduction.
func DefaultConfig() Config {
	return Config{
		FaultResolveMin: 250 * sim.Microsecond,
		FaultResolveMax: 500 * sim.Microsecond,
		PinPerPage:      2 * sim.Microsecond,
	}
}

// Invalidation describes pages the kernel is reclaiming; registered
// notifiers (RNIC drivers) must flush any translations for them.
type Invalidation struct {
	Pages []PageNo
}

// Notifier receives MMU-notifier callbacks.
type Notifier func(Invalidation)

type page struct {
	state PageState
	pins  int
	// resolveWaiters run when the in-flight resolution completes.
	resolveWaiters []func()
}

// AddressSpace is one node's virtual memory. All methods must be called
// from the simulation loop (events or processes).
type AddressSpace struct {
	eng       *sim.Engine
	cfg       Config
	pages     map[PageNo]*page
	brk       Addr
	notifiers []Notifier

	// words stores 8-byte values for atomics and small control data.
	words map[Addr]uint64

	// Counters for tests and reporting.
	FaultsResolved uint64
	PagesPinned    uint64
}

// NewAddressSpace creates an address space on engine eng.
func NewAddressSpace(eng *sim.Engine, cfg Config) *AddressSpace {
	return &AddressSpace{
		eng:   eng,
		cfg:   cfg,
		pages: make(map[PageNo]*page),
		words: make(map[Addr]uint64),
		brk:   PageSize, // keep 0 as an obviously invalid address
	}
}

// Engine returns the simulation engine.
func (as *AddressSpace) Engine() *sim.Engine { return as.eng }

// Alloc reserves length bytes of page-aligned virtual address space and
// returns its base address. Pages start Unmapped (first touch faults),
// exactly like fresh anonymous mappings.
func (as *AddressSpace) Alloc(length int) Addr {
	if length <= 0 {
		panic("hostmem: Alloc of non-positive length")
	}
	base := as.brk
	npages := (Addr(length) + PageSize - 1) / PageSize
	as.brk += npages * PageSize
	return base
}

func (as *AddressSpace) pageAt(p PageNo) *page {
	pg, ok := as.pages[p]
	if !ok {
		pg = &page{state: Unmapped}
		as.pages[p] = pg
	}
	return pg
}

// State returns the state of page p.
func (as *AddressSpace) State(p PageNo) PageState {
	if pg, ok := as.pages[p]; ok {
		return pg.state
	}
	return Unmapped
}

// Touch synchronously maps every page in [addr, addr+len), modelling the
// application writing to the buffer in advance ("used and touched in
// advance" in the paper's §V-C). It costs no virtual time; use it for
// setup.
func (as *AddressSpace) Touch(addr Addr, length int) {
	for _, p := range PagesSpanned(addr, length) {
		pg := as.pageAt(p)
		if pg.state == Unmapped {
			pg.state = Mapped
		}
	}
}

// Pin maps and pins every page in the range, charging the per-page pinning
// cost to the calling process if proc is non-nil. Pinned pages are never
// invalidated. Pin returns the virtual-time cost it charged.
func (as *AddressSpace) Pin(addr Addr, length int) sim.Time {
	var cost sim.Time
	for _, p := range PagesSpanned(addr, length) {
		pg := as.pageAt(p)
		pg.pins++
		if pg.state != Pinned {
			pg.state = Pinned
			cost += as.cfg.PinPerPage
			as.PagesPinned++
		}
	}
	return cost
}

// Unpin releases a previous Pin. Pages whose pin count drops to zero
// return to Mapped (still resident).
func (as *AddressSpace) Unpin(addr Addr, length int) {
	for _, p := range PagesSpanned(addr, length) {
		pg, ok := as.pages[p]
		if !ok || pg.pins == 0 {
			panic(fmt.Sprintf("hostmem: Unpin of unpinned page %d", p))
		}
		pg.pins--
		if pg.pins == 0 && pg.state == Pinned {
			pg.state = Mapped
		}
	}
}

// RegisterNotifier adds an MMU-notifier callback, invoked on Release.
func (as *AddressSpace) RegisterNotifier(n Notifier) {
	as.notifiers = append(as.notifiers, n)
}

// Release reclaims the (unpinned) pages of the range, notifying all
// registered notifiers first, as the kernel does before freeing pages
// that a device may have translated.
func (as *AddressSpace) Release(addr Addr, length int) {
	var reclaimed []PageNo
	for _, p := range PagesSpanned(addr, length) {
		pg, ok := as.pages[p]
		if !ok || pg.state != Mapped {
			continue // unmapped, resolving or pinned pages stay
		}
		reclaimed = append(reclaimed, p)
	}
	if len(reclaimed) == 0 {
		return
	}
	inv := Invalidation{Pages: reclaimed}
	for _, n := range as.notifiers {
		n(inv)
	}
	for _, p := range reclaimed {
		as.pages[p].state = Unmapped
	}
}

// ResolveFault starts kernel fault resolution for page p and calls done
// when the page is Mapped. If the page is already Mapped or Pinned, done
// runs after zero additional kernel latency (at the current instant). If
// a resolution is already in flight, done is queued behind it — the
// kernel coalesces concurrent faults on one page.
func (as *AddressSpace) ResolveFault(p PageNo, done func()) {
	pg := as.pageAt(p)
	switch pg.state {
	case Mapped, Pinned:
		as.eng.After(0, done)
		return
	case Resolving:
		pg.resolveWaiters = append(pg.resolveWaiters, done)
		return
	}
	pg.state = Resolving
	pg.resolveWaiters = append(pg.resolveWaiters, done)
	lat := as.eng.Uniform(as.cfg.FaultResolveMin, as.cfg.FaultResolveMax)
	as.eng.After(lat, func() {
		pg.state = Mapped
		as.FaultsResolved++
		ws := pg.resolveWaiters
		pg.resolveWaiters = nil
		for _, w := range ws {
			w()
		}
	})
}

// ReadWord returns the 8-byte value at addr (zero if never written).
// Atomic operations and control words use this store; bulk payload data
// is not modelled.
func (as *AddressSpace) ReadWord(addr Addr) uint64 { return as.words[addr] }

// WriteWord stores an 8-byte value at addr.
func (as *AddressSpace) WriteWord(addr Addr, v uint64) { as.words[addr] = v }
