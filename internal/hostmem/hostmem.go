// Package hostmem models the host side of memory management that On-Demand
// Paging interacts with: a per-node virtual address space divided into
// 4 KiB pages, page states, the kernel's fault-resolution latency, page
// pinning for conventional memory registration, and MMU-notifier style
// invalidation callbacks toward the RNIC.
package hostmem

import (
	"fmt"

	"odpsim/internal/sim"
)

// PageSize is the host page size in bytes (the paper aligns its
// communication buffers to 4096-byte boundaries "considering the page
// size").
const PageSize = 4096

// Addr is a virtual address within one address space.
type Addr uint64

// PageNo identifies a page: Addr / PageSize.
type PageNo uint64

// PageOf returns the page containing a.
func PageOf(a Addr) PageNo { return PageNo(a / PageSize) }

// PageBase returns the first address of page p.
func PageBase(p PageNo) Addr { return Addr(p) * PageSize }

// PagesSpanned returns the pages covered by [addr, addr+len).
func PagesSpanned(addr Addr, length int) []PageNo {
	if length <= 0 {
		return nil
	}
	first := PageOf(addr)
	last := PageOf(addr + Addr(length) - 1)
	out := make([]PageNo, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, p)
	}
	return out
}

// PageState describes the host-side status of one page.
type PageState int

// Page states.
const (
	// Unmapped: no physical frame is assigned; first touch or an ODP
	// fault must allocate one.
	Unmapped PageState = iota
	// Resolving: the kernel is servicing a fault for this page.
	Resolving
	// Mapped: a physical frame is assigned; the kernel may still reclaim
	// it (which triggers invalidation).
	Mapped
	// Pinned: mapped and locked; the kernel will not reclaim it. This is
	// the state conventional memory registration requires.
	Pinned
)

// String implements fmt.Stringer.
func (s PageState) String() string {
	switch s {
	case Unmapped:
		return "unmapped"
	case Resolving:
		return "resolving"
	case Mapped:
		return "mapped"
	case Pinned:
		return "pinned"
	default:
		return fmt.Sprintf("PageState(%d)", int(s))
	}
}

// Config tunes the kernel model.
type Config struct {
	// FaultResolveMin/Max bound the kernel-side latency of resolving a
	// page fault (allocating or retrieving the page and updating page
	// tables). The paper reports network page faults commonly take
	// 250–1000 µs end to end; the kernel share modelled here is the bulk
	// of it.
	FaultResolveMin sim.Time
	FaultResolveMax sim.Time
	// PinPerPage is the cost of pinning one page during conventional
	// memory registration (get_user_pages + mlock work).
	PinPerPage sim.Time
}

// DefaultConfig returns the calibration used throughout the reproduction.
func DefaultConfig() Config {
	return Config{
		FaultResolveMin: 250 * sim.Microsecond,
		FaultResolveMax: 500 * sim.Microsecond,
		PinPerPage:      2 * sim.Microsecond,
	}
}

// Invalidation describes pages the kernel is reclaiming; registered
// notifiers (RNIC drivers) must flush any translations for them.
type Invalidation struct {
	Pages []PageNo
}

// Notifier receives MMU-notifier callbacks.
type Notifier func(Invalidation)

type page struct {
	state PageState
	pins  int
	// resolveWaiters run when the in-flight resolution completes.
	// waiterSpare is the previous completion's backing array, recycled so
	// repeated fault/invalidate cycles on one page stop allocating; the
	// two swap at completion time so waiters queued *during* completion
	// land in a different array than the one being iterated.
	resolveWaiters []func()
	waiterSpare    []func()
	// completeFn is the cached resolution-completion callback, built on
	// the page's first fault so retries reuse one closure.
	completeFn func()
}

// AddressSpace is one node's virtual memory. All methods must be called
// from the simulation loop (events or processes).
type AddressSpace struct {
	eng *sim.Engine
	cfg Config
	// pages is a dense page table indexed by page number: Alloc hands
	// out addresses from a brk that starts at one page and grows
	// contiguously, so page numbers are small consecutive integers and
	// indexing replaces the map hashing the per-packet ODP checks used
	// to pay. Entries stay nil until first use; pointers (not values)
	// because in-flight fault resolutions hold their page across table
	// growth.
	pages     []*page
	brk       Addr
	notifiers []Notifier

	// words stores 8-byte values for atomics and small control data.
	words map[Addr]uint64

	// Counters for tests and reporting.
	FaultsResolved uint64
	PagesPinned    uint64
}

// asPoolKey is the engine Aux key recycled address spaces live under.
const asPoolKey = "hostmem.addressSpaces"

// asPool hands address spaces back out after an engine Reset: the page
// table keeps its entries (reset to Unmapped) and their cached
// fault-completion closures, and the word store keeps its buckets, so
// trial loops stop paying construction allocations. Within one
// generation every NewAddressSpace call gets a distinct instance.
type asPool struct {
	gen  uint64
	all  []*AddressSpace
	next int
}

// NewAddressSpace creates an address space on engine eng. Address spaces
// are recycled across engine Resets (generation-based, via the engine's
// aux storage); a freshly returned space is indistinguishable from a
// brand-new one.
func NewAddressSpace(eng *sim.Engine, cfg Config) *AddressSpace {
	p, _ := eng.Aux(asPoolKey).(*asPool)
	if p == nil {
		p = &asPool{}
		eng.SetAux(asPoolKey, p)
	}
	if gen := eng.Generation() + 1; p.gen != gen {
		p.gen = gen
		p.next = 0
	}
	if p.next < len(p.all) {
		as := p.all[p.next]
		p.next++
		as.reset(cfg)
		return as
	}
	as := &AddressSpace{
		eng:   eng,
		cfg:   cfg,
		words: make(map[Addr]uint64),
		brk:   PageSize, // keep 0 as an obviously invalid address
	}
	p.all = append(p.all, as)
	p.next = len(p.all)
	return as
}

// reset returns a recycled address space to its just-constructed state,
// keeping allocated storage: page entries (and their cached completion
// closures, which capture only this AddressSpace and the page), the word
// store's buckets, and the notifier list's backing array.
func (as *AddressSpace) reset(cfg Config) {
	as.cfg = cfg
	as.brk = PageSize
	as.notifiers = as.notifiers[:0]
	as.FaultsResolved = 0
	as.PagesPinned = 0
	clear(as.words)
	for _, pg := range as.pages {
		if pg == nil {
			continue
		}
		pg.state = Unmapped
		pg.pins = 0
		pg.resolveWaiters = pg.resolveWaiters[:0]
	}
}

// Engine returns the simulation engine.
func (as *AddressSpace) Engine() *sim.Engine { return as.eng }

// Alloc reserves length bytes of page-aligned virtual address space and
// returns its base address. Pages start Unmapped (first touch faults),
// exactly like fresh anonymous mappings.
func (as *AddressSpace) Alloc(length int) Addr {
	if length <= 0 {
		panic("hostmem: Alloc of non-positive length")
	}
	base := as.brk
	npages := (Addr(length) + PageSize - 1) / PageSize
	as.brk += npages * PageSize
	return base
}

func (as *AddressSpace) pageAt(p PageNo) *page {
	for PageNo(len(as.pages)) <= p {
		as.pages = append(as.pages, nil)
	}
	pg := as.pages[p]
	if pg == nil {
		pg = &page{state: Unmapped}
		as.pages[p] = pg
	}
	return pg
}

// lookup returns page p's entry without creating one, or nil.
func (as *AddressSpace) lookup(p PageNo) *page {
	if p < PageNo(len(as.pages)) {
		return as.pages[p]
	}
	return nil
}

// State returns the state of page p.
func (as *AddressSpace) State(p PageNo) PageState {
	if pg := as.lookup(p); pg != nil {
		return pg.state
	}
	return Unmapped
}

// Touch synchronously maps every page in [addr, addr+len), modelling the
// application writing to the buffer in advance ("used and touched in
// advance" in the paper's §V-C). It costs no virtual time; use it for
// setup.
func (as *AddressSpace) Touch(addr Addr, length int) {
	for _, p := range PagesSpanned(addr, length) {
		pg := as.pageAt(p)
		if pg.state == Unmapped {
			pg.state = Mapped
		}
	}
}

// Pin maps and pins every page in the range, charging the per-page pinning
// cost to the calling process if proc is non-nil. Pinned pages are never
// invalidated. Pin returns the virtual-time cost it charged.
func (as *AddressSpace) Pin(addr Addr, length int) sim.Time {
	var cost sim.Time
	for _, p := range PagesSpanned(addr, length) {
		pg := as.pageAt(p)
		pg.pins++
		if pg.state != Pinned {
			pg.state = Pinned
			cost += as.cfg.PinPerPage
			as.PagesPinned++
		}
	}
	return cost
}

// Unpin releases a previous Pin. Pages whose pin count drops to zero
// return to Mapped (still resident).
func (as *AddressSpace) Unpin(addr Addr, length int) {
	for _, p := range PagesSpanned(addr, length) {
		pg := as.lookup(p)
		if pg == nil || pg.pins == 0 {
			panic(fmt.Sprintf("hostmem: Unpin of unpinned page %d", p))
		}
		pg.pins--
		if pg.pins == 0 && pg.state == Pinned {
			pg.state = Mapped
		}
	}
}

// RegisterNotifier adds an MMU-notifier callback, invoked on Release.
func (as *AddressSpace) RegisterNotifier(n Notifier) {
	as.notifiers = append(as.notifiers, n)
}

// Release reclaims the (unpinned) pages of the range, notifying all
// registered notifiers first, as the kernel does before freeing pages
// that a device may have translated.
func (as *AddressSpace) Release(addr Addr, length int) {
	var reclaimed []PageNo
	for _, p := range PagesSpanned(addr, length) {
		pg := as.lookup(p)
		if pg == nil || pg.state != Mapped {
			continue // unmapped, resolving or pinned pages stay
		}
		reclaimed = append(reclaimed, p)
	}
	if len(reclaimed) == 0 {
		return
	}
	inv := Invalidation{Pages: reclaimed}
	for _, n := range as.notifiers {
		n(inv)
	}
	for _, p := range reclaimed {
		as.pages[p].state = Unmapped
	}
}

// ResolveFault starts kernel fault resolution for page p and calls done
// when the page is Mapped. If the page is already Mapped or Pinned, done
// runs after zero additional kernel latency (at the current instant). If
// a resolution is already in flight, done is queued behind it — the
// kernel coalesces concurrent faults on one page.
func (as *AddressSpace) ResolveFault(p PageNo, done func()) {
	pg := as.pageAt(p)
	switch pg.state {
	case Mapped, Pinned:
		as.eng.ScheduleAfter(0, done)
		return
	case Resolving:
		pg.resolveWaiters = append(pg.resolveWaiters, done)
		return
	}
	pg.state = Resolving
	pg.resolveWaiters = append(pg.resolveWaiters, done)
	if pg.completeFn == nil {
		pg.completeFn = func() {
			pg.state = Mapped
			as.FaultsResolved++
			ws := pg.resolveWaiters
			pg.resolveWaiters = pg.waiterSpare[:0]
			pg.waiterSpare = ws[:0]
			for _, w := range ws {
				w()
			}
		}
	}
	lat := as.eng.Uniform(as.cfg.FaultResolveMin, as.cfg.FaultResolveMax)
	as.eng.ScheduleAfter(lat, pg.completeFn)
}

// ReadWord returns the 8-byte value at addr (zero if never written).
// Atomic operations and control words use this store; bulk payload data
// is not modelled.
func (as *AddressSpace) ReadWord(addr Addr) uint64 { return as.words[addr] }

// WriteWord stores an 8-byte value at addr.
func (as *AddressSpace) WriteWord(addr Addr, v uint64) { as.words[addr] = v }
