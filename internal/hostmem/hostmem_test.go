package hostmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"odpsim/internal/sim"
)

func newAS(t *testing.T) (*sim.Engine, *AddressSpace) {
	t.Helper()
	eng := sim.New(1)
	return eng, NewAddressSpace(eng, DefaultConfig())
}

func TestPagesSpanned(t *testing.T) {
	cases := []struct {
		addr Addr
		len  int
		want int
	}{
		{0, 1, 1},
		{0, 4096, 1},
		{0, 4097, 2},
		{100, 4096, 2},
		{4096, 8192, 2},
		{4095, 2, 2},
		{0, 0, 0},
		{0, -5, 0},
	}
	for _, c := range cases {
		got := PagesSpanned(c.addr, c.len)
		if len(got) != c.want {
			t.Errorf("PagesSpanned(%d,%d) = %v, want %d pages", c.addr, c.len, got, c.want)
		}
	}
}

func TestPagesSpannedProperty(t *testing.T) {
	f := func(addr uint32, length uint16) bool {
		a, l := Addr(addr), int(length)
		got := PagesSpanned(a, l)
		if l == 0 {
			return len(got) == 0
		}
		// Contiguous, covers first and last byte.
		if got[0] != PageOf(a) || got[len(got)-1] != PageOf(a+Addr(l)-1) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[i-1]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	_, as := newAS(t)
	a := as.Alloc(100)
	b := as.Alloc(5000)
	c := as.Alloc(1)
	for _, x := range []Addr{a, b, c} {
		if x%PageSize != 0 {
			t.Errorf("Alloc returned unaligned address %d", x)
		}
	}
	if b < a+PageSize {
		t.Error("allocations overlap")
	}
	if c < b+2*PageSize {
		t.Error("5000-byte allocation should span 2 pages")
	}
}

func TestTouchMapsPages(t *testing.T) {
	_, as := newAS(t)
	a := as.Alloc(3 * PageSize)
	if as.State(PageOf(a)) != Unmapped {
		t.Fatal("fresh page should be unmapped")
	}
	as.Touch(a, 2*PageSize)
	if as.State(PageOf(a)) != Mapped || as.State(PageOf(a)+1) != Mapped {
		t.Error("touched pages should be mapped")
	}
	if as.State(PageOf(a)+2) != Unmapped {
		t.Error("untouched page should stay unmapped")
	}
}

func TestPinUnpin(t *testing.T) {
	_, as := newAS(t)
	a := as.Alloc(2 * PageSize)
	cost := as.Pin(a, 2*PageSize)
	if cost != 2*DefaultConfig().PinPerPage {
		t.Errorf("pin cost = %v", cost)
	}
	if as.State(PageOf(a)) != Pinned {
		t.Error("pinned page not Pinned")
	}
	// Double pin: refcounted, no extra cost for already-pinned pages.
	if c2 := as.Pin(a, PageSize); c2 != 0 {
		t.Errorf("re-pin cost = %v, want 0", c2)
	}
	as.Unpin(a, PageSize)
	if as.State(PageOf(a)) != Pinned {
		t.Error("page should stay pinned while one pin remains")
	}
	as.Unpin(a, PageSize)
	if as.State(PageOf(a)) != Mapped {
		t.Error("fully unpinned page should be Mapped")
	}
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	_, as := newAS(t)
	a := as.Alloc(PageSize)
	defer func() {
		if recover() == nil {
			t.Error("Unpin of unpinned page should panic")
		}
	}()
	as.Unpin(a, PageSize)
}

func TestResolveFaultLatency(t *testing.T) {
	eng, as := newAS(t)
	a := as.Alloc(PageSize)
	var doneAt sim.Time
	as.ResolveFault(PageOf(a), func() { doneAt = eng.Now() })
	eng.Run()
	cfg := DefaultConfig()
	if doneAt < cfg.FaultResolveMin || doneAt > cfg.FaultResolveMax {
		t.Errorf("fault resolved at %v, want within [%v,%v]", doneAt, cfg.FaultResolveMin, cfg.FaultResolveMax)
	}
	if as.State(PageOf(a)) != Mapped {
		t.Error("resolved page should be Mapped")
	}
	if as.FaultsResolved != 1 {
		t.Errorf("FaultsResolved = %d", as.FaultsResolved)
	}
}

func TestResolveFaultCoalescing(t *testing.T) {
	eng, as := newAS(t)
	a := as.Alloc(PageSize)
	done := 0
	as.ResolveFault(PageOf(a), func() { done++ })
	as.ResolveFault(PageOf(a), func() { done++ }) // while resolving
	eng.Run()
	if done != 2 {
		t.Errorf("done = %d, want 2", done)
	}
	if as.FaultsResolved != 1 {
		t.Errorf("coalesced faults should resolve once, got %d", as.FaultsResolved)
	}
}

func TestResolveMappedIsImmediate(t *testing.T) {
	eng, as := newAS(t)
	a := as.Alloc(PageSize)
	as.Touch(a, PageSize)
	var doneAt sim.Time = -1
	eng.RunUntil(50 * sim.Microsecond)
	as.ResolveFault(PageOf(a), func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 50*sim.Microsecond {
		t.Errorf("mapped page resolve completed at %v, want immediately", doneAt)
	}
}

func TestReleaseNotifiesAndUnmaps(t *testing.T) {
	_, as := newAS(t)
	a := as.Alloc(3 * PageSize)
	as.Touch(a, 3*PageSize)
	as.Pin(a+2*PageSize, PageSize) // last page pinned: must survive
	var got []PageNo
	as.RegisterNotifier(func(inv Invalidation) { got = append(got, inv.Pages...) })
	as.Release(a, 3*PageSize)
	if len(got) != 2 {
		t.Fatalf("notified pages = %v, want the 2 unpinned ones", got)
	}
	if as.State(PageOf(a)) != Unmapped || as.State(PageOf(a)+1) != Unmapped {
		t.Error("released pages should be Unmapped")
	}
	if as.State(PageOf(a)+2) != Pinned {
		t.Error("pinned page must not be released")
	}
}

func TestReleaseUnmappedIsSilent(t *testing.T) {
	_, as := newAS(t)
	a := as.Alloc(PageSize)
	called := false
	as.RegisterNotifier(func(Invalidation) { called = true })
	as.Release(a, PageSize)
	if called {
		t.Error("releasing unmapped pages should not notify")
	}
}

func TestPageStateString(t *testing.T) {
	for s, want := range map[PageState]string{
		Unmapped: "unmapped", Resolving: "resolving", Mapped: "mapped", Pinned: "pinned",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if PageState(42).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestAllocNonPositivePanics(t *testing.T) {
	_, as := newAS(t)
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) should panic")
		}
	}()
	as.Alloc(0)
}
