package core

import (
	"strings"
	"testing"

	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// exportAll renders a run's telemetry to bytes: the sampled series as CSV
// plus the final snapshot in Prometheus form.
func exportAll(t *testing.T, r *BenchResult) string {
	t.Helper()
	var b strings.Builder
	if err := r.Telemetry.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.Final.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTelemetryDeterminism runs the same seeded scenario twice and
// demands byte-identical telemetry exports — the property that makes
// golden files and cross-run counter diffs trustworthy.
func TestTelemetryDeterminism(t *testing.T) {
	run := func() *BenchResult {
		cfg := DefaultBench()
		cfg.Mode = ClientODP
		cfg.Size = 32
		cfg.NumQPs = 8
		cfg.NumOps = 64
		cfg.CACK = 18
		cfg.SampleEvery = 10 * sim.Millisecond
		return RunMicrobench(cfg)
	}
	a, b := run(), run()
	ea, eb := exportAll(t, a), exportAll(t, b)
	if ea != eb {
		t.Fatalf("same-seed exports differ (%d vs %d bytes)", len(ea), len(eb))
	}
	if a.Telemetry.Len() < 2 {
		t.Fatalf("series too short to be meaningful: %d samples", a.Telemetry.Len())
	}
	// Different seeds must still export the same metric schema (names and
	// label sets), even if values differ.
	cfg := DefaultBench()
	cfg.Seed = 99
	cfg.Mode = ClientODP
	cfg.Size = 32
	cfg.NumQPs = 8
	cfg.NumOps = 64
	cfg.CACK = 18
	cfg.SampleEvery = 10 * sim.Millisecond
	c := RunMicrobench(cfg)
	schema := func(s telemetry.Snapshot) string {
		var sb strings.Builder
		for _, smp := range s.Samples {
			sb.WriteString(smp.Name)
			sb.WriteString(smp.Labels)
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	if schema(a.Final) != schema(c.Final) {
		t.Error("metric schema depends on seed")
	}
}

// TestFinalSnapshotMatchesLegacyFields checks the registry and the
// pre-existing exported fields are two views of the same storage.
func TestFinalSnapshotMatchesLegacyFields(t *testing.T) {
	cfg := DefaultBench()
	cfg.Interval = sim.Millisecond
	r := RunMicrobench(cfg)

	if got := r.Final.Total(telemetry.LocalAckTimeoutErr); uint64(got) != r.Timeouts {
		t.Errorf("local_ack_timeout_err total = %v, legacy Timeouts = %d", got, r.Timeouts)
	}
	if got := r.Final.Total(telemetry.SimDammedDrops); uint64(got) != r.DammedDrops {
		t.Errorf("sim_dammed_drops total = %v, legacy DammedDrops = %d", got, r.DammedDrops)
	}
	if got := r.Final.Total(telemetry.SimRNRNakSent); uint64(got) != r.RNRNaksSent {
		t.Errorf("sim_rnr_nak_sent total = %v, legacy RNRNaksSent = %d", got, r.RNRNaksSent)
	}
	if got := r.Final.Total(telemetry.SimRetransmits); uint64(got) != r.Retransmits {
		t.Errorf("sim_retransmits total = %v, legacy Retransmits = %d", got, r.Retransmits)
	}
	if got := r.Final.Total(telemetry.SimFabricPacketsSent); uint64(got) != r.PacketsOnWire {
		t.Errorf("sim_fabric_packets_sent = %v, legacy PacketsOnWire = %d", got, r.PacketsOnWire)
	}
}
