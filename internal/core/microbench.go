// Package core is the paper's contribution as a toolkit: the Figure-3
// micro-benchmark, the wrong-LID timeout probe behind Figure 2, sweep
// drivers that regenerate every figure of the evaluation, detectors that
// identify packet damming and packet flood in captures, and the
// software-side workarounds §IX-A proposes.
package core

import (
	"fmt"

	"odpsim/internal/capture"
	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// ODPMode selects which sides of the connection register their buffers
// with on-demand paging (§IV-A's client-side / server-side / both-side
// terminology; the client issues READs, the server owns the remote
// buffer).
type ODPMode int

// ODP modes.
const (
	NoODP ODPMode = iota
	ServerODP
	ClientODP
	BothODP
)

// String implements fmt.Stringer.
func (m ODPMode) String() string {
	switch m {
	case NoODP:
		return "No ODP"
	case ServerODP:
		return "Server-side ODP"
	case ClientODP:
		return "Client-side ODP"
	case BothODP:
		return "Both-side ODP"
	default:
		return fmt.Sprintf("ODPMode(%d)", int(m))
	}
}

// BenchConfig parameterizes the micro-benchmark exactly like the
// simplified C code of Figure 3: message size, number of operations,
// number of QPs and the interval between posts, plus the connection
// attributes the paper varies.
type BenchConfig struct {
	System cluster.System
	Seed   int64

	Size     int      // message size per operation (bytes)
	NumOps   int      // number of READ operations
	NumQPs   int      // QPs used round-robin (Figure 3's num_qps)
	Interval sim.Time // sleep between posts
	Mode     ODPMode

	CACK        int
	RetryCount  int
	MinRNRDelay sim.Time

	// OpOverride, when non-nil, chooses the operation type per index
	// (used by the §V-C variants where the second operation is a WRITE
	// or SEND). Default is READ for every op.
	OpOverride func(i int) rnic.SendOp

	// TouchAllButFirst pre-touches every communication page except the
	// first operation's, reproducing the §V-C control experiment.
	TouchAllButFirst bool

	// PostOverhead is the per-post CPU cost; 0 selects a default scaled
	// by the system's CPUFactor.
	PostOverhead sim.Time

	// WithCapture attaches an ibdump-style capture (memory-heavy for
	// large runs; packet *counts* are always available).
	WithCapture bool

	// DummyPing enables the §IX-A workaround: a software timer posting
	// a dummy READ every DummyPingInterval so the responder detects PSN
	// gaps quickly instead of waiting out the timeout.
	DummyPing         bool
	DummyPingInterval sim.Time

	// SampleEvery, when positive, scrapes the cluster's counter
	// registries on the sim clock at that interval, the way a monitoring
	// daemon polls `rdma statistic` — no packet capture needed. The
	// series lands in BenchResult.Telemetry.
	SampleEvery sim.Time

	// Eng, when non-nil, is Reset with the trial seed and reused as the
	// simulation engine, recycling event storage across a sweep's
	// trials. The run is byte-identical to one on a fresh engine. An
	// engine must not be shared by concurrent trials; the sweep layer
	// keeps one per parallel worker (see Engines).
	Eng *sim.Engine
}

// DefaultBench returns the §V configuration: KNL, 100-byte messages, one
// QP, C_ACK=1, C_retry=7, minimal RNR NAK delay 1.28 ms, both-side ODP.
func DefaultBench() BenchConfig {
	return BenchConfig{
		System:      cluster.KNL(),
		Seed:        1,
		Size:        100,
		NumOps:      2,
		NumQPs:      1,
		Mode:        BothODP,
		CACK:        1,
		RetryCount:  7,
		MinRNRDelay: sim.FromMillis(1.28),
	}
}

// BenchResult reports one micro-benchmark run.
type BenchResult struct {
	ExecTime sim.Time
	// Failed reports an IBV_WC_RETRY_EXC_ERR abort (retry budget
	// exhausted), as in the omitted SparkUCX samples.
	Failed bool

	Timeouts       uint64
	Retransmits    uint64
	RNRNaksSent    uint64
	NakSeqSent     uint64
	DammedDrops    uint64
	ClientFaults   uint64
	SpuriousTotal  uint64
	PacketsOnWire  uint64
	CompletionTime []sim.Time // per op index; -1 if failed

	Cap *capture.Capture // nil unless WithCapture

	// Telemetry holds the sampled counter time-series (nil unless
	// SampleEvery was set), and Final the end-of-run counter snapshot
	// (always taken).
	Telemetry *telemetry.TimeSeries
	Final     telemetry.Snapshot
}

// TimedOut reports whether any Local-ACK timeout fired during the run —
// the event whose probability Figures 6 and 7 plot.
func (r *BenchResult) TimedOut() bool { return r.Timeouts > 0 }

// RunMicrobench executes the Figure-3 micro-benchmark once and returns
// its measurements.
func RunMicrobench(cfg BenchConfig) *BenchResult {
	if cfg.NumOps <= 0 || cfg.NumQPs <= 0 || cfg.Size <= 0 {
		panic("core: NumOps, NumQPs and Size must be positive")
	}
	cl := cfg.System.BuildOn(cfg.Eng, cfg.Seed, 2)
	client, server := cl.Nodes[0], cl.Nodes[1]

	var cap_ *capture.Capture
	if cfg.WithCapture {
		cap_ = capture.Attach(cl.Fab)
	}

	// Communication buffers are aligned to 4096-byte boundaries and laid
	// out as local_buf[size*i] / remote_buf[size*i] (Figure 3, Figure 10).
	buflen := cfg.Size * cfg.NumOps
	lbuf := client.AS.Alloc(buflen)
	rbuf := server.AS.Alloc(buflen)
	// The "ODP side" of each mode is a managed registration: it follows
	// the node's memory mode (odp normally, npr/pin when the System says
	// so), which is how `memory:` sweeps reroute every benchmark.
	switch cfg.Mode {
	case ClientODP, BothODP:
		client.RegisterManagedMR(lbuf, buflen)
	default:
		client.RegisterMR(lbuf, buflen)
	}
	switch cfg.Mode {
	case ServerODP, BothODP:
		server.RegisterManagedMR(rbuf, buflen)
	default:
		server.RegisterMR(rbuf, buflen)
	}
	if cfg.TouchAllButFirst {
		firstPage := hostmem.PageOf(lbuf)
		for _, p := range hostmem.PagesSpanned(lbuf, buflen) {
			if p != firstPage {
				client.AS.Touch(hostmem.PageBase(p), hostmem.PageSize)
			}
		}
		firstPage = hostmem.PageOf(rbuf)
		for _, p := range hostmem.PagesSpanned(rbuf, buflen) {
			if p != firstPage {
				server.AS.Touch(hostmem.PageBase(p), hostmem.PageSize)
			}
		}
	}

	cqC := rnic.NewCQ(cl.Eng)
	cqS := rnic.NewCQ(cl.Eng)
	params := rnic.ConnParams{CACK: cfg.CACK, RetryCount: cfg.RetryCount, MinRNRDelay: cfg.MinRNRDelay}
	qps := make([]*rnic.QP, cfg.NumQPs)
	for i := range qps {
		qc := client.CreateQP(cqC, cqC)
		qs := server.CreateQP(cqS, cqS)
		rnic.ConnectPair(qc, qs, params, params)
		qps[i] = qc
		if cfg.OpOverride != nil {
			// SEND variants need receive buffers on the server side.
			for j := 0; j < cfg.NumOps; j++ {
				qs.PostRecv(rnic.RecvWR{ID: uint64(j), Addr: rbuf, Len: cfg.Size})
			}
		}
	}

	post := cfg.PostOverhead
	if post == 0 {
		post = sim.Time(float64(300*sim.Nanosecond) * cfg.System.CPUFactor)
	}

	res := &BenchResult{CompletionTime: make([]sim.Time, cfg.NumOps)}
	for i := range res.CompletionTime {
		res.CompletionTime[i] = -1
	}

	var pinger *DummyPinger
	var sampler *telemetry.Sampler
	if cfg.SampleEvery > 0 {
		sampler = telemetry.NewSampler(cl.Eng, cl.Telemetry(), cfg.SampleEvery)
	}
	cl.Eng.Go("microbench", func(p *sim.Proc) {
		start := p.Now()
		if sampler != nil {
			sampler.Start()
		}
		if cfg.DummyPing {
			pinger = StartDummyPinger(cl.Eng, qps[0], lbuf, rbuf, cfg.DummyPingInterval)
		}
		for i := 0; i < cfg.NumOps; i++ {
			op := rnic.OpRead
			if cfg.OpOverride != nil {
				op = cfg.OpOverride(i)
			}
			off := hostmem.Addr(cfg.Size * i)
			qps[i%cfg.NumQPs].PostSend(rnic.SendWR{
				ID: uint64(i), Op: op,
				LocalAddr: lbuf + off, RemoteAddr: rbuf + off, Len: cfg.Size,
			})
			p.Sleep(post)
			if cfg.Interval > 0 {
				p.Sleep(cfg.Interval)
			}
		}
		// wait(): poll the CQ until every operation completed (or the
		// QP died).
		done := 0
		for done < cfg.NumOps {
			cqes := cqC.WaitN(p, 1)
			for _, e := range cqes {
				if int(e.WRID) < cfg.NumOps && res.CompletionTime[e.WRID] < 0 {
					done++
					if e.Status == rnic.WCSuccess {
						res.CompletionTime[e.WRID] = e.At
					} else {
						res.Failed = true
					}
				}
			}
		}
		if pinger != nil {
			pinger.Stop()
		}
		if sampler != nil {
			sampler.Stop()
		}
		res.ExecTime = p.Now() - start
	})
	cl.Eng.MustRun()

	if sampler != nil {
		res.Telemetry = sampler.Series()
	}
	res.Final = cl.Telemetry().Snapshot(cl.Eng.Now())

	for _, qp := range qps {
		res.Timeouts += qp.Stats.Timeouts
		res.Retransmits += qp.Stats.Retransmits
		res.ClientFaults += qp.Stats.ClientFaultRounds
	}
	res.RNRNaksSent = server.RNRNakSent
	res.NakSeqSent = server.NakSeqSent
	res.DammedDrops = server.DammedDrops
	res.SpuriousTotal = client.ODP.SpuriousTotal + server.ODP.SpuriousTotal
	res.PacketsOnWire = cl.Fab.Sent
	res.Cap = cap_
	return res
}
