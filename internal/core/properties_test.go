package core

import (
	"math/rand"
	"testing"

	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

// TestRandomSchedulesAlwaysComplete is the harness-level liveness
// property: for random (size, ops, QPs, interval, mode) configurations,
// every operation eventually completes successfully — damming and flood
// delay, they never lose work.
func TestRandomSchedulesAlwaysComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		cfg := DefaultBench()
		cfg.Seed = int64(trial) * 131
		cfg.Size = 8 << rng.Intn(8) // 8 .. 1024
		cfg.NumOps = 1 + rng.Intn(24)
		cfg.NumQPs = 1 + rng.Intn(8)
		cfg.Interval = sim.Time(rng.Intn(3_000_000)) // 0..3 ms
		cfg.Mode = ODPMode(rng.Intn(4))
		cfg.CACK = 1 + rng.Intn(18)
		r := RunMicrobench(cfg)
		if r.Failed {
			t.Fatalf("trial %d (%+v): run failed", trial, cfg)
		}
		for i, ct := range r.CompletionTime {
			if ct < 0 {
				t.Fatalf("trial %d: op %d never completed", trial, i)
			}
		}
	}
}

// TestDammingIndependentOfOtherQPs reproduces §V-C: a dammed QP stays
// dammed even when other QPs keep posting new operations.
func TestDammingIndependentOfOtherQPs(t *testing.T) {
	sys := DefaultBench().System
	cl := sys.Build(42, 2)
	client, server := cl.Nodes[0], cl.Nodes[1]
	buflen := 16 * 4096
	lbuf := client.AS.Alloc(buflen)
	rbuf := server.AS.Alloc(buflen)
	client.RegisterMR(lbuf, buflen)
	server.RegisterODPMR(rbuf, buflen)
	cq := rnic.NewCQ(cl.Eng)
	scq := rnic.NewCQ(cl.Eng)
	params := rnic.ConnParams{CACK: 1, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
	q1 := client.CreateQP(cq, cq)
	s1 := server.CreateQP(scq, scq)
	rnic.ConnectPair(q1, s1, params, params)
	q2 := client.CreateQP(cq, cq)
	s2 := server.CreateQP(scq, scq)
	rnic.ConnectPair(q2, s2, params, params)

	// QP1: the two-READ damming schedule.
	q1.PostSend(rnic.SendWR{ID: 1, Op: rnic.OpRead, LocalAddr: lbuf, RemoteAddr: rbuf, Len: 100})
	cl.Eng.After(sim.Millisecond, func() {
		q1.PostSend(rnic.SendWR{ID: 2, Op: rnic.OpRead, LocalAddr: lbuf + 100, RemoteAddr: rbuf + 100, Len: 100})
	})
	// QP2: a steady stream of fresh operations on touched pages.
	server.AS.Touch(rbuf+8*4096, 4*4096)
	for i := 0; i < 40; i++ {
		i := i
		cl.Eng.After(sim.Time(i)*200*sim.Microsecond, func() {
			q2.PostSend(rnic.SendWR{ID: uint64(100 + i), Op: rnic.OpRead,
				LocalAddr: lbuf + 8*4096, RemoteAddr: rbuf + 8*4096, Len: 64})
		})
	}
	cl.Eng.Run()
	if q1.Stats.Timeouts != 1 {
		t.Errorf("QP1 timeouts = %d: other QPs' traffic must not rescue a dammed QP", q1.Stats.Timeouts)
	}
	if q2.Stats.Timeouts != 0 {
		t.Errorf("QP2 timeouts = %d: the dammed QP must not infect others", q2.Stats.Timeouts)
	}
	if n := len(cq.Poll(0)); n != 42 {
		t.Errorf("completions = %d, want 42", n)
	}
}

// TestDammingIndependentOfSize reproduces §V-C: the pitfall is
// size-irrelevant.
func TestDammingIndependentOfSize(t *testing.T) {
	for _, size := range []int{8, 100, 4096, 16384} {
		cfg := DefaultBench()
		cfg.Size = size
		cfg.Interval = sim.Millisecond
		r := RunMicrobench(cfg)
		if !r.TimedOut() {
			t.Errorf("size %d: damming should be size-independent", size)
		}
	}
}

// TestDammingSamePageOrNot reproduces §V-C: same-page vs cross-page
// second buffers both dam (size 100 keeps both ops in page 0; size 4096
// splits them).
func TestDammingSamePageOrNot(t *testing.T) {
	for _, size := range []int{100, 4096} {
		cfg := DefaultBench()
		cfg.Size = size
		cfg.Interval = sim.Millisecond
		if !RunMicrobench(cfg).TimedOut() {
			t.Errorf("size %d: expected damming", size)
		}
	}
}

// TestFloodNeverOnServerSideOnly reproduces §VI-C: the update failure is
// a client-side phenomenon — server-side ODP retransmission counts stay
// comparatively modest.
func TestFloodNeverOnServerSideOnly(t *testing.T) {
	run := func(m ODPMode) uint64 {
		cfg := DefaultBench()
		cfg.Mode = m
		cfg.Size = 32
		cfg.NumQPs = 64
		cfg.NumOps = 256
		cfg.CACK = 18
		return RunMicrobench(cfg).Retransmits
	}
	server, client := run(ServerODP), run(ClientODP)
	if client < server*2 {
		t.Errorf("client retransmits (%d) should clearly exceed server-side (%d)", client, server)
	}
}
