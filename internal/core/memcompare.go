package core

import (
	"fmt"

	"odpsim/internal/scenario"
)

func init() {
	scenario.RegisterWorkload(memCompare{})
}

// memModes is the comparison order: the paper's baseline (pin), its
// subject (odp), and the NP-RDMA mitigation (npr).
var memModes = []string{"pin", "odp", "npr"}

// memCompare is the mitigation-comparison wrapper: it reruns an inner
// workload under each memory mode (pin, odp, npr), separated by
// `=== memory: <mode> ===` headers. Every other scenario field passes
// through to the inner workload unchanged, so npr-exec is exactly fig4
// swept three ways.
type memCompare struct{}

func (memCompare) Kind() string { return "mem-compare" }

// derive builds the inner scenario for one memory mode: same fields,
// inner workload, memory block pinned to the mode (a declared PoolKB
// only applies to the npr leg — cluster ignores it elsewhere, but the
// spec validator rejects pool_kb without mode "npr").
func (memCompare) derive(sc scenario.Scenario, mode string) scenario.Scenario {
	sc.Workload = sc.Inner
	sc.Inner = ""
	mem := scenario.MemorySpec{Mode: mode}
	if sc.Memory != nil && mode == "npr" {
		mem.PoolKB = sc.Memory.PoolKB
	}
	sc.Memory = &mem
	return sc
}

func (w memCompare) Validate(sc *scenario.Scenario) error {
	if sc.Inner == "" {
		return fmt.Errorf("scenario %q: mem-compare needs an inner workload", sc.Name)
	}
	if sc.Inner == w.Kind() {
		return fmt.Errorf("scenario %q: mem-compare cannot nest itself", sc.Name)
	}
	if sc.Memory != nil && sc.Memory.Mode != "" && sc.Memory.Mode != "npr" {
		return fmt.Errorf("scenario %q: mem-compare sweeps every memory mode; memory.mode %q would be ignored",
			sc.Name, sc.Memory.Mode)
	}
	inner, err := scenario.LookupWorkload(sc.Inner)
	if err != nil {
		return fmt.Errorf("scenario %q: %v", sc.Name, err)
	}
	for _, mode := range memModes {
		d := w.derive(*sc, mode)
		if err := d.Validate(); err != nil {
			return err
		}
		if err := inner.Validate(&d); err != nil {
			return err
		}
	}
	return nil
}

func (w memCompare) Run(sc *scenario.Scenario, out *scenario.Output) error {
	inner, err := scenario.LookupWorkload(sc.Inner)
	if err != nil {
		return err
	}
	for i, mode := range memModes {
		if i > 0 {
			fmt.Fprintln(out.W)
		}
		fmt.Fprintf(out.W, "=== memory: %s ===\n", mode)
		d := w.derive(*sc, mode)
		if err := inner.Run(&d, out); err != nil {
			return err
		}
	}
	return nil
}
