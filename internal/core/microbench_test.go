package core

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

func TestSingleReadPerMode(t *testing.T) {
	// Figure 1's common-case latencies: No-ODP ≈ µs, server-side ≈
	// 4.5 ms (RNR wait), client-side ≈ 0.5–1.5 ms (blind retransmit
	// rounds until the status update).
	cases := []struct {
		mode   ODPMode
		lo, hi sim.Time
	}{
		{NoODP, 0, 50 * sim.Microsecond},
		{ServerODP, sim.FromMillis(4), sim.FromMillis(5.2)},
		{ClientODP, sim.FromMicros(300), sim.FromMillis(3)},
		{BothODP, sim.FromMillis(4), sim.FromMillis(7)},
	}
	for _, c := range cases {
		cfg := DefaultBench()
		cfg.NumOps = 1
		cfg.Mode = c.mode
		r := RunMicrobench(cfg)
		if r.Failed {
			t.Fatalf("%v: run failed", c.mode)
		}
		if r.ExecTime < c.lo || r.ExecTime > c.hi {
			t.Errorf("%v: exec = %v, want in [%v, %v]", c.mode, r.ExecTime, c.lo, c.hi)
		}
	}
}

func TestFig4TwoReadTimeline(t *testing.T) {
	// Interval 1 ms, both-side: damming timeout of several hundred ms.
	cfg := DefaultBench()
	cfg.Interval = sim.Millisecond
	r := RunMicrobench(cfg)
	if !r.TimedOut() {
		t.Fatal("expected a timeout at interval 1 ms")
	}
	if r.ExecTime < sim.FromMillis(300) || r.ExecTime > sim.FromMillis(1500) {
		t.Errorf("exec = %v, want several hundred ms", r.ExecTime)
	}
	// Interval 5.5 ms: outside the pending window.
	cfg.Interval = sim.FromMillis(5.5)
	r = RunMicrobench(cfg)
	if r.TimedOut() {
		t.Error("no timeout expected at interval 5.5 ms")
	}
	if r.ExecTime > sim.FromMillis(20) {
		t.Errorf("exec = %v, want ≈10 ms", r.ExecTime)
	}
	// Interval 0: the second post reaches the wire before the RNR NAK.
	cfg.Interval = 0
	r = RunMicrobench(cfg)
	if r.TimedOut() {
		t.Error("no timeout expected at interval 0")
	}
}

func TestFig6aServerODPWindowTracksRNRDelay(t *testing.T) {
	// With minimal RNR NAK delay 1.28 ms the vulnerable window is
	// ≈4.5 ms; with 0.01 ms it shrinks to ≈35 µs.
	base := DefaultBench()
	base.Mode = ServerODP

	base.Interval = sim.FromMillis(3)
	if r := RunMicrobench(base); !r.TimedOut() {
		t.Error("interval 3 ms inside 4.5 ms window: want timeout")
	}
	base.Interval = sim.FromMillis(5.5)
	if r := RunMicrobench(base); r.TimedOut() {
		t.Error("interval 5.5 ms outside window: want no timeout")
	}

	small := base
	small.MinRNRDelay = SmallestRNRDelay // 0.01 ms ⇒ window ≈ 35 µs
	small.Interval = sim.FromMillis(3)
	if r := RunMicrobench(small); r.TimedOut() {
		t.Error("small RNR delay should shrink the window below 3 ms")
	}

	large := base
	large.MinRNRDelay = sim.FromMillis(10.24) // window ≈ 36 ms
	large.Interval = sim.FromMillis(20)
	if r := RunMicrobench(large); !r.TimedOut() {
		t.Error("10.24 ms RNR delay should widen the window past 20 ms")
	}
}

func TestFig6bClientODPWindow(t *testing.T) {
	base := DefaultBench()
	base.Mode = ClientODP
	base.Interval = sim.FromMicros(300)
	if r := RunMicrobench(base); !r.TimedOut() {
		t.Error("interval 300 µs inside the ≈500 µs client window: want timeout")
	}
	base.Interval = sim.FromMillis(3)
	if r := RunMicrobench(base); r.TimedOut() {
		t.Error("interval 3 ms outside the client window: want no timeout")
	}
}

func TestFig7MoreOpsNarrowWindow(t *testing.T) {
	// With 3 ops at interval 2 ms, all fit into the ≈4.5 ms pending
	// window ⇒ timeout; at interval 2.6 ms the third escapes and the
	// PSN-gap NAK rescues everything.
	base := DefaultBench()
	base.NumOps = 3
	base.Interval = sim.FromMillis(2)
	r := RunMicrobench(base)
	if !r.TimedOut() {
		t.Error("3 ops at 2 ms: want timeout")
	}
	base.Interval = sim.FromMillis(3.0)
	r = RunMicrobench(base)
	if r.TimedOut() {
		t.Error("3 ops at 3.0 ms: want NAK rescue, no timeout")
	}
	if r.NakSeqSent == 0 {
		t.Error("rescue should involve a PSN sequence error NAK")
	}
	// 4 ops narrow further: at 2 ms the fourth (posted at 6 ms) escapes.
	base.NumOps = 4
	base.Interval = sim.FromMillis(2)
	r = RunMicrobench(base)
	if r.TimedOut() {
		t.Error("4 ops at 2 ms: the fourth post should rescue")
	}
}

func TestSecondOpWriteOrSendAlsoDams(t *testing.T) {
	// §V-C: damming is not specific to READ as the second operation.
	for _, op := range []rnic.SendOp{rnic.OpWrite, rnic.OpSend} {
		cfg := DefaultBench()
		cfg.Mode = ServerODP
		cfg.Interval = sim.Millisecond
		cfg.OpOverride = func(i int) rnic.SendOp {
			if i == 0 {
				return rnic.OpRead
			}
			return op
		}
		r := RunMicrobench(cfg)
		if !r.TimedOut() {
			t.Errorf("second op %v: want damming timeout", op)
		}
	}
}

func TestTouchedBuffersStillDam(t *testing.T) {
	// §V-C: damming is unrelated to faults on the second communication.
	cfg := DefaultBench()
	cfg.Mode = ServerODP
	cfg.Interval = sim.Millisecond
	cfg.TouchAllButFirst = true
	r := RunMicrobench(cfg)
	if !r.TimedOut() {
		t.Error("pre-touched buffers must still exhibit damming")
	}
}

func TestDummyPingWorkaroundAvoidsTimeout(t *testing.T) {
	cfg := DefaultBench()
	cfg.Interval = sim.Millisecond
	cfg.DummyPing = true
	cfg.DummyPingInterval = 200 * sim.Microsecond
	r := RunMicrobench(cfg)
	if r.TimedOut() {
		t.Error("dummy-communication workaround should avoid the timeout")
	}
	if r.ExecTime > sim.FromMillis(30) {
		t.Errorf("exec = %v, want ≈10 ms with the workaround", r.ExecTime)
	}
}

func TestMeasureTimeoutFloors(t *testing.T) {
	// Figure 2's floors: ≈500 ms for ConnectX-4 at small C_ACK, ≈30 ms
	// for ConnectX-5; C_ACK=18 ≈ 2 s.
	to := MeasureTimeout(cluster.KNL(), 1, 1)
	if to < sim.FromMillis(350) || to > sim.FromMillis(700) {
		t.Errorf("CX4 T_o(1) = %v, want ≈500 ms", to)
	}
	to5 := MeasureTimeout(cluster.AzureHC(), 1, 2)
	if to5 < sim.FromMillis(20) || to5 > sim.FromMillis(45) {
		t.Errorf("CX5 T_o(1) = %v, want ≈30 ms", to5)
	}
	to18 := MeasureTimeout(cluster.KNL(), 18, 3)
	if to18 < sim.FromMillis(1200) || to18 > sim.FromMillis(4500) {
		t.Errorf("CX4 T_o(18) = %v, want ≈2 s", to18)
	}
	// Monotone beyond the floor.
	if MeasureTimeout(cluster.KNL(), 20, 4) <= to18 {
		t.Error("T_o must grow beyond the vendor floor")
	}
}

func TestTheoreticalLines(t *testing.T) {
	if TheoreticalTTr(1) != sim.Time(8192)*sim.Nanosecond {
		t.Errorf("TTr(1) = %v", TheoreticalTTr(1))
	}
	if TheoreticalTo(1) != 4*TheoreticalTTr(1) {
		t.Error("To must be 4×TTr")
	}
	if TheoreticalTTr(0) != 0 {
		t.Error("TTr(0) must be 0")
	}
}

func TestMicrobenchDeterminism(t *testing.T) {
	cfg := DefaultBench()
	cfg.Interval = sim.Millisecond
	a := RunMicrobench(cfg)
	b := RunMicrobench(cfg)
	if a.ExecTime != b.ExecTime || a.Retransmits != b.Retransmits || a.PacketsOnWire != b.PacketsOnWire {
		t.Errorf("same seed produced different runs: %+v vs %+v", a, b)
	}
	cfg.Seed++
	c := RunMicrobench(cfg)
	if c.ExecTime == a.ExecTime && c.PacketsOnWire == a.PacketsOnWire {
		t.Log("note: different seed produced identical run (possible but unlikely)")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero NumOps should panic")
		}
	}()
	cfg := DefaultBench()
	cfg.NumOps = 0
	RunMicrobench(cfg)
}
