package core

import (
	"sort"
	"strconv"

	"odpsim/internal/cluster"
	"odpsim/internal/parallel"
	"odpsim/internal/sim"
	"odpsim/internal/stats"
)

// The sweep layer fans its grids across internal/parallel's worker pool.
// The determinism contract (see that package's doc and DESIGN.md): every
// point's seed is derived from the point's grid position exactly as the
// historical sequential loops derived it, each point runs on its own
// engine and cluster, and results are committed in index order — so
// output is byte-identical to sequential execution for any -j.

// Engines is a per-worker engine cache for parallel sweeps: Get(worker)
// lazily creates one engine per worker, and passing it as BenchConfig.Eng
// recycles event storage across that worker's trials. Index only with the
// worker argument parallel.Run supplies — that is what makes the reuse
// race-free.
type Engines []*sim.Engine

// NewEngines sizes a cache for the current worker bound.
func NewEngines() Engines { return make(Engines, parallel.Jobs()) }

// Get returns worker w's engine, creating it on first use. The seed is
// irrelevant: every run Resets the engine with its own trial seed.
func (e Engines) Get(w int) *sim.Engine {
	if e[w] == nil {
		e[w] = sim.New(0)
	}
	return e[w]
}

// SweepTimeouts regenerates Figure 2: the measured timeout T_o as a
// function of C_ACK for each system, one series per system (Y in
// seconds). Points run across the worker pool.
func SweepTimeouts(systems []cluster.System, cacks []int, seed int64) []*stats.Series {
	tos := make([]sim.Time, len(systems)*len(cacks))
	engs := NewEngines()
	parallel.Run(len(tos), func(w, i int) {
		si, ci := i/len(cacks), i%len(cacks)
		tos[i] = MeasureTimeoutOn(engs.Get(w), systems[si], cacks[ci], seed+int64(si*1000+cacks[ci]))
	})
	var out []*stats.Series
	for si, sys := range systems {
		s := &stats.Series{Label: sys.Name}
		for ci, c := range cacks {
			s.Add(float64(c), tos[si*len(cacks)+ci].Seconds())
		}
		out = append(out, s)
	}
	return out
}

// IntervalRange builds an interval grid in milliseconds: from, from+step,
// …, to (inclusive within floating tolerance). Each point is computed as
// from + i·step — accumulating x += step instead drifts by an ulp per
// step, enough to truncate grid points one nanosecond low over long
// grids (the Fig-6b 0.1 ms grid's 0.8 ms point used to land on
// 799999 ns).
func IntervalRange(fromMs, toMs, stepMs float64) []sim.Time {
	if stepMs <= 0 {
		panic("core: IntervalRange needs a positive step")
	}
	var out []sim.Time
	for i := 0; ; i++ {
		x := fromMs + float64(i)*stepMs
		if x > toMs+1e-9 {
			return out
		}
		out = append(out, sim.FromMillis(x))
	}
}

// SweepExecTime regenerates Figure 4: the mean execution time of the
// micro-benchmark across trials at each posting interval (X in ms, Y in
// seconds). The interval×trial grid runs across the worker pool; per-
// interval means are reduced in trial order, so the result is bit-equal
// to the sequential sum.
func SweepExecTime(base BenchConfig, intervals []sim.Time, trials int) *stats.Series {
	execs := make([]float64, len(intervals)*trials)
	engs := NewEngines()
	parallel.Run(len(execs), func(w, i int) {
		cfg := base
		cfg.Eng = engs.Get(w)
		cfg.Interval = intervals[i/trials]
		cfg.Seed = base.Seed + int64(i%trials)*7919 + int64(cfg.Interval)
		execs[i] = RunMicrobench(cfg).ExecTime.Seconds()
	})
	s := &stats.Series{Label: base.Mode.String()}
	for ivi, iv := range intervals {
		var sum float64
		for t := 0; t < trials; t++ {
			sum += execs[ivi*trials+t]
		}
		s.Add(iv.Millis(), sum/float64(trials))
	}
	return s
}

// SweepTimeoutProbability regenerates Figures 6 and 7: the fraction of
// trials (in %) in which a Local-ACK timeout fired, per posting interval.
// The interval×trial grid runs across the worker pool.
func SweepTimeoutProbability(base BenchConfig, intervals []sim.Time, trials int, label string) *stats.Series {
	timedOut := make([]bool, len(intervals)*trials)
	engs := NewEngines()
	parallel.Run(len(timedOut), func(w, i int) {
		cfg := base
		cfg.Eng = engs.Get(w)
		cfg.Interval = intervals[i/trials]
		cfg.Seed = base.Seed + int64(i%trials)*104729 + int64(cfg.Interval)
		timedOut[i] = RunMicrobench(cfg).TimedOut()
	})
	s := &stats.Series{Label: label}
	for ivi, iv := range intervals {
		hits := 0
		for t := 0; t < trials; t++ {
			if timedOut[ivi*trials+t] {
				hits++
			}
		}
		s.Add(iv.Millis(), 100*float64(hits)/float64(trials))
	}
	return s
}

// QPSweepResult is one Figure-9 sweep: execution time and packet count
// per ODP mode, indexed like the qps argument.
type QPSweepResult struct {
	QPs     []int
	Time    map[ODPMode]*stats.Series // seconds
	Packets map[ODPMode]*stats.Series // thousands of packets, as Figure 9b
}

// SweepQPs regenerates Figure 9: the micro-benchmark with a fixed
// operation count across a range of QP counts for each requested mode.
// The qps×modes grid runs across the worker pool.
func SweepQPs(base BenchConfig, qps []int, modes []ODPMode) *QPSweepResult {
	type point struct {
		exec    float64
		packets float64
	}
	pts := make([]point, len(qps)*len(modes))
	engs := NewEngines()
	parallel.Run(len(pts), func(w, i int) {
		cfg := base
		cfg.Eng = engs.Get(w)
		cfg.NumQPs = qps[i/len(modes)]
		cfg.Mode = modes[i%len(modes)]
		cfg.Seed = base.Seed + int64(cfg.NumQPs)*31 + int64(cfg.Mode)
		r := RunMicrobench(cfg)
		pts[i] = point{exec: r.ExecTime.Seconds(), packets: float64(r.PacketsOnWire) / 1000}
	})
	res := &QPSweepResult{
		QPs:     qps,
		Time:    make(map[ODPMode]*stats.Series),
		Packets: make(map[ODPMode]*stats.Series),
	}
	for _, m := range modes {
		res.Time[m] = &stats.Series{Label: m.String()}
		res.Packets[m] = &stats.Series{Label: m.String()}
	}
	for ni, n := range qps {
		for mi, m := range modes {
			p := pts[ni*len(modes)+mi]
			res.Time[m].Add(float64(n), p.exec)
			res.Packets[m].Add(float64(n), p.packets)
		}
	}
	return res
}

// PageOfOp returns the page index of operation i's buffer slot for the
// Figure-10 layout.
func PageOfOp(i, size int) int { return i * size / 4096 }

// ProgressByPage regenerates Figure 11 from one run's completion times:
// for each page, a cumulative count of finished operations sampled every
// step (X in ms, Y = finished ops of that page).
func ProgressByPage(r *BenchResult, size int, step sim.Time) []*stats.Series {
	npages := 0
	for i := range r.CompletionTime {
		if p := PageOfOp(i, size); p >= npages {
			npages = p + 1
		}
	}
	// Completion times per page, sorted.
	perPage := make([][]sim.Time, npages)
	var last sim.Time
	for i, ct := range r.CompletionTime {
		if ct < 0 {
			continue
		}
		p := PageOfOp(i, size)
		perPage[p] = append(perPage[p], ct)
		if ct > last {
			last = ct
		}
	}
	for _, ts := range perPage {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
	if step <= 0 {
		step = last / 100
		if step <= 0 {
			step = sim.Millisecond
		}
	}
	out := make([]*stats.Series, npages)
	for p := range perPage {
		s := &stats.Series{Label: "Page " + strconv.Itoa(p)}
		for t := sim.Time(0); t <= last+step; t += step {
			n := sort.Search(len(perPage[p]), func(i int) bool { return perPage[p][i] > t })
			s.Add(t.Millis(), float64(n))
		}
		out[p] = s
	}
	return out
}
