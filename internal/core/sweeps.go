package core

import (
	"sort"
	"strconv"

	"odpsim/internal/cluster"
	"odpsim/internal/sim"
	"odpsim/internal/stats"
)

// SweepTimeouts regenerates Figure 2: the measured timeout T_o as a
// function of C_ACK for each system, one series per system (Y in
// seconds).
func SweepTimeouts(systems []cluster.System, cacks []int, seed int64) []*stats.Series {
	var out []*stats.Series
	for si, sys := range systems {
		s := &stats.Series{Label: sys.Name}
		for _, c := range cacks {
			to := MeasureTimeout(sys, c, seed+int64(si*1000+c))
			s.Add(float64(c), to.Seconds())
		}
		out = append(out, s)
	}
	return out
}

// IntervalRange builds an interval grid in milliseconds: from, from+step,
// …, to (inclusive within floating tolerance).
func IntervalRange(fromMs, toMs, stepMs float64) []sim.Time {
	var out []sim.Time
	for x := fromMs; x <= toMs+1e-9; x += stepMs {
		out = append(out, sim.FromMillis(x))
	}
	return out
}

// SweepExecTime regenerates Figure 4: the mean execution time of the
// micro-benchmark across trials at each posting interval (X in ms, Y in
// seconds).
func SweepExecTime(base BenchConfig, intervals []sim.Time, trials int) *stats.Series {
	s := &stats.Series{Label: base.Mode.String()}
	for _, iv := range intervals {
		var sum float64
		for t := 0; t < trials; t++ {
			cfg := base
			cfg.Interval = iv
			cfg.Seed = base.Seed + int64(t)*7919 + int64(iv)
			sum += RunMicrobench(cfg).ExecTime.Seconds()
		}
		s.Add(iv.Millis(), sum/float64(trials))
	}
	return s
}

// SweepTimeoutProbability regenerates Figures 6 and 7: the fraction of
// trials (in %) in which a Local-ACK timeout fired, per posting interval.
func SweepTimeoutProbability(base BenchConfig, intervals []sim.Time, trials int, label string) *stats.Series {
	s := &stats.Series{Label: label}
	for _, iv := range intervals {
		hits := 0
		for t := 0; t < trials; t++ {
			cfg := base
			cfg.Interval = iv
			cfg.Seed = base.Seed + int64(t)*104729 + int64(iv)
			if RunMicrobench(cfg).TimedOut() {
				hits++
			}
		}
		s.Add(iv.Millis(), 100*float64(hits)/float64(trials))
	}
	return s
}

// QPSweepResult is one Figure-9 sweep: execution time and packet count
// per ODP mode, indexed like the qps argument.
type QPSweepResult struct {
	QPs     []int
	Time    map[ODPMode]*stats.Series // seconds
	Packets map[ODPMode]*stats.Series // thousands of packets, as Figure 9b
}

// SweepQPs regenerates Figure 9: the micro-benchmark with a fixed
// operation count across a range of QP counts for each requested mode.
func SweepQPs(base BenchConfig, qps []int, modes []ODPMode) *QPSweepResult {
	res := &QPSweepResult{
		QPs:     qps,
		Time:    make(map[ODPMode]*stats.Series),
		Packets: make(map[ODPMode]*stats.Series),
	}
	for _, m := range modes {
		res.Time[m] = &stats.Series{Label: m.String()}
		res.Packets[m] = &stats.Series{Label: m.String()}
	}
	for _, n := range qps {
		for _, m := range modes {
			cfg := base
			cfg.NumQPs = n
			cfg.Mode = m
			cfg.Seed = base.Seed + int64(n)*31 + int64(m)
			r := RunMicrobench(cfg)
			res.Time[m].Add(float64(n), r.ExecTime.Seconds())
			res.Packets[m].Add(float64(n), float64(r.PacketsOnWire)/1000)
		}
	}
	return res
}

// PageOfOp returns the page index of operation i's buffer slot for the
// Figure-10 layout.
func PageOfOp(i, size int) int { return i * size / 4096 }

// ProgressByPage regenerates Figure 11 from one run's completion times:
// for each page, a cumulative count of finished operations sampled every
// step (X in ms, Y = finished ops of that page).
func ProgressByPage(r *BenchResult, size int, step sim.Time) []*stats.Series {
	npages := 0
	for i := range r.CompletionTime {
		if p := PageOfOp(i, size); p >= npages {
			npages = p + 1
		}
	}
	// Completion times per page, sorted.
	perPage := make([][]sim.Time, npages)
	var last sim.Time
	for i, ct := range r.CompletionTime {
		if ct < 0 {
			continue
		}
		p := PageOfOp(i, size)
		perPage[p] = append(perPage[p], ct)
		if ct > last {
			last = ct
		}
	}
	for _, ts := range perPage {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
	if step <= 0 {
		step = last / 100
		if step <= 0 {
			step = sim.Millisecond
		}
	}
	out := make([]*stats.Series, npages)
	for p := range perPage {
		s := &stats.Series{Label: "Page " + strconv.Itoa(p)}
		for t := sim.Time(0); t <= last+step; t += step {
			n := sort.Search(len(perPage[p]), func(i int) bool { return perPage[p][i] > t })
			s.Add(t.Millis(), float64(n))
		}
		out[p] = s
	}
	return out
}
