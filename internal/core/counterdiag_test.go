package core

import (
	"strings"
	"testing"

	"odpsim/internal/sim"
)

// The agreement tests: the counter-only diagnosers must reach the same
// verdicts the capture-based detectors reach on the same runs — damming
// on the Figure-5 scenario, flood on the Figure-8 scenario, nothing on a
// healthy baseline — without ever seeing a packet.

func TestCounterDammingAgreesWithCapture(t *testing.T) {
	cfg := DefaultBench()
	cfg.Interval = sim.Millisecond
	cfg.WithCapture = true
	cfg.SampleEvery = 10 * sim.Millisecond
	r := RunMicrobench(cfg)

	capIncidents := DetectDamming(r.Cap, 100*sim.Millisecond)
	if len(capIncidents) == 0 {
		t.Fatal("capture detector found no damming; scenario broken")
	}
	d := DiagnoseCounters(r.Telemetry)
	if len(d.Damming) == 0 {
		t.Fatalf("counter diagnoser missed the damming the capture shows: %v", capIncidents)
	}
	if len(d.Flood) != 0 {
		t.Errorf("spurious flood diagnosis on a damming run: %v", d.Flood)
	}
	inc := d.Damming[0]
	if inc.Stall() < 300*sim.Millisecond {
		t.Errorf("stall = %v, want timeout-scale plateau", inc.Stall())
	}
	if inc.Timeouts == 0 || inc.Outstanding == 0 {
		t.Errorf("incident missing evidence: %+v", inc)
	}
	if !strings.Contains(inc.String(), "local_ack_timeout_err") {
		t.Errorf("String() = %q", inc.String())
	}
}

func TestCounterFloodAgreesWithCapture(t *testing.T) {
	cfg := DefaultBench()
	cfg.Mode = ClientODP
	cfg.Size = 32
	cfg.NumQPs = 64
	cfg.NumOps = 256
	cfg.CACK = 18
	cfg.WithCapture = true
	cfg.SampleEvery = 10 * sim.Millisecond
	r := RunMicrobench(cfg)

	capIncidents := DetectFlood(r.Cap, 50*sim.Millisecond, 100)
	if len(capIncidents) == 0 {
		t.Fatal("capture detector found no flood; scenario broken")
	}
	d := DiagnoseCounters(r.Telemetry)
	if len(d.Flood) == 0 {
		t.Fatalf("counter diagnoser missed the flood the capture shows (retransmits=%d)", r.Retransmits)
	}
	if !strings.Contains(d.Flood[0].String(), "retransmissions") {
		t.Errorf("String() = %q", d.Flood[0].String())
	}
	// This scenario in fact exhibits both pitfalls — the flooded QPs end
	// up waiting out Local ACK Timeouts too (§VI: the victim's
	// communication stops until the timeouts resolve). Agreement means
	// the counter view matches the capture view on damming as well,
	// whichever way the capture calls it.
	capDamming := DetectDamming(r.Cap, 100*sim.Millisecond)
	if (len(capDamming) > 0) != (len(d.Damming) > 0) {
		t.Errorf("damming disagreement: capture=%d incidents, counters=%d", len(capDamming), len(d.Damming))
	}
}

func TestCounterDiagnosisHealthyBaseline(t *testing.T) {
	cfg := DefaultBench()
	cfg.NumOps = 8
	cfg.Mode = NoODP
	cfg.SampleEvery = 10 * sim.Millisecond
	r := RunMicrobench(cfg)
	if d := DiagnoseCounters(r.Telemetry); !d.Healthy() {
		t.Errorf("false positives on healthy run: damming=%v flood=%v", d.Damming, d.Flood)
	}
}

func TestCounterDiagnosersDegradeGracefully(t *testing.T) {
	// nil and too-short series must diagnose nothing, not panic.
	if got := DiagnoseDammingCounters(nil, 0); got != nil {
		t.Errorf("nil series: %v", got)
	}
	if got := DiagnoseFloodCounters(nil, 0); got != nil {
		t.Errorf("nil series: %v", got)
	}
	cfg := DefaultBench()
	cfg.NumOps = 1
	cfg.Mode = NoODP
	r := RunMicrobench(cfg) // SampleEvery unset: Telemetry stays nil
	if r.Telemetry != nil {
		t.Error("Telemetry should be nil without SampleEvery")
	}
	if d := DiagnoseCounters(r.Telemetry); !d.Healthy() {
		t.Error("nil telemetry must be healthy")
	}
}
