package core

import (
	"fmt"
	"time"

	"odpsim/internal/cluster"
	"odpsim/internal/congestion"
	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/scenario"
	"odpsim/internal/shard"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// This file is the multi-tier follow-up to the storm workload: the
// traffic patterns that make a Clos fabric interesting — incast (N
// senders converge on one sink) and all-to-all shuffle — cannot be
// expressed on two hosts, and their congestion signature (spine-tier
// uplink contention, PFC pause fan-out across leaves) cannot exist on a
// chain at all. The collective workload runs them on an N-node cluster
// over the declared topology and reports per-tier switch counters next
// to the usual retransmission picture, so "where does the fabric hurt"
// becomes a readable row instead of a single aggregate.

func init() { scenario.RegisterWorkload(collectiveWorkload{}) }

type collectiveWorkload struct{}

func (collectiveWorkload) Kind() string { return "collective" }

func (collectiveWorkload) Validate(sc *scenario.Scenario) error {
	switch sc.Pattern {
	case "incast", "shuffle":
	case "":
		return fmt.Errorf("scenario %q: collective needs a pattern (incast or shuffle)", sc.Name)
	default:
		return fmt.Errorf("scenario %q: unknown collective pattern %q (want incast or shuffle)", sc.Name, sc.Pattern)
	}
	if sc.Congestion == nil {
		return fmt.Errorf("scenario %q: collective studies in-network contention, so it needs a congestion block", sc.Name)
	}
	if sc.Nodes != 0 && sc.Nodes < 3 {
		return fmt.Errorf("scenario %q: collective needs at least 3 nodes (have %d)", sc.Name, sc.Nodes)
	}
	return nil
}

// collectiveResult is one pattern run's measurements.
type collectiveResult struct {
	exec    sim.Time
	failed  bool
	retrans uint64
	timeout uint64
	rnrNaks uint64
	final   telemetry.Snapshot
	tiers   []congestion.TierStat
}

// runCollective executes one collective exchange: senders push WRITEs
// (data flows toward the receivers, so the pattern's own payload is what
// contends in the core and what faults the receivers' managed pages).
// Everything runs on one engine with processes spawned in node order, so
// the run is a pure function of (scenario, seed) — the determinism
// contract the sweep layer and the goldens rely on.
func runCollective(sc *scenario.Scenario, sys cluster.System, nodes, ops, size int, seed int64) collectiveResult {
	cl := sys.BuildOn(nil, seed, nodes)
	mode := odpModeOf(sc.Mode, ServerODP)
	qpsPer := sc.QPs
	if qpsPer <= 0 {
		qpsPer = 1
	}
	params := rnic.ConnParams{CACK: 8, RetryCount: 7, MinRNRDelay: sc.RNRDelay()}
	if sc.CACK > 0 {
		params.CACK = sc.CACK
	}
	if sc.Retry > 0 {
		params.RetryCount = sc.Retry
	}

	// senders[i] lists the peers node i WRITEs to: everyone targets node
	// 0 for incast, everyone targets everyone else for shuffle.
	peers := make([][]int, nodes)
	for i := 1; i < nodes; i++ {
		peers[i] = append(peers[i], 0)
	}
	if sc.Pattern == "shuffle" {
		peers[0] = nil
		for i := 0; i < nodes; i++ {
			peers[i] = peers[i][:0]
			for j := 0; j < nodes; j++ {
				if j != i {
					peers[i] = append(peers[i], j)
				}
			}
		}
	}

	// Receive regions: each receiver owns one buffer with a disjoint
	// size*ops slice per inbound sender; the region is a managed
	// registration on the ODP sides, which is where the RNR NAK storms
	// come from once WRITE bursts hit cold pages.
	inbound := make([]int, nodes) // senders per receiver, assigned so far
	for i := range peers {
		for _, j := range peers[i] {
			inbound[j]++
		}
	}
	rbuf := make([]hostmem.Addr, nodes)
	for j := 0; j < nodes; j++ {
		if inbound[j] == 0 {
			continue
		}
		buflen := size * ops * inbound[j]
		rbuf[j] = cl.Nodes[j].AS.Alloc(buflen)
		if mode == ServerODP || mode == BothODP {
			cl.Nodes[j].RegisterManagedMR(rbuf[j], buflen)
		} else {
			cl.Nodes[j].RegisterMR(rbuf[j], buflen)
		}
	}
	lbuf := make([]hostmem.Addr, nodes)
	for i := 0; i < nodes; i++ {
		if len(peers[i]) == 0 {
			continue
		}
		buflen := size * ops * len(peers[i])
		lbuf[i] = cl.Nodes[i].AS.Alloc(buflen)
		if mode == ClientODP || mode == BothODP {
			cl.Nodes[i].RegisterManagedMR(lbuf[i], buflen)
		} else {
			cl.Nodes[i].RegisterMR(lbuf[i], buflen)
		}
	}

	// One send CQ per node; qpsPer connected QPs per directed pair, used
	// round-robin like the microbench. The receiver's slot index fixes
	// each sender's disjoint remote region.
	cqs := make([]*rnic.CQ, nodes)
	for i := range cqs {
		cqs[i] = rnic.NewCQ(cl.Eng)
	}
	type flowQP struct {
		qps  []*rnic.QP
		roff hostmem.Addr // receiver-region base for this sender
	}
	flows := make([][]flowQP, nodes) // [sender][peer index]
	slot := make([]int, nodes)       // next inbound slot per receiver
	for i := 0; i < nodes; i++ {
		flows[i] = make([]flowQP, len(peers[i]))
		for pi, j := range peers[i] {
			f := &flows[i][pi]
			f.roff = rbuf[j] + hostmem.Addr(size*ops*slot[j])
			slot[j]++
			f.qps = make([]*rnic.QP, qpsPer)
			for q := 0; q < qpsPer; q++ {
				qc := cl.Nodes[i].CreateQP(cqs[i], cqs[i])
				qs := cl.Nodes[j].CreateQP(cqs[j], cqs[j])
				rnic.ConnectPair(qc, qs, params, params)
				f.qps[q] = qc
			}
		}
	}

	post := sim.Time(float64(300*sim.Nanosecond) * sys.CPUFactor)
	res := collectiveResult{}
	for i := 0; i < nodes; i++ {
		if len(peers[i]) == 0 {
			continue
		}
		i := i
		cl.Eng.Go(fmt.Sprintf("collective-%d", i), func(p *sim.Proc) {
			// Destination-major inner loop: op k goes to every peer
			// before op k+1, so a shuffle's waves converge the way an
			// all-to-all exchange does.
			for k := 0; k < ops; k++ {
				for pi := range flows[i] {
					f := &flows[i][pi]
					off := hostmem.Addr(size * (ops*pi + k))
					f.qps[k%qpsPer].PostSend(rnic.SendWR{
						ID: uint64(k), Op: rnic.OpWrite,
						LocalAddr:  lbuf[i] + off,
						RemoteAddr: f.roff + hostmem.Addr(size*k),
						Len:        size,
					})
					p.Sleep(post)
				}
				if iv := sc.Interval(); iv > 0 {
					p.Sleep(iv)
				}
			}
			want := ops * len(peers[i])
			for done := 0; done < want; {
				for _, e := range cqs[i].WaitN(p, 1) {
					done++
					if e.Status != rnic.WCSuccess {
						res.failed = true
					}
				}
			}
			if now := p.Now(); now > res.exec {
				res.exec = now
			}
		})
	}
	// Execute through the shard layer. The collective patterns are fully
	// coupled — Decompose over the flow list always yields one causal
	// domain — so the group degenerates to a single engine running
	// sequentially regardless of the lane count: `shards` changes the
	// execution harness, never the event order, and the goldens stay
	// byte-identical at every value (pinned by TestShardedByteIdentical).
	pairs := make([][2]int, 0, nodes*nodes)
	for i := range peers {
		for _, j := range peers[i] {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	if part := shard.Decompose(nodes, pairs); part.Count != 1 {
		// Unreachable for incast/shuffle; guards future patterns that
		// would need one engine per domain to stay deterministic.
		panic(fmt.Sprintf("collective pattern %q decomposed into %d causal domains", sc.Pattern, part.Count))
	}
	g := shard.NewGroup(sc.Shards)
	g.AddDomain(cl.Eng)
	g.MustRun()

	for i := range flows {
		for pi := range flows[i] {
			for _, qp := range flows[i][pi].qps {
				res.retrans += qp.Stats.Retransmits
				res.timeout += qp.Stats.Timeouts
			}
		}
	}
	for _, n := range cl.Nodes {
		res.rnrNaks += n.RNRNakSent
	}
	res.final = cl.Telemetry().Snapshot(cl.Eng.Now())
	res.tiers = cl.Fab.Network().TierStats()
	return res
}

func (collectiveWorkload) Run(sc *scenario.Scenario, out *scenario.Output) error {
	sys, err := sc.ResolvedSystem()
	if err != nil {
		return err
	}
	nodes := sc.Nodes
	if nodes == 0 {
		nodes = 9
		if sc.Pattern == "shuffle" {
			nodes = 6
		}
	}
	ops := sc.Ops
	if ops == 0 {
		ops = 32
	}
	size := sc.Size
	if size == 0 {
		size = 1024
	}
	r := runCollective(sc, sys, nodes, ops, size, sc.SeedOrDefault())

	topoLabel := "chain"
	if ts := sc.Congestion.Topology; ts != nil {
		topoLabel = ts.Label()
	}
	shape := fmt.Sprintf("%d nodes all-to-all", nodes)
	if sc.Pattern == "incast" {
		shape = fmt.Sprintf("%d->1", nodes-1)
	}
	fmt.Fprintln(out.W, sc.ExpandedTitle())
	fmt.Fprintf(out.W, "\n%s %s on %s (%d WRITEs x %d B per flow, %s):\n",
		sc.Pattern, shape, topoLabel, ops, size, odpModeOf(sc.Mode, ServerODP))
	status := ""
	if r.failed {
		status = "  [RETRY_EXC_ERR]"
	}
	fmt.Fprintf(out.W, "exec %v  retrans %d  timeouts %d  rnr_naks %d  drops %.0f  pause %.0f us  ecn %.0f  cnps %.0f%s\n",
		time.Duration(r.exec), r.retrans, r.timeout, r.rnrNaks,
		r.final.Total(telemetry.SimSwitchDrops),
		r.final.Total(telemetry.TxPauseDuration),
		r.final.Total(telemetry.SimSwitchEcnMarked),
		r.final.Total(telemetry.NpCnpSent), status)
	fmt.Fprintf(out.W, "%-8s %8s %12s %12s %10s %7s\n",
		"tier", "switches", "peak_buf[B]", "pause_frames", "ecn_marked", "drops")
	for _, t := range r.tiers {
		fmt.Fprintf(out.W, "%-8s %8d %12d %12d %10d %7d\n",
			t.Tier, t.Switches, t.PeakBytes, t.PauseFrames, t.EcnMarked, t.Drops)
	}
	return nil
}
