package core

import (
	"odpsim/internal/cluster"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

// MeasureTimeout reproduces the Figure-2 methodology on one system: a QP
// is connected with a deliberately wrong destination LID so every packet
// is lost, C_retry is set to 7, and the measured time t between the first
// request and the IBV_WC_RETRY_EXC_ERR abort yields T_o = t / (C_retry+1).
func MeasureTimeout(sys cluster.System, cack int, seed int64) sim.Time {
	return MeasureTimeoutOn(nil, sys, cack, seed)
}

// MeasureTimeoutOn is MeasureTimeout on a Reset-reused engine (nil for a
// fresh one); see BenchConfig.Eng for the reuse contract.
func MeasureTimeoutOn(eng *sim.Engine, sys cluster.System, cack int, seed int64) sim.Time {
	const cretry = 7
	cl := sys.BuildOn(eng, seed, 2)
	client := cl.Nodes[0]
	lbuf := client.AS.Alloc(4096)
	client.RegisterMR(lbuf, 4096)

	cq := rnic.NewCQ(cl.Eng)
	qp := client.CreateQP(cq, cq)
	// LID 99 does not exist on the fabric: the subnet drops everything.
	qp.Connect(99, 1, rnic.ConnParams{CACK: cack, RetryCount: cretry})

	var abortAt sim.Time = -1
	cl.Eng.Go("probe", func(p *sim.Proc) {
		start := p.Now()
		qp.PostSend(rnic.SendWR{ID: 1, Op: rnic.OpRead, LocalAddr: lbuf, RemoteAddr: 0x1000, Len: 100})
		cqes := cq.WaitN(p, 1)
		if cqes[0].Status == rnic.WCRetryExcErr {
			abortAt = p.Now() - start
		}
	})
	cl.Eng.MustRun()
	if abortAt < 0 {
		return -1
	}
	return abortAt / (cretry + 1)
}

// TheoreticalTTr returns the spec's retransmission timer interval
// T_tr = 4.096 µs · 2^cack with no vendor minimum applied — the dashed
// reference line of Figure 2.
func TheoreticalTTr(cack int) sim.Time {
	if cack <= 0 {
		return 0
	}
	if cack > 31 {
		cack = 31
	}
	return sim.Time(4096) * sim.Nanosecond << uint(cack)
}

// TheoreticalTo returns the spec's upper bound 4·T_tr, Figure 2's second
// reference line.
func TheoreticalTo(cack int) sim.Time { return 4 * TheoreticalTTr(cack) }
