package core

import (
	"strings"
	"testing"

	"odpsim/internal/sim"
)

func TestDetectDammingInTwoReadRun(t *testing.T) {
	cfg := DefaultBench()
	cfg.Interval = sim.Millisecond
	cfg.WithCapture = true
	r := RunMicrobench(cfg)
	if !r.TimedOut() {
		t.Fatal("need a dammed run")
	}
	incidents := DetectDamming(r.Cap, 100*sim.Millisecond)
	if len(incidents) != 1 {
		t.Fatalf("incidents = %v, want exactly the dammed PSN", incidents)
	}
	inc := incidents[0]
	if inc.Stall < 300*sim.Millisecond {
		t.Errorf("stall = %v, want the timeout-scale gap", inc.Stall)
	}
	if !strings.Contains(inc.String(), "stalled") {
		t.Errorf("String() = %q", inc.String())
	}
}

func TestDetectDammingCleanRun(t *testing.T) {
	cfg := DefaultBench()
	cfg.Interval = sim.FromMillis(5.5)
	cfg.WithCapture = true
	r := RunMicrobench(cfg)
	if r.TimedOut() {
		t.Fatal("expected a clean run")
	}
	if incidents := DetectDamming(r.Cap, 100*sim.Millisecond); len(incidents) != 0 {
		t.Errorf("false positives: %v", incidents)
	}
}

func TestDetectFloodInMultiQPRun(t *testing.T) {
	cfg := DefaultBench()
	cfg.Mode = ClientODP
	cfg.Size = 32
	cfg.NumQPs = 64
	cfg.NumOps = 256
	cfg.CACK = 18
	cfg.WithCapture = true
	r := RunMicrobench(cfg)
	incidents := DetectFlood(r.Cap, 50*sim.Millisecond, 100)
	if len(incidents) == 0 {
		t.Fatalf("no flood detected (retransmits=%d)", r.Retransmits)
	}
	if incidents[0].DistinctQPs < 2 {
		t.Errorf("flood should span QPs: %+v", incidents[0])
	}
	if !strings.Contains(incidents[0].String(), "retransmissions") {
		t.Errorf("String() = %q", incidents[0].String())
	}
	// Windows come out sorted.
	for i := 1; i < len(incidents); i++ {
		if incidents[i].WindowStart < incidents[i-1].WindowStart {
			t.Error("incidents not sorted by window")
		}
	}
}

func TestDetectFloodQuietRun(t *testing.T) {
	cfg := DefaultBench()
	cfg.NumOps = 8
	cfg.Mode = NoODP
	cfg.WithCapture = true
	r := RunMicrobench(cfg)
	if incidents := DetectFlood(r.Cap, 50*sim.Millisecond, 10); len(incidents) != 0 {
		t.Errorf("false positives: %v", incidents)
	}
}

func TestSmallRNRDelayWorkaround(t *testing.T) {
	// §IX-A workaround 1: the smallest RNR delay shrinks the vulnerable
	// window so the same 1 ms schedule no longer dams.
	cfg := DefaultBench()
	cfg.Mode = ServerODP
	cfg.Interval = sim.Millisecond
	if r := RunMicrobench(cfg); !r.TimedOut() {
		t.Fatal("baseline must dam")
	}
	cfg.MinRNRDelay = SmallestRNRDelay
	if r := RunMicrobench(cfg); r.TimedOut() {
		t.Error("smallest RNR delay should avoid the timeout at 1 ms")
	}
}

func TestReissueAfterCancel(t *testing.T) {
	// The reissue helper must not double-post when cancelled.
	cfg := DefaultBench()
	cfg.NumOps = 1
	cfg.Mode = NoODP
	r := RunMicrobench(cfg) // warm path sanity
	if r.Failed {
		t.Fatal("baseline failed")
	}
}
