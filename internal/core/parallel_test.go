package core

import (
	"reflect"
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/congestion"
	"odpsim/internal/parallel"
	"odpsim/internal/scenario"
	"odpsim/internal/sim"
)

// sweepOutputs runs reduced versions of the Fig-2/4/6/9 sweeps, plus a
// Clos-fabric exec sweep, and returns everything they produce.
func sweepOutputs() []any {
	fig2 := SweepTimeouts([]cluster.System{cluster.KNL(), cluster.AzureHC()}, []int{1, 16, 20}, 3)

	base4 := DefaultBench()
	fig4 := SweepExecTime(base4, IntervalRange(0, 6, 1.5), 3)

	base6 := DefaultBench()
	base6.Mode = ServerODP
	fig6 := SweepTimeoutProbability(base6, IntervalRange(0, 6, 2), 4, "1.28 ms")

	base9 := DefaultBench()
	base9.NumOps = 512
	base9.CACK = 18
	fig9 := SweepQPs(base9, []int{1, 16}, []ODPMode{NoODP, ClientODP})

	// A Clos fabric with ECMP in the loop: path choice hashes on the
	// engine seed, so per-point seeding must keep it identical for any
	// worker count.
	closCfg := congestion.DefaultConfig()
	closCfg.Topology = congestion.ClosTopology(2, 4, 4)
	closCfg.PFC = true
	closCfg.XOffBytes = 1 << 10
	closCfg.XOnBytes = 512
	baseClos := DefaultBench()
	baseClos.System.Congestion = &closCfg
	clos := SweepExecTime(baseClos, IntervalRange(0, 4, 2), 3)

	// The sharded execution path: a collective routed through the shard
	// group at 8 worker lanes must reproduce exactly alongside the
	// sweeps for any jobs count (lane-count invariance itself is pinned
	// by TestShardedByteIdentical at the scenario level).
	shardSc := &scenario.Scenario{
		Name: "sweep-shard", Workload: "collective", Pattern: "incast",
		Mode: "server", Shards: 8,
		Congestion: &scenario.CongestionSpec{
			Topology: &scenario.TopologySpec{Kind: "clos", Tiers: 2, Radix: 4, Oversubscription: 4},
			PFC:     true,
			XOffKB:  1,
			XOnKB:   0.5,
		},
	}
	sys, err := shardSc.ResolvedSystem()
	if err != nil {
		panic(err)
	}
	sharded := runCollective(shardSc, sys, 9, 8, 1024, 3)

	// The IRN selective-repeat transport over a lossy fabric: SACK
	// emission, reorder-buffer fills and per-packet retransmits must all
	// reproduce exactly for any worker count.
	baseIrn := DefaultBench()
	baseIrn.System.Transport = "irn"
	baseIrn.System.LossRate = 0.1
	baseIrn.NumOps = 64
	baseIrn.NumQPs = 4
	baseIrn.CACK = 8
	irn := SweepExecTime(baseIrn, IntervalRange(0, 4, 2), 3)

	return []any{fig2, fig4, fig6, fig9, clos, sharded, irn}
}

// TestSweepDeterminismAcrossJobs is the cross-check the parallel runner
// promises: every sweep produces identical stats.Series with -j 1 and
// -j 8 on the Fig-2/4/6/9 scenarios.
func TestSweepDeterminismAcrossJobs(t *testing.T) {
	parallel.SetJobs(1)
	t.Cleanup(func() { parallel.SetJobs(0) })
	seq := sweepOutputs()
	parallel.SetJobs(8)
	par := sweepOutputs()
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("sweep %d differs between -j 1 and -j 8:\n  j1: %+v\n  j8: %+v", i, seq[i], par[i])
		}
	}
}

// TestEngineReuseByteIdentical checks a run on a Reset-reused (and
// deliberately dirtied) engine reproduces a fresh-engine run exactly.
func TestEngineReuseByteIdentical(t *testing.T) {
	cfg := DefaultBench()
	cfg.Interval = sim.Millisecond
	want := RunMicrobench(cfg)

	eng := sim.New(0)
	dirty := cfg
	dirty.Eng = eng
	dirty.Seed = 999
	RunMicrobench(dirty)

	reused := cfg
	reused.Eng = eng
	got := RunMicrobench(reused)
	if got.ExecTime != want.ExecTime || got.Timeouts != want.Timeouts ||
		got.Retransmits != want.Retransmits || got.PacketsOnWire != want.PacketsOnWire ||
		got.DammedDrops != want.DammedDrops || !reflect.DeepEqual(got.CompletionTime, want.CompletionTime) {
		t.Errorf("reused engine run differs:\n  fresh:  %+v\n  reused: %+v", want, got)
	}

	// And the timeout probe.
	wantTo := MeasureTimeout(cluster.KNL(), 1, 1)
	MeasureTimeoutOn(eng, cluster.AzureHC(), 5, 77) // dirty again
	if gotTo := MeasureTimeoutOn(eng, cluster.KNL(), 1, 1); gotTo != wantTo {
		t.Errorf("MeasureTimeoutOn reused = %v, fresh = %v", gotTo, wantTo)
	}
}

// TestIntervalRangePinsFig4Grid pins the exact nanosecond grids of the
// figure sweeps: every point is from + i*step (no accumulated float
// error), so e.g. the 0.1 ms grid's points are exact multiples of
// 100 µs — the accumulating implementation drifted points like 0.8 ms
// down to 799999 ns.
func TestIntervalRangePinsFig4Grid(t *testing.T) {
	// Fig-4 full grid: 0..6 ms step 0.25 ms.
	got := IntervalRange(0, 6, 0.25)
	if len(got) != 25 {
		t.Fatalf("fig4 grid has %d points, want 25", len(got))
	}
	for i, x := range got {
		if want := sim.Time(i) * 250 * sim.Microsecond; x != want {
			t.Errorf("fig4 grid[%d] = %d ns, want %d ns", i, int64(x), int64(want))
		}
	}
	// Fig-6b grid: 0..6 ms step 0.1 ms — the one the accumulating loop
	// got wrong.
	got = IntervalRange(0, 6, 0.1)
	if len(got) != 61 {
		t.Fatalf("fig6b grid has %d points, want 61", len(got))
	}
	for i, x := range got {
		if want := sim.Time(i) * 100 * sim.Microsecond; x != want {
			t.Errorf("fig6b grid[%d] = %d ns, want %d ns", i, int64(x), int64(want))
		}
	}
}
