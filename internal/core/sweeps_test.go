package core

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/sim"
)

func TestSweepTimeoutsShape(t *testing.T) {
	systems := []cluster.System{cluster.KNL(), cluster.AzureHC()}
	cacks := []int{1, 8, 16, 18, 20}
	series := SweepTimeouts(systems, cacks, 7)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	knl, cx5 := series[0], series[1]
	// Flat floor region up to the vendor minimum, then growth.
	if knl.Y[0] < 0.35 || knl.Y[0] > 0.7 {
		t.Errorf("KNL floor = %v s, want ≈0.5", knl.Y[0])
	}
	if knl.Y[2] > knl.Y[0]*1.5 {
		t.Errorf("KNL T_o at C_ACK=16 (%v) should still be ≈ the floor (%v)", knl.Y[2], knl.Y[0])
	}
	if knl.Y[4] < knl.Y[2]*2 {
		t.Error("KNL T_o must grow past the floor")
	}
	if cx5.Y[0] > 0.05 {
		t.Errorf("ConnectX-5 floor = %v s, want ≈0.03", cx5.Y[0])
	}
	for i := 1; i < len(knl.Y); i++ {
		if knl.Y[i] < knl.Y[i-1]*0.8 {
			t.Errorf("T_o not (weakly) monotone: %v", knl.Y)
		}
	}
}

func TestSweepExecTimeShape(t *testing.T) {
	base := DefaultBench()
	series := SweepExecTime(base, []sim.Time{sim.Millisecond, sim.FromMillis(6.5)}, 3)
	if len(series.Y) != 2 {
		t.Fatalf("series = %+v", series)
	}
	if series.Y[0] < 0.2 {
		t.Errorf("exec at 1 ms = %v s, want several hundred ms", series.Y[0])
	}
	if series.Y[1] > 0.05 {
		t.Errorf("exec at 6.5 ms = %v s, want ≈0.01", series.Y[1])
	}
}

func TestSweepTimeoutProbabilityShape(t *testing.T) {
	base := DefaultBench()
	base.Mode = ServerODP
	s := SweepTimeoutProbability(base, []sim.Time{sim.Millisecond, sim.FromMillis(6)}, 5, "1.28 ms")
	if s.Y[0] != 100 {
		t.Errorf("P(timeout) at 1 ms = %v%%, want 100", s.Y[0])
	}
	if s.Y[1] != 0 {
		t.Errorf("P(timeout) at 6 ms = %v%%, want 0", s.Y[1])
	}
}

func TestIntervalRange(t *testing.T) {
	got := IntervalRange(0, 1, 0.25)
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	if got[0] != 0 || got[4] != sim.Millisecond {
		t.Errorf("range = %v", got)
	}
}

func TestSweepQPsFloodShape(t *testing.T) {
	// A scaled-down Figure 9: fixed op count, growing QPs. Client-side
	// ODP must degrade superlinearly while No-ODP stays flat, and the
	// packet count must explode with the flood.
	base := DefaultBench()
	base.NumOps = 1024
	base.CACK = 18
	res := SweepQPs(base, []int{1, 32}, []ODPMode{NoODP, ClientODP})
	no, cl := res.Time[NoODP], res.Time[ClientODP]
	if no.Y[1] > no.Y[0]*1.5 {
		t.Errorf("No-ODP should be flat across QPs: %v", no.Y)
	}
	if cl.Y[1] < cl.Y[0]*2 {
		t.Errorf("client-side ODP should degrade with QPs: %v", cl.Y)
	}
	if cl.Y[1] < no.Y[1]*10 {
		t.Errorf("flood should cost ≥10× No-ODP: %v vs %v", cl.Y[1], no.Y[1])
	}
	pn, pc := res.Packets[NoODP], res.Packets[ClientODP]
	if pc.Y[1] < pn.Y[1]*5 {
		t.Errorf("flood packets should dwarf No-ODP: %v vs %v", pc.Y[1], pn.Y[1])
	}
}

func TestPageOfOp(t *testing.T) {
	if PageOfOp(0, 32) != 0 || PageOfOp(127, 32) != 0 || PageOfOp(128, 32) != 1 {
		t.Error("32-byte layout wrong")
	}
	if PageOfOp(40, 100) != 0 || PageOfOp(41, 100) != 1 {
		t.Error("100-byte layout wrong")
	}
}

func TestProgressByPageFig11a(t *testing.T) {
	// 128 QPs × 128 ops × 32 B = one page; LIFO updates mean the
	// earliest-posted operations finish last (the "first 30 stuck"
	// shape of Figure 11a).
	cfg := DefaultBench()
	cfg.Mode = ClientODP
	cfg.Size = 32
	cfg.NumQPs = 128
	cfg.NumOps = 128
	cfg.CACK = 18
	r := RunMicrobench(cfg)
	if r.TimedOut() {
		t.Fatal("Figure 11a run must not time out")
	}
	// Identify the op that completes last: it must be an early op.
	lastOp, lastAt := -1, sim.Time(-1)
	firstAt := sim.Time(1 << 62)
	for i, ct := range r.CompletionTime {
		if ct < 0 {
			t.Fatalf("op %d never completed", i)
		}
		if ct > lastAt {
			lastOp, lastAt = i, ct
		}
		if ct < firstAt {
			firstAt = ct
		}
	}
	if lastOp >= 32 {
		t.Errorf("last finisher is op %d; LIFO updates should starve the earliest ops", lastOp)
	}
	if firstAt > sim.FromMillis(1.5) {
		t.Errorf("first completion at %v, want ≲1 ms", firstAt)
	}
	if lastAt < sim.FromMillis(4) || lastAt > sim.FromMillis(9) {
		t.Errorf("last completion at %v, want ≈6 ms", lastAt)
	}
	series := ProgressByPage(r, cfg.Size, sim.Millisecond)
	if len(series) != 1 {
		t.Fatalf("expected a single page, got %d", len(series))
	}
	ys := series[0].Y
	if ys[len(ys)-1] != 128 {
		t.Errorf("final cumulative count = %v, want 128", ys[len(ys)-1])
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Error("cumulative completions must be monotone")
		}
	}
}

func TestProgressByPageFig11bSpreads(t *testing.T) {
	cfg := DefaultBench()
	cfg.Mode = ClientODP
	cfg.Size = 32
	cfg.NumQPs = 128
	cfg.NumOps = 512
	cfg.CACK = 18
	r := RunMicrobench(cfg)
	series := ProgressByPage(r, cfg.Size, 10*sim.Millisecond)
	if len(series) != 4 {
		t.Fatalf("expected 4 pages, got %d", len(series))
	}
	// The update-failure period spreads completions over hundreds of ms.
	var lastAt sim.Time
	for _, ct := range r.CompletionTime {
		if ct > lastAt {
			lastAt = ct
		}
	}
	if lastAt < 300*sim.Millisecond {
		t.Errorf("last completion at %v, want ≫100 ms (update failure)", lastAt)
	}
}
