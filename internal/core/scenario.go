package core

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"odpsim/internal/cluster"
	"odpsim/internal/parallel"
	"odpsim/internal/scenario"
	"odpsim/internal/sim"
	"odpsim/internal/stats"
)

// This file adapts the sweep drivers to the declarative scenario layer:
// each figure family becomes a registered scenario.Workload. The adapters
// render with exactly the format strings and seed derivations the
// historical CLI drivers used, so a registered scenario regenerates its
// results/ golden byte-for-byte.

func init() {
	scenario.RegisterWorkload(timeoutSweep{})
	scenario.RegisterWorkload(execSweep{})
	scenario.RegisterWorkload(timeoutProbSweep{})
	scenario.RegisterWorkload(qpSweep{})
	scenario.RegisterWorkload(progressSweep{})
	scenario.RegisterWorkload(benchWorkload{})
	scenario.RegisterWorkload(traceWorkload{})
}

// odpModeOf maps the scenario's mode string onto ODPMode ("" keeps the
// given default).
func odpModeOf(mode string, def ODPMode) ODPMode {
	switch mode {
	case "none":
		return NoODP
	case "server":
		return ServerODP
	case "client":
		return ClientODP
	case "both":
		return BothODP
	}
	return def
}

// benchConfig resolves a scenario into a BenchConfig, starting from the
// §V defaults and overriding every field the scenario sets.
func benchConfig(sc *scenario.Scenario) (BenchConfig, error) {
	cfg := DefaultBench()
	sys, err := sc.ResolvedSystem()
	if err != nil {
		return cfg, err
	}
	cfg.System = sys
	cfg.Seed = sc.SeedOrDefault()
	cfg.Mode = odpModeOf(sc.Mode, BothODP)
	if sc.Size > 0 {
		cfg.Size = sc.Size
	}
	if sc.Ops > 0 {
		cfg.NumOps = sc.Ops
	}
	if sc.QPs > 0 {
		cfg.NumQPs = sc.QPs
	}
	if sc.CACK > 0 {
		cfg.CACK = sc.CACK
	}
	if sc.Retry > 0 {
		cfg.RetryCount = sc.Retry
	}
	cfg.MinRNRDelay = sc.RNRDelay()
	if sc.IntervalMs > 0 {
		cfg.Interval = sc.Interval()
	}
	cfg.DummyPing = sc.DummyPing
	return cfg, nil
}

// timeoutSweep is Figure 2: the wrong-LID timeout probe per C_ACK per
// system, with the theoretical T_tr / 4·T_tr series on top.
type timeoutSweep struct{}

func (timeoutSweep) Kind() string { return "timeout-sweep" }

func (timeoutSweep) Validate(sc *scenario.Scenario) error {
	if sc.Grid == nil || len(sc.Grid.List) == 0 {
		return fmt.Errorf("scenario %q: timeout-sweep needs a grid list of C_ACK values", sc.Name)
	}
	return nil
}

func (timeoutSweep) Run(sc *scenario.Scenario, out *scenario.Output) error {
	systems, err := sc.ResolvedSystems(cluster.All())
	if err != nil {
		return err
	}
	cacks := sc.Grid.List
	fmt.Fprintln(out.W, sc.ExpandedTitle())
	series := SweepTimeouts(systems, cacks, sc.SeedOrDefault())
	theory := &stats.Series{Label: "T_tr (theory)"}
	theory4 := &stats.Series{Label: "4·T_tr (theory)"}
	for _, c := range cacks {
		theory.Add(float64(c), TheoreticalTTr(c).Seconds())
		theory4.Add(float64(c), TheoreticalTo(c).Seconds())
	}
	all := append([]*stats.Series{theory, theory4}, series...)
	fmt.Fprint(out.W, stats.Table("C_ACK", all...))
	return nil
}

// execSweep is Figure 4: mean execution time vs posting interval.
type execSweep struct{}

func (execSweep) Kind() string { return "exec-sweep" }

func (execSweep) Validate(sc *scenario.Scenario) error {
	if err := scenario.RequireTrials(sc); err != nil {
		return err
	}
	return scenario.RequireGrid(sc)
}

func (execSweep) Run(sc *scenario.Scenario, out *scenario.Output) error {
	cfg, err := benchConfig(sc)
	if err != nil {
		return err
	}
	fmt.Fprintln(out.W, sc.ExpandedTitle())
	s := SweepExecTime(cfg, sc.Grid.Times(), sc.Trials)
	fmt.Fprint(out.W, stats.Table("interval[ms]", s))
	return nil
}

// timeoutProbSweep is Figures 6 and 7: P(timeout) vs posting interval,
// one series per variant (RNR delays in 6a, operation counts in 7).
type timeoutProbSweep struct{}

func (timeoutProbSweep) Kind() string { return "timeout-prob-sweep" }

func (timeoutProbSweep) Validate(sc *scenario.Scenario) error {
	if err := scenario.RequireTrials(sc); err != nil {
		return err
	}
	if err := scenario.RequireGrid(sc); err != nil {
		return err
	}
	for i, v := range sc.ResolvedVariants() {
		if v.Label == "" {
			return fmt.Errorf("scenario %q: series[%d] needs a label (it names the table column)", sc.Name, i)
		}
	}
	return nil
}

func (timeoutProbSweep) Run(sc *scenario.Scenario, out *scenario.Output) error {
	cfg, err := benchConfig(sc)
	if err != nil {
		return err
	}
	fmt.Fprintln(out.W, sc.ExpandedTitle())
	var series []*stats.Series
	for _, v := range sc.ResolvedVariants() {
		b := cfg
		if v.Ops > 0 {
			b.NumOps = v.Ops
		}
		if v.RNRDelayMs > 0 {
			b.MinRNRDelay = sim.FromMillis(v.RNRDelayMs)
		}
		series = append(series, SweepTimeoutProbability(b, v.Grid.Times(), sc.Trials, v.Label))
	}
	if sc.Renderer == "per-series" {
		for _, s := range series {
			fmt.Fprint(out.W, stats.Table("interval[ms]", s))
			fmt.Fprintln(out.W)
		}
		return nil
	}
	fmt.Fprint(out.W, stats.Table("interval[ms]", series...))
	return nil
}

// qpSweep is Figure 9: execution time and wire packets vs QP count for
// all four ODP modes.
type qpSweep struct{}

func (qpSweep) Kind() string { return "qp-sweep" }

func (qpSweep) Validate(sc *scenario.Scenario) error {
	if sc.Grid == nil || len(sc.Grid.List) == 0 {
		return fmt.Errorf("scenario %q: qp-sweep needs a grid list of QP counts", sc.Name)
	}
	return nil
}

func (qpSweep) Run(sc *scenario.Scenario, out *scenario.Output) error {
	cfg, err := benchConfig(sc)
	if err != nil {
		return err
	}
	fmt.Fprintln(out.W, sc.ExpandedTitle())
	res := SweepQPs(cfg, sc.Grid.List, []ODPMode{NoODP, ServerODP, ClientODP, BothODP})
	fmt.Fprintln(out.W, "\n(9a) execution time [s]:")
	fmt.Fprint(out.W, stats.Table("#QPs", res.Time[NoODP], res.Time[ServerODP], res.Time[ClientODP], res.Time[BothODP]))
	fmt.Fprintln(out.W, "\n(9b) packets on the wire [thousands]:")
	fmt.Fprint(out.W, stats.Table("#QPs", res.Packets[NoODP], res.Packets[ServerODP], res.Packets[ClientODP], res.Packets[BothODP]))
	return nil
}

// progressSweep is Figure 11: cumulative completions per page over time,
// one run per variant (the figure's 128- and 512-operation panels).
type progressSweep struct{}

func (progressSweep) Kind() string { return "progress" }

func (progressSweep) Validate(sc *scenario.Scenario) error {
	for i, v := range sc.ResolvedVariants() {
		if v.Ops <= 0 {
			return fmt.Errorf("scenario %q: series[%d] needs an operation count", sc.Name, i)
		}
	}
	return nil
}

func (progressSweep) Run(sc *scenario.Scenario, out *scenario.Output) error {
	for _, v := range sc.ResolvedVariants() {
		fmt.Fprintln(out.W, sc.VariantTitle(v))
		cfg, err := benchConfig(sc)
		if err != nil {
			return err
		}
		cfg.NumOps = v.Ops
		if out.CounterCSV != "" {
			cfg.SampleEvery = 10 * sim.Millisecond
		}
		r := RunMicrobench(cfg)
		if out.CounterCSV != "" {
			writeCounterCSV(out, v.Ops, r)
		}
		series := ProgressByPage(r, cfg.Size, sim.FromMillis(v.StepMs))
		fmt.Fprint(out.W, stats.Table("t[ms]", series...))
		fmt.Fprintln(out.W)
	}
	return nil
}

// writeCounterCSV writes one progress run's sampled counter series to
// base-<ops>.ext (a scenario's runs would otherwise clobber one file).
func writeCounterCSV(out *scenario.Output, ops int, r *BenchResult) {
	ext := filepath.Ext(out.CounterCSV)
	path := strings.TrimSuffix(out.CounterCSV, ext) + "-" + strconv.Itoa(ops) + ext
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Telemetry.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out.W, "(wrote counters to %s)\n", path)
}

// benchWorkload is the Figure-3 micro-benchmark as odpbench runs it:
// per-trial lines plus an execution-time summary and P(timeout).
type benchWorkload struct{}

func (benchWorkload) Kind() string { return "bench" }

func (benchWorkload) Validate(sc *scenario.Scenario) error {
	return scenario.RequireTrials(sc)
}

func (benchWorkload) Run(sc *scenario.Scenario, out *scenario.Output) error {
	cfg, err := benchConfig(sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out.W, "%s: %d ops × %d B over %d QP(s), interval %v, %s, C_ACK=%d\n\n",
		cfg.System.Name, cfg.NumOps, cfg.Size, cfg.NumQPs, time.Duration(cfg.Interval), cfg.Mode, cfg.CACK)

	// Trials fan across the worker pool (each derives its seed from its
	// index); the per-trial lines print in index order afterwards.
	engs := NewEngines()
	results := make([]*BenchResult, sc.Trials)
	parallel.Run(sc.Trials, func(w, i int) {
		c := cfg
		c.Eng = engs.Get(w)
		c.Seed = cfg.Seed + int64(i)*7919
		results[i] = RunMicrobench(c)
	})
	var times []float64
	timeouts := 0
	for i, r := range results {
		status := ""
		if r.TimedOut() {
			timeouts++
			status = "  [timeout]"
		}
		if r.Failed {
			status += "  [IBV_WC_RETRY_EXC_ERR]"
		}
		fmt.Fprintf(out.W, "trial %2d: exec=%-12v packets=%-8d retransmissions=%-7d%s\n",
			i+1, r.ExecTime, r.PacketsOnWire, r.Retransmits, status)
		times = append(times, r.ExecTime.Seconds())
	}
	s := stats.Summarize(times)
	fmt.Fprintf(out.W, "\nexec time [s]: %s\n", s)
	fmt.Fprintf(out.W, "P(timeout) = %d/%d = %.0f%%\n", timeouts, sc.Trials, 100*float64(timeouts)/float64(sc.Trials))
	return nil
}

// traceWorkload is odptrace: one captured micro-benchmark run rendered
// ibdump-style (Figures 1, 5 and 8).
type traceWorkload struct{}

func (traceWorkload) Kind() string { return "trace" }

func (traceWorkload) Validate(sc *scenario.Scenario) error { return nil }

func (traceWorkload) Run(sc *scenario.Scenario, out *scenario.Output) error {
	cfg, err := benchConfig(sc)
	if err != nil {
		return err
	}
	if sc.IntervalMs == 0 {
		cfg.Interval = sim.Millisecond // odptrace's historical default
	}
	cfg.WithCapture = true

	r := RunMicrobench(cfg)
	fmt.Fprintf(out.W, "%d READ(s), %s, interval %v, min RNR NAK delay %v on %s\n\n",
		cfg.NumOps, cfg.Mode, time.Duration(cfg.Interval), time.Duration(cfg.MinRNRDelay), cfg.System.Name)
	r.Cap.RenderFlow(out.W, "node0")
	fmt.Fprintln(out.W)
	fmt.Fprint(out.W, r.Cap.Summary())
	fmt.Fprintf(out.W, "\nexecution time %v, timeouts %d, RNR NAKs %d, PSN-sequence NAKs %d\n",
		r.ExecTime, r.Timeouts, r.RNRNaksSent, r.NakSeqSent)
	if incs := DetectDamming(r.Cap, 100*sim.Millisecond); len(incs) > 0 {
		fmt.Fprintln(out.W, "\npacket damming detected:")
		for _, inc := range incs {
			fmt.Fprintf(out.W, "  %s\n", inc)
		}
	}
	if out.Analyze {
		fmt.Fprintln(out.W)
		fmt.Fprint(out.W, r.Cap.AnalysisReport())
	}
	if out.CaptureCSV != "" {
		if err := writeCapture(out, out.CaptureCSV, r.Cap.WriteCSV); err != nil {
			return err
		}
	}
	if out.CaptureTrace != "" {
		if err := writeCapture(out, out.CaptureTrace, r.Cap.WriteTrace); err != nil {
			return err
		}
	}
	return nil
}

func writeCapture(out *scenario.Output, path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Fprintf(out.W, "wrote %s\n", path)
	return nil
}
