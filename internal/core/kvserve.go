package core

import (
	"fmt"
	"time"

	"odpsim/internal/cluster"
	"odpsim/internal/congestion"
	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/scenario"
	"odpsim/internal/shard"
	"odpsim/internal/sim"
	"odpsim/internal/stats"
	"odpsim/internal/telemetry"
)

// The kv-serve workload is the fabric-scale companion to the collective
// patterns: a key-value serving tier spread across the pods of a 3-tier
// fat-tree, where every pod runs one server host and a rack of open-loop
// GET clients hammering it over RDMA READ. The pattern is pod-local by
// construction — a client only ever talks to its own pod's server — so
// shard.Decompose splits it into one causal domain per pod and the shard
// group runs the pods on parallel lanes, each pod simulating its own
// PodTopology cell in full switch-level detail. The core tier the pods
// would share carries only the periodic replication digests every pod
// streams to pod 0, modelled as shard boundary links with the core's
// oversubscribed rate.
//
// What the scenario measures is the paper's pitfall at serving scale:
// with the server region under Explicit ODP, first-touch GETs RNR-storm
// and the millisecond NAK delays land straight in the tail. The report
// therefore leads with latency percentiles — P50/P99/P99.9 from a
// streaming quantile sketch (internal/stats), merged across pods in pod
// order so the output is byte-identical at every `-shards` value.

func init() { scenario.RegisterWorkload(kvServeWorkload{}) }

type kvServeWorkload struct{}

func (kvServeWorkload) Kind() string { return "kv-serve" }

func (kvServeWorkload) Validate(sc *scenario.Scenario) error {
	if sc.Congestion == nil || sc.Congestion.Topology == nil {
		return fmt.Errorf("scenario %q: kv-serve needs a congestion block with a clos topology (pods come from its radix)", sc.Name)
	}
	ts := sc.Congestion.Topology
	if ts.Kind != "clos" || ts.Tiers != 3 {
		return fmt.Errorf("scenario %q: kv-serve needs topology kind \"clos\" with tiers 3, got %s", sc.Name, ts.Label())
	}
	pods := ts.Radix
	if pods == 0 {
		pods = 4
	}
	if sc.Nodes != 0 {
		if sc.Nodes%pods != 0 {
			return fmt.Errorf("scenario %q: kv-serve nodes (%d) must divide evenly into %d pods", sc.Name, sc.Nodes, pods)
		}
		if sc.Nodes/pods < 2 {
			return fmt.Errorf("scenario %q: kv-serve needs at least 2 hosts per pod (have %d/%d)", sc.Name, sc.Nodes, pods)
		}
	}
	if sc.Pattern != "" {
		return fmt.Errorf("scenario %q: kv-serve does not take a pattern", sc.Name)
	}
	return nil
}

// kvPod is one pod's simulation state, kept so post-run aggregation can
// walk the pods in index order (the determinism contract).
type kvPod struct {
	cl      *cluster.Cluster
	qps     []*rnic.QP // one per client, client order
	sketch  *stats.QuantileSketch
	done    sim.Time // last completion observed in this pod
	retrans uint64
	timeout uint64
}

// kvDigestEvery is the pod-wide completion stride between replication
// digests on the core links: every 64th completed GET ships a 64-byte
// summary to pod 0.
const kvDigestEvery = 64

// kvSketch returns the latency sketch shape shared by every pod —
// identical shapes are what makes the final Merge legal. Units are
// microseconds: 0.1 µs floor (well under one propagation delay) to 10 s,
// 32 buckets per decade ≈ 7% relative error.
func kvSketch() *stats.QuantileSketch { return stats.NewQuantileSketch(0.1, 1e7, 32) }

func (kvServeWorkload) Run(sc *scenario.Scenario, out *scenario.Output) error {
	sys, err := sc.ResolvedSystem()
	if err != nil {
		return err
	}
	baseCfg := sc.Congestion.Config()
	pods := baseCfg.Topology.Radix
	nodes := sc.Nodes
	if nodes == 0 {
		nodes = pods * 16
	}
	hostsPer := nodes / pods
	clients := hostsPer - 1
	ops := sc.Ops
	if ops == 0 {
		ops = 16
	}
	size := sc.Size
	if size == 0 {
		size = 1024
	}
	interval := sc.Interval()
	if interval == 0 {
		interval = 2 * sim.Microsecond
	}
	mode := odpModeOf(sc.Mode, ServerODP)

	// Every pod simulates its own fat-tree slice: the pod cell of the
	// declared 3-tier topology, at the declared oversubscription.
	podCfg := baseCfg
	podCfg.Topology = congestion.PodTopology(baseCfg.Topology.Radix, baseCfg.Topology.Oversub)
	podSys := sys
	podSys.Congestion = &podCfg

	// The partition is derived from the traffic, never from sc.Shards:
	// client→server flows are pod-local, so Decompose yields exactly one
	// domain per pod. If a future variant adds cross-pod flows this check
	// fails loudly instead of silently breaking determinism.
	pairs := make([][2]int, 0, pods*clients)
	for p := 0; p < pods; p++ {
		base := p * hostsPer
		for c := 1; c < hostsPer; c++ {
			pairs = append(pairs, [2]int{base + c, base})
		}
	}
	part := shard.Decompose(nodes, pairs)
	if part.Count != pods {
		panic(fmt.Sprintf("kv-serve: %d hosts decomposed into %d causal domains, want %d pods", nodes, part.Count, pods))
	}

	g := shard.NewGroup(sc.Shards)
	seed := sc.SeedOrDefault()
	params := rnic.ConnParams{CACK: 8, RetryCount: 7, MinRNRDelay: sc.RNRDelay()}
	if sc.CACK > 0 {
		params.CACK = sc.CACK
	}
	if sc.Retry > 0 {
		params.RetryCount = sc.Retry
	}
	post := sim.Time(float64(300*sim.Nanosecond) * sys.CPUFactor)
	coreGbps := sys.Device.LinkGbps / baseCfg.Topology.Oversub
	const coreProp = 2 * sim.Microsecond

	pod := make([]*kvPod, pods)
	domains := make([]*shard.Domain, pods)
	links := make([]*shard.Link, pods) // digest link per pod (nil for pod 0)

	// Pod 0 is the frontend: it serves its own rack and aggregates the
	// other pods' replication digests off the core links.
	var digests uint64
	var digestOps uint64 // remote completions covered by the digests seen
	var lastDigest sim.Time
	lastArg := make([]uint64, pods)

	for p := 0; p < pods; p++ {
		p := p
		// Per-pod seeds stride by a large prime so the pods' RNG streams
		// are decorrelated while staying a pure function of the scenario
		// seed (pod 0 keeps the base seed for continuity with the
		// single-engine workloads).
		podSeed := seed + int64(p)*1000003
		kp := &kvPod{sketch: kvSketch()}
		pod[p] = kp
		kp.cl = podSys.BuildOn(nil, podSeed, hostsPer)
		domains[p] = g.AddDomain(kp.cl.Eng)
		if p > 0 {
			links[p] = g.Connect(domains[p], domains[0], coreGbps, coreProp)
		}

		// The server's value region: one size*ops slice per client, every
		// op touching a fresh offset so cold ODP pages keep faulting the
		// way a growing working set does.
		server := kp.cl.Nodes[0]
		slotLen := size * ops
		region := server.AS.Alloc(slotLen * clients)
		if mode == ServerODP || mode == BothODP {
			server.RegisterManagedMR(region, slotLen*clients)
		} else {
			server.RegisterMR(region, slotLen*clients)
		}

		completed := 0 // pod-wide, for the digest stride
		for c := 1; c < hostsPer; c++ {
			c := c
			node := kp.cl.Nodes[c]
			lbuf := node.AS.Alloc(slotLen)
			if mode == ClientODP || mode == BothODP {
				node.RegisterManagedMR(lbuf, slotLen)
			} else {
				node.RegisterMR(lbuf, slotLen)
			}
			cq := rnic.NewCQ(kp.cl.Eng)
			qc := node.CreateQP(cq, cq)
			qs := server.CreateQP(rnic.NewCQ(kp.cl.Eng), rnic.NewCQ(kp.cl.Eng))
			rnic.ConnectPair(qc, qs, params, params)
			kp.qps = append(kp.qps, qc)
			roff := region + hostmem.Addr(slotLen*(c-1))

			postAt := make([]sim.Time, ops)
			// Open loop: the poster fires a GET every interval regardless
			// of completions — precisely the regime where fault-delayed
			// responses pile latency onto the tail instead of throttling
			// the offered load.
			kp.cl.Eng.Go(fmt.Sprintf("kv-post-%d-%d", p, c), func(pr *sim.Proc) {
				for k := 0; k < ops; k++ {
					off := hostmem.Addr(size * k)
					postAt[k] = pr.Now()
					qc.PostSend(rnic.SendWR{
						ID: uint64(k), Op: rnic.OpRead,
						LocalAddr:  lbuf + off,
						RemoteAddr: roff + off,
						Len:        size,
					})
					pr.Sleep(post)
					if interval > post {
						pr.Sleep(interval - post)
					}
				}
			})
			kp.cl.Eng.Go(fmt.Sprintf("kv-reap-%d-%d", p, c), func(pr *sim.Proc) {
				for done := 0; done < ops; {
					for _, e := range cq.WaitN(pr, 1) {
						done++
						lat := pr.Now() - postAt[e.WRID]
						kp.sketch.Add(float64(lat) / float64(sim.Microsecond))
						if now := pr.Now(); now > kp.done {
							kp.done = now
						}
						completed++
						if p > 0 && completed%kvDigestEvery == 0 {
							links[p].Send(shard.Flight{Len: 64, Arg: uint64(completed)})
						}
					}
				}
			})
		}
	}
	domains[0].OnFlight(func(f shard.Flight) {
		digests++
		lastDigest = domains[0].Eng.Now()
		digestOps += f.Arg - lastArg[f.From]
		lastArg[f.From] = f.Arg
	})

	g.MustRun()

	// Aggregation walks pods in index order everywhere below — with the
	// per-pod state fully settled, order only matters for byte-identical
	// output, and index order is the canonical one.
	merged := kvSketch()
	var exec sim.Time
	var retrans, timeouts, rnrNaks uint64
	var pause, ecn, drops float64
	tiers := map[string]*congestion.TierStat{}
	var tierOrder []string
	for p := 0; p < pods; p++ {
		kp := pod[p]
		merged.Merge(kp.sketch)
		if kp.done > exec {
			exec = kp.done
		}
		for _, qp := range kp.qps {
			retrans += qp.Stats.Retransmits
			timeouts += qp.Stats.Timeouts
		}
		for _, n := range kp.cl.Nodes {
			rnrNaks += n.RNRNakSent
		}
		snap := kp.cl.Telemetry().Snapshot(kp.cl.Eng.Now())
		pause += snap.Total(telemetry.TxPauseDuration)
		ecn += snap.Total(telemetry.SimSwitchEcnMarked)
		drops += snap.Total(telemetry.SimSwitchDrops)
		for _, t := range kp.cl.Fab.Network().TierStats() {
			agg, ok := tiers[t.Tier]
			if !ok {
				agg = &congestion.TierStat{Tier: t.Tier}
				tiers[t.Tier] = agg
				tierOrder = append(tierOrder, t.Tier)
			}
			agg.Switches += t.Switches
			if t.PeakBytes > agg.PeakBytes {
				agg.PeakBytes = t.PeakBytes
			}
			agg.PauseFrames += t.PauseFrames
			agg.EcnMarked += t.EcnMarked
			agg.Drops += t.Drops
		}
	}

	fmt.Fprintln(out.W, sc.ExpandedTitle())
	fmt.Fprintf(out.W, "\nkv-serve %d pods x %d hosts on %s (%d clients, %d GETs x %d B each, open-loop @ %v, %s):\n",
		pods, hostsPer, sc.Congestion.Topology.Label(), pods*clients, ops, size,
		time.Duration(interval), mode)
	fmt.Fprintf(out.W, "exec %v  retrans %d  timeouts %d  rnr_naks %d  drops %.0f  pause %.0f us  ecn %.0f\n",
		time.Duration(exec), retrans, timeouts, rnrNaks, drops, pause, ecn)
	fmt.Fprintf(out.W, "latency[us]  p50 %.1f  p90 %.1f  p99 %.1f  p99.9 %.1f  max %.1f  (n=%d)\n",
		merged.Quantile(0.50), merged.Quantile(0.90), merged.Quantile(0.99),
		merged.Quantile(0.999), merged.Max(), merged.N())
	fmt.Fprintf(out.W, "digests %d at pod0 covering %d remote ops, last at %v\n",
		digests, digestOps, time.Duration(lastDigest))
	fmt.Fprintf(out.W, "%-8s %8s %12s %12s %10s %7s\n",
		"tier", "switches", "peak_buf[B]", "pause_frames", "ecn_marked", "drops")
	for _, name := range tierOrder {
		t := tiers[name]
		fmt.Fprintf(out.W, "%-8s %8d %12d %12d %10d %7d\n",
			t.Tier, t.Switches, t.PeakBytes, t.PauseFrames, t.EcnMarked, t.Drops)
	}
	return nil
}
