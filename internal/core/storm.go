package core

import (
	"fmt"
	"time"

	"odpsim/internal/apps/sparkucx"
	"odpsim/internal/rnic"
	"odpsim/internal/scenario"
	"odpsim/internal/telemetry"
)

// This file is the congestion follow-up question the paper could not
// ask on its fixed testbeds: do the ODP pitfalls get better or worse on
// a lossless fabric? The storm workload re-runs the Figure-11
// page-fault flood (driven in the write direction so the storm's own
// data contends in the core) and the Table-13 KNL SparkUCX row on the
// switched fabric of internal/congestion, comparing three fabric
// variants side by side:
//
//   analytic   — the paper's original serialization-only fabric,
//   lossy      — the switched topology with PFC/ECN/DCQCN all off, so
//                the flood tail-drops in the oversubscribed core,
//   (declared) — the scenario's own congestion block (PFC for
//                storm-lossless, PFC+DCQCN for storm-dcqcn).
//
// Every variant runs the same seed, so the rows differ only by fabric.

func init() { scenario.RegisterWorkload(stormWorkload{}) }

type stormWorkload struct{}

func (stormWorkload) Kind() string { return "storm" }

func (stormWorkload) Validate(sc *scenario.Scenario) error {
	if sc.Congestion == nil {
		return fmt.Errorf("scenario %q: storm compares fabric variants, so it needs a congestion block", sc.Name)
	}
	return scenario.RequireTrials(sc)
}

// stormVariant is one fabric configuration under comparison.
type stormVariant struct {
	label string
	spec  *scenario.CongestionSpec // nil = analytic fabric
}

// variants derives the three fabric rows from the scenario's block. The
// lossy row keeps the declared topology (switch count, buffers, uplink
// oversubscription) but strips every relief mechanism, so it shows what
// the same storm costs when the fabric just drops.
func stormVariants(sc *scenario.Scenario) []stormVariant {
	lossy := *sc.Congestion
	lossy.PFC = false
	lossy.ECN = false
	lossy.DCQCN = false
	declared := "switched+pfc"
	if sc.Congestion.DCQCN {
		declared = "switched+pfc+dcqcn"
	}
	return []stormVariant{
		{label: "analytic", spec: nil},
		{label: "switched lossy", spec: &lossy},
		{label: declared, spec: sc.Congestion},
	}
}

func (stormWorkload) Run(sc *scenario.Scenario, out *scenario.Output) error {
	cfg, err := benchConfig(sc)
	if err != nil {
		return err
	}
	// The flood sends data *toward* the ODP side so the storm itself is
	// what contends in the fabric: server-side ODP drives WRITE bursts
	// (RNR NAK → blind go-back-N replays of full data packets), while
	// client-side ODP keeps Fig-11's READ shape (the response stream
	// contends instead).
	op := "READ"
	if cfg.Mode == ServerODP || cfg.Mode == BothODP {
		cfg.OpOverride = func(int) rnic.SendOp { return rnic.OpWrite }
		op = "WRITE"
	}
	fmt.Fprintln(out.W, sc.ExpandedTitle())

	fmt.Fprintf(out.W, "\nflood (%d %ss × %d B over %d QPs, %s, C_ACK=%d):\n",
		cfg.NumOps, op, cfg.Size, cfg.NumQPs, cfg.Mode, cfg.CACK)
	fmt.Fprintf(out.W, "%-20s %12s %9s %9s %7s %9s %8s %6s\n",
		"fabric", "exec", "retrans", "timeouts", "drops", "pause[us]", "ecn", "cnps")
	for _, v := range stormVariants(sc) {
		b := cfg
		b.System.Congestion = nil
		if v.spec != nil {
			c := v.spec.Config()
			b.System.Congestion = &c
		}
		r := RunMicrobench(b)
		fmt.Fprintf(out.W, "%-20s %12v %9d %9d %7.0f %9.0f %8.0f %6.0f\n",
			v.label, time.Duration(r.ExecTime), r.Retransmits, r.Timeouts,
			r.Final.Total(telemetry.SimSwitchDrops),
			r.Final.Total(telemetry.TxPauseDuration),
			r.Final.Total(telemetry.SimSwitchEcnMarked),
			r.Final.Total(telemetry.NpCnpSent))
	}

	// The Table-13 row: the KNL SparkTC job, ODP disabled vs enabled,
	// on the declared congested fabric. Label stays "KNL (2)" — the
	// calibrated base times are keyed by it.
	waves := sc.Waves
	if waves == 0 {
		waves = 2
	}
	knl := sparkucx.Table13Configs()[0]
	knl.System = sc.ApplyFaults(knl.System)
	row := sparkucx.MeasureRow(sparkucx.SparkTC, knl, sc.Trials, sc.SeedOrDefault(), waves)
	fmt.Fprintf(out.W, "\nTable-13 SparkTC on the congested fabric (%d trials):\n", sc.Trials)
	fmt.Fprintf(out.W, "%-16s %6s %16s %16s %8s %8s\n", "", "QPs", "Disable [s]", "Enable [s]", "ratio", "omitted")
	fmt.Fprintf(out.W, "%-16s %6d %9.1f ±%4.1f %9.1f ±%4.1f %8.2f %8d\n",
		row.Label, row.QPs,
		row.Disable.Mean, row.Disable.Std,
		row.Enable.Mean, row.Enable.Std,
		row.Ratio, row.Omitted)
	return nil
}
