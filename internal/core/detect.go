package core

import (
	"fmt"

	"odpsim/internal/capture"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// DammingIncident is a detected packet-damming occurrence: a request PSN
// retransmitted after an anomalously long silent gap (the timeout), which
// is exactly how the paper identified the pitfall in ibdump traces.
type DammingIncident struct {
	QPN     uint32
	PSN     uint32
	FirstAt sim.Time
	RetryAt sim.Time
	Stall   sim.Time
}

// String implements fmt.Stringer.
func (d DammingIncident) String() string {
	return fmt.Sprintf("QP %d PSN %d stalled %v (first sent %v, retried %v)",
		d.QPN, d.PSN, d.Stall, d.FirstAt, d.RetryAt)
}

// DetectDamming scans a capture for request packets retransmitted after a
// gap of at least minStall (several hundred milliseconds for a default
// ConnectX-4 timeout). Each (QP, PSN) is reported once, at its longest
// stall.
func DetectDamming(c *capture.Capture, minStall sim.Time) []DammingIncident {
	type key struct {
		qp  uint32
		psn uint32
	}
	lastSeen := make(map[key]sim.Time)
	firstSeen := make(map[key]sim.Time)
	best := make(map[key]DammingIncident)
	var order []key
	for _, r := range c.Records() {
		if !r.Pkt.Opcode.IsRequest() {
			continue
		}
		k := key{r.Pkt.DestQP, r.Pkt.PSN}
		if prev, ok := lastSeen[k]; ok {
			if stall := r.At - prev; stall >= minStall {
				inc := DammingIncident{
					QPN: k.qp, PSN: k.psn,
					FirstAt: firstSeen[k], RetryAt: r.At, Stall: stall,
				}
				if old, dup := best[k]; !dup || inc.Stall > old.Stall {
					if !dup {
						order = append(order, k)
					}
					best[k] = inc
				}
			}
		} else {
			firstSeen[k] = r.At
		}
		lastSeen[k] = r.At
	}
	out := make([]DammingIncident, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}

// FloodIncident is a detected packet flood: a burst of request
// retransmissions within one window.
type FloodIncident struct {
	WindowStart sim.Time
	Retransmits int
	DistinctQPs int
}

// String implements fmt.Stringer.
func (f FloodIncident) String() string {
	return fmt.Sprintf("window at %v: %d retransmissions across %d QPs",
		f.WindowStart, f.Retransmits, f.DistinctQPs)
}

// DetectFlood slices the capture into windows and reports those where the
// number of request retransmissions reaches threshold — the paper's
// fingerprint of packet flood ("many READ packets were retransmitted
// every several tens of milliseconds").
func DetectFlood(c *capture.Capture, window sim.Time, threshold int) []FloodIncident {
	if window <= 0 {
		window = 50 * sim.Millisecond
	}
	type key struct {
		qp  uint32
		psn uint32
	}
	seen := make(map[key]bool)
	counts := make(map[sim.Time]int)
	qpsAt := make(map[sim.Time]map[uint32]bool)
	for _, r := range c.Records() {
		if !r.Pkt.Opcode.IsRequest() {
			continue
		}
		k := key{r.Pkt.DestQP, r.Pkt.PSN}
		if seen[k] {
			w := (r.At / window) * window
			counts[w]++
			if qpsAt[w] == nil {
				qpsAt[w] = make(map[uint32]bool)
			}
			qpsAt[w][r.Pkt.DestQP] = true
		}
		seen[k] = true
	}
	var out []FloodIncident
	for w, n := range counts {
		if n >= threshold {
			out = append(out, FloodIncident{WindowStart: w, Retransmits: n, DistinctQPs: len(qpsAt[w])})
		}
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].WindowStart < out[j-1].WindowStart; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// countRNRNaks is a small helper shared by tests and reports.
func countRNRNaks(c *capture.Capture) int {
	return c.CountSyndrome(packet.SynRNRNAK)
}
