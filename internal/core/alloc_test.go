package core

import (
	"testing"

	"odpsim/internal/sim"
)

// TestAllocBudgetMicrobench pins the per-trial allocation budget of the
// whole stack on a Reset-reused engine — the loop every sweep runs. The
// seed's datapath cost was 937 allocs per trial; the pooled datapath and
// the engine-generation arenas (DESIGN.md §8) bring a warm trial to ~60,
// and this test fails the build if it creeps past 100.
func TestAllocBudgetMicrobench(t *testing.T) {
	eng := sim.New(1)
	seed := int64(0)
	trial := func() {
		seed++
		cfg := DefaultBench()
		cfg.Eng = eng
		cfg.Seed = seed
		RunMicrobench(cfg)
	}
	trial() // first trial warms the arenas

	if avg := testing.AllocsPerRun(20, trial); avg > 100 {
		t.Errorf("warm RunMicrobench trial allocates %.0f/op, budget 100", avg)
	}
}
