package core

import (
	"fmt"

	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// This file diagnoses the paper's two pitfalls from device counters
// alone. The capture-based detectors in detect.go replay what the paper
// did on KNL with ibdump and sudo; on the six production systems where
// neither was available (§IV), counters like local_ack_timeout_err and
// the ODP fault counters are all an operator gets. The diagnosers here
// deliberately never read sim_dammed_drops — the ground-truth counter a
// real RNIC does not expose — so that what works in the simulator would
// work against /sys/class/infiniband too.

// CounterDammingIncident is a packet-damming episode inferred from
// counters: a window where completions stop advancing while requests
// remain outstanding, resolved by a Local ACK Timeout expiration.
type CounterDammingIncident struct {
	Start sim.Time
	End   sim.Time
	// Outstanding is posted-minus-completed during the stall.
	Outstanding uint64
	// Timeouts is the growth of local_ack_timeout_err attributable to
	// the stall.
	Timeouts uint64
}

// Stall returns the length of the completion plateau.
func (d CounterDammingIncident) Stall() sim.Time { return d.End - d.Start }

// String implements fmt.Stringer.
func (d CounterDammingIncident) String() string {
	return fmt.Sprintf("completions stalled %v (%v..%v) with %d outstanding; local_ack_timeout_err +%d",
		d.Stall(), d.Start, d.End, d.Outstanding, d.Timeouts)
}

// DiagnoseDammingCounters scans a sampled counter series for damming: a
// maximal run of samples over which sim_req_completed is flat,
// sim_req_posted exceeds sim_req_completed, the plateau lasts at least
// minStall, and local_ack_timeout_err grows during the plateau or at the
// sample that ends it (the timeout is what finally breaks the dam, so
// its increment may land together with the resumed completions).
// minStall <= 0 selects 100 ms, comfortably above any healthy
// completion gap yet well below the ≈0.5 s default timeout.
func DiagnoseDammingCounters(ts *telemetry.TimeSeries, minStall sim.Time) []CounterDammingIncident {
	if minStall <= 0 {
		minStall = 100 * sim.Millisecond
	}
	if ts == nil || ts.Len() < 2 {
		return nil
	}
	at := ts.Times()
	completed := ts.Sum(telemetry.SimReqCompleted)
	posted := ts.Sum(telemetry.SimReqPosted)
	timeouts := ts.Sum(telemetry.LocalAckTimeoutErr)

	var out []CounterDammingIncident
	n := ts.Len()
	for i := 0; i < n-1; {
		// Extend the plateau while completions stay flat.
		j := i
		for j+1 < n && completed[j+1] == completed[i] {
			j++
		}
		if j > i && posted[i] > completed[i] && at[j]-at[i] >= minStall {
			// Timeout growth during the plateau, or at the sample
			// right after it where the unblocked completions land.
			end := j
			if end+1 < n {
				end = j + 1
			}
			if grown := timeouts[end] - timeouts[i]; grown > 0 {
				out = append(out, CounterDammingIncident{
					Start:       at[i],
					End:         at[j],
					Outstanding: uint64(posted[i] - completed[i]),
					Timeouts:    uint64(grown),
				})
			}
		}
		if j == i {
			j = i + 1
		}
		i = j
	}
	return out
}

// CounterFloodIncident is a packet-flood episode inferred from counters:
// a sustained window of high request-retransmission rate.
type CounterFloodIncident struct {
	Start sim.Time
	End   sim.Time
	// Retransmits is the sim_retransmits growth over the window.
	Retransmits uint64
	// Rate is retransmissions per second over the window.
	Rate float64
}

// String implements fmt.Stringer.
func (f CounterFloodIncident) String() string {
	return fmt.Sprintf("%d retransmissions in %v..%v (%.0f/s)",
		f.Retransmits, f.Start, f.End, f.Rate)
}

// minFloodRetransmits discards windows whose total retransmission count
// is below it: a lone go-back-N replay after one timeout can look
// briefly fast against a short sampling interval, but a flood by
// definition keeps going.
const minFloodRetransmits = 10

// DiagnoseFloodCounters scans a sampled counter series for flood: maximal
// runs of inter-sample intervals whose request-retransmission rate is at
// least ratePerSec, keeping windows with at least minFloodRetransmits
// total. The paper's fingerprint — "many READ packets were retransmitted
// every several tens of milliseconds" — shows up in counters as a
// retransmission rate orders of magnitude above the handful a single
// timeout recovery produces. ratePerSec <= 0 selects 100 retransmissions
// per second.
func DiagnoseFloodCounters(ts *telemetry.TimeSeries, ratePerSec float64) []CounterFloodIncident {
	if ratePerSec <= 0 {
		ratePerSec = 100
	}
	if ts == nil || ts.Len() < 2 {
		return nil
	}
	at := ts.Times()
	retr := ts.Sum(telemetry.SimRetransmits)

	hot := func(i int) bool { // is interval [i, i+1] above threshold?
		dt := at[i+1] - at[i]
		if dt <= 0 {
			return false
		}
		return (retr[i+1]-retr[i])/dt.Seconds() >= ratePerSec
	}

	var out []CounterFloodIncident
	n := ts.Len()
	for i := 0; i < n-1; {
		if !hot(i) {
			i++
			continue
		}
		j := i
		for j+1 < n-1 && hot(j+1) {
			j++
		}
		dur := at[j+1] - at[i]
		grown := retr[j+1] - retr[i]
		if grown >= minFloodRetransmits {
			out = append(out, CounterFloodIncident{
				Start:       at[i],
				End:         at[j+1],
				Retransmits: uint64(grown),
				Rate:        grown / dur.Seconds(),
			})
		}
		i = j + 1
	}
	return out
}

// CounterDiagnosis bundles both diagnoses of one counter series.
type CounterDiagnosis struct {
	Damming []CounterDammingIncident
	Flood   []CounterFloodIncident
}

// Healthy reports whether neither pitfall was diagnosed.
func (d CounterDiagnosis) Healthy() bool { return len(d.Damming) == 0 && len(d.Flood) == 0 }

// DiagnoseCounters runs both counter-only diagnosers with their default
// thresholds.
func DiagnoseCounters(ts *telemetry.TimeSeries) CounterDiagnosis {
	return CounterDiagnosis{
		Damming: DiagnoseDammingCounters(ts, 0),
		Flood:   DiagnoseFloodCounters(ts, 0),
	}
}
