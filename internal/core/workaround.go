package core

import (
	"odpsim/internal/hostmem"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

// DummyPingIDBase is the WR-ID space used by the dummy-communication
// workaround; real operations must use IDs below it.
const DummyPingIDBase uint64 = 1 << 62

// DummyPinger implements the paper's second packet-damming workaround
// (§IX-A): "implementing a software timer with appropriate granularity to
// issue a dummy communication periodically". Each dummy READ posted after
// a pending window gives the responder a PSN gap to NAK, rescuing dammed
// requests in one round trip instead of a several-hundred-millisecond
// timeout.
type DummyPinger struct {
	eng      *sim.Engine
	qp       *rnic.QP
	local    hostmem.Addr
	remote   hostmem.Addr
	interval sim.Time
	timer    sim.Timer
	stopped  bool
	next     uint64

	// Pings counts dummy operations issued.
	Pings uint64
}

// StartDummyPinger begins posting a 1-byte dummy READ on qp every
// interval (default 200 µs). local and remote must lie in registered
// regions.
func StartDummyPinger(eng *sim.Engine, qp *rnic.QP, local, remote hostmem.Addr, interval sim.Time) *DummyPinger {
	if interval <= 0 {
		interval = 200 * sim.Microsecond
	}
	d := &DummyPinger{eng: eng, qp: qp, local: local, remote: remote, interval: interval}
	d.schedule()
	return d
}

func (d *DummyPinger) schedule() {
	d.timer = d.eng.After(d.interval, func() {
		if d.stopped || d.qp.State() != rnic.QPReady {
			return
		}
		d.Pings++
		d.qp.PostSend(rnic.SendWR{
			ID: DummyPingIDBase + d.next, Op: rnic.OpRead,
			LocalAddr: d.local, RemoteAddr: d.remote, Len: 1,
		})
		d.next++
		d.schedule()
	})
}

// Stop halts the pinger.
func (d *DummyPinger) Stop() {
	d.stopped = true
	d.timer.Cancel()
}

// SmallestRNRDelay is the paper's first workaround: configure the minimal
// RNR NAK delay as small as possible, which narrows the pending window in
// which posts are vulnerable to damming and speeds client-side fault
// resolution. The InfiniBand RNR timer field's smallest non-zero encoding
// is 0.01 ms.
const SmallestRNRDelay = 10 * sim.Microsecond

// ReissueAfter is a helper for the packet-flood workaround sketch (§IX-A:
// "issuing the same communication again might work because the page fault
// itself is actually solved during the packet flood"): it schedules a
// duplicate of the WR after the given stall deadline unless cancel() was
// called (i.e. the original completed). It returns the cancel function.
func ReissueAfter(eng *sim.Engine, qp *rnic.QP, wr rnic.SendWR, stall sim.Time) (cancel func()) {
	t := eng.After(stall, func() {
		if qp.State() == rnic.QPReady {
			qp.PostSend(wr)
		}
	})
	return func() { t.Cancel() }
}
