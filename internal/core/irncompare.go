package core

import (
	"fmt"
	"time"

	"odpsim/internal/rnic"
	"odpsim/internal/scenario"
	"odpsim/internal/telemetry"
)

// This file asks the question ROADMAP item 2 promises an answer to: do
// the paper's two pitfalls (pending-window loss / packet damming, and
// the page-status update failure behind packet floods) shrink, survive
// or change shape when the transport stops amplifying them? The
// irn-compare workload reruns one flood shape across every cell of
// {rc, irn} × {lossy, lossless} × {pin, odp, npr}:
//
//   rc        — the hardware go-back-N machine (the paper's transport),
//   irn       — the selective-repeat transport of internal/irn,
//   lossy     — the scenario's declared switched topology with
//               PFC/ECN/DCQCN stripped, so congestion tail-drops,
//   lossless  — the declared congestion block as-is (PFC at least).
//
// Every cell runs the same seed, so rows differ only by transport and
// fabric; the memory-mode sections reuse the mem-compare ordering.

func init() { scenario.RegisterWorkload(irnCompare{}) }

// irnTransports is the comparison order: the baseline go-back-N RC
// machine, then IRN.
var irnTransports = []string{"rc", "irn"}

type irnCompare struct{}

func (irnCompare) Kind() string { return "irn-compare" }

func (irnCompare) Validate(sc *scenario.Scenario) error {
	if sc.Congestion == nil {
		return fmt.Errorf("scenario %q: irn-compare compares lossy vs lossless fabrics, so it needs a congestion block", sc.Name)
	}
	if sc.Transport != nil && sc.Transport.Mode != "" {
		return fmt.Errorf("scenario %q: irn-compare sweeps both transports; transport.mode %q would be ignored",
			sc.Name, sc.Transport.Mode)
	}
	if sc.Memory != nil && sc.Memory.Mode != "" {
		return fmt.Errorf("scenario %q: irn-compare sweeps every memory mode; memory.mode %q would be ignored",
			sc.Name, sc.Memory.Mode)
	}
	return nil
}

// irnFabric is one fabric configuration under comparison.
type irnFabric struct {
	label string
	spec  *scenario.CongestionSpec
}

// irnFabrics derives the lossy/lossless pair from the scenario's
// congestion block, the way stormVariants derives its lossy row: same
// topology, buffers and oversubscription, relief mechanisms stripped.
func irnFabrics(sc *scenario.Scenario) []irnFabric {
	lossy := *sc.Congestion
	lossy.PFC = false
	lossy.ECN = false
	lossy.DCQCN = false
	return []irnFabric{
		{label: "lossy", spec: &lossy},
		{label: "lossless", spec: sc.Congestion},
	}
}

func (irnCompare) Run(sc *scenario.Scenario, out *scenario.Output) error {
	cfg, err := benchConfig(sc)
	if err != nil {
		return err
	}
	// Same flood direction rule as the storm workload: server-side ODP
	// drives WRITE bursts so the storm's own data contends; client-side
	// ODP keeps the READ shape (the response stream contends instead).
	op := "READ"
	if cfg.Mode == ServerODP || cfg.Mode == BothODP {
		cfg.OpOverride = func(int) rnic.SendOp { return rnic.OpWrite }
		op = "WRITE"
	}
	fmt.Fprintln(out.W, sc.ExpandedTitle())
	fmt.Fprintf(out.W, "\nflood (%d %ss × %d B over %d QPs, %s, C_ACK=%d):\n",
		cfg.NumOps, op, cfg.Size, cfg.NumQPs, cfg.Mode, cfg.CACK)
	for mi, mem := range memModes {
		if mi > 0 {
			fmt.Fprintln(out.W)
		}
		fmt.Fprintf(out.W, "=== memory: %s ===\n", mem)
		fmt.Fprintf(out.W, "%-5s %-9s %12s %8s %8s %8s %7s %8s %6s %6s %6s %9s %6s %9s\n",
			"tport", "fabric", "exec", "retrans", "timeouts", "rnr_nak", "dammed", "discard", "flt", "ooo", "sack", "bdp_stall", "drops", "pause[us]")
		for _, tr := range irnTransports {
			for _, fb := range irnFabrics(sc) {
				b := cfg
				b.System.MemMode = mem
				b.System.Transport = tr
				c := fb.spec.Config()
				b.System.Congestion = &c
				r := RunMicrobench(b)
				fmt.Fprintf(out.W, "%-5s %-9s %12v %8d %8d %8d %7d %8.0f %6d %6.0f %6.0f %9.0f %6.0f %9.0f\n",
					tr, fb.label, time.Duration(r.ExecTime),
					r.Retransmits, r.Timeouts, r.RNRNaksSent, r.DammedDrops,
					r.Final.Total(telemetry.SimResponsesDiscarded),
					r.ClientFaults,
					r.Final.Total(telemetry.IrnOooLanded),
					r.Final.Total(telemetry.IrnSackSent),
					r.Final.Total(telemetry.IrnBdpStalls),
					r.Final.Total(telemetry.SimSwitchDrops),
					r.Final.Total(telemetry.TxPauseDuration))
			}
		}
	}
	return nil
}
