package sparkucx

import (
	"strings"
	"testing"
)

func knl2() SystemConfig { return Table13Configs()[0] }

func TestDisableMatchesBaseline(t *testing.T) {
	cfg := Config{Example: SparkTC, Sys: knl2(), Seed: 1, SampleWaves: 1}
	r := Run(cfg)
	// Disable ≈ the calibrated base (303 s) plus a small real shuffle.
	if s := r.ExecTime.Seconds(); s < 300 || s > 310 {
		t.Errorf("disable exec = %.1f s, want ≈303", s)
	}
	if r.FloodDetected {
		t.Error("no flood without ODP")
	}
}

func TestEnableDegradesAndFloods(t *testing.T) {
	cfg := Config{Example: SparkTC, Sys: knl2(), Seed: 1, SampleWaves: 1, QPCap: 64}
	dis := Run(cfg)
	cfg.ODP = true
	ena := Run(cfg)
	if ena.ExecTime <= dis.ExecTime {
		t.Errorf("ODP should be slower: %v vs %v", ena.ExecTime, dis.ExecTime)
	}
	if !ena.FloodDetected {
		t.Error("expected retransmission flood")
	}
	ratio := ena.ExecTime.Seconds() / dis.ExecTime.Seconds()
	if ratio < 1.05 || ratio > 8 {
		t.Errorf("ratio = %.2f, want within the paper's 1.0–6.5 ballpark", ratio)
	}
}

func TestMeasureRow(t *testing.T) {
	row := MeasureRow(RecommendationExample, knl2(), 2, 7, 1)
	if row.Disable.N != 2 {
		t.Fatalf("row = %+v", row)
	}
	if row.Enable.N+row.Omitted != 2 {
		t.Fatalf("enable samples + omitted != trials: %+v", row)
	}
	if row.Ratio <= 1.0 {
		t.Errorf("ratio = %.2f, want > 1", row.Ratio)
	}
	if row.QPs != 210 {
		t.Errorf("QPs = %d", row.QPs)
	}
}

func TestTable13ConfigsShape(t *testing.T) {
	cfgs := Table13Configs()
	if len(cfgs) != 4 {
		t.Fatalf("want 4 system configs")
	}
	for _, sc := range cfgs {
		for _, e := range []Example{SparkTC, RecommendationExample, RankingMetricsExample} {
			if sc.QPs[e] <= 0 {
				t.Errorf("%s/%v: missing QP count", sc.Label, e)
			}
			w := exampleWorkload(e)
			if _, ok := w.base[sc.Label]; !ok {
				t.Errorf("%s/%v: missing baseline", sc.Label, e)
			}
		}
	}
	if cfgs[3].Workers != 4 {
		t.Error("ABCI (4) should have 4 workers")
	}
}

func TestExampleStrings(t *testing.T) {
	if SparkTC.String() != "SparkTC" {
		t.Error("SparkTC name")
	}
	if !strings.Contains(RecommendationExample.String(), "Recommendation") {
		t.Error("Recommendation name")
	}
	if !strings.Contains(Example(9).String(), "9") {
		t.Error("unknown example should render number")
	}
}

func TestUnknownBaselinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown system label should panic")
		}
	}()
	Run(Config{Example: SparkTC, Sys: SystemConfig{Label: "nope"}})
}
