package sparkucx

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/sim"
)

func TestWaveNoODPIsFast(t *testing.T) {
	r := RunWave(WaveConfig{System: cluster.KNL(), Seed: 1, QPs: 32, Fetches: 512, Size: 256})
	if r.Failed {
		t.Fatal("wave failed")
	}
	if r.Time > 10*sim.Millisecond {
		t.Errorf("pinned wave took %v", r.Time)
	}
	if r.Retransmits != 0 {
		t.Errorf("retransmits = %d", r.Retransmits)
	}
	if r.FloodDetected(1024) {
		t.Error("no flood without ODP")
	}
}

func TestWaveODPFloods(t *testing.T) {
	r := RunWave(WaveConfig{System: cluster.KNL(), Seed: 1, QPs: 64, Fetches: 512, Size: 256, ODP: true})
	if r.Failed {
		t.Fatal("wave failed")
	}
	if !r.FloodDetected(1024) {
		t.Errorf("expected flood, retransmits = %d", r.Retransmits)
	}
	if r.Time < 20*sim.Millisecond {
		t.Errorf("ODP wave took only %v", r.Time)
	}
}

func TestWaveBidirectional(t *testing.T) {
	// Both directions fetch: the packet count must far exceed a
	// one-directional wave's.
	r := RunWave(WaveConfig{System: cluster.ReedbushH(), Seed: 2, QPs: 8, Fetches: 256, Size: 128})
	if r.Packets < 2*2*256 {
		t.Errorf("packets = %d, want both directions' requests+responses", r.Packets)
	}
}

func TestWaveDeterminism(t *testing.T) {
	cfg := WaveConfig{System: cluster.KNL(), Seed: 7, QPs: 16, Fetches: 128, Size: 64, ODP: true}
	a, b := RunWave(cfg), RunWave(cfg)
	if a.Time != b.Time || a.Packets != b.Packets {
		t.Errorf("non-deterministic waves: %+v vs %+v", a, b)
	}
}

func TestWaveInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid wave config should panic")
		}
	}()
	RunWave(WaveConfig{System: cluster.KNL(), QPs: 0, Fetches: 1, Size: 1})
}
