package sparkucx

import (
	"fmt"

	"odpsim/internal/scenario"
)

// Table 13 as a scenario workload: the three Spark examples across the
// four system configurations, ODP enabled vs disabled, rendered exactly
// as the historical odpapps driver did.

func init() { scenario.RegisterWorkload(scenarioWorkload{}) }

type scenarioWorkload struct{}

func (scenarioWorkload) Kind() string { return "sparkucx" }

func (scenarioWorkload) Validate(sc *scenario.Scenario) error {
	return scenario.RequireTrials(sc)
}

func (scenarioWorkload) Run(sc *scenario.Scenario, out *scenario.Output) error {
	waves := sc.Waves
	if waves == 0 {
		waves = 2
	}
	fmt.Fprintln(out.W, sc.ExpandedTitle())
	configs := Table13Configs()
	for i := range configs {
		configs[i].System = sc.ApplyFaults(configs[i].System)
	}
	for _, ex := range []Example{SparkTC, RecommendationExample, RankingMetricsExample} {
		fmt.Fprintf(out.W, "\n=== %v ===\n", ex)
		fmt.Fprintf(out.W, "%-16s %6s %16s %16s %8s %8s\n", "", "QPs", "Disable [s]", "Enable [s]", "ratio", "omitted")
		for _, cfg := range configs {
			row := MeasureRow(ex, cfg, sc.Trials, sc.SeedOrDefault(), waves)
			fmt.Fprintf(out.W, "%-16s %6d %9.1f ±%4.1f %9.1f ±%4.1f %8.2f %8d\n",
				row.Label, row.QPs,
				row.Disable.Mean, row.Disable.Std,
				row.Enable.Mean, row.Enable.Std,
				row.Ratio, row.Omitted)
		}
	}
	return nil
}
