package sparkucx

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/sim"
)

func jobCfg(seed int64, execs int, odp bool) JobConfig {
	return JobConfig{
		System: cluster.ReedbushH(), Seed: seed,
		Executors: execs, QPsPerPeer: 4, ODP: odp,
		Job: TCJob(1),
	}
}

func TestJobRunsPinned(t *testing.T) {
	r := RunJob(jobCfg(1, 2, false))
	if r.Failed {
		t.Fatal("job failed")
	}
	if len(r.StageTimes) != 4 {
		t.Fatalf("stage times = %v", r.StageTimes)
	}
	var sum sim.Time
	for _, st := range r.StageTimes {
		if st <= 0 {
			t.Errorf("non-positive stage time %v", st)
		}
		sum += st
	}
	if sum != r.Time {
		t.Errorf("stage times (%v) must sum to total (%v)", sum, r.Time)
	}
	if r.Retransmits != 0 {
		t.Errorf("pinned job retransmitted %d times", r.Retransmits)
	}
}

func TestJobODPSlowerWithRetransmissions(t *testing.T) {
	pinned := RunJob(jobCfg(2, 2, false))
	odp := RunJob(jobCfg(2, 2, true))
	if odp.Failed || pinned.Failed {
		t.Fatal("job failed")
	}
	if odp.Time <= pinned.Time {
		t.Errorf("ODP job (%v) should be slower than pinned (%v)", odp.Time, pinned.Time)
	}
	if odp.Retransmits == 0 {
		t.Error("ODP shuffle should retransmit (client-side faults)")
	}
}

func TestJobScalesWithExecutors(t *testing.T) {
	// More executors split the same tasks: the compute portion shrinks.
	two := RunJob(jobCfg(3, 2, false))
	four := RunJob(jobCfg(3, 4, false))
	if four.Failed || two.Failed {
		t.Fatal("job failed")
	}
	if four.Time >= two.Time {
		t.Errorf("4 executors (%v) should beat 2 (%v) on a compute-heavy job", four.Time, two.Time)
	}
}

func TestJobDeterminism(t *testing.T) {
	a := RunJob(jobCfg(4, 3, true))
	b := RunJob(jobCfg(4, 3, true))
	if a.Time != b.Time || a.Retransmits != b.Retransmits {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestJobInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1-executor job should panic")
		}
	}()
	RunJob(JobConfig{System: cluster.ReedbushH(), Executors: 1, Job: TCJob(1)})
}

func TestTCJobShape(t *testing.T) {
	j := TCJob(2)
	if len(j.Stages) != 4 {
		t.Fatalf("stages = %d", len(j.Stages))
	}
	if j.Stages[0].ShuffleBytesPerTask != 0 {
		t.Error("input stage should not shuffle")
	}
	for _, st := range j.Stages[1:] {
		if st.ShuffleBytesPerTask == 0 {
			t.Error("join stages must shuffle")
		}
	}
	if TCJob(0).Stages[0].Tasks != 8 {
		t.Error("scale clamps to 1")
	}
}
