package sparkucx

import (
	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/ucx"
)

// This file is a minimal Spark-like execution engine: jobs are stage
// DAGs, stages are sets of tasks spread over executors, and every stage
// boundary is a shuffle — reducers fetch their input partitions from all
// map-side executors with one-sided GETs over the UCX layer, exactly the
// traffic SparkUCX generates. Fresh fetch buffers per shuffle mean ODP
// faults on every boundary.

// Stage is one computation stage.
type Stage struct {
	// Tasks is the number of tasks (partitions) in the stage.
	Tasks int
	// ComputePerTask is the CPU time per task (scaled by CPUFactor).
	ComputePerTask sim.Time
	// ShuffleBytesPerTask is what each task fetches across the stage
	// boundary before computing (0 for the input stage).
	ShuffleBytesPerTask int
}

// Job is a sequence of stages.
type Job struct {
	Name   string
	Stages []Stage
}

// JobConfig parameterizes a job execution.
type JobConfig struct {
	System cluster.System
	Seed   int64
	// Executors is the number of worker nodes.
	Executors int
	// QPsPerPeer is the number of connections per executor pair
	// (SparkUCX opens several per remote executor thread).
	QPsPerPeer int
	// ODP registers all shuffle memory with on-demand paging.
	ODP bool
	Job Job
}

// JobResult reports one job execution.
type JobResult struct {
	Time       sim.Time
	StageTimes []sim.Time
	// Retransmits aggregates requester retransmissions over all QPs —
	// the flood indicator.
	Retransmits uint64
	Failed      bool
}

// fetchGranule is the size of one shuffle fetch operation.
const fetchGranule = 4096

// RunJob executes the job and returns its measurements.
func RunJob(cfg JobConfig) JobResult {
	if cfg.Executors < 2 {
		panic("sparkucx: need at least 2 executors")
	}
	if cfg.QPsPerPeer <= 0 {
		cfg.QPsPerPeer = 4
	}
	cl := cfg.System.Build(cfg.Seed, cfg.Executors)
	ucfg := ucx.DefaultConfig()
	ucfg.EnableODP = cfg.ODP

	n := cfg.Executors
	workers := make([]*ucx.Worker, n)
	for i, nic := range cl.Nodes {
		workers[i] = ucx.NewContext(nic, ucfg).NewWorker()
	}
	// eps[i][j][k] is executor i's k-th endpoint to executor j.
	eps := make([][][]*ucx.Endpoint, n)
	for i := range eps {
		eps[i] = make([][]*ucx.Endpoint, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := 0; k < cfg.QPsPerPeer; k++ {
				a, b := ucx.Connect(workers[i], workers[j])
				eps[i][j] = append(eps[i][j], a)
				eps[j][i] = append(eps[j][i], b)
			}
		}
	}

	// Each executor owns a map-output region (touched: the mapper wrote
	// it) and fresh fetch regions allocated per stage.
	outRegion := make([]hostmem.Addr, n)
	const outBytes = 4 << 20
	for i, nic := range cl.Nodes {
		outRegion[i] = nic.AS.Alloc(outBytes)
		nic.AS.Touch(outRegion[i], outBytes)
		workers[i].RegisterBuffer(outRegion[i], outBytes)
	}

	res := JobResult{StageTimes: make([]sim.Time, len(cfg.Job.Stages))}
	cpu := cfg.System.CPUFactor
	barrier := sim.NewCond(cl.Eng)
	arrived := 0
	stageEnd := make([]sim.Time, len(cfg.Job.Stages))

	for e := 0; e < n; e++ {
		e := e
		cl.Eng.Go("executor", func(p *sim.Proc) {
			for si, st := range cfg.Job.Stages {
				// Shuffle: fetch this executor's share of the previous
				// stage's output from every peer, into fresh pages.
				myTasks := st.Tasks / n
				if e < st.Tasks%n {
					myTasks++
				}
				if st.ShuffleBytesPerTask > 0 && myTasks > 0 {
					perPeer := st.ShuffleBytesPerTask * myTasks / (n - 1)
					if perPeer < fetchGranule {
						perPeer = fetchGranule
					}
					dst := cl.Nodes[e].AS.Alloc(perPeer * (n - 1))
					workers[e].RegisterBuffer(dst, perPeer*(n-1))
					var reqs []ucx.Request
					k := 0
					for peer := 0; peer < n; peer++ {
						if peer == e {
							continue
						}
						for off := 0; off < perPeer; off += fetchGranule {
							ep := eps[e][peer][k%cfg.QPsPerPeer]
							k++
							src := outRegion[peer] + hostmem.Addr(off%outBytes)
							reqs = append(reqs, ep.GetAsync(dst+hostmem.Addr(off), src, fetchGranule))
							p.Sleep(sim.Time(float64(200*sim.Nanosecond) * cpu))
						}
					}
					if err := workers[e].WaitAll(p, reqs); err != nil {
						res.Failed = true
					}
				}
				// Compute.
				p.Sleep(sim.Time(float64(st.ComputePerTask) * cpu * float64(myTasks)))
				// Stage barrier.
				arrived++
				if arrived%n == 0 {
					stageEnd[si] = p.Now()
					barrier.Broadcast()
				} else {
					target := (si + 1) * n
					p.Wait(barrier, func() bool { return arrived >= target })
				}
			}
		})
	}
	cl.Eng.MustRun()

	var prev sim.Time
	for si := range cfg.Job.Stages {
		res.StageTimes[si] = stageEnd[si] - prev
		prev = stageEnd[si]
	}
	res.Time = prev
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for _, ep := range eps[i][j] {
				res.Retransmits += ep.QP().Stats.Retransmits
			}
		}
	}
	return res
}

// TCJob builds a SparkTC-like job shape: iterative joins with widening
// shuffles.
func TCJob(scale int) Job {
	if scale < 1 {
		scale = 1
	}
	stages := []Stage{{Tasks: 8 * scale, ComputePerTask: 2 * sim.Millisecond}}
	for i := 0; i < 3; i++ {
		stages = append(stages, Stage{
			Tasks:               8 * scale,
			ComputePerTask:      3 * sim.Millisecond,
			ShuffleBytesPerTask: 64 << 10,
		})
	}
	return Job{Name: "SparkTC", Stages: stages}
}
