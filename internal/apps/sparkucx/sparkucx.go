// Package sparkucx models the SparkUCX experiment of §VII-B: Spark
// examples whose join stages shuffle data through an RDMA plugin, issuing
// READ fan-outs across hundreds to thousands of QPs. Under ODP the
// simultaneous page faults trigger packet flood, stalling the job
// intermittently for seconds (Table 13 measures up to 6.46× slowdowns).
//
// Spark's compute phases are represented by calibrated base times (the
// paper's "Disable" column — we cannot simulate the JVM); the shuffle
// phases are *simulated* at packet level: each wave issues fetches over
// the per-example QP count into fresh pages, and the measured stall is
// whatever the flood dynamics produce. Because a full job runs hundreds
// of waves, the harness simulates a sample of waves and extrapolates
// (documented in DESIGN.md).
package sparkucx

import (
	"fmt"

	"odpsim/internal/cluster"
	"odpsim/internal/parallel"
	"odpsim/internal/sim"
	"odpsim/internal/stats"
)

// Example identifies one of the Spark programs the paper runs.
type Example int

// The three examples of Table 13.
const (
	SparkTC Example = iota
	RecommendationExample
	RankingMetricsExample
)

// String implements fmt.Stringer.
func (e Example) String() string {
	switch e {
	case SparkTC:
		return "SparkTC"
	case RecommendationExample:
		return "mllib.RecommendationExample"
	case RankingMetricsExample:
		return "mllib.RankingMetricsExample"
	default:
		return fmt.Sprintf("Example(%d)", int(e))
	}
}

// SystemConfig is one row group of Table 13: a system with a worker
// count; QPs is the observed queue-pair count per example.
type SystemConfig struct {
	Label   string
	System  cluster.System
	Workers int
	QPs     map[Example]int
}

// Table13Configs returns the four system configurations of Table 13 with
// the QP counts the paper reports.
func Table13Configs() []SystemConfig {
	return []SystemConfig{
		{Label: "KNL (2)", System: cluster.KNL(), Workers: 2, QPs: map[Example]int{
			SparkTC: 411, RecommendationExample: 210, RankingMetricsExample: 389}},
		{Label: "Reedbush-H (2)", System: cluster.ReedbushH(), Workers: 2, QPs: map[Example]int{
			SparkTC: 980, RecommendationExample: 980, RankingMetricsExample: 980}},
		{Label: "ABCI (2)", System: cluster.ABCI(), Workers: 2, QPs: map[Example]int{
			SparkTC: 2191, RecommendationExample: 2191, RankingMetricsExample: 2191}},
		{Label: "ABCI (4)", System: cluster.ABCI(), Workers: 4, QPs: map[Example]int{
			SparkTC: 2858, RecommendationExample: 1953, RankingMetricsExample: 2667}},
	}
}

// workload describes an example's shape: calibrated base compute (the
// Disable column, seconds) and the shuffle structure driving the
// simulation.
type workload struct {
	base map[string]float64 // per SystemConfig.Label
	// waves is the number of shuffle fetch waves across the whole job.
	waves int
	// fetches is the number of READs per wave (spread over the QPs).
	fetches int
	// size is the fetch message size in bytes.
	size int
}

func exampleWorkload(e Example) workload {
	switch e {
	case SparkTC:
		return workload{
			base:  map[string]float64{"KNL (2)": 303, "Reedbush-H (2)": 39.7, "ABCI (2)": 83.9, "ABCI (4)": 41.7},
			waves: 120, fetches: 2048, size: 256,
		}
	case RecommendationExample:
		return workload{
			base:  map[string]float64{"KNL (2)": 100, "Reedbush-H (2)": 21.9, "ABCI (2)": 29.0, "ABCI (4)": 24.3},
			waves: 40, fetches: 1024, size: 512,
		}
	default: // RankingMetricsExample
		return workload{
			base:  map[string]float64{"KNL (2)": 517, "Reedbush-H (2)": 46.6, "ABCI (2)": 107, "ABCI (4)": 83.2},
			waves: 80, fetches: 2048, size: 256,
		}
	}
}

// Config is one SparkUCX measurement.
type Config struct {
	Example Example
	Sys     SystemConfig
	Seed    int64
	ODP     bool
	// SampleWaves bounds how many shuffle waves are simulated at packet
	// level; the remaining waves reuse the sampled average (0 = 2).
	SampleWaves int
	// QPCap bounds the simulated QP count for tractability (0 = 256);
	// the flood severity saturates well below the real counts.
	QPCap int
}

// Result is one run's outcome.
type Result struct {
	ExecTime sim.Time
	// ShuffleStall is the portion attributable to simulated waves.
	ShuffleStall sim.Time
	// FloodDetected reports whether retransmission bursts occurred.
	FloodDetected bool
	// Failed mirrors the paper's omitted IBV_WC_RETRY_EXC_ERR samples.
	Failed bool
}

// Run executes one SparkUCX measurement.
func Run(cfg Config) Result {
	w := exampleWorkload(cfg.Example)
	base, ok := w.base[cfg.Sys.Label]
	if !ok {
		panic(fmt.Sprintf("sparkucx: no baseline for %q", cfg.Sys.Label))
	}
	sample := cfg.SampleWaves
	if sample <= 0 {
		sample = 2
	}
	if sample > w.waves {
		sample = w.waves
	}
	qps := cfg.Sys.QPs[cfg.Example]
	if cap := cfg.QPCap; cap == 0 && qps > 256 {
		qps = 256
	} else if cap > 0 && qps > cap {
		qps = cap
	}

	res := Result{}
	var stallSum sim.Time
	for i := 0; i < sample; i++ {
		r := RunWave(WaveConfig{
			System:  cfg.Sys.System,
			Seed:    cfg.Seed + int64(i)*8377,
			QPs:     qps,
			Fetches: w.fetches / 2, // per direction
			Size:    w.size,
			ODP:     cfg.ODP,
		})
		if r.Failed {
			res.Failed = true
		}
		if r.FloodDetected(w.fetches) {
			res.FloodDetected = true
		}
		stallSum += r.Time
	}
	avgWave := stallSum / sim.Time(sample)
	res.ShuffleStall = avgWave * sim.Time(w.waves)
	res.ExecTime = sim.FromSeconds(base) + res.ShuffleStall
	return res
}

// Row is one Table-13 cell pair.
type Row struct {
	Example Example
	Label   string
	QPs     int
	Disable stats.Summary // seconds
	Enable  stats.Summary // seconds
	Ratio   float64
	Omitted int // failed (IBV_WC_RETRY_EXC_ERR) samples, as in the paper
}

// MeasureRow runs trials with and without ODP and summarizes, mirroring
// the paper's 10-trial methodology with failed samples omitted.
func MeasureRow(e Example, sc SystemConfig, trials int, seed int64, sampleWaves int) Row {
	// A trial's disable and enable runs share a seed but no state, so
	// both fan across the worker pool; the summaries are assembled from
	// the index-ordered results, exactly as the sequential loop did.
	type trial struct {
		dis     float64
		ena     float64
		omitted bool
	}
	results := parallel.Map(trials, func(i int) trial {
		cfg := Config{Example: e, Sys: sc, Seed: seed + int64(i)*3547, SampleWaves: sampleWaves}
		t := trial{dis: Run(cfg).ExecTime.Seconds()}
		cfg.ODP = true
		r := Run(cfg)
		if r.Failed {
			t.omitted = true
		} else {
			t.ena = r.ExecTime.Seconds()
		}
		return t
	})
	var dis, ena []float64
	omitted := 0
	for _, t := range results {
		dis = append(dis, t.dis)
		if t.omitted {
			omitted++
			continue
		}
		ena = append(ena, t.ena)
	}
	row := Row{
		Example: e, Label: sc.Label, QPs: sc.QPs[e],
		Disable: stats.Summarize(dis), Enable: stats.Summarize(ena),
		Omitted: omitted,
	}
	if row.Disable.Mean > 0 {
		row.Ratio = row.Enable.Mean / row.Disable.Mean
	}
	return row
}
