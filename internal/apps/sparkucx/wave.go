package sparkucx

import (
	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/ucx"
)

// WaveConfig describes one shuffle fetch wave: two executors fetching
// each other's map outputs through many QPs — the SparkUCX communication
// pattern that triggers packet flood when the fetch buffers are fresh ODP
// pages.
type WaveConfig struct {
	System cluster.System
	Seed   int64
	// QPs is the number of connections per direction.
	QPs int
	// Fetches is the number of fetch operations per direction.
	Fetches int
	// Size is the bytes per fetch.
	Size int
	// ODP registers all shuffle buffers with on-demand paging.
	ODP bool
}

// WaveResult measures one wave.
type WaveResult struct {
	Time        sim.Time
	Packets     uint64
	Retransmits uint64
	Timeouts    uint64
	Failed      bool
}

// FloodDetected reports whether retransmissions exceeded the useful
// traffic — the packet-flood fingerprint.
func (w WaveResult) FloodDetected(fetches int) bool {
	return w.Retransmits > uint64(fetches)
}

// RunWave executes one bidirectional shuffle wave on a fresh two-node
// cluster and returns its measurements.
func RunWave(cfg WaveConfig) WaveResult {
	if cfg.QPs <= 0 || cfg.Fetches <= 0 || cfg.Size <= 0 {
		panic("sparkucx: QPs, Fetches and Size must be positive")
	}
	cl := cfg.System.Build(cfg.Seed, 2)
	ucfg := ucx.DefaultConfig()
	ucfg.EnableODP = cfg.ODP
	wA := ucx.NewContext(cl.Nodes[0], ucfg).NewWorker()
	wB := ucx.NewContext(cl.Nodes[1], ucfg).NewWorker()

	epsA := make([]*ucx.Endpoint, cfg.QPs)
	epsB := make([]*ucx.Endpoint, cfg.QPs)
	for i := range epsA {
		epsA[i], epsB[i] = ucx.Connect(wA, wB)
	}

	buflen := cfg.Fetches * cfg.Size
	// Map outputs (sources, pre-touched: the mapper just wrote them) and
	// fetch destinations (fresh pages — where client-side ODP faults).
	srcA, dstA := cl.Nodes[0].AS.Alloc(buflen), cl.Nodes[0].AS.Alloc(buflen)
	srcB, dstB := cl.Nodes[1].AS.Alloc(buflen), cl.Nodes[1].AS.Alloc(buflen)
	cl.Nodes[0].AS.Touch(srcA, buflen)
	cl.Nodes[1].AS.Touch(srcB, buflen)
	wA.RegisterBuffer(srcA, buflen)
	wA.RegisterBuffer(dstA, buflen)
	wB.RegisterBuffer(srcB, buflen)
	wB.RegisterBuffer(dstB, buflen)

	post := sim.Time(float64(300*sim.Nanosecond) * cfg.System.CPUFactor)
	var res WaveResult
	var done sim.Time
	fetchAll := func(w *ucx.Worker, eps []*ucx.Endpoint, dst, src hostmem.Addr) func(*sim.Proc) {
		return func(p *sim.Proc) {
			rs := make([]ucx.Request, 0, cfg.Fetches)
			for i := 0; i < cfg.Fetches; i++ {
				off := hostmem.Addr(i * cfg.Size)
				rs = append(rs, eps[i%cfg.QPs].GetAsync(dst+off, src+off, cfg.Size))
				p.Sleep(post)
			}
			if err := w.WaitAll(p, rs); err != nil {
				res.Failed = true
			}
			if p.Now() > done {
				done = p.Now()
			}
		}
	}
	cl.Eng.Go("executorA", fetchAll(wA, epsA, dstA, srcB))
	cl.Eng.Go("executorB", fetchAll(wB, epsB, dstB, srcA))
	cl.Eng.MustRun()

	res.Time = done
	res.Packets = cl.Fab.Sent
	for _, eps := range [][]*ucx.Endpoint{epsA, epsB} {
		for _, ep := range eps {
			res.Retransmits += ep.QP().Stats.Retransmits
			res.Timeouts += ep.QP().Stats.Timeouts
		}
	}
	return res
}
