package argodsm

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/ucx"
)

func buildDSM(t *testing.T, seed int64, nodes int, odp bool) (*cluster.Cluster, *DSM) {
	t.Helper()
	cl := cluster.ReedbushH().Build(seed, nodes)
	ucfg := ucx.DefaultConfig()
	ucfg.EnableODP = odp
	var d *DSM
	cl.Eng.Go("setup", func(p *sim.Proc) {
		d = NewDSM(p, cl, 64*hostmem.PageSize, ucfg)
	})
	cl.Eng.MustRun()
	return cl, d
}

func TestDSMReadCaching(t *testing.T) {
	cl, d := buildDSM(t, 1, 2, false)
	n1 := d.Nodes()[1]
	var errs []error
	cl.Eng.Go("reader", func(p *sim.Proc) {
		errs = append(errs, n1.Read(p, 0))           // home: node 0 → remote GET
		errs = append(errs, n1.Read(p, 0))           // cached
		errs = append(errs, n1.Read(p, d.Pages()-1)) // own partition: local
	})
	cl.Eng.MustRun()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n1.RemoteReads != 1 {
		t.Errorf("RemoteReads = %d, want 1 (second read cached, third local)", n1.RemoteReads)
	}
}

func TestDSMWriteThrough(t *testing.T) {
	cl, d := buildDSM(t, 2, 2, false)
	n1 := d.Nodes()[1]
	var err error
	cl.Eng.Go("writer", func(p *sim.Proc) {
		err = n1.Write(p, 1)
	})
	cl.Eng.MustRun()
	if err != nil {
		t.Fatal(err)
	}
	if n1.RemoteReads != 1 || n1.RemoteWrites != 1 {
		t.Errorf("reads=%d writes=%d, want fetch+write-through", n1.RemoteReads, n1.RemoteWrites)
	}
}

func TestDSMLockMutualExclusion(t *testing.T) {
	cl, d := buildDSM(t, 3, 3, false)
	inCS := 0
	maxCS := 0
	for i := 1; i < 3; i++ {
		n := d.Nodes()[i]
		cl.Eng.Go("locker", func(p *sim.Proc) {
			for k := 0; k < 5; k++ {
				if err := n.AcquireLock(p); err != nil {
					t.Error(err)
					return
				}
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				p.Sleep(50 * sim.Microsecond)
				inCS--
				if err := n.ReleaseLock(p); err != nil {
					t.Error(err)
					return
				}
				p.Sleep(20 * sim.Microsecond)
			}
		})
	}
	cl.Eng.MustRun()
	if maxCS != 1 {
		t.Errorf("max concurrent critical sections = %d, want 1", maxCS)
	}
}

func TestDSMLockAcquireInvalidates(t *testing.T) {
	cl, d := buildDSM(t, 4, 2, false)
	n1 := d.Nodes()[1]
	cl.Eng.Go("w", func(p *sim.Proc) {
		if err := n1.Read(p, 0); err != nil {
			t.Error(err)
		}
		if err := n1.AcquireLock(p); err != nil {
			t.Error(err)
		}
		// Acquire must self-invalidate: the next read refetches.
		before := n1.RemoteReads
		if err := n1.Read(p, 0); err != nil {
			t.Error(err)
		}
		if n1.RemoteReads != before+1 {
			t.Error("acquire should invalidate the cache")
		}
		if err := n1.ReleaseLock(p); err != nil {
			t.Error(err)
		}
	})
	cl.Eng.MustRun()
}

func TestDSMBarrier(t *testing.T) {
	cl, d := buildDSM(t, 5, 3, false)
	var after [3]sim.Time
	var before [3]sim.Time
	for i := 0; i < 3; i++ {
		i := i
		n := i
		cl.Eng.Go("b", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 300 * sim.Microsecond) // skewed arrival
			before[i] = p.Now()
			if err := d.Barrier(p, n); err != nil {
				t.Error(err)
			}
			after[i] = p.Now()
		})
	}
	cl.Eng.MustRun()
	// Everyone leaves the barrier after the latest arrival.
	latest := before[2]
	for i := 0; i < 3; i++ {
		if after[i] < latest {
			t.Errorf("node %d left the barrier at %v before the last arrival %v", i, after[i], latest)
		}
	}
}

func TestDSMWithODPFaults(t *testing.T) {
	cl, d := buildDSM(t, 6, 2, true)
	n1 := d.Nodes()[1]
	var err error
	cl.Eng.Go("reader", func(p *sim.Proc) {
		err = n1.Read(p, 0)
	})
	cl.Eng.MustRun()
	if err != nil {
		t.Fatal(err)
	}
	if cl.Nodes[0].RNRNakSent == 0 {
		t.Error("ODP DSM read should fault on the home node")
	}
}

func TestDSMPageRangeValidation(t *testing.T) {
	cl, d := buildDSM(t, 7, 2, false)
	var err error
	cl.Eng.Go("r", func(p *sim.Proc) {
		err = d.Nodes()[1].Read(p, 10_000)
	})
	cl.Eng.MustRun()
	if err == nil {
		t.Error("out-of-range page should error")
	}
}
