package argodsm

import (
	"fmt"

	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/ucx"
)

// This file implements the DSM substrate itself — a miniature ArgoDSM: a
// page-granularity software distributed shared memory with home-node
// directories and no message handlers, where every coherence action is
// one-sided RDMA over the UCX layer (exactly the design Kaxiras et al.
// describe and §VII-A runs). Running it with ODP enabled exercises the
// same communication patterns that exposed packet damming.

// PageState is a node's cached state for one DSM page (simplified MSI).
type PageState int

// Page states.
const (
	Invalid PageState = iota
	Shared
	Modified
)

// DSM is the distributed shared memory spanning the cluster's nodes.
type DSM struct {
	cl    *cluster.Cluster
	nodes []*Node
	// pagesPerNode is the home partition size in pages.
	pagesPerNode int
	size         int
}

// Node is one DSM participant.
type Node struct {
	dsm    *DSM
	id     int
	worker *ucx.Worker
	// eps[j] is the endpoint to node j (nil for self).
	eps []*ucx.Endpoint
	// base is the node's backing memory: its home partition lives at
	// [base, base+homeBytes), the local page cache behind it.
	base hostmem.Addr
	// state tracks this node's cached state per global page index.
	state map[int]PageState

	// Counters.
	RemoteReads  uint64
	RemoteWrites uint64
	LockWaits    uint64
}

// NewDSM builds a DSM of size bytes across the nodes of cl, registering
// all backing memory through ucfg (pinned or ODP). The registration and
// directory-setup costs are charged to proc.
func NewDSM(p *sim.Proc, cl *cluster.Cluster, size int, ucfg ucx.Config) *DSM {
	n := len(cl.Nodes)
	if n < 2 {
		panic("argodsm: need at least 2 nodes")
	}
	pages := (size + hostmem.PageSize - 1) / hostmem.PageSize
	d := &DSM{cl: cl, pagesPerNode: (pages + n - 1) / n, size: size}

	workers := make([]*ucx.Worker, n)
	for i, nic := range cl.Nodes {
		workers[i] = ucx.NewContext(nic, ucfg).NewWorker()
	}
	for i, nic := range cl.Nodes {
		node := &Node{
			dsm: d, id: i, worker: workers[i],
			eps:   make([]*ucx.Endpoint, n),
			state: make(map[int]PageState),
		}
		// Home partition + page cache + lock/directory words.
		backing := d.pagesPerNode*hostmem.PageSize*2 + hostmem.PageSize
		node.base = nic.AS.Alloc(backing)
		p.Sleep(node.worker.RegisterBuffer(node.base, backing))
		d.nodes = append(d.nodes, node)
	}
	// Fully connect the nodes (one QP pair per direction pair), with a
	// stock of receive buffers for barrier messages.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := ucx.Connect(workers[i], workers[j])
			d.nodes[i].eps[j] = a
			d.nodes[j].eps[i] = b
			for k := 0; k < 32; k++ {
				a.PostRecv(d.nodes[i].cacheAddr(0), 64)
				b.PostRecv(d.nodes[j].cacheAddr(0), 64)
			}
		}
	}
	return d
}

// Nodes returns the DSM participants.
func (d *DSM) Nodes() []*Node { return d.nodes }

// Endpoint returns the node's endpoint to peer j (nil for itself).
func (n *Node) Endpoint(j int) *ucx.Endpoint { return n.eps[j] }

// Worker returns the node's UCX worker.
func (n *Node) Worker() *ucx.Worker { return n.worker }

// HomeAddr exposes a page's home-partition address (for experiments that
// target specific pages).
func (d *DSM) HomeAddr(page int) hostmem.Addr { return d.homeAddr(page) }

// Pages returns the number of DSM pages.
func (d *DSM) Pages() int {
	return (d.size + hostmem.PageSize - 1) / hostmem.PageSize
}

// homeOf returns the home node and in-partition page index for a global
// page.
func (d *DSM) homeOf(page int) (node, local int) {
	return page / d.pagesPerNode, page % d.pagesPerNode
}

// homeAddr returns the address of a global page within its home node's
// partition.
func (d *DSM) homeAddr(page int) hostmem.Addr {
	home, local := d.homeOf(page)
	return d.nodes[home].base + hostmem.Addr(local)*hostmem.PageSize
}

// cacheAddr returns where node caches global pages locally.
func (n *Node) cacheAddr(page int) hostmem.Addr {
	local := page % n.dsm.pagesPerNode
	return n.base + hostmem.Addr(n.dsm.pagesPerNode+local)*hostmem.PageSize
}

// lockAddr is the global lock word on node 0.
func (d *DSM) lockAddr() hostmem.Addr {
	return d.nodes[0].base + hostmem.Addr(2*d.pagesPerNode)*hostmem.PageSize
}

// Read faults the page into the node's cache if needed (a one-sided GET
// from the home node) and returns an error only on transport failure.
func (n *Node) Read(p *sim.Proc, page int) error {
	if page < 0 || page >= n.dsm.Pages() {
		return fmt.Errorf("argodsm: page %d out of range", page)
	}
	home, _ := n.dsm.homeOf(page)
	if home == n.id || n.state[page] != Invalid {
		return nil // local or already cached
	}
	n.RemoteReads++
	if err := n.eps[home].Get(p, n.cacheAddr(page), n.dsm.homeAddr(page), hostmem.PageSize); err != nil {
		return err
	}
	n.state[page] = Shared
	return nil
}

// Write updates the page: remote pages are fetched (if needed) and the
// dirty data is written through to the home node, ArgoDSM-style
// write-through on release; here modelled eagerly for simplicity.
func (n *Node) Write(p *sim.Proc, page int) error {
	if err := n.Read(p, page); err != nil {
		return err
	}
	home, _ := n.dsm.homeOf(page)
	if home == n.id {
		return nil
	}
	n.RemoteWrites++
	if err := n.eps[home].Put(p, n.cacheAddr(page), n.dsm.homeAddr(page), hostmem.PageSize); err != nil {
		return err
	}
	n.state[page] = Modified
	return nil
}

// SelfInvalidate drops all cached pages (ArgoDSM's release-consistency
// self-invalidation at acquire points).
func (n *Node) SelfInvalidate() {
	for p := range n.state {
		n.state[p] = Invalid
	}
}

// AcquireLock takes the global lock with remote compare-and-swap on the
// home node's lock word, spinning with a backoff — the READ+notify
// pattern that §VII-A found damming in ArgoDSM's initialization.
func (n *Node) AcquireLock(p *sim.Proc) error {
	if n.id == 0 {
		// Home-node fast path still uses the NIC for fairness.
		return n.casLock(p, 0, uint64(n.id+1))
	}
	return n.casLock(p, 0, uint64(n.id+1))
}

func (n *Node) casLock(p *sim.Proc, want, to uint64) error {
	home := 0
	ep := n.eps[home]
	if ep == nil { // node 0 locking itself: direct word access
		as := n.dsm.cl.Nodes[0].AS
		for as.ReadWord(n.dsm.lockAddr()) != want {
			n.LockWaits++
			p.Sleep(50 * sim.Microsecond)
		}
		as.WriteWord(n.dsm.lockAddr(), to)
		return nil
	}
	for {
		req := ep.CASAsync(n.cacheAddr(0), n.dsm.lockAddr(), want, to)
		orig, err := n.worker.WaitAtomic(p, req)
		if err != nil {
			return err
		}
		if orig == want {
			n.SelfInvalidate() // acquire ⇒ self-invalidate
			return nil
		}
		n.LockWaits++
		p.Sleep(100 * sim.Microsecond)
	}
}

// ReleaseLock releases the global lock (a remote write of 0).
func (n *Node) ReleaseLock(p *sim.Proc) error {
	if n.id == 0 {
		n.dsm.cl.Nodes[0].AS.WriteWord(n.dsm.lockAddr(), 0)
		return nil
	}
	req := n.eps[0].CASAsync(n.cacheAddr(0), n.dsm.lockAddr(), uint64(n.id+1), 0)
	_, err := n.worker.WaitAtomic(p, req)
	return err
}

// Barrier synchronizes all nodes: each non-root node SENDs to the root
// and waits for the root's SEND back (a tree would scale better; two
// nodes is the common experiment size).
func (d *DSM) Barrier(p *sim.Proc, nodeID int) error {
	root := d.nodes[0]
	n := d.nodes[nodeID]
	if nodeID == 0 {
		for i := 1; i < len(d.nodes); i++ {
			root.worker.WaitRecv(p)
		}
		for i := 1; i < len(d.nodes); i++ {
			if err := root.eps[i].Send(p, root.base, 8); err != nil {
				return err
			}
		}
		return nil
	}
	if err := n.eps[0].Send(p, n.base, 8); err != nil {
		return err
	}
	n.worker.WaitRecv(p)
	return nil
}
