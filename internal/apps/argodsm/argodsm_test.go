package argodsm

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/stats"
)

func TestNoODPBaselineTimes(t *testing.T) {
	// Figure 12 baselines: KNL ≈ 2.28 s, Reedbush-H ≈ 0.50 s without
	// ODP.
	knl := Run(DefaultConfig())
	if knl.TimedOut {
		t.Error("no-ODP run must not time out")
	}
	if s := knl.Total.Seconds(); s < 1.6 || s > 3.0 {
		t.Errorf("KNL no-ODP total = %.2f s, want ≈2.3", s)
	}
	cfg := DefaultConfig()
	cfg.System = cluster.ReedbushH()
	rb := Run(cfg)
	if s := rb.Total.Seconds(); s < 0.35 || s > 0.8 {
		t.Errorf("Reedbush no-ODP total = %.2f s, want ≈0.5", s)
	}
	if knl.Total < rb.Total*2 {
		t.Error("KNL must be markedly slower than Reedbush-H")
	}
}

func TestODPRunsSplitIntoTwoGroups(t *testing.T) {
	// The Figure-12 signature: with ODP the samples split into a fast
	// group (no damming) and a slow group (+≈2 s timeout).
	cfg := DefaultConfig()
	cfg.ODP = true
	fast, slow := 0, 0
	var fastMax, slowMin float64 = 0, 1e9
	for i := 0; i < 30; i++ {
		c := cfg
		c.Seed = int64(1000 + i*977)
		r := Run(c)
		s := r.Total.Seconds()
		if r.TimedOut {
			slow++
			if s < slowMin {
				slowMin = s
			}
		} else {
			fast++
			if s > fastMax {
				fastMax = s
			}
		}
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("expected both groups: fast=%d slow=%d", fast, slow)
	}
	if slowMin < fastMax+1.0 {
		t.Errorf("groups should be separated by the ≈2 s timeout: fastMax=%.2f slowMin=%.2f", fastMax, slowMin)
	}
}

func TestODPNeverTimesOutOnConnectX6(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ODP = true
	cfg.System = cluster.AzureHBv2()
	for i := 0; i < 10; i++ {
		c := cfg
		c.Seed = int64(50 + i)
		if r := Run(c); r.TimedOut {
			t.Fatalf("seed %d: damming on ConnectX-6", c.Seed)
		}
	}
}

func TestDistributionBimodal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ODP = true
	times, h := Distribution(cfg, 40, 6)
	if len(times) != 40 || h.Total() != 40 {
		t.Fatalf("distribution incomplete: %d/%d", len(times), h.Total())
	}
	if modes := h.Modes(3); len(modes) < 2 {
		t.Errorf("expected a bimodal histogram, modes at bins %v\n%s", modes, h.Bars("s"))
	}
	s := stats.Summarize(times)
	if s.Mean < 2.3 || s.Mean > 4.2 {
		t.Errorf("KNL ODP mean = %.2f s, paper reports 3.12", s.Mean)
	}
}

func TestInitDominatedByBase(t *testing.T) {
	r := Run(DefaultConfig())
	if r.InitTime < r.FinalizeTime {
		t.Error("init should dominate finalize")
	}
	if r.Total < r.InitTime {
		t.Error("total must include init")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero memory should panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.MemorySize = 0
	Run(cfg)
}
