// Package argodsm models the ArgoDSM experiment of §VII-A: a software
// distributed shared memory whose initialization performs a storm of
// first-touch page registrations and then acquires a global lock on the
// home node with a READ followed closely by a SEND on the same QP — the
// exact pattern packet damming strikes. The paper's Figure 12 measures
// init+finalize over 100 trials and finds a bimodal distribution with ODP
// enabled: the slow group rode out a damming timeout.
package argodsm

import (
	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/parallel"
	"odpsim/internal/sim"
	"odpsim/internal/stats"
	"odpsim/internal/ucx"
)

// Config parameterizes one ArgoDSM run.
type Config struct {
	System cluster.System
	Seed   int64
	// MemorySize is the value passed to argo::init (10 MB in Figure 12).
	MemorySize int
	// ODP enables on-demand paging through the UCX layer.
	ODP bool
}

// DefaultConfig returns the Figure-12 setup on KNL.
func DefaultConfig() Config {
	return Config{System: cluster.KNL(), Seed: 1, MemorySize: 10 << 20}
}

// Result reports one init+finalize execution.
type Result struct {
	InitTime     sim.Time
	FinalizeTime sim.Time
	Total        sim.Time
	// TimedOut reports whether a damming timeout struck the global-lock
	// acquisition.
	TimedOut bool
}

// directoryAccesses is the number of small home-node control-structure
// accesses init performs besides the lock (directory setup, barriers).
const directoryAccesses = 12

// Run executes one init+finalize pair on a fresh two-node cluster, built
// on the DSM substrate in dsm.go.
func Run(cfg Config) Result {
	if cfg.MemorySize <= 0 {
		panic("argodsm: MemorySize must be positive")
	}
	cl := cfg.System.Build(cfg.Seed, 2)
	ucfg := ucx.DefaultConfig()
	ucfg.EnableODP = cfg.ODP

	pages := (cfg.MemorySize + hostmem.PageSize - 1) / hostmem.PageSize

	// Base software work of argo::init / argo::finalize (directory and
	// MPI window setup, zeroing, barriers), scaled by host speed — the
	// part that exists with or without ODP.
	cpu := cfg.System.CPUFactor
	baseInit := sim.Time(float64(380*sim.Millisecond) * cpu)
	baseFini := sim.Time(float64(60*sim.Millisecond) * cpu)
	perPage := sim.Time(float64(18*sim.Microsecond) * cpu)

	var res Result
	var peerQP *ucx.Endpoint
	cl.Eng.Go("argodsm", func(p *sim.Proc) {
		start := p.Now()

		// argo::init — build the DSM (registers the global memory:
		// pinned eagerly without ODP, free but fault-prone with it),
		// then the first-touch directory setup.
		p.Sleep(baseInit)
		d := NewDSM(p, cl, cfg.MemorySize, ucfg)
		p.Sleep(sim.Time(pages) * perPage)

		n1 := d.Nodes()[1]
		peerQP = n1.Endpoint(0)

		// Directory/control-structure first touches on the home node:
		// page reads that fault under ODP.
		for i := 0; i < directoryAccesses; i++ {
			if err := n1.Read(p, i); err != nil {
				return
			}
		}

		// Global lock acquisition over MPI RMA: a READ of the lock
		// word, a short software think time, then the SEND announcing
		// ownership — the exact READ+SEND pair §VII-A traced. The
		// READ's page is fresh, so under ODP it faults on the home
		// node, opening the pending window the SEND can fall into.
		lockPage := d.Pages()/2 - 1 // node 0's last, untouched page
		think := cl.Eng.Uniform(100*sim.Microsecond, 12*sim.Millisecond)
		rd := peerQP.GetAsync(n1.cacheAddr(lockPage), d.HomeAddr(lockPage), 8)
		p.Sleep(think)
		snd := peerQP.SendAsync(n1.base, 16)
		if err := n1.Worker().WaitAll(p, []ucx.Request{rd, snd}); err != nil {
			return
		}
		res.InitTime = p.Now() - start

		// argo::finalize — write back dirty state and a closing
		// handshake.
		finiStart := p.Now()
		p.Sleep(baseFini)
		if err := n1.Write(p, 0); err != nil {
			return
		}
		res.FinalizeTime = p.Now() - finiStart
		res.Total = p.Now() - start
	})
	cl.Eng.MustRun()
	if peerQP != nil {
		res.TimedOut = peerQP.QP().Stats.Timeouts > 0
	}
	return res
}

// Distribution runs trials executions with distinct seeds and returns the
// total times in seconds plus a histogram, reproducing Figure 12's
// methodology (100 trials).
func Distribution(cfg Config, trials int, histHi float64) ([]float64, *stats.Histogram) {
	// Trials are independent (each builds its own cluster from its own
	// derived seed), so they fan across the worker pool; the histogram
	// is filled from the index-ordered results afterwards.
	times := parallel.Map(trials, func(i int) float64 {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*6151
		return Run(c).Total.Seconds()
	})
	h := stats.NewHistogram(0, histHi, 25)
	for _, s := range times {
		h.Add(s)
	}
	return times, h
}
