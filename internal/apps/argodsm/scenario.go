package argodsm

import (
	"fmt"

	"odpsim/internal/cluster"
	"odpsim/internal/scenario"
	"odpsim/internal/stats"
)

// The Figure-12 experiment as a scenario workload: init+finalize
// distributions per system, with and without ODP, rendered exactly as
// the historical odpapps driver did.

func init() { scenario.RegisterWorkload(workload{}) }

type workload struct{}

func (workload) Kind() string { return "argodsm" }

func (workload) Validate(sc *scenario.Scenario) error {
	if err := scenario.RequireTrials(sc); err != nil {
		return err
	}
	if n := len(sc.HistHi); n > 0 && len(sc.Systems) > 0 && n != len(sc.Systems) {
		return fmt.Errorf("scenario %q: hist_hi has %d entries for %d systems", sc.Name, n, len(sc.Systems))
	}
	return nil
}

func (workload) Run(sc *scenario.Scenario, out *scenario.Output) error {
	fmt.Fprintln(out.W, sc.ExpandedTitle())
	systems, err := sc.ResolvedSystems([]cluster.System{cluster.KNL(), cluster.ReedbushH()})
	if err != nil {
		return err
	}
	for i, sys := range systems {
		fmt.Fprintf(out.W, "\n=== %s ===\n", sys.Name)
		for _, odp := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.System = sys
			cfg.ODP = odp
			cfg.Seed = sc.SeedOrDefault()
			if sc.MemoryBytes > 0 {
				cfg.MemorySize = sc.MemoryBytes
			}
			hi := 6.0
			if sys.Name == cluster.ReedbushH().Name {
				hi = 4.0
			}
			if i < len(sc.HistHi) {
				hi = sc.HistHi[i]
			}
			times, h := Distribution(cfg, sc.Trials, hi)
			s := stats.Summarize(times)
			label := "w/o ODP"
			if odp {
				label = "w ODP"
			}
			fmt.Fprintf(out.W, "\n%s (avg: %.2f s):\n%s", label, s.Mean, h.Bars("s"))
		}
	}
	return nil
}
