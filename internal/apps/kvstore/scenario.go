package kvstore

import (
	"fmt"

	"odpsim/internal/scenario"
	"odpsim/internal/sim"
	"odpsim/internal/softrel"
	"odpsim/internal/stats"
)

// The HERD-style counterpoint as a scenario workload: a PUT+GET loop
// over UD with software reliability. It never meets the RC timeout
// machinery, so declared faults (loss, congestion, slow page faults)
// cost application-level retries in software-timeout time instead of
// half-second damming stalls — runnable against any Table-I system via
// a JSON spec, no Go required.

func init() { scenario.RegisterWorkload(workload{}) }

type workload struct{}

func (workload) Kind() string { return "kvstore" }

func (workload) Validate(sc *scenario.Scenario) error { return nil }

func (workload) Run(sc *scenario.Scenario, out *scenario.Output) error {
	sys, err := sc.ResolvedSystem()
	if err != nil {
		return err
	}
	n := uint64(sc.Ops)
	if n == 0 {
		n = 1000
	}
	fmt.Fprintf(out.W, "HERD-style KV over UD, %s, %d PUTs + %d GETs, loss %.2f%%\n\n",
		sys.Name, n, n, 100*sc.Faults.LossRate)

	cl := sys.Build(sc.SeedOrDefault(), 2)
	cfg := softrel.DefaultConfig()
	srv := NewServer(cl.Nodes[1], cfg, 300*sim.Nanosecond)
	cli := NewClient(cl.Nodes[0], cfg, srv)

	var lats []float64
	var worst sim.Time
	failures := 0
	cl.Eng.Go("kvstore", func(p *sim.Proc) {
		op := func(f func(p *sim.Proc) error) {
			start := p.Now()
			if err := f(p); err != nil {
				failures++
				return
			}
			d := p.Now() - start
			lats = append(lats, d.Micros())
			if d > worst {
				worst = d
			}
		}
		for i := uint64(0); i < n; i++ {
			k := i
			op(func(p *sim.Proc) error { return cli.Put(p, k, k*k) })
		}
		for i := uint64(0); i < n; i++ {
			k := i
			op(func(p *sim.Proc) error {
				v, found, err := cli.Get(p, k)
				if err != nil {
					return err
				}
				if !found || v != k*k {
					return ErrBadResponse
				}
				return nil
			})
		}
	})
	// Run, not MustRun: the server's receive loop parks forever once the
	// client is done — that is the daemon shape, not a deadlock.
	cl.Eng.Run()

	calls, retrans, rpcFailures := cli.Stats()
	fmt.Fprintf(out.W, "per-op latency [µs]: %s\n", stats.Summarize(lats))
	fmt.Fprintf(out.W, "worst op latency: %v\n", worst)
	fmt.Fprintf(out.W, "RPCs %d, app-level retransmissions %d, failed ops %d (rpc failures %d)\n",
		calls, retrans, failures, rpcFailures)
	fmt.Fprintf(out.W, "server handled %d GETs, %d PUTs; fabric dropped %d packets\n",
		srv.Gets, srv.Puts, cl.Fab.Dropped)
	return nil
}
