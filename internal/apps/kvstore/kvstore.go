// Package kvstore implements a HERD-style key-value store (Kalia et al.,
// the paper's ref [10]): request/response over Unreliable Datagram with
// application-level retries, "sacrificing transport-level retransmission
// for common-case performance at the cost of rare application-level
// retries" (§VIII-C). It is the counterpoint to the paper's pitfalls:
// a design that never meets the RC timeout machinery — and therefore
// never meets packet damming — while an RC+ODP variant of the same
// workload does.
package kvstore

import (
	"errors"

	"odpsim/internal/rnic"
	"odpsim/internal/sim"
	"odpsim/internal/softrel"
)

// Op codes in the request payload.
const (
	opGet uint64 = iota + 1
	opPut
)

// ErrBadResponse reports a malformed server response.
var ErrBadResponse = errors.New("kvstore: malformed response")

// Server is the key-value node.
type Server struct {
	rpc   *softrel.Server
	store map[uint64]uint64

	// Gets and Puts count handled operations.
	Gets, Puts uint64
}

// NewServer starts a KV server on a node. handleCost models per-request
// server CPU (HERD's few hundred ns).
func NewServer(nic *rnic.RNIC, cfg softrel.Config, handleCost sim.Time) *Server {
	s := &Server{store: make(map[uint64]uint64)}
	s.rpc = softrel.NewServerWithHandler(nic, cfg, s.handle)
	s.rpc.HandleCost = handleCost
	return s
}

// LID returns the server's fabric address.
func (s *Server) LID() uint16 { return s.rpc.LID() }

// QPN returns the server's RPC QP number.
func (s *Server) QPN() uint32 { return s.rpc.QPN() }

// handle is the request processor: [op, key] or [op, key, value] in,
// [found, value] out.
func (s *Server) handle(req []uint64) []uint64 {
	if len(req) < 2 {
		return []uint64{0, 0}
	}
	switch req[0] {
	case opGet:
		s.Gets++
		v, ok := s.store[req[1]]
		if !ok {
			return []uint64{0, 0}
		}
		return []uint64{1, v}
	case opPut:
		s.Puts++
		if len(req) < 3 {
			return []uint64{0, 0}
		}
		s.store[req[1]] = req[2]
		return []uint64{1, req[2]}
	default:
		return []uint64{0, 0}
	}
}

// Client issues KV operations.
type Client struct {
	rpc *softrel.Client
	lid uint16
	qpn uint32
}

// NewClient creates a client bound to the server.
func NewClient(nic *rnic.RNIC, cfg softrel.Config, srv *Server) *Client {
	return &Client{rpc: softrel.NewClient(nic, cfg), lid: srv.LID(), qpn: srv.QPN()}
}

// Stats exposes the underlying RPC counters.
func (c *Client) Stats() (calls, retransmits, failures uint64) {
	return c.rpc.Calls, c.rpc.Retransmits, c.rpc.Failures
}

// Get fetches key; found reports whether it exists.
func (c *Client) Get(p *sim.Proc, key uint64) (value uint64, found bool, err error) {
	resp, err := c.rpc.CallPayload(p, c.lid, c.qpn, 32, []uint64{opGet, key})
	if err != nil {
		return 0, false, err
	}
	if len(resp) != 2 {
		return 0, false, ErrBadResponse
	}
	return resp[1], resp[0] == 1, nil
}

// Put stores key = value.
func (c *Client) Put(p *sim.Proc, key, value uint64) error {
	resp, err := c.rpc.CallPayload(p, c.lid, c.qpn, 40, []uint64{opPut, key, value})
	if err != nil {
		return err
	}
	if len(resp) != 2 || resp[0] != 1 {
		return ErrBadResponse
	}
	return nil
}
