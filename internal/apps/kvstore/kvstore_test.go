package kvstore

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
	"odpsim/internal/softrel"
)

func setup(t *testing.T, seed int64) (*cluster.Cluster, *Client, *Server) {
	t.Helper()
	cl := cluster.ReedbushH().Build(seed, 2)
	cfg := softrel.DefaultConfig()
	srv := NewServer(cl.Nodes[1], cfg, 300*sim.Nanosecond)
	cli := NewClient(cl.Nodes[0], cfg, srv)
	return cl, cli, srv
}

func TestPutGet(t *testing.T) {
	cl, cli, srv := setup(t, 1)
	var v uint64
	var found bool
	var errs []error
	cl.Eng.Go("client", func(p *sim.Proc) {
		errs = append(errs, cli.Put(p, 7, 42))
		var err error
		v, found, err = cli.Get(p, 7)
		errs = append(errs, err)
	})
	cl.Eng.Run()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !found || v != 42 {
		t.Errorf("Get(7) = %d,%v", v, found)
	}
	if srv.Gets != 1 || srv.Puts != 1 {
		t.Errorf("server counters: gets=%d puts=%d", srv.Gets, srv.Puts)
	}
}

func TestGetMissing(t *testing.T) {
	cl, cli, _ := setup(t, 2)
	var found bool
	cl.Eng.Go("client", func(p *sim.Proc) {
		_, found, _ = cli.Get(p, 999)
	})
	cl.Eng.Run()
	if found {
		t.Error("missing key reported found")
	}
}

func TestManyOpsThroughput(t *testing.T) {
	cl, cli, srv := setup(t, 3)
	const n = 500
	var elapsed sim.Time
	cl.Eng.Go("client", func(p *sim.Proc) {
		start := p.Now()
		for i := uint64(0); i < n; i++ {
			if err := cli.Put(p, i, i*i); err != nil {
				t.Error(err)
				return
			}
		}
		for i := uint64(0); i < n; i++ {
			v, found, err := cli.Get(p, i)
			if err != nil || !found || v != i*i {
				t.Errorf("Get(%d) = %d,%v,%v", i, v, found, err)
				return
			}
		}
		elapsed = p.Now() - start
	})
	cl.Eng.Run()
	if srv.Gets != n || srv.Puts != n {
		t.Errorf("server: gets=%d puts=%d", srv.Gets, srv.Puts)
	}
	// 1000 RPCs at ≈4–5 µs RTT each.
	perOp := elapsed / (2 * n)
	if perOp > 10*sim.Microsecond {
		t.Errorf("per-op latency %v, want ≈5 µs", perOp)
	}
}

func TestLossRecoversWithAppRetry(t *testing.T) {
	cl, cli, srv := setup(t, 4)
	cl.Fab.SetLossRate(0.02)
	failures := 0
	cl.Eng.Go("client", func(p *sim.Proc) {
		for i := uint64(0); i < 200; i++ {
			if err := cli.Put(p, i, i); err != nil {
				failures++
			}
		}
	})
	cl.Eng.Run()
	if failures != 0 {
		t.Errorf("%d operations failed despite retries", failures)
	}
	_, retrans, _ := cli.Stats()
	if retrans == 0 {
		t.Error("2% loss should have forced app-level retransmissions")
	}
	if srv.Puts < 195 {
		t.Errorf("server saw %d puts", srv.Puts)
	}
}

// TestPutIdempotencyCaveat documents the HERD tradeoff: an app-level
// retransmitted PUT can be applied twice (here it is idempotent by
// design, as in HERD, where requests overwrite slots).
func TestPutIdempotencyCaveat(t *testing.T) {
	cl, cli, srv := setup(t, 5)
	// Drop exactly the first response so the request is retried after it
	// was already applied.
	dropped := false
	cl.Fab.SetDropFilter(func(pkt *packet.Packet) bool {
		// Drop the first datagram the server sends (the response).
		if !dropped && pkt.Opcode == packet.OpUDSend && pkt.SLID == srv.LID() {
			dropped = true
			return true
		}
		return false
	})
	var err error
	var v uint64
	cl.Eng.Go("client", func(p *sim.Proc) {
		err = cli.Put(p, 1, 5)
		v, _, _ = cli.Get(p, 1)
	})
	cl.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if srv.Puts != 2 {
		t.Errorf("server applied the PUT %d times (retry re-applies)", srv.Puts)
	}
	if v != 5 {
		t.Errorf("value = %d (idempotent overwrite must hold)", v)
	}
}

// TestNeverMeetsTheTimeoutPitfalls: the KV workload with ODP-registered
// buffers on the UD path drops datagrams on faults but recovers in
// software-timeout time — never a half-second RC stall.
func TestNeverMeetsTheTimeoutPitfalls(t *testing.T) {
	cl := cluster.KNL().Build(6, 2) // ConnectX-4, the quirky device
	cfg := softrel.DefaultConfig()
	srv := NewServer(cl.Nodes[1], cfg, 0)
	cli := NewClient(cl.Nodes[0], cfg, srv)
	var worst sim.Time
	cl.Eng.Go("client", func(p *sim.Proc) {
		for i := uint64(0); i < 100; i++ {
			start := p.Now()
			if err := cli.Put(p, i, i); err != nil {
				t.Error(err)
				return
			}
			if d := p.Now() - start; d > worst {
				worst = d
			}
		}
	})
	cl.Eng.Run()
	if worst > 10*sim.Millisecond {
		t.Errorf("worst op latency %v — UD+software reliability must stay off the RC timeout path", worst)
	}
}

func TestBadResponseSurfaces(t *testing.T) {
	// A server whose handler returns garbage.
	cl := cluster.ReedbushH().Build(7, 2)
	cfg := softrel.DefaultConfig()
	bad := softrel.NewServerWithHandler(cl.Nodes[1], cfg, func([]uint64) []uint64 { return []uint64{1} })
	cli := &Client{rpc: softrel.NewClient(cl.Nodes[0], cfg), lid: bad.LID(), qpn: bad.QPN()}
	var err error
	cl.Eng.Go("client", func(p *sim.Proc) {
		_, _, err = cli.Get(p, 1)
	})
	cl.Eng.Run()
	if err == nil {
		t.Error("malformed response should surface an error")
	}
}
