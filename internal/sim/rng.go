package sim

// Uniform draws a time uniformly from [lo, hi]. If hi <= lo it returns lo.
func (e *Engine) Uniform(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(e.rng.Int63n(int64(hi-lo)+1))
}

// Jitter returns base perturbed by a uniform relative jitter of ±frac,
// e.g. Jitter(100µs, 0.1) ∈ [90µs, 110µs]. frac <= 0 returns base.
func (e *Engine) Jitter(base Time, frac float64) Time {
	if frac <= 0 || base == 0 {
		return base
	}
	span := float64(base) * frac
	d := (e.rng.Float64()*2 - 1) * span
	v := Time(float64(base) + d)
	if v < 0 {
		v = 0
	}
	return v
}

// Normal draws from a normal distribution with the given mean and standard
// deviation, truncated at zero.
func (e *Engine) Normal(mean, stddev Time) Time {
	v := Time(e.rng.NormFloat64()*float64(stddev) + float64(mean))
	if v < 0 {
		v = 0
	}
	return v
}

// Bernoulli reports true with probability p.
func (e *Engine) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return e.rng.Float64() < p
}
