package sim

import "fmt"

// procAbort is the panic value used to unwind a process goroutine when the
// simulation shuts down while the process is parked.
type procAbort struct{}

// Proc is a simulated process: a goroutine whose execution is interleaved
// with the event loop so that at most one thing (the loop or exactly one
// process) runs at a time. This gives blocking-style code — sleeps, waits
// — with fully deterministic scheduling.
type Proc struct {
	eng  *Engine
	name string
	// tok is the control-transfer token. Because exactly one side (the
	// event loop or the process) runs at any time, a single unbuffered
	// channel serves both directions: the loop sends to resume the
	// process, the process sends to signal it parked or finished.
	tok   chan struct{}
	done  bool
	abort bool
	// wakeFn is the cached unblock-and-resume callback, so sleeps and
	// broadcasts schedule it without allocating a closure per wake.
	wakeFn func()
}

// Name returns the name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Go starts fn as a simulated process named name. The process begins
// running at the current virtual time (scheduled as an event). fn runs in
// its own goroutine but only while the event loop is handing it control,
// so no synchronization with other simulation state is needed.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		tok:  make(chan struct{}),
	}
	p.wakeFn = func() {
		p.eng.blocked--
		p.run()
	}
	e.procs++
	go p.main(fn)
	// The start event pairs with the increment so blocked is unchanged
	// once the process actually begins running.
	e.blocked++
	e.after(0, p.wakeFn)
	return p
}

// main is the process goroutine's body.
func (p *Proc) main(fn func(p *Proc)) {
	<-p.tok // wait for the start event
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procAbort); ok {
				// Simulation shut down; exit quietly.
				p.done = true
				p.tok <- struct{}{}
				return
			}
			panic(r)
		}
	}()
	fn(p)
	p.done = true
	p.eng.procs--
	p.tok <- struct{}{}
}

// run hands control to the process goroutine and blocks the event loop
// until the process parks (sleeps/waits) or finishes.
func (p *Proc) run() {
	if p.done || p.abort {
		return
	}
	p.tok <- struct{}{}
	<-p.tok
}

// park returns control to the event loop and blocks until the loop
// resumes this process.
func (p *Proc) park() {
	p.tok <- struct{}{}
	<-p.tok
	if p.abort {
		panic(procAbort{})
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.blocked++
	p.eng.after(d, p.wakeFn)
	p.park()
}

// Yield lets every other event scheduled for the current instant run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Cond is a broadcast condition for processes. The zero value is not
// usable; create with NewCond.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond creates a condition bound to engine e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Broadcast wakes every process currently waiting on the condition. The
// woken processes run (and re-check their predicates) as events at the
// current instant, in the order they began waiting.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = c.waiters[:0]
	for _, p := range ws {
		c.eng.after(0, p.wakeFn)
	}
}

// Wait parks the process until pred() is true, re-checking after every
// Broadcast. pred is evaluated with the event loop paused, so it may read
// any simulation state.
func (p *Proc) Wait(c *Cond, pred func() bool) {
	for !pred() {
		c.waiters = append(c.waiters, p)
		p.eng.blocked++
		p.park()
	}
}

// WaitTimeout is like Wait but gives up after d, reporting whether the
// predicate became true.
func (p *Proc) WaitTimeout(c *Cond, d Time, pred func() bool) bool {
	deadline := p.eng.Now() + d
	for !pred() {
		if p.eng.Now() >= deadline {
			return false
		}
		woke := false
		c.waiters = append(c.waiters, p)
		p.eng.blocked++
		t := p.eng.At(deadline, func() {
			// Remove ourselves from the waiter list and wake up.
			for i, w := range c.waiters {
				if w == p {
					c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
					break
				}
			}
			p.eng.blocked--
			woke = true
			p.run()
		})
		p.park()
		if !woke {
			t.Cancel()
		}
	}
	return true
}

// Deadlocked reports whether live processes exist but everything is
// parked with no scheduled events — i.e. the simulation cannot progress.
func (e *Engine) Deadlocked() bool {
	return e.procs > 0 && e.QueueLen() == 0
}

// MustRun runs the simulation and panics if it ends with live processes
// still parked (a deadlock in the modelled system).
func (e *Engine) MustRun() {
	e.Run()
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock, %d process(es) parked forever at %v", e.procs, e.now))
	}
}
