package sim

import "testing"

func TestProcSleep(t *testing.T) {
	e := New(1)
	var wake []Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		wake = append(wake, p.Now())
		p.Sleep(5 * Microsecond)
		wake = append(wake, p.Now())
	})
	e.MustRun()
	if len(wake) != 2 || wake[0] != 10*Microsecond || wake[1] != 15*Microsecond {
		t.Errorf("wake = %v", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New(1)
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	e.MustRun()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcYield(t *testing.T) {
	e := New(1)
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a-before")
		p.Yield()
		order = append(order, "a-after")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	e.MustRun()
	// a starts first, yields, b runs, then a resumes.
	want := []string{"a-before", "b", "a-after"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	ready := false
	var sawAt Time
	e.Go("waiter", func(p *Proc) {
		p.Wait(c, func() bool { return ready })
		sawAt = p.Now()
	})
	e.Go("setter", func(p *Proc) {
		p.Sleep(100)
		ready = true
		c.Broadcast()
	})
	e.MustRun()
	if sawAt != 100 {
		t.Errorf("waiter woke at %v, want 100", sawAt)
	}
}

func TestCondSpuriousBroadcast(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	n := 0
	var doneAt Time
	e.Go("waiter", func(p *Proc) {
		p.Wait(c, func() bool { return n >= 3 })
		doneAt = p.Now()
	})
	e.Go("setter", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			n++
			c.Broadcast()
		}
	})
	e.MustRun()
	if doneAt != 30 {
		t.Errorf("waiter finished at %v, want 30 (predicate re-check)", doneAt)
	}
}

func TestCondMultipleWaiters(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	go_ := false
	woken := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			p.Wait(c, func() bool { return go_ })
			woken++
		})
	}
	e.Go("setter", func(p *Proc) {
		p.Sleep(1)
		go_ = true
		c.Broadcast()
	})
	e.MustRun()
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	var ok bool
	var at Time
	e.Go("w", func(p *Proc) {
		ok = p.WaitTimeout(c, 50, func() bool { return false })
		at = p.Now()
	})
	e.MustRun()
	if ok {
		t.Error("WaitTimeout should have timed out")
	}
	if at != 50 {
		t.Errorf("timed out at %v, want 50", at)
	}
}

func TestWaitTimeoutSatisfied(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	ready := false
	var ok bool
	var at Time
	e.Go("w", func(p *Proc) {
		ok = p.WaitTimeout(c, 1000, func() bool { return ready })
		at = p.Now()
	})
	e.Go("s", func(p *Proc) {
		p.Sleep(20)
		ready = true
		c.Broadcast()
	})
	e.MustRun()
	if !ok {
		t.Error("WaitTimeout should have succeeded")
	}
	if at != 20 {
		t.Errorf("woke at %v, want 20", at)
	}
	// Ensure the cancelled deadline timer does not fire anything weird.
	if e.QueueLen() != 0 {
		e.Run()
	}
}

func TestMustRunDeadlockPanics(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	e.Go("stuck", func(p *Proc) {
		p.Wait(c, func() bool { return false })
	})
	defer func() {
		if recover() == nil {
			t.Error("MustRun should panic on deadlock")
		}
	}()
	e.MustRun()
}

func TestProcDeterminism(t *testing.T) {
	run := func() []Time {
		e := New(99)
		var ts []Time
		for i := 0; i < 10; i++ {
			e.Go("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(e.Uniform(1, 1000))
					ts = append(ts, p.Now())
				}
			})
		}
		e.MustRun()
		return ts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
