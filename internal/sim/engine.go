package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events at the same instant fire in the
// order they were scheduled (seq breaks ties), which keeps runs
// deterministic.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // position in the heap, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event; it allows cancellation.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's callback from firing. Cancelling an
// already-fired or already-cancelled timer is a no-op. Cancel reports
// whether the callback was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return t.ev.index >= 0 && t.ev.fn != nil
}

// Pending reports whether the timer's callback has neither fired nor been
// cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && t.ev.index >= 0
}

// Engine is the simulation core. It is not safe for concurrent use; the
// process layer (see proc.go) serializes all goroutines onto the engine's
// event loop.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	fired   uint64
	stopped bool
	procs   int // live (not finished, not aborted) processes
	blocked int // processes currently parked on a Cond or sleep
}

// New creates an engine whose random stream is seeded with seed. The same
// seed always produces the same simulation.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired returns how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Rand exposes the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.fired++
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		if e.events.Len() == 0 {
			break
		}
		if e.events[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// QueueLen returns the number of scheduled (possibly cancelled) events.
func (e *Engine) QueueLen() int { return e.events.Len() }
