package sim

import (
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events at the same instant fire in the
// order they were scheduled (seq breaks ties), which keeps runs
// deterministic. Events are recycled through the engine's free list when
// they fire or are cancelled; gen increments on every recycle so stale
// Timer handles become inert instead of acting on the event's next life.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	gen   uint64
	index int // position in the heap, -1 when popped
}

// heapItem is one heap slot. The ordering key (at, seq) is stored by
// value next to the payload, so sift comparisons stay inside the heap's
// backing array instead of dereferencing each event — the heap is the
// simulator's hottest structure (every send, timer and wakeup passes
// through it), and the switched congestion path multiplies traffic
// through it by its per-hop events.
//
// A slot carries either a tracked event (ev != nil: cancellable, with a
// Timer handle and heap-index maintenance) or a lite callback (ev == nil,
// fn set: fire-and-forget). Lite slots are the fast path — they skip the
// event free list entirely and sift moves never store a heap index for
// them, so the per-hop tx-done and propagation callbacks of the switched
// congestion path cost only the slice shuffle.
type heapItem struct {
	at  Time
	seq uint64
	fn  func() // lite payload; nil when ev is set
	ev  *event
}

// eventHeap is a hand-rolled binary min-heap over (at, seq). It replaces
// container/heap: the interface-dispatched Less/Swap calls dominated the
// congested-datapath profile, and pop order is a total order on
// (at, seq), so a specialized heap is observably identical — runs stay
// byte-for-byte deterministic. (A 4-ary variant was measured ~10% slower
// here: the min-of-four child scan mispredicts more than the halved
// depth saves.)
type eventHeap []heapItem

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// siftUp restores the heap property from slot i toward the root.
func (h eventHeap) siftUp(i int) {
	item := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if p.at < item.at || (p.at == item.at && p.seq < item.seq) {
			break
		}
		h[i] = p
		if p.ev != nil {
			p.ev.index = i
		}
		i = parent
	}
	h[i] = item
	if item.ev != nil {
		item.ev.index = i
	}
}

// siftDown restores the heap property from slot i toward the leaves.
func (h eventHeap) siftDown(i int) {
	n := len(h)
	item := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.less(r, child) {
			child = r
		}
		c := h[child]
		if item.at < c.at || (item.at == c.at && item.seq < c.seq) {
			break
		}
		h[i] = c
		if c.ev != nil {
			c.ev.index = i
		}
		i = child
	}
	h[i] = item
	if item.ev != nil {
		item.ev.index = i
	}
}

// push adds ev to the heap.
func (e *Engine) push(ev *event) {
	e.events = append(e.events, heapItem{at: ev.at, seq: ev.seq, ev: ev})
	e.events.siftUp(len(e.events) - 1)
}

// popMin removes and returns the earliest heap slot. The heap must be
// non-empty.
func (e *Engine) popMin() heapItem {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = heapItem{}
	e.events = h[:n]
	if n > 0 {
		h[0] = last
		if last.ev != nil {
			last.ev.index = 0
		}
		e.events.siftDown(0)
	}
	if top.ev != nil {
		top.ev.index = -1
	}
	return top
}

// remove deletes the event at heap slot i (timer cancellation).
func (e *Engine) remove(i int) {
	h := e.events
	n := len(h) - 1
	ev := h[i].ev
	last := h[n]
	h[n] = heapItem{}
	e.events = h[:n]
	if i < n {
		h[i] = last
		if last.ev != nil {
			last.ev.index = i
		}
		if i > 0 && e.events.less(i, (i-1)/2) {
			e.events.siftUp(i)
		} else {
			e.events.siftDown(i)
		}
	}
	ev.index = -1
}

// Timer is a handle to a scheduled event; it allows cancellation. The
// handle captures the event's generation: once the event fires (and its
// storage is recycled for a later schedule), the handle is inert. Timer
// is a small value — the zero Timer is valid and permanently inert, and
// copies of a handle all refer to the same scheduled callback.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Cancel prevents the timer's callback from firing. The event is removed
// from the heap immediately and its storage recycled — cancelled timers
// leave no dead entries behind (the RC requester cancels a retransmit
// timer on nearly every ACK, so lazy deletion would carry a tail of dead
// heap entries through timeout-heavy runs). Cancelling an already-fired
// or already-cancelled timer is a no-op. Cancel reports whether the
// callback was still pending.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.gen != t.gen {
		return false
	}
	t.eng.remove(t.ev.index)
	t.eng.recycle(t.ev)
	return true
}

// Pending reports whether the timer's callback has neither fired nor been
// cancelled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen
}

// Engine is the simulation core. It is not safe for concurrent use; the
// process layer (see proc.go) serializes all goroutines onto the engine's
// event loop. Distinct engines are fully independent, so separate trials
// may run on separate engines concurrently (see internal/parallel).
type Engine struct {
	now     Time
	events  eventHeap
	free    []*event // recycled event storage
	seq     uint64
	rng     *rand.Rand
	seed    int64
	fired   uint64
	resets  uint64
	stopped bool
	procs   int // live (not finished, not aborted) processes
	blocked int // processes currently parked on a Cond or sleep
	// aux holds storage attached to the engine that, like the event free
	// list, survives Reset — e.g. the fabric's packet pool, so trial
	// loops that rebuild the fabric per run keep recycling one pool.
	aux map[string]any
}

// New creates an engine whose random stream is seeded with seed. The same
// seed always produces the same simulation.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Reset returns the engine to its just-constructed state with a new seed,
// keeping allocated storage (the heap's backing array and the event free
// list) so repeated trials reuse one engine instead of allocating a fresh
// one per run. A reset engine behaves byte-identically to New(seed).
// Reset panics if live processes remain from an unfinished run.
func (e *Engine) Reset(seed int64) {
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: Reset with %d live process(es)", e.procs))
	}
	for i := range e.events {
		if ev := e.events[i].ev; ev != nil {
			ev.index = -1
			e.recycle(ev)
		}
		e.events[i] = heapItem{}
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.stopped = false
	e.blocked = 0
	e.resets++
	e.rng.Seed(seed)
	e.seed = seed
}

// Generation counts how many times the engine has been Reset. Aux-held
// arenas use it to reclaim per-run objects wholesale: storage grabbed
// under an older generation is free again, because Reset asserts no live
// processes (and therefore no live run) remain.
func (e *Engine) Generation() uint64 { return e.resets }

// Aux returns the value attached under key by SetAux, or nil.
func (e *Engine) Aux(key string) any { return e.aux[key] }

// SetAux attaches a value to the engine under key. Aux values survive
// Reset — they are for free-list-style storage meant to be reused across
// runs on one engine. Holders must tolerate carry-over: anything read
// from Aux after a Reset still has its previous run's contents.
func (e *Engine) SetAux(key string, v any) {
	if e.aux == nil {
		e.aux = make(map[string]any)
	}
	e.aux[key] = v
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired returns how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Rand exposes the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Seed returns the seed the engine was created (or last Reset) with.
// Consumers that need seed-derived determinism without consuming the
// random stream — e.g. ECMP flow hashing — key off this value, so a
// Reset engine reproduces New(seed) exactly.
func (e *Engine) Seed() int64 { return e.seed }

// schedule allocates (or recycles) an event for fn at absolute time t and
// pushes it on the heap. Scheduling in the past panics: it would silently
// reorder causality.
func (e *Engine) schedule(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.push(ev)
	return ev
}

// recycle returns a popped event's storage to the free list, bumping its
// generation so outstanding Timer handles to its previous life go inert.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.schedule(t, fn)
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Schedule runs fn at absolute virtual time t with no Timer handle: the
// callback rides in the heap slot itself, bypassing the event free list
// and heap-index maintenance. It is the fast path for callers that never
// cancel — per-hop tx-done and propagation callbacks, fabric deliveries,
// process wakeups. Ordering is identical to At (one shared sequence
// counter breaks same-instant ties), so mixing Schedule and At changes
// nothing observable.
func (e *Engine) Schedule(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.events = append(e.events, heapItem{at: t, seq: e.seq, fn: fn})
	e.seq++
	e.events.siftUp(len(e.events) - 1)
}

// ScheduleAfter is Schedule at d after the current time. Negative delays
// are clamped to zero.
func (e *Engine) ScheduleAfter(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// ReserveSeq claims the next sequence number without scheduling
// anything. Delay lines (FIFO wires that keep only their head flight in
// the heap) reserve each flight's tie-break at the instant the flight
// starts and pass it to ScheduleSeq when the flight reaches the head —
// so pop order is bit-identical to scheduling every flight eagerly.
func (e *Engine) ReserveSeq() uint64 {
	s := e.seq
	e.seq++
	return s
}

// ScheduleSeq is Schedule with a sequence number previously claimed by
// ReserveSeq. Same-instant ties resolve by reservation order, not by
// when the slot entered the heap.
func (e *Engine) ScheduleSeq(t Time, seq uint64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.events = append(e.events, heapItem{at: t, seq: seq, fn: fn})
	e.events.siftUp(len(e.events) - 1)
}

// after is ScheduleAfter's internal alias, kept for the process layer's
// sleep/wakeup path.
func (e *Engine) after(d Time, fn func()) {
	e.ScheduleAfter(d, fn)
}

// PreallocEvents grows the event heap's backing array and the free list
// until the engine can hold at least n scheduled events without touching
// the allocator. Like the heap and free list themselves, the storage
// survives Reset, so callers with known fan-out (the switched congestion
// network schedules a tx-done event plus propagation flights per link)
// pay the cost once per engine, not per trial. Calling it on a warm
// engine is a no-op.
func (e *Engine) PreallocEvents(n int) {
	if cap(e.events) < n {
		grown := make(eventHeap, len(e.events), n)
		copy(grown, e.events)
		e.events = grown
	}
	if cap(e.free) < n {
		grown := make([]*event, len(e.free), n)
		copy(grown, e.free)
		e.free = grown
	}
	for len(e.free)+len(e.events) < n {
		e.free = append(e.free, &event{})
	}
}

// EventCapacity returns how many events the engine's heap can hold
// before its backing array must grow (see PreallocEvents).
func (e *Engine) EventCapacity() int { return cap(e.events) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the engine last
// began running (Run, RunUntil and RunHorizon clear the flag on entry).
// The shard group polls it between epoch windows so a Stop issued
// inside one window ends the whole group run rather than only that
// window (internal/shard).
func (e *Engine) Stopped() bool { return e.stopped }

// Step executes the single next event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	top := e.popMin()
	e.now = top.at
	e.fired++
	fn := top.fn
	if top.ev != nil {
		fn = top.ev.fn
		e.recycle(top.ev)
	}
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		if e.events[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// NextEventTime returns the timestamp of the earliest scheduled event
// without popping it, reporting ok=false on an empty queue. The shard
// layer's epoch coordinator reads every engine's next time to pick the
// global window start (internal/shard).
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// RunHorizon executes events with timestamps strictly before h, then
// advances the clock to h. It is the bounded-lag window primitive: a
// shard may safely execute [now, h) in parallel with its peers when no
// cross-shard flight can land before h, and the strict upper bound keeps
// an event scheduled exactly at h for the next window — where the epoch
// merge decides its order against freshly landed flights.
func (e *Engine) RunHorizon(h Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at < h {
		e.Step()
	}
	if e.now < h {
		e.now = h
	}
}

// QueueLen returns the number of scheduled events. Cancelled events are
// removed eagerly, so the count reflects only live work.
func (e *Engine) QueueLen() int { return len(e.events) }
