package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events at the same instant fire in the
// order they were scheduled (seq breaks ties), which keeps runs
// deterministic. Events are recycled through the engine's free list when
// they fire or are cancelled; gen increments on every recycle so stale
// Timer handles become inert instead of acting on the event's next life.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	gen   uint64
	index int // position in the heap, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event; it allows cancellation. The
// handle captures the event's generation: once the event fires (and its
// storage is recycled for a later schedule), the handle is inert. Timer
// is a small value — the zero Timer is valid and permanently inert, and
// copies of a handle all refer to the same scheduled callback.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Cancel prevents the timer's callback from firing. The event is removed
// from the heap immediately and its storage recycled — cancelled timers
// leave no dead entries behind (the RC requester cancels a retransmit
// timer on nearly every ACK, so lazy deletion would carry a tail of dead
// heap entries through timeout-heavy runs). Cancelling an already-fired
// or already-cancelled timer is a no-op. Cancel reports whether the
// callback was still pending.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.gen != t.gen {
		return false
	}
	heap.Remove(&t.eng.events, t.ev.index)
	t.eng.recycle(t.ev)
	return true
}

// Pending reports whether the timer's callback has neither fired nor been
// cancelled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen
}

// Engine is the simulation core. It is not safe for concurrent use; the
// process layer (see proc.go) serializes all goroutines onto the engine's
// event loop. Distinct engines are fully independent, so separate trials
// may run on separate engines concurrently (see internal/parallel).
type Engine struct {
	now     Time
	events  eventHeap
	free    []*event // recycled event storage
	seq     uint64
	rng     *rand.Rand
	fired   uint64
	resets  uint64
	stopped bool
	procs   int // live (not finished, not aborted) processes
	blocked int // processes currently parked on a Cond or sleep
	// aux holds storage attached to the engine that, like the event free
	// list, survives Reset — e.g. the fabric's packet pool, so trial
	// loops that rebuild the fabric per run keep recycling one pool.
	aux map[string]any
}

// New creates an engine whose random stream is seeded with seed. The same
// seed always produces the same simulation.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Reset returns the engine to its just-constructed state with a new seed,
// keeping allocated storage (the heap's backing array and the event free
// list) so repeated trials reuse one engine instead of allocating a fresh
// one per run. A reset engine behaves byte-identically to New(seed).
// Reset panics if live processes remain from an unfinished run.
func (e *Engine) Reset(seed int64) {
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: Reset with %d live process(es)", e.procs))
	}
	for _, ev := range e.events {
		ev.index = -1
		e.recycle(ev)
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.stopped = false
	e.blocked = 0
	e.resets++
	e.rng.Seed(seed)
}

// Generation counts how many times the engine has been Reset. Aux-held
// arenas use it to reclaim per-run objects wholesale: storage grabbed
// under an older generation is free again, because Reset asserts no live
// processes (and therefore no live run) remain.
func (e *Engine) Generation() uint64 { return e.resets }

// Aux returns the value attached under key by SetAux, or nil.
func (e *Engine) Aux(key string) any { return e.aux[key] }

// SetAux attaches a value to the engine under key. Aux values survive
// Reset — they are for free-list-style storage meant to be reused across
// runs on one engine. Holders must tolerate carry-over: anything read
// from Aux after a Reset still has its previous run's contents.
func (e *Engine) SetAux(key string, v any) {
	if e.aux == nil {
		e.aux = make(map[string]any)
	}
	e.aux[key] = v
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired returns how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Rand exposes the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// schedule allocates (or recycles) an event for fn at absolute time t and
// pushes it on the heap. Scheduling in the past panics: it would silently
// reorder causality.
func (e *Engine) schedule(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// recycle returns a popped event's storage to the free list, bumping its
// generation so outstanding Timer handles to its previous life go inert.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.schedule(t, fn)
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// after is After for internal callers that never cancel: it skips the
// Timer handle allocation on the hot path (every sleep and wakeup).
func (e *Engine) after(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		if e.events.Len() == 0 {
			break
		}
		if e.events[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// QueueLen returns the number of scheduled events. Cancelled events are
// removed eagerly, so the count reflects only live work.
func (e *Engine) QueueLen() int { return e.events.Len() }
