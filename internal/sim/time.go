// Package sim implements a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue with stable ordering, seeded randomness,
// and a goroutine-based process layer so workloads can be written in a
// blocking style (post, sleep, wait) while the whole simulation stays
// single-threaded and reproducible.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
// It doubles as a duration; arithmetic on Time values is plain int64
// arithmetic.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t expressed in milliseconds as a float64.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t expressed in microseconds as a float64.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with a unit chosen for readability, e.g.
// "12.3µs", "4.50ms", "1.20s".
func (t Time) String() string {
	neg := ""
	v := t
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v < Microsecond:
		return fmt.Sprintf("%s%dns", neg, int64(v))
	case v < Millisecond:
		return fmt.Sprintf("%s%.2fµs", neg, float64(v)/float64(Microsecond))
	case v < Second:
		return fmt.Sprintf("%s%.2fms", neg, float64(v)/float64(Millisecond))
	default:
		return fmt.Sprintf("%s%.3fs", neg, float64(v)/float64(Second))
	}
}

// FromSeconds converts a float64 number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMicros converts a float64 number of microseconds to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// FromMillis converts a float64 number of milliseconds to a Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }
