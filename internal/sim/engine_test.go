package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{12300 * Nanosecond, "12.30µs"},
		{4500 * Microsecond, "4.50ms"},
		{1200 * Millisecond, "1.200s"},
		{-3 * Millisecond, "-3.00ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromMicros(4.096) != 4096*Nanosecond {
		t.Errorf("FromMicros(4.096) = %v", FromMicros(4.096))
	}
	if FromMillis(0.5) != 500*Microsecond {
		t.Errorf("FromMillis(0.5) = %v", FromMillis(0.5))
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Errorf("Millis = %v", got)
	}
	if got := (2500 * Microsecond).Seconds(); got != 0.0025 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3 {
		t.Errorf("Micros = %v", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.After(10, func() { order = append(order, 2) })
	e.After(5, func() { order = append(order, 1) })
	e.After(10, func() { order = append(order, 3) }) // same instant: FIFO
	e.After(20, func() { order = append(order, 4) })
	e.Run()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
	if e.EventsFired() != 4 {
		t.Errorf("EventsFired = %d", e.EventsFired())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(10, func() { fired = true })
	if !tm.Pending() {
		t.Error("timer should be pending")
	}
	if !tm.Cancel() {
		t.Error("Cancel should report true on a pending timer")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	if tm.Pending() {
		t.Error("cancelled timer still pending")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := New(1)
	tm := e.After(1, func() {})
	e.Run()
	if tm.Cancel() {
		t.Error("Cancel after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if e.Now() != 12 {
		t.Errorf("Now = %v, want 12", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("fired = %v, want 4 events", fired)
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	n := 0
	e.After(1, func() { n++; e.Stop() })
	e.After(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Errorf("n = %d, want 1 (Stop should halt Run)", n)
	}
	e.Run() // resumes
	if n != 2 {
		t.Errorf("n = %d, want 2 after resuming", n)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(1, rec)
		}
	}
	e.After(0, rec)
	e.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Errorf("Now = %v, want 99", e.Now())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and ties fire in scheduling order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := New(7)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			i, at := i, Time(d%1000)
			e.After(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run()
		if len(got) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].seq < got[j].seq
		}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(123)
		var samples []int64
		var loop func()
		n := 0
		loop = func() {
			samples = append(samples, int64(e.Uniform(0, 1000)), int64(e.Now()))
			n++
			if n < 50 {
				e.After(e.Uniform(1, 100), loop)
			}
		}
		e.After(0, loop)
		e.Run()
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestUniformBounds(t *testing.T) {
	e := New(5)
	for i := 0; i < 1000; i++ {
		v := e.Uniform(10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("Uniform out of bounds: %v", v)
		}
	}
	if e.Uniform(30, 30) != 30 {
		t.Error("degenerate Uniform should return lo")
	}
	if e.Uniform(30, 10) != 30 {
		t.Error("inverted Uniform should return lo")
	}
}

func TestJitterBounds(t *testing.T) {
	e := New(5)
	base := 100 * Microsecond
	for i := 0; i < 1000; i++ {
		v := e.Jitter(base, 0.1)
		if v < 90*Microsecond || v > 110*Microsecond {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
	if e.Jitter(base, 0) != base {
		t.Error("zero-frac Jitter should return base")
	}
}

func TestNormalTruncation(t *testing.T) {
	e := New(5)
	for i := 0; i < 1000; i++ {
		if v := e.Normal(10, 1000); v < 0 {
			t.Fatalf("Normal returned negative %v", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	e := New(5)
	if e.Bernoulli(0) {
		t.Error("Bernoulli(0) = true")
	}
	if !e.Bernoulli(1) {
		t.Error("Bernoulli(1) = false")
	}
	n := 0
	for i := 0; i < 10000; i++ {
		if e.Bernoulli(0.3) {
			n++
		}
	}
	if n < 2700 || n > 3300 {
		t.Errorf("Bernoulli(0.3) hit %d/10000 times", n)
	}
}

// TestCancelRemovesFromHeap pins the eager-removal regression: cancelling
// a timer must drop QueueLen immediately instead of leaving a dead entry
// in the heap until popped (the RC requester cancels a retransmit timer
// on nearly every ACK, so lazy deletion accumulates a tail of dead
// entries through timeout-heavy runs).
func TestCancelRemovesFromHeap(t *testing.T) {
	e := New(1)
	timers := make([]Timer, 100)
	for i := range timers {
		timers[i] = e.After(Time(i+1), func() {})
	}
	if e.QueueLen() != 100 {
		t.Fatalf("QueueLen = %d, want 100", e.QueueLen())
	}
	for i, tm := range timers {
		if i%2 == 0 {
			tm.Cancel()
		}
	}
	if e.QueueLen() != 50 {
		t.Errorf("QueueLen after cancelling half = %d, want 50", e.QueueLen())
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != 50 {
		t.Errorf("fired = %d, want 50", fired)
	}
}

// TestCancelMidHeap cancels from the middle of a larger randomized heap
// and checks the survivors still fire in order.
func TestCancelMidHeap(t *testing.T) {
	e := New(9)
	var fired []Time
	var timers []Timer
	for i := 0; i < 500; i++ {
		d := e.Uniform(1, 1000)
		timers = append(timers, e.After(d, func() { fired = append(fired, e.Now()) }))
	}
	for i := 0; i < 500; i += 3 {
		if !timers[i].Cancel() {
			t.Fatalf("Cancel %d reported not pending", i)
		}
		if timers[i].Pending() {
			t.Fatalf("timer %d still pending after cancel", i)
		}
	}
	e.Run()
	if len(fired) != 500-167 {
		t.Errorf("fired %d events, want %d", len(fired), 500-167)
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Error("survivors fired out of order")
	}
}

// TestRecycledEventTimerIsInert schedules through the free list and
// checks a stale Timer (whose event storage was recycled into a new
// schedule) neither reports Pending nor cancels the new event.
func TestRecycledEventTimerIsInert(t *testing.T) {
	e := New(1)
	stale := e.After(1, func() {})
	e.Run() // fires; event storage recycled

	fired := false
	fresh := e.After(5, func() { fired = true }) // reuses the recycled event
	if stale.Pending() {
		t.Error("stale timer reports pending after its event was recycled")
	}
	if stale.Cancel() {
		t.Error("stale Cancel reported true")
	}
	e.Run()
	if !fired {
		t.Error("stale Cancel killed the recycled event's new schedule")
	}
	if fresh.Pending() {
		t.Error("fired fresh timer still pending")
	}
}

// TestReset checks a Reset engine reproduces a fresh engine exactly —
// clock, sequence, random stream and event storage behaviour.
func TestReset(t *testing.T) {
	run := func(e *Engine) []int64 {
		var samples []int64
		n := 0
		var loop func()
		loop = func() {
			samples = append(samples, int64(e.Uniform(0, 1000)), int64(e.Now()), int64(e.EventsFired()))
			if n++; n < 40 {
				e.After(e.Uniform(1, 50), loop)
			}
		}
		e.After(0, loop)
		// Schedule-and-cancel noise so the free list sees traffic.
		tm := e.After(10000, func() {})
		tm.Cancel()
		e.Run()
		return samples
	}
	fresh := run(New(77))
	reused := New(5)
	run(reused) // dirty the engine with a different seed
	reused.Reset(77)
	if reused.Now() != 0 || reused.EventsFired() != 0 || reused.QueueLen() != 0 {
		t.Fatalf("Reset left state: now=%v fired=%d queue=%d",
			reused.Now(), reused.EventsFired(), reused.QueueLen())
	}
	got := run(reused)
	if len(got) != len(fresh) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(fresh))
	}
	for i := range got {
		if got[i] != fresh[i] {
			t.Fatalf("sample %d differs after Reset: %d vs %d", i, got[i], fresh[i])
		}
	}
}

// TestResetDropsPendingEvents checks events left in the heap (after a
// Stop) do not leak into the next run.
func TestResetDropsPendingEvents(t *testing.T) {
	e := New(1)
	leaked := false
	e.After(1, func() { e.Stop() })
	e.After(2, func() { leaked = true })
	e.Run()
	if e.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d, want 1 pending", e.QueueLen())
	}
	e.Reset(1)
	if e.QueueLen() != 0 {
		t.Errorf("QueueLen after Reset = %d", e.QueueLen())
	}
	e.After(5, func() {})
	e.Run()
	if leaked {
		t.Error("pre-Reset event fired after Reset")
	}
}

// TestEngineAllocsFlat checks the free list keeps steady-state scheduling
// allocation-free: after warmup, a schedule/cancel/fire loop on a Reset
// engine must not allocate per event.
func TestEngineAllocsFlat(t *testing.T) {
	e := New(1)
	loop := func() {
		e.Reset(1)
		var pending Timer
		for j := 0; j < 256; j++ {
			pending.Cancel() // no-op on the zero Timer
			pending = e.After(Time(j+1), func() {})
			e.schedule(Time(j+1), func() {})
		}
		e.Run()
	}
	loop() // warm the free list
	avg := testing.AllocsPerRun(20, loop)
	// Timer is a value handle and events come from the free list, so a
	// warmed schedule/cancel/fire loop allocates nothing per event.
	if avg > 8 {
		t.Errorf("allocs per loop = %v, want ≤ 8 (free list not recycling)", avg)
	}
}

// TestScheduleOrderingMatchesAt checks the lite fire-and-forget path
// (Schedule/ScheduleAfter) shares one sequence counter with At/After:
// same-instant callbacks fire in scheduling order regardless of which
// API queued them, so mixing the two paths changes nothing observable.
func TestScheduleOrderingMatchesAt(t *testing.T) {
	e := New(1)
	var order []int
	e.Schedule(10, func() { order = append(order, 1) })
	e.After(10, func() { order = append(order, 2) })
	e.ScheduleAfter(10, func() { order = append(order, 3) })
	e.At(5, func() { order = append(order, 0) })
	e.ScheduleAfter(-3, func() { order = append(order, -1) }) // clamped to now
	e.Run()
	want := []int{-1, 0, 1, 2, 3}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", order, want)
		}
	}
	if e.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after Run, want 0", e.QueueLen())
	}
}

// TestScheduleDroppedByReset checks Reset discards pending lite
// callbacks like tracked events, and the engine stays reusable.
func TestScheduleDroppedByReset(t *testing.T) {
	e := New(1)
	leaked := false
	e.Schedule(5, func() { leaked = true })
	e.Reset(2)
	fired := false
	e.ScheduleAfter(1, func() { fired = true })
	e.Run()
	if leaked {
		t.Error("pre-Reset lite callback fired after Reset")
	}
	if !fired {
		t.Error("post-Reset lite callback did not fire")
	}
}

// TestScheduleCancelInterleaved exercises Timer.Cancel against a heap
// holding lite slots: removal sifts move both kinds, and only tracked
// events carry a heap index. A cancelled timer must not disturb the lite
// callbacks around it.
func TestScheduleCancelInterleaved(t *testing.T) {
	e := New(1)
	var fired []int
	timers := make([]Timer, 0, 8)
	for i := 0; i < 8; i++ {
		i := i
		e.Schedule(Time(10+i), func() { fired = append(fired, i) })
		timers = append(timers, e.After(Time(10+i), func() { fired = append(fired, 100+i) }))
	}
	for i := 0; i < 8; i += 2 {
		if !timers[i].Cancel() {
			t.Fatalf("timer %d did not cancel", i)
		}
	}
	e.Run()
	want := []int{0, 1, 101, 2, 3, 103, 4, 5, 105, 6, 7, 107}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// TestPreallocEvents checks pre-sizing: after PreallocEvents(n), a burst
// of n tracked and lite schedules plus the run to drain them allocates
// nothing — the switched congestion network relies on this to keep cold
// trials off the allocator too.
func TestPreallocEvents(t *testing.T) {
	e := New(1)
	e.PreallocEvents(64)
	fn := func() {}
	loop := func() {
		e.Reset(1)
		for j := 0; j < 32; j++ {
			e.After(Time(j+1), fn)
			e.Schedule(Time(j+1), fn)
		}
		e.Run()
	}
	loop()
	if avg := testing.AllocsPerRun(10, loop); avg > 0 {
		t.Errorf("allocs per pre-sized loop = %v, want 0", avg)
	}
}

// TestReserveSeqTieBreak checks that a callback scheduled late with a
// reserved sequence number keeps its reservation-order priority over
// same-instant events scheduled after the reservation. This is the
// contract the propagation delay lines depend on: only the head flight
// sits in the heap, yet ties resolve exactly as if every flight had been
// scheduled eagerly.
func TestReserveSeqTieBreak(t *testing.T) {
	e := New(1)
	var fired []string
	seq := e.ReserveSeq()
	e.Schedule(5, func() { fired = append(fired, "later") })
	// Reserved earlier, scheduled later: must still run first at t=5.
	e.ScheduleSeq(5, seq, func() { fired = append(fired, "reserved") })
	e.Run()
	if len(fired) != 2 || fired[0] != "reserved" || fired[1] != "later" {
		t.Fatalf("fired %v, want [reserved later]", fired)
	}
}

// TestNextEventTime checks the coordinator's peek primitive: it reports
// the earliest scheduled timestamp without popping or advancing anything.
func TestNextEventTime(t *testing.T) {
	e := New(1)
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine reports a next event")
	}
	e.Schedule(7, func() {})
	e.Schedule(3, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 3 {
		t.Fatalf("NextEventTime = %v, %v, want 3, true", at, ok)
	}
	if e.Now() != 0 || e.QueueLen() != 2 {
		t.Fatalf("peek mutated the engine: now=%v queue=%d", e.Now(), e.QueueLen())
	}
}

// TestRunHorizon checks the bounded-lag window primitive: events strictly
// before the horizon fire, an event exactly at the horizon stays queued
// for the next window, and the clock lands on the horizon either way.
func TestRunHorizon(t *testing.T) {
	e := New(1)
	var fired []Time
	for _, at := range []Time{2, 5, 15} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.Schedule(10, func() { fired = append(fired, 10) })
	e.RunHorizon(10)
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired %v, want [2 5] (strictly before horizon)", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v after RunHorizon(10), want 10", e.Now())
	}
	// The event exactly at the previous horizon fires in the next window.
	e.RunHorizon(20)
	if len(fired) != 4 || fired[2] != 10 || fired[3] != 15 {
		t.Fatalf("fired %v, want [2 5 10 15]", fired)
	}
	// An empty window still advances the clock.
	e.RunHorizon(30)
	if e.Now() != 30 || e.QueueLen() != 0 {
		t.Fatalf("empty window: now=%v queue=%d, want 30, 0", e.Now(), e.QueueLen())
	}
}
