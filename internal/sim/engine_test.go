package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{12300 * Nanosecond, "12.30µs"},
		{4500 * Microsecond, "4.50ms"},
		{1200 * Millisecond, "1.200s"},
		{-3 * Millisecond, "-3.00ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromMicros(4.096) != 4096*Nanosecond {
		t.Errorf("FromMicros(4.096) = %v", FromMicros(4.096))
	}
	if FromMillis(0.5) != 500*Microsecond {
		t.Errorf("FromMillis(0.5) = %v", FromMillis(0.5))
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Errorf("Millis = %v", got)
	}
	if got := (2500 * Microsecond).Seconds(); got != 0.0025 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3 {
		t.Errorf("Micros = %v", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.After(10, func() { order = append(order, 2) })
	e.After(5, func() { order = append(order, 1) })
	e.After(10, func() { order = append(order, 3) }) // same instant: FIFO
	e.After(20, func() { order = append(order, 4) })
	e.Run()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
	if e.EventsFired() != 4 {
		t.Errorf("EventsFired = %d", e.EventsFired())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(10, func() { fired = true })
	if !tm.Pending() {
		t.Error("timer should be pending")
	}
	if !tm.Cancel() {
		t.Error("Cancel should report true on a pending timer")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	if tm.Pending() {
		t.Error("cancelled timer still pending")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := New(1)
	tm := e.After(1, func() {})
	e.Run()
	if tm.Cancel() {
		t.Error("Cancel after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if e.Now() != 12 {
		t.Errorf("Now = %v, want 12", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("fired = %v, want 4 events", fired)
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	n := 0
	e.After(1, func() { n++; e.Stop() })
	e.After(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Errorf("n = %d, want 1 (Stop should halt Run)", n)
	}
	e.Run() // resumes
	if n != 2 {
		t.Errorf("n = %d, want 2 after resuming", n)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(1, rec)
		}
	}
	e.After(0, rec)
	e.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Errorf("Now = %v, want 99", e.Now())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and ties fire in scheduling order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := New(7)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			i, at := i, Time(d%1000)
			e.After(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run()
		if len(got) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].seq < got[j].seq
		}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(123)
		var samples []int64
		var loop func()
		n := 0
		loop = func() {
			samples = append(samples, int64(e.Uniform(0, 1000)), int64(e.Now()))
			n++
			if n < 50 {
				e.After(e.Uniform(1, 100), loop)
			}
		}
		e.After(0, loop)
		e.Run()
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestUniformBounds(t *testing.T) {
	e := New(5)
	for i := 0; i < 1000; i++ {
		v := e.Uniform(10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("Uniform out of bounds: %v", v)
		}
	}
	if e.Uniform(30, 30) != 30 {
		t.Error("degenerate Uniform should return lo")
	}
	if e.Uniform(30, 10) != 30 {
		t.Error("inverted Uniform should return lo")
	}
}

func TestJitterBounds(t *testing.T) {
	e := New(5)
	base := 100 * Microsecond
	for i := 0; i < 1000; i++ {
		v := e.Jitter(base, 0.1)
		if v < 90*Microsecond || v > 110*Microsecond {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
	if e.Jitter(base, 0) != base {
		t.Error("zero-frac Jitter should return base")
	}
}

func TestNormalTruncation(t *testing.T) {
	e := New(5)
	for i := 0; i < 1000; i++ {
		if v := e.Normal(10, 1000); v < 0 {
			t.Fatalf("Normal returned negative %v", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	e := New(5)
	if e.Bernoulli(0) {
		t.Error("Bernoulli(0) = true")
	}
	if !e.Bernoulli(1) {
		t.Error("Bernoulli(1) = false")
	}
	n := 0
	for i := 0; i < 10000; i++ {
		if e.Bernoulli(0.3) {
			n++
		}
	}
	if n < 2700 || n > 3300 {
		t.Errorf("Bernoulli(0.3) hit %d/10000 times", n)
	}
}
