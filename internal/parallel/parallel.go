// Package parallel fans independent, deterministic simulation trials
// across a bounded worker pool. Every figure of the paper's evaluation is
// a sweep of hundreds of runs that share no state — each trial builds its
// own engine, cluster and telemetry registries from a seed derived from
// its grid index — so the sweep layer can execute points in any order as
// long as results are committed in index order. That is the package's
// determinism contract: callers derive each point's seed from the point's
// index (never from execution order), workers write only to their own
// index's slot, and the assembled output is byte-identical to sequential
// execution whatever the worker count.
//
// The pool is bounded by GOMAXPROCS and overridable with SetJobs (the
// CLIs' -j flag). Jobs()==1 degenerates to a plain loop on the calling
// goroutine, which keeps single-core and -j 1 runs allocation-free.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"odpsim/internal/stats"
)

// jobs is the configured worker bound; <= 0 means runtime.GOMAXPROCS(0).
var jobs atomic.Int32

// SetJobs bounds the worker pool to n goroutines. n <= 0 restores the
// default, runtime.GOMAXPROCS(0). It is intended for process start (the
// -j flag) and tests; concurrent calls with running sweeps are not
// synchronized with them.
func SetJobs(n int) {
	if n < 0 {
		n = 0
	}
	jobs.Store(int32(n))
}

// Jobs returns the current worker bound.
func Jobs() int {
	if n := int(jobs.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run invokes fn(worker, i) for every i in [0, n), distributing indices
// across Jobs() workers and blocking until all complete. worker is the
// invoking worker's index in [0, Jobs()): fn is never called concurrently
// with the same worker value, so callers can keep per-worker scratch
// state (e.g. a Reset-reused sim engine). A panic in fn is re-raised on
// the calling goroutine after the pool drains.
func Run(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Jobs()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(k)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// RunAll invokes fn(i) for every i in [0, n) across the worker pool and
// blocks until all complete.
func RunAll(n int, fn func(i int)) {
	Run(n, func(_, i int) { fn(i) })
}

// Map invokes fn(i) for every i in [0, n) across the worker pool and
// returns the results committed in index order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	Run(n, func(_, i int) { out[i] = fn(i) })
	return out
}

// MapSeries evaluates y(i) for every x across the worker pool and commits
// the (x, y) points in index order — the sweep-layer primitive behind the
// figure drivers.
func MapSeries(label string, xs []float64, y func(i int) float64) *stats.Series {
	return &stats.Series{Label: label, X: append([]float64(nil), xs...), Y: Map(len(xs), y)}
}
