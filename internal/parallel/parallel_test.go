package parallel

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

func withJobs(t *testing.T, n int) {
	t.Helper()
	SetJobs(n)
	t.Cleanup(func() { SetJobs(0) })
}

func TestJobsDefault(t *testing.T) {
	SetJobs(0)
	if got, want := Jobs(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Jobs() = %d, want GOMAXPROCS %d", got, want)
	}
	SetJobs(3)
	defer SetJobs(0)
	if Jobs() != 3 {
		t.Errorf("Jobs() = %d after SetJobs(3)", Jobs())
	}
}

func TestRunCoversAllIndices(t *testing.T) {
	for _, j := range []int{1, 2, 8} {
		withJobs(t, j)
		const n = 1000
		var hits [n]atomic.Int32
		RunAll(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("j=%d: index %d executed %d times", j, i, c)
			}
		}
	}
}

func TestRunWorkerIsExclusive(t *testing.T) {
	// The same worker index must never run fn concurrently: per-worker
	// scratch state (reused engines) relies on it.
	withJobs(t, 4)
	var inUse [4]atomic.Int32
	Run(256, func(w, i int) {
		if inUse[w].Add(1) != 1 {
			t.Errorf("worker %d entered concurrently", w)
		}
		for k := 0; k < 100; k++ {
			runtime.Gosched()
		}
		inUse[w].Add(-1)
	})
}

func TestMapCommitsInIndexOrder(t *testing.T) {
	withJobs(t, 8)
	got := Map(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestMapSeries(t *testing.T) {
	withJobs(t, 4)
	xs := []float64{1, 2, 3}
	s := MapSeries("sq", xs, func(i int) float64 { return xs[i] * xs[i] })
	if s.Label != "sq" || !reflect.DeepEqual(s.X, xs) || !reflect.DeepEqual(s.Y, []float64{1, 4, 9}) {
		t.Errorf("series = %+v", s)
	}
}

func TestRunPanicPropagates(t *testing.T) {
	withJobs(t, 4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	RunAll(64, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
	t.Error("RunAll returned without panicking")
}

func TestRunZeroAndNegative(t *testing.T) {
	called := false
	RunAll(0, func(int) { called = true })
	RunAll(-5, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

// TestConcurrentTrialsAreIsolated runs full simulations — engines,
// clusters, QPs, telemetry registries — concurrently and checks every
// trial reproduces its sequential result. Under -race this is the
// hygiene check that no component shares mutable state across trials:
// each trial's counters live in its own registry.
func TestConcurrentTrialsAreIsolated(t *testing.T) {
	run := func(seed int64) (sim.Time, float64) {
		cl := cluster.KNL().Build(seed, 2)
		client := cl.Nodes[0]
		lbuf := client.AS.Alloc(4096)
		client.RegisterODPMR(lbuf, 4096)
		server := cl.Nodes[1]
		rbuf := server.AS.Alloc(4096)
		server.RegisterMR(rbuf, 4096)
		cq := rnic.NewCQ(cl.Eng)
		scq := rnic.NewCQ(cl.Eng)
		qc := client.CreateQP(cq, cq)
		qs := server.CreateQP(scq, scq)
		params := rnic.ConnParams{CACK: 18, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
		rnic.ConnectPair(qc, qs, params, params)
		var done sim.Time
		cl.Eng.Go("t", func(p *sim.Proc) {
			qc.PostSend(rnic.SendWR{ID: 1, Op: rnic.OpRead, LocalAddr: lbuf, RemoteAddr: rbuf, Len: 64})
			cq.WaitN(p, 1)
			done = p.Now()
		})
		cl.Eng.MustRun()
		return done, cl.Telemetry().Snapshot(cl.Eng.Now()).Total("num_page_faults")
	}

	const n = 32
	wantT := make([]sim.Time, n)
	wantF := make([]float64, n)
	for i := 0; i < n; i++ {
		wantT[i], wantF[i] = run(int64(i + 1))
	}
	withJobs(t, 8)
	RunAll(n, func(i int) {
		gotT, gotF := run(int64(i + 1))
		if gotT != wantT[i] || gotF != wantF[i] {
			t.Errorf("trial %d: concurrent (%v, %v) != sequential (%v, %v)",
				i, gotT, gotF, wantT[i], wantF[i])
		}
	})
}
