// Package irn implements the protocol core of an IRN-style selective
// repeat RC transport ("Revisiting Network Support for RDMA", Mittal et
// al.): selective acknowledgement via a cumulative ACK plus a reception
// bitmap, a bounded responder-side reorder buffer that lets packets land
// out of order while execution stays in ePSN order, and BDP-bounded
// injection so the sender never relies on PFC backpressure. The rnic
// layer owns queue pairs, completion queues and memory; this package
// owns the per-QP transport state machines and their arena.
package irn

import (
	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// Window is the reorder window in PSNs: the responder accepts arrivals
// up to Window-1 ahead of ePSN, and the requester keeps its outstanding
// PSN span below it. 64 matches the SACK bitmap width.
const Window = 64

// Config parameterizes the transport. The zero value takes defaults.
type Config struct {
	// LineGbps is the edge link rate the BDP is computed against.
	LineGbps float64
	// BaseRTT is the unloaded round-trip time for the BDP product.
	BaseRTT sim.Time
	// BDPBytes overrides the computed bandwidth×delay cap when > 0.
	BDPBytes int
}

// DefaultBaseRTT is the unloaded RTT assumed when a config does not
// specify one: a few switch hops of propagation plus MTU serialization,
// in the regime of the clusters the paper measures.
const DefaultBaseRTT = 6 * sim.Microsecond

// EffectiveBDP resolves the injection cap in bytes.
func (c Config) EffectiveBDP() int {
	if c.BDPBytes > 0 {
		return c.BDPBytes
	}
	rtt := c.BaseRTT
	if rtt <= 0 {
		rtt = DefaultBaseRTT
	}
	gbps := c.LineGbps
	if gbps <= 0 {
		gbps = 100
	}
	return int(gbps / 8 * float64(rtt)) // Gbit/s ÷ 8 = bytes per ns
}

// Disposition classifies an arriving request PSN against the reorder
// buffer.
type Disposition int

// Arrival dispositions.
const (
	// InOrder: psn == ePSN; execute now, then sweep the buffer.
	InOrder Disposition = iota
	// Duplicate: already received (below ePSN or stashed); re-ACK only.
	Duplicate
	// OutOfOrder: lands inside the window above ePSN; stash and SACK.
	OutOfOrder
	// BeyondWindow: past the reorder window; drop (a conforming
	// requester's BDP/span cap keeps this from happening).
	BeyondWindow
)

// ReorderBuffer is the responder-side bounded reorder buffer. Bit i of
// mask means PSN ePSN+i has been received and stashed (bit 0 is never
// set: an in-order arrival executes immediately and a head that faults
// is dropped and NAKed, not stashed). Stashed packets are stored by
// value — the wire packet goes back to its pool at the end of the
// receive callback, per the §8 ownership contract.
type ReorderBuffer struct {
	epsn  uint32
	mask  uint64
	slots [Window]packet.Packet
}

// Init points the buffer at the connection's starting ePSN.
func (rb *ReorderBuffer) Init(epsn uint32) {
	rb.epsn = epsn
	rb.mask = 0
}

// EPSN returns the next PSN the responder will execute.
func (rb *ReorderBuffer) EPSN() uint32 { return rb.epsn }

// Buffered returns how many packets are stashed out of order.
func (rb *ReorderBuffer) Buffered() int {
	n := 0
	for m := rb.mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Classify places an arriving PSN relative to ePSN and the window.
func (rb *ReorderBuffer) Classify(psn uint32) Disposition {
	d := packet.PSNDiff(psn, rb.epsn)
	switch {
	case d == 0:
		return InOrder
	case d < 0:
		return Duplicate
	case d < Window:
		if rb.mask&(1<<uint(d)) != 0 {
			return Duplicate
		}
		return OutOfOrder
	default:
		return BeyondWindow
	}
}

// Stash copies an out-of-order packet into its slot. Call only after
// Classify returned OutOfOrder.
func (rb *ReorderBuffer) Stash(pkt *packet.Packet) {
	d := packet.PSNDiff(pkt.PSN, rb.epsn)
	rb.mask |= 1 << uint(d)
	rb.slots[pkt.PSN%Window] = *pkt
}

// Advance moves ePSN past n executed PSNs (n > 1 for multi-PSN READs).
func (rb *ReorderBuffer) Advance(n int) {
	rb.epsn = packet.PSNAdd(rb.epsn, n)
	if n >= Window {
		rb.mask = 0
	} else {
		rb.mask >>= uint(n)
	}
}

// Head returns the stashed packet now at ePSN, if the gap just filled.
// The pointer aliases slot storage: the caller must finish executing it
// (and call Advance) before the next Stash.
func (rb *ReorderBuffer) Head() (*packet.Packet, bool) {
	if rb.mask&1 == 0 {
		return nil, false
	}
	return &rb.slots[rb.epsn%Window], true
}

// DropHead discards the stashed packet at ePSN without executing it
// (the per-packet RNR NAK path: the requester will retransmit it).
func (rb *ReorderBuffer) DropHead() { rb.mask &^= 1 }

// Sack returns the wire SACK block: base is the first missing PSN
// (ePSN) and bit i of the bitmap means PSN base+i was received out of
// order (bit 0 is always clear).
func (rb *ReorderBuffer) Sack() (base uint32, bitmap uint64) {
	return rb.epsn, rb.mask
}

// TxAccount is the requester-side injection governor: it tracks
// outstanding wire bytes against the BDP cap and the outstanding PSN
// span against the reorder window. Bytes are recorded per PSN so
// cumulative ACKs and selective completions free exactly what a packet
// charged.
type TxAccount struct {
	bdp   int
	bytes int
	inUse [Window]int32 // outstanding bytes charged per PSN%Window slot
	base  uint32        // oldest un-completed PSN
	next  uint32        // next PSN to be assigned
}

// Init arms the account with the BDP cap and the connection's first PSN.
func (tx *TxAccount) Init(bdpBytes int, firstPSN uint32) {
	tx.bdp = bdpBytes
	tx.bytes = 0
	tx.base = firstPSN
	tx.next = firstPSN
	for i := range tx.inUse {
		tx.inUse[i] = 0
	}
}

// Outstanding returns the bytes currently charged against the cap.
func (tx *TxAccount) Outstanding() int { return tx.bytes }

// CanSend reports whether a message spanning npsn PSNs and costing
// bytes on the wire fits under both the BDP cap and the window span.
// The first message is always admitted so a cap smaller than one MTU
// cannot deadlock the QP.
func (tx *TxAccount) CanSend(bytes, npsn int) bool {
	if packet.PSNDiff(packet.PSNAdd(tx.next, npsn), tx.base) > Window {
		return false
	}
	if tx.bytes > 0 && tx.bytes+bytes > tx.bdp {
		return false
	}
	return true
}

// OnSend charges a message occupying [psn, psn+npsn) for bytes. The
// charge lands on the first PSN (the wire packet; for READs the span
// reserves response PSNs that carry no charge of their own).
func (tx *TxAccount) OnSend(psn uint32, npsn, bytes int) {
	tx.inUse[psn%Window] += int32(bytes)
	tx.bytes += bytes
	if end := packet.PSNAdd(psn, npsn); packet.PSNLess(tx.next, end) {
		tx.next = end
	}
}

// Complete releases every charge in [base, upto) and advances base.
// Call when a request's span is fully acknowledged.
func (tx *TxAccount) Complete(upto uint32) {
	for packet.PSNLess(tx.base, upto) {
		tx.bytes -= int(tx.inUse[tx.base%Window])
		tx.inUse[tx.base%Window] = 0
		tx.base = packet.PSNAdd(tx.base, 1)
	}
	if tx.bytes < 0 {
		tx.bytes = 0
	}
}

// State bundles one QP's transport machines. Instances come from the
// engine-generation arena (StateFor) so trial loops that rebuild a
// cluster on a Reset engine reuse the buffers.
type State struct {
	RB ReorderBuffer
	TX TxAccount
}

// scratch is the per-engine arena of State objects, generation-claimed
// like the congestion layer's port/switch arenas: an Engine.Reset
// wholesale-frees last trial's grabs.
type scratch struct {
	gen  uint64
	all  []*State
	next int
}

const scratchKey = "irn.scratch"

// StateFor grabs a recycled per-QP State (or allocates the arena's next
// one) for the current engine generation.
func StateFor(eng *sim.Engine) *State {
	s, _ := eng.Aux(scratchKey).(*scratch)
	if s == nil {
		s = &scratch{}
		eng.SetAux(scratchKey, s)
	}
	if gen := eng.Generation() + 1; s.gen != gen {
		s.gen = gen
		s.next = 0
	}
	var st *State
	if s.next < len(s.all) {
		st = s.all[s.next]
		s.next++
	} else {
		st = &State{}
		s.all = append(s.all, st)
		s.next = len(s.all)
	}
	return st
}
