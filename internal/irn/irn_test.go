package irn

import (
	"testing"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

func TestEffectiveBDP(t *testing.T) {
	if got := (Config{BDPBytes: 12345}).EffectiveBDP(); got != 12345 {
		t.Fatalf("override: got %d", got)
	}
	// 100 Gbit/s = 12.5 B/ns over a 6 µs RTT = 75000 B.
	if got := (Config{LineGbps: 100, BaseRTT: 6 * sim.Microsecond}).EffectiveBDP(); got != 75000 {
		t.Fatalf("derived: got %d", got)
	}
	if got := (Config{}).EffectiveBDP(); got != 75000 {
		t.Fatalf("defaults: got %d", got)
	}
}

func TestReorderBufferInOrderFlow(t *testing.T) {
	var rb ReorderBuffer
	rb.Init(10)
	if d := rb.Classify(10); d != InOrder {
		t.Fatalf("classify(10) = %v", d)
	}
	if d := rb.Classify(9); d != Duplicate {
		t.Fatalf("classify(9) = %v", d)
	}
	if d := rb.Classify(11); d != OutOfOrder {
		t.Fatalf("classify(11) = %v", d)
	}
	if d := rb.Classify(10 + Window); d != BeyondWindow {
		t.Fatalf("classify(epsn+Window) = %v", d)
	}
	rb.Advance(1)
	if rb.EPSN() != 11 {
		t.Fatalf("epsn = %d", rb.EPSN())
	}
}

func TestReorderBufferGapFill(t *testing.T) {
	var rb ReorderBuffer
	rb.Init(100)
	// 101 and 103 land out of order while 100 is missing.
	for _, psn := range []uint32{101, 103} {
		pkt := &packet.Packet{Opcode: packet.OpWriteOnly, PSN: psn, DMALen: psn}
		if d := rb.Classify(psn); d != OutOfOrder {
			t.Fatalf("classify(%d) = %v", psn, d)
		}
		rb.Stash(pkt)
	}
	if rb.Buffered() != 2 {
		t.Fatalf("buffered = %d", rb.Buffered())
	}
	if d := rb.Classify(101); d != Duplicate {
		t.Fatalf("stashed 101 should classify Duplicate, got %v", d)
	}
	base, bm := rb.Sack()
	if base != 100 || bm != 0b1010 {
		t.Fatalf("sack = (%d, %b)", base, bm)
	}
	if _, ok := rb.Head(); ok {
		t.Fatal("head should be empty while 100 is missing")
	}
	// 100 arrives: execute it, advance, and sweep the run.
	if d := rb.Classify(100); d != InOrder {
		t.Fatalf("classify(100) = %v", d)
	}
	rb.Advance(1)
	h, ok := rb.Head()
	if !ok || h.PSN != 101 || h.DMALen != 101 {
		t.Fatalf("head after advance = %+v ok=%v", h, ok)
	}
	rb.Advance(1)
	if _, ok := rb.Head(); ok {
		t.Fatal("102 is still missing; head must be empty")
	}
	if rb.EPSN() != 102 {
		t.Fatalf("epsn = %d", rb.EPSN())
	}
	base, bm = rb.Sack()
	if base != 102 || bm != 0b10 {
		t.Fatalf("sack = (%d, %b)", base, bm)
	}
}

func TestReorderBufferDropHead(t *testing.T) {
	var rb ReorderBuffer
	rb.Init(5)
	rb.Stash(&packet.Packet{PSN: 6})
	rb.Advance(1) // 5 executed; 6 becomes head
	if _, ok := rb.Head(); !ok {
		t.Fatal("6 should be head")
	}
	rb.DropHead()
	if _, ok := rb.Head(); ok {
		t.Fatal("head should be dropped")
	}
	if rb.Buffered() != 0 {
		t.Fatalf("buffered = %d", rb.Buffered())
	}
}

func TestReorderBufferPSNWrap(t *testing.T) {
	var rb ReorderBuffer
	const top = 1<<24 - 2
	rb.Init(top)
	wrapped := packet.PSNAdd(top, 3) // PSN 1
	if d := rb.Classify(wrapped); d != OutOfOrder {
		t.Fatalf("classify(wrap) = %v", d)
	}
	rb.Stash(&packet.Packet{PSN: wrapped})
	rb.Advance(3)
	h, ok := rb.Head()
	if !ok || h.PSN != wrapped {
		t.Fatalf("head after wrap advance = %+v ok=%v", h, ok)
	}
}

func TestTxAccountBDPAndSpan(t *testing.T) {
	var tx TxAccount
	tx.Init(3000, 0)
	if !tx.CanSend(2000, 1) {
		t.Fatal("first send must be admitted")
	}
	tx.OnSend(0, 1, 2000)
	if tx.CanSend(2000, 1) {
		t.Fatal("2000+2000 exceeds the 3000 BDP cap")
	}
	// A cap smaller than one message still admits the first message.
	if !tx.CanSend(0, 1) {
		t.Fatal("zero-byte send should pass")
	}
	tx.Complete(1)
	if tx.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", tx.Outstanding())
	}
	if !tx.CanSend(2000, 1) {
		t.Fatal("cap freed after completion")
	}
	// Span: fill the window with 1-byte sends.
	tx.Init(1 << 30, 100)
	for i := 0; i < Window; i++ {
		if !tx.CanSend(1, 1) {
			t.Fatalf("send %d should fit the window", i)
		}
		tx.OnSend(packet.PSNAdd(100, i), 1, 1)
	}
	if tx.CanSend(1, 1) {
		t.Fatal("window span must refuse the 65th outstanding PSN")
	}
	tx.Complete(packet.PSNAdd(100, 1))
	if !tx.CanSend(1, 1) {
		t.Fatal("span frees as the base completes")
	}
}

func TestTxAccountMultiPSNRead(t *testing.T) {
	var tx TxAccount
	tx.Init(1<<30, 0)
	tx.OnSend(0, 4, 4096) // READ occupying PSNs 0..3
	if tx.Outstanding() != 4096 {
		t.Fatalf("outstanding = %d", tx.Outstanding())
	}
	tx.Complete(4)
	if tx.Outstanding() != 0 {
		t.Fatalf("outstanding after complete = %d", tx.Outstanding())
	}
}

func TestStateArenaRecycles(t *testing.T) {
	eng := sim.New(1)
	a := StateFor(eng)
	b := StateFor(eng)
	if a == b {
		t.Fatal("two grabs in one generation must be distinct")
	}
	eng.Reset(2)
	a2 := StateFor(eng)
	b2 := StateFor(eng)
	if a2 != a || b2 != b {
		t.Fatal("a Reset generation must recycle last trial's states in order")
	}
}
