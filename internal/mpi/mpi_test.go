package mpi

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/ucx"
)

func newComm(t *testing.T, seed int64, nodes int, odp bool) (*cluster.Cluster, *Comm) {
	t.Helper()
	cl := cluster.ReedbushH().Build(seed, nodes)
	ucfg := ucx.DefaultConfig()
	ucfg.EnableODP = odp
	var c *Comm
	cl.Eng.Go("init", func(p *sim.Proc) {
		c = NewComm(p, cl, ucfg)
	})
	cl.Eng.MustRun()
	return cl, c
}

func TestSendRecv(t *testing.T) {
	cl, c := newComm(t, 1, 2, false)
	got := 0
	cl.Eng.Go("sender", func(p *sim.Proc) {
		if err := c.Rank(0).Send(p, 1, c.Rank(0).scratch, 48); err != nil {
			t.Error(err)
		}
	})
	cl.Eng.Go("receiver", func(p *sim.Proc) {
		got = c.Rank(1).Recv(p)
	})
	cl.Eng.MustRun()
	if got != 48 {
		t.Errorf("recv length = %d", got)
	}
}

func TestSelfSendRejected(t *testing.T) {
	cl, c := newComm(t, 2, 2, false)
	var err error
	cl.Eng.Go("s", func(p *sim.Proc) {
		err = c.Rank(0).Send(p, 0, c.Rank(0).scratch, 8)
	})
	cl.Eng.MustRun()
	if err == nil {
		t.Error("self-send should error")
	}
}

func TestBarrier(t *testing.T) {
	cl, c := newComm(t, 3, 4, false)
	var leave [4]sim.Time
	for i := 0; i < 4; i++ {
		i := i
		cl.Eng.Go("b", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 100 * sim.Microsecond)
			if err := c.Rank(i).Barrier(p); err != nil {
				t.Error(err)
			}
			leave[i] = p.Now()
		})
	}
	cl.Eng.MustRun()
	lastArrival := 3 * 100 * sim.Microsecond
	for i, at := range leave {
		if at < sim.Time(lastArrival) {
			t.Errorf("rank %d left at %v, before the last arrival", i, at)
		}
	}
}

func TestWinPutGet(t *testing.T) {
	cl, c := newComm(t, 4, 2, false)
	var win *Win
	var err1, err2 error
	cl.Eng.Go("rma", func(p *sim.Proc) {
		win = c.CreateWin(p, 8*hostmem.PageSize)
		buf := cl.Nodes[0].AS.Alloc(hostmem.PageSize)
		cl.Nodes[0].AS.Touch(buf, hostmem.PageSize)
		p.Sleep(c.Rank(0).worker.RegisterBuffer(buf, hostmem.PageSize))
		err1 = win.Put(p, c.Rank(0), buf, 1, 0, 512)
		err2 = win.Get(p, c.Rank(0), buf, 1, 4096, 512)
	})
	cl.Eng.MustRun()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
}

func TestWinBoundsChecked(t *testing.T) {
	cl, c := newComm(t, 5, 2, false)
	var errs [3]error
	cl.Eng.Go("rma", func(p *sim.Proc) {
		win := c.CreateWin(p, hostmem.PageSize)
		errs[0] = win.Put(p, c.Rank(0), c.Rank(0).scratch, 5, 0, 8)
		errs[1] = win.Put(p, c.Rank(0), c.Rank(0).scratch, 1, hostmem.PageSize-4, 8)
		errs[2] = win.Get(p, c.Rank(0), c.Rank(0).scratch, 1, -1, 8)
	})
	cl.Eng.MustRun()
	for i, err := range errs {
		if err == nil {
			t.Errorf("bounds violation %d not caught", i)
		}
	}
}

func TestFetchAndAdd(t *testing.T) {
	cl, c := newComm(t, 6, 2, false)
	var orig1, orig2 uint64
	cl.Eng.Go("faa", func(p *sim.Proc) {
		win := c.CreateWin(p, hostmem.PageSize)
		var err error
		orig1, err = win.FetchAndAdd(p, c.Rank(0), 1, 0, 5)
		if err != nil {
			t.Error(err)
		}
		orig2, err = win.FetchAndAdd(p, c.Rank(0), 1, 0, 5)
		if err != nil {
			t.Error(err)
		}
	})
	cl.Eng.MustRun()
	if orig1 != 0 || orig2 != 5 {
		t.Errorf("origs = %d,%d, want 0,5", orig1, orig2)
	}
}

func TestCompareAndSwapLocalAndRemote(t *testing.T) {
	cl, c := newComm(t, 7, 2, false)
	cl.Eng.Go("cas", func(p *sim.Proc) {
		win := c.CreateWin(p, hostmem.PageSize)
		// Remote CAS.
		if orig, err := win.CompareAndSwap(p, c.Rank(0), 1, 0, 0, 42); err != nil || orig != 0 {
			t.Errorf("remote CAS: orig=%d err=%v", orig, err)
		}
		// Local CAS sees the remote write.
		if orig, err := win.CompareAndSwap(p, c.Rank(1), 1, 0, 42, 7); err != nil || orig != 42 {
			t.Errorf("local CAS: orig=%d err=%v", orig, err)
		}
	})
	cl.Eng.MustRun()
}

func TestPassiveTargetLock(t *testing.T) {
	cl, c := newComm(t, 8, 3, false)
	var win *Win
	cl.Eng.Go("setup", func(p *sim.Proc) {
		win = c.CreateWin(p, hostmem.PageSize)
	})
	cl.Eng.MustRun()

	inCS, maxCS := 0, 0
	for i := 1; i < 3; i++ {
		r := c.Rank(i)
		cl.Eng.Go("locker", func(p *sim.Proc) {
			for k := 0; k < 4; k++ {
				if err := win.Lock(p, r, 0); err != nil {
					t.Error(err)
					return
				}
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				p.Sleep(80 * sim.Microsecond)
				inCS--
				if err := win.Unlock(p, r, 0); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	cl.Eng.MustRun()
	if maxCS != 1 {
		t.Errorf("mutual exclusion violated: max %d in CS", maxCS)
	}
}

func TestUnlockWithoutLockErrors(t *testing.T) {
	cl, c := newComm(t, 9, 2, false)
	var err error
	cl.Eng.Go("u", func(p *sim.Proc) {
		win := c.CreateWin(p, hostmem.PageSize)
		err = win.Unlock(p, c.Rank(0), 1)
	})
	cl.Eng.MustRun()
	if err == nil {
		t.Error("unlock without lock should error")
	}
}

func TestODPWindowFaults(t *testing.T) {
	cl, c := newComm(t, 10, 2, true)
	cl.Eng.Go("rma", func(p *sim.Proc) {
		win := c.CreateWin(p, 8*hostmem.PageSize)
		buf := cl.Nodes[0].AS.Alloc(hostmem.PageSize)
		cl.Nodes[0].AS.Touch(buf, hostmem.PageSize)
		p.Sleep(c.Rank(0).worker.RegisterBuffer(buf, hostmem.PageSize))
		if err := win.Get(p, c.Rank(0), buf, 1, 0, 256); err != nil {
			t.Error(err)
		}
	})
	cl.Eng.MustRun()
	if cl.Nodes[1].RNRNakSent == 0 {
		t.Error("ODP window access should fault on the target")
	}
}

func TestInvalidCommPanics(t *testing.T) {
	cl := cluster.ReedbushH().Build(11, 1)
	panicked := false
	cl.Eng.Go("init", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		NewComm(p, cl, ucx.DefaultConfig())
	})
	cl.Eng.MustRun()
	if !panicked {
		t.Error("1-node comm should panic")
	}
}
