// Package mpi implements the slice of MPI the paper's application stack
// sits on (§VII-A: "all the operations are performed by RDMA over MPI
// RMA, which invokes UCX internally", MPICH 3.3): communicators over a
// simulated cluster, one-sided RMA windows with Put/Get/accumulate and
// passive-target Lock/Unlock, plus point-to-point Send/Recv and Barrier.
// Everything maps onto the UCX layer exactly as MPICH's ucx netmod does,
// so enabling ODP in the UCX configuration exposes MPI applications to
// the paper's pitfalls unchanged.
package mpi

import (
	"fmt"

	"odpsim/internal/cluster"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/ucx"
)

// Comm is a communicator: one rank per cluster node, fully connected.
type Comm struct {
	cl    *cluster.Cluster
	ranks []*Rank
}

// Rank is one process in the communicator.
type Rank struct {
	comm   *Comm
	id     int
	worker *ucx.Worker
	eps    []*ucx.Endpoint
	// scratch provides registered memory for control messages and
	// atomic results.
	scratch hostmem.Addr
}

// recvStock is the number of receive buffers kept posted per endpoint.
const recvStock = 64

// NewComm builds a communicator over every node of cl, charging setup
// costs to p. The UCX configuration decides pinned vs ODP registration
// for every window and buffer.
func NewComm(p *sim.Proc, cl *cluster.Cluster, ucfg ucx.Config) *Comm {
	n := len(cl.Nodes)
	if n < 2 {
		panic("mpi: need at least 2 nodes")
	}
	c := &Comm{cl: cl}
	for i, nic := range cl.Nodes {
		r := &Rank{comm: c, id: i, worker: ucx.NewContext(nic, ucfg).NewWorker(), eps: make([]*ucx.Endpoint, n)}
		r.scratch = nic.AS.Alloc(hostmem.PageSize)
		nic.AS.Touch(r.scratch, hostmem.PageSize)
		p.Sleep(r.worker.RegisterBuffer(r.scratch, hostmem.PageSize))
		c.ranks = append(c.ranks, r)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := ucx.Connect(c.ranks[i].worker, c.ranks[j].worker)
			c.ranks[i].eps[j] = a
			c.ranks[j].eps[i] = b
			for k := 0; k < recvStock; k++ {
				a.PostRecv(c.ranks[i].scratch, 64)
				b.PostRecv(c.ranks[j].scratch, 64)
			}
		}
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns rank i.
func (c *Comm) Rank(i int) *Rank { return c.ranks[i] }

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Send transmits length bytes from addr to rank dst (blocking standard
// send).
func (r *Rank) Send(p *sim.Proc, dst int, addr hostmem.Addr, length int) error {
	if dst == r.id {
		return fmt.Errorf("mpi: self-send not supported")
	}
	return r.eps[dst].Send(p, addr, length)
}

// Recv blocks until a message arrives and returns its length. (Matching
// by source/tag is not modelled; the experiments use disjoint traffic.)
func (r *Rank) Recv(p *sim.Proc) int {
	return r.worker.WaitRecv(p).ByteLen
}

// Barrier synchronizes all ranks (flat gather/release through rank 0).
func (r *Rank) Barrier(p *sim.Proc) error {
	n := r.comm.Size()
	if r.id == 0 {
		for i := 1; i < n; i++ {
			r.worker.WaitRecv(p)
		}
		for i := 1; i < n; i++ {
			if err := r.eps[i].Send(p, r.scratch, 8); err != nil {
				return err
			}
		}
		return nil
	}
	if err := r.eps[0].Send(p, r.scratch, 8); err != nil {
		return err
	}
	r.worker.WaitRecv(p)
	return nil
}

// Win is an RMA window: each rank exposes size bytes.
type Win struct {
	comm  *Comm
	bases []hostmem.Addr
	size  int
	// lockWords live in each rank's scratch page (offset 0).
}

// CreateWin collectively creates a window of size bytes per rank,
// allocating and registering the exposure regions (cost charged to p).
func (c *Comm) CreateWin(p *sim.Proc, size int) *Win {
	if size <= 0 {
		panic("mpi: non-positive window size")
	}
	w := &Win{comm: c, size: size}
	for i, nic := range c.cl.Nodes {
		base := nic.AS.Alloc(size)
		p.Sleep(c.ranks[i].worker.RegisterBuffer(base, size))
		w.bases = append(w.bases, base)
	}
	return w
}

// Base returns rank i's exposure region base address.
func (w *Win) Base(i int) hostmem.Addr { return w.bases[i] }

func (w *Win) check(target int, off, length int) error {
	if target < 0 || target >= w.comm.Size() {
		return fmt.Errorf("mpi: target rank %d out of range", target)
	}
	if off < 0 || length < 0 || off+length > w.size {
		return fmt.Errorf("mpi: window access [%d,%d) outside size %d", off, off+length, w.size)
	}
	return nil
}

// Put writes length bytes from origin's local addr into target's window
// at off.
func (w *Win) Put(p *sim.Proc, origin *Rank, local hostmem.Addr, target, off, length int) error {
	if err := w.check(target, off, length); err != nil {
		return err
	}
	if target == origin.id {
		return nil // local window access
	}
	return origin.eps[target].Put(p, local, w.bases[target]+hostmem.Addr(off), length)
}

// Get reads length bytes from target's window at off into origin's local
// addr.
func (w *Win) Get(p *sim.Proc, origin *Rank, local hostmem.Addr, target, off, length int) error {
	if err := w.check(target, off, length); err != nil {
		return err
	}
	if target == origin.id {
		return nil
	}
	return origin.eps[target].Get(p, local, w.bases[target]+hostmem.Addr(off), length)
}

// FetchAndAdd atomically adds value to the 8-byte word at target:off and
// returns the original value (MPI_Fetch_and_op with MPI_SUM).
func (w *Win) FetchAndAdd(p *sim.Proc, origin *Rank, target, off int, value uint64) (uint64, error) {
	if err := w.check(target, off, 8); err != nil {
		return 0, err
	}
	if target == origin.id {
		as := w.comm.cl.Nodes[target].AS
		addr := w.bases[target] + hostmem.Addr(off)
		orig := as.ReadWord(addr)
		as.WriteWord(addr, orig+value)
		return orig, nil
	}
	req := origin.eps[target].FetchAddAsync(origin.scratch, w.bases[target]+hostmem.Addr(off), value)
	return origin.worker.WaitAtomic(p, req)
}

// CompareAndSwap atomically swaps the word at target:off to swap if it
// equals compare, returning the original value (MPI_Compare_and_swap).
func (w *Win) CompareAndSwap(p *sim.Proc, origin *Rank, target, off int, compare, swap uint64) (uint64, error) {
	if err := w.check(target, off, 8); err != nil {
		return 0, err
	}
	if target == origin.id {
		as := w.comm.cl.Nodes[target].AS
		addr := w.bases[target] + hostmem.Addr(off)
		orig := as.ReadWord(addr)
		if orig == compare {
			as.WriteWord(addr, swap)
		}
		return orig, nil
	}
	req := origin.eps[target].CASAsync(origin.scratch, w.bases[target]+hostmem.Addr(off), compare, swap)
	return origin.worker.WaitAtomic(p, req)
}

// lockOff places the passive-target lock word in the window's first
// 8 bytes of rank 0's... each target rank's own window tail would collide
// with user data, so the lock lives in the target rank's scratch page,
// which is registered at communicator setup.
func (w *Win) lockAddr(target int) hostmem.Addr {
	return w.comm.ranks[target].scratch + 8
}

// Lock acquires the passive-target exclusive lock on target's window,
// spinning on a remote CAS exactly as MPICH's ucx netmod does.
func (w *Win) Lock(p *sim.Proc, origin *Rank, target int) error {
	if err := w.check(target, 0, 0); err != nil {
		return err
	}
	if target == origin.id {
		as := w.comm.cl.Nodes[target].AS
		for as.ReadWord(w.lockAddr(target)) != 0 {
			p.Sleep(50 * sim.Microsecond)
		}
		as.WriteWord(w.lockAddr(target), uint64(origin.id+1))
		return nil
	}
	for {
		req := origin.eps[target].CASAsync(origin.scratch, w.lockAddr(target), 0, uint64(origin.id+1))
		orig, err := origin.worker.WaitAtomic(p, req)
		if err != nil {
			return err
		}
		if orig == 0 {
			return nil
		}
		p.Sleep(100 * sim.Microsecond)
	}
}

// Unlock releases the passive-target lock.
func (w *Win) Unlock(p *sim.Proc, origin *Rank, target int) error {
	if err := w.check(target, 0, 0); err != nil {
		return err
	}
	if target == origin.id {
		w.comm.cl.Nodes[target].AS.WriteWord(w.lockAddr(target), 0)
		return nil
	}
	req := origin.eps[target].CASAsync(origin.scratch, w.lockAddr(target), uint64(origin.id+1), 0)
	orig, err := origin.worker.WaitAtomic(p, req)
	if err != nil {
		return err
	}
	if orig != uint64(origin.id+1) {
		return fmt.Errorf("mpi: unlock of a lock held by %d", orig)
	}
	return nil
}
