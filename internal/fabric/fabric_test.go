package fabric

import (
	"testing"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

func pair(t *testing.T, cfg Config) (*sim.Engine, *Fabric, *Port, *Port, *[]*packet.Packet, *[]*packet.Packet) {
	t.Helper()
	eng := sim.New(1)
	f := New(eng, cfg)
	var atA, atB []*packet.Packet
	a := f.AttachPort(1, "A", func(p *packet.Packet) { atA = append(atA, p) })
	b := f.AttachPort(2, "B", func(p *packet.Packet) { atB = append(atB, p) })
	return eng, f, a, b, &atA, &atB
}

func TestDelivery(t *testing.T) {
	eng, f, a, _, _, atB := pair(t, DefaultConfig())
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: 7})
	eng.Run()
	if len(*atB) != 1 {
		t.Fatalf("B received %d packets", len(*atB))
	}
	if (*atB)[0].PSN != 7 {
		t.Error("wrong packet delivered")
	}
	if (*atB)[0].SLID != 1 {
		t.Error("SLID not stamped")
	}
	if f.Delivered != 1 || f.Sent != 1 || f.Dropped != 0 {
		t.Errorf("counters: sent=%d delivered=%d dropped=%d", f.Sent, f.Delivered, f.Dropped)
	}
}

func TestDeliveryLatencyRange(t *testing.T) {
	cfg := Config{PropDelay: 2 * sim.Microsecond, BandwidthGbps: 56, DelayJitter: 0.05}
	eng, _, a, _, _, atB := pair(t, cfg)
	var at sim.Time
	eng.Go("send", func(p *sim.Proc) {
		a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2})
	})
	eng.Run()
	at = eng.Now()
	if len(*atB) != 1 {
		t.Fatal("no delivery")
	}
	// 42B at 56Gb/s = 6ns serialization; prop 2µs ±5%.
	if at < sim.Time(1900*sim.Nanosecond) || at > sim.Time(2200*sim.Nanosecond) {
		t.Errorf("delivery at %v, want ≈2µs", at)
	}
}

func TestUnknownDLIDDropped(t *testing.T) {
	eng, f, a, _, _, atB := pair(t, DefaultConfig())
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 99})
	eng.Run()
	if len(*atB) != 0 {
		t.Error("packet to unknown LID delivered")
	}
	if f.Dropped != 1 {
		t.Errorf("Dropped = %d", f.Dropped)
	}
}

func TestDropFilter(t *testing.T) {
	eng, f, a, _, _, atB := pair(t, DefaultConfig())
	f.SetDropFilter(func(p *packet.Packet) bool { return p.PSN == 1 })
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: 0})
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: 1})
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: 2})
	eng.Run()
	if len(*atB) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(*atB))
	}
	for _, p := range *atB {
		if p.PSN == 1 {
			t.Error("filtered packet delivered")
		}
	}
	f.SetDropFilter(nil)
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: 1})
	eng.Run()
	if len(*atB) != 3 {
		t.Error("clearing the filter should restore delivery")
	}
}

func TestRandomLoss(t *testing.T) {
	eng, f, a, _, _, atB := pair(t, DefaultConfig())
	f.SetLossRate(0.5)
	for i := 0; i < 1000; i++ {
		a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: uint32(i)})
	}
	eng.Run()
	n := len(*atB)
	if n < 400 || n > 600 {
		t.Errorf("with 50%% loss, delivered %d/1000", n)
	}
	if f.Dropped+f.Delivered != f.Sent {
		t.Error("counter conservation violated")
	}
}

func TestFIFOOrderingDespiteJitter(t *testing.T) {
	cfg := Config{PropDelay: 2 * sim.Microsecond, BandwidthGbps: 56, DelayJitter: 0.5}
	eng, _, a, _, _, atB := pair(t, cfg)
	for i := 0; i < 200; i++ {
		i := i
		eng.At(sim.Time(i)*10*sim.Nanosecond, func() {
			a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: uint32(i)})
		})
	}
	eng.Run()
	if len(*atB) != 200 {
		t.Fatalf("delivered %d", len(*atB))
	}
	for i, p := range *atB {
		if p.PSN != uint32(i) {
			t.Fatalf("delivery out of order at %d: PSN %d", i, p.PSN)
		}
	}
}

func TestTapSeesDrops(t *testing.T) {
	eng, f, a, _, _, _ := pair(t, DefaultConfig())
	var evs []TapEvent
	f.AddTap(func(ev TapEvent) { evs = append(evs, ev) })
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2})
	a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 77})
	eng.Run()
	if len(evs) != 2 {
		t.Fatalf("tap saw %d events", len(evs))
	}
	if evs[0].Dropped || evs[0].SrcName != "A" || evs[0].DstName != "B" {
		t.Errorf("first event wrong: %+v", evs[0])
	}
	if !evs[1].Dropped || evs[1].Reason != "unknown DLID" {
		t.Errorf("second event should be a drop: %+v", evs[1])
	}
}

func TestDuplicateLIDPanics(t *testing.T) {
	eng := sim.New(1)
	f := New(eng, DefaultConfig())
	f.AttachPort(5, "x", func(*packet.Packet) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate LID should panic")
		}
	}()
	f.AttachPort(5, "y", func(*packet.Packet) {})
}

func TestBytesCounter(t *testing.T) {
	eng, f, a, _, _, _ := pair(t, DefaultConfig())
	p := &packet.Packet{Opcode: packet.OpReadRequest, DLID: 2}
	a.Send(p)
	eng.Run()
	if f.BytesSent != uint64(p.WireSize()) {
		t.Errorf("BytesSent = %d, want %d", f.BytesSent, p.WireSize())
	}
}

func TestSerializationScalesWithSize(t *testing.T) {
	cfg := Config{PropDelay: 0, BandwidthGbps: 1, DelayJitter: 0} // 1 bit/ns
	eng, _, a, _, _, atB := pair(t, cfg)
	big := &packet.Packet{Opcode: packet.OpReadRespMiddle, PayloadLen: 4096, DLID: 2}
	a.Send(big)
	eng.Run()
	want := sim.Time(big.WireSize() * 8)
	if eng.Now() != want {
		t.Errorf("serialization of %dB at 1Gb/s took %v, want %v", big.WireSize(), eng.Now(), want)
	}
	if len(*atB) != 1 {
		t.Error("no delivery")
	}
}

func TestCongestionModelQueuesBursts(t *testing.T) {
	run := func(congested bool) sim.Time {
		cfg := Config{PropDelay: sim.Microsecond, BandwidthGbps: 1, DelayJitter: 0, ModelCongestion: congested}
		eng := sim.New(1)
		f := New(eng, cfg)
		var lastAt sim.Time
		a := f.AttachPort(1, "A", func(*packet.Packet) {})
		f.AttachPort(2, "B", func(p *packet.Packet) { lastAt = eng.Now() })
		// A burst of 10 large packets at t=0.
		for i := 0; i < 10; i++ {
			a.Send(&packet.Packet{Opcode: packet.OpReadRespMiddle, PayloadLen: 4096, DLID: 2, PSN: uint32(i)})
		}
		eng.Run()
		return lastAt
	}
	unqueued, queued := run(false), run(true)
	// Uncontended: all overlap, last arrives ≈ ser + prop. Congested:
	// the last packet waits for 9 serializations first.
	if queued < unqueued*5 {
		t.Errorf("congestion model should stretch the burst: %v vs %v", queued, unqueued)
	}
	// 10 × (4122B × 8 bits at 1 bit/ns) + 1µs ≈ 331µs.
	want := sim.Time(10*4122*8) + sim.Microsecond
	if queued != want {
		t.Errorf("queued last arrival = %v, want %v", queued, want)
	}
}

func TestCongestionPreservesOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModelCongestion = true
	cfg.DelayJitter = 0.5
	eng := sim.New(2)
	f := New(eng, cfg)
	var got []uint32
	a := f.AttachPort(1, "A", func(*packet.Packet) {})
	f.AttachPort(2, "B", func(p *packet.Packet) { got = append(got, p.PSN) })
	for i := 0; i < 100; i++ {
		a.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2, PSN: uint32(i)})
	}
	eng.Run()
	for i, psn := range got {
		if psn != uint32(i) {
			t.Fatalf("out of order at %d: %d", i, psn)
		}
	}
}
