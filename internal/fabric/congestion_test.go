package fabric

import (
	"testing"

	"odpsim/internal/congestion"
	"odpsim/internal/packet"
)

func TestCongestedDelivery(t *testing.T) {
	eng, f, a, _, _, atB := pair(t, DefaultConfig())
	f.EnableCongestion(congestion.DefaultConfig())
	for i := 0; i < 8; i++ {
		pkt := f.Pool().Get()
		pkt.Opcode = packet.OpWriteOnly
		pkt.DLID = 2
		pkt.PSN = uint32(i)
		a.Send(pkt)
	}
	eng.Run()
	if len(*atB) != 8 {
		t.Fatalf("B received %d of 8 packets", len(*atB))
	}
	for i, p := range *atB {
		if p.PSN != uint32(i) {
			t.Fatalf("FIFO broken through the switched path: got PSN %d at %d", p.PSN, i)
		}
	}
	if f.Delivered != 8 || f.Dropped != 0 {
		t.Fatalf("counters: delivered=%d dropped=%d", f.Delivered, f.Dropped)
	}
	if bal := f.Pool().Balance(); bal != 0 {
		t.Fatalf("pool balance = %d after congested run", bal)
	}
}

func TestCongestedOverflowSplitsDropReason(t *testing.T) {
	eng, f, a, _, _, atB := pair(t, DefaultConfig())
	cfg := congestion.DefaultConfig()
	cfg.BufferBytes = 256
	f.EnableCongestion(cfg)
	var tapDrops int
	f.AddTap(func(ev TapEvent) {
		if ev.Dropped {
			tapDrops++
			if ev.Reason != "switch buffer overflow" {
				t.Errorf("drop reason = %q", ev.Reason)
			}
		}
	})
	for i := 0; i < 64; i++ {
		pkt := f.Pool().Get()
		pkt.Opcode = packet.OpWriteOnly
		pkt.DLID = 2
		pkt.PayloadLen = 128
		a.Send(pkt)
	}
	eng.Run()
	if f.DropsCongestion == 0 {
		t.Fatal("no congestion drops under a 256B switch buffer")
	}
	if f.Dropped != f.DropsCongestion {
		t.Fatalf("total %d != congestion drops %d", f.Dropped, f.DropsCongestion)
	}
	if int(f.Dropped) != tapDrops {
		t.Fatalf("taps saw %d drops, counter %d", tapDrops, f.Dropped)
	}
	if len(*atB)+int(f.Dropped) != 64 {
		t.Fatalf("conservation: %d delivered + %d dropped != 64", len(*atB), f.Dropped)
	}
	if bal := f.Pool().Balance(); bal != 0 {
		t.Fatalf("pool balance = %d after drops", bal)
	}
	snap := f.Telemetry().Snapshot(eng.Now())
	if got := snap.Total("sim_fabric_packets_dropped"); got != float64(f.Dropped) {
		t.Fatalf("labeled drop series totals %v, field %d", got, f.Dropped)
	}
}

func TestPFCPauseFramesReachTaps(t *testing.T) {
	eng, f, a, _, _, _ := pair(t, DefaultConfig())
	cfg := congestion.DefaultConfig()
	cfg.PFC = true
	cfg.BufferBytes = 2048
	cfg.XOffBytes = 1024
	cfg.XOnBytes = 256
	f.EnableCongestion(cfg)
	var pauses, resumes int
	f.AddTap(func(ev TapEvent) {
		if ev.Pkt.Opcode != packet.OpPFCPause {
			return
		}
		if ev.Pkt.XOff {
			pauses++
		} else {
			resumes++
		}
	})
	for i := 0; i < 64; i++ {
		pkt := f.Pool().Get()
		pkt.Opcode = packet.OpWriteOnly
		pkt.DLID = 2
		pkt.PayloadLen = 128
		a.Send(pkt)
	}
	eng.Run()
	if pauses == 0 || pauses != resumes {
		t.Fatalf("tap saw %d pauses / %d resumes, want matched non-zero", pauses, resumes)
	}
	if f.Dropped != 0 {
		t.Fatalf("PFC run dropped %d packets", f.Dropped)
	}
	if bal := f.Pool().Balance(); bal != 0 {
		t.Fatalf("pool balance = %d (pause-frame tap packets must be returned)", bal)
	}
}

func TestDropReasonCountersOnAnalyticPath(t *testing.T) {
	eng, f, a, _, _, _ := pair(t, DefaultConfig())
	// Unroutable.
	a.Send(&packet.Packet{Opcode: packet.OpWriteOnly, DLID: 99})
	// Filtered.
	f.SetDropFilter(func(p *packet.Packet) bool { return p.PSN == 7 })
	a.Send(&packet.Packet{Opcode: packet.OpWriteOnly, DLID: 2, PSN: 7})
	f.SetDropFilter(nil)
	eng.Run()
	if f.DropsUnroutable != 1 || f.DropsFilter != 1 || f.DropsLoss != 0 {
		t.Fatalf("split = unroutable %d / filter %d / loss %d", f.DropsUnroutable, f.DropsFilter, f.DropsLoss)
	}
	if f.Dropped != 2 {
		t.Fatalf("total = %d", f.Dropped)
	}
}

func TestLossCounterOnAnalyticPath(t *testing.T) {
	eng, f, a, _, _, _ := pair(t, DefaultConfig())
	f.SetLossRate(1.0)
	a.Send(&packet.Packet{Opcode: packet.OpWriteOnly, DLID: 2})
	eng.Run()
	if f.DropsLoss != 1 || f.Dropped != 1 {
		t.Fatalf("loss split = %d, total = %d", f.DropsLoss, f.Dropped)
	}
}
