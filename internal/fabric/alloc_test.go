package fabric

import (
	"testing"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// TestAllocBudgetSendDeliver pins the warm datapath's allocation budget:
// a burst of pooled sends, delivered and recycled, must stay within 2
// allocations per burst (the occasional event-heap or free-list growth).
// This is the tentpole invariant of DESIGN.md §8 — steady-state traffic
// allocates nothing.
func TestAllocBudgetSendDeliver(t *testing.T) {
	eng := sim.New(1)
	f := New(eng, DefaultConfig())
	src := f.AttachPort(1, "src", func(*packet.Packet) {})
	f.AttachPort(2, "dst", func(*packet.Packet) {})
	pool := f.Pool()

	burst := func() {
		for i := 0; i < 64; i++ {
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = 2
			p.PSN = uint32(i)
			src.Send(p)
		}
		eng.Run()
	}
	burst() // warm the pool, delivery free list and event heap

	if avg := testing.AllocsPerRun(100, burst); avg > 2 {
		t.Errorf("warm send→deliver burst allocates %.1f/op, budget 2", avg)
	}
}

// TestAllocBudgetRebuildOnResetEngine pins the per-trial budget of the
// fabric layer itself: rebuilding a fabric with two ports on a
// Reset-reused engine draws everything — ports, LID tables, registries —
// from the engine-generation arenas.
func TestAllocBudgetRebuildOnResetEngine(t *testing.T) {
	eng := sim.New(1)
	trial := func() {
		f := New(eng, DefaultConfig())
		src := f.AttachPort(1, "src", func(*packet.Packet) {})
		f.AttachPort(2, "dst", func(*packet.Packet) {})
		pool := f.Pool()
		for i := 0; i < 16; i++ {
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = 2
			src.Send(p)
		}
		eng.Run()
		eng.Reset(1)
	}
	trial() // first trial constructs the arenas

	if avg := testing.AllocsPerRun(50, trial); avg > 2 {
		t.Errorf("rebuilt trial allocates %.1f/op, budget 2", avg)
	}
}
