package fabric

import (
	"testing"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// sendPooled draws a packet from the fabric's pool and transmits it.
func sendPooled(f *Fabric, src *Port, dlid uint16, psn uint32) *packet.Packet {
	p := f.Pool().Get()
	p.Opcode = packet.OpReadRequest
	p.DLID = dlid
	p.PSN = psn
	src.Send(p)
	return p
}

// TestPoolRecyclingUnknownDLID: a packet to an unattached LID is dropped
// at send time and returns to the pool immediately, exactly once.
func TestPoolRecyclingUnknownDLID(t *testing.T) {
	eng := sim.New(1)
	f := New(eng, DefaultConfig())
	src := f.AttachPort(1, "src", func(*packet.Packet) {})
	pool := f.Pool()

	sendPooled(f, src, 99, 0)
	if pool.Gets != 1 || pool.Puts != 1 {
		t.Fatalf("after drop at send: Gets=%d Puts=%d, want 1/1", pool.Gets, pool.Puts)
	}
	if pool.FreeLen() != 1 {
		t.Errorf("FreeLen = %d, want 1", pool.FreeLen())
	}
	eng.Run()
	if pool.Puts != 1 {
		t.Errorf("Puts grew to %d after Run: packet returned twice", pool.Puts)
	}
}

// TestPoolRecyclingDropFilter: surgically dropped packets return exactly
// once, and the recycled storage's generation counter proves reuse.
func TestPoolRecyclingDropFilter(t *testing.T) {
	eng := sim.New(1)
	f := New(eng, DefaultConfig())
	src := f.AttachPort(1, "src", func(*packet.Packet) {})
	f.AttachPort(2, "dst", func(*packet.Packet) {})
	pool := f.Pool()
	f.SetDropFilter(func(p *packet.Packet) bool { return p.PSN == 1 })

	first := sendPooled(f, src, 2, 0) // delivered
	sendPooled(f, src, 2, 1)          // filtered: dropped at send time
	eng.Run()
	if pool.Gets != 2 || pool.Puts != 2 {
		t.Fatalf("Gets=%d Puts=%d, want 2/2", pool.Gets, pool.Puts)
	}
	if pool.FreeLen() != 2 {
		t.Errorf("FreeLen = %d, want 2", pool.FreeLen())
	}

	// The next Get must reuse recycled storage (generation bumped).
	p := pool.Get()
	if p.Generation() == 0 {
		t.Error("Get after recycle returned fresh storage, want recycled")
	}
	if pool.Allocs != 2 {
		t.Errorf("Allocs = %d, want 2 (no growth past the working set)", pool.Allocs)
	}
	_ = first
}

// TestPoolRecyclingRandomLoss: under Bernoulli loss, every packet —
// delivered or lost — returns to the pool exactly once, so the ledger
// balances when the simulation drains.
func TestPoolRecyclingRandomLoss(t *testing.T) {
	eng := sim.New(1)
	f := New(eng, DefaultConfig())
	src := f.AttachPort(1, "src", func(*packet.Packet) {})
	f.AttachPort(2, "dst", func(*packet.Packet) {})
	pool := f.Pool()
	f.SetLossRate(0.5)

	// Space the sends out so each delivery (2 µs away) completes before
	// the next send: steady state, not one burst.
	const n = 1000
	for i := 0; i < n; i++ {
		i := i
		eng.At(sim.Time(i)*10*sim.Microsecond, func() {
			sendPooled(f, src, 2, uint32(i))
		})
	}
	eng.Run()
	if f.Dropped == 0 || f.Delivered == 0 {
		t.Fatalf("want both outcomes at 50%% loss: dropped=%d delivered=%d", f.Dropped, f.Delivered)
	}
	if pool.Gets != n || pool.Puts != n {
		t.Errorf("Gets=%d Puts=%d, want %d/%d (each packet returned exactly once)",
			pool.Gets, pool.Puts, n, n)
	}
	if pool.Balance() != 0 {
		t.Errorf("Balance = %d, want 0", pool.Balance())
	}
	// The working set is tiny: in-flight packets at any instant, not n.
	if int(pool.Allocs) >= n/10 {
		t.Errorf("Allocs = %d for %d sends: pool not recycling", pool.Allocs, n)
	}
}

// TestPoolAbsorbsForeignPackets: packets built outside the pool (the
// pre-pool idiom, still used by tests) are absorbed on return rather
// than leaked or double-counted.
func TestPoolAbsorbsForeignPackets(t *testing.T) {
	eng := sim.New(1)
	f := New(eng, DefaultConfig())
	src := f.AttachPort(1, "src", func(*packet.Packet) {})
	f.AttachPort(2, "dst", func(*packet.Packet) {})
	pool := f.Pool()

	src.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 2})
	src.Send(&packet.Packet{Opcode: packet.OpReadRequest, DLID: 99})
	eng.Run()
	if pool.Gets != 0 || pool.Puts != 2 {
		t.Errorf("Gets=%d Puts=%d, want 0/2", pool.Gets, pool.Puts)
	}
	if pool.Balance() != 2 {
		t.Errorf("Balance = %d, want 2 foreign packets absorbed", pool.Balance())
	}
}
