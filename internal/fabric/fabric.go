// Package fabric models the InfiniBand fabric between RNIC ports: LID
// addressing, per-hop propagation and serialization delay, strictly
// in-order delivery per (source, destination) pair as Reliable Connection
// assumes, drop-on-unknown-LID (the paper's wrong-destination-LID
// experiment), and taps that let a capture layer observe every packet the
// way ibdump does.
//
// The datapath is allocation-free once warm: packets are recycled through
// a packet.Pool attached to the engine, and scheduled arrivals reuse
// preallocated delivery events. See DESIGN.md §8 for the ownership
// contract this imposes on handlers and taps.
package fabric

import (
	"fmt"
	"strconv"

	"odpsim/internal/congestion"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// Handler receives a delivered packet on a port. The packet is a borrow:
// it is valid only until the handler returns, after which the fabric
// recycles it (DESIGN.md §8). Handlers must copy any state they keep.
type Handler func(*packet.Packet)

// Config tunes the fabric's latency model.
type Config struct {
	// PropDelay is the one-way propagation + switching delay per packet.
	// The paper cites usual round-trip latencies of a few microseconds.
	PropDelay sim.Time
	// BandwidthGbps sets the serialization rate.
	BandwidthGbps float64
	// DelayJitter is the relative jitter applied to PropDelay (delivery
	// order per source/destination pair is still preserved).
	DelayJitter float64
	// ModelCongestion serializes each port's egress: a packet cannot
	// start clocking onto the wire before the previous one finished,
	// so bursts queue and delivery times stretch under load. Off by
	// default (the paper's 2-node experiments are latency-bound, and
	// the calibration in DESIGN.md assumes uncontended links).
	ModelCongestion bool
}

// DefaultConfig models a 56 Gb/s FDR link with ~2 µs one-way latency.
func DefaultConfig() Config {
	return Config{
		PropDelay:     2 * sim.Microsecond,
		BandwidthGbps: 56,
		DelayJitter:   0.05,
	}
}

// TapEvent is one observation of a packet on the fabric. Pkt is a borrow
// valid only for the duration of the tap call — observers that keep
// packet state must copy it (capture stores Records by value).
type TapEvent struct {
	At      sim.Time
	Pkt     *packet.Packet
	SrcName string
	DstName string // empty when the packet was dropped
	Dropped bool
	Reason  string // drop reason, e.g. "unknown DLID"
}

// Tap observes every packet send.
type Tap func(TapEvent)

// Port is one RNIC attachment point.
type Port struct {
	LID     uint16
	Name    string
	fab     *Fabric
	handler Handler

	// Counters, in the sysfs port-counter vocabulary. TxPackets/TxBytes
	// count at Send time, RxPackets/RxBytes at delivery, TxDiscards on
	// any drop (unknown DLID, drop filter, random loss).
	TxPackets  uint64
	RxPackets  uint64
	TxBytes    uint64
	RxBytes    uint64
	TxDiscards uint64
}

// RegisterMetrics publishes the port counters on reg with a port label
// (the simulator models one port per device, so the port number is 1 and
// the LID distinguishes attachment points).
func (p *Port) RegisterMetrics(reg *telemetry.Registry) {
	l := telemetry.Labels{"port": "1", "lid": strconv.Itoa(int(p.LID))}
	reg.Counter(telemetry.PortXmitPackets, "packets transmitted by the port", l, &p.TxPackets)
	reg.Counter(telemetry.PortRcvPackets, "packets delivered to the port", l, &p.RxPackets)
	reg.Counter(telemetry.PortXmitData, "bytes transmitted by the port", l, &p.TxBytes)
	reg.Counter(telemetry.PortRcvData, "bytes delivered to the port", l, &p.RxBytes)
	reg.Counter(telemetry.PortXmitDiscards, "transmitted packets dropped by the fabric", l, &p.TxDiscards)
}

// delivery is one scheduled packet arrival. Deliveries are recycled
// through the fabric's free list, and fn caches the run method value, so
// scheduling an arrival allocates nothing once the list is warm — the
// closure the old datapath captured per send is gone.
type delivery struct {
	f   *Fabric
	dst *Port
	pkt *packet.Packet
	ws  uint64
	fn  func()
	// at and seq are the arrival deadline and the reserved engine
	// tie-break while the delivery waits on its pair's delay line (see
	// deliveryLine). seq is claimed at schedule time so same-instant
	// ties resolve exactly as if every delivery were in the heap.
	at  sim.Time
	seq uint64
}

// run fires one arrival: delivery counters, the handler's synchronous
// borrow, and then the packet returns to the pool.
func (d *delivery) run() {
	f, dst, pkt, ws := d.f, d.dst, d.pkt, d.ws
	// Recycle the delivery before the handler runs: handlers send
	// packets of their own (ACKs, READ responses), and those sends can
	// reuse this event immediately.
	d.dst, d.pkt = nil, nil
	f.scratch.freeDel = append(f.scratch.freeDel, d)
	f.Delivered++
	dst.RxPackets++
	dst.RxBytes += ws
	dst.handler(pkt)
	f.pool.Put(pkt)
}

// deliveryLine is one (src, dst) pair's propagation delay line. The
// per-pair FIFO clamp (lastArrival) makes arrival deadlines monotone per
// pair, so in-flight deliveries land strictly in order — only the head
// delivery holds a scheduled engine callback, and landing re-arms the
// next head. With a 2 µs wire over nanosecond-scale packet spacing this
// keeps hundreds of in-flight packets out of the event heap (heap depth
// is what every push and pop pays for).
type deliveryLine struct {
	f    *Fabric
	buf  []*delivery // power-of-two ring
	head int
	n    int
	fn   func()
}

// push appends d at the tail, growing the ring only when full.
func (l *deliveryLine) push(d *delivery) {
	if l.n == len(l.buf) {
		newCap := 2 * len(l.buf)
		if newCap == 0 {
			newCap = 8
		}
		buf := make([]*delivery, newCap)
		for i := 0; i < l.n; i++ {
			buf[i] = l.buf[(l.head+i)&(len(l.buf)-1)]
		}
		l.buf = buf
		l.head = 0
	}
	l.buf[(l.head+l.n)&(len(l.buf)-1)] = d
	l.n++
}

// land fires when the head delivery reaches the destination. The next
// flight (if any) is re-armed before the arrival runs, so its callback
// takes the earliest sequence number available at this instant.
func (l *deliveryLine) land() {
	d := l.buf[l.head]
	l.buf[l.head] = nil
	l.head = (l.head + 1) & (len(l.buf) - 1)
	l.n--
	if l.n > 0 {
		next := l.buf[l.head]
		l.f.eng.ScheduleSeq(next.at, next.seq, l.fn)
	}
	d.run()
}

// clear drops deliveries an abandoned run left in flight, recycling
// their storage (their packets are gone with the old run, matching the
// engine Reset that already dropped the line's scheduled callback).
func (l *deliveryLine) clear(s *scratch) {
	for i := 0; i < l.n; i++ {
		d := l.buf[(l.head+i)&(len(l.buf)-1)]
		l.buf[(l.head+i)&(len(l.buf)-1)] = nil
		d.dst, d.pkt = nil, nil
		s.freeDel = append(s.freeDel, d)
	}
	l.head, l.n = 0, 0
}

// scratchKey is the engine Aux key the fabric's recycled storage lives
// under. Keyed on the engine (not the fabric) so trial loops that rebuild
// the cluster per run on a Reset-reused engine keep one warm set of
// packet storage, delivery events, LID tables and ports.
const scratchKey = "fabric.scratch"

// scratch is the per-engine storage a fabric draws from. The packet pool
// and delivery free list are shared unconditionally (their objects are
// self-contained). The LID tables and port arena are claimed by the
// first fabric built in each engine generation: a second fabric on the
// same un-Reset engine allocates its own, so tests that run two fabrics
// side by side stay correct.
type scratch struct {
	pool    *packet.Pool
	freeDel []*delivery

	tableGen    uint64 // engine Generation()+1 that claimed the tables; 0 = unclaimed
	ports       []*Port
	egressFree  []sim.Time
	lastArrival [][]sim.Time
	lines       [][]*deliveryLine

	portGen  uint64
	portAll  []*Port
	portNext int
}

// scratchFor fetches or creates the engine's fabric scratch.
func scratchFor(eng *sim.Engine) *scratch {
	s, _ := eng.Aux(scratchKey).(*scratch)
	if s == nil {
		s = &scratch{pool: packet.NewPool()}
		eng.SetAux(scratchKey, s)
	}
	return s
}

// Fabric connects ports. All methods run on the simulation loop.
type Fabric struct {
	eng  *sim.Engine
	cfg  Config
	taps []Tap
	// ports, egressFree and lastArrival are dense tables indexed by LID
	// (LIDs are small integers the cluster layer assigns): ports is the
	// attachment table, egressFree is when each source port's wire
	// becomes free (ModelCongestion only), and lastArrival[src][dst]
	// enforces FIFO per pair despite delay jitter.
	ports       []*Port
	egressFree  []sim.Time
	lastArrival [][]sim.Time
	lines       [][]*deliveryLine
	// pool recycles packet storage through the datapath; the delivery
	// free list lives in the shared scratch. ownsTables records that this
	// fabric claimed the scratch's LID tables for its generation and must
	// write resized ones back.
	pool       *packet.Pool
	scratch    *scratch
	ownsTables bool
	// lossRate drops each packet independently with this probability.
	lossRate float64
	// dropFilter, when non-nil, drops packets it returns true for.
	dropFilter func(*packet.Packet) bool
	// net, when non-nil, replaces the analytic latency model with the
	// switched lossless-fabric model: accepted packets enter the switch
	// topology and come back through deliverFromNet / dropFromNet.
	net *congestion.Network
	// tel publishes the fabric-wide counters below.
	tel *telemetry.Registry

	// Counters. Dropped is the total; the Drops* fields split it by
	// reason and back the labeled sim_fabric_packets_dropped series.
	Sent            uint64
	Delivered       uint64
	Dropped         uint64
	BytesSent       uint64
	DropsLoss       uint64
	DropsUnroutable uint64
	DropsFilter     uint64
	DropsCongestion uint64
}

// New creates a fabric on engine eng.
func New(eng *sim.Engine, cfg Config) *Fabric {
	if cfg.BandwidthGbps <= 0 {
		cfg.BandwidthGbps = 56
	}
	f := &Fabric{
		eng: eng,
		cfg: cfg,
		tel: telemetry.NewRegistryOn(eng, "fabric", telemetry.Labels{"device": "fabric"}),
	}
	s := scratchFor(eng)
	f.scratch = s
	f.pool = s.pool
	if gen := eng.Generation() + 1; s.tableGen != gen {
		// First fabric of this generation: take over last run's tables,
		// cleared of their stale contents but keeping every backing array
		// (including the per-source FIFO rows).
		s.tableGen = gen
		f.ownsTables = true
		f.ports = s.ports
		f.egressFree = s.egressFree
		f.lastArrival = s.lastArrival
		f.lines = s.lines
		for i := range f.ports {
			f.ports[i] = nil
			f.egressFree[i] = 0
			row := f.lastArrival[i]
			for j := range row {
				row[j] = 0
			}
		}
		for _, row := range f.lines {
			for _, l := range row {
				if l != nil && l.n > 0 {
					l.clear(s)
				}
			}
		}
	}
	f.tel.Counter(telemetry.SimFabricPacketsSent, "packets handed to the fabric", nil, &f.Sent)
	f.tel.Counter(telemetry.SimFabricPacketsDelivered, "packets delivered to a port", nil, &f.Delivered)
	f.tel.Counter(telemetry.SimFabricBytesSent, "wire bytes handed to the fabric", nil, &f.BytesSent)
	// Drops are published per reason; Snapshot.Total over the name gives
	// the old aggregate (the Dropped field stays the Go-side total).
	f.tel.Counter(telemetry.SimFabricPacketsDropped, "packets dropped by the loss injector",
		telemetry.Labels{"reason": "loss"}, &f.DropsLoss)
	f.tel.Counter(telemetry.SimFabricPacketsDropped, "packets dropped for an unknown DLID",
		telemetry.Labels{"reason": "unroutable"}, &f.DropsUnroutable)
	f.tel.Counter(telemetry.SimFabricPacketsDropped, "packets dropped by an experiment drop filter",
		telemetry.Labels{"reason": "filter"}, &f.DropsFilter)
	f.tel.Counter(telemetry.SimFabricPacketsDropped, "packets tail-dropped by congested switches",
		telemetry.Labels{"reason": "congestion"}, &f.DropsCongestion)
	return f
}

// EnableCongestion replaces the fabric's analytic egress with the
// switched lossless-fabric model of internal/congestion: packets the
// fabric accepts traverse switch buffers, PFC and ECN before delivery.
// Call it once, after New and before traffic. Returns the network so
// callers can export its telemetry.
func (f *Fabric) EnableCongestion(cfg congestion.Config) *congestion.Network {
	if f.net != nil {
		panic("fabric: EnableCongestion called twice")
	}
	f.net = congestion.NewNetwork(f.eng, cfg, f.cfg.BandwidthGbps, f.cfg.PropDelay, congestion.Hooks{
		Deliver: f.deliverFromNet,
		Drop:    f.dropFromNet,
		Pause:   f.tapPause,
	})
	// Size the per-pair delivery tables from the graph rather than the
	// attach sequence: a multi-tier fabric hosts at least one node per
	// leaf, so pre-growing to the leaf count turns the doubling during
	// AttachPort into one cold-start growth. Warm rebuilds on a Reset
	// engine find the recycled tables already big enough.
	f.grow(len(f.net.Topology().Leaves) + 1)
	return f.net
}

// Network returns the congestion network, or nil when the analytic
// latency model is active.
func (f *Fabric) Network() *congestion.Network { return f.net }

// deliverFromNet schedules final delivery for a packet leaving the
// switched network's last hop: the fabric's jittered propagation delay
// covers the downlink wire, and the per-pair FIFO clamp is preserved
// (jitter must not reorder an RC flow).
func (f *Fabric) deliverFromNet(dstLID uint16, pkt *packet.Packet, ws int) {
	dst := f.ports[dstLID]
	at := f.eng.Now() + f.eng.Jitter(f.cfg.PropDelay, f.cfg.DelayJitter)
	if last := f.lastArrival[pkt.SLID][dstLID]; at < last {
		at = last
	}
	f.lastArrival[pkt.SLID][dstLID] = at
	d := f.getDelivery()
	d.dst, d.pkt, d.ws = dst, pkt, uint64(ws)
	f.scheduleDelivery(pkt.SLID, dstLID, d, at)
}

// dropFromNet accounts a switch tail drop. The packet was already
// tapped once at Send; the second tap event with Dropped set is how a
// capture sees that the wire copy never arrived.
func (f *Fabric) dropFromNet(srcLID uint16, pkt *packet.Packet, reason string) {
	f.Dropped++
	f.DropsCongestion++
	if src := f.ports[srcLID]; src != nil {
		src.TxDiscards++
	}
	f.emitTap(TapEvent{At: f.eng.Now(), Pkt: pkt, SrcName: f.portName(srcLID), Dropped: true, Reason: reason})
	f.pool.Put(pkt)
}

// tapPause surfaces a PFC pause/resume frame to the taps as a synthetic
// pool packet (borrowed for the tap call, returned immediately), so
// captures show pause frames the way a port mirror would.
func (f *Fabric) tapPause(from, to string, xoff bool) {
	if len(f.taps) == 0 {
		return
	}
	pkt := f.pool.Get()
	pkt.Opcode = packet.OpPFCPause
	pkt.XOff = xoff
	pkt.VL = congestion.VLData
	f.emitTap(TapEvent{At: f.eng.Now(), Pkt: pkt, SrcName: from, DstName: to})
	f.pool.Put(pkt)
}

// portName returns the attached port's name, or "" for an unknown LID.
func (f *Fabric) portName(lid uint16) string {
	if int(lid) < len(f.ports) && f.ports[lid] != nil {
		return f.ports[lid].Name
	}
	return ""
}

// Engine returns the simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Pool returns the fabric's packet pool. Senders draw transmit packets
// from it; the fabric returns every packet after final delivery or drop.
func (f *Fabric) Pool() *packet.Pool { return f.pool }

// Telemetry returns the fabric-wide counter registry (per-port counters
// live on the owning device's registry; see Port.RegisterMetrics).
func (f *Fabric) Telemetry() *telemetry.Registry { return f.tel }

// grow extends the LID-indexed tables to hold n entries.
func (f *Fabric) grow(n int) {
	if n <= len(f.ports) {
		return
	}
	// Round the capacity up so a cluster attaching LIDs one by one grows
	// each table once, not once per port.
	capHint := n
	if capHint < 16 {
		capHint = 16
	}
	if cap(f.ports) < n {
		ports := make([]*Port, len(f.ports), capHint)
		copy(ports, f.ports)
		f.ports = ports
		free := make([]sim.Time, len(f.egressFree), capHint)
		copy(free, f.egressFree)
		f.egressFree = free
		rows := make([][]sim.Time, len(f.lastArrival), capHint)
		copy(rows, f.lastArrival)
		f.lastArrival = rows
		lineRows := make([][]*deliveryLine, len(f.lines), capHint)
		copy(lineRows, f.lines)
		f.lines = lineRows
	}
	f.ports = f.ports[:n]
	f.egressFree = f.egressFree[:n]
	for i := range f.lastArrival {
		row := f.lastArrival[i]
		if cap(row) < n {
			grown := make([]sim.Time, n, capHint)
			copy(grown, row)
			f.lastArrival[i] = grown
		} else {
			f.lastArrival[i] = row[:n]
		}
	}
	for len(f.lastArrival) < n {
		f.lastArrival = append(f.lastArrival, make([]sim.Time, n, capHint))
	}
	for i := range f.lines {
		row := f.lines[i]
		if cap(row) < n {
			grown := make([]*deliveryLine, n, capHint)
			copy(grown, row)
			f.lines[i] = grown
		} else {
			f.lines[i] = row[:n]
		}
	}
	for len(f.lines) < n {
		f.lines = append(f.lines, make([]*deliveryLine, n, capHint))
	}
	if f.ownsTables {
		f.scratch.ports = f.ports
		f.scratch.egressFree = f.egressFree
		f.scratch.lastArrival = f.lastArrival
		f.scratch.lines = f.lines
	}
}

// AttachPort registers a port with the given LID. LIDs must be unique.
func (f *Fabric) AttachPort(lid uint16, name string, h Handler) *Port {
	f.grow(int(lid) + 1)
	if f.ports[lid] != nil {
		panic(fmt.Sprintf("fabric: duplicate LID %d", lid))
	}
	p := f.getPort()
	*p = Port{LID: lid, Name: name, fab: f, handler: h}
	f.ports[lid] = p
	return p
}

// getPort grabs a port from the engine-generation arena: ports handed out
// in earlier generations are free again after an engine Reset, so trial
// loops reuse the same structs. The arena index only advances within a
// generation, so two fabrics on one engine never share a port.
func (f *Fabric) getPort() *Port {
	s := f.scratch
	if gen := f.eng.Generation() + 1; s.portGen != gen {
		s.portGen = gen
		s.portNext = 0
	}
	if s.portNext < len(s.portAll) {
		p := s.portAll[s.portNext]
		s.portNext++
		return p
	}
	p := &Port{}
	s.portAll = append(s.portAll, p)
	s.portNext = len(s.portAll)
	return p
}

// AddTap registers an observer for every packet sent through the fabric.
func (f *Fabric) AddTap(t Tap) { f.taps = append(f.taps, t) }

// SetLossRate makes the fabric drop each packet independently with
// probability p (0 disables).
func (f *Fabric) SetLossRate(p float64) { f.lossRate = p }

// SetDropFilter installs a predicate that drops matching packets; nil
// clears it. Used by experiments that surgically lose one packet.
func (f *Fabric) SetDropFilter(fn func(*packet.Packet) bool) { f.dropFilter = fn }

// serialization returns the time to clock wireBytes onto the wire.
func (f *Fabric) serialization(wireBytes int) sim.Time {
	bits := float64(wireBytes * 8)
	ns := bits / f.cfg.BandwidthGbps // Gb/s == bits/ns
	return sim.Time(ns)
}

func (f *Fabric) emitTap(ev TapEvent) {
	for _, t := range f.taps {
		t(ev)
	}
}

// getDelivery pops a recycled delivery event, or allocates one with its
// run method value cached.
// scheduleDelivery queues d to land at the (already FIFO-clamped)
// deadline at on the (src, dst) pair's delay line, arming the line's
// callback only when d is the new head.
func (f *Fabric) scheduleDelivery(src, dst uint16, d *delivery, at sim.Time) {
	l := f.lines[src][dst]
	if l == nil {
		l = &deliveryLine{}
		l.fn = l.land
		f.lines[src][dst] = l
	}
	l.f = f // lines outlive per-trial fabrics, like the delivery free list
	d.at = at
	d.seq = f.eng.ReserveSeq()
	if l.n == 0 {
		f.eng.ScheduleSeq(at, d.seq, l.fn)
	}
	l.push(d)
}

func (f *Fabric) getDelivery() *delivery {
	s := f.scratch
	n := len(s.freeDel)
	if n == 0 {
		d := &delivery{f: f}
		d.fn = d.run
		return d
	}
	d := s.freeDel[n-1]
	s.freeDel[n-1] = nil
	s.freeDel = s.freeDel[:n-1]
	d.f = f // the free list outlives per-trial fabrics
	return d
}

// Send transmits pkt from the port. The SLID is stamped from the port.
// Delivery is scheduled after serialization + propagation (+jitter), with
// FIFO ordering preserved per (src,dst) LID pair. Packets to unknown LIDs
// — e.g. the wrong-LID timeout experiment — are silently dropped, as a
// real subnet discards them.
//
// Ownership of pkt transfers to the fabric: after final delivery (the
// receiving handler's return) or drop, the packet goes back to the pool.
// Packets built outside the pool are absorbed into it.
func (p *Port) Send(pkt *packet.Packet) {
	f := p.fab
	pkt.SLID = p.LID
	ws := uint64(pkt.WireSize())
	f.Sent++
	f.BytesSent += ws
	p.TxPackets++
	p.TxBytes += ws

	var dst *Port
	if int(pkt.DLID) < len(f.ports) {
		dst = f.ports[pkt.DLID]
	}
	drop := dst == nil
	reason := ""
	reasonCtr := &f.DropsUnroutable
	if drop {
		reason = "unknown DLID"
	}
	if !drop && f.dropFilter != nil && f.dropFilter(pkt) {
		drop, reason, reasonCtr = true, "drop filter", &f.DropsFilter
	}
	if !drop && f.lossRate > 0 && f.eng.Bernoulli(f.lossRate) {
		drop, reason, reasonCtr = true, "random loss", &f.DropsLoss
	}

	dstName := ""
	if dst != nil {
		dstName = dst.Name
	}
	f.emitTap(TapEvent{At: f.eng.Now(), Pkt: pkt, SrcName: p.Name, DstName: dstName, Dropped: drop, Reason: reason})
	if drop {
		f.Dropped++
		*reasonCtr++
		p.TxDiscards++
		f.pool.Put(pkt)
		return
	}

	if f.net != nil {
		// Switched egress: the network models serialization, queueing,
		// PFC and ECN; the fabric resumes at the far edge through
		// deliverFromNet / dropFromNet.
		f.net.Send(p.LID, pkt.DLID, pkt, int(ws))
		return
	}

	ser := f.serialization(int(ws))
	start := f.eng.Now()
	if f.cfg.ModelCongestion {
		// The wire clocks one packet at a time: queue behind the
		// port's previous transmission.
		if free := f.egressFree[p.LID]; free > start {
			start = free
		}
		f.egressFree[p.LID] = start + ser
	}
	at := start + ser + f.eng.Jitter(f.cfg.PropDelay, f.cfg.DelayJitter)
	if last := f.lastArrival[p.LID][pkt.DLID]; at < last {
		at = last // keep the wire FIFO
	}
	f.lastArrival[p.LID][pkt.DLID] = at
	d := f.getDelivery()
	d.dst, d.pkt, d.ws = dst, pkt, ws
	f.scheduleDelivery(p.LID, pkt.DLID, d, at)
}
