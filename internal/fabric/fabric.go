// Package fabric models the InfiniBand fabric between RNIC ports: LID
// addressing, per-hop propagation and serialization delay, strictly
// in-order delivery per (source, destination) pair as Reliable Connection
// assumes, drop-on-unknown-LID (the paper's wrong-destination-LID
// experiment), and taps that let a capture layer observe every packet the
// way ibdump does.
package fabric

import (
	"fmt"
	"strconv"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// Handler receives a delivered packet on a port.
type Handler func(*packet.Packet)

// Config tunes the fabric's latency model.
type Config struct {
	// PropDelay is the one-way propagation + switching delay per packet.
	// The paper cites usual round-trip latencies of a few microseconds.
	PropDelay sim.Time
	// BandwidthGbps sets the serialization rate.
	BandwidthGbps float64
	// DelayJitter is the relative jitter applied to PropDelay (delivery
	// order per source/destination pair is still preserved).
	DelayJitter float64
	// ModelCongestion serializes each port's egress: a packet cannot
	// start clocking onto the wire before the previous one finished,
	// so bursts queue and delivery times stretch under load. Off by
	// default (the paper's 2-node experiments are latency-bound, and
	// the calibration in DESIGN.md assumes uncontended links).
	ModelCongestion bool
}

// DefaultConfig models a 56 Gb/s FDR link with ~2 µs one-way latency.
func DefaultConfig() Config {
	return Config{
		PropDelay:     2 * sim.Microsecond,
		BandwidthGbps: 56,
		DelayJitter:   0.05,
	}
}

// TapEvent is one observation of a packet on the fabric.
type TapEvent struct {
	At      sim.Time
	Pkt     *packet.Packet
	SrcName string
	DstName string // empty when the packet was dropped
	Dropped bool
	Reason  string // drop reason, e.g. "unknown DLID"
}

// Tap observes every packet send.
type Tap func(TapEvent)

// Port is one RNIC attachment point.
type Port struct {
	LID     uint16
	Name    string
	fab     *Fabric
	handler Handler

	// Counters, in the sysfs port-counter vocabulary. TxPackets/TxBytes
	// count at Send time, RxPackets/RxBytes at delivery, TxDiscards on
	// any drop (unknown DLID, drop filter, random loss).
	TxPackets  uint64
	RxPackets  uint64
	TxBytes    uint64
	RxBytes    uint64
	TxDiscards uint64
}

// RegisterMetrics publishes the port counters on reg with a port label
// (the simulator models one port per device, so the port number is 1 and
// the LID distinguishes attachment points).
func (p *Port) RegisterMetrics(reg *telemetry.Registry) {
	l := telemetry.Labels{"port": "1", "lid": strconv.Itoa(int(p.LID))}
	reg.Counter(telemetry.PortXmitPackets, "packets transmitted by the port", l, &p.TxPackets)
	reg.Counter(telemetry.PortRcvPackets, "packets delivered to the port", l, &p.RxPackets)
	reg.Counter(telemetry.PortXmitData, "bytes transmitted by the port", l, &p.TxBytes)
	reg.Counter(telemetry.PortRcvData, "bytes delivered to the port", l, &p.RxBytes)
	reg.Counter(telemetry.PortXmitDiscards, "transmitted packets dropped by the fabric", l, &p.TxDiscards)
}

type pairKey struct{ src, dst uint16 }

// Fabric connects ports. All methods run on the simulation loop.
type Fabric struct {
	eng   *sim.Engine
	cfg   Config
	ports map[uint16]*Port
	taps  []Tap
	// lastArrival enforces FIFO per (src,dst) despite delay jitter.
	lastArrival map[pairKey]sim.Time
	// egressFree is when each source port's wire becomes free
	// (ModelCongestion only).
	egressFree map[uint16]sim.Time
	// lossRate drops each packet independently with this probability.
	lossRate float64
	// dropFilter, when non-nil, drops packets it returns true for.
	dropFilter func(*packet.Packet) bool
	// tel publishes the fabric-wide counters below.
	tel *telemetry.Registry

	// Counters.
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	BytesSent uint64
}

// New creates a fabric on engine eng.
func New(eng *sim.Engine, cfg Config) *Fabric {
	if cfg.BandwidthGbps <= 0 {
		cfg.BandwidthGbps = 56
	}
	f := &Fabric{
		eng:         eng,
		cfg:         cfg,
		ports:       make(map[uint16]*Port),
		lastArrival: make(map[pairKey]sim.Time),
		egressFree:  make(map[uint16]sim.Time),
		tel:         telemetry.NewRegistry(telemetry.Labels{"device": "fabric"}),
	}
	f.tel.Counter(telemetry.SimFabricPacketsSent, "packets handed to the fabric", nil, &f.Sent)
	f.tel.Counter(telemetry.SimFabricPacketsDelivered, "packets delivered to a port", nil, &f.Delivered)
	f.tel.Counter(telemetry.SimFabricPacketsDropped, "packets dropped in flight", nil, &f.Dropped)
	f.tel.Counter(telemetry.SimFabricBytesSent, "wire bytes handed to the fabric", nil, &f.BytesSent)
	return f
}

// Engine returns the simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Telemetry returns the fabric-wide counter registry (per-port counters
// live on the owning device's registry; see Port.RegisterMetrics).
func (f *Fabric) Telemetry() *telemetry.Registry { return f.tel }

// AttachPort registers a port with the given LID. LIDs must be unique.
func (f *Fabric) AttachPort(lid uint16, name string, h Handler) *Port {
	if _, dup := f.ports[lid]; dup {
		panic(fmt.Sprintf("fabric: duplicate LID %d", lid))
	}
	p := &Port{LID: lid, Name: name, fab: f, handler: h}
	f.ports[lid] = p
	return p
}

// AddTap registers an observer for every packet sent through the fabric.
func (f *Fabric) AddTap(t Tap) { f.taps = append(f.taps, t) }

// SetLossRate makes the fabric drop each packet independently with
// probability p (0 disables).
func (f *Fabric) SetLossRate(p float64) { f.lossRate = p }

// SetDropFilter installs a predicate that drops matching packets; nil
// clears it. Used by experiments that surgically lose one packet.
func (f *Fabric) SetDropFilter(fn func(*packet.Packet) bool) { f.dropFilter = fn }

// serialization returns the time to clock the packet onto the wire.
func (f *Fabric) serialization(p *packet.Packet) sim.Time {
	bits := float64(p.WireSize() * 8)
	ns := bits / f.cfg.BandwidthGbps // Gb/s == bits/ns
	return sim.Time(ns)
}

func (f *Fabric) emitTap(ev TapEvent) {
	for _, t := range f.taps {
		t(ev)
	}
}

// Send transmits pkt from the port. The SLID is stamped from the port.
// Delivery is scheduled after serialization + propagation (+jitter), with
// FIFO ordering preserved per (src,dst) LID pair. Packets to unknown LIDs
// — e.g. the wrong-LID timeout experiment — are silently dropped, as a
// real subnet discards them.
func (p *Port) Send(pkt *packet.Packet) {
	f := p.fab
	pkt.SLID = p.LID
	f.Sent++
	f.BytesSent += uint64(pkt.WireSize())
	p.TxPackets++
	p.TxBytes += uint64(pkt.WireSize())

	dst, ok := f.ports[pkt.DLID]
	drop := !ok
	reason := ""
	if drop {
		reason = "unknown DLID"
	}
	if !drop && f.dropFilter != nil && f.dropFilter(pkt) {
		drop, reason = true, "drop filter"
	}
	if !drop && f.lossRate > 0 && f.eng.Bernoulli(f.lossRate) {
		drop, reason = true, "random loss"
	}

	dstName := ""
	if ok {
		dstName = dst.Name
	}
	f.emitTap(TapEvent{At: f.eng.Now(), Pkt: pkt, SrcName: p.Name, DstName: dstName, Dropped: drop, Reason: reason})
	if drop {
		f.Dropped++
		p.TxDiscards++
		return
	}

	ser := f.serialization(pkt)
	start := f.eng.Now()
	if f.cfg.ModelCongestion {
		// The wire clocks one packet at a time: queue behind the
		// port's previous transmission.
		if free := f.egressFree[p.LID]; free > start {
			start = free
		}
		f.egressFree[p.LID] = start + ser
	}
	at := start + ser + f.eng.Jitter(f.cfg.PropDelay, f.cfg.DelayJitter)
	key := pairKey{p.LID, pkt.DLID}
	if last := f.lastArrival[key]; at < last {
		at = last // keep the wire FIFO
	}
	f.lastArrival[key] = at
	f.eng.At(at, func() {
		f.Delivered++
		dst.RxPackets++
		dst.RxBytes += uint64(pkt.WireSize())
		dst.handler(pkt)
	})
}
