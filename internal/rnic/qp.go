package rnic

import (
	"fmt"
	"strconv"

	"odpsim/internal/congestion"
	"odpsim/internal/hostmem"
	"odpsim/internal/irn"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// SendOp is the operation type of a send work request.
type SendOp int

// Send operations.
const (
	OpRead SendOp = iota
	OpWrite
	OpSend
)

// String implements fmt.Stringer.
func (o SendOp) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpSend:
		return "SEND"
	case OpAtomicFA:
		return "FETCH_ADD"
	case OpAtomicCS:
		return "CMP_SWAP"
	default:
		return fmt.Sprintf("SendOp(%d)", int(o))
	}
}

// SendWR is a send work request.
type SendWR struct {
	ID         uint64
	Op         SendOp
	LocalAddr  hostmem.Addr
	RemoteAddr hostmem.Addr // ignored for SEND
	Len        int
	// CompareAdd is the addend (fetch-and-add) or compare value
	// (compare-and-swap); Swap is the swap value (compare-and-swap).
	CompareAdd uint64
	Swap       uint64
}

// RecvWR is a receive work request.
type RecvWR struct {
	ID   uint64
	Addr hostmem.Addr
	Len  int
}

// ConnParams are the connection attributes the paper varies: Local ACK
// Timeout (C_ACK), Retry Count (C_retry) and the minimal RNR NAK delay.
type ConnParams struct {
	// CACK is the Local ACK Timeout exponent; 0 disables the timeout.
	CACK int
	// RetryCount is C_retry: the retransmission budget before
	// IBV_WC_RETRY_EXC_ERR.
	RetryCount int
	// MinRNRDelay is advertised in RNR NAKs this QP sends as responder.
	MinRNRDelay sim.Time
	// MaxRdAtomic caps outstanding RDMA READs (0 = device default).
	MaxRdAtomic int
	// RNRRetry is the RNR retry budget; per the InfiniBand convention 7
	// means retry forever. 0 selects the default of 7.
	RNRRetry int
}

// QPState is the (simplified) queue pair state.
type QPState int

// QP states.
const (
	QPReset QPState = iota
	QPReady         // equivalent of RTS
	QPError
)

// wqe is a send work request with the requester-side bookkeeping that the
// damming quirk and client-side ODP need.
type wqe struct {
	SendWR
	// postedPaused records that the WR was posted while the QP was in a
	// pending window (awaiting an RNR or client-fault retransmission) —
	// the packet-damming precondition.
	postedPaused bool
	// faulted marks that the client-side fault for the local buffer was
	// already registered with the ODP engine.
	faulted bool
	// nprHeld marks that the WR holds NP-RDMA frame references on its
	// local buffer (taken at first transmission, dropped when the WR
	// leaves the outstanding window). Held frames cannot evict, so READ
	// responses always find a valid translation — no discard, no blind
	// retransmission.
	nprHeld bool
}

// outReq is a transmitted, uncompleted request.
type outReq struct {
	w           *wqe
	firstPSN    uint32
	npsn        int
	attempts    int
	rnrAttempts int
	// IRN bookkeeping: sacked marks the request's arrival confirmed by
	// a SACK bitmap; retxDone guards selective retransmission to once
	// per recovery round (a persistent hole falls back to the timeout).
	sacked   bool
	retxDone bool
}

func (o *outReq) lastPSN() uint32 { return packet.PSNAdd(o.firstPSN, o.npsn-1) }

// QPStats counts requester-side events.
type QPStats struct {
	Posted             uint64
	Completed          uint64
	Timeouts           uint64
	Retransmits        uint64
	RNRNakReceived     uint64
	NakSeqReceived     uint64
	ResponsesDiscarded uint64
	ClientFaultRounds  uint64
}

// QP is a queue pair: both the requester and the responder state machines
// of one Reliable Connection endpoint.
type QP struct {
	rnic   *RNIC
	Num    uint32
	sendCQ *CQ
	recvCQ *CQ

	state  QPState
	dlid   uint16
	dqpn   uint32
	params ConnParams

	// Requester state.
	sq          []*wqe
	out         []*outReq
	nextPSN     uint32
	paused      bool
	inResume    bool
	pauseFrom   uint32
	resumeTimer sim.Timer
	toTimer     sim.Timer
	// Cached method values so arming a timer doesn't allocate a closure
	// on every timeout/pending-window entry.
	onTimeoutFn func()
	resumeFn    func()

	// DCQCN state: rate is the reaction-point limiter (nil unless the
	// device enabled DCQCN before this QP was created), lastCNP the
	// notification-point pacing clock for marked arrivals on this QP.
	rate    *congestion.RateState
	lastCNP sim.Time

	// irn is the selective-repeat transport state (nil on go-back-N
	// devices; see EnableIRN and internal/rnic/irn.go).
	irn *irn.State

	// Responder state.
	ePSN uint32
	rq   []RecvWR
	// atomicReplay caches executed atomics' original values for
	// duplicate replay (see atomics.go).
	atomicReplay map[uint32]uint64
	atomicOrder  []uint32
	// pendingAtomicOrig carries an atomic response's value into the CQE
	// built by completeThrough.
	pendingAtomicOrig uint64

	Stats QPStats
}

// registerMetrics publishes the QP's requester statistics as per-QP
// counters, the way `rdma statistic qp show` exposes them. The Stats
// fields are the live storage.
func (qp *QP) registerMetrics(reg *telemetry.Registry) {
	l := telemetry.Labels{"qpn": strconv.FormatUint(uint64(qp.Num), 10)}
	reg.Counter(telemetry.LocalAckTimeoutErr, "Local ACK Timeout expirations on the requester", l, &qp.Stats.Timeouts)
	reg.Counter(telemetry.RNRNakRetryErr, "RNR NAKs received by the requester", l, &qp.Stats.RNRNakReceived)
	reg.Counter(telemetry.PacketSeqErr, "PSN sequence error NAKs received by the requester", l, &qp.Stats.NakSeqReceived)
	reg.Counter(telemetry.SimReqPosted, "send work requests posted", l, &qp.Stats.Posted)
	reg.Counter(telemetry.SimReqCompleted, "send work requests completed", l, &qp.Stats.Completed)
	reg.Counter(telemetry.SimRetransmits, "request packets retransmitted (go-back-N sends)", l, &qp.Stats.Retransmits)
	reg.Counter(telemetry.SimResponsesDiscarded, "READ responses discarded (pending window or stale page)", l, &qp.Stats.ResponsesDiscarded)
	reg.Counter(telemetry.SimClientFaultRounds, "client-side ODP fault rounds", l, &qp.Stats.ClientFaultRounds)
}

// deliver pushes a CQE, tallying it in the device's per-status
// completion counters first.
func (qp *QP) deliver(cq *CQ, e CQE) {
	qp.rnic.countWC(e.Status)
	cq.push(e)
}

// State returns the QP state.
func (qp *QP) State() QPState { return qp.state }

// Params returns the connection parameters.
func (qp *QP) Params() ConnParams { return qp.params }

// Connect transitions the QP to the ready state, bound to the remote LID
// and QP number. It corresponds to the INIT→RTR→RTS modify sequence.
func (qp *QP) Connect(dlid uint16, dqpn uint32, params ConnParams) {
	if params.MaxRdAtomic <= 0 {
		params.MaxRdAtomic = qp.rnic.prof.MaxRdAtomic
	}
	if params.RetryCount < 0 {
		params.RetryCount = 0
	}
	if params.RNRRetry <= 0 {
		params.RNRRetry = 7
	}
	qp.dlid = dlid
	qp.dqpn = dqpn
	qp.params = params
	qp.state = QPReady
}

// Reset returns the QP to the Reset state, clearing all requester and
// responder state (ibv_modify_qp to IBV_QPS_RESET) so the application
// can reconnect and reuse it — the standard recovery path after
// IBV_WC_RETRY_EXC_ERR.
func (qp *QP) Reset() {
	qp.toTimer.Cancel()
	qp.resumeTimer.Cancel()
	if qp.state == QPReady && len(qp.out) > 0 {
		qp.rnic.busyQPs--
	}
	qp.state = QPReset
	for _, o := range qp.out {
		qp.releaseNPR(o.w)
	}
	qp.sq, qp.out, qp.rq = nil, nil, nil
	qp.nextPSN, qp.ePSN = 0, 0
	qp.paused, qp.inResume = false, false
	qp.atomicReplay, qp.atomicOrder = nil, nil
	if qp.irn != nil {
		qp.irn.RB.Init(0)
		qp.irn.TX.Init(qp.rnic.irnBDP, 0)
	}
}

// PostRecv posts a receive work request.
func (qp *QP) PostRecv(wr RecvWR) {
	qp.rq = append(qp.rq, wr)
}

// PostSend posts a send work request. On an errored QP the WR completes
// immediately with a flush error.
func (qp *QP) PostSend(wr SendWR) {
	if qp.state != QPReady {
		qp.deliver(qp.sendCQ, CQE{WRID: wr.ID, QPN: qp.Num, Status: WCFlushErr, Op: wr.Op})
		return
	}
	qp.Stats.Posted++
	w := &wqe{SendWR: wr, postedPaused: qp.paused}
	qp.sq = append(qp.sq, w)
	if !qp.paused {
		qp.pump()
	}
}

// OutstandingReads counts in-flight RDMA READs and atomics (both consume
// responder resources and share the MaxRdAtomic budget).
func (qp *QP) OutstandingReads() int {
	n := 0
	for _, o := range qp.out {
		if o.w.Op == OpRead || isAtomic(o.w.Op) {
			n++
		}
	}
	return n
}

// pump transmits queued WRs while flow-control allows.
func (qp *QP) pump() {
	if qp.irn != nil {
		qp.irnPump()
		return
	}
	if qp.paused || qp.state != QPReady {
		return
	}
	sent := false
	for len(qp.sq) > 0 {
		w := qp.sq[0]
		if (w.Op == OpRead || isAtomic(w.Op)) && qp.OutstandingReads() >= qp.params.MaxRdAtomic {
			break
		}
		qp.sq = qp.sq[1:]
		npsn := 1
		if w.Op == OpRead {
			npsn = (w.Len + qp.rnic.prof.MTU - 1) / qp.rnic.prof.MTU
			if npsn < 1 {
				npsn = 1
			}
		}
		o := &outReq{w: w, firstPSN: qp.nextPSN, npsn: npsn}
		qp.nextPSN = packet.PSNAdd(qp.nextPSN, npsn)
		if len(qp.out) == 0 {
			qp.rnic.busyQPs++
		}
		qp.out = append(qp.out, o)
		qp.sendRequest(o)
		sent = true
	}
	// Arm the Local ACK Timeout when transmissions start; an already
	// running timer keeps tracking the oldest outstanding request.
	if sent && !qp.toTimer.Pending() {
		qp.armTimeout()
	}
}

// sendRequest transmits (or retransmits) one request packet, applying the
// ConnectX-4 damming quirk: when the transmission happens as part of a
// pending-window exit batch (an RNR or client-fault resume) and the WR was
// first posted during a pending window, the packet is marked doomed — it
// shows up in a capture but the peer RNIC discards it (DESIGN.md §4.3).
// Timeout- and NAK-triggered retransmissions are unaffected, which is why
// follow-up traffic rescues dammed requests via the PSN sequence error NAK
// (§V-B) while an idle QP has to ride out the full timeout.
//
// The return value reports whether the packet actually went to the wire
// (or was booked for a paced future send); false means the DCQCN TX
// backlog shed it. Retransmission accounting counts wire sends only —
// the counters mirror what a capture or the mlx5 hardware counters see,
// and a shed packet never left the NIC.
func (qp *QP) sendRequest(o *outReq) bool {
	// NP-RDMA local translation: the driver migrates the WR's local
	// buffer into the DMA-able pool and references its frames before the
	// first transmission. Cold pages stall the send by the synchronous
	// migration time; warm pages cost nothing. The nil check is the only
	// hot-path cost in pin/odp modes.
	var nprStall sim.Time
	if pool := qp.rnic.npr; pool != nil && !o.w.nprHeld {
		if kind, ok := qp.rnic.lookupMR(o.w.LocalAddr, o.w.Len); ok && kind == KindNPR {
			nprStall = pool.Acquire(o.w.LocalAddr, o.w.Len)
			o.w.nprHeld = true
		}
	}
	pkt := qp.rnic.pool.Get()
	pkt.DLID = qp.dlid
	pkt.DestQP = qp.dqpn
	pkt.SrcQP = qp.Num
	pkt.PSN = o.firstPSN
	pkt.AckReq = true
	switch o.w.Op {
	case OpRead:
		pkt.Opcode = packet.OpReadRequest
		pkt.RemoteAddr = uint64(o.w.RemoteAddr)
		pkt.DMALen = uint32(o.w.Len)
	case OpWrite:
		pkt.Opcode = packet.OpWriteOnly
		pkt.RemoteAddr = uint64(o.w.RemoteAddr)
		pkt.DMALen = uint32(o.w.Len)
		pkt.PayloadLen = o.w.Len
	case OpSend:
		pkt.Opcode = packet.OpSendOnly
		pkt.PayloadLen = o.w.Len
	case OpAtomicFA, OpAtomicCS:
		buildAtomicPacket(pkt, o.w)
	}
	if qp.rnic.prof.DammingQuirk && o.w.postedPaused {
		if qp.inResume {
			// Every transmission that happens as part of a replay
			// batch is corrupted for a WR that entered the queue
			// during a pending window — Figure 5 shows the loss
			// repeating until a timeout- or NAK-triggered path takes
			// over.
			pkt.DammingDoomed = true
		} else {
			// Once the WR goes out through the ordinary send path
			// (timeout/NAK retransmission or a pump after progress)
			// it is no longer entangled with the replay state.
			o.w.postedPaused = false
		}
	}
	if nprStall > 0 {
		// A cold-buffer send leaves the NIC only after the driver
		// migration completes (cold path: the deferred closure follows
		// the sendPaced precedent and owns the packet until Send).
		port := qp.rnic.Port
		qp.rnic.eng.ScheduleAfter(nprStall, func() { port.Send(pkt) })
		return true
	}
	return qp.sendPaced(pkt)
}

// sendPaced transmits through the QP's DCQCN rate limiter: at line rate
// the packet goes straight to the port (no closure, no timer — the
// zero-allocation datapath is untouched unless a CNP has actually cut
// this QP's rate); when limited, transmission is deferred to the rate
// credit's start time. A full TX backlog sheds the packet (returning
// false) — go-back-N storms would otherwise book unbounded future sends
// — and recovery is left to the timeout/NAK machinery that generated
// the burst.
func (qp *QP) sendPaced(pkt *packet.Packet) bool {
	if qp.rate != nil {
		now := qp.rnic.eng.Now()
		start, ok := qp.rate.Reserve(now, pkt.WireSize())
		if !ok {
			qp.rnic.pool.Put(pkt)
			return false
		}
		if start > now {
			port := qp.rnic.Port
			qp.rnic.eng.Schedule(start, func() { port.Send(pkt) })
			return true
		}
	}
	qp.rnic.Port.Send(pkt)
	return true
}

// armTimeout (re)arms the Local ACK Timeout for the oldest outstanding
// request. CACK == 0 disables timeouts per the specification.
func (qp *QP) armTimeout() {
	qp.toTimer.Cancel()
	if qp.params.CACK == 0 || len(qp.out) == 0 || qp.paused || qp.state != QPReady {
		return
	}
	to := qp.rnic.prof.DrawTimeout(qp.rnic.eng, qp.params.CACK, qp.rnic.busyQPs)
	qp.toTimer = qp.rnic.eng.After(to, qp.onTimeoutFn)
}

func (qp *QP) onTimeout() {
	if len(qp.out) == 0 || qp.state != QPReady {
		return
	}
	if qp.irn != nil {
		qp.irnOnTimeout()
		return
	}
	o := qp.out[0]
	o.attempts++
	qp.Stats.Timeouts++
	if o.attempts > qp.params.RetryCount {
		qp.fatal(o, WCRetryExcErr)
		return
	}
	qp.retransmitFrom(o.firstPSN)
	qp.armTimeout()
}

// retransmitFrom resends every outstanding request at or after psn
// (go-back-N). Only packets that reach the wire count as
// retransmissions; sends shed by a full DCQCN TX backlog do not.
func (qp *QP) retransmitFrom(psn uint32) {
	for _, o := range qp.out {
		if packet.PSNDiff(o.lastPSN(), psn) >= 0 {
			if qp.sendRequest(o) {
				qp.Stats.Retransmits++
			}
		}
	}
}

// enterPending puts the requester into a pending window: the send engine
// is suspended, arriving READ responses are discarded, and at the end of
// the window everything from fromPSN is retransmitted and newly posted
// WRs go out (the batch the damming quirk strikes).
func (qp *QP) enterPending(delay sim.Time, fromPSN uint32) {
	qp.paused = true
	qp.pauseFrom = fromPSN
	qp.toTimer.Cancel()
	qp.resumeTimer.Cancel()
	qp.resumeTimer = qp.rnic.eng.After(delay, qp.resumeFn)
}

func (qp *QP) resumePending() {
	if qp.state != QPReady {
		return
	}
	qp.paused = false
	qp.inResume = true
	qp.retransmitFrom(qp.pauseFrom)
	qp.pump()
	qp.inResume = false
	qp.armTimeout()
}

// findOut locates the outstanding request containing psn.
func (qp *QP) findOut(psn uint32) *outReq {
	for _, o := range qp.out {
		d := packet.PSNDiff(psn, o.firstPSN)
		if d >= 0 && d < o.npsn {
			return o
		}
	}
	return nil
}

// localIsODP reports whether the WR's local buffer lies in an ODP
// registration (client-side ODP applies to its READ responses). NPR
// locals return false on purpose: their translations are driver-held
// for the WR's lifetime, so the client-fault discard path never runs.
func (qp *QP) localIsODP(w *wqe) bool {
	kind, ok := qp.rnic.lookupMR(w.LocalAddr, w.Len)
	return ok && kind == KindODP
}

// releaseNPR drops the WR's NP-RDMA frame references once it leaves
// the outstanding window (completion, fatal error or reset).
func (qp *QP) releaseNPR(w *wqe) {
	if w.nprHeld {
		w.nprHeld = false
		qp.rnic.npr.Release(w.LocalAddr, w.Len)
	}
}

// requesterReceive handles responses and acknowledges.
func (qp *QP) requesterReceive(pkt *packet.Packet) {
	if qp.state != QPReady {
		return
	}
	switch {
	case pkt.Opcode == packet.OpAcknowledge:
		qp.handleAck(pkt)
	case pkt.Opcode == packet.OpSACK:
		qp.irnHandleSack(pkt)
	case pkt.Opcode == packet.OpAtomicResp:
		qp.handleAtomicResp(pkt)
	case pkt.Opcode.IsReadResponse():
		qp.handleReadResponse(pkt)
	}
}

func (qp *QP) handleAck(pkt *packet.Packet) {
	switch pkt.Syndrome {
	case packet.SynACK:
		qp.ackThrough(pkt.AckPSN)
	case packet.SynRNRNAK:
		if qp.irn != nil {
			qp.irnHandleRNR(pkt)
			return
		}
		qp.Stats.RNRNakReceived++
		if qp.paused {
			return
		}
		if o := qp.findOut(pkt.AckPSN); o != nil && qp.params.RNRRetry < 7 {
			o.rnrAttempts++
			if o.rnrAttempts > qp.params.RNRRetry {
				qp.fatal(o, WCRNRRetryExcErr)
				return
			}
		}
		// The requester waits noticeably longer than the advertised
		// minimum (observed ≈3.5× on ConnectX-4, Figure 1).
		wait := qp.rnic.eng.Jitter(
			sim.Time(float64(pkt.RNRTimerNs)*qp.rnic.prof.RNRWaitFactor), 0.05)
		qp.enterPending(wait, pkt.AckPSN)
	case packet.SynNAKSeqErr:
		qp.Stats.NakSeqReceived++
		if qp.paused {
			return
		}
		qp.retransmitFrom(pkt.AckPSN)
		qp.armTimeout()
	case packet.SynNAKRemoteAccessErr:
		if o := qp.findOut(pkt.AckPSN); o != nil {
			qp.fatal(o, WCRemoteAccessErr)
		}
	}
}

func (qp *QP) handleReadResponse(pkt *packet.Packet) {
	if qp.paused {
		// Responses that arrive during a pending window are discarded
		// (observed via ibdump, Figure 1). Discards whose local page
		// status is stale still cost ODP pipeline work — under
		// go-back-N every outstanding READ's re-executed response
		// lands here, which is a large share of the flood load.
		qp.Stats.ResponsesDiscarded++
		if o := qp.findOut(pkt.PSN); o != nil && o.w.faulted &&
			qp.localIsODP(o.w) && !qp.rnic.ODP.Access(qp.Num, o.w.LocalAddr, o.w.Len) {
			qp.rnic.ODP.Spurious(qp.Num, o.w.LocalAddr, o.w.Len)
		}
		return
	}
	o := qp.findOut(pkt.PSN)
	if o == nil {
		return // ghost or duplicate response
	}
	if qp.localIsODP(o.w) && !qp.rnic.ODP.Access(qp.Num, o.w.LocalAddr, o.w.Len) {
		if qp.irn != nil {
			// IRN: only the faulting READ retries; no pending window.
			qp.irnClientFault(o)
			return
		}
		// Client-side ODP: the RNIC cannot scatter the payload, drops
		// the response, and schedules a blind retransmission of the
		// request — over and over until the page status update lands.
		qp.Stats.ResponsesDiscarded++
		qp.Stats.ClientFaultRounds++
		if !o.w.faulted {
			o.w.faulted = true
			qp.rnic.ODP.Fault(qp.Num, o.w.LocalAddr, o.w.Len)
		} else {
			qp.rnic.ODP.Spurious(qp.Num, o.w.LocalAddr, o.w.Len)
		}
		delay := qp.rnic.eng.Jitter(qp.rnic.ODP.RetransInterval(), 0.1)
		qp.enterPending(delay, o.firstPSN)
		return
	}
	last := pkt.Opcode == packet.OpReadRespOnly || pkt.Opcode == packet.OpReadRespLast
	if last && pkt.PSN == o.lastPSN() {
		qp.completeThrough(o)
	}
}

// completeThrough completes every outstanding request up to and including
// o (a READ response implicitly acknowledges everything before it).
func (qp *QP) completeThrough(o *outReq) {
	for len(qp.out) > 0 {
		h := qp.out[0]
		if packet.PSNDiff(h.lastPSN(), o.lastPSN()) > 0 {
			break
		}
		qp.out = qp.out[1:]
		qp.releaseNPR(h.w)
		qp.Stats.Completed++
		cqe := CQE{WRID: h.w.ID, QPN: qp.Num, Status: WCSuccess, Op: h.w.Op, ByteLen: h.w.Len}
		if isAtomic(h.w.Op) {
			cqe.AtomicOrig = qp.pendingAtomicOrig
		}
		qp.deliver(qp.sendCQ, cqe)
	}
	if qp.irn != nil {
		qp.irnReleaseTX()
	}
	qp.afterProgress()
}

// ackThrough completes non-READ requests acknowledged by psn. READs only
// complete when their response data arrives.
func (qp *QP) ackThrough(psn uint32) {
	progressed := false
	for len(qp.out) > 0 {
		h := qp.out[0]
		if h.w.Op == OpRead || isAtomic(h.w.Op) || packet.PSNDiff(h.lastPSN(), psn) > 0 {
			break
		}
		qp.out = qp.out[1:]
		qp.releaseNPR(h.w)
		qp.Stats.Completed++
		qp.deliver(qp.sendCQ, CQE{WRID: h.w.ID, QPN: qp.Num, Status: WCSuccess, Op: h.w.Op, ByteLen: h.w.Len})
		progressed = true
	}
	if progressed {
		if qp.irn != nil {
			qp.irnReleaseTX()
		}
		qp.afterProgress()
	}
}

func (qp *QP) afterProgress() {
	if len(qp.out) == 0 {
		qp.rnic.busyQPs--
		qp.toTimer.Cancel()
	} else {
		qp.armTimeout()
	}
	qp.pump()
}

// fatal moves the QP to the Error state: the culprit WR completes with
// status, everything else flushes.
func (qp *QP) fatal(culprit *outReq, status WCStatus) {
	qp.state = QPError
	qp.toTimer.Cancel()
	qp.resumeTimer.Cancel()
	if len(qp.out) > 0 {
		qp.rnic.busyQPs--
	}
	qp.deliver(qp.sendCQ, CQE{WRID: culprit.w.ID, QPN: qp.Num, Status: status, Op: culprit.w.Op})
	for _, o := range qp.out {
		qp.releaseNPR(o.w)
		if o != culprit {
			qp.deliver(qp.sendCQ, CQE{WRID: o.w.ID, QPN: qp.Num, Status: WCFlushErr, Op: o.w.Op})
		}
	}
	for _, w := range qp.sq {
		qp.deliver(qp.sendCQ, CQE{WRID: w.ID, QPN: qp.Num, Status: WCFlushErr, Op: w.Op})
	}
	qp.out = nil
	qp.sq = nil
}
