package rnic

import (
	"testing"

	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
)

// TestReliabilityUnderRandomLoss is the core RC guarantee: with a
// retransmission budget, every operation completes exactly once despite
// random packet loss, in order.
func TestReliabilityUnderRandomLoss(t *testing.T) {
	for _, loss := range []float64{0.01, 0.05, 0.2} {
		for seed := int64(0); seed < 3; seed++ {
			p := defaultParams()
			p.RetryCount = 7
			h := newHarness(t, 100+seed, ConnectX4(), noODP, p)
			h.fab.SetLossRate(loss)
			const n = 40
			for i := 0; i < n; i++ {
				op := OpRead
				if i%3 == 1 {
					op = OpWrite
				}
				off := hostmem.Addr(i % (bufPages * hostmem.PageSize / 128) * 128)
				h.qpC.PostSend(SendWR{ID: uint64(i), Op: op, LocalAddr: h.lbuf + off, RemoteAddr: h.rbuf + off, Len: 64})
			}
			h.eng.Run()
			cqes := h.cqC.Poll(0)
			if len(cqes) != n {
				t.Fatalf("loss=%v seed=%d: %d/%d completions", loss, seed, len(cqes), n)
			}
			seen := map[uint64]bool{}
			for _, e := range cqes {
				if e.Status != WCSuccess {
					t.Fatalf("loss=%v seed=%d: completion %d failed: %s", loss, seed, e.WRID, e.Status)
				}
				if seen[e.WRID] {
					t.Fatalf("duplicate completion for WR %d", e.WRID)
				}
				seen[e.WRID] = true
			}
		}
	}
}

// TestCompletionOrderPreserved: RC delivers completions in posting order
// on one QP, regardless of retransmissions.
func TestCompletionOrderPreserved(t *testing.T) {
	p := defaultParams()
	h := newHarness(t, 200, ConnectX4(), noODP, p)
	h.fab.SetLossRate(0.1)
	const n = 30
	for i := 0; i < n; i++ {
		h.qpC.PostSend(SendWR{ID: uint64(i), Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 32})
	}
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != n {
		t.Fatalf("%d completions", len(cqes))
	}
	for i, e := range cqes {
		if e.WRID != uint64(i) {
			t.Fatalf("completion %d has WRID %d (out of order)", i, e.WRID)
		}
	}
}

// TestODPUnderRandomLoss combines both failure sources: ODP faults plus
// random loss; reliability must still hold.
func TestODPUnderRandomLoss(t *testing.T) {
	p := defaultParams()
	h := newHarness(t, 300, ConnectX4(), bothODP, p)
	h.fab.SetLossRate(0.05)
	const n = 16
	for i := 0; i < n; i++ {
		off := hostmem.Addr(i * 256)
		h.qpC.PostSend(SendWR{ID: uint64(i), Op: OpRead, LocalAddr: h.lbuf + off, RemoteAddr: h.rbuf + off, Len: 128})
	}
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	ok := 0
	for _, e := range cqes {
		if e.Status == WCSuccess {
			ok++
		}
	}
	if ok != n {
		t.Fatalf("%d/%d succeeded: %+v", ok, n, cqes)
	}
}

// TestDeterminismUnderLoss: identical seeds give identical packet counts
// even with random loss and ODP.
func TestDeterminismUnderLoss(t *testing.T) {
	run := func() (uint64, sim.Time) {
		h := newHarness(t, 400, ConnectX4(), bothODP, defaultParams())
		h.fab.SetLossRate(0.1)
		for i := 0; i < 10; i++ {
			h.qpC.PostSend(SendWR{ID: uint64(i), Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 64})
		}
		h.eng.Run()
		return h.fab.Sent, h.eng.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Errorf("non-deterministic: (%d,%v) vs (%d,%v)", s1, t1, s2, t2)
	}
}

// TestManyNodesStar: one client talking to several servers concurrently
// over separate QPs; fabric routing and per-QP state must not interfere.
func TestManyNodesStar(t *testing.T) {
	eng := sim.New(500)
	fab := fabric.New(eng, fabric.DefaultConfig())
	const servers = 5
	client := New(fab, 1, "client", ConnectX4(), hostmem.DefaultConfig())
	cq := NewCQ(eng)
	lbuf := client.AS.Alloc(servers * hostmem.PageSize)
	client.RegisterMR(lbuf, servers*hostmem.PageSize)

	for s := 0; s < servers; s++ {
		srv := New(fab, uint16(2+s), "server", ConnectX4(), hostmem.DefaultConfig())
		rbuf := srv.AS.Alloc(hostmem.PageSize)
		srv.RegisterMR(rbuf, hostmem.PageSize)
		scq := NewCQ(eng)
		qc := client.CreateQP(cq, cq)
		qs := srv.CreateQP(scq, scq)
		ConnectPair(qc, qs, defaultParams(), defaultParams())
		for i := 0; i < 4; i++ {
			qc.PostSend(SendWR{ID: uint64(s*100 + i), Op: OpRead,
				LocalAddr: lbuf + hostmem.Addr(s)*hostmem.PageSize, RemoteAddr: rbuf, Len: 64})
		}
	}
	eng.Run()
	cqes := cq.Poll(0)
	if len(cqes) != servers*4 {
		t.Fatalf("completions = %d, want %d", len(cqes), servers*4)
	}
	for _, e := range cqes {
		if e.Status != WCSuccess {
			t.Fatalf("failed: %+v", e)
		}
	}
}

// TestInvalidationMidTraffic: releasing pages under an active ODP MR
// invalidates translations; subsequent READs re-fault and succeed.
func TestInvalidationMidTraffic(t *testing.T) {
	h := newHarness(t, 600, ConnectX4(), serverODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 64})
	h.eng.Run()
	if len(h.cqC.Poll(0)) != 1 {
		t.Fatal("first READ failed")
	}
	faultsBefore := h.server.AS.FaultsResolved

	// The kernel reclaims the page (memory pressure).
	h.server.AS.Release(h.rbuf, hostmem.PageSize)

	h.qpC.PostSend(SendWR{ID: 2, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 64})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("post-invalidation READ: %+v", cqes)
	}
	if h.server.AS.FaultsResolved <= faultsBefore {
		t.Error("the invalidated page must fault again")
	}
}

// TestBackToBackBidirectional: both sides issue READs to each other on the
// same QP pair simultaneously (each QP is requester and responder at
// once).
func TestBackToBackBidirectional(t *testing.T) {
	h := newHarness(t, 700, ConnectX4(), noODP, defaultParams())
	// Register reverse-direction MRs.
	h.client.RegisterMR(h.lbuf+4*hostmem.PageSize, hostmem.PageSize)
	for i := 0; i < 10; i++ {
		h.qpC.PostSend(SendWR{ID: uint64(i), Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 64})
		h.qpS.PostSend(SendWR{ID: uint64(100 + i), Op: OpRead, LocalAddr: h.rbuf, RemoteAddr: h.lbuf + 4*hostmem.PageSize, Len: 64})
	}
	h.eng.Run()
	if n := h.cqC.Poll(0); len(n) != 10 {
		t.Errorf("client completions = %d", len(n))
	}
	if n := h.cqS.Poll(0); len(n) != 10 {
		t.Errorf("server completions = %d", len(n))
	}
}
