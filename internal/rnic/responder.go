package rnic

import (
	"odpsim/internal/hostmem"
	"odpsim/internal/packet"
)

// responderReceive handles inbound requests: PSN sequencing, translation
// (with server-side ODP faults answered by RNR NAK), execution and
// acknowledgement.
func (qp *QP) responderReceive(pkt *packet.Packet) {
	if qp.state != QPReady {
		return
	}
	r := qp.rnic
	if pkt.DammingDoomed {
		// The ConnectX-4 quirk: the packet reached the wire but the
		// RNIC discards it without processing or NAK — the expected
		// PSN stays where it was, damming everything behind it.
		r.DammedDrops++
		return
	}
	d := packet.PSNDiff(pkt.PSN, qp.ePSN)
	if d > 0 {
		// A gap: an earlier request was lost. NAK with the PSN we
		// expected so the requester retransmits from there (Figure 8).
		r.NakSeqSent++
		qp.sendAck(packet.SynNAKSeqErr, qp.ePSN)
		return
	}
	dup := d < 0
	if dup {
		r.DuplicateRequests++
	}

	switch pkt.Opcode {
	case packet.OpReadRequest:
		qp.respondRead(pkt, dup)
	case packet.OpWriteOnly:
		qp.respondWrite(pkt, dup)
	case packet.OpSendOnly:
		qp.respondSend(pkt, dup)
	case packet.OpFetchAdd, packet.OpCmpSwap:
		qp.respondAtomic(pkt, dup)
	}
}

// translateRemote checks responder-side access to the range; on an ODP
// miss it registers the fault (or spurious re-access) and reports false.
func (qp *QP) translateRemote(addr hostmem.Addr, length int) bool {
	r := qp.rnic
	reg, ok := r.lookupMR(addr, length)
	if !ok {
		return false // protection error, handled by caller
	}
	if !reg {
		return true // pinned region: always translatable
	}
	if r.ODP.Access(qp.Num, addr, length) {
		return true
	}
	// Re-arrivals while the fault is pending are free on the responder:
	// the server is stateless — it just NAKs again and "the requests
	// that cannot be processed can be completely ignored" (§VI-C). Only
	// the client-side discard path loads the ODP pipeline.
	r.ODP.Fault(qp.Num, addr, length)
	return false
}

func (qp *QP) respondRead(pkt *packet.Packet, dup bool) {
	r := qp.rnic
	addr := hostmem.Addr(pkt.RemoteAddr)
	length := int(pkt.DMALen)
	if _, ok := r.lookupMR(addr, length); !ok {
		qp.sendAck(packet.SynNAKRemoteAccessErr, pkt.PSN)
		return
	}
	if !qp.translateRemote(addr, length) {
		// Server-side ODP: suspend the requester; the reliability of
		// RC leaves the request on the requester side, so nothing
		// needs to be stored here (§III-B).
		r.RNRNakSent++
		qp.sendRNRNak(pkt.PSN)
		return
	}
	npsn := (length + r.prof.MTU - 1) / r.prof.MTU
	if npsn < 1 {
		npsn = 1
	}
	if !dup {
		qp.ePSN = packet.PSNAdd(pkt.PSN, npsn)
	}
	r.ReadsExecuted++
	qp.sendReadResponse(pkt.PSN, length, npsn)
}

func (qp *QP) respondWrite(pkt *packet.Packet, dup bool) {
	r := qp.rnic
	addr := hostmem.Addr(pkt.RemoteAddr)
	length := int(pkt.DMALen)
	if _, ok := r.lookupMR(addr, length); !ok {
		qp.sendAck(packet.SynNAKRemoteAccessErr, pkt.PSN)
		return
	}
	if !qp.translateRemote(addr, length) {
		r.RNRNakSent++
		qp.sendRNRNak(pkt.PSN)
		return
	}
	if !dup {
		qp.ePSN = packet.PSNAdd(pkt.PSN, 1)
	}
	r.WritesExecuted++
	if pkt.AckReq {
		qp.sendAck(packet.SynACK, pkt.PSN)
	}
}

func (qp *QP) respondSend(pkt *packet.Packet, dup bool) {
	r := qp.rnic
	if dup {
		// Already consumed a receive buffer for it; just re-ACK.
		qp.sendAck(packet.SynACK, pkt.PSN)
		return
	}
	if len(qp.rq) == 0 {
		// The genuine Receiver-Not-Ready condition.
		r.RNRNakSent++
		r.OutOfBuffer++
		qp.sendRNRNak(pkt.PSN)
		return
	}
	rwr := qp.rq[0]
	if !qp.translateRemote(rwr.Addr, pkt.PayloadLen) {
		r.RNRNakSent++
		qp.sendRNRNak(pkt.PSN)
		return
	}
	qp.rq = qp.rq[1:]
	qp.ePSN = packet.PSNAdd(pkt.PSN, 1)
	qp.deliver(qp.recvCQ, CQE{WRID: rwr.ID, QPN: qp.Num, Status: WCSuccess, Op: OpSend, ByteLen: pkt.PayloadLen, Recv: true})
	qp.sendAck(packet.SynACK, pkt.PSN)
}

// sendAck emits an Acknowledge with the given syndrome for psn.
func (qp *QP) sendAck(syn packet.Syndrome, psn uint32) {
	pkt := qp.rnic.pool.Get()
	pkt.DLID = qp.dlid
	pkt.DestQP = qp.dqpn
	pkt.SrcQP = qp.Num
	pkt.Opcode = packet.OpAcknowledge
	pkt.Syndrome = syn
	pkt.PSN = psn
	pkt.AckPSN = psn
	qp.rnic.Port.Send(pkt)
}

// sendRNRNak emits an RNR NAK advertising this QP's minimal RNR NAK delay.
func (qp *QP) sendRNRNak(psn uint32) {
	pkt := qp.rnic.pool.Get()
	pkt.DLID = qp.dlid
	pkt.DestQP = qp.dqpn
	pkt.SrcQP = qp.Num
	pkt.Opcode = packet.OpAcknowledge
	pkt.Syndrome = packet.SynRNRNAK
	pkt.PSN = psn
	pkt.AckPSN = psn
	pkt.RNRTimerNs = int64(qp.params.MinRNRDelay)
	qp.rnic.Port.Send(pkt)
}

// sendReadResponse streams the READ payload back as one or more response
// packets with consecutive PSNs.
func (qp *QP) sendReadResponse(firstPSN uint32, length, npsn int) {
	mtu := qp.rnic.prof.MTU
	for i := 0; i < npsn; i++ {
		chunk := length - i*mtu
		if chunk > mtu {
			chunk = mtu
		}
		if chunk < 0 {
			chunk = 0
		}
		var op packet.Opcode
		switch {
		case npsn == 1:
			op = packet.OpReadRespOnly
		case i == 0:
			op = packet.OpReadRespFirst
		case i == npsn-1:
			op = packet.OpReadRespLast
		default:
			op = packet.OpReadRespMiddle
		}
		pkt := qp.rnic.pool.Get()
		pkt.DLID = qp.dlid
		pkt.DestQP = qp.dqpn
		pkt.SrcQP = qp.Num
		pkt.Opcode = op
		pkt.PSN = packet.PSNAdd(firstPSN, i)
		pkt.AckPSN = packet.PSNAdd(firstPSN, i)
		pkt.Syndrome = packet.SynACK
		pkt.PayloadLen = chunk
		// READ responses are the data-bearing direction of a READ
		// workload, so they flow through the same DCQCN limiter.
		qp.sendPaced(pkt)
	}
}
