package rnic

import (
	"odpsim/internal/hostmem"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// responderReceive handles inbound requests: PSN sequencing, translation
// (with server-side ODP faults answered by RNR NAK), execution and
// acknowledgement.
func (qp *QP) responderReceive(pkt *packet.Packet) {
	if qp.state != QPReady {
		return
	}
	r := qp.rnic
	if pkt.DammingDoomed {
		// The ConnectX-4 quirk: the packet reached the wire but the
		// RNIC discards it without processing or NAK — the expected
		// PSN stays where it was, damming everything behind it.
		r.DammedDrops++
		return
	}
	if qp.irn != nil {
		qp.irnResponderReceive(pkt)
		return
	}
	d := packet.PSNDiff(pkt.PSN, qp.ePSN)
	if d > 0 {
		// A gap: an earlier request was lost. NAK with the PSN we
		// expected so the requester retransmits from there (Figure 8).
		r.NakSeqSent++
		qp.sendAck(packet.SynNAKSeqErr, qp.ePSN)
		return
	}
	dup := d < 0
	if dup {
		r.DuplicateRequests++
	}

	switch pkt.Opcode {
	case packet.OpReadRequest:
		qp.respondRead(pkt, dup)
	case packet.OpWriteOnly:
		qp.respondWrite(pkt, dup)
	case packet.OpSendOnly:
		qp.respondSend(pkt, dup)
	case packet.OpFetchAdd, packet.OpCmpSwap:
		qp.respondAtomic(pkt, dup)
	}
}

// translateRemote checks responder-side access to the range. On an ODP
// miss it registers the fault (or spurious re-access) and reports
// ok=false — the RNR NAK path. An NP-RDMA region always translates
// (ok=true) but may return a nonzero stall: the driver migrates the
// cold pages synchronously and the response leaves that much later.
// The NIC never sees a miss, so no NAK, no pending window, no damming.
func (qp *QP) translateRemote(addr hostmem.Addr, length int) (ok bool, stall sim.Time) {
	r := qp.rnic
	kind, found := r.lookupMR(addr, length)
	if !found {
		return false, 0 // protection error, handled by caller
	}
	switch kind {
	case KindPinned:
		return true, 0 // pinned region: always translatable
	case KindNPR:
		return true, r.npr.EnsureRange(addr, length)
	}
	if r.ODP.Access(qp.Num, addr, length) {
		return true, 0
	}
	// Re-arrivals while the fault is pending are free on the responder:
	// the server is stateless — it just NAKs again and "the requests
	// that cannot be processed can be completely ignored" (§VI-C). Only
	// the client-side discard path loads the ODP pipeline.
	r.ODP.Fault(qp.Num, addr, length)
	return false, 0
}

func (qp *QP) respondRead(pkt *packet.Packet, dup bool) {
	r := qp.rnic
	addr := hostmem.Addr(pkt.RemoteAddr)
	length := int(pkt.DMALen)
	if _, ok := r.lookupMR(addr, length); !ok {
		qp.sendAck(packet.SynNAKRemoteAccessErr, pkt.PSN)
		return
	}
	ok, stall := qp.translateRemote(addr, length)
	if !ok {
		// Server-side ODP: suspend the requester; the reliability of
		// RC leaves the request on the requester side, so nothing
		// needs to be stored here (§III-B).
		r.RNRNakSent++
		qp.sendRNRNak(pkt.PSN)
		return
	}
	npsn := (length + r.prof.MTU - 1) / r.prof.MTU
	if npsn < 1 {
		npsn = 1
	}
	if !dup {
		qp.ePSN = packet.PSNAdd(pkt.PSN, npsn)
	}
	r.ReadsExecuted++
	if stall > 0 {
		// NP-RDMA cold pages: ePSN already advanced (the request *is*
		// accepted); only the response waits out the driver migration.
		psn := pkt.PSN
		r.eng.ScheduleAfter(stall, func() { qp.sendReadResponse(psn, length, npsn) })
		return
	}
	qp.sendReadResponse(pkt.PSN, length, npsn)
}

func (qp *QP) respondWrite(pkt *packet.Packet, dup bool) {
	r := qp.rnic
	addr := hostmem.Addr(pkt.RemoteAddr)
	length := int(pkt.DMALen)
	if _, ok := r.lookupMR(addr, length); !ok {
		qp.sendAck(packet.SynNAKRemoteAccessErr, pkt.PSN)
		return
	}
	ok, stall := qp.translateRemote(addr, length)
	if !ok {
		r.RNRNakSent++
		qp.sendRNRNak(pkt.PSN)
		return
	}
	if !dup {
		qp.ePSN = packet.PSNAdd(pkt.PSN, 1)
	}
	r.WritesExecuted++
	if pkt.AckReq {
		if stall > 0 {
			psn := pkt.PSN
			r.eng.ScheduleAfter(stall, func() { qp.sendAck(packet.SynACK, psn) })
			return
		}
		qp.sendAck(packet.SynACK, pkt.PSN)
	}
}

func (qp *QP) respondSend(pkt *packet.Packet, dup bool) {
	r := qp.rnic
	if dup {
		// Already consumed a receive buffer for it; just re-ACK.
		qp.sendAck(packet.SynACK, pkt.PSN)
		return
	}
	if len(qp.rq) == 0 {
		// The genuine Receiver-Not-Ready condition.
		r.RNRNakSent++
		r.OutOfBuffer++
		qp.sendRNRNak(pkt.PSN)
		return
	}
	rwr := qp.rq[0]
	ok, stall := qp.translateRemote(rwr.Addr, pkt.PayloadLen)
	if !ok {
		r.RNRNakSent++
		qp.sendRNRNak(pkt.PSN)
		return
	}
	qp.rq = qp.rq[1:]
	qp.ePSN = packet.PSNAdd(pkt.PSN, 1)
	if stall > 0 {
		// The receive completes and the ACK goes out once the driver
		// has migrated the landing buffer (scalar captures only).
		id, psn, plen := rwr.ID, pkt.PSN, pkt.PayloadLen
		r.eng.ScheduleAfter(stall, func() {
			qp.deliver(qp.recvCQ, CQE{WRID: id, QPN: qp.Num, Status: WCSuccess, Op: OpSend, ByteLen: plen, Recv: true})
			qp.sendAck(packet.SynACK, psn)
		})
		return
	}
	qp.deliver(qp.recvCQ, CQE{WRID: rwr.ID, QPN: qp.Num, Status: WCSuccess, Op: OpSend, ByteLen: pkt.PayloadLen, Recv: true})
	qp.sendAck(packet.SynACK, pkt.PSN)
}

// sendAck emits an Acknowledge with the given syndrome for psn.
func (qp *QP) sendAck(syn packet.Syndrome, psn uint32) {
	pkt := qp.rnic.pool.Get()
	pkt.DLID = qp.dlid
	pkt.DestQP = qp.dqpn
	pkt.SrcQP = qp.Num
	pkt.Opcode = packet.OpAcknowledge
	pkt.Syndrome = syn
	pkt.PSN = psn
	pkt.AckPSN = psn
	qp.rnic.Port.Send(pkt)
}

// sendRNRNak emits an RNR NAK advertising this QP's minimal RNR NAK delay.
func (qp *QP) sendRNRNak(psn uint32) {
	pkt := qp.rnic.pool.Get()
	pkt.DLID = qp.dlid
	pkt.DestQP = qp.dqpn
	pkt.SrcQP = qp.Num
	pkt.Opcode = packet.OpAcknowledge
	pkt.Syndrome = packet.SynRNRNAK
	pkt.PSN = psn
	pkt.AckPSN = psn
	pkt.RNRTimerNs = int64(qp.params.MinRNRDelay)
	qp.rnic.Port.Send(pkt)
}

// sendReadResponse streams the READ payload back as one or more response
// packets with consecutive PSNs.
func (qp *QP) sendReadResponse(firstPSN uint32, length, npsn int) {
	mtu := qp.rnic.prof.MTU
	for i := 0; i < npsn; i++ {
		chunk := length - i*mtu
		if chunk > mtu {
			chunk = mtu
		}
		if chunk < 0 {
			chunk = 0
		}
		var op packet.Opcode
		switch {
		case npsn == 1:
			op = packet.OpReadRespOnly
		case i == 0:
			op = packet.OpReadRespFirst
		case i == npsn-1:
			op = packet.OpReadRespLast
		default:
			op = packet.OpReadRespMiddle
		}
		pkt := qp.rnic.pool.Get()
		pkt.DLID = qp.dlid
		pkt.DestQP = qp.dqpn
		pkt.SrcQP = qp.Num
		pkt.Opcode = op
		pkt.PSN = packet.PSNAdd(firstPSN, i)
		pkt.AckPSN = packet.PSNAdd(firstPSN, i)
		pkt.Syndrome = packet.SynACK
		pkt.PayloadLen = chunk
		// READ responses are the data-bearing direction of a READ
		// workload, so they flow through the same DCQCN limiter.
		qp.sendPaced(pkt)
	}
}
