package rnic

import (
	"testing"

	"odpsim/internal/congestion"
	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
)

// dcqcnPair builds two RNICs on a congested switched fabric with the
// DCQCN loop enabled end to end.
func dcqcnPair(t *testing.T, congCfg congestion.Config) (*sim.Engine, *fabric.Fabric, *QP, *RNIC, *RNIC, hostmem.Addr) {
	t.Helper()
	eng := sim.New(3)
	fabCfg := fabric.DefaultConfig()
	fab := fabric.New(eng, fabCfg)
	fab.EnableCongestion(congCfg)
	client := New(fab, 1, "client", ConnectX4(), hostmem.DefaultConfig())
	server := New(fab, 2, "server", ConnectX4(), hostmem.DefaultConfig())
	if congCfg.DCQCN.Enabled {
		client.EnableDCQCN(congCfg.DCQCN, fabCfg.BandwidthGbps)
		server.EnableDCQCN(congCfg.DCQCN, fabCfg.BandwidthGbps)
	}
	cqC, cqS := NewCQ(eng), NewCQ(eng)
	qpC := client.CreateQP(cqC, cqC)
	qpS := server.CreateQP(cqS, cqS)
	params := ConnParams{CACK: 18, RetryCount: 7}
	ConnectPair(qpC, qpS, params, params)
	lbuf := client.AS.Alloc(bufPages * hostmem.PageSize)
	rbuf := server.AS.Alloc(bufPages * hostmem.PageSize)
	client.RegisterMR(lbuf, bufPages*hostmem.PageSize)
	server.RegisterMR(rbuf, bufPages*hostmem.PageSize)
	return eng, fab, qpC, client, server, rbuf
}

func TestDCQCNLoopCutsRate(t *testing.T) {
	cfg := congestion.DefaultConfig()
	cfg.ECNThresholdBytes = 512
	cfg.DCQCN.Enabled = true
	eng, fab, qpC, client, server, rbuf := dcqcnPair(t, cfg)

	// A write flood deep enough to back up the oversubscribed
	// inter-switch link and trip ECN marking.
	for i := 0; i < 256; i++ {
		qpC.PostSend(SendWR{ID: uint64(i), Op: OpWrite, LocalAddr: 0, RemoteAddr: rbuf, Len: 512})
	}
	eng.MustRun()

	if qpC.Stats.Completed != 256 {
		t.Fatalf("completed %d of 256 writes", qpC.Stats.Completed)
	}
	if server.EcnMarked == 0 {
		t.Fatal("notification point saw no ECN marks")
	}
	if server.CnpSent == 0 {
		t.Fatal("notification point sent no CNPs")
	}
	if client.CnpHandled == 0 {
		t.Fatal("reaction point handled no CNPs")
	}
	if qpC.rate.Cuts == 0 {
		t.Fatal("no rate cuts applied")
	}
	if bal := fab.Pool().Balance(); bal != 0 {
		t.Fatalf("pool balance = %d after DCQCN run", bal)
	}
}

func TestDCQCNDisabledHasNoCounters(t *testing.T) {
	cfg := congestion.DefaultConfig() // ECN off, DCQCN off
	cfg.ECN = false
	eng, _, qpC, client, server, rbuf := dcqcnPair(t, cfg)
	for i := 0; i < 32; i++ {
		qpC.PostSend(SendWR{ID: uint64(i), Op: OpWrite, LocalAddr: 0, RemoteAddr: rbuf, Len: 256})
	}
	eng.MustRun()
	if qpC.rate != nil {
		t.Fatal("rate limiter attached without EnableDCQCN")
	}
	if client.CnpHandled != 0 || server.CnpSent != 0 || server.EcnMarked != 0 {
		t.Fatal("DCQCN counters moved while disabled")
	}
	snap := client.Telemetry().Snapshot(eng.Now())
	if _, ok := snap.Get("np_cnp_sent", `{device="client"}`); ok {
		t.Fatal("np_cnp_sent registered without EnableDCQCN")
	}
}
