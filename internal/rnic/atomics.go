package rnic

import (
	"odpsim/internal/hostmem"
	"odpsim/internal/packet"
)

// Atomic send operations (extend the SendOp space from qp.go). Atomics
// share the MaxRdAtomic outstanding budget with READs, per the
// InfiniBand specification.
const (
	// OpAtomicFA is an 8-byte fetch-and-add.
	OpAtomicFA SendOp = iota + 100
	// OpAtomicCS is an 8-byte compare-and-swap.
	OpAtomicCS
)

// isAtomic reports whether the op consumes responder resources like a
// READ.
func isAtomic(op SendOp) bool { return op == OpAtomicFA || op == OpAtomicCS }

// buildAtomicPacket fills the AtomicETH fields for an atomic request.
func buildAtomicPacket(pkt *packet.Packet, w *wqe) {
	pkt.RemoteAddr = uint64(w.RemoteAddr)
	pkt.DMALen = 8
	switch w.Op {
	case OpAtomicFA:
		pkt.Opcode = packet.OpFetchAdd
		pkt.AtomicSwap = w.CompareAdd // addend
	case OpAtomicCS:
		pkt.Opcode = packet.OpCmpSwap
		pkt.AtomicCompare = w.CompareAdd
		pkt.AtomicSwap = w.Swap
	}
}

// respondAtomic executes an atomic request against the host word store.
// Real responders must not re-execute a replayed atomic: the original
// result is kept in a small replay cache keyed by PSN, exactly the kind
// of limited on-chip state §IX highlights.
func (qp *QP) respondAtomic(pkt *packet.Packet, dup bool) {
	r := qp.rnic
	addr := hostmem.Addr(pkt.RemoteAddr)
	if _, ok := r.lookupMR(addr, 8); !ok {
		qp.sendAck(packet.SynNAKRemoteAccessErr, pkt.PSN)
		return
	}
	if dup {
		if orig, ok := qp.atomicReplay[pkt.PSN]; ok {
			qp.sendAtomicResp(pkt.PSN, orig)
		}
		// A dup beyond the replay window is silently dropped; the
		// requester's timeout machinery handles it.
		return
	}
	ok, stall := qp.translateRemote(addr, 8)
	if !ok {
		r.RNRNakSent++
		qp.sendRNRNak(pkt.PSN)
		return
	}
	orig := r.AS.ReadWord(addr)
	switch pkt.Opcode {
	case packet.OpFetchAdd:
		r.AS.WriteWord(addr, orig+pkt.AtomicSwap)
	case packet.OpCmpSwap:
		if orig == pkt.AtomicCompare {
			r.AS.WriteWord(addr, pkt.AtomicSwap)
		}
	}
	qp.ePSN = packet.PSNAdd(pkt.PSN, 1)
	r.AtomicsExecuted++
	qp.rememberAtomic(pkt.PSN, orig)
	if stall > 0 {
		// NP-RDMA: the atomic executed; its response waits out the
		// driver migration of the target page.
		psn := pkt.PSN
		r.eng.ScheduleAfter(stall, func() { qp.sendAtomicResp(psn, orig) })
		return
	}
	qp.sendAtomicResp(pkt.PSN, orig)
}

// atomicReplayWindow bounds the responder's atomic replay cache.
const atomicReplayWindow = 16

func (qp *QP) rememberAtomic(psn uint32, orig uint64) {
	if qp.atomicReplay == nil {
		qp.atomicReplay = make(map[uint32]uint64)
	}
	qp.atomicReplay[psn] = orig
	qp.atomicOrder = append(qp.atomicOrder, psn)
	for len(qp.atomicOrder) > atomicReplayWindow {
		delete(qp.atomicReplay, qp.atomicOrder[0])
		qp.atomicOrder = qp.atomicOrder[1:]
	}
}

func (qp *QP) sendAtomicResp(psn uint32, orig uint64) {
	pkt := qp.rnic.pool.Get()
	pkt.DLID = qp.dlid
	pkt.DestQP = qp.dqpn
	pkt.SrcQP = qp.Num
	pkt.Opcode = packet.OpAtomicResp
	pkt.PSN = psn
	pkt.AckPSN = psn
	pkt.Syndrome = packet.SynACK
	pkt.AtomicOrig = orig
	qp.rnic.Port.Send(pkt)
}

// handleAtomicResp completes the matching atomic request, delivering the
// original value through the CQE.
func (qp *QP) handleAtomicResp(pkt *packet.Packet) {
	if qp.paused {
		qp.Stats.ResponsesDiscarded++
		return
	}
	o := qp.findOut(pkt.PSN)
	if o == nil {
		return
	}
	// Complete everything up to the atomic, tagging its CQE with the
	// returned value.
	qp.pendingAtomicOrig = pkt.AtomicOrig
	qp.completeThrough(o)
}
