package rnic

import (
	"testing"

	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

func TestFetchAddBasics(t *testing.T) {
	h := newHarness(t, 30, ConnectX4(), noODP, defaultParams())
	h.server.AS.WriteWord(h.rbuf, 40)
	h.qpC.PostSend(SendWR{ID: 1, Op: OpAtomicFA, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 8, CompareAdd: 2})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if cqes[0].AtomicOrig != 40 {
		t.Errorf("AtomicOrig = %d, want 40", cqes[0].AtomicOrig)
	}
	if got := h.server.AS.ReadWord(h.rbuf); got != 42 {
		t.Errorf("word = %d, want 42", got)
	}
}

func TestCmpSwap(t *testing.T) {
	h := newHarness(t, 31, ConnectX4(), noODP, defaultParams())
	h.server.AS.WriteWord(h.rbuf, 7)
	// Matching compare: swaps.
	h.qpC.PostSend(SendWR{ID: 1, Op: OpAtomicCS, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 8, CompareAdd: 7, Swap: 99})
	h.eng.Run()
	if got := h.server.AS.ReadWord(h.rbuf); got != 99 {
		t.Fatalf("word = %d, want 99", got)
	}
	// Non-matching compare: no swap, returns current value.
	h.qpC.PostSend(SendWR{ID: 2, Op: OpAtomicCS, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 8, CompareAdd: 7, Swap: 1})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	last := cqes[len(cqes)-1]
	if last.AtomicOrig != 99 {
		t.Errorf("AtomicOrig = %d, want 99", last.AtomicOrig)
	}
	if got := h.server.AS.ReadWord(h.rbuf); got != 99 {
		t.Errorf("failed CAS must not write, word = %d", got)
	}
}

func TestAtomicSequence(t *testing.T) {
	h := newHarness(t, 32, ConnectX4(), noODP, defaultParams())
	for i := 0; i < 50; i++ {
		h.qpC.PostSend(SendWR{ID: uint64(i), Op: OpAtomicFA, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 8, CompareAdd: 1})
	}
	h.eng.Run()
	if got := h.server.AS.ReadWord(h.rbuf); got != 50 {
		t.Errorf("word = %d, want 50", got)
	}
	if n := h.cqC.Poll(0); len(n) != 50 {
		t.Errorf("completions = %d", len(n))
	}
}

func TestAtomicODPFaultsLikeRead(t *testing.T) {
	h := newHarness(t, 33, ConnectX4(), serverODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpAtomicFA, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 8, CompareAdd: 5})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if h.server.RNRNakSent == 0 {
		t.Error("atomic into an unmapped ODP page must RNR NAK")
	}
	if got := h.server.AS.ReadWord(h.rbuf); got != 5 {
		t.Errorf("word = %d, want 5", got)
	}
	// ≈ one RNR wait.
	if h.eng.Now() < sim.FromMillis(4) || h.eng.Now() > sim.FromMillis(5.5) {
		t.Errorf("took %v", h.eng.Now())
	}
}

func TestAtomicDuplicateNotReExecuted(t *testing.T) {
	// Drop the first atomic *response*: the retransmitted request must
	// be answered from the replay cache, not re-executed (otherwise the
	// add would apply twice).
	h := newHarness(t, 34, ConnectX4(), noODP, defaultParams())
	dropped := false
	h.fab.SetDropFilter(func(pkt *packet.Packet) bool {
		if !dropped && pkt.Opcode == packet.OpAtomicResp {
			dropped = true
			return true
		}
		return false
	})
	h.qpC.PostSend(SendWR{ID: 1, Op: OpAtomicFA, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 8, CompareAdd: 10})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if cqes[0].AtomicOrig != 0 {
		t.Errorf("AtomicOrig = %d, want the original 0", cqes[0].AtomicOrig)
	}
	if got := h.server.AS.ReadWord(h.rbuf); got != 10 {
		t.Errorf("word = %d, want exactly 10 (no double execution)", got)
	}
	if h.qpC.Stats.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1 (response was lost)", h.qpC.Stats.Timeouts)
	}
}

func TestAtomicsShareRdAtomicBudget(t *testing.T) {
	p := defaultParams()
	p.MaxRdAtomic = 2
	h := newHarness(t, 35, ConnectX4(), noODP, p)
	for i := 0; i < 3; i++ {
		h.qpC.PostSend(SendWR{ID: uint64(i), Op: OpAtomicFA, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 8, CompareAdd: 1})
	}
	if h.qpC.OutstandingReads() > 2 {
		t.Errorf("outstanding = %d, want ≤ 2", h.qpC.OutstandingReads())
	}
	h.eng.Run()
	if got := h.server.AS.ReadWord(h.rbuf); got != 3 {
		t.Errorf("word = %d", got)
	}
}

func TestAtomicToUnregisteredFails(t *testing.T) {
	h := newHarness(t, 36, ConnectX4(), noODP, defaultParams())
	bad := h.server.AS.Alloc(4096)
	h.qpC.PostSend(SendWR{ID: 1, Op: OpAtomicCS, LocalAddr: h.lbuf, RemoteAddr: bad, Len: 8})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCRemoteAccessErr {
		t.Fatalf("cqes = %+v", cqes)
	}
}

func TestAdviseMRPrefetchAvoidsFault(t *testing.T) {
	h := newHarness(t, 37, ConnectX4(), serverODP, defaultParams())
	// Prefetch the remote region into the server QP's context before
	// issuing the READ: no RNR NAK, microsecond-scale completion.
	h.server.AdviseMR(h.qpS.Num, h.rbuf, 4096)
	h.eng.Run() // let the pipeline finish the prefetch
	prefetchDone := h.eng.Now()
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.Run()
	if h.server.RNRNakSent != 0 {
		t.Error("prefetched page must not fault")
	}
	if lat := h.eng.Now() - prefetchDone; lat > 20*sim.Microsecond {
		t.Errorf("READ after prefetch took %v", lat)
	}
	if n := h.cqC.Poll(0); len(n) != 1 || n[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", n)
	}
}
