// Package rnic models the RDMA network interface card: device profiles for
// the ConnectX generations the paper measures, queue pairs with the full
// Reliable Connection requester/responder state machines (PSN tracking,
// ACK/NAK processing, RNR NAK waits, timeout retransmission with retry
// budget), memory regions (pinned and ODP), and completion queues.
//
// The two pitfalls live here and in package odp: the ConnectX-4
// packet-damming quirk is modelled in the requester's pause/resume logic
// (see qp.go), and packet flood emerges from the interaction between the
// client-side ODP retransmission loop and the odp.Engine's serial
// pipeline.
package rnic

import (
	"odpsim/internal/odp"
	"odpsim/internal/sim"
)

// Profile describes one RNIC model's timing and quirk behaviour. The
// numbers are estimated from the paper's measurements (Figure 2 for the
// timeout floors, Figure 1 for the ODP timings) — see DESIGN.md §4.
type Profile struct {
	// Name is the marketing name, e.g. "ConnectX-4".
	Name string
	// LinkGbps is the nominal link speed.
	LinkGbps float64

	// MinCACK is the vendor's minimum acceptable Local ACK Timeout
	// exponent c0: the effective exponent is max(CACK, MinCACK) for any
	// non-zero CACK (InfiniBand spec §9.7.6.1.3, quoted in the paper).
	MinCACK int
	// TimeoutFactor k sets the measured timeout T_o = k · T_tr. The
	// paper's floors (≈500 ms at c0=16, ≈30 ms at c0=12) give k ≈ 1.86.
	TimeoutFactor float64
	// TimeoutJitter is the relative spread of each timeout draw.
	TimeoutJitter float64

	// RNRWaitFactor scales the configured minimal RNR NAK delay into the
	// observed wait before retransmission (the paper configures 1.28 ms
	// and observes ≈4.5 ms, factor ≈3.5 on ConnectX-4).
	RNRWaitFactor float64

	// TimeoutLoadFactor lengthens each timeout draw per concurrently
	// busy QP beyond the first, within the spec's [T_tr, 4·T_tr] clamp.
	// The paper observed that "the timeout interval lengthened with
	// multiple QPs ... a high load is imposed on the client by managing
	// the RNR timer and retransmission" (§VI-C).
	TimeoutLoadFactor float64

	// DammingQuirk enables the ConnectX-4-specific packet-damming flaw:
	// requests first posted during a pending window are lost once when
	// the window's batch retransmission occurs. NVIDIA/Mellanox told the
	// authors it is "specific to ConnectX-4 ... and vanishes in later
	// models".
	DammingQuirk bool

	// MaxRdAtomic bounds outstanding RDMA READs per QP.
	MaxRdAtomic int
	// MTU is the path MTU in bytes.
	MTU int

	// ODP is the ODP-engine calibration for this device.
	ODP odp.Config
}

// TTr returns the retransmission timer interval T_tr = 4.096 µs · 2^c for
// the effective exponent, honouring the vendor minimum. cack == 0 means
// the timeout is disabled and TTr returns 0.
func (p Profile) TTr(cack int) sim.Time {
	if cack <= 0 {
		return 0
	}
	c := cack
	if c < p.MinCACK {
		c = p.MinCACK
	}
	if c > 31 {
		c = 31
	}
	return sim.Time(4096) * sim.Nanosecond << uint(c)
}

// DrawTimeout draws one measured timeout T_o for the given exponent from
// the device's distribution, clamped to the spec's [T_tr, 4·T_tr].
// busyQPs is the number of QPs concurrently managing outstanding
// requests on the RNIC; values above 1 lengthen the draw per
// TimeoutLoadFactor.
func (p Profile) DrawTimeout(eng *sim.Engine, cack, busyQPs int) sim.Time {
	ttr := p.TTr(cack)
	if ttr == 0 {
		return 0
	}
	scale := p.TimeoutFactor
	if busyQPs > 1 && p.TimeoutLoadFactor > 0 {
		scale *= 1 + p.TimeoutLoadFactor*float64(busyQPs-1)
	}
	to := eng.Jitter(sim.Time(float64(ttr)*scale), p.TimeoutJitter)
	if to < ttr {
		to = ttr
	}
	if to > 4*ttr {
		to = 4 * ttr
	}
	return to
}

func baseProfile(name string, gbps float64) Profile {
	return Profile{
		Name:              name,
		LinkGbps:          gbps,
		MinCACK:           16,
		TimeoutFactor:     1.86,
		TimeoutJitter:     0.08,
		RNRWaitFactor:     3.5,
		TimeoutLoadFactor: 0.01,
		MaxRdAtomic:       16,
		MTU:               4096,
		ODP:               odp.DefaultConfig(),
	}
}

// ConnectX3 returns the ConnectX-3 56 Gb/s FDR profile (Private servers A).
// The paper's damming experiments target ConnectX-4; the CX-3 quirk status
// is not reported, so it is modelled without the quirk.
func ConnectX3() Profile {
	p := baseProfile("ConnectX-3", 56)
	return p
}

// ConnectX4 returns the ConnectX-4 profile (Private servers B "KNL",
// Reedbush-H/L, ABCI, ITO). It carries the damming quirk.
func ConnectX4() Profile {
	p := baseProfile("ConnectX-4", 56)
	p.DammingQuirk = true
	return p
}

// ConnectX5 returns the ConnectX-5 100 Gb/s EDR profile (Azure HC): the
// only device with the ≈30 ms timeout floor (MinCACK ≈ 12).
func ConnectX5() Profile {
	p := baseProfile("ConnectX-5", 100)
	p.MinCACK = 12
	return p
}

// ConnectX6 returns the ConnectX-6 200 Gb/s HDR profile (Azure HBv2):
// damming fixed, packet flood still present (§VI-A), long timeout floor
// unchanged.
func ConnectX6() Profile {
	p := baseProfile("ConnectX-6", 200)
	return p
}
