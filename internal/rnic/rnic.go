package rnic

import (
	"fmt"

	"odpsim/internal/congestion"
	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/irn"
	"odpsim/internal/npr"
	"odpsim/internal/odp"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// MemKind says how a memory range is translated for DMA: pinned up
// front, faulted on demand by the NIC (ODP), or migrated on demand by
// the driver through the NP-RDMA pool.
type MemKind uint8

const (
	KindPinned MemKind = iota
	KindODP
	KindNPR
)

func (k MemKind) String() string {
	switch k {
	case KindODP:
		return "odp"
	case KindNPR:
		return "npr"
	default:
		return "pin"
	}
}

// MR is a registered memory region.
type MR struct {
	Key  uint32
	Addr hostmem.Addr
	Len  int
	// ODP marks an on-demand-paging registration: no pinning, network
	// page faults on access.
	ODP bool
	// NPR marks an NP-RDMA registration: no pinning either, but
	// translation goes through the driver's shadow table and bounded
	// DMA-able pool instead of NIC page faults.
	NPR bool
}

// Kind returns the region's translation kind.
func (m *MR) Kind() MemKind {
	switch {
	case m.NPR:
		return KindNPR
	case m.ODP:
		return KindODP
	default:
		return KindPinned
	}
}

// Contains reports whether the byte range lies inside the region.
func (m *MR) Contains(addr hostmem.Addr, length int) bool {
	return addr >= m.Addr && addr+hostmem.Addr(length) <= m.Addr+hostmem.Addr(m.Len)
}

// RNIC is one adapter: an address space, an ODP engine, a fabric port and
// a set of queue pairs.
type RNIC struct {
	Name string
	eng  *sim.Engine
	AS   *hostmem.AddressSpace
	ODP  *odp.Engine
	Port *fabric.Port
	prof Profile
	// pool is the fabric's packet pool: every transmit packet is drawn
	// from it and returns to it after final delivery or drop.
	pool *packet.Pool

	qps         map[uint32]*QP
	udqps       map[uint32]*UDQP
	mrs         []*MR
	nextQPN     uint32
	nextKey     uint32
	implicitODP bool
	// npr, when non-nil, is the NP-RDMA driver pool (EnableNPR) and the
	// device's managed registrations translate through it instead of the
	// ODP fault engine; forcePinned makes managed registrations pin.
	npr         *npr.Pool
	forcePinned bool
	// busyQPs counts QPs with outstanding requests (the load signal for
	// the §VI-C timeout-lengthening effect).
	busyQPs int
	// DCQCN state (EnableDCQCN): dcqcn holds the loop parameters, and
	// lineGbps is the port rate new QPs' rate limiters start at.
	dcqcnOn  bool
	dcqcn    congestion.DCQCNConfig
	lineGbps float64
	// IRN state (EnableIRN): every QP created afterwards runs the
	// selective-repeat transport with irnBDP as its injection cap.
	irnOn  bool
	irnBDP int
	// tel is the device's counter registry — the simulator's equivalent
	// of /sys/class/infiniband/<dev>. The exported counter fields below
	// are its live storage (pointer-backed), so reading them directly
	// and scraping the registry always agree.
	tel *telemetry.Registry

	// Counters.
	DammedDrops       uint64 // requests discarded by the damming quirk
	RNRNakSent        uint64
	NakSeqSent        uint64 // out_of_sequence: OOS arrivals NAKed by the responder
	ReadsExecuted     uint64
	WritesExecuted    uint64
	AtomicsExecuted   uint64
	DuplicateRequests uint64 // already-executed requests re-received
	OutOfBuffer       uint64 // RNR NAKs caused by an empty receive queue
	// DCQCN counters (registered by EnableDCQCN): notification-point
	// marks seen and CNPs sent, reaction-point CNPs handled.
	EcnMarked  uint64
	CnpSent    uint64
	CnpHandled uint64
	// IRN counters (registered by EnableIRN): responder SACKs and
	// out-of-order landings, requester BDP stalls and selective
	// retransmissions.
	SackSent   uint64
	OooLanded  uint64
	BdpStalls  uint64
	IrnRetrans uint64
	// wcByStatus counts work completions per WCStatus.
	wcByStatus [numWCStatuses]uint64
}

// New creates an RNIC attached to fab at the given LID, with its own
// address space.
func New(fab *fabric.Fabric, lid uint16, name string, prof Profile, memCfg hostmem.Config) *RNIC {
	eng := fab.Engine()
	as := hostmem.NewAddressSpace(eng, memCfg)
	r := &RNIC{
		Name:    name,
		eng:     eng,
		AS:      as,
		ODP:     odp.New(as, prof.ODP),
		prof:    prof,
		pool:    fab.Pool(),
		tel:     telemetry.NewRegistryOn(eng, name, telemetry.Labels{"device": name}),
		qps:     make(map[uint32]*QP),
		nextQPN: 1,
		nextKey: 1,
	}
	r.registerMetrics()
	r.ODP.RegisterMetrics(r.tel)
	r.Port = fab.AttachPort(lid, name, r.receive)
	r.Port.RegisterMetrics(r.tel)
	return r
}

// Telemetry returns the device's counter registry.
func (r *RNIC) Telemetry() *telemetry.Registry { return r.tel }

// EnableDCQCN turns on the DCQCN loop for this device: as a notification
// point it answers ECN-marked arrivals with CNPs (per-QP pacing window),
// and as a reaction point every QP created afterwards gets a rate
// limiter that CNPs cut. lineGbps is the port rate limiters start at.
// Call before creating QPs; the np_*/rp_* counters register here so
// devices without DCQCN keep their exact pre-existing metric set.
func (r *RNIC) EnableDCQCN(cfg congestion.DCQCNConfig, lineGbps float64) {
	if r.dcqcnOn {
		panic("rnic: EnableDCQCN called twice")
	}
	r.dcqcnOn = true
	r.dcqcn = cfg.WithDefaults()
	r.lineGbps = lineGbps
	r.tel.Counter(telemetry.NpEcnMarked, "ECN-marked packets received (notification point)", nil, &r.EcnMarked)
	r.tel.Counter(telemetry.NpCnpSent, "CNPs sent by the notification point", nil, &r.CnpSent)
	r.tel.Counter(telemetry.RpCnpHandled, "CNPs handled by the reaction point (rate cuts)", nil, &r.CnpHandled)
}

// EnableNPR turns on the NP-RDMA no-pinning mode for this device: a
// bounded DMA-able pool plus a driver-maintained shadow translation
// table replaces the NIC page-fault path for managed registrations.
// Call before registering memory; the npr_* counters register here so
// devices without NPR keep their exact pre-existing metric set.
func (r *RNIC) EnableNPR(cfg npr.Config) {
	if r.npr != nil {
		panic("rnic: EnableNPR called twice")
	}
	if r.forcePinned {
		panic("rnic: EnableNPR after ForcePinned")
	}
	r.npr = npr.New(r.AS, cfg)
	r.npr.RegisterMetrics(r.tel)
}

// ForcePinned makes RegisterManagedMR pin instead of using ODP — the
// `memory: pin` end of the pin|odp|npr comparison.
func (r *RNIC) ForcePinned() {
	if r.npr != nil {
		panic("rnic: ForcePinned after EnableNPR")
	}
	r.forcePinned = true
}

// NPR returns the device's NP-RDMA pool, or nil when NPR is off.
func (r *RNIC) NPR() *npr.Pool { return r.npr }

// registerMetrics publishes the device-level counters under the
// hw_counter vocabulary (plus sim_* names for quantities real hardware
// does not export).
func (r *RNIC) registerMetrics() {
	r.tel.Counter(telemetry.OutOfSequence, "out-of-order request arrivals NAKed by the responder", nil, &r.NakSeqSent)
	r.tel.Counter(telemetry.DuplicateRequest, "already-executed requests re-received by the responder", nil, &r.DuplicateRequests)
	r.tel.Counter(telemetry.OutOfBuffer, "responder RNR NAKs caused by an empty receive queue", nil, &r.OutOfBuffer)
	r.tel.Counter(telemetry.RxReadRequests, "RDMA READ requests executed by the responder", nil, &r.ReadsExecuted)
	r.tel.Counter(telemetry.RxWriteRequests, "RDMA WRITE requests executed by the responder", nil, &r.WritesExecuted)
	r.tel.Counter(telemetry.RxAtomicRequests, "atomic requests executed by the responder", nil, &r.AtomicsExecuted)
	r.tel.Counter(telemetry.SimRNRNakSent, "RNR NAKs sent for any cause (ODP miss or empty RQ)", nil, &r.RNRNakSent)
	r.tel.Counter(telemetry.SimDammedDrops, "requests silently discarded by the damming quirk (sim ground truth)", nil, &r.DammedDrops)
	statusLabel := telemetry.Labels{"status": ""} // rendered at add time, safe to reuse
	for s := 0; s < numWCStatuses; s++ {
		statusLabel["status"] = WCStatus(s).String()
		r.tel.Counter(telemetry.Completions, "work completions by status",
			statusLabel, &r.wcByStatus[s])
	}
}

// countWC tallies one work completion in the per-status counters.
func (r *RNIC) countWC(s WCStatus) {
	if int(s) >= 0 && int(s) < numWCStatuses {
		r.wcByStatus[s]++
	}
}

// Engine returns the simulation engine.
func (r *RNIC) Engine() *sim.Engine { return r.eng }

// Profile returns the device profile.
func (r *RNIC) Profile() Profile { return r.prof }

// LID returns the port LID.
func (r *RNIC) LID() uint16 { return r.Port.LID }

// EnableImplicitODP turns on Implicit ODP: the whole address space is
// accessible through on-demand paging without explicit registration.
func (r *RNIC) EnableImplicitODP() { r.implicitODP = true }

// RegisterMR registers a conventional (pinned) memory region, paying the
// per-page pinning cost in bookkeeping (the time cost is returned so a
// caller process can charge it).
func (r *RNIC) RegisterMR(addr hostmem.Addr, length int) (*MR, sim.Time) {
	cost := r.AS.Pin(addr, length)
	mr := &MR{Key: r.nextKey, Addr: addr, Len: length}
	r.nextKey++
	r.mrs = append(r.mrs, mr)
	return mr, cost
}

// RegisterODPMR registers an Explicit-ODP memory region: no pinning, and
// RDMA access triggers network page faults.
func (r *RNIC) RegisterODPMR(addr hostmem.Addr, length int) *MR {
	mr := &MR{Key: r.nextKey, Addr: addr, Len: length, ODP: true}
	r.nextKey++
	r.mrs = append(r.mrs, mr)
	return mr
}

// RegisterNPRMR registers an NP-RDMA region: no pinning, and access
// translates through the driver's shadow table, migrating cold pages
// into the bounded pool on demand. Registration itself is free, like
// ODP — the cost moves to first touch as a translation stall.
func (r *RNIC) RegisterNPRMR(addr hostmem.Addr, length int) *MR {
	if r.npr == nil {
		panic("rnic: RegisterNPRMR without EnableNPR")
	}
	mr := &MR{Key: r.nextKey, Addr: addr, Len: length, NPR: true}
	r.nextKey++
	r.mrs = append(r.mrs, mr)
	return mr
}

// RegisterManagedMR registers according to the device's memory mode:
// pinned under ForcePinned (cost returned), NPR under EnableNPR, and
// Explicit ODP otherwise (both free at registration time). Every layer
// that used to choose between RegisterMR and RegisterODPMR by an ODP
// flag funnels through here, which is what makes `memory: pin|odp|npr`
// a per-node switch instead of a per-callsite one.
func (r *RNIC) RegisterManagedMR(addr hostmem.Addr, length int) (*MR, sim.Time) {
	switch {
	case r.forcePinned:
		return r.RegisterMR(addr, length)
	case r.npr != nil:
		return r.RegisterNPRMR(addr, length), 0
	default:
		return r.RegisterODPMR(addr, length), 0
	}
}

// AdviseMR prefetches ODP translations for the range into qp's context,
// modelling ibv_advise_mr(IBV_ADVISE_MR_ADVICE_PREFETCH): the faults run
// through the same serial pipeline, but before traffic needs them. Li et
// al. found receiver-side prefetching effective; it is also a packet-flood
// avoidance measure, since prefetched pairs never go stale mid-transfer.
func (r *RNIC) AdviseMR(qpn uint32, addr hostmem.Addr, length int) {
	r.ODP.Prefetch(qpn, addr, length)
}

// DeregisterMR removes a region, unpinning conventional registrations.
func (r *RNIC) DeregisterMR(mr *MR) {
	for i, m := range r.mrs {
		if m == mr {
			r.mrs = append(r.mrs[:i], r.mrs[i+1:]...)
			if !mr.ODP && !mr.NPR {
				r.AS.Unpin(mr.Addr, mr.Len)
			}
			return
		}
	}
	panic("rnic: DeregisterMR of unknown MR")
}

// lookupMR finds a registration covering the range. ok is false when
// the range is not registered and implicit registration is off; kind
// reports how the covering registration translates. Under implicit ODP
// the fallback kind follows the device's memory mode, so an
// NPR-enabled node's implicit ranges go through the shadow table too.
func (r *RNIC) lookupMR(addr hostmem.Addr, length int) (kind MemKind, ok bool) {
	for _, m := range r.mrs {
		if m.Contains(addr, length) {
			return m.Kind(), true
		}
	}
	if r.implicitODP {
		if r.npr != nil {
			return KindNPR, true
		}
		return KindODP, true
	}
	return KindPinned, false
}

// CreateQP creates a queue pair bound to the completion queues.
func (r *RNIC) CreateQP(sendCQ, recvCQ *CQ) *QP {
	qp := &QP{
		rnic:   r,
		Num:    r.nextQPN,
		sendCQ: sendCQ,
		recvCQ: recvCQ,
	}
	qp.onTimeoutFn = qp.onTimeout
	qp.resumeFn = qp.resumePending
	if r.dcqcnOn {
		qp.rate = congestion.NewRateStateOn(r.eng, r.dcqcn, r.lineGbps)
	}
	if r.irnOn {
		qp.irn = irn.StateFor(r.eng)
		qp.irn.RB.Init(0)
		qp.irn.TX.Init(r.irnBDP, 0)
	}
	r.nextQPN++
	r.qps[qp.Num] = qp
	qp.registerMetrics(r.tel)
	return qp
}

// receive dispatches an arriving packet to the destination QP, on the
// requester or responder path depending on the opcode. With DCQCN on,
// the device also acts as notification point (ECN-marked arrivals are
// answered with CNPs) and reaction point (CNPs cut the target QP's
// rate) before normal dispatch.
func (r *RNIC) receive(pkt *packet.Packet) {
	if pkt.Opcode == packet.OpCNP {
		if qp, ok := r.qps[pkt.DestQP]; ok && qp.rate != nil {
			r.CnpHandled++
			qp.rate.HandleCNP()
		}
		return
	}
	if pkt.ECN && r.dcqcnOn {
		r.EcnMarked++
		r.maybeSendCNP(pkt)
	}
	if pkt.Opcode == packet.OpUDSend {
		if udqp, ok := r.udqps[pkt.DestQP]; ok {
			udqp.receive(pkt)
		}
		return
	}
	qp, ok := r.qps[pkt.DestQP]
	if !ok {
		return // no such QP: silently dropped, like real hardware
	}
	if pkt.Opcode.IsRequest() {
		qp.responderReceive(pkt)
	} else {
		qp.requesterReceive(pkt)
	}
}

// maybeSendCNP answers an ECN-marked packet with a Congestion
// Notification Packet to its sender, rate-limited per destination QP by
// the notification-point pacing window (one CNP per MinCNPInterval, as
// the mlx5 N_CNP timer does).
func (r *RNIC) maybeSendCNP(marked *packet.Packet) {
	qp, ok := r.qps[marked.DestQP]
	if !ok {
		return
	}
	now := r.eng.Now()
	if qp.lastCNP > 0 && now-qp.lastCNP < r.dcqcn.MinCNPInterval {
		return
	}
	qp.lastCNP = now
	cnp := r.pool.Get()
	cnp.Opcode = packet.OpCNP
	cnp.DLID = marked.SLID
	cnp.DestQP = marked.SrcQP
	cnp.SrcQP = marked.DestQP
	r.CnpSent++
	r.Port.Send(cnp)
}

// ConnectPair wires two QPs into one Reliable Connection with symmetric
// parameters, the way the benchmark's init phase exchanges QP numbers and
// LIDs out of band.
func ConnectPair(a, b *QP, pa, pb ConnParams) {
	a.Connect(b.rnic.LID(), b.Num, pa)
	b.Connect(a.rnic.LID(), a.Num, pb)
}

// String implements fmt.Stringer.
func (r *RNIC) String() string {
	return fmt.Sprintf("%s(%s, LID %d)", r.Name, r.prof.Name, r.Port.LID)
}
