package rnic

import (
	"testing"

	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
)

// harness wires a client and a server RNIC across a fabric, with one QP
// pair and a 1-page buffer on each side, in the chosen ODP mode.
type harness struct {
	eng      *sim.Engine
	fab      *fabric.Fabric
	client   *RNIC
	server   *RNIC
	cqC, cqS *CQ
	qpC, qpS *QP
	// lbuf/rbuf are the client-local and server-remote buffers.
	lbuf, rbuf hostmem.Addr
}

type odpMode int

const (
	noODP odpMode = iota
	serverODP
	clientODP
	bothODP
)

const bufPages = 8

func newHarness(t *testing.T, seed int64, prof Profile, mode odpMode, params ConnParams) *harness {
	t.Helper()
	eng := sim.New(seed)
	fab := fabric.New(eng, fabric.DefaultConfig())
	h := &harness{
		eng:    eng,
		fab:    fab,
		client: New(fab, 1, "client", prof, hostmem.DefaultConfig()),
		server: New(fab, 2, "server", prof, hostmem.DefaultConfig()),
	}
	h.cqC = NewCQ(eng)
	h.cqS = NewCQ(eng)
	h.qpC = h.client.CreateQP(h.cqC, h.cqC)
	h.qpS = h.server.CreateQP(h.cqS, h.cqS)
	ConnectPair(h.qpC, h.qpS, params, params)

	h.lbuf = h.client.AS.Alloc(bufPages * hostmem.PageSize)
	h.rbuf = h.server.AS.Alloc(bufPages * hostmem.PageSize)
	if mode == clientODP || mode == bothODP {
		h.client.RegisterODPMR(h.lbuf, bufPages*hostmem.PageSize)
	} else {
		h.client.RegisterMR(h.lbuf, bufPages*hostmem.PageSize)
	}
	if mode == serverODP || mode == bothODP {
		h.server.RegisterODPMR(h.rbuf, bufPages*hostmem.PageSize)
	} else {
		h.server.RegisterMR(h.rbuf, bufPages*hostmem.PageSize)
	}
	return h
}

// defaultParams are the paper's §V settings: C_ACK=1 (clamped to the
// vendor minimum), C_retry=7, minimal RNR NAK delay 1.28 ms.
func defaultParams() ConnParams {
	return ConnParams{CACK: 1, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
}

func TestReadNoODP(t *testing.T) {
	h := newHarness(t, 1, ConnectX4(), noODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	// One round trip of a few µs.
	if h.eng.Now() > 10*sim.Microsecond {
		t.Errorf("pinned READ took %v, want a few µs", h.eng.Now())
	}
	if h.server.ReadsExecuted != 1 {
		t.Errorf("ReadsExecuted = %d", h.server.ReadsExecuted)
	}
}

func TestReadServerODPWorkflow(t *testing.T) {
	// Figure 1, left: request → RNR NAK → ≈4.5 ms wait → retransmit →
	// response.
	h := newHarness(t, 2, ConnectX4(), serverODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if h.server.RNRNakSent != 1 {
		t.Errorf("RNRNakSent = %d, want 1", h.server.RNRNakSent)
	}
	if h.qpC.Stats.RNRNakReceived != 1 {
		t.Errorf("RNRNakReceived = %d", h.qpC.Stats.RNRNakReceived)
	}
	// Wait ≈ 3.5 × 1.28 ms = 4.48 ms (±5%), plus round trips.
	got := h.eng.Now()
	if got < sim.FromMillis(4.2) || got > sim.FromMillis(4.9) {
		t.Errorf("server-side ODP READ took %v, want ≈4.5 ms", got)
	}
}

func TestReadClientODPWorkflow(t *testing.T) {
	// Figure 1, right: response discarded, blind retransmission every
	// ≈0.5 ms until the page status update lands.
	h := newHarness(t, 3, ConnectX4(), clientODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if h.qpC.Stats.ClientFaultRounds == 0 {
		t.Error("expected at least one client fault round")
	}
	if h.qpC.Stats.ResponsesDiscarded == 0 {
		t.Error("expected discarded responses")
	}
	if h.server.ReadsExecuted < 2 {
		t.Errorf("server should re-execute the READ on retransmission, got %d", h.server.ReadsExecuted)
	}
	got := h.eng.Now()
	if got < sim.FromMicros(300) || got > sim.FromMillis(2) {
		t.Errorf("client-side ODP READ took %v, want ≈0.5–1.5 ms", got)
	}
	if h.qpC.Stats.Timeouts != 0 {
		t.Error("no timeout expected for a single READ")
	}
}

func TestTwoReadDammingTimeout(t *testing.T) {
	// Figure 5: a second READ posted 1 ms into the first's pending
	// window is lost and only recovers via the ≈500 ms timeout.
	h := newHarness(t, 4, ConnectX4(), serverODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.After(sim.Millisecond, func() {
		h.qpC.PostSend(SendWR{ID: 2, Op: OpRead, LocalAddr: h.lbuf + 100, RemoteAddr: h.rbuf + 100, Len: 100})
	})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 2 {
		t.Fatalf("got %d completions", len(cqes))
	}
	for _, c := range cqes {
		if c.Status != WCSuccess {
			t.Fatalf("completion failed: %+v", c)
		}
	}
	if h.server.DammedDrops == 0 {
		t.Error("expected the quirk to dam the second request")
	}
	if h.qpC.Stats.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", h.qpC.Stats.Timeouts)
	}
	// T_tr(16) = 268 ms, T_o ≈ 1.86× ⇒ ≈500 ms total.
	got := h.eng.Now()
	if got < sim.FromMillis(300) || got > sim.FromMillis(1200) {
		t.Errorf("execution took %v, want several hundred ms", got)
	}
}

func TestTwoReadNoQuirkNoTimeout(t *testing.T) {
	// Ablation / ConnectX-6: without the quirk the same schedule
	// completes right after the RNR wait.
	h := newHarness(t, 4, ConnectX6(), serverODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.After(sim.Millisecond, func() {
		h.qpC.PostSend(SendWR{ID: 2, Op: OpRead, LocalAddr: h.lbuf + 100, RemoteAddr: h.rbuf + 100, Len: 100})
	})
	h.eng.Run()
	if n := h.cqC.Poll(0); len(n) != 2 {
		t.Fatalf("got %d completions", len(n))
	}
	if h.qpC.Stats.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 on ConnectX-6", h.qpC.Stats.Timeouts)
	}
	if h.eng.Now() > sim.FromMillis(10) {
		t.Errorf("took %v, want ≈5 ms", h.eng.Now())
	}
}

func TestTwoReadOutsideWindowNoTimeout(t *testing.T) {
	// Figure 6a: beyond the ≈4.5 ms pending window, no damming.
	h := newHarness(t, 5, ConnectX4(), serverODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.After(sim.FromMillis(5.5), func() {
		h.qpC.PostSend(SendWR{ID: 2, Op: OpRead, LocalAddr: h.lbuf + 100, RemoteAddr: h.rbuf + 100, Len: 100})
	})
	h.eng.Run()
	if n := h.cqC.Poll(0); len(n) != 2 {
		t.Fatalf("got %d completions", len(n))
	}
	if h.qpC.Stats.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 outside the window", h.qpC.Stats.Timeouts)
	}
}

func TestTwoReadImmediateNoTimeout(t *testing.T) {
	// Figure 4 at interval ≈ 0: the second request reaches the wire
	// before the RNR NAK arrives, so it is a legitimate retransmission
	// at resume and survives.
	h := newHarness(t, 6, ConnectX4(), serverODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.qpC.PostSend(SendWR{ID: 2, Op: OpRead, LocalAddr: h.lbuf + 100, RemoteAddr: h.rbuf + 100, Len: 100})
	h.eng.Run()
	if n := h.cqC.Poll(0); len(n) != 2 {
		t.Fatalf("got %d completions", len(n))
	}
	if h.qpC.Stats.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 at interval 0", h.qpC.Stats.Timeouts)
	}
	if h.eng.Now() > sim.FromMillis(10) {
		t.Errorf("took %v", h.eng.Now())
	}
}

func TestThreeReadNakSeqRescue(t *testing.T) {
	// Figure 8: the third READ, posted after the pending window, makes
	// the responder notice the PSN gap and NAK, rescuing the dammed
	// second READ without a timeout.
	h := newHarness(t, 7, ConnectX4(), serverODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.After(sim.FromMillis(2.5), func() {
		h.qpC.PostSend(SendWR{ID: 2, Op: OpRead, LocalAddr: h.lbuf + 100, RemoteAddr: h.rbuf + 100, Len: 100})
	})
	h.eng.After(sim.FromMillis(5.0), func() {
		h.qpC.PostSend(SendWR{ID: 3, Op: OpRead, LocalAddr: h.lbuf + 200, RemoteAddr: h.rbuf + 200, Len: 100})
	})
	h.eng.Run()
	if n := h.cqC.Poll(0); len(n) != 3 {
		t.Fatalf("got %d completions", len(n))
	}
	if h.server.DammedDrops == 0 {
		t.Error("second READ should have been dammed")
	}
	if h.server.NakSeqSent == 0 {
		t.Error("expected a PSN sequence error NAK")
	}
	if h.qpC.Stats.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (NAK rescue)", h.qpC.Stats.Timeouts)
	}
	if h.eng.Now() > sim.FromMillis(20) {
		t.Errorf("took %v, want ≈5–6 ms", h.eng.Now())
	}
}

func TestWrongLIDRetryExceeded(t *testing.T) {
	// The Figure 2 experiment: wrong destination LID, C_retry = 7 ⇒
	// 8 timeouts then IBV_WC_RETRY_EXC_ERR; T_o = t/8.
	h := newHarness(t, 8, ConnectX4(), noODP, defaultParams())
	h.qpC.Connect(99 /* bogus LID */, h.qpS.Num, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCRetryExcErr {
		t.Fatalf("cqes = %+v, want IBV_WC_RETRY_EXC_ERR", cqes)
	}
	if h.qpC.State() != QPError {
		t.Error("QP should be in the Error state")
	}
	if h.qpC.Stats.Timeouts != 8 {
		t.Errorf("Timeouts = %d, want 8 (1+C_retry)", h.qpC.Stats.Timeouts)
	}
	// t/8 ≈ T_o ≈ 1.86 × 268 ms ≈ 500 ms.
	to := h.eng.Now() / 8
	if to < sim.FromMillis(400) || to > sim.FromMillis(700) {
		t.Errorf("T_o = %v, want ≈500 ms", to)
	}
}

func TestCACKZeroDisablesTimeout(t *testing.T) {
	p := defaultParams()
	p.CACK = 0
	h := newHarness(t, 9, ConnectX4(), noODP, p)
	h.qpC.Connect(99, h.qpS.Num, p)
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.RunUntil(10 * sim.Second)
	if len(h.cqC.Poll(0)) != 0 {
		t.Error("with C_ACK=0 the request should hang forever")
	}
	if h.qpC.Stats.Timeouts != 0 {
		t.Error("no timeouts should fire with C_ACK=0")
	}
}

func TestPostToErroredQPFlushes(t *testing.T) {
	h := newHarness(t, 10, ConnectX4(), noODP, defaultParams())
	h.qpC.Connect(99, h.qpS.Num, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.Run()
	h.cqC.Poll(0)
	h.qpC.PostSend(SendWR{ID: 2, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCFlushErr {
		t.Fatalf("cqes = %+v, want flush error", cqes)
	}
}

func TestWriteAndSend(t *testing.T) {
	h := newHarness(t, 11, ConnectX4(), noODP, defaultParams())
	h.qpS.PostRecv(RecvWR{ID: 100, Addr: h.rbuf + 4096, Len: 4096})
	h.qpC.PostSend(SendWR{ID: 1, Op: OpWrite, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 200})
	h.qpC.PostSend(SendWR{ID: 2, Op: OpSend, LocalAddr: h.lbuf, Len: 64})
	h.eng.Run()
	send := h.cqC.Poll(0)
	if len(send) != 2 || send[0].Status != WCSuccess || send[1].Status != WCSuccess {
		t.Fatalf("send cqes = %+v", send)
	}
	recv := h.cqS.Poll(0)
	if len(recv) != 1 || !recv[0].Recv || recv[0].ByteLen != 64 {
		t.Fatalf("recv cqes = %+v", recv)
	}
}

func TestSendWithoutRecvGetsRNR(t *testing.T) {
	h := newHarness(t, 12, ConnectX4(), noODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpSend, LocalAddr: h.lbuf, Len: 64})
	// Post the receive 2 ms later; the SEND should retry and land.
	h.eng.After(2*sim.Millisecond, func() {
		h.qpS.PostRecv(RecvWR{ID: 100, Addr: h.rbuf, Len: 4096})
	})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if h.qpC.Stats.RNRNakReceived == 0 {
		t.Error("expected a genuine RNR NAK")
	}
	if len(h.cqS.Poll(0)) != 1 {
		t.Error("server should complete the receive")
	}
}

func TestUnregisteredRemoteIsAccessError(t *testing.T) {
	h := newHarness(t, 13, ConnectX4(), noODP, defaultParams())
	bad := h.server.AS.Alloc(hostmem.PageSize) // never registered
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: bad, Len: 100})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCRemoteAccessErr {
		t.Fatalf("cqes = %+v, want remote access error", cqes)
	}
}

func TestImplicitODPCoversEverything(t *testing.T) {
	h := newHarness(t, 14, ConnectX4(), noODP, defaultParams())
	h.server.EnableImplicitODP()
	extra := h.server.AS.Alloc(hostmem.PageSize) // unregistered but implicit
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: extra, Len: 100})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess {
		t.Fatalf("cqes = %+v", cqes)
	}
	if h.server.RNRNakSent == 0 {
		t.Error("implicit ODP access should have faulted")
	}
}

func TestMultiPacketRead(t *testing.T) {
	h := newHarness(t, 15, ConnectX4(), noODP, defaultParams())
	const size = 3*4096 + 100 // 4 response packets
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: size})
	h.eng.Run()
	cqes := h.cqC.Poll(0)
	if len(cqes) != 1 || cqes[0].Status != WCSuccess || cqes[0].ByteLen != size {
		t.Fatalf("cqes = %+v", cqes)
	}
	// PSN space: the READ consumed 4 PSNs.
	h.qpC.PostSend(SendWR{ID: 2, Op: OpSend, LocalAddr: h.lbuf, Len: 8})
	h.qpS.PostRecv(RecvWR{ID: 3, Addr: h.rbuf, Len: 4096})
	h.eng.Run()
	if n := h.cqC.Poll(0); len(n) != 1 || n[0].Status != WCSuccess {
		t.Fatalf("follow-up after multi-packet READ failed: %+v", n)
	}
}

func TestMaxRdAtomicLimitsOutstanding(t *testing.T) {
	p := defaultParams()
	p.MaxRdAtomic = 2
	h := newHarness(t, 16, ConnectX4(), noODP, p)
	for i := 0; i < 5; i++ {
		h.qpC.PostSend(SendWR{ID: uint64(i), Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	}
	if h.qpC.OutstandingReads() > 2 {
		t.Errorf("outstanding reads = %d, want ≤ 2", h.qpC.OutstandingReads())
	}
	h.eng.Run()
	if n := h.cqC.Poll(0); len(n) != 5 {
		t.Fatalf("got %d completions", len(n))
	}
}

func TestPinnedBuffersNeverFault(t *testing.T) {
	h := newHarness(t, 17, ConnectX4(), noODP, defaultParams())
	for i := 0; i < 20; i++ {
		h.qpC.PostSend(SendWR{ID: uint64(i), Op: OpRead, LocalAddr: h.lbuf + hostmem.Addr(i*100), RemoteAddr: h.rbuf + hostmem.Addr(i*100), Len: 100})
	}
	h.eng.Run()
	if h.server.RNRNakSent != 0 || h.qpC.Stats.ClientFaultRounds != 0 {
		t.Error("pinned memory must not fault")
	}
	if n := h.cqC.Poll(0); len(n) != 20 {
		t.Fatalf("got %d completions", len(n))
	}
}

func TestBothSideODPTwoReadsTimeout(t *testing.T) {
	// Figure 4's main result at interval 1 ms, both-side ODP.
	h := newHarness(t, 18, ConnectX4(), bothODP, defaultParams())
	h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
	h.eng.After(sim.Millisecond, func() {
		h.qpC.PostSend(SendWR{ID: 2, Op: OpRead, LocalAddr: h.lbuf + 100, RemoteAddr: h.rbuf + 100, Len: 100})
	})
	h.eng.Run()
	if n := h.cqC.Poll(0); len(n) != 2 {
		t.Fatalf("got %d completions", len(n))
	}
	if h.qpC.Stats.Timeouts == 0 {
		t.Error("expected a damming timeout")
	}
	got := h.eng.Now()
	if got < sim.FromMillis(300) || got > sim.FromMillis(1500) {
		t.Errorf("execution took %v, want several hundred ms", got)
	}
}

func TestProfileTTr(t *testing.T) {
	p := ConnectX4()
	// Effective exponent is max(1, 16) = 16: 4.096 µs × 2^16 ≈ 268 ms.
	if got := p.TTr(1); got != sim.Time(4096)*sim.Nanosecond<<16 {
		t.Errorf("TTr(1) = %v", got)
	}
	if got := p.TTr(18); got != sim.Time(4096)*sim.Nanosecond<<18 {
		t.Errorf("TTr(18) = %v", got)
	}
	if p.TTr(0) != 0 {
		t.Error("TTr(0) should disable the timeout")
	}
	cx5 := ConnectX5()
	// c0=12: 4.096 µs × 2^12 ≈ 16.8 ms ⇒ T_o floor ≈ 30 ms.
	if got := cx5.TTr(1); got != sim.Time(4096)*sim.Nanosecond<<12 {
		t.Errorf("CX5 TTr(1) = %v", got)
	}
}

func TestDrawTimeoutWithinSpecBounds(t *testing.T) {
	eng := sim.New(19)
	p := ConnectX4()
	for i := 0; i < 1000; i++ {
		to := p.DrawTimeout(eng, 1, 1)
		ttr := p.TTr(1)
		if to < ttr || to > 4*ttr {
			t.Fatalf("T_o = %v outside [T_tr, 4·T_tr]", to)
		}
	}
	// Load lengthens the draw but never beyond the spec clamp.
	var idle, loaded sim.Time
	for i := 0; i < 200; i++ {
		idle += p.DrawTimeout(eng, 18, 1)
		loaded += p.DrawTimeout(eng, 18, 100)
	}
	if loaded <= idle {
		t.Error("busy QPs should lengthen the timeout (§VI-C)")
	}
	for i := 0; i < 100; i++ {
		if to := p.DrawTimeout(eng, 18, 10000); to > 4*p.TTr(18) {
			t.Fatal("load scaling must respect the 4·T_tr clamp")
		}
	}
}

func TestCQWaitN(t *testing.T) {
	h := newHarness(t, 20, ConnectX4(), noODP, defaultParams())
	var got []CQE
	h.eng.Go("bench", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			h.qpC.PostSend(SendWR{ID: uint64(i), Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
			p.Sleep(10 * sim.Microsecond)
		}
		got = h.cqC.WaitN(p, 3)
	})
	h.eng.MustRun()
	if len(got) != 3 {
		t.Fatalf("WaitN returned %d", len(got))
	}
}
