package rnic

import (
	"fmt"

	"odpsim/internal/sim"
)

// WCStatus is a work completion status code, mirroring ibv_wc_status.
type WCStatus int

// Completion statuses.
const (
	WCSuccess WCStatus = iota
	// WCRetryExcErr is IBV_WC_RETRY_EXC_ERR: the retransmission count
	// for a request exceeded Retry Count — the error the paper's
	// wrong-LID experiment and failed SparkUCX runs abort with.
	WCRetryExcErr
	// WCRemoteAccessErr is IBV_WC_REM_ACCESS_ERR.
	WCRemoteAccessErr
	// WCFlushErr is IBV_WC_WR_FLUSH_ERR: the QP entered the Error state
	// with this request still queued.
	WCFlushErr
	// WCRNRRetryExcErr is IBV_WC_RNR_RETRY_EXC_ERR: the RNR retry budget
	// was exhausted.
	WCRNRRetryExcErr

	// numWCStatuses sizes per-status counter arrays.
	numWCStatuses = int(WCRNRRetryExcErr) + 1
)

// String implements fmt.Stringer using the verbs constant names.
func (s WCStatus) String() string {
	switch s {
	case WCSuccess:
		return "IBV_WC_SUCCESS"
	case WCRetryExcErr:
		return "IBV_WC_RETRY_EXC_ERR"
	case WCRemoteAccessErr:
		return "IBV_WC_REM_ACCESS_ERR"
	case WCFlushErr:
		return "IBV_WC_WR_FLUSH_ERR"
	case WCRNRRetryExcErr:
		return "IBV_WC_RNR_RETRY_EXC_ERR"
	default:
		return fmt.Sprintf("WCStatus(%d)", int(s))
	}
}

// CQE is a completion queue entry.
type CQE struct {
	WRID    uint64
	QPN     uint32
	Status  WCStatus
	Op      SendOp
	ByteLen int
	// Recv marks completions of receive work requests.
	Recv bool
	// SrcQPN and SrcLID identify the sender (receive completions on UD,
	// where they come from the datagram's GRH/DETH).
	SrcQPN uint32
	SrcLID uint16
	// AppSeq carries the application header of a UD datagram.
	AppSeq uint64
	// AppWords carries a UD datagram's small inline payload.
	AppWords []uint64
	// AtomicOrig is the original value returned by an atomic operation.
	AtomicOrig uint64
	At         sim.Time
}

// CQ is a completion queue. Processes can block on it via Cond.
type CQ struct {
	eng     *sim.Engine
	entries []CQE
	cond    *sim.Cond
	// Completed counts all CQEs ever pushed (polled or not).
	Completed uint64
}

// NewCQ creates a completion queue on engine eng.
func NewCQ(eng *sim.Engine) *CQ {
	return &CQ{eng: eng, cond: sim.NewCond(eng)}
}

// Cond returns the condition broadcast on every new completion; use it
// with Proc.Wait to implement blocking polls.
func (cq *CQ) Cond() *sim.Cond { return cq.cond }

// Len returns the number of unpolled completions.
func (cq *CQ) Len() int { return len(cq.entries) }

// push appends a completion and wakes waiters.
func (cq *CQ) push(e CQE) {
	e.At = cq.eng.Now()
	cq.entries = append(cq.entries, e)
	cq.Completed++
	cq.cond.Broadcast()
}

// Poll removes and returns up to max completions (all if max <= 0).
func (cq *CQ) Poll(max int) []CQE {
	n := len(cq.entries)
	if max > 0 && max < n {
		n = max
	}
	out := make([]CQE, n)
	copy(out, cq.entries[:n])
	cq.entries = cq.entries[n:]
	return out
}

// WaitN blocks the process until n completions have been polled in total
// by this call, returning them. It is the "wait()" of the paper's
// Figure 3 micro-benchmark: poll the CQ until all communications finish.
func (cq *CQ) WaitN(p *sim.Proc, n int) []CQE {
	var got []CQE
	for len(got) < n {
		p.Wait(cq.cond, func() bool { return len(cq.entries) > 0 })
		got = append(got, cq.Poll(n-len(got))...)
	}
	return got
}
