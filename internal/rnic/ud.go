package rnic

import (
	"strconv"

	"odpsim/internal/hostmem"
	"odpsim/internal/packet"
	"odpsim/internal/telemetry"
)

// UDSendWR is a datagram send: the destination travels with the work
// request (address handle), not the QP.
type UDSendWR struct {
	ID      uint64
	DestLID uint16
	DestQPN uint32
	Local   hostmem.Addr
	Len     int
	// AppSeq models an application header carried in the payload (the
	// RPC sequence number software reliability schemes match on).
	AppSeq uint64
	// AppWords is a small inline application payload.
	AppWords []uint64
}

// UDQP is an Unreliable Datagram queue pair: connectionless, no
// acknowledgements, no retransmission — the transport §VIII-C's
// software-reliability systems build on. Loss recovery, if any, is the
// application's job.
type UDQP struct {
	rnic   *RNIC
	Num    uint32
	sendCQ *CQ
	recvCQ *CQ
	rq     []RecvWR

	// Counters.
	Sent          uint64
	Delivered     uint64
	DroppedNoRecv uint64 // arrived with an empty receive queue
	DroppedFault  uint64 // arrived into a stale ODP page
}

// CreateUDQP creates a datagram QP. It shares the QPN space with RC QPs.
func (r *RNIC) CreateUDQP(sendCQ, recvCQ *CQ) *UDQP {
	qp := &UDQP{rnic: r, Num: r.nextQPN, sendCQ: sendCQ, recvCQ: recvCQ}
	r.nextQPN++
	if r.udqps == nil {
		r.udqps = make(map[uint32]*UDQP)
	}
	r.udqps[qp.Num] = qp
	l := telemetry.Labels{"qpn": strconv.FormatUint(uint64(qp.Num), 10)}
	r.tel.Counter(telemetry.SimUDSent, "datagrams transmitted", l, &qp.Sent)
	r.tel.Counter(telemetry.SimUDDelivered, "datagrams placed into receive buffers", l, &qp.Delivered)
	r.tel.Counter(telemetry.SimUDDroppedNoRecv, "datagrams dropped for lack of a receive buffer", l, &qp.DroppedNoRecv)
	r.tel.Counter(telemetry.SimUDDroppedFault, "datagrams dropped into a stale ODP page", l, &qp.DroppedFault)
	return qp
}

// PostRecv posts a receive buffer.
func (qp *UDQP) PostRecv(wr RecvWR) { qp.rq = append(qp.rq, wr) }

// RecvDepth returns the number of posted receive buffers.
func (qp *UDQP) RecvDepth() int { return len(qp.rq) }

// PostSend transmits one datagram. UD sends complete as soon as the
// packet leaves the port; there is no acknowledgement.
func (qp *UDQP) PostSend(wr UDSendWR) {
	qp.Sent++
	pkt := qp.rnic.pool.Get()
	pkt.DLID = wr.DestLID
	pkt.DestQP = wr.DestQPN
	pkt.SrcQP = qp.Num
	pkt.Opcode = packet.OpUDSend
	pkt.PayloadLen = wr.Len
	pkt.AppSeq = wr.AppSeq
	pkt.AppWords = wr.AppWords
	qp.rnic.Port.Send(pkt)
	qp.rnic.countWC(WCSuccess)
	qp.sendCQ.push(CQE{WRID: wr.ID, QPN: qp.Num, Status: WCSuccess, Op: OpSend, ByteLen: wr.Len})
}

// receive handles an arriving datagram. Unlike RC there is no RNR NAK: a
// datagram that cannot be placed — no receive buffer, or a stale ODP page
// — is silently dropped, and nobody retransmits it.
func (qp *UDQP) receive(pkt *packet.Packet) {
	if len(qp.rq) == 0 {
		qp.DroppedNoRecv++
		return
	}
	rwr := qp.rq[0]
	r := qp.rnic
	if kind, ok := r.lookupMR(rwr.Addr, pkt.PayloadLen); ok {
		switch kind {
		case KindODP:
			if !r.ODP.Access(qp.Num, rwr.Addr, pkt.PayloadLen) {
				// Start the fault for next time, but this datagram is gone.
				r.ODP.Fault(qp.Num, rwr.Addr, pkt.PayloadLen)
				qp.DroppedFault++
				return
			}
		case KindNPR:
			// The driver migrates the landing buffer synchronously; a UD
			// datagram is never dropped for translation under NP-RDMA.
			r.npr.EnsureRange(rwr.Addr, pkt.PayloadLen)
		}
	}
	qp.rq = qp.rq[1:]
	qp.Delivered++
	qp.rnic.countWC(WCSuccess)
	qp.recvCQ.push(CQE{
		WRID: rwr.ID, QPN: qp.Num, Status: WCSuccess, Op: OpSend,
		ByteLen: pkt.PayloadLen, Recv: true, SrcQPN: pkt.SrcQP, SrcLID: pkt.SLID,
		AppSeq: pkt.AppSeq, AppWords: pkt.AppWords,
	})
}
