package rnic

import (
	"testing"

	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// TestTelemetryRegistryMirrorsFields runs one ODP READ exchange and
// checks the device registry exposes the transport, port and ODP
// counters with the values the legacy exported fields show.
func TestTelemetryRegistryMirrorsFields(t *testing.T) {
	h := newHarness(t, 1, ConnectX4(), serverODP, defaultParams())
	h.eng.Go("client", func(p *sim.Proc) {
		h.qpC.PostSend(SendWR{ID: 1, Op: OpRead, LocalAddr: h.lbuf, RemoteAddr: h.rbuf, Len: 100})
		h.cqC.WaitN(p, 1)
	})
	h.eng.MustRun()

	s := h.server.Telemetry().Snapshot(h.eng.Now())
	if got := s.Total(telemetry.SimRNRNakSent); uint64(got) != h.server.RNRNakSent {
		t.Errorf("sim_rnr_nak_sent = %v, field = %d", got, h.server.RNRNakSent)
	}
	if h.server.RNRNakSent == 0 {
		t.Error("server-side ODP READ should RNR NAK at least once")
	}
	if got := s.Total(telemetry.RxReadRequests); uint64(got) != h.server.ReadsExecuted {
		t.Errorf("rx_read_requests = %v, field = %d", got, h.server.ReadsExecuted)
	}
	if got := s.Total(telemetry.OdpPageFaults); uint64(got) != h.server.ODP.Faults {
		t.Errorf("num_page_faults = %v, field = %d", got, h.server.ODP.Faults)
	}
	if got := s.Total(telemetry.PortXmitPackets); uint64(got) != h.server.Port.TxPackets {
		t.Errorf("port_xmit_packets = %v, field = %d", got, h.server.Port.TxPackets)
	}
	if h.server.Port.TxPackets == 0 || h.server.Port.RxPackets == 0 {
		t.Error("port counters did not move")
	}

	// Per-QP requester counters live on the client registry, labelled by
	// QPN.
	c := h.client.Telemetry().Snapshot(h.eng.Now())
	if got := c.Total(telemetry.RNRNakRetryErr); uint64(got) != h.qpC.Stats.RNRNakReceived {
		t.Errorf("rnr_nak_retry_err = %v, field = %d", got, h.qpC.Stats.RNRNakReceived)
	}
	if got := c.Total(telemetry.Completions); got == 0 {
		t.Error("completions counter did not move")
	}
}

// TestTelemetryPrefetchCounter checks AdviseMR prefetches land in
// num_prefetch and warm the pages.
func TestTelemetryPrefetchCounter(t *testing.T) {
	h := newHarness(t, 1, ConnectX4(), serverODP, defaultParams())
	h.eng.Go("warm", func(p *sim.Proc) {
		h.server.AdviseMR(h.qpS.Num, h.rbuf, bufPages*4096)
		p.Sleep(50 * sim.Millisecond)
	})
	h.eng.MustRun()
	s := h.server.Telemetry().Snapshot(h.eng.Now())
	if got := s.Total(telemetry.OdpPrefetches); uint64(got) != h.server.ODP.Prefetches || got == 0 {
		t.Errorf("num_prefetch = %v, field = %d", got, h.server.ODP.Prefetches)
	}
}
