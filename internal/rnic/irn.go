package rnic

import (
	"math/bits"

	"odpsim/internal/hostmem"
	"odpsim/internal/irn"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// This file is the rnic half of the IRN selective-repeat transport
// (internal/irn holds the protocol state machines). With EnableIRN the
// QP's requester and responder take these branches instead of the
// go-back-N ones in qp.go/responder.go:
//
//   - the responder accepts out-of-order request arrivals into a bounded
//     reorder buffer and answers them with SACKs (cumulative ACK +
//     reception bitmap) instead of PSN-sequence-error NAKs; execution
//     stays in ePSN order and sweeps the buffered run when a gap fills;
//   - loss recovery is per packet: a SACK hole, an RNR NAK or a timeout
//     retransmits exactly one request, never the window tail;
//   - injection is bounded by bandwidth × base RTT (and the reorder
//     window) instead of relying on PFC backpressure;
//   - an ODP page fault holds only the faulting PSN: the responder NAKs
//     that packet per-packet (no pending window on the requester, so no
//     response discards and no damming replay batches), and a
//     client-side fault reissues only the faulting READ.

// EnableIRN switches every QP created afterwards to the IRN transport.
// Call before CreateQP; the irn_* counters register here so go-back-N
// devices keep their exact pre-existing metric set. A zero-value config
// derives the BDP from the device's line rate and the default base RTT.
func (r *RNIC) EnableIRN(cfg irn.Config) {
	if r.irnOn {
		panic("rnic: EnableIRN called twice")
	}
	r.irnOn = true
	if cfg.LineGbps <= 0 {
		cfg.LineGbps = r.prof.LinkGbps
	}
	r.irnBDP = cfg.EffectiveBDP()
	r.tel.Counter(telemetry.IrnSackSent, "SACKs sent for out-of-order arrivals", nil, &r.SackSent)
	r.tel.Counter(telemetry.IrnOooLanded, "requests accepted out of order into the reorder buffer", nil, &r.OooLanded)
	r.tel.Counter(telemetry.IrnBdpStalls, "sends deferred by the BDP injection cap", nil, &r.BdpStalls)
	r.tel.Counter(telemetry.IrnRetransmitted, "selective (single-packet) retransmissions", nil, &r.IrnRetrans)
}

// IRNEnabled reports whether the device runs the IRN transport.
func (r *RNIC) IRNEnabled() bool { return r.irnOn }

// irnHeaderBytes approximates the per-message header overhead charged
// against the BDP cap (LRH+BTH+RETH+CRCs of the request, or of one
// response chunk for READs).
const irnHeaderBytes = 48

// irnChargeBytes is the wire weight a WR charges against the BDP: the
// data-bearing direction's bytes (responses for READs, the request for
// everything else).
func (qp *QP) irnChargeBytes(w *wqe) int {
	return w.Len + irnHeaderBytes
}

// irnPump transmits queued WRs while the BDP cap and reorder-window
// span allow. The IRN requester has no pending windows, so the damming
// preconditions (postedPaused, inResume) never arise.
func (qp *QP) irnPump() {
	if qp.state != QPReady {
		return
	}
	sent := false
	for len(qp.sq) > 0 {
		w := qp.sq[0]
		if (w.Op == OpRead || isAtomic(w.Op)) && qp.OutstandingReads() >= qp.params.MaxRdAtomic {
			break
		}
		npsn := 1
		if w.Op == OpRead {
			npsn = (w.Len + qp.rnic.prof.MTU - 1) / qp.rnic.prof.MTU
			if npsn < 1 {
				npsn = 1
			}
		}
		bytes := qp.irnChargeBytes(w)
		if !qp.irn.TX.CanSend(bytes, npsn) {
			qp.rnic.BdpStalls++
			break
		}
		qp.sq = qp.sq[1:]
		o := &outReq{w: w, firstPSN: qp.nextPSN, npsn: npsn}
		qp.nextPSN = packet.PSNAdd(qp.nextPSN, npsn)
		if len(qp.out) == 0 {
			qp.rnic.busyQPs++
		}
		qp.out = append(qp.out, o)
		qp.irn.TX.OnSend(o.firstPSN, npsn, bytes)
		qp.sendRequest(o)
		sent = true
	}
	if sent && !qp.toTimer.Pending() {
		qp.armTimeout()
	}
}

// irnOnTimeout retransmits only the oldest unacknowledged request — the
// per-packet replacement for the go-back-N window replay.
func (qp *QP) irnOnTimeout() {
	o := qp.out[0]
	o.attempts++
	qp.Stats.Timeouts++
	if o.attempts > qp.params.RetryCount {
		qp.fatal(o, WCRetryExcErr)
		return
	}
	if qp.sendRequest(o) {
		qp.Stats.Retransmits++
		qp.rnic.IrnRetrans++
	}
	qp.armTimeout()
}

// irnRetransmitPSN reissues the single request containing psn (the RNR
// and client-fault recovery path). The request may have completed in
// the meantime — a duplicate ACK or response can beat the timer.
func (qp *QP) irnRetransmitPSN(psn uint32) {
	if qp.state != QPReady {
		return
	}
	o := qp.findOut(psn)
	if o == nil {
		return
	}
	if qp.sendRequest(o) {
		qp.Stats.Retransmits++
		qp.rnic.IrnRetrans++
	}
	if !qp.toTimer.Pending() {
		qp.armTimeout()
	}
}

// irnHandleRNR is the per-packet RNR NAK path: only the faulting
// request waits out the advertised delay; every other in-flight packet
// keeps flowing. No pending window, no response discards, no damming.
func (qp *QP) irnHandleRNR(pkt *packet.Packet) {
	qp.Stats.RNRNakReceived++
	o := qp.findOut(pkt.AckPSN)
	if o == nil {
		return
	}
	if qp.params.RNRRetry < 7 {
		o.rnrAttempts++
		if o.rnrAttempts > qp.params.RNRRetry {
			qp.fatal(o, WCRNRRetryExcErr)
			return
		}
	}
	wait := qp.rnic.eng.Jitter(
		sim.Time(float64(pkt.RNRTimerNs)*qp.rnic.prof.RNRWaitFactor), 0.05)
	psn := o.firstPSN
	qp.rnic.eng.ScheduleAfter(wait, func() { qp.irnRetransmitPSN(psn) })
}

// irnHandleSack processes a selective acknowledgement: complete through
// the cumulative point, mark requests the bitmap shows received, and
// retransmit each hole below the highest sacked PSN exactly once per
// recovery round (a hole that stays open falls back to the timeout).
func (qp *QP) irnHandleSack(pkt *packet.Packet) {
	if qp.irn == nil {
		return // a SACK can only reach a go-back-N QP by misconfiguration
	}
	qp.ackThrough(pkt.AckPSN)
	bm := pkt.SackBitmap
	if bm == 0 || len(qp.out) == 0 {
		return
	}
	base := pkt.SackBase
	hi := 63 - bits.LeadingZeros64(bm)
	hiPSN := packet.PSNAdd(base, hi)
	resent := false
	for _, o := range qp.out {
		d := packet.PSNDiff(o.firstPSN, base)
		if d >= 0 && d < 64 && bm&(1<<uint(d)) != 0 {
			o.sacked = true
			continue
		}
		if d < 0 || !packet.PSNLess(o.firstPSN, hiPSN) || o.sacked || o.retxDone {
			continue
		}
		if qp.sendRequest(o) {
			o.retxDone = true
			qp.Stats.Retransmits++
			qp.rnic.IrnRetrans++
			resent = true
		}
	}
	if resent {
		qp.armTimeout()
	}
}

// irnClientFault is the IRN client-side ODP path for a READ response
// whose local page is not yet resident: drop the response, register the
// fault, and reissue only the faulting READ after the retransmission
// interval. Other responses keep landing — the packet-flood loop
// shrinks from the whole window to one request.
func (qp *QP) irnClientFault(o *outReq) {
	qp.Stats.ResponsesDiscarded++
	qp.Stats.ClientFaultRounds++
	if !o.w.faulted {
		o.w.faulted = true
		qp.rnic.ODP.Fault(qp.Num, o.w.LocalAddr, o.w.Len)
	} else {
		qp.rnic.ODP.Spurious(qp.Num, o.w.LocalAddr, o.w.Len)
	}
	delay := qp.rnic.eng.Jitter(qp.rnic.ODP.RetransInterval(), 0.1)
	psn := o.firstPSN
	qp.rnic.eng.ScheduleAfter(delay, func() { qp.irnRetransmitPSN(psn) })
}

// irnReleaseTX frees completed requests' BDP charges: everything below
// the new head of the outstanding window has been delivered in order.
func (qp *QP) irnReleaseTX() {
	upto := qp.nextPSN
	if len(qp.out) > 0 {
		upto = qp.out[0].firstPSN
	}
	qp.irn.TX.Complete(upto)
}

// irnResponderReceive classifies an arriving request against the
// reorder buffer: in-order packets execute and sweep the buffered run,
// out-of-order packets stash and SACK, duplicates re-acknowledge.
func (qp *QP) irnResponderReceive(pkt *packet.Packet) {
	r := qp.rnic
	rb := &qp.irn.RB
	switch rb.Classify(pkt.PSN) {
	case irn.InOrder:
		npsn, ok := qp.irnExecute(pkt)
		if !ok {
			return // NAKed per packet; ePSN holds
		}
		rb.Advance(npsn)
		qp.irnSweep()
	case irn.Duplicate:
		r.DuplicateRequests++
		if packet.PSNDiff(pkt.PSN, rb.EPSN()) > 0 {
			// Stashed but not yet executed: refresh the SACK.
			qp.irnSendSack()
			return
		}
		qp.irnRespondDup(pkt)
	case irn.OutOfOrder:
		r.OooLanded++
		rb.Stash(pkt)
		qp.irnSendSack()
	case irn.BeyondWindow:
		// A conforming requester's span cap keeps arrivals inside the
		// window; drop and restate our receive state.
		qp.irnSendSack()
	}
}

// irnSweep executes stashed packets as the gap fills, advancing ePSN
// through the buffered run. A head that faults is NAKed per packet and
// dropped from the buffer; the sweep resumes when its retransmission
// arrives.
func (qp *QP) irnSweep() {
	rb := &qp.irn.RB
	for {
		h, ok := rb.Head()
		if !ok {
			return
		}
		npsn, ok := qp.irnExecute(h)
		if !ok {
			rb.DropHead()
			return
		}
		rb.Advance(npsn)
	}
}

// irnExecute runs one request packet at the head of the window. It
// returns the PSN span to advance by and whether execution succeeded;
// on an ODP miss it registers the fault and sends the per-packet RNR
// NAK (the caller leaves ePSN in place). Acknowledgement mirrors the
// go-back-N responder: WRITEs ACK when asked, SENDs ACK after the CQE,
// READs answer with response packets.
func (qp *QP) irnExecute(pkt *packet.Packet) (npsn int, ok bool) {
	r := qp.rnic
	switch pkt.Opcode {
	case packet.OpReadRequest:
		addr := hostmem.Addr(pkt.RemoteAddr)
		length := int(pkt.DMALen)
		npsn = (length + r.prof.MTU - 1) / r.prof.MTU
		if npsn < 1 {
			npsn = 1
		}
		if _, found := r.lookupMR(addr, length); !found {
			qp.sendAck(packet.SynNAKRemoteAccessErr, pkt.PSN)
			return npsn, false
		}
		ok, stall := qp.translateRemote(addr, length)
		if !ok {
			r.RNRNakSent++
			qp.sendRNRNak(pkt.PSN)
			return npsn, false
		}
		r.ReadsExecuted++
		if stall > 0 {
			psn := pkt.PSN
			r.eng.ScheduleAfter(stall, func() { qp.sendReadResponse(psn, length, npsn) })
			return npsn, true
		}
		qp.sendReadResponse(pkt.PSN, length, npsn)
		return npsn, true

	case packet.OpWriteOnly:
		addr := hostmem.Addr(pkt.RemoteAddr)
		length := int(pkt.DMALen)
		if _, found := r.lookupMR(addr, length); !found {
			qp.sendAck(packet.SynNAKRemoteAccessErr, pkt.PSN)
			return 1, false
		}
		ok, stall := qp.translateRemote(addr, length)
		if !ok {
			r.RNRNakSent++
			qp.sendRNRNak(pkt.PSN)
			return 1, false
		}
		r.WritesExecuted++
		if pkt.AckReq {
			if stall > 0 {
				psn := pkt.PSN
				r.eng.ScheduleAfter(stall, func() { qp.sendAck(packet.SynACK, psn) })
			} else {
				qp.sendAck(packet.SynACK, pkt.PSN)
			}
		}
		return 1, true

	case packet.OpSendOnly:
		if len(qp.rq) == 0 {
			r.RNRNakSent++
			r.OutOfBuffer++
			qp.sendRNRNak(pkt.PSN)
			return 1, false
		}
		rwr := qp.rq[0]
		ok, stall := qp.translateRemote(rwr.Addr, pkt.PayloadLen)
		if !ok {
			r.RNRNakSent++
			qp.sendRNRNak(pkt.PSN)
			return 1, false
		}
		qp.rq = qp.rq[1:]
		if stall > 0 {
			id, psn, plen := rwr.ID, pkt.PSN, pkt.PayloadLen
			r.eng.ScheduleAfter(stall, func() {
				qp.deliver(qp.recvCQ, CQE{WRID: id, QPN: qp.Num, Status: WCSuccess, Op: OpSend, ByteLen: plen, Recv: true})
				qp.sendAck(packet.SynACK, psn)
			})
			return 1, true
		}
		qp.deliver(qp.recvCQ, CQE{WRID: rwr.ID, QPN: qp.Num, Status: WCSuccess, Op: OpSend, ByteLen: pkt.PayloadLen, Recv: true})
		qp.sendAck(packet.SynACK, pkt.PSN)
		return 1, true

	case packet.OpFetchAdd, packet.OpCmpSwap:
		return 1, qp.irnExecuteAtomic(pkt)
	}
	return 1, true
}

// irnExecuteAtomic executes an atomic at the head of the window,
// sharing the replay cache with the go-back-N responder.
func (qp *QP) irnExecuteAtomic(pkt *packet.Packet) bool {
	r := qp.rnic
	addr := hostmem.Addr(pkt.RemoteAddr)
	if _, found := r.lookupMR(addr, 8); !found {
		qp.sendAck(packet.SynNAKRemoteAccessErr, pkt.PSN)
		return false
	}
	ok, stall := qp.translateRemote(addr, 8)
	if !ok {
		r.RNRNakSent++
		qp.sendRNRNak(pkt.PSN)
		return false
	}
	orig := r.AS.ReadWord(addr)
	switch pkt.Opcode {
	case packet.OpFetchAdd:
		r.AS.WriteWord(addr, orig+pkt.AtomicSwap)
	case packet.OpCmpSwap:
		if orig == pkt.AtomicCompare {
			r.AS.WriteWord(addr, pkt.AtomicSwap)
		}
	}
	r.AtomicsExecuted++
	qp.rememberAtomic(pkt.PSN, orig)
	if stall > 0 {
		psn := pkt.PSN
		r.eng.ScheduleAfter(stall, func() { qp.sendAtomicResp(psn, orig) })
		return true
	}
	qp.sendAtomicResp(pkt.PSN, orig)
	return true
}

// irnRespondDup re-answers an already-executed request: READs re-send
// their data (the requester only re-asks after losing responses),
// atomics replay from the cache, and everything else gets the current
// cumulative ACK so the requester can clean up a lost acknowledgement.
func (qp *QP) irnRespondDup(pkt *packet.Packet) {
	r := qp.rnic
	switch pkt.Opcode {
	case packet.OpReadRequest:
		addr := hostmem.Addr(pkt.RemoteAddr)
		length := int(pkt.DMALen)
		npsn := (length + r.prof.MTU - 1) / r.prof.MTU
		if npsn < 1 {
			npsn = 1
		}
		if _, found := r.lookupMR(addr, length); !found {
			qp.sendAck(packet.SynNAKRemoteAccessErr, pkt.PSN)
			return
		}
		ok, stall := qp.translateRemote(addr, length)
		if !ok {
			r.RNRNakSent++
			qp.sendRNRNak(pkt.PSN)
			return
		}
		r.ReadsExecuted++
		if stall > 0 {
			psn := pkt.PSN
			r.eng.ScheduleAfter(stall, func() { qp.sendReadResponse(psn, length, npsn) })
			return
		}
		qp.sendReadResponse(pkt.PSN, length, npsn)
	case packet.OpFetchAdd, packet.OpCmpSwap:
		if orig, ok := qp.atomicReplay[pkt.PSN]; ok {
			qp.sendAtomicResp(pkt.PSN, orig)
		}
	default:
		qp.sendAck(packet.SynACK, packet.PSNAdd(qp.irn.RB.EPSN(), -1))
	}
}

// irnSendSack emits the responder's receive state: cumulative ACK plus
// the out-of-order reception bitmap. It doubles as the per-packet NAK
// for the first hole (SackBase).
func (qp *QP) irnSendSack() {
	base, bm := qp.irn.RB.Sack()
	pkt := qp.rnic.pool.Get()
	pkt.DLID = qp.dlid
	pkt.DestQP = qp.dqpn
	pkt.SrcQP = qp.Num
	pkt.Opcode = packet.OpSACK
	pkt.Syndrome = packet.SynACK
	pkt.AckPSN = packet.PSNAdd(base, -1)
	pkt.PSN = pkt.AckPSN
	pkt.SackBase = base
	pkt.SackBitmap = bm
	qp.rnic.SackSent++
	qp.rnic.Port.Send(pkt)
}
