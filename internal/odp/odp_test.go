package odp

import (
	"testing"

	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
)

func setup(t *testing.T, cfg Config) (*sim.Engine, *hostmem.AddressSpace, *Engine) {
	t.Helper()
	eng := sim.New(1)
	as := hostmem.NewAddressSpace(eng, hostmem.DefaultConfig())
	return eng, as, New(as, cfg)
}

func TestFaultMakesVisible(t *testing.T) {
	eng, as, e := setup(t, DefaultConfig())
	a := as.Alloc(hostmem.PageSize)
	if e.Access(1, a, 100) {
		t.Fatal("fresh page should not be accessible")
	}
	e.Fault(1, a, 100)
	if e.StaleCount() != 1 {
		t.Errorf("StaleCount = %d", e.StaleCount())
	}
	eng.Run()
	if !e.Access(1, a, 100) {
		t.Error("page should be visible after fault resolution")
	}
	if e.StaleCount() != 0 {
		t.Error("stale count should drop to zero")
	}
	if e.Faults != 1 || e.PairFaults != 1 || e.Updates != 1 {
		t.Errorf("counters: faults=%d pairs=%d updates=%d", e.Faults, e.PairFaults, e.Updates)
	}
	// Resolution time = host resolve (200–700µs) + update (≈40µs).
	if eng.Now() < 200*sim.Microsecond || eng.Now() > 800*sim.Microsecond {
		t.Errorf("resolution took %v", eng.Now())
	}
}

func TestVisibilityIsPerQP(t *testing.T) {
	eng, as, e := setup(t, DefaultConfig())
	a := as.Alloc(hostmem.PageSize)
	e.Fault(1, a, 100)
	eng.Run()
	if e.Access(2, a, 100) {
		t.Error("QP 2 should not see QP 1's translation update")
	}
	// QP 2 faults on a host-mapped page: only an update is needed.
	before := eng.Now()
	e.Fault(2, a, 100)
	eng.Run()
	if !e.Access(2, a, 100) {
		t.Error("QP 2 should be visible after its own fault")
	}
	if e.Faults != 1 {
		t.Errorf("host-level faults = %d, want 1 (page already mapped)", e.Faults)
	}
	// The second fault should cost roughly one update, not a resolve.
	if d := eng.Now() - before; d > 100*sim.Microsecond {
		t.Errorf("second-QP fault took %v, want ≈40µs", d)
	}
}

func TestFaultIdempotent(t *testing.T) {
	eng, as, e := setup(t, DefaultConfig())
	a := as.Alloc(hostmem.PageSize)
	e.Fault(1, a, 100)
	e.Fault(1, a, 100)
	e.Fault(1, a, 100)
	eng.Run()
	if e.PairFaults != 1 || e.Updates != 1 {
		t.Errorf("repeated Fault should register once: pairs=%d updates=%d", e.PairFaults, e.Updates)
	}
}

func TestMultiPageFault(t *testing.T) {
	eng, as, e := setup(t, DefaultConfig())
	a := as.Alloc(3 * hostmem.PageSize)
	e.Fault(1, a, 3*hostmem.PageSize)
	eng.Run()
	if !e.Access(1, a, 3*hostmem.PageSize) {
		t.Error("all pages should be visible")
	}
	if e.Faults != 3 || e.Updates != 3 {
		t.Errorf("faults=%d updates=%d", e.Faults, e.Updates)
	}
}

func TestResolvesAreSerial(t *testing.T) {
	// N pages faulted together should take ≈ N × resolve latency: the
	// pipeline is the paper's "limited memory and functionality".
	eng, as, e := setup(t, DefaultConfig())
	const n = 10
	a := as.Alloc(n * hostmem.PageSize)
	e.Fault(1, a, n*hostmem.PageSize)
	eng.Run()
	min := sim.Time(n) * 200 * sim.Microsecond
	if eng.Now() < min {
		t.Errorf("%d resolves took %v, want ≥ %v (serialized)", n, eng.Now(), min)
	}
}

func TestLIFOUpdateOrder(t *testing.T) {
	// With many QPs faulting the same page, the earliest-faulting QP is
	// updated last (Figure 11a's first-30-stuck shape).
	eng, as, e := setup(t, DefaultConfig())
	a := as.Alloc(hostmem.PageSize)
	const n = 8
	var order []uint32
	for qp := uint32(0); qp < n; qp++ {
		e.Fault(qp, a, 32)
	}
	// Poll visibility transitions.
	var watch func()
	seen := make(map[uint32]bool)
	watch = func() {
		for qp := uint32(0); qp < n; qp++ {
			if !seen[qp] && e.Visible(qp, hostmem.PageOf(a)) {
				seen[qp] = true
				order = append(order, qp)
			}
		}
		if len(order) < n {
			eng.After(sim.Microsecond, watch)
		}
	}
	eng.After(0, watch)
	eng.Run()
	if len(order) != n {
		t.Fatalf("only %d QPs became visible", len(order))
	}
	if order[0] != n-1 || order[n-1] != 0 {
		t.Errorf("update order = %v, want LIFO (newest first)", order)
	}
}

func TestFIFOAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdatesFIFO = true
	eng, as, e := setup(t, cfg)
	a := as.Alloc(hostmem.PageSize)
	e.Fault(0, a, 32)
	e.Fault(1, a, 32)
	firstVisible := uint32(99)
	var watch func()
	watch = func() {
		if firstVisible == 99 {
			for qp := uint32(0); qp < 2; qp++ {
				if e.Visible(qp, hostmem.PageOf(a)) {
					firstVisible = qp
					return
				}
			}
			eng.After(sim.Microsecond, watch)
		}
	}
	eng.After(0, watch)
	eng.Run()
	if firstVisible != 0 {
		t.Errorf("FIFO should update QP 0 first, got %d", firstVisible)
	}
}

func TestSpuriousDelaysUpdates(t *testing.T) {
	// Same fault pattern, with and without spurious traffic: spurious
	// pipeline work must delay completion (the flood feedback).
	run := func(spurious int) sim.Time {
		eng, as, e := setup(t, DefaultConfig())
		a := as.Alloc(hostmem.PageSize)
		for qp := uint32(0); qp < 16; qp++ {
			e.Fault(qp, a, 32)
		}
		// Distinct (QP, page) pairs so coalescing does not absorb them.
		for i := 0; i < spurious; i++ {
			e.Spurious(uint32(100+i), a, 32)
		}
		eng.Run()
		return eng.Now()
	}
	quiet, noisy := run(0), run(200)
	if noisy <= quiet+4*sim.Millisecond {
		t.Errorf("200 spurious items should add ≈5ms: quiet=%v noisy=%v", quiet, noisy)
	}
}

func TestSpuriousCoalescing(t *testing.T) {
	eng, as, e := setup(t, DefaultConfig())
	a := as.Alloc(hostmem.PageSize)
	e.Fault(1, a, 32)
	// A storm of re-discards on one stale pair coalesces to ≈1 queued
	// item at a time: the pipeline must not be swamped.
	for i := 0; i < 1000; i++ {
		e.Spurious(1, a, 32)
	}
	if e.QueueLen() > 3 {
		t.Errorf("queue = %d items, want coalesced", e.QueueLen())
	}
	eng.Run()
	if e.SpuriousTotal != 1000 {
		t.Errorf("SpuriousTotal = %d (should still count all)", e.SpuriousTotal)
	}
	if eng.Now() > 2*sim.Millisecond {
		t.Errorf("coalesced storm took %v", eng.Now())
	}
}

func TestSpuriousFreeAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpuriousFree = true
	eng, as, e := setup(t, cfg)
	a := as.Alloc(hostmem.PageSize)
	e.Fault(0, a, 32)
	for i := 0; i < 1000; i++ {
		e.Spurious(0, a, 32)
	}
	eng.Run()
	if eng.Now() > sim.Millisecond {
		t.Errorf("with SpuriousFree, spurious items must cost nothing; took %v", eng.Now())
	}
	if e.SpuriousTotal != 1000 {
		t.Errorf("SpuriousTotal = %d (should still count)", e.SpuriousTotal)
	}
}

func TestRetransIntervalGrowsWithLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetransPerStale = 30 * sim.Microsecond
	_, as, e := setup(t, cfg)
	base := e.RetransInterval()
	if base != cfg.RetransBase {
		t.Errorf("idle interval = %v", base)
	}
	a := as.Alloc(100 * hostmem.PageSize)
	for qp := uint32(0); qp < 100; qp++ {
		e.Fault(qp, a+hostmem.Addr(qp)*hostmem.PageSize, 32)
	}
	loaded := e.RetransInterval()
	want := cfg.RetransBase + 100*cfg.RetransPerStale
	if loaded != want {
		t.Errorf("loaded interval = %v, want %v", loaded, want)
	}
	if DefaultConfig().RetransPerStale != 0 {
		t.Error("default RetransPerStale should be 0 (pure 0.5 ms rounds)")
	}
}

func TestInvalidationClearsVisibility(t *testing.T) {
	eng, as, e := setup(t, DefaultConfig())
	a := as.Alloc(hostmem.PageSize)
	e.Fault(1, a, 100)
	e.Fault(2, a, 100)
	eng.Run()
	as.Release(a, hostmem.PageSize)
	if e.Visible(1, hostmem.PageOf(a)) || e.Visible(2, hostmem.PageOf(a)) {
		t.Error("released page should be invisible to every QP")
	}
	// Re-fault works.
	e.Fault(1, a, 100)
	eng.Run()
	if !e.Visible(1, hostmem.PageOf(a)) {
		t.Error("re-fault after invalidation should succeed")
	}
}

func TestPinnedPageFaultIsCheap(t *testing.T) {
	eng, as, e := setup(t, DefaultConfig())
	a := as.Alloc(hostmem.PageSize)
	as.Pin(a, hostmem.PageSize)
	e.Fault(1, a, 100)
	eng.Run()
	if !e.Access(1, a, 100) {
		t.Error("pinned page should become visible")
	}
	if e.Faults != 0 {
		t.Error("no host-level fault should be needed for a pinned page")
	}
}

func TestAccessPartialRange(t *testing.T) {
	eng, as, e := setup(t, DefaultConfig())
	a := as.Alloc(2 * hostmem.PageSize)
	e.Fault(1, a, 10) // first page only
	eng.Run()
	if !e.Access(1, a, hostmem.PageSize) {
		t.Error("first page should be accessible")
	}
	if e.Access(1, a, hostmem.PageSize+1) {
		t.Error("range spilling into unfaulted page must not be accessible")
	}
}
