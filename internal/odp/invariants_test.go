package odp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
)

// TestPipelineConservationProperty: for any random mix of faults and
// spurious accesses, once the simulation drains (no traffic regenerates
// work), every registered pair becomes visible, the stale count reaches
// zero, and completed updates equal registered pair-faults.
func TestPipelineConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64, opsRaw []uint16) bool {
		eng := sim.New(seed)
		as := hostmem.NewAddressSpace(eng, hostmem.DefaultConfig())
		e := New(as, DefaultConfig())
		base := as.Alloc(64 * hostmem.PageSize)
		type pair struct {
			qp   uint32
			page int
		}
		want := map[pair]bool{}
		for _, raw := range opsRaw {
			qp := uint32(raw % 8)
			page := int(raw/8) % 16
			addr := base + hostmem.Addr(page*hostmem.PageSize)
			if raw%3 == 0 {
				e.Spurious(qp, addr, 32)
			} else {
				e.Fault(qp, addr, 32)
				want[pair{qp, page}] = true
			}
		}
		eng.Run()
		if e.StaleCount() != 0 {
			return false
		}
		if e.Updates != e.PairFaults {
			return false
		}
		if int(e.PairFaults) != len(want) {
			return false
		}
		for p := range want {
			if !e.Visible(p.qp, hostmem.PageOf(base)+hostmem.PageNo(p.page)) {
				return false
			}
		}
		// The pipeline must be idle and empty.
		return e.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestInvalidationConsistencyProperty: after any interleaving of faults
// and page releases, no reclaimed page stays visible.
func TestInvalidationConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := func(seed int64, steps []uint8) bool {
		eng := sim.New(seed)
		as := hostmem.NewAddressSpace(eng, hostmem.DefaultConfig())
		e := New(as, DefaultConfig())
		base := as.Alloc(8 * hostmem.PageSize)
		for _, s := range steps {
			page := int(s % 8)
			addr := base + hostmem.Addr(page*hostmem.PageSize)
			if s%2 == 0 {
				e.Fault(uint32(s%4), addr, 16)
			} else {
				eng.Run() // settle in-flight resolutions first
				as.Release(addr, hostmem.PageSize)
				// Invariant: immediately after release, invisible to all.
				for qp := uint32(0); qp < 4; qp++ {
					if e.Visible(qp, hostmem.PageOf(addr)) {
						return false
					}
				}
			}
		}
		eng.Run()
		return e.StaleCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}
