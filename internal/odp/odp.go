// Package odp models the On-Demand Paging engine at the RNIC/driver
// boundary. The paper's high-level conclusion is that network page fault
// handling is hard precisely because the RNIC has limited memory and
// functionality; we model that limitation as a *single serial pipeline*
// through which all ODP work flows, in arrival (FIFO) order:
//
//   - spurious items: datapath handling of a retransmitted READ response
//     that was discarded because the (QP, page) status is still stale —
//     cheap per item, but issued on every retransmission round by every
//     stale pair (client-side only: the responder is stateless and NAKs
//     for free, §VI-C);
//   - resolve items: host page-fault resolution — one serial item per
//     faulted page, costing the kernel's 250–500 µs;
//   - update items: propagating a resolved page's status into one QP's
//     hardware context — the step whose delay the paper names "update
//     failure of page statuses" (§VI-B). A page's update batch is
//     enqueued newest-registrant-first, which reproduces Figure 11a's
//     observation that the *first* ~30 operations stay unfinished the
//     longest.
//
// With many QPs the spurious traffic lands in the queue ahead of later
// pages' resolves and updates, delaying them, which provokes further
// retransmission rounds — the feedback loop of packet flood.
package odp

import (
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// Key identifies a per-QP view of one page's translation status.
type Key struct {
	QP   uint32
	Page hostmem.PageNo
}

// Config tunes the ODP engine. Defaults are calibrated against the
// paper's ConnectX-4 measurements (see DESIGN.md §4).
type Config struct {
	// QPUpdateCost is the pipeline time to install a resolved page's
	// status into one QP context (Figure 11a: ≈128 updates spread over
	// ≈5 ms).
	QPUpdateCost sim.Time
	// SpuriousCost is the pipeline time consumed by one discarded
	// retransmitted response on a stale (QP, page) pair.
	SpuriousCost sim.Time
	// RetransBase is the requester-side retransmission period after a
	// client-side ODP drop (≈0.5 ms observed in Figure 1).
	RetransBase sim.Time
	// RetransPerStale optionally lengthens the retransmission period per
	// stale (QP, page) pair, modelling the client-side load of managing
	// many retransmission timers (§VI-C / §VII-B observed flood-time
	// retransmissions every several tens of ms). Default 0.
	RetransPerStale sim.Time
	// UpdatesFIFO switches a page's update batch to oldest-first order;
	// the default (false) is newest-first, which matches Figure 11a.
	// Exposed for ablation.
	UpdatesFIFO bool
	// SpuriousFree disables the pipeline cost of spurious accesses.
	// Exposed for ablation: with it set, packet flood largely vanishes.
	SpuriousFree bool
}

// DefaultConfig returns the ConnectX-4 calibration.
func DefaultConfig() Config {
	return Config{
		QPUpdateCost: 40 * sim.Microsecond,
		SpuriousCost: 25 * sim.Microsecond,
		RetransBase:  500 * sim.Microsecond,
	}
}

type itemKind int

const (
	kindSpurious itemKind = iota
	kindResolve
	kindUpdate
)

type workItem struct {
	kind itemKind
	page hostmem.PageNo // resolve
	key  Key            // update
}

// Engine is one RNIC's ODP machinery.
type Engine struct {
	eng *sim.Engine
	as  *hostmem.AddressSpace
	cfg Config

	// visible tracks which (QP, page) translations the QP's hardware
	// context can currently use.
	visible map[Key]bool
	// interested lists pairs awaiting a page's host resolution.
	interested map[hostmem.PageNo][]Key
	// pending marks pairs that are faulted but not yet visible.
	pending map[Key]bool

	busy  bool
	queue []workItem
	// queuedSpurious coalesces spurious work per stale pair: a pair
	// whose discard is already queued contributes no further pipeline
	// work until it is serviced (the microcode batches re-discards),
	// which bounds the queue at one item per stale pair.
	queuedSpurious map[Key]bool

	// Counters. The fields are the live storage behind the telemetry
	// registry (see RegisterMetrics); reading them directly and reading
	// the registry always agree.
	Faults        uint64 // page-level faults initiated
	PairFaults    uint64 // (QP,page) pair faults registered
	Updates       uint64 // status updates completed
	SpuriousTotal uint64 // spurious accesses recorded
	Invalidations uint64 // (QP,page) translations flushed by the notifier
	Prefetches    uint64 // (QP,page) pairs prefetched via AdviseMR
}

// New creates an ODP engine bound to an address space. It registers an
// MMU notifier so kernel page reclaim invalidates device translations.
func New(as *hostmem.AddressSpace, cfg Config) *Engine {
	e := &Engine{
		eng:            as.Engine(),
		as:             as,
		cfg:            cfg,
		visible:        make(map[Key]bool),
		interested:     make(map[hostmem.PageNo][]Key),
		pending:        make(map[Key]bool),
		queuedSpurious: make(map[Key]bool),
	}
	as.RegisterNotifier(e.invalidate)
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// RegisterMetrics publishes the engine's counters and load gauges on reg
// under the mlx5 ODP vocabulary. The owning device calls this once with
// its per-device registry.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter(telemetry.OdpPageFaults, "page-level network page faults entering host resolution", nil, &e.Faults)
	reg.Counter(telemetry.OdpPairFaults, "(QP,page) pair faults registered with the ODP pipeline", nil, &e.PairFaults)
	reg.Counter(telemetry.OdpStatusUpdates, "per-QP page-status updates completed", nil, &e.Updates)
	reg.Counter(telemetry.OdpSpuriousAccesses, "discarded retransmitted accesses on still-stale pairs", nil, &e.SpuriousTotal)
	reg.Counter(telemetry.OdpInvalidations, "(QP,page) translations flushed by MMU notifier invalidations", nil, &e.Invalidations)
	reg.Counter(telemetry.OdpPrefetches, "(QP,page) pairs prefetched via ibv_advise_mr", nil, &e.Prefetches)
	reg.Gauge(telemetry.OdpStalePairs, "(QP,page) pairs faulted but not yet visible", nil,
		func() float64 { return float64(len(e.pending)) })
	reg.Gauge(telemetry.OdpPipelineDepth, "items queued in the serial ODP pipeline", nil,
		func() float64 { return float64(len(e.queue)) })
}

// StaleCount returns the number of (QP, page) pairs that have faulted but
// whose status update has not yet completed.
func (e *Engine) StaleCount() int { return len(e.pending) }

// QueueLen returns the number of queued pipeline items (for tests and
// load inspection).
func (e *Engine) QueueLen() int { return len(e.queue) }

// RetransInterval returns the requester retransmission period under the
// current load (see Config.RetransPerStale).
func (e *Engine) RetransInterval() sim.Time {
	return e.cfg.RetransBase + sim.Time(len(e.pending))*e.cfg.RetransPerStale
}

// Visible reports whether qp's context can translate page.
func (e *Engine) Visible(qp uint32, page hostmem.PageNo) bool {
	return e.visible[Key{qp, page}]
}

// Access reports whether qp can translate the whole byte range — i.e.
// whether an RDMA access proceeds without a network page fault.
func (e *Engine) Access(qp uint32, addr hostmem.Addr, length int) bool {
	for _, p := range hostmem.PagesSpanned(addr, length) {
		if !e.visible[Key{qp, p}] {
			return false
		}
	}
	return true
}

// Pending reports whether any page of the range already has a fault in
// flight for qp.
func (e *Engine) Pending(qp uint32, addr hostmem.Addr, length int) bool {
	for _, p := range hostmem.PagesSpanned(addr, length) {
		if e.pending[Key{qp, p}] {
			return true
		}
	}
	return false
}

// Fault registers a network page fault by qp on every non-visible page of
// the range and starts the pipeline. Safe to call repeatedly; pairs
// already pending are not re-registered.
func (e *Engine) Fault(qp uint32, addr hostmem.Addr, length int) {
	for _, p := range hostmem.PagesSpanned(addr, length) {
		k := Key{qp, p}
		if e.visible[k] || e.pending[k] {
			continue
		}
		e.pending[k] = true
		e.PairFaults++
		switch e.as.State(p) {
		case hostmem.Mapped, hostmem.Pinned:
			// Host side is fine; only this QP's status needs updating.
			e.queue = append(e.queue, workItem{kind: kindUpdate, key: k})
		default:
			if _, inflight := e.interested[p]; !inflight {
				e.queue = append(e.queue, workItem{kind: kindResolve, page: p})
				e.Faults++
			}
			e.interested[p] = append(e.interested[p], k)
		}
	}
	e.kick()
}

// Prefetch pre-faults the range into qp's context on behalf of
// ibv_advise_mr(IBV_ADVISE_MR_ADVICE_PREFETCH). It runs the ordinary
// fault path — the serial pipeline still pays for it — but counts
// separately, the way the driver's num_prefetch does.
func (e *Engine) Prefetch(qp uint32, addr hostmem.Addr, length int) {
	for _, p := range hostmem.PagesSpanned(addr, length) {
		k := Key{qp, p}
		if !e.visible[k] && !e.pending[k] {
			e.Prefetches++
		}
	}
	e.Fault(qp, addr, length)
}

// Spurious records a discarded retransmitted access on a still-stale
// pair. It consumes pipeline time, delaying resolves and updates queued
// behind it — the packet-flood feedback loop.
func (e *Engine) Spurious(qp uint32, addr hostmem.Addr, length int) {
	e.SpuriousTotal++
	if e.cfg.SpuriousFree {
		return
	}
	k := Key{qp, hostmem.PageOf(addr)}
	if e.queuedSpurious[k] {
		return
	}
	e.queuedSpurious[k] = true
	e.queue = append(e.queue, workItem{kind: kindSpurious, key: k})
	e.kick()
}

// invalidate flushes device translations for reclaimed pages (all QPs).
func (e *Engine) invalidate(inv hostmem.Invalidation) {
	reclaimed := make(map[hostmem.PageNo]bool, len(inv.Pages))
	for _, p := range inv.Pages {
		reclaimed[p] = true
	}
	for k := range e.visible {
		if reclaimed[k.Page] {
			delete(e.visible, k)
			e.Invalidations++
		}
	}
}

// kick advances the serial pipeline if it is idle.
func (e *Engine) kick() {
	if e.busy || len(e.queue) == 0 {
		return
	}
	it := e.queue[0]
	e.queue = e.queue[1:]
	e.busy = true
	finish := func() {
		e.busy = false
		e.kick()
	}
	switch it.kind {
	case kindSpurious:
		delete(e.queuedSpurious, it.key)
		e.eng.After(e.eng.Jitter(e.cfg.SpuriousCost, 0.1), finish)
	case kindResolve:
		p := it.page
		e.as.ResolveFault(p, func() {
			// Host resolution finished; queue this page's per-QP
			// status updates as one batch, newest registrant first
			// (the order Figure 11a exposes).
			pairs := e.interested[p]
			delete(e.interested, p)
			if !e.cfg.UpdatesFIFO {
				for i, j := 0, len(pairs)-1; i < j; i, j = i+1, j-1 {
					pairs[i], pairs[j] = pairs[j], pairs[i]
				}
			}
			for _, k := range pairs {
				e.queue = append(e.queue, workItem{kind: kindUpdate, key: k})
			}
			finish()
		})
	case kindUpdate:
		k := it.key
		e.eng.After(e.eng.Jitter(e.cfg.QPUpdateCost, 0.1), func() {
			e.visible[k] = true
			delete(e.pending, k)
			e.Updates++
			finish()
		})
	}
}
