// Package odp models the On-Demand Paging engine at the RNIC/driver
// boundary. The paper's high-level conclusion is that network page fault
// handling is hard precisely because the RNIC has limited memory and
// functionality; we model that limitation as a *single serial pipeline*
// through which all ODP work flows, in arrival (FIFO) order:
//
//   - spurious items: datapath handling of a retransmitted READ response
//     that was discarded because the (QP, page) status is still stale —
//     cheap per item, but issued on every retransmission round by every
//     stale pair (client-side only: the responder is stateless and NAKs
//     for free, §VI-C);
//   - resolve items: host page-fault resolution — one serial item per
//     faulted page, costing the kernel's 250–500 µs;
//   - update items: propagating a resolved page's status into one QP's
//     hardware context — the step whose delay the paper names "update
//     failure of page statuses" (§VI-B). A page's update batch is
//     enqueued newest-registrant-first, which reproduces Figure 11a's
//     observation that the *first* ~30 operations stay unfinished the
//     longest.
//
// With many QPs the spurious traffic lands in the queue ahead of later
// pages' resolves and updates, delaying them, which provokes further
// retransmission rounds — the feedback loop of packet flood.
//
// Status tables are dense slices indexed by (QP number, page number) —
// both small consecutive integers — so the per-packet Access check costs
// array indexing instead of map hashing. Maps remain only on cold sparse
// paths (pages with a resolution in flight).
package odp

import (
	"odpsim/internal/hostmem"
	"odpsim/internal/sim"
	"odpsim/internal/telemetry"
)

// Key identifies a per-QP view of one page's translation status.
type Key struct {
	QP   uint32
	Page hostmem.PageNo
}

// Config tunes the ODP engine. Defaults are calibrated against the
// paper's ConnectX-4 measurements (see DESIGN.md §4).
type Config struct {
	// QPUpdateCost is the pipeline time to install a resolved page's
	// status into one QP context (Figure 11a: ≈128 updates spread over
	// ≈5 ms).
	QPUpdateCost sim.Time
	// SpuriousCost is the pipeline time consumed by one discarded
	// retransmitted response on a stale (QP, page) pair.
	SpuriousCost sim.Time
	// RetransBase is the requester-side retransmission period after a
	// client-side ODP drop (≈0.5 ms observed in Figure 1).
	RetransBase sim.Time
	// RetransPerStale optionally lengthens the retransmission period per
	// stale (QP, page) pair, modelling the client-side load of managing
	// many retransmission timers (§VI-C / §VII-B observed flood-time
	// retransmissions every several tens of ms). Default 0.
	RetransPerStale sim.Time
	// UpdatesFIFO switches a page's update batch to oldest-first order;
	// the default (false) is newest-first, which matches Figure 11a.
	// Exposed for ablation.
	UpdatesFIFO bool
	// SpuriousFree disables the pipeline cost of spurious accesses.
	// Exposed for ablation: with it set, packet flood largely vanishes.
	SpuriousFree bool
}

// DefaultConfig returns the ConnectX-4 calibration.
func DefaultConfig() Config {
	return Config{
		QPUpdateCost: 40 * sim.Microsecond,
		SpuriousCost: 25 * sim.Microsecond,
		RetransBase:  500 * sim.Microsecond,
	}
}

type itemKind int

const (
	kindSpurious itemKind = iota
	kindResolve
	kindUpdate
)

type workItem struct {
	kind itemKind
	page hostmem.PageNo // resolve
	key  Key            // update
}

// pairTable is a dense (QP, page) → bool table: rows indexed by QP
// number, columns by page number. QP numbers and page numbers are both
// small consecutive integers (the RNIC assigns QPNs from 1, the address
// space assigns pages from 1), so the table stays compact. get on an
// entry that was never set is false without allocating; set grows rows
// and columns on demand.
type pairTable struct {
	rows [][]bool
}

func (t *pairTable) get(qp uint32, p hostmem.PageNo) bool {
	if int(qp) < len(t.rows) {
		if row := t.rows[qp]; int(p) < len(row) {
			return row[p]
		}
	}
	return false
}

func (t *pairTable) set(qp uint32, p hostmem.PageNo) {
	if int(qp) >= len(t.rows) {
		if int(qp) >= cap(t.rows) {
			rows := make([][]bool, int(qp)+1, 2*(int(qp)+1))
			copy(rows, t.rows)
			t.rows = rows
		} else {
			t.rows = t.rows[:int(qp)+1]
		}
	}
	row := t.rows[qp]
	if int(p) >= len(row) {
		if int(p) >= cap(row) {
			// make zeroes the whole backing array, so extending len
			// within cap later yields false entries as required.
			grown := make([]bool, int(p)+1, 2*(int(p)+1))
			copy(grown, row)
			row = grown
		} else {
			row = row[:int(p)+1]
		}
	}
	row[p] = true
	t.rows[qp] = row
}

// clear resets an entry without growing the table.
func (t *pairTable) clear(qp uint32, p hostmem.PageNo) {
	if int(qp) < len(t.rows) {
		if row := t.rows[qp]; int(p) < len(row) {
			row[p] = false
		}
	}
}

// zero resets every entry, keeping the table's storage.
func (t *pairTable) zero() {
	for _, row := range t.rows {
		for j := range row {
			row[j] = false
		}
	}
}

// Engine is one RNIC's ODP machinery.
type Engine struct {
	eng *sim.Engine
	as  *hostmem.AddressSpace
	cfg Config

	// visible tracks which (QP, page) translations the QP's hardware
	// context can currently use.
	visible pairTable
	// pending marks pairs that are faulted but not yet visible; stale is
	// their count (the packet-flood load signal).
	pending pairTable
	stale   int
	// interested lists pairs awaiting a page's host resolution — sparse
	// (only pages with a resolve in flight), so it stays a map.
	interested map[hostmem.PageNo][]Key

	busy  bool
	queue []workItem
	// queuedSpurious coalesces spurious work per stale pair: a pair
	// whose discard is already queued contributes no further pipeline
	// work until it is serviced (the microcode batches re-discards),
	// which bounds the queue at one item per stale pair.
	queuedSpurious pairTable

	// The pipeline is strictly serial — one item in flight — so its
	// completion callbacks are allocated once here and parameterized via
	// curKey/curPage, instead of capturing a fresh closure per item.
	finishFn  func()
	updateFn  func()
	resolveFn func()
	curKey    Key
	curPage   hostmem.PageNo
	// notifierFn and the gauge closures are likewise allocated once per
	// Engine (which outlives trials via the engine-generation pool).
	notifierFn hostmem.Notifier
	staleFn    func() float64
	depthFn    func() float64

	// Counters. The fields are the live storage behind the telemetry
	// registry (see RegisterMetrics); reading them directly and reading
	// the registry always agree.
	Faults        uint64 // page-level faults initiated
	PairFaults    uint64 // (QP,page) pair faults registered
	Updates       uint64 // status updates completed
	SpuriousTotal uint64 // spurious accesses recorded
	Invalidations uint64 // (QP,page) translations flushed by the notifier
	Prefetches    uint64 // (QP,page) pairs prefetched via AdviseMR
}

// enginePoolKey is the engine Aux key recycled ODP engines live under.
const enginePoolKey = "odp.engines"

// enginePool recycles ODP engines across sim-engine generations, the same
// trick the fabric and hostmem layers use: each trial's New calls get
// back last trial's engines (in construction order) with their status
// tables zeroed but their storage and one-time closures intact.
type enginePool struct {
	gen  uint64
	all  []*Engine
	next int
}

// New creates an ODP engine bound to an address space. It registers an
// MMU notifier so kernel page reclaim invalidates device translations.
func New(as *hostmem.AddressSpace, cfg Config) *Engine {
	eng := as.Engine()
	pl, _ := eng.Aux(enginePoolKey).(*enginePool)
	if pl == nil {
		pl = &enginePool{}
		eng.SetAux(enginePoolKey, pl)
	}
	if gen := eng.Generation() + 1; pl.gen != gen {
		pl.gen = gen
		pl.next = 0
	}
	if pl.next < len(pl.all) {
		e := pl.all[pl.next]
		pl.next++
		e.reset(as, cfg)
		return e
	}
	e := &Engine{
		eng:        eng,
		as:         as,
		cfg:        cfg,
		interested: make(map[hostmem.PageNo][]Key),
	}
	pl.all = append(pl.all, e)
	pl.next = len(pl.all)
	e.finishFn = func() {
		e.busy = false
		e.kick()
	}
	e.updateFn = func() {
		k := e.curKey
		e.visible.set(k.QP, k.Page)
		e.pending.clear(k.QP, k.Page)
		e.stale--
		e.Updates++
		e.busy = false
		e.kick()
	}
	e.resolveFn = func() {
		// Host resolution finished; queue this page's per-QP status
		// updates as one batch, newest registrant first (the order
		// Figure 11a exposes).
		p := e.curPage
		pairs := e.interested[p]
		// Empty the entry but keep its backing array for the page's next
		// resolve; an empty list means no resolve in flight.
		e.interested[p] = pairs[:0]
		if !e.cfg.UpdatesFIFO {
			for i, j := 0, len(pairs)-1; i < j; i, j = i+1, j-1 {
				pairs[i], pairs[j] = pairs[j], pairs[i]
			}
		}
		for _, k := range pairs {
			e.queue = append(e.queue, workItem{kind: kindUpdate, key: k})
		}
		e.busy = false
		e.kick()
	}
	e.notifierFn = e.invalidate
	e.staleFn = func() float64 { return float64(e.stale) }
	e.depthFn = func() float64 { return float64(len(e.queue)) }
	as.RegisterNotifier(e.notifierFn)
	return e
}

// reset returns a recycled engine to its just-constructed state bound to
// as (which may differ from the previous trial's), keeping the status
// tables' storage and the pre-built pipeline callbacks.
func (e *Engine) reset(as *hostmem.AddressSpace, cfg Config) {
	e.as = as
	e.cfg = cfg
	e.visible.zero()
	e.pending.zero()
	e.queuedSpurious.zero()
	e.stale = 0
	// Keep each page's registrant list backing: entries go empty, and
	// Fault treats an empty list as no resolve in flight.
	for k, v := range e.interested {
		e.interested[k] = v[:0]
	}
	e.busy = false
	e.queue = e.queue[:0]
	e.curKey = Key{}
	e.curPage = 0
	e.Faults, e.PairFaults, e.Updates = 0, 0, 0
	e.SpuriousTotal, e.Invalidations, e.Prefetches = 0, 0, 0
	as.RegisterNotifier(e.notifierFn)
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// RegisterMetrics publishes the engine's counters and load gauges on reg
// under the mlx5 ODP vocabulary. The owning device calls this once with
// its per-device registry.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter(telemetry.OdpPageFaults, "page-level network page faults entering host resolution", nil, &e.Faults)
	reg.Counter(telemetry.OdpPairFaults, "(QP,page) pair faults registered with the ODP pipeline", nil, &e.PairFaults)
	reg.Counter(telemetry.OdpStatusUpdates, "per-QP page-status updates completed", nil, &e.Updates)
	reg.Counter(telemetry.OdpSpuriousAccesses, "discarded retransmitted accesses on still-stale pairs", nil, &e.SpuriousTotal)
	reg.Counter(telemetry.OdpInvalidations, "(QP,page) translations flushed by MMU notifier invalidations", nil, &e.Invalidations)
	reg.Counter(telemetry.OdpPrefetches, "(QP,page) pairs prefetched via ibv_advise_mr", nil, &e.Prefetches)
	reg.Gauge(telemetry.OdpStalePairs, "(QP,page) pairs faulted but not yet visible", nil, e.staleFn)
	reg.Gauge(telemetry.OdpPipelineDepth, "items queued in the serial ODP pipeline", nil, e.depthFn)
}

// StaleCount returns the number of (QP, page) pairs that have faulted but
// whose status update has not yet completed.
func (e *Engine) StaleCount() int { return e.stale }

// QueueLen returns the number of queued pipeline items (for tests and
// load inspection).
func (e *Engine) QueueLen() int { return len(e.queue) }

// RetransInterval returns the requester retransmission period under the
// current load (see Config.RetransPerStale).
func (e *Engine) RetransInterval() sim.Time {
	return e.cfg.RetransBase + sim.Time(e.stale)*e.cfg.RetransPerStale
}

// Visible reports whether qp's context can translate page.
func (e *Engine) Visible(qp uint32, page hostmem.PageNo) bool {
	return e.visible.get(qp, page)
}

// Access reports whether qp can translate the whole byte range — i.e.
// whether an RDMA access proceeds without a network page fault. This is
// the per-packet check, so it iterates the page range directly instead
// of materializing it.
func (e *Engine) Access(qp uint32, addr hostmem.Addr, length int) bool {
	if length <= 0 {
		return true
	}
	last := hostmem.PageOf(addr + hostmem.Addr(length) - 1)
	for p := hostmem.PageOf(addr); p <= last; p++ {
		if !e.visible.get(qp, p) {
			return false
		}
	}
	return true
}

// Pending reports whether any page of the range already has a fault in
// flight for qp.
func (e *Engine) Pending(qp uint32, addr hostmem.Addr, length int) bool {
	if length <= 0 {
		return false
	}
	last := hostmem.PageOf(addr + hostmem.Addr(length) - 1)
	for p := hostmem.PageOf(addr); p <= last; p++ {
		if e.pending.get(qp, p) {
			return true
		}
	}
	return false
}

// Fault registers a network page fault by qp on every non-visible page of
// the range and starts the pipeline. Safe to call repeatedly; pairs
// already pending are not re-registered.
func (e *Engine) Fault(qp uint32, addr hostmem.Addr, length int) {
	if length > 0 {
		last := hostmem.PageOf(addr + hostmem.Addr(length) - 1)
		for p := hostmem.PageOf(addr); p <= last; p++ {
			if e.visible.get(qp, p) || e.pending.get(qp, p) {
				continue
			}
			e.pending.set(qp, p)
			e.stale++
			e.PairFaults++
			switch e.as.State(p) {
			case hostmem.Mapped, hostmem.Pinned:
				// Host side is fine; only this QP's status needs updating.
				e.queue = append(e.queue, workItem{kind: kindUpdate, key: Key{qp, p}})
			default:
				if len(e.interested[p]) == 0 {
					e.queue = append(e.queue, workItem{kind: kindResolve, page: p})
					e.Faults++
				}
				e.interested[p] = append(e.interested[p], Key{qp, p})
			}
		}
	}
	e.kick()
}

// Prefetch pre-faults the range into qp's context on behalf of
// ibv_advise_mr(IBV_ADVISE_MR_ADVICE_PREFETCH). It runs the ordinary
// fault path — the serial pipeline still pays for it — but counts
// separately, the way the driver's num_prefetch does.
func (e *Engine) Prefetch(qp uint32, addr hostmem.Addr, length int) {
	if length > 0 {
		last := hostmem.PageOf(addr + hostmem.Addr(length) - 1)
		for p := hostmem.PageOf(addr); p <= last; p++ {
			if !e.visible.get(qp, p) && !e.pending.get(qp, p) {
				e.Prefetches++
			}
		}
	}
	e.Fault(qp, addr, length)
}

// Spurious records a discarded retransmitted access on a still-stale
// pair. It consumes pipeline time, delaying resolves and updates queued
// behind it — the packet-flood feedback loop.
func (e *Engine) Spurious(qp uint32, addr hostmem.Addr, length int) {
	e.SpuriousTotal++
	if e.cfg.SpuriousFree {
		return
	}
	p := hostmem.PageOf(addr)
	if e.queuedSpurious.get(qp, p) {
		return
	}
	e.queuedSpurious.set(qp, p)
	e.queue = append(e.queue, workItem{kind: kindSpurious, key: Key{qp, p}})
	e.kick()
}

// invalidate flushes device translations for reclaimed pages (all QPs).
func (e *Engine) invalidate(inv hostmem.Invalidation) {
	for _, p := range inv.Pages {
		for qp := range e.visible.rows {
			if row := e.visible.rows[qp]; int(p) < len(row) && row[p] {
				row[p] = false
				e.Invalidations++
			}
		}
	}
}

// kick advances the serial pipeline if it is idle.
func (e *Engine) kick() {
	if e.busy || len(e.queue) == 0 {
		return
	}
	it := e.queue[0]
	e.queue = e.queue[1:]
	e.busy = true
	switch it.kind {
	case kindSpurious:
		e.queuedSpurious.clear(it.key.QP, it.key.Page)
		e.eng.ScheduleAfter(e.eng.Jitter(e.cfg.SpuriousCost, 0.1), e.finishFn)
	case kindResolve:
		e.curPage = it.page
		e.as.ResolveFault(it.page, e.resolveFn)
	case kindUpdate:
		e.curKey = it.key
		e.eng.ScheduleAfter(e.eng.Jitter(e.cfg.QPUpdateCost, 0.1), e.updateFn)
	}
}
