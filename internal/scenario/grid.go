package scenario

import (
	"fmt"

	"odpsim/internal/sim"
)

// Grid is one sweep axis: either an interval range in milliseconds
// (from, from+step, …, to inclusive within floating tolerance) or an
// explicit integer list (C_ACK exponents, QP counts). Exactly one form
// must be populated.
type Grid struct {
	FromMs float64 `json:"from_ms,omitempty"`
	ToMs   float64 `json:"to_ms,omitempty"`
	StepMs float64 `json:"step_ms,omitempty"`
	List   []int   `json:"list,omitempty"`
}

// validate reports malformed grids. A nil grid is fine (grid-less
// workloads).
func (g *Grid) validate(scenario, field string) error {
	if g == nil {
		return nil
	}
	hasRange := g.FromMs != 0 || g.ToMs != 0 || g.StepMs != 0
	switch {
	case len(g.List) > 0 && hasRange:
		return fmt.Errorf("scenario %q: %s mixes a list with a range", scenario, field)
	case len(g.List) > 0:
		return nil
	case !hasRange:
		return fmt.Errorf("scenario %q: %s is empty (set from/to/step or a list)", scenario, field)
	case g.StepMs <= 0:
		return fmt.Errorf("scenario %q: %s needs a positive step", scenario, field)
	case g.ToMs < g.FromMs:
		return fmt.Errorf("scenario %q: %s runs backwards (to < from)", scenario, field)
	case g.FromMs < 0:
		return fmt.Errorf("scenario %q: %s starts below zero", scenario, field)
	}
	return nil
}

// Times expands a range grid into interval values. Each point is
// computed as from + i·step: accumulating x += step instead drifts by an
// ulp per step, enough to truncate grid points one nanosecond low over
// long grids (core.IntervalRange's contract, which delegates here).
func (g *Grid) Times() []sim.Time {
	if g == nil {
		return nil
	}
	return MsRange(g.FromMs, g.ToMs, g.StepMs)
}

// MsRange builds an interval grid in milliseconds: from, from+step, …,
// to (inclusive within floating tolerance).
func MsRange(fromMs, toMs, stepMs float64) []sim.Time {
	if stepMs <= 0 {
		panic("scenario: MsRange needs a positive step")
	}
	var out []sim.Time
	for i := 0; ; i++ {
		x := fromMs + float64(i)*stepMs
		if x > toMs+1e-9 {
			return out
		}
		out = append(out, sim.FromMillis(x))
	}
}
