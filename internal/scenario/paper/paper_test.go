package paper

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"odpsim/internal/scenario"
)

// TestRegistryMatchesExperiments checks the registry against the repo
// docs both ways: every `odpsim run <name>` quoted in EXPERIMENTS.md
// must resolve, and every golden in results/ must be a registered
// scenario's output file.
func TestRegistryMatchesExperiments(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatalf("EXPERIMENTS.md: %v", err)
	}
	re := regexp.MustCompile(`odpsim run ([a-z0-9-]+)`)
	quoted := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(string(data), -1) {
		if m[1] == "--all" {
			continue
		}
		quoted[m[1]] = true
	}
	if len(quoted) < 10 {
		t.Fatalf("EXPERIMENTS.md quotes only %d `odpsim run` commands — regex or docs drifted", len(quoted))
	}
	for name := range quoted {
		if _, err := scenario.Lookup(name); err != nil {
			t.Errorf("EXPERIMENTS.md references %q: %v", name, err)
		}
	}

	registered := map[string]bool{}
	for _, name := range scenario.Names() {
		registered[name] = true
	}
	goldens, err := filepath.Glob(filepath.Join("..", "..", "..", "results", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(goldens) == 0 {
		t.Fatal("no goldens under results/")
	}
	for _, g := range goldens {
		name := filepath.Base(g)
		name = name[:len(name)-len(".txt")]
		if !registered[name] {
			t.Errorf("results/%s.txt has no registered scenario", name)
		}
	}
}

// TestRegistryWellFormed validates every registered scenario eagerly:
// scenario-level Validate, workload-level Validate, and the quick
// profile's validity too (ApplyQuick must not produce a broken grid).
func TestRegistryWellFormed(t *testing.T) {
	names := scenario.Names()
	if len(names) < 14 {
		t.Fatalf("registry has %d scenarios, want the full paper set", len(names))
	}
	for _, name := range names {
		sc, err := scenario.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Title == "" {
			t.Errorf("%s: no title", name)
		}
		for _, variant := range []scenario.Scenario{sc, sc.ApplyQuick()} {
			if err := variant.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
				continue
			}
			w, _ := scenario.LookupWorkload(variant.Workload)
			if err := w.Validate(&variant); err != nil {
				t.Errorf("%s (workload): %v", name, err)
			}
		}
	}
}

// TestQuickRunsDeterministic runs every non-Slow scenario twice at quick
// fidelity and requires byte-identical output — the same contract the CI
// freshness check enforces at full fidelity against results/.
func TestQuickRunsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("quick runs take a few seconds each")
	}
	for _, name := range scenario.Names() {
		sc, err := scenario.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Slow {
			continue // fig9 and tab13 are minutes even quick-ish; covered by Validate above
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var a, b bytes.Buffer
			if err := scenario.RunNamed(name, &a, scenario.Options{Quick: true}); err != nil {
				t.Fatalf("run 1: %v", err)
			}
			if err := scenario.RunNamed(name, &b, scenario.Options{Quick: true}); err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if a.Len() == 0 {
				t.Fatal("empty output")
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("two quick runs differ:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
			}
		})
	}
}

// TestSpecFileEndToEnd is the acceptance scenario from the issue: a user
// JSON spec — ConnectX-5 hardware, 1% packet loss, congestion on — runs
// through `odpsim run <spec.json>` machinery without any Go code.
func TestSpecFileEndToEnd(t *testing.T) {
	spec := []byte(`{
  "name": "lossy-cx5-kv",
  "title": "KV store on Azure VM HC, 1% loss, congestion modeled",
  "workload": "kvstore",
  "system": "Azure VM HC",
  "ops": 200,
  "seed": 7,
  "faults": {"loss_rate": 0.01, "congestion": true}
}
`)
	path := filepath.Join(t.TempDir(), "lossy.json")
	if err := os.WriteFile(path, spec, 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.LoadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := scenario.Run(sc, &a, scenario.Options{}); err != nil {
		t.Fatalf("spec run: %v", err)
	}
	if err := scenario.Run(sc, &b, scenario.Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("spec run is not deterministic")
	}
	if !bytes.Contains(a.Bytes(), []byte("dropped")) {
		t.Errorf("lossy run should report fabric drops:\n%s", a.String())
	}
	// The same spec must also survive a save/load round trip.
	out, err := scenario.SaveSpec(sc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := scenario.LoadSpec(out)
	if err != nil {
		t.Fatalf("re-load of saved spec: %v\n%s", err, out)
	}
	var c bytes.Buffer
	if err := scenario.Run(again, &c, scenario.Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("round-tripped spec ran differently")
	}
}

// TestGoldenFreshness replays the fast scenarios at full fidelity and
// compares against results/ — a cheap in-tree version of the CI
// freshness step (which runs the slow ones too).
func TestGoldenFreshness(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity runs")
	}
	for _, name := range []string{"fig1-server", "fig1-client", "fig5", "fig8", "perf-compare"} {
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("..", "..", "..", "results", name+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := scenario.RunNamed(name, &got, scenario.Options{}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("results/%s.txt is stale:\n--- golden\n%s\n--- regenerated\n%s", name, want, got.String())
			}
		})
	}
}
