// Package paper registers the named scenarios behind every figure and
// table of the evaluation — `odpsim run fig4` is Figure 4, `odpsim run
// tab13` is Table 13. Importing it (usually blank) pulls in every
// workload implementation, so the registry is complete and eagerly
// validated as soon as the package initializes.
//
// Each scenario's full-fidelity run regenerates its results/ golden
// byte-for-byte; the Quick profiles reproduce the historical -quick
// grids and the trial counts odpexperiments used.
package paper

import (
	"odpsim/internal/scenario"

	// Workload implementations self-register on import.
	_ "odpsim/internal/apps/argodsm"
	_ "odpsim/internal/apps/kvstore"
	_ "odpsim/internal/apps/sparkucx"
	_ "odpsim/internal/core"
	_ "odpsim/internal/perftest"
)

func init() {
	// Registration order is the paper's artifact order; `odpsim list`
	// and `odpsim run --all` follow it.
	scenario.Register(scenario.Scenario{
		Name:     "fig1-server",
		Title:    "Figure 1 (left): single READ, server-side ODP, packet workflow",
		Workload: "trace",
		Ops:      1,
		Mode:     "server",
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig1-client",
		Title:    "Figure 1 (right): single READ, client-side ODP, packet workflow",
		Workload: "trace",
		Ops:      1,
		Mode:     "client",
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig2",
		Title:    "Figure 2: measured timeout T_o [s] by C_ACK (wrong-LID probe, C_retry=7)",
		Workload: "timeout-sweep",
		Grid: &scenario.Grid{List: []int{
			1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}},
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig4",
		Title:    "Figure 4: mean exec time [s] of 2 READs vs interval (both-side ODP, {trials} trials)",
		Workload: "exec-sweep",
		Trials:   10,
		Grid:     &scenario.Grid{ToMs: 6, StepMs: 0.25},
		Quick:    &scenario.Quick{Trials: 5, GridScale: 4},
	})
	scenario.Register(scenario.Scenario{
		Name:       "fig5",
		Title:      "Figure 5: packet damming and the timeout (2 READs, 1 ms apart)",
		Workload:   "trace",
		Ops:        2,
		Mode:       "server",
		IntervalMs: 1,
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig6a",
		Title:    "Figure 6a: P(timeout) [%] vs interval, server-side ODP ({trials} trials)",
		Workload: "timeout-prob-sweep",
		Mode:     "server",
		Trials:   10,
		Renderer: "per-series",
		Grid:     &scenario.Grid{ToMs: 6, StepMs: 0.25},
		Series: []scenario.Variant{
			{Label: "0.01 ms", RNRDelayMs: 0.01},
			{Label: "1.28 ms", RNRDelayMs: 1.28},
			{Label: "10.24 ms", RNRDelayMs: 10.24, Grid: &scenario.Grid{ToMs: 40, StepMs: 2}},
		},
		Quick: &scenario.Quick{Trials: 5, GridScale: 4},
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig6b",
		Title:    "Figure 6b: P(timeout) [%] vs interval, client-side ODP ({trials} trials)",
		Workload: "timeout-prob-sweep",
		Mode:     "client",
		Trials:   10,
		Grid:     &scenario.Grid{ToMs: 6, StepMs: 0.1},
		Series:   []scenario.Variant{{Label: "1.28 ms"}},
		Quick:    &scenario.Quick{Trials: 5, GridScale: 5},
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig7",
		Title:    "Figure 7: P(timeout) [%] vs interval for 2/3/4 READs (both-side ODP, {trials} trials)",
		Workload: "timeout-prob-sweep",
		Trials:   10,
		Grid:     &scenario.Grid{ToMs: 6, StepMs: 0.25},
		Series: []scenario.Variant{
			{Label: "2 operations", Ops: 2},
			{Label: "3 operations", Ops: 3},
			{Label: "4 operations", Ops: 4},
		},
		Quick: &scenario.Quick{Trials: 5, GridScale: 4},
	})
	scenario.Register(scenario.Scenario{
		Name:       "fig8",
		Title:      "Figure 8: the PSN-sequence-error rescue (3 READs, 2.5 ms apart)",
		Workload:   "trace",
		Ops:        3,
		Mode:       "server",
		IntervalMs: 2.5,
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig9",
		Title:    "Figure 9: {ops} READs × 100 B (200 pages), C_ACK=18, vs #QPs",
		Workload: "qp-sweep",
		Ops:      8192,
		CACK:     18,
		Grid:     &scenario.Grid{List: []int{1, 2, 5, 10, 25, 50, 100, 150, 200}},
		Slow:     true,
		Quick:    &scenario.Quick{Ops: 2048, List: []int{1, 10, 50, 200}},
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig11",
		Title:    "Figure 11 ({ops} operations): cumulative completions per page [ms grid]",
		Workload: "progress",
		Mode:     "client",
		Size:     32,
		QPs:      128,
		CACK:     18,
		Series: []scenario.Variant{
			{Ops: 128, StepMs: 1},
			{Ops: 512, StepMs: 100},
		},
	})
	scenario.Register(scenario.Scenario{
		Name:     "fig12",
		Title:    "Figure 12: ArgoDSM init+finalize, 10 MB, {trials} trials",
		Workload: "argodsm",
		Trials:   100,
		Quick:    &scenario.Quick{Trials: 40},
	})
	scenario.Register(scenario.Scenario{
		Name:     "tab13",
		Title:    "Table 13: SparkUCX examples, {trials} trials, ODP enabled vs disabled",
		Workload: "sparkucx",
		Trials:   10,
		Slow:     true,
		Quick:    &scenario.Quick{Trials: 5},
	})
	scenario.Register(scenario.Scenario{
		Name:     "storm-lossless",
		Title:    "Retransmission storm on a lossless fabric: write flood + Table-13 SparkTC, 2 switches, PFC",
		Workload: "storm",
		Mode:     "server",
		Size:     512,
		QPs:      8,
		CACK:     8,
		Ops:      512,
		Trials:   5,
		Congestion: &scenario.CongestionSpec{
			BufferKB: 2, XOffKB: 1.5, XOnKB: 0.5,
			PFC: true,
		},
		Quick: &scenario.Quick{Trials: 2, Ops: 128, Waves: 1},
	})
	scenario.Register(scenario.Scenario{
		Name:     "storm-dcqcn",
		Title:    "Retransmission storm under DCQCN: write flood + Table-13 SparkTC, 2 switches, PFC+ECN+DCQCN",
		Workload: "storm",
		Mode:     "server",
		Size:     512,
		QPs:      8,
		CACK:     8,
		Ops:      512,
		Trials:   5,
		Congestion: &scenario.CongestionSpec{
			BufferKB: 2, XOffKB: 1.5, XOnKB: 0.5,
			PFC:   true,
			DCQCN: true,
		},
		Quick: &scenario.Quick{Trials: 2, Ops: 128, Waves: 1},
	})
	scenario.Register(scenario.Scenario{
		Name:     "perf-compare",
		Title:    "perftest: READ latency by registration mode (refs [19], [20])",
		Workload: "perftest",
		Renderer: "compare",
	})

	// Mitigation comparison: the Figure-4 sweep, Table 13 and the PFC
	// storm rerun under pin | odp | npr — the "does NP-RDMA dodge both
	// pitfalls?" result set (ROADMAP item 4; NP-RDMA in PAPERS.md).
	scenario.Register(scenario.Scenario{
		Name:     "npr-exec",
		Title:    "NP-RDMA comparison (Figure 4): mean exec time [s] of 2 READs vs interval ({trials} trials)",
		Workload: "mem-compare",
		Inner:    "exec-sweep",
		Trials:   5,
		Grid:     &scenario.Grid{ToMs: 6, StepMs: 0.5},
		Quick:    &scenario.Quick{Trials: 2, GridScale: 2},
	})
	scenario.Register(scenario.Scenario{
		Name:     "npr-tab13",
		Title:    "NP-RDMA comparison (Table 13): SparkUCX examples, {trials} trials, ODP enabled vs disabled",
		Workload: "mem-compare",
		Inner:    "sparkucx",
		Trials:   3,
		Slow:     true,
		Quick:    &scenario.Quick{Trials: 1},
	})
	scenario.Register(scenario.Scenario{
		Name:     "npr-storm",
		Title:    "NP-RDMA comparison (storm): write flood + Table-13 SparkTC, 2 switches, PFC",
		Workload: "mem-compare",
		Inner:    "storm",
		Mode:     "server",
		Size:     512,
		QPs:      8,
		CACK:     8,
		Ops:      512,
		Trials:   3,
		Congestion: &scenario.CongestionSpec{
			BufferKB: 2, XOffKB: 1.5, XOnKB: 0.5,
			PFC: true,
		},
		Quick: &scenario.Quick{Trials: 2, Ops: 128, Waves: 1},
	})

	// Clos-topology collectives: the patterns a chain cannot express
	// (ROADMAP item 1). Incast converges eight senders on one sink, so
	// the contention lives on the sink leaf's downlink and the spine
	// uplinks feeding it; shuffle is the SparkUCX exchange shape,
	// spreading pauses across every leaf. Both run on a 2-tier
	// leaf-spine (radix 4: four leaves, two spines) with 4x
	// oversubscribed uplinks and PFC on.
	scenario.Register(scenario.Scenario{
		Name:     "incast-clos",
		Title:    "Incast on a leaf-spine Clos: 8->1 WRITE convergence under pin | odp | npr",
		Workload: "mem-compare",
		Inner:    "collective",
		Pattern:  "incast",
		Nodes:    9,
		Mode:     "server",
		Size:     1024,
		Ops:      32,
		CACK:     8,
		Congestion: &scenario.CongestionSpec{
			Topology: &scenario.TopologySpec{Kind: "clos", Tiers: 2, Radix: 4, Oversubscription: 4},
			PFC:      true,
			XOffKB:   1,
			XOnKB:    0.5,
		},
		Quick: &scenario.Quick{Ops: 8},
	})
	// IRN transport comparison (ROADMAP item 2): the storm, damming and
	// incast shapes rerun across {rc, irn} × {lossy, lossless} ×
	// {pin, odp, npr}. Each asks whether a pitfall survives a transport
	// that recovers per-packet instead of go-back-N: the storm's
	// retransmission amplification, the ConnectX-4 damming window, and
	// incast fan-in behind PFC vs tail-drop.
	scenario.Register(scenario.Scenario{
		Name:     "irn-storm",
		Title:    "IRN vs go-back-N (storm shape): write flood, 2 switches, rc|irn x lossy|lossless x pin|odp|npr",
		Workload: "irn-compare",
		Mode:     "server",
		Size:     512,
		QPs:      8,
		CACK:     8,
		Ops:      512,
		Congestion: &scenario.CongestionSpec{
			BufferKB: 2, XOffKB: 1.5, XOnKB: 0.5,
			PFC: true,
		},
		Quick: &scenario.Quick{Ops: 128},
	})
	scenario.Register(scenario.Scenario{
		Name:       "irn-damming",
		Title:      "IRN vs go-back-N (damming shape): paced READs into ODP faults, rc|irn x lossy|lossless x pin|odp|npr",
		Workload:   "irn-compare",
		Mode:       "server",
		Size:       100,
		QPs:        4,
		CACK:       8,
		Ops:        64,
		IntervalMs: 0.1,
		Congestion: &scenario.CongestionSpec{
			BufferKB: 2, XOffKB: 1.5, XOnKB: 0.5,
			PFC: true,
		},
		Quick: &scenario.Quick{Ops: 16},
	})
	scenario.Register(scenario.Scenario{
		Name:     "irn-incast",
		Title:    "IRN vs go-back-N (incast shape): 8-QP WRITE fan-in on a leaf-spine Clos, rc|irn x lossy|lossless x pin|odp|npr",
		Workload: "irn-compare",
		Mode:     "server",
		Size:     2048,
		QPs:      8,
		CACK:     8,
		Ops:      512,
		Congestion: &scenario.CongestionSpec{
			Topology: &scenario.TopologySpec{Kind: "clos", Tiers: 2, Radix: 4, Oversubscription: 4},
			PFC:      true,
			XOffKB:   1,
			XOnKB:    0.5,
		},
		Quick: &scenario.Quick{Ops: 16},
	})
	scenario.Register(scenario.Scenario{
		Name:     "shuffle-clos",
		Title:    "All-to-all shuffle on a leaf-spine Clos: 6 nodes, server-side ODP, PFC",
		Workload: "collective",
		Pattern:  "shuffle",
		Nodes:    6,
		Mode:     "server",
		Size:     1024,
		Ops:      16,
		CACK:     8,
		Congestion: &scenario.CongestionSpec{
			Topology: &scenario.TopologySpec{Kind: "clos", Tiers: 2, Radix: 4, Oversubscription: 4},
			PFC:      true,
			XOffKB:   1,
			XOnKB:    0.5,
		},
		Quick: &scenario.Quick{Ops: 4},
	})

	// kv-serve is the fabric-scale extrapolation: a key-value serving
	// tier across the 16 pods of a radix-16 fat-tree, 64 open-loop GET
	// clients per pod against one ODP-backed server each, replication
	// digests converging on pod 0 over the core. Pod-local traffic means
	// the shard layer runs one engine per pod on parallel lanes
	// (`-shards`), and the report leads with the latency percentiles
	// where the paper's RNR storms surface at serving scale.
	scenario.Register(scenario.Scenario{
		Name:     "kv-serve",
		Title:    "KV serving tier on a radix-16 fat-tree: 1024 open-loop GET clients vs server-side ODP",
		Workload: "kv-serve",
		Nodes:    1040, // 16 pods x (1 server + 64 clients)
		Shards:   4,    // default worker lanes; any value gives the same bytes
		Mode:     "server",
		Size:     1024,
		Ops:      16,
		CACK:     8,
		Congestion: &scenario.CongestionSpec{
			Topology: &scenario.TopologySpec{Kind: "clos", Tiers: 3, Radix: 16, Oversubscription: 4},
			PFC:      true,
			XOffKB:   1,
			XOnKB:    0.5,
		},
		Quick: &scenario.Quick{Ops: 4},
	})
}
