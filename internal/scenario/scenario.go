// Package scenario is the declarative experiment layer: a Scenario value
// describes one experiment — system, nodes, workload, per-side ODP mode,
// fault knobs (RNR delay, page-fault latency, loss rate, congestion),
// sweep grid, trials and renderer — and the package resolves, validates
// and executes it through a registered Workload implementation. Every
// paper artifact (Figures 1–12, Table 13) is one registered Scenario;
// users add new experiments as JSON specs without writing Go (see
// LoadSpec and DESIGN.md §7).
//
// Execution inherits internal/parallel's determinism contract unchanged:
// workloads derive every point's seed from the point's grid position, so
// a scenario's rendered output is byte-identical for any worker count —
// which is what lets CI diff regenerated outputs against results/.
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"odpsim/internal/cluster"
	"odpsim/internal/congestion"
	"odpsim/internal/sim"
)

// Scenario declares one experiment. The zero value of every field means
// "workload default"; workloads reject combinations they cannot honour
// in their Validate hook. Field names double as the JSON spec schema.
type Scenario struct {
	// Name identifies the scenario in the registry and names its output
	// file (<name>.txt) under -o.
	Name string `json:"name"`
	// Title is the header line printed before the result. The
	// placeholders {trials} and {ops} expand to the resolved values, so
	// quick-mode runs print their actual counts.
	Title string `json:"title,omitempty"`
	// Workload selects the registered workload kind (see Workloads()).
	Workload string `json:"workload"`

	// System picks the Table-I system by unambiguous name prefix
	// (cluster.ByName). Empty selects the workload's default (KNL).
	System string `json:"system,omitempty"`
	// Systems, for multi-system workloads (timeout-sweep, argodsm),
	// overrides the default system list.
	Systems []string `json:"systems,omitempty"`
	// Nodes is the cluster size (default 2).
	Nodes int `json:"nodes,omitempty"`
	// Seed is the base simulation seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Trials is the number of repetitions for probability/average
	// figures. Workloads that average over trials reject 0.
	Trials int `json:"trials,omitempty"`

	// Mode selects the ODP sides: "none", "server", "client" or "both".
	Mode string `json:"mode,omitempty"`
	// Ops is the number of operations (READ count, perftest iterations).
	Ops int `json:"ops,omitempty"`
	// QPs is the queue-pair count (round-robin).
	QPs int `json:"qps,omitempty"`
	// Size is the per-operation message size in bytes.
	Size int `json:"size,omitempty"`
	// CACK is the Local ACK Timeout exponent (0 keeps the workload
	// default).
	CACK int `json:"cack,omitempty"`
	// Retry is the Retry Count C_retry.
	Retry int `json:"retry,omitempty"`
	// RNRDelayMs is the minimal RNR NAK delay in milliseconds.
	RNRDelayMs float64 `json:"rnr_delay_ms,omitempty"`
	// IntervalMs is the fixed posting interval in milliseconds (grid-less
	// workloads: bench, trace).
	IntervalMs float64 `json:"interval_ms,omitempty"`

	// Window is the outstanding-operation bound for bandwidth runs.
	Window int `json:"window,omitempty"`
	// Pages rotates perftest targets over this many pages.
	Pages int `json:"pages,omitempty"`
	// Implicit selects Implicit ODP on the ODP sides (perftest).
	Implicit bool `json:"implicit,omitempty"`
	// Prefetch advises ODP pages before measuring (ibv_advise_mr).
	Prefetch bool `json:"prefetch,omitempty"`
	// DummyPing enables the §IX-A dummy-communication workaround.
	DummyPing bool `json:"dummy_ping,omitempty"`
	// Waves bounds the packet-level-sampled shuffle waves per sparkucx
	// run (0 = workload default, 2).
	Waves int `json:"waves,omitempty"`
	// MemoryBytes is the DSM size for argodsm (0 = 10 MB).
	MemoryBytes int `json:"memory_bytes,omitempty"`
	// HistHi sets the argodsm histogram upper bounds, aligned with the
	// resolved system list.
	HistHi []float64 `json:"hist_hi,omitempty"`

	// Pattern selects the collective traffic shape: "incast" (every node
	// WRITEs to node 0) or "shuffle" (all-to-all). Collective workload
	// only.
	Pattern string `json:"pattern,omitempty"`

	// Shards is the worker-lane count for workloads that execute through
	// the bounded-lag shard layer (internal/shard): how many OS threads
	// run the scenario's causal domains. The partition itself derives
	// from the traffic structure, never from this knob, so output is
	// byte-identical at every value — 0 means one lane. The odpsim
	// `-shards` flag overrides it.
	Shards int `json:"shards,omitempty"`

	// Memory selects how managed registrations translate on every node:
	// pin | odp | npr. Absent means odp — the paper's configuration, and
	// the one every pre-existing scenario renders byte-identically under.
	Memory *MemorySpec `json:"memory,omitempty"`

	// Transport selects the RC transport on every node: rc | irn.
	// Absent means rc — the hardware go-back-N machine every
	// pre-existing scenario renders byte-identically under.
	Transport *TransportSpec `json:"transport,omitempty"`

	// Inner names the scenario a wrapper workload (mem-compare) derives
	// its per-mode runs from; empty for ordinary workloads.
	Inner string `json:"inner,omitempty"`

	// Faults bundles the fault-injection knobs routed into the built
	// clusters (loss, congestion, page-fault latency scale).
	Faults Faults `json:"faults,omitempty"`

	// Congestion, when present, replaces the fabric's analytic latency
	// model with the switched lossless-fabric model of
	// internal/congestion (finite switch buffers, optional PFC and ECN,
	// optional DCQCN rate control). It is independent of
	// Faults.Congestion, which keeps selecting the legacy analytic
	// egress-queuing knob.
	Congestion *CongestionSpec `json:"congestion,omitempty"`

	// Grid is the sweep axis: an interval range in milliseconds or an
	// explicit integer list (C_ACK values, QP counts).
	Grid *Grid `json:"grid,omitempty"`
	// Series declares per-series variants (Figure 6a's three RNR delays,
	// Figure 7's 2/3/4 operations, Figure 11's two operation counts).
	Series []Variant `json:"series,omitempty"`
	// StepMs is the output sampling step for progress renderings
	// (Figure 11); usually set per variant.
	StepMs float64 `json:"step_ms,omitempty"`

	// Renderer picks a workload-specific output style where one workload
	// has several (timeout-prob-sweep: "joined" or "per-series";
	// perftest: "lat", "bw" or "compare").
	Renderer string `json:"renderer,omitempty"`

	// Slow marks scenarios whose full-fidelity run takes tens of seconds
	// (fig9, tab13); `odpsim run --all -short` skips them.
	Slow bool `json:"slow,omitempty"`
	// Quick holds the reduced-fidelity overrides -quick applies.
	Quick *Quick `json:"quick,omitempty"`
}

// Variant is a per-series override inside one scenario.
type Variant struct {
	// Label names the series in the rendered table.
	Label string `json:"label,omitempty"`
	// Ops overrides Scenario.Ops for this series.
	Ops int `json:"ops,omitempty"`
	// RNRDelayMs overrides the RNR delay for this series.
	RNRDelayMs float64 `json:"rnr_delay_ms,omitempty"`
	// StepMs overrides the output sampling step for this series.
	StepMs float64 `json:"step_ms,omitempty"`
	// Grid overrides the sweep grid for this series.
	Grid *Grid `json:"grid,omitempty"`
}

// Faults are the fault-injection knobs. They flow into cluster.System
// before any cluster is built, so every workload inherits them.
type Faults struct {
	// LossRate drops each fabric packet independently with this
	// probability (0 ≤ p < 1).
	LossRate float64 `json:"loss_rate,omitempty"`
	// Congestion enables the fabric's per-port egress-queuing model.
	Congestion bool `json:"congestion,omitempty"`
	// PageFaultScale multiplies the kernel page-fault resolution latency
	// (0 = 1.0).
	PageFaultScale float64 `json:"page_fault_scale,omitempty"`
}

// CongestionSpec is the JSON face of congestion.Config: buffer sizes in
// KB instead of bytes and DCQCN reduced to one switch (the tuned loop
// parameters keep their package defaults). Zero fields select the
// congestion package's defaults, so `"congestion": {}` alone turns the
// switched model on with the paper-calibrated topology.
type CongestionSpec struct {
	// Topology declares the switch graph (chain or Clos). Absent keeps
	// the implicit linear chain built from Switches and UplinkFactor.
	Topology *TopologySpec `json:"topology,omitempty"`
	// Switches is the linear-core switch count (default 2).
	Switches int `json:"switches,omitempty"`
	// UplinkFactor oversubscribes the inter-switch links (default 4).
	UplinkFactor float64 `json:"uplink_factor,omitempty"`
	// BufferKB is each switch's shared buffer in KB (default 8).
	BufferKB float64 `json:"buffer_kb,omitempty"`
	// PFC enables pause/resume frames.
	PFC bool `json:"pfc,omitempty"`
	// XOffKB / XOnKB are the PFC thresholds in KB (defaults 6 / 2;
	// XOff must stay above XOn).
	XOffKB float64 `json:"xoff_kb,omitempty"`
	XOnKB  float64 `json:"xon_kb,omitempty"`
	// ECN enables congestion-experienced marking.
	ECN bool `json:"ecn,omitempty"`
	// ECNThresholdKB is the marking threshold in KB (default 1.5).
	ECNThresholdKB float64 `json:"ecn_threshold_kb,omitempty"`
	// DCQCN turns on the end-to-end rate-control loop (implies ECN).
	DCQCN bool `json:"dcqcn,omitempty"`
}

// TopologySpec is the JSON face of congestion.Topology's builders: a
// declarative switch graph for the congestion block. `"kind": "chain"`
// is the historical linear chain; `"kind": "clos"` builds a leaf-spine
// (tiers 2) or fat-tree (tiers 3) fabric. Hosts attach round-robin by
// LID across the bottom tier, which is how the spec reaches
// cluster.System node placement: the LIDs BuildOn assigns land on leaves
// in declaration order.
type TopologySpec struct {
	// Kind is "chain" or "clos".
	Kind string `json:"kind"`
	// Switches is the chain length (chain only; default: the congestion
	// block's switches field).
	Switches int `json:"switches,omitempty"`
	// Tiers is the Clos tier count: 2 = leaf-spine, 3 = fat-tree
	// (clos only; default 2).
	Tiers int `json:"tiers,omitempty"`
	// Radix is the Clos switch port count, even and ≥ 2 (clos only;
	// default 4).
	Radix int `json:"radix,omitempty"`
	// Oversubscription divides the switch-to-switch link rate (≥ 1;
	// default: the congestion block's uplink_factor, itself default 4).
	Oversubscription float64 `json:"oversubscription,omitempty"`
}

// build resolves the spec into a concrete switch graph, defaulting
// unset fields from the enclosing congestion config.
func (ts *TopologySpec) build(cfg congestion.Config) congestion.Topology {
	over := ts.Oversubscription
	if over == 0 {
		over = cfg.UplinkFactor
	}
	if ts.Kind == "clos" {
		tiers := ts.Tiers
		if tiers == 0 {
			tiers = 2
		}
		radix := ts.Radix
		if radix == 0 {
			radix = 4
		}
		return congestion.ClosTopology(tiers, radix, over)
	}
	sw := ts.Switches
	if sw == 0 {
		sw = cfg.Switches
	}
	return congestion.ChainTopology(sw, over)
}

// validate rejects graphs the builders would otherwise silently clamp,
// so a bad spec fails at load time with a message.
func (ts *TopologySpec) validate(name string) error {
	switch ts.Kind {
	case "chain":
		if ts.Tiers != 0 || ts.Radix != 0 {
			return fmt.Errorf("scenario %q: topology kind \"chain\" does not take tiers or radix", name)
		}
		if ts.Switches < 0 {
			return fmt.Errorf("scenario %q: topology.switches must not be negative", name)
		}
	case "clos":
		if ts.Switches != 0 {
			return fmt.Errorf("scenario %q: topology kind \"clos\" takes tiers and radix, not switches", name)
		}
		if ts.Tiers != 0 && ts.Tiers != 2 && ts.Tiers != 3 {
			return fmt.Errorf("scenario %q: topology.tiers must be 2 (leaf-spine) or 3 (fat-tree), got %d", name, ts.Tiers)
		}
		if ts.Radix != 0 && (ts.Radix < 2 || ts.Radix%2 != 0) {
			return fmt.Errorf("scenario %q: topology.radix must be an even number >= 2, got %d", name, ts.Radix)
		}
	default:
		return fmt.Errorf("scenario %q: unknown topology kind %q (want chain or clos)", name, ts.Kind)
	}
	if ts.Oversubscription != 0 && ts.Oversubscription < 1 {
		return fmt.Errorf("scenario %q: topology.oversubscription must be at least 1", name)
	}
	return nil
}

// Label renders the compact form the `odpsim list` topology column uses
// ("chain*4", "clos/2t/r4").
func (ts *TopologySpec) Label() string {
	if ts.Kind == "clos" {
		tiers, radix := ts.Tiers, ts.Radix
		if tiers == 0 {
			tiers = 2
		}
		if radix == 0 {
			radix = 4
		}
		return fmt.Sprintf("clos/%dt/r%d", tiers, radix)
	}
	if ts.Switches > 0 {
		return fmt.Sprintf("chain*%d", ts.Switches)
	}
	return "chain"
}

// BuiltTopology resolves the switch graph the scenario declares through
// its congestion block, reporting ok=false when it declares none (the
// implicit chain). The CLI uses this for topology summaries.
func (sc *Scenario) BuiltTopology() (topo congestion.Topology, ok bool) {
	if sc.Congestion == nil || sc.Congestion.Topology == nil {
		return congestion.Topology{}, false
	}
	return sc.Congestion.Config().Topology, true
}

// MemorySpec is the JSON face of the memory-mode switch: which
// translation path managed registrations use on every node, plus the
// NP-RDMA pool bound for the npr mode.
type MemorySpec struct {
	// Mode is "pin", "odp" or "npr" ("" = odp).
	Mode string `json:"mode,omitempty"`
	// PoolKB bounds the per-node NP-RDMA DMA-able pool in KB (0 keeps
	// npr.DefaultConfig's 2 MiB). Only meaningful with mode "npr".
	PoolKB float64 `json:"pool_kb,omitempty"`
}

// validate checks the memory block against the modes cluster.BuildOn
// accepts, so a bad spec fails at load time with a message instead of
// at build time with a panic.
func (ms *MemorySpec) validate(name string) error {
	switch ms.Mode {
	case "", "pin", "odp", "npr":
	default:
		return fmt.Errorf("scenario %q: unknown memory mode %q (want pin, odp or npr)", name, ms.Mode)
	}
	if ms.PoolKB < 0 {
		return fmt.Errorf("scenario %q: memory.pool_kb must not be negative", name)
	}
	if ms.PoolKB > 0 && ms.Mode != "npr" {
		return fmt.Errorf("scenario %q: memory.pool_kb requires mode \"npr\"", name)
	}
	return nil
}

// TransportSpec is the JSON face of the transport switch: which RC
// machine every node's QPs run.
type TransportSpec struct {
	// Mode is "rc" (go-back-N) or "irn" (selective repeat); "" = rc.
	Mode string `json:"mode,omitempty"`
}

// validate checks the transport block against the modes cluster.BuildOn
// accepts.
func (ts *TransportSpec) validate(name string) error {
	switch ts.Mode {
	case "", "rc", "irn":
		return nil
	default:
		return fmt.Errorf("scenario %q: unknown transport mode %q (want rc or irn)", name, ts.Mode)
	}
}

// kb converts a KB spec field to bytes, keeping zero as "default".
func kb(x float64) int { return int(x * 1024) }

// Config maps the spec onto a congestion.Config, starting from the
// package defaults so unset fields keep their calibrated values.
func (cs *CongestionSpec) Config() congestion.Config {
	cfg := congestion.DefaultConfig()
	if cs.Switches > 0 {
		cfg.Switches = cs.Switches
	}
	if cs.UplinkFactor > 0 {
		cfg.UplinkFactor = cs.UplinkFactor
	}
	if cs.BufferKB > 0 {
		cfg.BufferBytes = kb(cs.BufferKB)
	}
	cfg.PFC = cs.PFC
	if cs.XOffKB > 0 {
		cfg.XOffBytes = kb(cs.XOffKB)
	}
	if cs.XOnKB > 0 {
		cfg.XOnBytes = kb(cs.XOnKB)
	}
	cfg.ECN = cs.ECN
	if cs.ECNThresholdKB > 0 {
		cfg.ECNThresholdBytes = kb(cs.ECNThresholdKB)
	}
	cfg.DCQCN.Enabled = cs.DCQCN
	if cs.Topology != nil {
		cfg.Topology = cs.Topology.build(cfg)
	}
	return cfg
}

// validate checks the congestion block against the same rules
// congestion.NewNetwork enforces by panic, so a bad spec fails at load
// time with a message instead of at build time with a stack trace.
func (cs *CongestionSpec) validate(name string) error {
	for field, x := range map[string]float64{
		"switches": float64(cs.Switches), "uplink_factor": cs.UplinkFactor,
		"buffer_kb": cs.BufferKB, "xoff_kb": cs.XOffKB, "xon_kb": cs.XOnKB,
		"ecn_threshold_kb": cs.ECNThresholdKB,
	} {
		if x < 0 {
			return fmt.Errorf("scenario %q: congestion.%s must not be negative", name, field)
		}
	}
	if cs.PFC {
		cfg := cs.Config()
		if cfg.XOffBytes <= cfg.XOnBytes {
			return fmt.Errorf("scenario %q: congestion xoff_kb (%g KB effective) must be greater than xon_kb (%g KB effective)",
				name, float64(cfg.XOffBytes)/1024, float64(cfg.XOnBytes)/1024)
		}
	}
	if cs.Topology != nil {
		if err := cs.Topology.validate(name); err != nil {
			return err
		}
	}
	return nil
}

// Quick is the reduced-fidelity profile applied by quick mode.
type Quick struct {
	// Trials replaces Scenario.Trials when positive.
	Trials int `json:"trials,omitempty"`
	// GridScale multiplies every grid step (main and per-series) when
	// positive — ×4 turns Figure 4's 0.25 ms grid into the 1 ms quick
	// grid.
	GridScale float64 `json:"grid_scale,omitempty"`
	// Ops replaces Scenario.Ops when positive.
	Ops int `json:"ops,omitempty"`
	// List replaces the main grid's integer list when non-empty.
	List []int `json:"list,omitempty"`
	// Waves replaces Scenario.Waves when positive.
	Waves int `json:"waves,omitempty"`
}

// expandTitle substitutes the {trials} and {ops} placeholders.
func expandTitle(title string, trials, ops int) string {
	title = strings.ReplaceAll(title, "{trials}", strconv.Itoa(trials))
	return strings.ReplaceAll(title, "{ops}", strconv.Itoa(ops))
}

// Title of the scenario with placeholders expanded. When the operation
// count varies per series (Figure 11), {ops} falls back to the first
// variant's count; per-variant headers use VariantTitle instead.
func (sc *Scenario) ExpandedTitle() string {
	ops := sc.Ops
	if ops == 0 {
		for _, v := range sc.Series {
			if v.Ops > 0 {
				ops = v.Ops
				break
			}
		}
	}
	return expandTitle(sc.Title, sc.Trials, ops)
}

// VariantTitle expands the title against one variant's operation count.
func (sc *Scenario) VariantTitle(v Variant) string {
	ops := v.Ops
	if ops == 0 {
		ops = sc.Ops
	}
	return expandTitle(sc.Title, sc.Trials, ops)
}

// ApplyQuick returns a copy with the quick profile folded in. A scenario
// without a Quick profile is returned unchanged (its full run is already
// fast).
func (sc Scenario) ApplyQuick() Scenario {
	q := sc.Quick
	if q == nil {
		return sc
	}
	if q.Trials > 0 {
		sc.Trials = q.Trials
	}
	if q.Ops > 0 {
		sc.Ops = q.Ops
	}
	if q.Waves > 0 {
		sc.Waves = q.Waves
	}
	if q.GridScale > 0 {
		if sc.Grid != nil {
			g := *sc.Grid
			g.StepMs *= q.GridScale
			sc.Grid = &g
		}
		if len(sc.Series) > 0 {
			series := append([]Variant(nil), sc.Series...)
			for i := range series {
				if series[i].Grid != nil {
					g := *series[i].Grid
					g.StepMs *= q.GridScale
					series[i].Grid = &g
				}
			}
			sc.Series = series
		}
	}
	if len(q.List) > 0 && sc.Grid != nil {
		g := *sc.Grid
		g.List = append([]int(nil), q.List...)
		sc.Grid = &g
	}
	return sc
}

// ODPModeOf parses the Mode field ("" means both — the §V default).
func (sc *Scenario) parseMode() error {
	switch sc.Mode {
	case "", "none", "server", "client", "both":
		return nil
	}
	return fmt.Errorf("scenario %q: unknown ODP mode %q (want none, server, client or both)", sc.Name, sc.Mode)
}

// Validate checks the scenario's declarative fields: a registered
// workload, a resolvable system, a well-formed grid, sane fault knobs and
// non-negative counts. Workload-specific requirements (e.g. "this
// workload averages over trials, so Trials must be ≥ 1") are checked by
// the workload's own Validate hook at run time.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if sc.Workload == "" {
		return fmt.Errorf("scenario %q: missing workload", sc.Name)
	}
	if _, ok := workloads[sc.Workload]; !ok {
		return fmt.Errorf("scenario %q: unknown workload %q (have %s)",
			sc.Name, sc.Workload, strings.Join(Workloads(), ", "))
	}
	if err := sc.parseMode(); err != nil {
		return err
	}
	for _, name := range append([]string{sc.System}, sc.Systems...) {
		if name == "" {
			continue
		}
		if _, err := cluster.ByName(name); err != nil {
			return fmt.Errorf("scenario %q: %v", sc.Name, err)
		}
	}
	for field, n := range map[string]int{
		"nodes": sc.Nodes, "trials": sc.Trials, "ops": sc.Ops, "qps": sc.QPs,
		"size": sc.Size, "cack": sc.CACK, "retry": sc.Retry, "window": sc.Window,
		"pages": sc.Pages, "waves": sc.Waves, "memory_bytes": sc.MemoryBytes,
		"shards": sc.Shards,
	} {
		if n < 0 {
			return fmt.Errorf("scenario %q: %s must not be negative", sc.Name, field)
		}
	}
	for field, x := range map[string]float64{
		"rnr_delay_ms": sc.RNRDelayMs, "interval_ms": sc.IntervalMs, "step_ms": sc.StepMs,
	} {
		if x < 0 {
			return fmt.Errorf("scenario %q: %s must not be negative", sc.Name, field)
		}
	}
	if sc.Faults.LossRate < 0 || sc.Faults.LossRate >= 1 {
		return fmt.Errorf("scenario %q: loss_rate must be in [0, 1)", sc.Name)
	}
	if sc.Faults.PageFaultScale < 0 {
		return fmt.Errorf("scenario %q: page_fault_scale must not be negative", sc.Name)
	}
	if sc.Congestion != nil {
		if err := sc.Congestion.validate(sc.Name); err != nil {
			return err
		}
	}
	if sc.Memory != nil {
		if err := sc.Memory.validate(sc.Name); err != nil {
			return err
		}
	}
	if sc.Transport != nil {
		if err := sc.Transport.validate(sc.Name); err != nil {
			return err
		}
	}
	if err := sc.Grid.validate(sc.Name, "grid"); err != nil {
		return err
	}
	for i, v := range sc.Series {
		if err := v.Grid.validate(sc.Name, fmt.Sprintf("series[%d].grid", i)); err != nil {
			return err
		}
		if v.Ops < 0 || v.RNRDelayMs < 0 || v.StepMs < 0 {
			return fmt.Errorf("scenario %q: series[%d] has a negative field", sc.Name, i)
		}
	}
	return nil
}

// resolveSystem looks a system name up and applies the fault knobs; an
// empty name selects the fallback.
func (sc *Scenario) resolveSystem(name string, fallback cluster.System) (cluster.System, error) {
	s := fallback
	if name != "" {
		var err error
		s, err = cluster.ByName(name)
		if err != nil {
			return cluster.System{}, fmt.Errorf("scenario %q: %v", sc.Name, err)
		}
	}
	return sc.ApplyFaults(s), nil
}

// ApplyFaults folds the scenario's fault knobs into a system value.
// Workloads with built-in system tables (sparkucx's Table-13 rows) route
// each system through this so declared faults reach every built cluster.
func (sc *Scenario) ApplyFaults(s cluster.System) cluster.System {
	if sc.Faults.Congestion {
		s.ModelCongestion = true
	}
	if sc.Faults.LossRate > 0 {
		s.LossRate = sc.Faults.LossRate
	}
	if sc.Faults.PageFaultScale > 0 {
		s.FaultScale = sc.Faults.PageFaultScale
	}
	if sc.Congestion != nil {
		cfg := sc.Congestion.Config()
		s.Congestion = &cfg
	}
	if sc.Memory != nil {
		s.MemMode = sc.Memory.Mode
		if sc.Memory.PoolKB > 0 {
			s.NPRPoolBytes = kb(sc.Memory.PoolKB)
		}
	}
	if sc.Transport != nil {
		s.Transport = sc.Transport.Mode
	}
	return s
}

// SeedOrDefault returns the base seed (1 when unset, matching every
// CLI's historical -seed default).
func (sc *Scenario) SeedOrDefault() int64 {
	if sc.Seed != 0 {
		return sc.Seed
	}
	return 1
}

// RNRDelay returns the minimal RNR NAK delay (the paper's 1.28 ms when
// unset).
func (sc *Scenario) RNRDelay() sim.Time {
	if sc.RNRDelayMs > 0 {
		return sim.FromMillis(sc.RNRDelayMs)
	}
	return sim.FromMillis(1.28)
}

// Interval returns the posting interval.
func (sc *Scenario) Interval() sim.Time { return sim.FromMillis(sc.IntervalMs) }
