package scenario

import (
	"bytes"
	"strings"
	"testing"

	"odpsim/internal/sim"
)

// fakeWorkload lets the package tests exercise validation and execution
// without importing any implementation package.
type fakeWorkload struct{ kind string }

func (f fakeWorkload) Kind() string { return f.kind }

func (f fakeWorkload) Validate(sc *Scenario) error { return RequireTrials(sc) }

func (f fakeWorkload) Run(sc *Scenario, out *Output) error {
	out.W.Write([]byte("ran " + sc.Name + "\n"))
	return nil
}

func init() { RegisterWorkload(fakeWorkload{kind: "fake"}) }

func valid() Scenario {
	return Scenario{Name: "t", Workload: "fake", Trials: 3}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"missing name", func(sc *Scenario) { sc.Name = "" }, "missing name"},
		{"missing workload", func(sc *Scenario) { sc.Workload = "" }, "missing workload"},
		{"unknown workload", func(sc *Scenario) { sc.Workload = "nope" }, "unknown workload"},
		{"unknown mode", func(sc *Scenario) { sc.Mode = "sideways" }, "unknown ODP mode"},
		{"unknown system", func(sc *Scenario) { sc.System = "Cray" }, "unknown system"},
		{"ambiguous system", func(sc *Scenario) { sc.System = "Reed" }, "ambiguous"},
		{"unknown listed system", func(sc *Scenario) { sc.Systems = []string{"KNL", "Cray"} }, "unknown system"},
		{"negative trials", func(sc *Scenario) { sc.Trials = -1 }, "must not be negative"},
		{"negative rnr", func(sc *Scenario) { sc.RNRDelayMs = -0.5 }, "must not be negative"},
		{"loss out of range", func(sc *Scenario) { sc.Faults.LossRate = 1.0 }, "loss_rate"},
		{"negative loss", func(sc *Scenario) { sc.Faults.LossRate = -0.1 }, "loss_rate"},
		{"negative fault scale", func(sc *Scenario) { sc.Faults.PageFaultScale = -1 }, "page_fault_scale"},
		{"empty grid", func(sc *Scenario) { sc.Grid = &Grid{} }, "is empty"},
		{"grid list+range", func(sc *Scenario) { sc.Grid = &Grid{ToMs: 5, StepMs: 1, List: []int{1}} }, "mixes"},
		{"grid zero step", func(sc *Scenario) { sc.Grid = &Grid{ToMs: 5} }, "positive step"},
		{"grid backwards", func(sc *Scenario) { sc.Grid = &Grid{FromMs: 5, ToMs: 1, StepMs: 1} }, "backwards"},
		{"grid negative start", func(sc *Scenario) { sc.Grid = &Grid{FromMs: -1, ToMs: 1, StepMs: 1} }, "below zero"},
		{"series bad grid", func(sc *Scenario) { sc.Series = []Variant{{Grid: &Grid{ToMs: 3}}} }, "series[0].grid"},
		{"series negative ops", func(sc *Scenario) { sc.Series = []Variant{{Ops: -2}} }, "negative field"},
		{"congestion negative buffer", func(sc *Scenario) { sc.Congestion = &CongestionSpec{BufferKB: -4} }, "buffer_kb"},
		{"congestion xoff below xon", func(sc *Scenario) {
			sc.Congestion = &CongestionSpec{PFC: true, XOffKB: 1, XOnKB: 2}
		}, "xoff_kb"},
		{"congestion xoff below default xon", func(sc *Scenario) {
			// XOn is unset, so the effective 2 KB default applies.
			sc.Congestion = &CongestionSpec{PFC: true, XOffKB: 1}
		}, "xoff_kb"},
		{"unknown memory mode", func(sc *Scenario) {
			sc.Memory = &MemorySpec{Mode: "hugepages"}
		}, "memory mode"},
		{"negative pool", func(sc *Scenario) {
			sc.Memory = &MemorySpec{Mode: "npr", PoolKB: -4}
		}, "pool_kb"},
		{"pool without npr", func(sc *Scenario) {
			sc.Memory = &MemorySpec{Mode: "odp", PoolKB: 64}
		}, "pool_kb"},
		{"unknown transport mode", func(sc *Scenario) {
			sc.Transport = &TransportSpec{Mode: "quic"}
		}, "transport mode"},
		{"topology unknown kind", func(sc *Scenario) {
			sc.Congestion = &CongestionSpec{Topology: &TopologySpec{Kind: "torus"}}
		}, "topology kind"},
		{"topology missing kind", func(sc *Scenario) {
			sc.Congestion = &CongestionSpec{Topology: &TopologySpec{Radix: 4}}
		}, "topology kind"},
		{"chain with radix", func(sc *Scenario) {
			sc.Congestion = &CongestionSpec{Topology: &TopologySpec{Kind: "chain", Radix: 4}}
		}, "tiers or radix"},
		{"chain negative switches", func(sc *Scenario) {
			sc.Congestion = &CongestionSpec{Topology: &TopologySpec{Kind: "chain", Switches: -2}}
		}, "switches"},
		{"clos with switches", func(sc *Scenario) {
			sc.Congestion = &CongestionSpec{Topology: &TopologySpec{Kind: "clos", Switches: 3}}
		}, "not switches"},
		{"clos bad tiers", func(sc *Scenario) {
			sc.Congestion = &CongestionSpec{Topology: &TopologySpec{Kind: "clos", Tiers: 5}}
		}, "tiers"},
		{"clos odd radix", func(sc *Scenario) {
			sc.Congestion = &CongestionSpec{Topology: &TopologySpec{Kind: "clos", Radix: 3}}
		}, "radix"},
		{"topology oversub below 1", func(sc *Scenario) {
			sc.Congestion = &CongestionSpec{Topology: &TopologySpec{Kind: "clos", Oversubscription: 0.5}}
		}, "oversubscription"},
	}
	for _, c := range cases {
		sc := valid()
		c.mut(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, sc)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	sc := valid()
	sc.System = "KNL" // unambiguous prefix
	sc.Systems = []string{"Reedbush-H", "ABCI"}
	sc.Mode = "server"
	sc.Faults = Faults{LossRate: 0.01, Congestion: true, PageFaultScale: 2}
	sc.Grid = &Grid{ToMs: 6, StepMs: 0.25}
	sc.Series = []Variant{{Label: "a", Ops: 3, Grid: &Grid{List: []int{1, 2}}}}
	if err := sc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGridTimes(t *testing.T) {
	g := &Grid{ToMs: 6, StepMs: 0.25}
	ts := g.Times()
	if len(ts) != 25 {
		t.Fatalf("0..6/0.25 should have 25 points, got %d", len(ts))
	}
	if ts[0] != 0 || ts[24] != sim.FromMillis(6) {
		t.Errorf("endpoints: %v .. %v", ts[0], ts[24])
	}
	// The ulp-drift guard: the 0.1 ms grid's points land exactly.
	for i, x := range MsRange(0, 6, 0.1) {
		if want := sim.FromMillis(float64(i) * 0.1); x != want && i != 8 {
			// 0.8 ms is the historical ulp victim; FromMillis(0.8) itself
			// rounds the same way, so equality must hold everywhere.
			t.Fatalf("point %d = %v, want %v", i, x, want)
		}
	}
}

func TestApplyQuick(t *testing.T) {
	sc := valid()
	sc.Ops = 100
	sc.Waves = 8
	sc.Grid = &Grid{ToMs: 6, StepMs: 0.25}
	sc.Series = []Variant{{Label: "x", Grid: &Grid{ToMs: 40, StepMs: 2}}}
	sc.Quick = &Quick{Trials: 2, GridScale: 4, Ops: 10, Waves: 1}
	q := sc.ApplyQuick()
	if q.Trials != 2 || q.Ops != 10 || q.Waves != 1 {
		t.Errorf("quick overrides not applied: %+v", q)
	}
	if q.Grid.StepMs != 1.0 || q.Series[0].Grid.StepMs != 8.0 {
		t.Errorf("grid scaling: main %v series %v", q.Grid.StepMs, q.Series[0].Grid.StepMs)
	}
	// The original must be untouched (grids are copied before scaling).
	if sc.Grid.StepMs != 0.25 || sc.Series[0].Grid.StepMs != 2 {
		t.Errorf("ApplyQuick mutated the original: %+v", sc.Grid)
	}
	// Scenarios without a profile pass through unchanged.
	plain := valid()
	if got := plain.ApplyQuick(); got.Trials != plain.Trials {
		t.Error("no-profile scenario changed")
	}
}

func TestTitleExpansion(t *testing.T) {
	sc := valid()
	sc.Title = "T ({trials} trials, {ops} ops)"
	sc.Trials = 7
	sc.Series = []Variant{{Ops: 128}, {Ops: 512}}
	if got := sc.ExpandedTitle(); got != "T (7 trials, 128 ops)" {
		t.Errorf("ExpandedTitle = %q", got)
	}
	if got := sc.VariantTitle(sc.Series[1]); got != "T (7 trials, 512 ops)" {
		t.Errorf("VariantTitle = %q", got)
	}
}

func TestResolvedVariantsInherit(t *testing.T) {
	sc := valid()
	sc.Ops = 4
	sc.RNRDelayMs = 1.28
	sc.StepMs = 2
	sc.Grid = &Grid{List: []int{1}}
	sc.Series = []Variant{{Label: "a"}, {Label: "b", Ops: 9, Grid: &Grid{List: []int{2}}}}
	vs := sc.ResolvedVariants()
	if vs[0].Ops != 4 || vs[0].RNRDelayMs != 1.28 || vs[0].StepMs != 2 || vs[0].Grid != sc.Grid {
		t.Errorf("variant 0 did not inherit: %+v", vs[0])
	}
	if vs[1].Ops != 9 || vs[1].Grid.List[0] != 2 {
		t.Errorf("variant 1 overrides lost: %+v", vs[1])
	}
	// No series: the scenario itself is the single variant.
	sc.Series = nil
	if vs := sc.ResolvedVariants(); len(vs) != 1 || vs[0].Ops != 4 {
		t.Errorf("grid-less variants: %+v", vs)
	}
}

func TestFaultKnobsReachSystems(t *testing.T) {
	sc := valid()
	sc.Faults = Faults{LossRate: 0.05, Congestion: true, PageFaultScale: 3}
	sys, err := sc.ResolvedSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.LossRate != 0.05 || !sys.ModelCongestion || sys.FaultScale != 3 {
		t.Errorf("fault knobs not routed: %+v", sys)
	}
	many, err := sc.ResolvedSystems(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 0 {
		t.Errorf("no systems, no defaults → empty, got %d", len(many))
	}
	sc.Systems = []string{"KNL", "ABCI"}
	many, err = sc.ResolvedSystems(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range many {
		if s.LossRate != 0.05 {
			t.Errorf("%s missing loss rate", s.Name)
		}
	}
}

func TestCongestionSpecReachesSystems(t *testing.T) {
	sc := valid()
	sc.Congestion = &CongestionSpec{
		Switches: 3, BufferKB: 4, PFC: true, XOffKB: 3, XOnKB: 1,
		ECNThresholdKB: 1, DCQCN: true,
	}
	sys, err := sc.ResolvedSystem()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Congestion
	if cfg == nil {
		t.Fatal("congestion block did not reach the system")
	}
	if cfg.Switches != 3 || cfg.BufferBytes != 4<<10 || !cfg.PFC ||
		cfg.XOffBytes != 3<<10 || cfg.XOnBytes != 1<<10 ||
		cfg.ECNThresholdBytes != 1<<10 || !cfg.DCQCN.Enabled {
		t.Errorf("spec not mapped: %+v", cfg)
	}
	// Unset fields keep the package defaults, and an empty block is a
	// valid "switched model, default topology" selection.
	if cfg.UplinkFactor != 4 {
		t.Errorf("unset uplink_factor should default to 4, got %v", cfg.UplinkFactor)
	}
	sc.Congestion = &CongestionSpec{}
	if err := sc.Validate(); err != nil {
		t.Fatalf("empty congestion block: %v", err)
	}
	sys, err = sc.ResolvedSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Congestion == nil || sys.Congestion.BufferBytes != 8<<10 {
		t.Errorf("empty block should select defaults: %+v", sys.Congestion)
	}
	// No block, no switched model.
	sc.Congestion = nil
	sys, err = sc.ResolvedSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Congestion != nil {
		t.Error("nil spec block must leave System.Congestion nil")
	}
}

func TestMemorySpecReachesSystems(t *testing.T) {
	sc := valid()
	sc.Memory = &MemorySpec{Mode: "npr", PoolKB: 16}
	sys, err := sc.ResolvedSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.MemMode != "npr" || sys.NPRPoolBytes != 16<<10 {
		t.Errorf("memory block not routed: mode %q pool %d", sys.MemMode, sys.NPRPoolBytes)
	}
	// No block: the defaults stay zero so cluster keeps its odp path.
	sc.Memory = nil
	sys, err = sc.ResolvedSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.MemMode != "" || sys.NPRPoolBytes != 0 {
		t.Errorf("nil memory block must leave system defaults: %+v", sys)
	}
}

func TestTransportSpecReachesSystems(t *testing.T) {
	sc := valid()
	sc.Transport = &TransportSpec{Mode: "irn"}
	sys, err := sc.ResolvedSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Transport != "irn" {
		t.Errorf("transport block not routed: %q", sys.Transport)
	}
	// No block: the default stays empty so cluster keeps go-back-N.
	sc.Transport = nil
	sys, err = sc.ResolvedSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Transport != "" {
		t.Errorf("nil transport block must leave the system default: %q", sys.Transport)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	sc := valid()
	sc.Title = "spec test"
	sc.System = "KNL"
	sc.Grid = &Grid{ToMs: 6, StepMs: 0.5}
	sc.Series = []Variant{{Label: "a", RNRDelayMs: 0.01}}
	sc.Faults = Faults{LossRate: 0.02}
	sc.Congestion = &CongestionSpec{PFC: true, XOffKB: 6, XOnKB: 2, DCQCN: true}
	sc.Memory = &MemorySpec{Mode: "npr", PoolKB: 64}
	sc.Transport = &TransportSpec{Mode: "irn"}
	sc.Quick = &Quick{Trials: 1}
	data, err := SaveSpec(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(data)
	if err != nil {
		t.Fatalf("LoadSpec: %v\nspec:\n%s", err, data)
	}
	if got.Congestion == nil || *got.Congestion != *sc.Congestion {
		t.Errorf("congestion block lost in round trip: %+v", got.Congestion)
	}
	if got.Memory == nil || *got.Memory != *sc.Memory {
		t.Errorf("memory block lost in round trip: %+v", got.Memory)
	}
	if got.Transport == nil || *got.Transport != *sc.Transport {
		t.Errorf("transport block lost in round trip: %+v", got.Transport)
	}
	// Round-tripped scenarios must run identically.
	var a, b bytes.Buffer
	if err := Run(sc, &a, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Run(got, &b, Options{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("round-trip changed the run:\n%q\nvs\n%q", a.String(), b.String())
	}
}

func TestTopologySpecRoundTrip(t *testing.T) {
	sc := valid()
	sc.Congestion = &CongestionSpec{
		Topology: &TopologySpec{Kind: "clos", Tiers: 2, Radix: 4, Oversubscription: 4},
		PFC:      true, XOffKB: 1, XOnKB: 0.5,
	}
	data, err := SaveSpec(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(data)
	if err != nil {
		t.Fatalf("LoadSpec: %v\nspec:\n%s", err, data)
	}
	if got.Congestion == nil || got.Congestion.Topology == nil {
		t.Fatalf("topology block lost in round trip: %+v", got.Congestion)
	}
	if *got.Congestion.Topology != *sc.Congestion.Topology {
		t.Errorf("topology changed in round trip: %+v vs %+v",
			*got.Congestion.Topology, *sc.Congestion.Topology)
	}
	// The round-tripped spec must resolve to the same switch graph.
	want, ok := sc.BuiltTopology()
	if !ok {
		t.Fatal("BuiltTopology reported no declared topology")
	}
	back, _ := got.BuiltTopology()
	if back.SwitchCount() != want.SwitchCount() || back.LinkCount() != want.LinkCount() {
		t.Errorf("rebuilt graph differs: %s vs %s", back.Summary(), want.Summary())
	}
}

func TestTopologySpecLabel(t *testing.T) {
	cases := []struct {
		ts   TopologySpec
		want string
	}{
		{TopologySpec{Kind: "clos", Tiers: 2, Radix: 4}, "clos/2t/r4"},
		{TopologySpec{Kind: "clos"}, "clos/2t/r4"}, // defaults shown, not zeros
		{TopologySpec{Kind: "clos", Tiers: 3, Radix: 8}, "clos/3t/r8"},
		{TopologySpec{Kind: "chain", Switches: 4}, "chain*4"},
		{TopologySpec{Kind: "chain"}, "chain"},
	}
	for _, c := range cases {
		if got := c.ts.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.ts, got, c.want)
		}
	}
}

func TestSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown field", `{"name":"x","workload":"fake","trails":3}`, "trails"},
		{"unknown system", `{"name":"x","workload":"fake","trials":1,"system":"Cray"}`, "unknown system"},
		{"unknown workload", `{"name":"x","workload":"warp"}`, "unknown workload"},
		{"malformed grid", `{"name":"x","workload":"fake","trials":1,"grid":{"to_ms":5}}`, "positive step"},
		{"loss out of range", `{"name":"x","workload":"fake","trials":1,"faults":{"loss_rate":1.5}}`, "loss_rate"},
		{"congestion unknown field", `{"name":"x","workload":"fake","trials":1,"congestion":{"buffers_kb":8}}`, "buffers_kb"},
		{"congestion bad thresholds", `{"name":"x","workload":"fake","trials":1,"congestion":{"pfc":true,"xoff_kb":2,"xon_kb":3}}`, "xoff_kb"},
		{"memory unknown field", `{"name":"x","workload":"fake","trials":1,"memory":{"mode":"npr","pool":64}}`, "pool"},
		{"memory unknown mode", `{"name":"x","workload":"fake","trials":1,"memory":{"mode":"rcu"}}`, "memory mode"},
		{"memory stray pool", `{"name":"x","workload":"fake","trials":1,"memory":{"pool_kb":8}}`, "pool_kb"},
		{"transport unknown field", `{"name":"x","workload":"fake","trials":1,"transport":{"mode":"irn","window":4}}`, "window"},
		{"transport unknown mode", `{"name":"x","workload":"fake","trials":1,"transport":{"mode":"quic"}}`, "transport mode"},
		{"topology unknown field", `{"name":"x","workload":"fake","trials":1,"congestion":{"topology":{"kind":"clos","spines":2}}}`, "spines"},
		{"topology unknown kind", `{"name":"x","workload":"fake","trials":1,"congestion":{"topology":{"kind":"mesh"}}}`, "topology kind"},
		{"topology odd radix", `{"name":"x","workload":"fake","trials":1,"congestion":{"topology":{"kind":"clos","radix":5}}}`, "radix"},
		{"trailing data", `{"name":"x","workload":"fake","trials":1} {"again":true}`, "trailing"},
		{"not json", `figure four please`, "spec"},
	}
	for _, c := range cases {
		if _, err := LoadSpec([]byte(c.json)); err == nil {
			t.Errorf("%s: accepted %s", c.name, c.json)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestRunValidates(t *testing.T) {
	// Scenario-level validation runs before the workload sees it.
	sc := valid()
	sc.System = "Cray"
	if err := Run(sc, &bytes.Buffer{}, Options{}); err == nil {
		t.Error("Run accepted an unknown system")
	}
	// Workload-level validation (zero trials on an averaging workload).
	sc = valid()
	sc.Trials = 0
	err := Run(sc, &bytes.Buffer{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "zero trials") {
		t.Errorf("Run(zero trials) = %v", err)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("Lookup should fail for unknown names")
	}
}

func TestIsSpecPath(t *testing.T) {
	for arg, want := range map[string]bool{
		"fig4":       false,
		"sweep.json": true,
		"./fig4":     true,
		"dir/spec":   true,
		`dir\spec`:   true,
		"tab13":      false,
	} {
		if got := IsSpecPath(arg); got != want {
			t.Errorf("IsSpecPath(%q) = %v", arg, got)
		}
	}
}
