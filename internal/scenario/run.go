package scenario

import (
	"fmt"
	"io"

	"odpsim/internal/cluster"
)

// Output is where a workload renders: the main writer plus the optional
// side outputs some CLIs expose (counter CSV for the Figure-11 flood,
// capture CSV/binary trace and the per-operation analysis report for
// odptrace).
type Output struct {
	W io.Writer
	// CounterCSV, when non-empty, makes counter-sampling workloads also
	// write each run's sampled device counters as CSV to this path
	// (suffixed per run when one scenario holds several runs).
	CounterCSV string
	// CaptureCSV/CaptureTrace write the packet capture of trace
	// workloads to these paths.
	CaptureCSV   string
	CaptureTrace string
	// Analyze appends the per-operation latency / per-QP flow analysis
	// to trace output.
	Analyze bool
}

// Options tunes one execution.
type Options struct {
	// Quick applies the scenario's reduced-fidelity profile.
	Quick bool
	// Side outputs, forwarded into the workload's Output.
	CounterCSV   string
	CaptureCSV   string
	CaptureTrace string
	Analyze      bool
}

// Run executes a scenario value against its workload and writes the
// rendered result to w.
func Run(sc Scenario, w io.Writer, opts Options) error {
	if opts.Quick {
		sc = sc.ApplyQuick()
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	wl := workloads[sc.Workload]
	if err := wl.Validate(&sc); err != nil {
		return err
	}
	return wl.Run(&sc, &Output{
		W:            w,
		CounterCSV:   opts.CounterCSV,
		CaptureCSV:   opts.CaptureCSV,
		CaptureTrace: opts.CaptureTrace,
		Analyze:      opts.Analyze,
	})
}

// RunNamed looks a scenario up in the registry and runs it.
func RunNamed(name string, w io.Writer, opts Options) error {
	sc, err := Lookup(name)
	if err != nil {
		return err
	}
	return Run(sc, w, opts)
}

// System resolves the scenario's (single) system with fault knobs
// applied; empty System selects the workload-wide default, KNL — the
// system the paper ran all packet-level analysis on.
func (sc *Scenario) ResolvedSystem() (cluster.System, error) {
	return sc.resolveSystem(sc.System, cluster.KNL())
}

// ResolvedSystems resolves the Systems list with fault knobs applied,
// falling back to defaults when the list is empty.
func (sc *Scenario) ResolvedSystems(defaults []cluster.System) ([]cluster.System, error) {
	if len(sc.Systems) == 0 {
		out := make([]cluster.System, len(defaults))
		for i, s := range defaults {
			sys, err := sc.resolveSystem(s.Name, s)
			if err != nil {
				return nil, err
			}
			out[i] = sys
		}
		return out, nil
	}
	out := make([]cluster.System, len(sc.Systems))
	for i, name := range sc.Systems {
		sys, err := sc.resolveSystem(name, cluster.System{})
		if err != nil {
			return nil, err
		}
		out[i] = sys
	}
	return out, nil
}

// ResolvedVariants returns the scenario's series as fully resolved
// variants: when no series are declared, the scenario itself is the
// single variant. Each variant inherits unset fields from the scenario.
func (sc *Scenario) ResolvedVariants() []Variant {
	if len(sc.Series) == 0 {
		return []Variant{{
			Ops:        sc.Ops,
			RNRDelayMs: sc.RNRDelayMs,
			StepMs:     sc.StepMs,
			Grid:       sc.Grid,
		}}
	}
	out := make([]Variant, len(sc.Series))
	for i, v := range sc.Series {
		if v.Ops == 0 {
			v.Ops = sc.Ops
		}
		if v.RNRDelayMs == 0 {
			v.RNRDelayMs = sc.RNRDelayMs
		}
		if v.StepMs == 0 {
			v.StepMs = sc.StepMs
		}
		if v.Grid == nil {
			v.Grid = sc.Grid
		}
		out[i] = v
	}
	return out
}

// RequireTrials is a helper for workloads that average over trials.
func RequireTrials(sc *Scenario) error {
	if sc.Trials == 0 {
		return fmt.Errorf("scenario %q: zero trials (workload %q averages over trials)", sc.Name, sc.Workload)
	}
	return nil
}

// RequireGrid is a helper for workloads that sweep a grid.
func RequireGrid(sc *Scenario) error {
	for _, v := range sc.ResolvedVariants() {
		if v.Grid == nil {
			return fmt.Errorf("scenario %q: missing grid (workload %q sweeps one)", sc.Name, sc.Workload)
		}
	}
	return nil
}
